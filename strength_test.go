package hifi

import (
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/sim"
)

func TestStrengthValidation(t *testing.T) {
	if _, err := New(16<<10, Config{Strength: 7}); err == nil {
		t.Error("strength 7 with SegLen 8 accepted (need m < Lseg-1)")
	}
	if _, err := New(16<<10, Config{Strength: -1}); err == nil {
		t.Error("negative strength accepted")
	}
	if _, err := New(16<<10, Config{Strength: 2}); err != nil {
		t.Errorf("strength 2 rejected: %v", err)
	}
}

func TestStrengthBaselineIgnoresIt(t *testing.T) {
	// Unprotected schemes accept any strength value (it's ignored).
	if _, err := New(16<<10, Config{Scheme: SchemeBaseline, Strength: 99}); err != nil {
		t.Errorf("baseline with out-of-range strength rejected: %v", err)
	}
}

func TestStrongerCodeCorrectsDeeperDrift(t *testing.T) {
	// Deterministic fault injection: a +2-step drift is a DUE for the
	// m=1 (SECDED) code but is corrected outright by m=2.
	em := errmodel.Model{RateScale: 1e-12} // corrections themselves stay clean
	tm := shiftctrl.DefaultTiming()

	m1 := shiftctrl.NewTape(pecc.MustNew(1, 8), 64, em, tm, sim.NewRNG(1))
	m1.InjectDrift(2)
	m1.CheckNow()
	if m1.DUEs != 1 {
		t.Errorf("m=1 with +2 drift: DUEs=%d, want 1 (detect, cannot correct)", m1.DUEs)
	}
	if m1.Corrections != 0 {
		t.Errorf("m=1 corrected a +2 drift")
	}
	if !m1.Aligned() {
		t.Error("m=1 should be realigned by DUE recovery")
	}

	m2 := shiftctrl.NewTape(pecc.MustNew(2, 8), 64, em, tm, sim.NewRNG(1))
	m2.InjectDrift(2)
	m2.CheckNow()
	if m2.DUEs != 0 {
		t.Errorf("m=2 with +2 drift: DUEs=%d, want 0", m2.DUEs)
	}
	if m2.Corrections != 1 {
		t.Errorf("m=2 corrections=%d, want 1", m2.Corrections)
	}
	if !m2.Aligned() {
		t.Error("m=2 should be aligned after correction")
	}

	// And a -3 drift is DUE for m=2 but corrected by m=3.
	m3 := shiftctrl.NewTape(pecc.MustNew(3, 8), 64, em, tm, sim.NewRNG(1))
	m3.InjectDrift(-3)
	m3.CheckNow()
	if m3.Corrections != 1 || m3.DUEs != 0 || !m3.Aligned() {
		t.Errorf("m=3 with -3 drift: corr=%d DUEs=%d aligned=%v",
			m3.Corrections, m3.DUEs, m3.Aligned())
	}
}
