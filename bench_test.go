package hifi

// This file is the benchmark harness required by the reproduction: one
// benchmark per table and figure of the paper's evaluation, each printing
// (once) the regenerated rows through b.Log when run with -v, plus
// microbenchmarks of the core mechanisms. Run:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig16 -benchtime=1x -v   # see the table
//
// The simulation-backed benchmarks use a moderate trace length so the full
// suite completes in minutes; pass -accesses via HIFI_FULL=1 semantics is
// intentionally avoided — edit benchOpts for full-scale runs.

import (
	"context"
	"sync"
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/physics"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

// benchOpts sizes the simulation-backed experiment benchmarks.
func benchOpts() experiments.RunOpts {
	o := experiments.DefaultRunOpts()
	o.AccessesPerCore = 150_000
	o.MCTrials = 100_000
	return o
}

// logOnce logs each experiment's table a single time per process so -v
// output stays readable across b.N iterations.
var logged sync.Map

func logTable(b *testing.B, t experiments.Table) {
	b.Helper()
	if _, dup := logged.LoadOrStore(t.Title, true); !dup {
		b.Log("\n" + t.String())
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig1())
	}
}

func BenchmarkFig4(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig4(context.Background(), o.MCTrials, o.Seed))
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Table2())
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig7())
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Table3())
	}
}

func BenchmarkFig10(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig10(o))
	}
}

func BenchmarkFig11(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig11(o))
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig12())
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig13())
	}
}

func BenchmarkFig14(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig14(o))
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig15())
	}
}

func BenchmarkFig16(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig16(o))
	}
}

func BenchmarkFig17(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig17(o))
	}
}

func BenchmarkFig18(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Fig18(o))
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.Table5())
	}
}

// --- microbenchmarks of the core mechanisms ---

func BenchmarkPECCDecode(b *testing.B) {
	code := pecc.SECDED(8)
	w := code.ExpectedWindow(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := code.Decode(2, w); !res.Detected {
			b.Fatal("expected detection")
		}
	}
}

func BenchmarkPlannerBuild(b *testing.B) {
	em := errmodel.Model{}
	tm := shiftctrl.DefaultTiming()
	for i := 0; i < b.N; i++ {
		shiftctrl.NewPlanner(em, tm, 63, 63)
	}
}

func BenchmarkAdapterLookup(b *testing.B) {
	em := errmodel.Model{}
	p := shiftctrl.NewPlanner(em, shiftctrl.DefaultTiming(), 7, 7)
	a := shiftctrl.NewAdapter(p, 2e9, 3.156e8, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SequenceFor(7, uint64(i)%3_000_000)
	}
}

func BenchmarkTapeAccess(b *testing.B) {
	tp := shiftctrl.NewTape(pecc.SECDED(8), 64, errmodel.Model{},
		shiftctrl.DefaultTiming(), sim.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tp.AlignTo(i%8, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryReadLine(b *testing.B) {
	mem, err := New(64<<10, Config{})
	if err != nil {
		b.Fatal(err)
	}
	line := make([]byte, 64)
	if err := mem.WriteLine(0, line); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mem.ReadLine(int64(i%64) * 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhysicsSampleShift(b *testing.B) {
	p := physics.Default()
	r := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		physics.SampleShift(p, 4, r)
	}
}

func BenchmarkStripeShift(b *testing.B) {
	s := stripe.New(88)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ShiftRight(1, nil)
		s.ShiftLeft(1, nil)
	}
}

func BenchmarkOTapeAccess(b *testing.B) {
	tp := shiftctrl.NewOTape(pecc.MustNewO(1, 8), 64, errmodel.Model{},
		shiftctrl.DefaultTiming(), sim.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tp.AlignTo(i % 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (regenerate the ablation tables) ---

func BenchmarkAblStrength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.AblationStrength())
	}
}

func BenchmarkAblDrive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.AblationDrive())
	}
}

func BenchmarkAblMaterial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.AblationMaterial())
	}
}

func BenchmarkAblBECC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.AblationBECC())
	}
}

func BenchmarkAblSTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.AblationSTS())
	}
}

func BenchmarkAblPromo(b *testing.B) {
	o := experiments.QuickRunOpts() // simulation-backed: scaled for bench
	for i := 0; i < b.N; i++ {
		logTable(b, experiments.AblationPromo(o))
	}
}
