package hifi

// Checkpointing: save and restore the logical contents of a Memory — the
// line data and validity — so long experiments can resume or archive
// state. The physical tape positions, fault-injection RNG streams, and
// statistics are deliberately NOT captured: restoring a checkpoint models
// a power-up from non-volatile storage, where data survives but position
// state is re-established by p-ECC re-initialization (§4.3) and counters
// start fresh.
//
// This is device-level resume: the unit is one simulated memory's image.
// Sweep-level resume — which (config, workload) jobs of a multi-
// experiment sweep already have results — is the separate journal in
// internal/engine; see docs/engine.md for why the two layers stay apart.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const (
	checkpointMagic   = "HFCK"
	checkpointVersion = 1
)

// Save writes the memory's logical contents to w.
func (m *Memory) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	hdr := []uint64{
		checkpointVersion,
		uint64(len(m.groups)),
		uint64(m.cfg.DomainsPerStripe),
		uint64(m.cfg.LineBytes),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, g := range m.groups {
		for d := range g.lines {
			v := byte(0)
			if g.valid[d] {
				v = 1
			}
			if err := bw.WriteByte(v); err != nil {
				return err
			}
			if _, err := bw.Write(g.lines[d]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load restores logical contents written by Save into an identically
// configured Memory. Geometry mismatches are rejected.
func (m *Memory) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("hifi: checkpoint: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("hifi: checkpoint: bad magic %q", magic)
	}
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return fmt.Errorf("hifi: checkpoint: %w", err)
		}
	}
	if hdr[0] != checkpointVersion {
		return fmt.Errorf("hifi: checkpoint: unsupported version %d", hdr[0])
	}
	if hdr[1] != uint64(len(m.groups)) ||
		hdr[2] != uint64(m.cfg.DomainsPerStripe) ||
		hdr[3] != uint64(m.cfg.LineBytes) {
		return fmt.Errorf("hifi: checkpoint: geometry mismatch (%d groups x %d domains x %dB vs %d x %d x %dB)",
			hdr[1], hdr[2], hdr[3], len(m.groups), m.cfg.DomainsPerStripe, m.cfg.LineBytes)
	}
	for _, g := range m.groups {
		for d := range g.lines {
			v, err := br.ReadByte()
			if err != nil {
				return fmt.Errorf("hifi: checkpoint: %w", err)
			}
			g.valid[d] = v == 1
			if _, err := io.ReadFull(br, g.lines[d]); err != nil {
				return fmt.Errorf("hifi: checkpoint: %w", err)
			}
		}
	}
	return nil
}
