module racetrack/hifi

go 1.22
