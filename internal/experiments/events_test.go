package experiments

// Golden test for the structured event stream: a seeded two-job sweep
// must produce the same event payloads at any worker count. Raw NDJSON
// lines differ run to run (sequence numbers interleave, timestamps and
// worker slots are scheduling facts), so the comparison is over
// Canonical() projections — identity fields only — sorted, which is
// exactly the determinism contract docs/events.md documents. The sorted
// canonical payloads are additionally pinned against a testdata golden
// so schema drift in hifi_events_v1 is a reviewed change, not an
// accident. Regenerate with HIFI_UPDATE_GOLDEN=1 go test ./internal/experiments -run TestEventLog.

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry/events"
)

const eventsGolden = "testdata/events_golden.txt"

// runTwoJobSweep executes a seeded two-workload simulation batch with
// the event plane attached end to end — engine lifecycle events plus
// the memsim phase events emitted from inside each job — writing the
// NDJSON log to path through the real sink, then reads it back.
func runTwoJobSweep(t *testing.T, workers int, path string) []events.Event {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := events.WriteHeader(f, "experiments-test"); err != nil {
		t.Fatal(err)
	}
	bus := events.New(0)
	bus.AttachSink(f)

	o := quick()
	o.Events = bus
	eng := engine.New(engine.Options{Workers: workers, Events: bus})
	ws := o.workloads()[:2]
	cfg := o.config(energy.Racetrack, shiftctrl.PECCSAdaptive)
	jobs := []engine.Job{
		o.simJob(ws[0], cfg, "evt"),
		o.simJob(ws[1], cfg, "evt"),
	}
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if err := bus.SinkErr(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	hdr, evs, err := events.ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != events.SchemaV1 {
		t.Fatalf("log schema = %q, want %q", hdr.Schema, events.SchemaV1)
	}
	return evs
}

// canonicals returns the sorted canonical payloads of evs.
func canonicals(evs []events.Event) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Canonical()
	}
	sort.Strings(out)
	return out
}

func TestEventLogDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	dir := t.TempDir()

	serial := runTwoJobSweep(t, 1, filepath.Join(dir, "j1.ndjson"))
	par := runTwoJobSweep(t, 4, filepath.Join(dir, "j4.ndjson"))

	// Sequence numbers must be strictly monotonic in emit order in both
	// logs — that is the ordering contract replay depends on.
	for name, evs := range map[string][]events.Event{"jobs=1": serial, "jobs=4": par} {
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Fatalf("%s: seq not monotonic at line %d: %d then %d",
					name, i, evs[i-1].Seq, evs[i].Seq)
			}
		}
	}

	// job.queued events are emitted up front in submission order, before
	// any worker runs — the prefix every consumer can rely on.
	for i, evs := range [][]events.Event{serial, par} {
		if len(evs) < 2 || evs[0].Type != events.JobQueued || evs[1].Type != events.JobQueued {
			t.Errorf("log %d does not open with the queued prefix", i)
		}
	}

	got, want := canonicals(par), canonicals(serial)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("canonical payloads differ between -jobs=1 and -jobs=4:\nserial:\n%s\nparallel:\n%s",
			strings.Join(want, "\n"), strings.Join(got, "\n"))
	}

	goldenBody := strings.Join(want, "\n") + "\n"
	if os.Getenv("HIFI_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(eventsGolden, []byte(goldenBody), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(eventsGolden)
	if err != nil {
		t.Fatalf("missing golden (run with HIFI_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(golden) != goldenBody {
		t.Errorf("canonical event payloads drifted from %s (HIFI_UPDATE_GOLDEN=1 regenerates):\ngot:\n%s\ngolden:\n%s",
			eventsGolden, goldenBody, golden)
	}
}
