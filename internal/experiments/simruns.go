package experiments

import (
	"context"
	"fmt"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/faults"
	"racetrack/hifi/internal/memsim"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/timeseries"
	"racetrack/hifi/internal/trace"
)

// RunOpts controls the simulation-backed experiments.
type RunOpts struct {
	// AccessesPerCore is the trace length; 0 uses the memsim default.
	AccessesPerCore int
	// Seed selects the deterministic trace family.
	Seed uint64
	// Scaled shrinks the hierarchy and working sets by ScaleShift powers
	// of two so tests and quick runs finish in seconds while preserving
	// the capacity relationships (SRAM < STT < RM; working sets between
	// SRAM and RM capacity).
	Scaled bool
	// MCTrials is the Monte-Carlo trial count for Fig 4.
	MCTrials int
	// Metrics optionally aggregates telemetry across every simulation an
	// experiment runs (shift counts, LLC traffic, expected failures);
	// see docs/observability.md. Nil disables instrumentation.
	Metrics *telemetry.Registry
	// Sampler optionally windows the Metrics registry on the simulated-
	// access clock, so a sweep produces a time-series of its evolution
	// (docs/observability.md). Cache-served jobs do not re-simulate and
	// therefore contribute no windows. Nil disables sampling.
	Sampler *timeseries.Sampler
	// Ctx carries the span collector (telemetry.WithCollector) so every
	// simulation an experiment runs is timed as a span under the caller's
	// tree. Nil means context.Background(), i.e. no span recording. It
	// lives in the options struct because the Fig*/Table* generators are
	// keyed closures whose signatures the CLI iterates over.
	Ctx context.Context
	// Eng executes the simulation jobs the experiments enumerate: worker
	// pool, content-addressed result cache, resume journal (see
	// docs/engine.md). Nil falls back to a serial, uncached engine that
	// reproduces the old inline loop exactly.
	Eng *engine.Engine
	// FaultPlan optionally runs every racetrack simulation under an
	// off-nominal device regime (internal/faults; -faults/-fault-plan
	// on the CLIs). Nil is the nominal device: tables are byte-identical
	// to a plan-free run, and the plan participates in the engine cache
	// fingerprint so injected and nominal results never mix.
	FaultPlan *faults.Plan
	// Events optionally receives the structured event stream: memsim
	// phase boundaries and fault windows from every simulation (the
	// engine's job lifecycle is wired separately through Eng; see
	// docs/events.md). Nil disables emission.
	Events *events.Bus
}

// ctx returns the configured context, defaulting to Background.
func (o RunOpts) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// DefaultRunOpts is the full-size configuration used by the benchmarks.
func DefaultRunOpts() RunOpts {
	return RunOpts{AccessesPerCore: 200_000, Seed: 1, MCTrials: 200_000}
}

// QuickRunOpts is the scaled configuration used by unit tests.
func QuickRunOpts() RunOpts {
	return RunOpts{AccessesPerCore: 4_000, Seed: 1, Scaled: true, MCTrials: 20_000}
}

// Scaled-mode hierarchy: capacities shrink while preserving the Table 4
// relationships (L1 < L2 < SRAM L3 < STT L3 < RM L3) and the working-set
// bands (insensitive sets fit every LLC or stream; sensitive sets overflow
// the SRAM LLC but fit the racetrack LLC).
const (
	scaledL1 = 2 << 10
	scaledL2 = 8 << 10
	// workload working sets shrink by this many powers of two.
	wsShift = 7
)

func scaledL3(t energy.Tech) int64 {
	switch t {
	case energy.SRAM:
		return 32 << 10
	case energy.STTRAM:
		return 256 << 10
	default:
		return 1 << 20
	}
}

// config builds a memsim configuration for the given technology and scheme.
func (o RunOpts) config(t energy.Tech, s shiftctrl.Scheme) memsim.Config {
	cfg := memsim.DefaultConfig(t, s)
	if o.AccessesPerCore > 0 {
		cfg.AccessesPerCore = o.AccessesPerCore
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Scaled {
		cfg.L1Capacity = scaledL1
		cfg.L2Capacity = scaledL2
		cfg.L3Capacity = scaledL3(t)
	}
	cfg.Metrics = o.Metrics
	cfg.Sampler = o.Sampler
	cfg.FaultPlan = o.FaultPlan.Norm()
	cfg.Events = o.Events
	return cfg
}

// workloads returns the PARSEC roster, with working sets scaled to the
// shrunken hierarchy when opts.Scaled is set.
func (o RunOpts) workloads() []trace.Workload {
	ws := trace.PARSEC()
	if !o.Scaled {
		return ws
	}
	for i := range ws {
		ws[i].WorkingSetB >>= wsShift
		// Keep every workload above the L2 capacity so the LLC sees
		// traffic, but insensitive sets stay within the SRAM LLC band.
		if ws[i].WorkingSetB < 12<<10 {
			ws[i].WorkingSetB = 12 << 10
		}
	}
	return ws
}

// runAll simulates every workload under the given configuration and
// returns results in roster order. The batch is executed by the
// engine — in parallel when RunOpts.Eng has workers — and each job is
// timed by its own engine span under the per-configuration span here.
func (o RunOpts) runAll(t energy.Tech, s shiftctrl.Scheme, ideal bool) []SimRes {
	ctx, sp := telemetry.StartSpan(o.ctx(), fmt.Sprintf("runAll:%v/%v", t, s),
		telemetry.A("ideal", fmt.Sprint(ideal)))
	defer sp.End()
	batch := o
	batch.Ctx = ctx
	return batch.runSims(o.simJobs(t, s, ideal))
}

// Fig10 regenerates paper Fig. 10: SDC MTTF of the racetrack LLC per
// workload under no protection, SED p-ECC, and SECDED p-ECC.
func Fig10(opts RunOpts) Table {
	t := Table{
		Title:  "Fig 10: SDC MTTF under different protection (seconds)",
		Header: []string{"workload", "baseline", "SED p-ECC", "SECDED p-ECC"},
	}
	base := opts.runAll(energy.Racetrack, shiftctrl.Baseline, false)
	sed := opts.runAll(energy.Racetrack, shiftctrl.SED, false)
	sec := opts.runAll(energy.Racetrack, shiftctrl.SECDED, false)
	for i := range base {
		t.AddRow(base[i].Workload,
			float64(base[i].SDCMTTF),
			float64(sed[i].SDCMTTF),
			float64(sec[i].SDCMTTF))
	}
	return t
}

// Fig11 regenerates paper Fig. 11: DUE MTTF per workload for SED, SECDED,
// p-ECC-O, p-ECC-S worst and p-ECC-S adaptive.
func Fig11(opts RunOpts) Table {
	t := Table{
		Title: "Fig 11: DUE MTTF under different protection (seconds)",
		Header: []string{"workload", "SED", "SECDED", "SECDED p-ECC-O",
			"p-ECC-S worst", "p-ECC-S adaptive"},
	}
	sed := opts.runAll(energy.Racetrack, shiftctrl.SED, false)
	sec := opts.runAll(energy.Racetrack, shiftctrl.SECDED, false)
	po := opts.runAll(energy.Racetrack, shiftctrl.PECCO, false)
	pw := opts.runAll(energy.Racetrack, shiftctrl.PECCSWorst, false)
	pa := opts.runAll(energy.Racetrack, shiftctrl.PECCSAdaptive, false)
	for i := range sed {
		t.AddRow(sed[i].Workload,
			float64(sed[i].DUEMTTF),
			float64(sec[i].DUEMTTF),
			float64(po[i].DUEMTTF),
			float64(pw[i].DUEMTTF),
			float64(pa[i].DUEMTTF))
	}
	return t
}

// Fig14 regenerates paper Fig. 14: total shift latency per workload,
// normalized to the unprotected racetrack baseline.
func Fig14(opts RunOpts) Table {
	t := Table{
		Title:  "Fig 14: relative shift latency of racetrack memory",
		Header: []string{"workload", "baseline", "p-ECC-O", "p-ECC-S adaptive", "p-ECC-S worst"},
	}
	base := opts.runAll(energy.Racetrack, shiftctrl.Baseline, false)
	po := opts.runAll(energy.Racetrack, shiftctrl.PECCO, false)
	pa := opts.runAll(energy.Racetrack, shiftctrl.PECCSAdaptive, false)
	pw := opts.runAll(energy.Racetrack, shiftctrl.PECCSWorst, false)
	for i := range base {
		b := float64(base[i].ShiftCycles)
		if b == 0 {
			b = 1
		}
		t.AddRow(base[i].Workload, 1.0,
			float64(po[i].ShiftCycles)/b,
			float64(pa[i].ShiftCycles)/b,
			float64(pw[i].ShiftCycles)/b)
	}
	return t
}

// fig16Schemes lists the system configurations compared by Figs. 16-18.
type sysConfig struct {
	label  string
	tech   energy.Tech
	scheme shiftctrl.Scheme
	ideal  bool
}

func fig16Configs() []sysConfig {
	return []sysConfig{
		{"SRAM", energy.SRAM, shiftctrl.Baseline, false},
		{"STT-RAM", energy.STTRAM, shiftctrl.Baseline, false},
		{"RM-Ideal", energy.Racetrack, shiftctrl.Baseline, true},
		{"RM w/o p-ECC", energy.Racetrack, shiftctrl.Baseline, false},
		{"RM p-ECC-O", energy.Racetrack, shiftctrl.PECCO, false},
		{"RM p-ECC-S adaptive", energy.Racetrack, shiftctrl.PECCSAdaptive, false},
		{"RM p-ECC-S worst", energy.Racetrack, shiftctrl.PECCSWorst, false},
	}
}

// Fig16 regenerates paper Fig. 16: overall execution time per workload,
// normalized to SRAM.
func Fig16(opts RunOpts) Table {
	return sysComparison(opts, "Fig 16: overall execution time (normalized to SRAM)",
		func(r SimRes) float64 { return float64(r.Cycles) })
}

// Fig17 regenerates paper Fig. 17: LLC dynamic energy per workload,
// normalized to SRAM.
func Fig17(opts RunOpts) Table {
	return sysComparison(opts, "Fig 17: LLC dynamic energy (normalized to SRAM)",
		func(r SimRes) float64 { return r.LLCDynNJ })
}

// Fig18 regenerates paper Fig. 18: total energy (dynamic + leakage + DRAM)
// per workload, normalized to SRAM.
func Fig18(opts RunOpts) Table {
	return sysComparison(opts, "Fig 18: total energy consumption (normalized to SRAM)",
		func(r SimRes) float64 { return r.TotalJ })
}

// sysComparison runs all Fig 16 configurations and reports metric values
// normalized to the SRAM column, with capacity-sensitive workloads first.
// Every configuration's roster is enumerated into one job batch, so a
// parallel engine overlaps simulations across configurations, not just
// within one.
func sysComparison(opts RunOpts, title string, metric func(SimRes) float64) Table {
	configs := fig16Configs()
	t := Table{Title: title}
	t.Header = append([]string{"workload", "class"}, labels(configs)...)
	roster := opts.workloads()
	var jobs []engine.Job
	for _, c := range configs {
		jobs = append(jobs, opts.simJobs(c.tech, c.scheme, c.ideal)...)
	}
	all := opts.runSims(jobs)
	results := make([][]SimRes, len(configs))
	for i := range configs {
		results[i] = all[i*len(roster) : (i+1)*len(roster)]
	}
	order := append(filterIdx(roster, true), filterIdx(roster, false)...)
	for _, wi := range order {
		row := []interface{}{roster[wi].Name, class(roster[wi])}
		base := metric(results[0][wi])
		for ci := range configs {
			row = append(row, metric(results[ci][wi])/base)
		}
		t.AddRow(row...)
	}
	return t
}

func labels(cs []sysConfig) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.label
	}
	return out
}

func class(w trace.Workload) string {
	if w.CapacitySensitive {
		return "cap-sensitive"
	}
	return "cap-insensitive"
}

func filterIdx(ws []trace.Workload, sensitive bool) []int {
	var out []int
	for i, w := range ws {
		if w.CapacitySensitive == sensitive {
			out = append(out, i)
		}
	}
	return out
}
