package experiments

import "testing"

// goldenTable exercises every formatting path: strings, floats across the
// fixed/scientific switchover, non-float values, and cells needing CSV
// quoting.
func goldenTable() Table {
	t := Table{
		Title:  "Golden",
		Note:   "fixture for rendering",
		Header: []string{"name", "small", "big", "count"},
	}
	t.AddRow("alpha", 0.5, 1.25e7, 3)
	t.AddRow("beta, quoted", 123.456, 0.0004, 42)
	t.AddRow("gamma", 0.0, 250.0, -1)
	return t
}

// TestTableStringGolden pins the aligned-text rendering byte for byte:
// column widths from the widest cell, two-space separators, trailing
// newline per row. Reports and terminal output diff cleanly only if this
// stays stable.
func TestTableStringGolden(t *testing.T) {
	const want = "== Golden ==\n" +
		"fixture for rendering\n" +
		"name          small  big       count\n" +
		"alpha         0.5    1.25e+07  3    \n" +
		"beta, quoted  123.5  0.0004    42   \n" +
		"gamma         0      250.0     -1   \n"
	if got := goldenTable().String(); got != want {
		t.Errorf("String() drifted from golden:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestTableCSVGolden pins the CSV rendering, including quoting of cells
// containing commas.
func TestTableCSVGolden(t *testing.T) {
	const want = "name,small,big,count\n" +
		"alpha,0.5,1.25e+07,3\n" +
		"\"beta, quoted\",123.5,0.0004,42\n" +
		"gamma,0,250.0,-1\n"
	if got := goldenTable().CSV(); got != want {
		t.Errorf("CSV() drifted from golden:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestFormatFloatEdges pins the number formatter's regime boundaries.
func TestFormatFloatEdges(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1e6, "1e+06"},        // scientific from 1e6 up
		{999_999, "999999.0"}, // just below the scientific cutover
		{0.001, "0.001"},      // fixed down to 1e-3
		{0.0009, "0.0009"},    // scientific below 1e-3
		{100, "100.0"},        // one decimal from 100 up
		{99.9999, "100"},      // %.4g below 100
		{-0.5, "-0.5"},        // sign preserved
		{-1234.5, "-1234.5"},  // magnitude, not value, picks the regime
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
