package experiments

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
)

// parse pulls a float back out of a rendered cell.
func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Note: "n", Header: []string{"a", "b"}}
	tab.AddRow("x", 1.5)
	tab.AddRow("y", 1e-9)
	s := tab.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "1.5") {
		t.Errorf("rendering missing pieces:\n%s", s)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "x,1.5") {
		t.Errorf("CSV row wrong:\n%s", csv)
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := Table{Header: []string{"a"}}
	tab.AddRow(`va"l,ue`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Errorf("quoting wrong: %s", csv)
	}
}

func TestFig1Shape(t *testing.T) {
	tab := Fig1()
	if len(tab.Rows) != 19 {
		t.Fatalf("rows = %d, want 19 (1e-20..1e-2)", len(tab.Rows))
	}
	// MTTF strictly decreasing with rate. The ~10-year paper anchor at
	// 1e-19 is enforced by the fidelity scorecard (fidelity_test.go).
	prev := math.Inf(1)
	for _, r := range tab.Rows {
		m := parse(t, r[1])
		if m >= prev {
			t.Fatalf("MTTF not decreasing at rate %s", r[0])
		}
		prev = m
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4(context.Background(), 20000, 7)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	// The correct bin dominates at every distance.
	var correct []float64
	for _, r := range tab.Rows {
		if r[0] == "0 (correct)" {
			for i := 1; i <= 3; i++ {
				correct = append(correct, parse(t, r[i]))
			}
		}
	}
	if len(correct) != 3 {
		t.Fatal("correct row missing")
	}
	for i, c := range correct {
		if c < 0.9 {
			t.Errorf("correct fraction %d = %v, want > 0.9", i, c)
		}
	}
	// Analytic tail strictly below MC resolution.
	last := tab.Rows[len(tab.Rows)-1]
	for i := 1; i <= 3; i++ {
		if v := parse(t, last[i]); v > -5 {
			t.Errorf("analytic |e|>=2 log10 rate = %v, want very small", v)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	// Per-distance published rates are enforced anchor by anchor in the
	// fidelity scorecard (fidelity_test.go); here only the shape.
	tab := Table2()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig7Shape(t *testing.T) {
	tab := Fig7()
	if len(tab.Rows) != 21 {
		t.Fatalf("rows = %d, want 21", len(tab.Rows))
	}
	// Monotone in both added reads (down the rows) and R/W count (across).
	for col := 1; col <= 5; col++ {
		prev := 0.0
		for _, r := range tab.Rows {
			v := parse(t, r[col])
			if v < prev {
				t.Fatalf("column %d not monotone", col)
			}
			prev = v
		}
	}
	first := tab.Rows[0]
	for col := 2; col <= 5; col++ {
		if parse(t, first[col]) < parse(t, first[col-1]) {
			t.Fatalf("row 0 not monotone across R/W counts")
		}
	}
}

func TestTable3Content(t *testing.T) {
	tab := Table3()
	var aRows, bRows int
	for _, r := range tab.Rows {
		switch r[0] {
		case "a":
			aRows++
		case "b":
			bRows++
		}
	}
	if aRows != 7 {
		t.Errorf("part (a) rows = %d, want 7", aRows)
	}
	if bRows < 7 {
		t.Errorf("part (b) rows = %d, want >= 7", bRows)
	}
	// The Dsafe=1 rate anchor lives in the fidelity scorecard; here only
	// that the row exists.
	found := false
	for _, r := range tab.Rows {
		if r[0] == "a" && r[1] == "Dsafe=1" {
			found = true
		}
	}
	if !found {
		t.Error("Dsafe=1 row missing")
	}
}

func TestFig12Shape(t *testing.T) {
	tab := Fig12()
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range tab.Rows {
		s := parse(t, r[2])
		o := parse(t, r[3])
		// Paper: p-ECC-O achieves the highest DUE MTTF everywhere.
		if o < s {
			t.Errorf("%s: p-ECC-O MTTF (%g) below p-ECC-S (%g)", r[0], o, s)
		}
		// Both schemes meet the 10-year target in every configuration.
		if r[4] != "yes" {
			t.Errorf("%s: does not meet 10-year target", r[0])
		}
	}
	// p-ECC-S MTTF grows as segments shrink (within the 64-bit family).
	var s64 []float64
	for _, r := range tab.Rows {
		if r[1] == "64" {
			s64 = append(s64, parse(t, r[2]))
		}
	}
	if len(s64) < 3 {
		t.Fatal("missing 64-bit configs")
	}
	if s64[0] < s64[len(s64)-1] {
		t.Error("p-ECC-S MTTF should be higher for shorter segments")
	}
}

func TestFig13Shape(t *testing.T) {
	tab := Fig13()
	for _, r := range tab.Rows {
		base := parse(t, r[2])
		s := parse(t, r[3])
		o := parse(t, r[4])
		if s < base || o < base {
			t.Errorf("%s: protection cheaper than baseline", r[0])
		}
	}
	// p-ECC-O wins for long segments (paper: Lseg >= 16).
	for _, r := range tab.Rows {
		if strings.HasSuffix(r[0], "x32") || strings.HasSuffix(r[0], "x64") {
			if parse(t, r[4]) > parse(t, r[3]) {
				t.Errorf("%s: p-ECC-O (%s) should beat p-ECC-S (%s)", r[0], r[4], r[3])
			}
		}
	}
}

func TestFig15Shape(t *testing.T) {
	tab := Fig15()
	for _, r := range tab.Rows {
		s := parse(t, r[2])
		o := parse(t, r[3])
		if s < 1-1e-9 || o < 1-1e-9 {
			t.Errorf("%s: normalized latency below 1", r[0])
		}
		// p-ECC-O pays at least as much as adaptive everywhere.
		if o < s-1e-9 {
			t.Errorf("%s: p-ECC-O (%v) below adaptive (%v)", r[0], o, s)
		}
	}
	// Long segments hurt p-ECC-O most (paper Fig 15).
	last := tab.Rows[len(tab.Rows)-1] // 2x64
	if parse(t, last[3]) < 2 {
		t.Errorf("p-ECC-O at 2x64 = %v, want >= 2", parse(t, last[3]))
	}
}

func TestTable5Content(t *testing.T) {
	// The published overhead numbers (detect cost, cell %, controller
	// area) are fidelity anchors; here only shape and the N/A cell.
	tab := Table5()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	if byName["p-ecc"] == nil {
		t.Fatal("p-ecc row missing")
	}
	if byName["sts"][5] != "N/A" {
		t.Error("sts cell overhead should be N/A")
	}
}

func TestAllAndOrderConsistent(t *testing.T) {
	m := All(QuickRunOpts())
	order := Order()
	if len(m) != len(order) {
		t.Fatalf("All has %d entries, Order %d", len(m), len(order))
	}
	for _, k := range order {
		if m[k] == nil {
			t.Errorf("experiment %q missing from All", k)
		}
	}
}
