// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §6). Each Fig*/Table* function produces the same rows or
// series the paper reports, as a Table value that renders to aligned text
// or CSV. The per-experiment index lives in DESIGN.md; measured-vs-paper
// comparisons live in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of string cells.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends one row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders numbers compactly: scientific for extremes, fixed
// otherwise.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	if t.Note != "" {
		b.WriteString(t.Note + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// All returns every experiment generator keyed by its paper label, using
// opts for the simulation-backed ones. The map is the experiment index the
// CLI iterates over.
func All(opts RunOpts) map[string]func() Table {
	return map[string]func() Table{
		"fig1":   Fig1,
		"fig4":   func() Table { return Fig4(opts.ctx(), opts.MCTrials, opts.Seed) },
		"table2": Table2,
		"fig7":   Fig7,
		"table3": Table3,
		"fig10":  func() Table { return Fig10(opts) },
		"fig11":  func() Table { return Fig11(opts) },
		"fig12":  Fig12,
		"fig13":  Fig13,
		"fig14":  func() Table { return Fig14(opts) },
		"fig15":  Fig15,
		"fig16":  func() Table { return Fig16(opts) },
		"fig17":  func() Table { return Fig17(opts) },
		"fig18":  func() Table { return Fig18(opts) },
		"table5": Table5,
		// Ablations beyond the paper's figures.
		"abl-strength":   AblationStrength,
		"abl-drive":      AblationDrive,
		"abl-material":   AblationMaterial,
		"abl-becc":       AblationBECC,
		"abl-sts":        AblationSTS,
		"abl-headpolicy": AblationHeadPolicy,
		"abl-interleave": AblationInterleave,
		"abl-area":       AblationFig7Area,
		"abl-promo":      func() Table { return AblationPromo(opts) },
		"abl-temp":       AblationTemperature,
	}
}

// Order lists experiment keys in paper order, followed by the ablations.
func Order() []string {
	return []string{"fig1", "fig4", "table2", "fig7", "table3", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "table5",
		"abl-strength", "abl-drive", "abl-material", "abl-becc", "abl-sts",
		"abl-headpolicy", "abl-interleave", "abl-area", "abl-promo",
		"abl-temp"}
}
