package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"racetrack/hifi/internal/area"
	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/physics"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/sim"
)

// llcIntensity is the peak access intensity of the evaluated 128MB LLC
// (paper §5.2: up to 83M accesses per second).
const llcIntensity = 83e6

// llcStripes is the stripe-group size of the paper's data mapping.
const llcStripes = 512

// Fig1 regenerates paper Fig. 1: MTTF of a racetrack LLC against the
// per-stripe position error rate, swept from 1e-20 to 1e-2.
func Fig1() Table {
	t := Table{
		Title:  "Fig 1: MTTF of a racetrack LLC vs per-stripe position error rate",
		Note:   fmt.Sprintf("intensity %.0fM acc/s, %d stripes per access", llcIntensity/1e6, llcStripes),
		Header: []string{"error_rate", "mttf_s", "mttf_readable"},
	}
	for exp := -20; exp <= -2; exp++ {
		rate := math.Pow(10, float64(exp))
		m := mttf.FromRate(rate, llcIntensity*llcStripes)
		t.AddRow(rate, m, readableDuration(m))
	}
	return t
}

// readableDuration renders seconds on the Fig. 1 axis scale.
func readableDuration(s float64) string {
	switch {
	case math.IsInf(s, 1):
		return "inf"
	case s >= mttf.SecondsPerYear:
		return fmt.Sprintf("%.3g years", s/mttf.SecondsPerYear)
	case s >= 86400:
		return fmt.Sprintf("%.3g days", s/86400)
	case s >= 60:
		return fmt.Sprintf("%.3g min", s/60)
	case s >= 1:
		return fmt.Sprintf("%.3g s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3g ms", s*1e3)
	default:
		return fmt.Sprintf("%.3g us", s*1e6)
	}
}

// Fig4 regenerates paper Fig. 4: the probability distribution of position
// errors for 1-, 4- and 7-step shifts of the raw (pre-STS) device, from
// Monte-Carlo over the physical timing model plus the analytic Gaussian
// tail for magnitudes beyond Monte-Carlo reach.
func Fig4(ctx context.Context, trials int, seed uint64) Table {
	if ctx == nil {
		ctx = context.Background()
	}
	if trials <= 0 {
		trials = 200_000
	}
	p := physics.Default()
	r := sim.NewRNG(seed ^ 0xf16a4)
	t := Table{
		Title:  "Fig 4: PDF of position errors (pre-STS)",
		Note:   fmt.Sprintf("%d Monte-Carlo trials per distance; far-tail values are analytic (log10 rate)", trials),
		Header: []string{"bin", "1-step", "4-step", "7-step"},
	}
	dists := []int{1, 4, 7}
	pdfs := make([]map[physics.PDFBin]float64, len(dists))
	for i, n := range dists {
		pdfs[i] = physics.ErrorPDFCtx(ctx, p, n, trials, r.Split())
	}
	bins := []struct {
		label string
		bin   physics.PDFBin
	}{
		{"(-2,-1) mid", physics.PDFBin{StepOffset: -2, InNotch: false}},
		{"-1 step", physics.PDFBin{StepOffset: -1, InNotch: true}},
		{"(-1,0) mid", physics.PDFBin{StepOffset: -1, InNotch: false}},
		{"0 (correct)", physics.PDFBin{StepOffset: 0, InNotch: true}},
		{"(0,+1) mid", physics.PDFBin{StepOffset: 0, InNotch: false}},
		{"+1 step", physics.PDFBin{StepOffset: 1, InNotch: true}},
		{"(+1,+2) mid", physics.PDFBin{StepOffset: 1, InNotch: false}},
	}
	for _, b := range bins {
		row := []interface{}{b.label}
		for i := range dists {
			row = append(row, pdfs[i][b.bin])
		}
		t.AddRow(row...)
	}
	// Analytic far tail: log10 P(|error| >= 2 steps).
	row := []interface{}{"log10 P(|e|>=2) analytic"}
	for _, n := range dists {
		row = append(row, physics.TailRateLog10(p, n, 2, r.Split()))
	}
	t.AddRow(row...)
	return t
}

// Table2 regenerates paper Table 2: post-STS out-of-step error rates per
// shift distance.
func Table2() Table {
	var em errmodel.Model
	t := Table{
		Title:  "Table 2: probability of out-of-step position error (after STS)",
		Header: []string{"distance", "k=1", "k=2", "k>=3"},
	}
	for n := 1; n <= 7; n++ {
		t.AddRow(n, em.K1Rate(n), em.K2Rate(n), em.K3PlusRate(n))
	}
	return t
}

// Fig7 regenerates paper Fig. 7: area per data bit of a 64-bit stripe as
// read-only ports are added, for different existing R/W port counts.
func Fig7() Table {
	m := area.Default()
	t := Table{
		Title:  "Fig 7: overhead of adding read ports (F^2 per data bit, 64-bit stripe)",
		Header: []string{"extra_read_ports", "RW=0", "RW=2", "RW=4", "RW=6", "RW=8"},
	}
	for r := 0; r <= 20; r++ {
		t.AddRow(r, m.Fig7Point(r, 0), m.Fig7Point(r, 2), m.Fig7Point(r, 4),
			m.Fig7Point(r, 6), m.Fig7Point(r, 8))
	}
	return t
}

// Table3 regenerates paper Table 3: (a) safe distance vs shift intensity
// and (b) safe shift sequences for a 7-step request with their interval
// thresholds and latencies.
func Table3() Table {
	var em errmodel.Model
	target := 10 * mttf.SecondsPerYear
	t := Table{
		Title:  "Table 3: (a) safe distance vs intensity; (b) safe sequences of a 7-step shift",
		Header: []string{"part", "key", "value", "detail"},
	}
	for n := 1; n <= 7; n++ {
		t.AddRow("a", fmt.Sprintf("Dsafe=%d", n), em.K2Rate(n),
			fmt.Sprintf("max intensity %s ops/s",
				engineering(shiftctrl.SafeIntensity(em, n, target, llcStripes))))
	}
	p := shiftctrl.NewPlanner(em, shiftctrl.DefaultTiming(), 7, 7)
	a := shiftctrl.NewAdapter(p, 2e9, target, llcStripes)
	for _, row := range a.Table(7) {
		t.AddRow("b", fmt.Sprintf("interval>=%d", row.MinInterval),
			fmt.Sprintf("%v", row.Seq), fmt.Sprintf("latency %d cycles", row.Cycles))
	}
	return t
}

// engineering formats a value with an SI-like suffix as the paper's Table 3
// does (4.53G, 518M, ...).
func engineering(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// stripeConfigs lists the Fig 12/13/15 sensitivity configurations:
// segment-number x segment-length for 32-, 64- and 128-bit stripes.
func stripeConfigs() []struct{ Segs, SegLen, Bits int } {
	var out []struct{ Segs, SegLen, Bits int }
	for _, bits := range []int{32, 64, 128} {
		for segLen := 2; segLen <= bits/2; segLen *= 2 {
			out = append(out, struct{ Segs, SegLen, Bits int }{bits / segLen, segLen, bits})
		}
	}
	return out
}

// uniformDistanceDist returns the probability of each shift distance for
// uniformly random successive target offsets in [0, segLen): the analytic
// access model for the sensitivity studies.
func uniformDistanceDist(segLen int) []float64 {
	n := float64(segLen)
	dist := make([]float64, segLen)
	for d := 0; d < segLen; d++ {
		if d == 0 {
			dist[0] = 1 / n
		} else {
			dist[d] = 2 * (n - float64(d)) / (n * n)
		}
	}
	return dist
}

// Fig12 regenerates paper Fig. 12: DUE MTTF sensitivity to the stripe
// configuration for p-ECC-S adaptive and p-ECC-O, at the LLC's worst-case
// intensity.
func Fig12() Table {
	var em errmodel.Model
	target := 10 * mttf.SecondsPerYear
	t := Table{
		Title:  "Fig 12: DUE MTTF sensitivity (segment number x segment length)",
		Note:   "uniform access offsets; worst-case LLC intensity",
		Header: []string{"config", "bits", "p-ECC-S adaptive (s)", "p-ECC-O (s)", "meets 10y"},
	}
	for _, c := range stripeConfigs() {
		segLen := c.SegLen
		maxDist := segLen - 1
		planner := shiftctrl.NewPlanner(em, shiftctrl.DefaultTiming(), max(maxDist, 1), max(maxDist, 1))
		dist := uniformDistanceDist(segLen)
		// p-ECC-S adaptive at worst-case intensity behaves like the
		// worst-case plan; expected uncorrectable rate per access:
		var rateS, opsS float64
		for d := 1; d < segLen; d++ {
			seq := shiftctrl.WorstCaseSequence(planner, d, llcIntensity, target, llcStripes)
			rateS += dist[d] * shiftctrl.SeqUncorrectableRate(em, seq) * llcStripes
			opsS += dist[d] * float64(len(seq))
		}
		mttfS := mttf.FromRate(rateS, llcIntensity)
		// p-ECC-O: every step is its own 1-step operation.
		var rateO float64
		for d := 1; d < segLen; d++ {
			rateO += dist[d] * float64(d) * em.K2Rate(1) * llcStripes
		}
		mttfO := mttf.FromRate(rateO, llcIntensity)
		meets := "no"
		if mttfS >= target && mttfO >= target {
			meets = "yes"
		}
		t.AddRow(fmt.Sprintf("%dx%d", c.Segs, segLen), c.Bits, mttfS, mttfO, meets)
	}
	return t
}

// Fig13 regenerates paper Fig. 13: average area per data bit across stripe
// configurations for the baseline, p-ECC-S adaptive, and p-ECC-O.
func Fig13() Table {
	m := area.Default()
	t := Table{
		Title:  "Fig 13: area per data bit sensitivity (F^2/b)",
		Header: []string{"config", "bits", "baseline", "p-ECC-S adaptive", "p-ECC-O"},
	}
	for _, c := range stripeConfigs() {
		base := m.PerBit(area.Baseline(c.Bits, c.SegLen))
		var sVal, oVal float64
		if c.SegLen >= 3 { // SECDED needs m=1 < segLen-1
			code := pecc.SECDED(c.SegLen)
			sVal = m.PerBit(area.StripeConfig{
				DataBits:    c.Bits,
				SegLen:      c.SegLen,
				ExtraDomain: code.AreaLength() + code.GuardDomains(),
				ExtraReads:  code.Window(),
			})
			oc := pecc.MustNewO(1, c.SegLen)
			oVal = m.PerBit(area.StripeConfig{
				DataBits:    c.Bits,
				SegLen:      c.SegLen,
				ExtraDomain: oc.ExtraDomains(),
				ExtraReads:  2 * (oc.M() + 1),
				ExtraWrites: oc.WritePorts(),
			})
		} else {
			// Lseg=2 cannot host SECDED p-ECC in-region; p-ECC-O still
			// works (overhead region is segment-length independent).
			oc := pecc.MustNewO(1, 4)
			oVal = m.PerBit(area.StripeConfig{
				DataBits:    c.Bits,
				SegLen:      c.SegLen,
				ExtraDomain: oc.ExtraDomains(),
				ExtraReads:  2 * (oc.M() + 1),
				ExtraWrites: oc.WritePorts(),
			})
			sVal = oVal
		}
		t.AddRow(fmt.Sprintf("%dx%d", c.Segs, c.SegLen), c.Bits, base, sVal, oVal)
	}
	return t
}

// Fig15 regenerates paper Fig. 15: average shift latency per access across
// stripe configurations, normalized to the unconstrained single-operation
// latency, for p-ECC-S adaptive and p-ECC-O.
func Fig15() Table {
	var em errmodel.Model
	timing := shiftctrl.DefaultTiming()
	target := 10 * mttf.SecondsPerYear
	t := Table{
		Title:  "Fig 15: average shift latency sensitivity (normalized to unconstrained)",
		Header: []string{"config", "bits", "p-ECC-S adaptive", "p-ECC-O"},
	}
	for _, c := range stripeConfigs() {
		segLen := c.SegLen
		dist := uniformDistanceDist(segLen)
		planner := shiftctrl.NewPlanner(em, timing, max(segLen-1, 1), max(segLen-1, 1))
		adapter := shiftctrl.NewAdapter(planner, 2e9, target, llcStripes)
		// Typical interval: LLC at moderate load (10% of worst case).
		intervalF := 10 * 2e9 / float64(llcIntensity)
		interval := uint64(intervalF)
		var base, lats, lato float64
		for d := 1; d < segLen; d++ {
			base += dist[d] * float64(timing.SeqCycles([]int{d}))
			lats += dist[d] * float64(timing.SeqCycles(adapter.SequenceFor(d, interval)))
			ones := make([]int, d)
			for i := range ones {
				ones[i] = 1
			}
			lato += dist[d] * float64(timing.SeqCycles(ones))
		}
		t.AddRow(fmt.Sprintf("%dx%d", c.Segs, segLen), c.Bits, lats/base, lato/base)
	}
	return t
}

// Table5 regenerates paper Table 5: design overhead of the protection
// mechanisms — detection/correction time and energy, cell area overhead,
// and controller area.
func Table5() Table {
	t := Table{
		Title: "Table 5: design overhead of position error protection",
		Header: []string{"approach", "detect_ns", "detect_pJ", "correct_ns",
			"correct_pJ", "cell_%", "controller_um2"},
	}
	tbl := energy.Table5()
	ctrl := area.Table5Controller()
	code := pecc.SECDED(8)
	oc := pecc.MustNewO(1, 8)
	peccCell := 100 * float64(code.AreaLength()+code.GuardDomains()) / 64
	peccoCell := 100 * float64(oc.ExtraDomains()) / 64

	rows := []struct {
		name string
		cell float64
		ctrl float64
	}{
		{"sts", math.NaN(), ctrl.STS},
		{"p-ecc", peccCell, ctrl.PECC},
		{"p-ecc-o", peccoCell, ctrl.PECCO},
		{"p-ecc-s worst", peccCell, ctrl.PECCSWorst},
		{"p-ecc-s adaptive", peccCell, ctrl.PECCSAdaptive},
	}
	// Keep deterministic order.
	sort.SliceStable(rows, func(i, j int) bool { return i < j })
	for _, r := range rows {
		o := tbl[r.name]
		cell := "N/A"
		if !math.IsNaN(r.cell) {
			cell = fmt.Sprintf("%.1f", r.cell)
		}
		t.AddRow(r.name, o.DetectNS, o.DetectPJ, o.CorrectNS, o.CorrectPJ, cell, r.ctrl)
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
