package experiments

import (
	"testing"

	"racetrack/hifi/internal/engine"
)

// quick returns a small scaled configuration for the determinism tests:
// Fig10 at these sizes is 36 simulations, enough to exercise the worker
// pool without dominating the test run.
func quick() RunOpts {
	return RunOpts{AccessesPerCore: 1_000, Seed: 1, Scaled: true, MCTrials: 5_000}
}

func engAt(t *testing.T, workers int, dir string) *engine.Engine {
	t.Helper()
	opts := engine.Options{Workers: workers}
	if dir != "" {
		c, err := engine.OpenCache(dir, "det-test")
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = c
	}
	return engine.New(opts)
}

// TestParallelSweepByteIdentical is the determinism golden test: the
// same sweep run serially, with 8 workers, and again from a warm cache
// must render byte-identical tables.
func TestParallelSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}

	serial := quick()
	serial.Eng = engAt(t, 1, "")
	want := Fig10(serial).String()

	par := quick()
	par.Eng = engAt(t, 8, "")
	if got := Fig10(par).String(); got != want {
		t.Errorf("-jobs=8 table differs from -jobs=1:\nserial:\n%s\nparallel:\n%s", want, got)
	}

	// Cold run populates the cache; warm run must serve every job from it
	// and still render the same bytes.
	dir := t.TempDir()
	cold := quick()
	cold.Eng = engAt(t, 4, dir)
	if got := Fig10(cold).String(); got != want {
		t.Errorf("cold cached table differs from serial baseline")
	}
	warm := quick()
	warm.Eng = engAt(t, 4, dir)
	if got := Fig10(warm).String(); got != want {
		t.Errorf("warm cached table differs from serial baseline")
	}
	st := warm.Eng.Status()
	if st.Executed != 0 || st.CacheHits == 0 || st.CacheHits != st.Jobs {
		t.Errorf("warm run should be 100%% cache hits: %+v", st)
	}
}

// TestCacheSharedAcrossExperiments checks that experiments enumerating
// overlapping (config, workload) tuples — Fig10's SED batch also appears
// in Fig11 — deduplicate through the content-addressed cache.
func TestCacheSharedAcrossExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	dir := t.TempDir()

	o1 := quick()
	o1.Eng = engAt(t, 4, dir)
	Fig10(o1)
	after10 := o1.Eng.Status()
	if after10.CacheHits != 0 {
		t.Fatalf("first experiment should be all misses: %+v", after10)
	}

	o2 := quick()
	o2.Eng = engAt(t, 4, dir)
	Fig11(o2)
	after11 := o2.Eng.Status()
	if after11.CacheHits == 0 {
		t.Errorf("Fig11 shares SED/SECDED runs with Fig10; expected cross-experiment cache hits, got %+v", after11)
	}
}
