package experiments

import (
	"strconv"
	"testing"

	"racetrack/hifi/internal/faults"
	"racetrack/hifi/internal/shiftctrl"
)

// chaosTestOpts is a campaign small enough for unit tests.
func chaosTestOpts() ChaosOpts {
	run := QuickRunOpts()
	run.AccessesPerCore = 500
	plan, err := faults.Preset("temp")
	if err != nil {
		panic(err)
	}
	return ChaosOpts{
		RunOpts:     run,
		Plan:        plan,
		Intensities: []float64{0, 2},
		Schemes:     []shiftctrl.Scheme{shiftctrl.Baseline, shiftctrl.SECDED},
	}
}

func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("table %q cell (%d,%d) = %q: %v", tab.Title, row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestDegradationCurves(t *testing.T) {
	o := chaosTestOpts()
	tables := Degradation(o)
	if len(tables) != 3 {
		t.Fatalf("Degradation returned %d tables, want 3", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != len(o.Intensities) {
			t.Errorf("%q has %d rows, want %d", tab.Title, len(tab.Rows), len(o.Intensities))
		}
		if len(tab.Header) != 1+len(o.Schemes) {
			t.Errorf("%q has %d columns, want %d", tab.Title, len(tab.Header), 1+len(o.Schemes))
		}
	}

	// Raising fault intensity must not improve reliability. Column 2 is
	// SECDED; its DUE MTTF is finite at both points.
	due := tables[0]
	if lo, hi := cell(t, due, 0, 2), cell(t, due, 1, 2); hi > lo {
		t.Errorf("SECDED DUE MTTF improved under faults: intensity 0 -> %g, 2 -> %g", lo, hi)
	}
	sdc := tables[1]
	if lo, hi := cell(t, sdc, 0, 1), cell(t, sdc, 1, 1); hi > lo {
		t.Errorf("Baseline SDC MTTF improved under faults: intensity 0 -> %g, 2 -> %g", lo, hi)
	}

	// Faults modulate the error model, not timing: the normalized
	// execution-time curve stays at exactly 1.
	norm := tables[2]
	for ri := range norm.Rows {
		for ci := 1; ci < len(norm.Rows[ri]); ci++ {
			if v := cell(t, norm, ri, ci); v != 1 {
				t.Errorf("normalized exec time row %d col %d = %g, want 1", ri, ci, v)
			}
		}
	}
}

func TestDegradationEmptyAxes(t *testing.T) {
	o := chaosTestOpts()
	o.Intensities = nil
	if got := Degradation(o); got != nil {
		t.Errorf("empty intensity axis produced %d tables", len(got))
	}
}
