package experiments

import "fmt"

// Run executes one experiment by key and converts the generators'
// panic-on-error convention into an error return. The Fig*/Table*
// generators predate the engine and panic on simulation failure
// (including context cancellation surfaced by the engine); callers that
// must survive a failed or interrupted experiment — the hifi-serve job
// runner, a SIGINT-ed hifi-experiments sweep that still wants to flush
// its manifest — go through here instead of calling the generator
// directly. The table bytes are identical to a direct All(opts)[key]()
// call; only the failure mode changes.
func Run(key string, opts RunOpts) (t Table, err error) {
	gen, ok := All(opts)[key]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown experiment %q", key)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: %s: %v", key, r)
		}
	}()
	return gen(), nil
}
