package experiments

import (
	"testing"
)

// The simulation-backed experiments run in scaled mode for tests; the
// benchmarks at the repository root run them at full size.

func TestFig10Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	tab := Fig10(QuickRunOpts())
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 workloads", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		base := parse(t, r[1])
		sed := parse(t, r[2])
		sec := parse(t, r[3])
		// Paper Fig 10: baseline << SED << SECDED SDC MTTF.
		if !(base < sed && sed < sec) {
			t.Errorf("%s: SDC MTTF ordering violated: %g, %g, %g", r[0], base, sed, sec)
		}
		// Baseline is tiny (paper: 1.33us); ours is scaled but must stay
		// far below a second.
		if base > 1 {
			t.Errorf("%s: baseline SDC MTTF = %g s, want << 1 s", r[0], base)
		}
	}
}

func TestFig11Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	tab := Fig11(QuickRunOpts())
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		sed := parse(t, r[1])
		sec := parse(t, r[2])
		po := parse(t, r[3])
		pw := parse(t, r[4])
		pa := parse(t, r[5])
		// SED detects every +-1 error: worst DUE MTTF by far.
		if !(sed < sec) {
			t.Errorf("%s: SED (%g) should be below SECDED (%g)", r[0], sed, sec)
		}
		// p-ECC-O improves on plain SECDED; the worst-case plan never
		// does worse (it equals SECDED when all observed distances are
		// already within the safe distance).
		if po <= sec {
			t.Errorf("%s: p-ECC-O (%g) should beat SECDED (%g)", r[0], po, sec)
		}
		if pw < sec*0.99 {
			t.Errorf("%s: worst (%g) should be >= SECDED (%g)", r[0], pw, sec)
		}
		// Adaptive sits at or above SECDED.
		if pa < sec {
			t.Errorf("%s: adaptive (%g) below SECDED (%g)", r[0], pa, sec)
		}
	}
}

func TestFig14Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	tab := Fig14(QuickRunOpts())
	for _, r := range tab.Rows {
		po := parse(t, r[2])
		pa := parse(t, r[3])
		pw := parse(t, r[4])
		// Paper Fig 14: p-ECC-O ~2x; safe-distance variants much less.
		if po < 1.15 {
			t.Errorf("%s: p-ECC-O relative latency = %v, want > 1.15", r[0], po)
		}
		if pa > po+1e-9 {
			t.Errorf("%s: adaptive (%v) should not exceed p-ECC-O (%v)", r[0], pa, po)
		}
		if pw > po+1e-9 {
			t.Errorf("%s: worst (%v) should not exceed p-ECC-O (%v)", r[0], pw, po)
		}
		if pa < 1-0.05 || pw < 1-0.05 {
			t.Errorf("%s: protected latency below baseline: pa=%v pw=%v", r[0], pa, pw)
		}
	}
}

func TestFig16Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	tab := Fig16(QuickRunOpts())
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	colIdx := map[string]int{}
	for i, h := range tab.Header {
		colIdx[h] = i
	}
	for _, r := range tab.Rows {
		sram := parse(t, r[colIdx["SRAM"]])
		if sram != 1 {
			t.Errorf("%s: SRAM column should be 1", r[0])
		}
		rmIdeal := parse(t, r[colIdx["RM-Ideal"]])
		rmBase := parse(t, r[colIdx["RM w/o p-ECC"]])
		rmAdapt := parse(t, r[colIdx["RM p-ECC-S adaptive"]])
		if r[1] == "cap-sensitive" {
			// Racetrack's capacity must win on sensitive workloads.
			if rmIdeal >= 1 {
				t.Errorf("%s: RM-Ideal (%v) should beat SRAM", r[0], rmIdeal)
			}
		}
		// Shift latency costs something: ideal <= real.
		if rmIdeal > rmBase+1e-9 {
			t.Errorf("%s: ideal (%v) slower than real (%v)", r[0], rmIdeal, rmBase)
		}
		// Protection overhead is small: adaptive within a few percent of
		// unprotected RM (paper: 0.2%; scaled sim allows more noise).
		if rmAdapt > rmBase*1.10 {
			t.Errorf("%s: adaptive %v >> unprotected %v", r[0], rmAdapt, rmBase)
		}
	}
}

func TestFig17Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	tab := Fig17(QuickRunOpts())
	colIdx := map[string]int{}
	for i, h := range tab.Header {
		colIdx[h] = i
	}
	for _, r := range tab.Rows {
		po := parse(t, r[colIdx["RM p-ECC-O"]])
		base := parse(t, r[colIdx["RM w/o p-ECC"]])
		adapt := parse(t, r[colIdx["RM p-ECC-S adaptive"]])
		// Paper Fig 17: p-ECC-O consumes notably more dynamic energy than
		// unprotected RM; adaptive sits between.
		if po <= base {
			t.Errorf("%s: p-ECC-O energy (%v) should exceed unprotected (%v)", r[0], po, base)
		}
		// Interleaving noise on the shared LLC allows ~1% slack.
		if adapt < base*0.99 || adapt > po*1.01 {
			t.Errorf("%s: adaptive energy (%v) outside [base %v, p-ECC-O %v]", r[0], adapt, base, po)
		}
	}
}

func TestFig18Scaled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	tab := Fig18(QuickRunOpts())
	colIdx := map[string]int{}
	for i, h := range tab.Header {
		colIdx[h] = i
	}
	for _, r := range tab.Rows {
		// Total energy: SRAM's leakage dominates; STT and RM win
		// (paper: ~53% reduction). In the scaled system the direction
		// must hold for capacity-sensitive workloads (fewer DRAM trips).
		if r[1] != "cap-sensitive" {
			continue
		}
		stt := parse(t, r[colIdx["STT-RAM"]])
		adapt := parse(t, r[colIdx["RM p-ECC-S adaptive"]])
		if stt >= 1.2 {
			t.Errorf("%s: STT total energy (%v) should not blow past SRAM", r[0], stt)
		}
		if adapt >= 1.2 {
			t.Errorf("%s: RM adaptive total energy (%v) should not blow past SRAM", r[0], adapt)
		}
	}
}
