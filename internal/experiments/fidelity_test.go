// Paper-anchor assertions for the experiment suite. The anchors
// themselves — which cell, which published number, what tolerance —
// live in internal/fidelity as data; these tests only generate the
// tables and evaluate the shipped anchor set, so the test suite and
// the CI fidelity gate (hifi-report -fidelity-out) enforce the exact
// same claims. External test package: fidelity imports experiments.
package experiments_test

import (
	"testing"

	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/fidelity"
)

// analyticTables generates the cheap closed-form tables.
func analyticTables(opts experiments.RunOpts) map[string]experiments.Table {
	all := experiments.All(opts)
	out := make(map[string]experiments.Table)
	for _, k := range []string{"fig1", "table2", "table3", "table5"} {
		out[k] = all[k]()
	}
	return out
}

func evaluate(t *testing.T, tables map[string]experiments.Table) fidelity.Scorecard {
	t.Helper()
	sc := fidelity.Evaluate(fidelity.Anchors(), tables)
	for _, r := range sc.Anchors {
		switch r.Status {
		case fidelity.Fail:
			t.Errorf("FAIL %s [%s]: %s", r.ID, r.Source, r.Detail)
		case fidelity.Warn:
			t.Logf("warn %s [%s]: %s", r.ID, r.Source, r.Detail)
		}
	}
	return sc
}

// TestAnalyticAnchors checks every anchor on the closed-form tables:
// Table 2 per-distance rates, the Fig 1 MTTF curve, Table 3a, and the
// Table 5 overhead numbers must match the paper without running a
// simulation.
func TestAnalyticAnchors(t *testing.T) {
	sc := evaluate(t, analyticTables(experiments.QuickRunOpts()))
	if sc.Pass == 0 {
		t.Fatal("no anchors evaluated")
	}
	// Simulation-backed anchors skip here; analytic ones must all run.
	for _, r := range sc.Anchors {
		if r.Status == fidelity.Skip {
			switch r.Experiment {
			case "fig1", "table2", "table3", "table5":
				t.Errorf("analytic anchor %s skipped", r.ID)
			}
		}
	}
}

// TestSimulationAnchorsScaled runs the simulation-backed figures once
// at scaled size and holds them to the shipped anchor set: the Fig
// 10/11 MTTF orderings, Fig 14 latency ratios, the Fig 16 capacity-
// sensitive split, and the Fig 17/18 energy relationships.
func TestSimulationAnchorsScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	opts := experiments.QuickRunOpts()
	all := experiments.All(opts)
	tables := analyticTables(opts)
	for _, k := range []string{"fig10", "fig11", "fig14", "fig16", "fig17", "fig18"} {
		tables[k] = all[k]()
		if n := len(tables[k].Rows); n != 12 {
			t.Errorf("%s: rows = %d, want 12 workloads", k, n)
		}
	}
	sc := evaluate(t, tables)
	if sc.Skip != 0 {
		t.Errorf("%d anchors skipped; the full table set should leave none", sc.Skip)
	}
	if sc.Fail != 0 {
		t.Errorf("scorecard: %d pass, %d warn, %d fail", sc.Pass, sc.Warn, sc.Fail)
	}
}
