package experiments

// Engine glue: the simulation-backed experiments no longer loop over
// memsim inline — they enumerate engine Jobs (one per workload+config
// tuple) and hand the batch to the parallel experiment engine. Results
// travel as SimRes, a JSON-stable projection of memsim.Result, so a
// result decoded from the content-addressed cache is byte-for-byte the
// result a fresh run produces and tables render identically at any
// worker count or cache temperature. See docs/engine.md.

import (
	"context"
	"fmt"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/memsim"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/trace"
)

// SimRes is the slice of a memsim.Result the tables consume, with only
// exported primitive fields so it survives the engine's canonical JSON
// encoding losslessly (Go's float64 JSON round-trip is exact).
type SimRes struct {
	Workload    string       `json:"workload"`
	Cycles      uint64       `json:"cycles"`
	ShiftOps    uint64       `json:"shift_ops"`
	ShiftSteps  uint64       `json:"shift_steps"`
	ShiftCycles uint64       `json:"shift_cycles"`
	SDCMTTF     engine.Float `json:"sdc_mttf_s"` // MTTFs are +Inf when no failure mass accrued
	DUEMTTF     engine.Float `json:"due_mttf_s"`
	LLCDynNJ    float64      `json:"llc_dynamic_nj"`
	TotalJ      float64      `json:"total_j"`
}

func toSimRes(r memsim.Result) SimRes {
	return SimRes{
		Workload:    r.Workload,
		Cycles:      r.Cycles,
		ShiftOps:    r.ShiftOps,
		ShiftSteps:  r.ShiftSteps,
		ShiftCycles: r.ShiftCycles,
		SDCMTTF:     engine.Float(r.Tracker.SDCMTTF()),
		DUEMTTF:     engine.Float(r.Tracker.DUEMTTF()),
		LLCDynNJ:    r.Energy.LLCDynamicNJ(),
		TotalJ:      r.Energy.TotalJ(),
	}
}

// engine returns the configured engine, or a serial, uncached fallback
// that behaves exactly like the old inline loop.
func (o RunOpts) engine() *engine.Engine {
	if o.Eng != nil {
		return o.Eng
	}
	return engine.New(engine.Options{Workers: 1, Metrics: o.Metrics})
}

// simJob builds the engine job for one (workload, config) simulation.
// The job key is the resolved memsim fingerprint, so identical runs
// reached from different experiments (Fig 10's SED batch, Fig 11's SED
// batch) content-address to the same cache entry.
func (o RunOpts) simJob(w trace.Workload, cfg memsim.Config, tag string) engine.Job {
	metrics := o.Metrics
	sampler := o.Sampler
	bus := o.Events
	return engine.Job{
		Key:   cfg.Fingerprint(w),
		Label: fmt.Sprintf("%s:%s", tag, w.Name),
		Fn: func(ctx context.Context) (any, error) {
			cfg.Metrics = metrics
			cfg.Sampler = sampler
			cfg.Events = bus
			r, err := memsim.RunCtx(ctx, w, cfg)
			if err != nil {
				return nil, err
			}
			return toSimRes(r), nil
		},
	}
}

// simJobs enumerates one job per roster workload for the given system.
func (o RunOpts) simJobs(t energy.Tech, s shiftctrl.Scheme, ideal bool) []engine.Job {
	tag := fmt.Sprintf("%v/%v", t, s)
	if ideal {
		tag += "/ideal"
	}
	jobs := make([]engine.Job, 0, 12)
	for _, w := range o.workloads() {
		cfg := o.config(t, s)
		cfg.Ideal = ideal
		jobs = append(jobs, o.simJob(w, cfg, tag))
	}
	return jobs
}

// runSims executes a job batch on the engine and decodes the canonical
// payloads in submission order. Failures panic, matching the previous
// inline-loop behaviour the CLIs rely on.
func (o RunOpts) runSims(jobs []engine.Job) []SimRes {
	rep, err := o.engine().Run(o.ctx(), jobs)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	out, err := engine.DecodeAll[SimRes](rep.Payloads)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return out
}
