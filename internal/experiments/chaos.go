package experiments

// Fault-injection campaigns: sweep one fault plan across an intensity
// axis and a set of protection schemes, and report how reliability and
// performance degrade as the device leaves the paper's calibrated
// regime. cmd/hifi-chaos drives this; docs/faults.md interprets the
// curves.

import (
	"fmt"
	"math"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/faults"
	"racetrack/hifi/internal/shiftctrl"
)

// ChaosOpts configures one degradation campaign.
type ChaosOpts struct {
	RunOpts
	// Plan is the fault plan at intensity 1. Each sweep point scales it
	// with Plan.Scale, so intensity 0 is the inert control point and the
	// curve is anchored at the nominal device.
	Plan *faults.Plan
	// Intensities are the sweep points, in report order.
	Intensities []float64
	// Schemes are the protection schemes compared at every point.
	Schemes []shiftctrl.Scheme
}

// DefaultChaosOpts is the standard campaign: the mixed preset swept from
// the control point to 4x nominal strength across the paper's main
// protection ladder.
func DefaultChaosOpts(run RunOpts) ChaosOpts {
	plan, err := faults.Preset("mixed")
	if err != nil {
		panic(fmt.Sprintf("experiments: mixed preset: %v", err))
	}
	return ChaosOpts{
		RunOpts:     run,
		Plan:        plan,
		Intensities: []float64{0, 0.5, 1, 2, 4},
		Schemes: []shiftctrl.Scheme{shiftctrl.Baseline, shiftctrl.SED,
			shiftctrl.SECDED, shiftctrl.PECCSAdaptive},
	}
}

// Degradation runs the whole campaign — every (scheme, intensity) pair
// over the full workload roster — as one engine batch, then reports
// three degradation curves: DUE MTTF, SDC MTTF, and execution time
// (normalized per scheme to the first sweep point). MTTFs combine
// across the roster as a series system (failure rates add), so one
// fragile workload dominates the way one weak stripe group would.
func Degradation(o ChaosOpts) []Table {
	if len(o.Intensities) == 0 || len(o.Schemes) == 0 {
		return nil
	}
	roster := o.workloads()
	var jobs []engine.Job
	for _, s := range o.Schemes {
		for _, x := range o.Intensities {
			run := o.RunOpts
			run.FaultPlan = o.Plan.Scale(x)
			jobs = append(jobs, run.simJobs(energy.Racetrack, s, false)...)
		}
	}
	all := o.runSims(jobs)

	// point[si][xi] aggregates one (scheme, intensity) roster slice.
	point := make([][]chaosAgg, len(o.Schemes))
	idx := 0
	for si := range o.Schemes {
		point[si] = make([]chaosAgg, len(o.Intensities))
		for xi := range o.Intensities {
			slice := all[idx*len(roster) : (idx+1)*len(roster)]
			idx++
			var dueRate, sdcRate, cycles float64
			for _, r := range slice {
				dueRate += rate(float64(r.DUEMTTF))
				sdcRate += rate(float64(r.SDCMTTF))
				cycles += float64(r.Cycles)
			}
			point[si][xi] = chaosAgg{due: mttfOf(dueRate), sdc: mttfOf(sdcRate), cycles: cycles}
		}
	}

	header := []string{"intensity"}
	for _, s := range o.Schemes {
		header = append(header, fmt.Sprint(s))
	}
	curve := func(title string, metric func(chaosAgg) float64) Table {
		t := Table{Title: title, Header: header,
			Note: fmt.Sprintf("plan: %s", o.Plan.Canonical())}
		for xi, x := range o.Intensities {
			row := []interface{}{x}
			for si := range o.Schemes {
				row = append(row, metric(point[si][xi]))
			}
			t.AddRow(row...)
		}
		return t
	}
	return []Table{
		curve("Chaos: DUE MTTF vs fault intensity (seconds, roster-combined)",
			func(a chaosAgg) float64 { return a.due }),
		curve("Chaos: SDC MTTF vs fault intensity (seconds, roster-combined)",
			func(a chaosAgg) float64 { return a.sdc }),
		curveNorm(o, point, header),
	}
}

// chaosAgg aggregates one (scheme, intensity) roster slice: combined
// MTTFs in seconds (+Inf when no failure mass accrued) and summed
// execution cycles.
type chaosAgg struct {
	due, sdc, cycles float64
}

// curveNorm reports summed execution cycles normalized per scheme to
// the first sweep point — flat rows mean the faults cost reliability,
// not time; rising rows mean the protection path is paying latency to
// absorb them.
func curveNorm(o ChaosOpts, point [][]chaosAgg, header []string) Table {
	t := Table{Title: "Chaos: execution time vs fault intensity (normalized to first point)",
		Header: header, Note: fmt.Sprintf("plan: %s", o.Plan.Canonical())}
	for xi, x := range o.Intensities {
		row := []interface{}{x}
		for si := range o.Schemes {
			base := point[si][0].cycles
			if base == 0 {
				base = 1
			}
			row = append(row, point[si][xi].cycles/base)
		}
		t.AddRow(row...)
	}
	return t
}

// rate converts an MTTF to a failure rate; +Inf MTTF contributes zero.
func rate(mttf float64) float64 {
	if math.IsInf(mttf, 1) || mttf <= 0 {
		return 0
	}
	return 1 / mttf
}

// mttfOf inverts a combined failure rate back to seconds.
func mttfOf(r float64) float64 {
	if r == 0 {
		return math.Inf(1)
	}
	return 1 / r
}

// normalizeToFirstRow divides every numeric column by its first-row
// value, leaving the first (label) column untouched. Rows were rendered
// by AddRow, so re-parse is avoided by rebuilding from the raw ratio.
func (t Table) normalizeToFirstRow() Table {
	if len(t.Rows) == 0 {
		return t
	}
	out := Table{Title: t.Title, Note: t.Note, Header: t.Header}
	var base []float64
	for _, row := range t.Rows {
		cells := []interface{}{row[0]}
		if base == nil {
			base = make([]float64, len(row))
		}
		for i := 1; i < len(row); i++ {
			var v float64
			fmt.Sscan(row[i], &v)
			if base[i] == 0 {
				base[i] = v
			}
			cells = append(cells, v/base[i])
		}
		out.AddRow(cells...)
	}
	return out
}
