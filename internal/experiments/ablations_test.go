package experiments

import (
	"strings"
	"testing"
)

func TestAblationStrength(t *testing.T) {
	tab := AblationStrength()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (m=0..3)", len(tab.Rows))
	}
	// Higher strength must strictly reduce the uncorrectable rate and
	// strictly raise MTTF.
	prevRate := 1.0
	prevMTTF := 0.0
	for _, r := range tab.Rows {
		rate := parse(t, r[6])
		m := parse(t, r[7])
		if rate >= prevRate {
			t.Errorf("m=%s: rate %g not below previous %g", r[0], rate, prevRate)
		}
		if m <= prevMTTF {
			t.Errorf("m=%s: MTTF %g not above previous %g", r[0], m, prevMTTF)
		}
		prevRate, prevMTTF = rate, m
	}
	// Strength costs domains and ports monotonically.
	if parse(t, tab.Rows[3][3]) <= parse(t, tab.Rows[0][3]) {
		t.Error("code length should grow with strength")
	}
	if parse(t, tab.Rows[3][5]) <= parse(t, tab.Rows[0][5]) {
		t.Error("port count should grow with strength")
	}
}

func TestAblationDrive(t *testing.T) {
	tab := AblationDrive()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The paper's 2*J0 operating point should be the best or near-best.
	var best float64
	var bestJ string
	for _, r := range tab.Rows {
		if c := parse(t, r[1]); c > best {
			best, bestJ = c, r[0]
		}
	}
	if bestJ != "2" && bestJ != "1.5" && bestJ != "2.5" {
		t.Errorf("best correct rate at J/J0=%s, want near the 2x operating point", bestJ)
	}
	// Low drive leans under-shift; high drive leans over-shift.
	lo := tab.Rows[0]
	hi := tab.Rows[len(tab.Rows)-1]
	if parse(t, lo[2])+parse(t, lo[4]) < parse(t, lo[3]) {
		t.Error("low drive should under-shoot or strand, not over-shoot")
	}
	if parse(t, hi[3]) < parse(t, hi[2]) {
		t.Error("high drive should over-shoot more than under-shoot")
	}
}

func TestAblationMaterial(t *testing.T) {
	tab := AblationMaterial()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	in, pma := tab.Rows[0], tab.Rows[1]
	if !strings.Contains(in[0], "in-plane") {
		t.Fatalf("first row %q", in[0])
	}
	if parse(t, pma[1]) <= parse(t, in[1]) {
		t.Error("perpendicular should gain density")
	}
	if parse(t, pma[3]) <= parse(t, in[3]) {
		t.Error("perpendicular should pay higher error rate (paper §3.1)")
	}
}

func TestAblationBECC(t *testing.T) {
	tab := AblationBECC()
	// Failure probability grows with stripe count; 512 stripes land at
	// the paper's ~0.17.
	prev := 0.0
	for _, r := range tab.Rows {
		p := parse(t, r[2])
		if p <= prev {
			t.Errorf("refresh failure not increasing: %v", p)
		}
		prev = p
		if r[0] == "512" && (p < 0.15 || p > 0.19) {
			t.Errorf("512-stripe refresh failure = %v, want ~0.17", p)
		}
	}
}

func TestAblationSTS(t *testing.T) {
	tab := AblationSTS()
	for _, r := range tab.Rows {
		rawMid := parse(t, r[1])
		rawTotal := parse(t, r[2])
		post := parse(t, r[3])
		if rawMid <= 0 {
			t.Errorf("distance %s: raw stop-in-middle rate should be positive", r[0])
		}
		if post >= rawTotal {
			t.Errorf("distance %s: STS should reduce the total error rate", r[0])
		}
	}
}

func TestAblationHeadPolicy(t *testing.T) {
	tab := AblationHeadPolicy()
	for _, r := range tab.Rows {
		lazy := parse(t, r[1])
		eagerTotal := parse(t, r[2])
		if eagerTotal <= lazy {
			t.Errorf("segLen %s: eager should move more in total (%v vs %v)", r[0], eagerTotal, lazy)
		}
	}
}

func TestAblationInterleave(t *testing.T) {
	tab := AblationInterleave()
	prev := 0.0
	for _, r := range tab.Rows {
		rate := parse(t, r[2])
		if rate <= prev {
			t.Error("DUE rate should grow with interleave width")
		}
		prev = rate
	}
}

func TestAblationTemperature(t *testing.T) {
	tab := AblationTemperature()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prevK1 := 0.0
	prevSafe := 99
	for _, r := range tab.Rows {
		k1 := parse(t, r[1])
		if k1 <= prevK1 {
			t.Errorf("temp %s: k1 %g not increasing", r[0], k1)
		}
		prevK1 = k1
		safe := int(parse(t, r[3]))
		if safe > prevSafe {
			t.Errorf("temp %s: safe distance %d increased with heat", r[0], safe)
		}
		prevSafe = safe
	}
	// Room temperature matches the paper's operating point.
	for _, r := range tab.Rows {
		if r[0] == "25" && int(parse(t, r[3])) != 3 {
			t.Errorf("25C safe distance = %s, want 3 (paper §5.2)", r[3])
		}
	}
}

func TestAblationPromoScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	tab := AblationPromo(QuickRunOpts())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Larger buffers absorb monotonically more shift traffic.
	prev := 2.0
	for _, r := range tab.Rows {
		frac := parse(t, r[2])
		if frac > prev+1e-9 {
			t.Errorf("entries %s: shift fraction %v increased", r[0], frac)
		}
		prev = frac
	}
	// The largest buffer must absorb a visible share.
	last := parse(t, tab.Rows[len(tab.Rows)-1][2])
	if last >= 1 {
		t.Errorf("64-entry buffer absorbed nothing: %v", last)
	}
}

func TestAblationFig7Area(t *testing.T) {
	tab := AblationFig7Area()
	prev := -1.0
	for _, r := range tab.Rows {
		v := parse(t, r[3])
		if v < prev {
			t.Error("area should not shrink with strength")
		}
		prev = v
	}
	// m=1 overhead should be in the Table 5 ballpark (a few percent at
	// the area model level, 17% at the domain-count level).
	if over := parse(t, tab.Rows[1][4]); over < 0 || over > 30 {
		t.Errorf("m=1 area overhead = %v%%", over)
	}
}
