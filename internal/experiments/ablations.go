package experiments

import (
	"fmt"

	"racetrack/hifi/internal/area"
	"racetrack/hifi/internal/becc"
	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/memsim"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/physics"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/sim"
)

// Aliases keeping the ablation code concise.
const (
	energyRacetrack = energy.Racetrack
	schemeAdaptive  = shiftctrl.PECCSAdaptive
)

var memsimRun = memsim.Run

// This file holds ablation studies of design choices the paper calls out
// but does not plot: p-ECC protection strength, the drive-current operating
// point, the STS stage decomposition, material choice, and the b-ECC
// refresh-failure argument.

// AblationStrength sweeps the p-ECC correction strength m for the default
// 64-bit, Lseg=8 stripe: reliability gained versus domains and ports paid.
func AblationStrength() Table {
	var em errmodel.Model
	t := Table{
		Title: "Ablation: p-ECC protection strength (64-bit stripe, Lseg=8)",
		Note:  "uncorrectable rate at 4-step shifts; area at the default port model",
		Header: []string{"m", "corrects", "detects", "code_domains", "guard",
			"ports", "uncorrectable_rate", "DUE MTTF @50M ops/s (s)"},
	}
	for m := 0; m <= 3; m++ {
		code := pecc.MustNew(m, 8)
		// Uncorrectable at strength m: errors of magnitude > m.
		var rate float64
		for k := m + 1; k <= m+3; k++ {
			rate += em.KRate(4, k)
		}
		if m == 0 {
			// SED detects but corrects nothing: every detected +-1 is
			// unrecoverable.
			rate = em.K1Rate(4) + em.K2Rate(4)
		}
		t.AddRow(m,
			fmt.Sprintf("+-%d", m),
			fmt.Sprintf("+-%d", m+1),
			code.Length(),
			code.GuardDomains(),
			code.Window(),
			rate,
			mttf.FromRate(rate*512, 50e6))
	}
	return t
}

// AblationDrive sweeps the drive current density around the paper's 2*J0
// operating point, showing why J is chosen there: lower J under-shoots
// (walls fail to escape notches in the scheduled time), higher J
// over-shoots.
func AblationDrive() Table {
	t := Table{
		Title:  "Ablation: drive current density vs raw shift outcome (4-step shifts)",
		Note:   "Monte-Carlo over the physics model, 30k trials per point",
		Header: []string{"J/J0", "correct", "under(-)", "over(+)", "stop-in-middle"},
	}
	base := physics.Default()
	r := sim.NewRNG(0xD21E)
	for _, ratio := range []float64{1.2, 1.5, 2.0, 2.5, 3.0} {
		p := base
		p.ShiftCurrentJ = ratio * base.ThresholdJ0
		var correct, under, over, mid int
		const trials = 30000
		rr := r.Split()
		for i := 0; i < trials; i++ {
			o := physics.SampleShift(p, 4, rr)
			switch {
			case o.Correct():
				correct++
			case o.StopInMiddle():
				mid++
			case o.StepOffset < 0:
				under++
			default:
				over++
			}
		}
		t.AddRow(ratio,
			float64(correct)/trials, float64(under)/trials,
			float64(over)/trials, float64(mid)/trials)
	}
	return t
}

// AblationMaterial compares the in-plane (Table 1) device against a
// perpendicular-anisotropy variant: density gained vs raw error rate paid
// (paper §3.1's closing remark).
func AblationMaterial() Table {
	t := Table{
		Title:  "Ablation: in-plane vs perpendicular material",
		Header: []string{"material", "density_gain", "step_time_ns", "raw_error_rate_4step"},
	}
	r := sim.NewRNG(0x3A7)
	for _, m := range []physics.Material{physics.InPlane, physics.Perpendicular} {
		p := physics.ForMaterial(m)
		bad := 0
		const trials = 50000
		rr := r.Split()
		for i := 0; i < trials; i++ {
			if !physics.SampleShift(p, 4, rr).Correct() {
				bad++
			}
		}
		t.AddRow(m.String(),
			physics.DensityGain(m),
			p.StepTime(p.ShiftCurrentJ)*1e9,
			float64(bad)/trials)
	}
	return t
}

// AblationBECC reproduces the §3.2 numbers: why conventional bit-ECC
// cannot recover position errors — the refresh an uncorrectable detection
// forces is itself likely to be corrupted.
func AblationBECC() Table {
	var em errmodel.Model
	t := Table{
		Title:  "Ablation: b-ECC refresh recovery vs stripe population (SS 3.2)",
		Header: []string{"stripes", "refresh_shift_ops", "P(second error during refresh)", "resulting MTTF if refreshing at 20ms (s)"},
	}
	for _, stripes := range []int{64, 128, 256, 512} {
		ops, pfail := becc.RefreshRecovery(em, 8, stripes)
		// If every detected error forces a refresh and refreshes repeat
		// every 20 ms (the paper's b-ECC MTTF figure), the chance of a
		// corrupted refresh bounds the recovery MTTF.
		m := 20e-3 / pfail
		t.AddRow(stripes, ops, pfail, m)
	}
	return t
}

// AblationSTS decomposes the STS latency budget and shows the conversion
// of stop-in-middle errors into out-of-step ones.
func AblationSTS() Table {
	raw := errmodel.Model{DisableSTS: true}
	sts := errmodel.Model{}
	t := Table{
		Title:  "Ablation: STS on/off (error decomposition per distance)",
		Header: []string{"distance", "raw_stop_in_middle", "raw_total", "post_STS_total", "latency_cycles"},
	}
	tm := shiftctrl.DefaultTiming()
	for n := 1; n <= 7; n++ {
		t.AddRow(n,
			raw.StopInMiddleRate(n),
			raw.ErrorRate(n),
			sts.ErrorRate(n),
			tm.STS.Cycles(n))
	}
	return t
}

// AblationHeadPolicy compares head-management policies for the racetrack
// LLC: keeping the head where the last access left it (lazy, the default)
// versus eagerly returning it to offset 0 after each access (eager), under
// a uniform access-offset model. Eager pays return shifts off the critical
// path but doubles total movement; lazy exploits locality.
func AblationHeadPolicy() Table {
	t := Table{
		Title:  "Ablation: head management policy (uniform offsets, analytic)",
		Header: []string{"seg_len", "lazy_avg_steps", "eager_avg_steps", "eager_critical_path_steps"},
	}
	for _, segLen := range []int{4, 8, 16, 32} {
		n := float64(segLen)
		// Lazy: E|a-b| for uniform a,b = (n^2-1)/(3n).
		lazy := (n*n - 1) / (3 * n)
		// Eager: every access shifts from 0 to its offset and back.
		eagerTotal := 2 * (n - 1) / 2
		eagerCritical := (n - 1) / 2
		t.AddRow(segLen, lazy, eagerTotal, eagerCritical)
	}
	return t
}

// AblationInterleave sweeps the stripes-per-group interleave factor: wider
// groups amortize one shift over more bits but multiply the per-operation
// failure exposure.
func AblationInterleave() Table {
	var em errmodel.Model
	t := Table{
		Title:  "Ablation: stripe-group interleave factor (SECDED, 3-step shifts, 50M ops/s)",
		Header: []string{"stripes_per_group", "bits_per_op", "DUE_rate_per_op", "DUE MTTF (s)"},
	}
	for _, g := range []int{64, 128, 256, 512, 1024} {
		rate := em.K2Rate(3) * float64(g)
		t.AddRow(g, g, rate, mttf.FromRate(rate, 50e6))
	}
	return t
}

// AblationTemperature sweeps the operating temperature: the environmental
// part of the paper's §3.1 variation model widens with heat, shrinking the
// timing margin and inflating every error rate — and with it the safe
// shift distance at a fixed intensity.
func AblationTemperature() Table {
	t := Table{
		Title:  "Ablation: operating temperature (SECDED, 10-year target, 83M ops/s)",
		Header: []string{"temp_C", "k1(4-step)", "k2(4-step)", "safe_distance", "DUE MTTF @ Dsafe (s)"},
	}
	target := 10 * mttf.SecondsPerYear
	for _, temp := range []float64{0.001, 25, 45, 65, 85, 105} {
		em := errmodel.Model{TempC: temp}
		maxRate := mttf.MaxRateFor(target, llcIntensity*llcStripes)
		d := shiftctrl.SafeDistance(em, maxRate, 7)
		m := mttf.FromRate(em.K2Rate(d)*llcStripes, llcIntensity)
		label := temp
		if temp < 1 {
			label = 0
		}
		t.AddRow(label, em.K1Rate(4), em.K2Rate(4), d, m)
	}
	return t
}

// AblationPromo sweeps the shift-aware promotion buffer size (the
// STAG-style structure of [43]) on one capacity-sensitive workload,
// reporting the shift traffic absorbed and the execution-time effect.
func AblationPromo(opts RunOpts) Table {
	t := Table{
		Title:  "Ablation: shift-aware promotion buffer size (vips)",
		Header: []string{"entries", "shift_ops", "shift_ops_vs_none", "cycles_vs_none"},
	}
	ws := opts.workloads()
	var w = ws[0]
	for _, cand := range ws {
		if cand.Name == "vips" { // skewed reuse: the buffer's target case
			w = cand
		}
	}
	var baseOps, baseCycles float64
	for _, entries := range []int{0, 8, 16, 32, 64} {
		cfg := opts.config(energyRacetrack, schemeAdaptive)
		cfg.PromoEntries = entries
		r, err := memsimRun(w, cfg)
		if err != nil {
			panic(err)
		}
		if entries == 0 {
			baseOps = float64(r.ShiftOps)
			baseCycles = float64(r.Cycles)
		}
		t.AddRow(entries, r.ShiftOps,
			float64(r.ShiftOps)/baseOps,
			float64(r.Cycles)/baseCycles)
	}
	return t
}

// AblationFig7Area cross-checks the area model against the p-ECC port
// counts actually used by each strength.
func AblationFig7Area() Table {
	m := area.Default()
	t := Table{
		Title:  "Ablation: area cost of p-ECC strength (64-bit stripe, 8 R/W ports)",
		Header: []string{"m", "extra_domains", "extra_reads", "F2_per_bit", "overhead_vs_baseline_%"},
	}
	base := m.PerBit(area.Baseline(64, 8))
	for strength := 0; strength <= 3; strength++ {
		code := pecc.MustNew(strength, 8)
		cfg := area.StripeConfig{
			DataBits:    64,
			SegLen:      8,
			ExtraDomain: code.AreaLength() + code.GuardDomains(),
			ExtraReads:  code.Window(),
		}
		v := m.PerBit(cfg)
		t.AddRow(strength, cfg.ExtraDomain, cfg.ExtraReads, v, 100*(v-base)/base)
	}
	return t
}
