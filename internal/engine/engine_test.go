package engine

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
)

// testJobs builds n jobs whose Fn records execution counts in execs and
// returns a deterministic payload derived from the index.
func testJobs(n int, execs *atomic.Int64) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{
			Key:   fmt.Sprintf("test-job|%d", i),
			Label: fmt.Sprintf("job%d", i),
			Fn: func(ctx context.Context) (any, error) {
				execs.Add(1)
				return map[string]int{"index": i, "square": i * i}, nil
			},
		}
	}
	return jobs
}

func TestRunOrderAndDeterminism(t *testing.T) {
	var execs atomic.Int64
	jobs := testJobs(16, &execs)

	serial, err := New(Options{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Options{Workers: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 32 {
		t.Fatalf("executions = %d, want 32", got)
	}
	for i := range jobs {
		if string(serial.Payloads[i]) != string(parallel.Payloads[i]) {
			t.Errorf("payload %d differs: serial %s parallel %s",
				i, serial.Payloads[i], parallel.Payloads[i])
		}
	}
	if serial.Executed != 16 || parallel.Executed != 16 {
		t.Errorf("executed: serial %d parallel %d, want 16/16", serial.Executed, parallel.Executed)
	}
	// Payloads decode in submission order regardless of completion order.
	out, err := DecodeAll[map[string]int](parallel.Payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range out {
		if m["index"] != i || m["square"] != i*i {
			t.Errorf("payload %d = %v", i, m)
		}
	}
}

func TestCacheReuse(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, "v-test")
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	jobs := testJobs(8, &execs)

	e1 := New(Options{Workers: 4, Cache: cache})
	r1, err := e1.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Executed != 8 || r1.CacheHits != 0 {
		t.Fatalf("cold run: executed %d hits %d, want 8/0", r1.Executed, r1.CacheHits)
	}

	// A second engine over the same cache dir executes nothing.
	cache2, err := OpenCache(dir, "v-test")
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{Workers: 4, Cache: cache2})
	r2, err := e2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Executed != 0 || r2.CacheHits != 8 {
		t.Fatalf("warm run: executed %d hits %d, want 0/8", r2.Executed, r2.CacheHits)
	}
	if got := execs.Load(); got != 8 {
		t.Fatalf("total executions = %d, want 8", got)
	}
	for i := range jobs {
		if string(r1.Payloads[i]) != string(r2.Payloads[i]) {
			t.Errorf("cached payload %d differs from fresh", i)
		}
	}

	// A different code version misses everything.
	cache3, err := OpenCache(dir, "v-other")
	if err != nil {
		t.Fatal(err)
	}
	r3, err := New(Options{Workers: 2, Cache: cache3}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Executed != 8 {
		t.Fatalf("version-bumped run: executed %d, want 8", r3.Executed)
	}
}

func TestPanicIsolationAndRetry(t *testing.T) {
	var attempts atomic.Int64
	flaky := Job{
		Key:   "flaky",
		Label: "flaky",
		Fn: func(ctx context.Context) (any, error) {
			if attempts.Add(1) == 1 {
				panic("transient explosion")
			}
			return "ok", nil
		},
	}
	rep, err := New(Options{Workers: 2, Retries: 1}).Run(context.Background(), []Job{flaky})
	if err != nil {
		t.Fatalf("retry should have recovered the panic: %v", err)
	}
	if rep.Retried != 1 {
		t.Errorf("retried = %d, want 1", rep.Retried)
	}
	v, err := Decode[string](rep.Payloads[0])
	if err != nil || v != "ok" {
		t.Errorf("payload = %q, %v", v, err)
	}

	// Retries exhausted: the failure is permanent and reported.
	always := Job{
		Key:   "always-bad",
		Label: "always-bad",
		Fn:    func(ctx context.Context) (any, error) { panic("permanent") },
	}
	if _, err := New(Options{Workers: 1, Retries: 1}).Run(context.Background(), []Job{always}); err == nil {
		t.Fatal("permanent failure not reported")
	}
}

func TestFailureCancelsQueuedJobs(t *testing.T) {
	var execs atomic.Int64
	jobs := make([]Job, 32)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Key: fmt.Sprintf("j%d", i),
			Fn: func(ctx context.Context) (any, error) {
				if i == 0 {
					return nil, fmt.Errorf("boom")
				}
				execs.Add(1)
				return i, nil
			},
		}
	}
	rep, err := New(Options{Workers: 1, Retries: 0}).Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("expected error")
	}
	// With one worker and job 0 failing first, the queue drains without
	// executing most of the remaining jobs.
	if got := execs.Load(); got == 31 {
		t.Errorf("all queued jobs still executed after failure")
	}
	if rep == nil {
		t.Fatal("report must be returned alongside the error")
	}
}

func TestJournalResumeSkipsCompleted(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, "v-test")
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal.jsonl")
	j1, err := OpenJournal(jpath, false)
	if err != nil {
		t.Fatal(err)
	}

	// First sweep dies on job 5: jobs 0-4 complete and are journaled.
	var execs atomic.Int64
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Key:   fmt.Sprintf("sweep-job|%d", i),
			Label: fmt.Sprintf("sw%d", i),
			Fn: func(ctx context.Context) (any, error) {
				if i == 5 {
					return nil, fmt.Errorf("simulated crash")
				}
				execs.Add(1)
				return i * 10, nil
			},
		}
	}
	_, err = New(Options{Workers: 1, Cache: cache, Journal: j1, Retries: 0}).
		Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("crash did not surface")
	}
	j1.Close()
	firstPass := execs.Load()
	if firstPass != 5 {
		t.Fatalf("first pass executed %d jobs, want 5 (serial order up to the crash)", firstPass)
	}

	// Simulate a torn final line from a kill mid-write.
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":99,"key":"torn`)
	f.Close()

	// Second sweep resumes: the crash is "fixed", journaled jobs skip.
	jobs[5].Fn = func(ctx context.Context) (any, error) {
		execs.Add(1)
		return 50, nil
	}
	j2, err := OpenJournal(jpath, true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 5 {
		t.Fatalf("journal entries after torn-line load = %d, want 5", j2.Len())
	}
	cache2, _ := OpenCache(dir, "v-test")
	rep, err := New(Options{Workers: 1, Cache: cache2, Journal: j2, Resume: true}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if rep.Resumed != 5 {
		t.Errorf("resumed = %d, want 5", rep.Resumed)
	}
	if got := execs.Load() - firstPass; got != 5 {
		t.Errorf("second pass executed %d jobs, want 5 (only the uncompleted tail)", got)
	}
	out, err := DecodeAll[int](rep.Payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10 {
			t.Errorf("payload %d = %d, want %d", i, v, i*10)
		}
	}
}

func TestMetricsAndStatus(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	cache, _ := OpenCache(dir, "v-test")
	var execs atomic.Int64
	jobs := testJobs(6, &execs)
	e := New(Options{Workers: 3, Cache: cache, Metrics: reg})
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(telemetry.MetricEngineJobs, "").Value(); got != 12 {
		t.Errorf("jobs counter = %v, want 12", got)
	}
	if got := reg.Counter(telemetry.MetricEngineExecuted, "").Value(); got != 6 {
		t.Errorf("executed counter = %v, want 6", got)
	}
	if got := reg.Counter(telemetry.MetricEngineCacheHits, "").Value(); got != 6 {
		t.Errorf("hits counter = %v, want 6", got)
	}
	if got := reg.Gauge(telemetry.MetricEngineQueueLen, "").Value(); got != 0 {
		t.Errorf("queue depth after drain = %v, want 0", got)
	}
	if got := reg.Gauge(telemetry.MetricEngineBusy, "").Value(); got != 0 {
		t.Errorf("busy workers after drain = %v, want 0", got)
	}
	s := e.Status()
	if s.Jobs != 12 || s.Executed != 6 || s.CacheHits != 6 || s.Failures != 0 {
		t.Errorf("status = %+v", s)
	}
	want := "engine: 12 jobs, 6 executed, 6 cache hits, 0 resumed, 0 retries, 0 failures, 0 corrupt, 0 timeouts"
	if e.Summary() != want {
		t.Errorf("summary = %q, want %q", e.Summary(), want)
	}
}

func TestStatusHandlerHeaders(t *testing.T) {
	e := New(Options{Workers: 1})
	rr := httptest.NewRecorder()
	e.StatusHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/engine", nil))
	if got := rr.Header().Get("Content-Type"); got != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", got)
	}
	if got := rr.Header().Get("Cache-Control"); got != "no-store" {
		t.Errorf("Cache-Control = %q", got)
	}
}

// TestJobLifecycleEvents checks the engine's emissions on the event
// bus: a job.queued prefix in submission order, one started/finished
// pair per executed job, and cache_hit on the warm re-run.
func TestJobLifecycleEvents(t *testing.T) {
	bus := events.New(0)
	dir := t.TempDir()
	cache, _ := OpenCache(dir, "v-test")
	var execs atomic.Int64
	jobs := testJobs(3, &execs)
	e := New(Options{Workers: 2, Cache: cache, Events: bus})
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Workers: 2, Cache: cache, Events: bus})
	if _, err := warm.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}

	all := bus.ReplaySince(0)
	count := map[events.Type]int{}
	for _, e := range all {
		count[e.Type]++
	}
	if count[events.JobQueued] != 6 || count[events.JobStarted] != 3 ||
		count[events.JobFinished] != 3 || count[events.JobCacheHit] != 3 {
		t.Errorf("event counts = %v", count)
	}
	// The queued prefix precedes any execution and preserves submission
	// order within each Run call.
	for i := 0; i < 3; i++ {
		if all[i].Type != events.JobQueued || all[i].Name != jobs[i].Label || all[i].N != 3 {
			t.Errorf("event %d = %+v, want queued %q n=3", i, all[i], jobs[i].Label)
		}
	}
}

func TestSubSeed(t *testing.T) {
	a := SubSeed(1, "canneal")
	b := SubSeed(1, "canneal")
	if a != b {
		t.Fatal("SubSeed not deterministic")
	}
	if SubSeed(1, "canneal") == SubSeed(1, "dedup") {
		t.Error("distinct names collide")
	}
	if SubSeed(1, "canneal") == SubSeed(2, "canneal") {
		t.Error("distinct base seeds collide")
	}
	if SubSeed(0, "") == 0 {
		t.Error("SubSeed must never return 0 (reserved for config defaults)")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25e-19, 1e300} {
		f := Float(v)
		b, err := f.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var g Float
		if err := g.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if g != f {
			t.Errorf("%v round-tripped to %v", f, g)
		}
	}
	inf := Float(1)
	if err := inf.UnmarshalJSON([]byte(`"+inf"`)); err != nil || float64(inf) <= 1e308 {
		t.Errorf("+inf decode: %v %v", inf, err)
	}
}

func TestKeyJSONStable(t *testing.T) {
	type key struct {
		A int
		B string
	}
	if KeyJSON(key{1, "x"}) != KeyJSON(key{1, "x"}) {
		t.Error("KeyJSON not stable")
	}
	if KeyJSON(key{1, "x"}) == KeyJSON(key{2, "x"}) {
		t.Error("KeyJSON collides")
	}
	if HashKey("v1", "k") == HashKey("v2", "k") {
		t.Error("HashKey ignores version")
	}
	if len(HashKey("v", "k")) != 64 {
		t.Error("HashKey is not a sha256 hex digest")
	}
}

// TestResourceAccounting: executed jobs accumulate wall/CPU/alloc/GC
// totals, cache hits do not, and journal entries carry the per-job
// account only for executed jobs.
func TestResourceAccounting(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	cache, err := OpenCache(dir, "v-test")
	if err != nil {
		t.Fatal(err)
	}
	journal, err := OpenJournal(filepath.Join(dir, "journal.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 4)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Key:   fmt.Sprintf("res-job|%d", i),
			Label: fmt.Sprintf("res%d", i),
			Fn: func(ctx context.Context) (any, error) {
				buf := make([]byte, 1<<20) // force measurable allocation
				for j := range buf {
					buf[j] = byte(i + j)
				}
				return int(buf[len(buf)-1]), nil
			},
		}
	}
	e := New(Options{Workers: 2, Cache: cache, Journal: journal, Metrics: reg})
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	rs := e.Resources()
	if rs.Jobs != 4 || rs.Executed != 4 || rs.CacheHits != 0 {
		t.Errorf("resources counts = %+v", rs)
	}
	if rs.AllocBytes < 4<<20 {
		t.Errorf("alloc bytes = %d, want >= 4MiB", rs.AllocBytes)
	}
	if rs.Mallocs == 0 {
		t.Errorf("mallocs = 0, want > 0")
	}
	if rs.MaxJobLabel == "" || rs.MaxJobWallMS < 0 {
		t.Errorf("max job = %q/%d", rs.MaxJobLabel, rs.MaxJobWallMS)
	}
	if got := reg.Counter(telemetry.MetricEngineJobAllocBytes, "").Value(); got != float64(rs.AllocBytes) {
		t.Errorf("alloc metric = %v, want %v", got, rs.AllocBytes)
	}

	// A warm re-run adds cache hits but no resource totals.
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	warm := e.Resources()
	if warm.Jobs != 8 || warm.CacheHits != 4 {
		t.Errorf("warm counts = %+v", warm)
	}
	if warm.AllocBytes != rs.AllocBytes || warm.JobCPUMS != rs.JobCPUMS {
		t.Errorf("cache hits accrued resources: cold %+v warm %+v", rs, warm)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	// Journal: executed entries carry resources, cache-hit entries do not.
	back, err := OpenJournal(filepath.Join(dir, "journal.jsonl"), true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = back.Close() }()
	var withRes, without int
	for _, en := range back.done {
		if en.Resources != nil {
			withRes++
			if en.Resources.AllocBytes < 1<<20 {
				t.Errorf("entry %s alloc = %d, want >= 1MiB", en.Label, en.Resources.AllocBytes)
			}
		} else {
			without++
		}
	}
	// done is keyed by hash, so the warm hits overwrote the executed
	// entries; reloaded state reflects the latest record per job.
	if withRes+without != 4 {
		t.Errorf("journal entries = %d, want 4", withRes+without)
	}
}
