package engine

import (
	"encoding/json"
	"math"
)

// Float is a float64 whose JSON encoding round-trips the IEEE specials
// that encoding/json rejects. Finite values marshal as ordinary numbers
// (Go's shortest-form float encoding is an exact round-trip); +Inf,
// -Inf, and NaN marshal as the strings "+inf", "-inf", "nan". Result
// projections use it for fields that can legitimately be infinite —
// an MTTF with zero accumulated failure probability, for example.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	case math.IsNaN(v):
		return []byte(`"nan"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-inf"`:
		*f = Float(math.Inf(-1))
		return nil
	case `"nan"`:
		*f = Float(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}
