package engine

// The engine's persistence (cache objects, the journal) goes through the
// narrow FS interface instead of the os package directly, so the fault
// tests in engine/faultfs can interpose torn writes, read errors,
// corruption, and stalls without touching the real filesystem code
// paths. Production always uses OS(), the trivial passthrough.

import (
	"io"
	"os"
	"time"
)

// FS is the slice of filesystem behaviour the engine needs. All paths
// are OS paths; semantics match the corresponding os functions.
type FS interface {
	MkdirAll(dir string) error
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte) error
	// WriteFileExcl creates path exclusively (O_CREATE|O_EXCL) and
	// writes data; an existing file fails with an error matching
	// fs.ErrExist. The cache uses it to claim temp-file names, so two
	// processes sharing a cache directory can never interleave writes
	// into the same temp file.
	WriteFileExcl(path string, data []byte) error
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// Chtimes sets path's access and modification times. The cache uses
	// it to touch objects on read, so eviction under a size budget is
	// access-ordered rather than write-ordered.
	Chtimes(path string, t time.Time) error
	// OpenAppend opens path for appending (creating it if needed);
	// truncate discards existing content first.
	OpenAppend(path string, truncate bool) (io.WriteCloser, error)
}

type osFS struct{}

func (osFS) MkdirAll(dir string) error                { return os.MkdirAll(dir, 0o755) }
func (osFS) ReadFile(path string) ([]byte, error)     { return os.ReadFile(path) }
func (osFS) WriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
func (osFS) WriteFileExcl(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, werr := f.Write(data); werr != nil {
		_ = f.Close()
		return werr
	}
	return f.Close()
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) Chtimes(path string, t time.Time) error {
	return os.Chtimes(path, t, t)
}
func (osFS) OpenAppend(path string, truncate bool) (io.WriteCloser, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if truncate {
		flags |= os.O_TRUNC
	}
	return os.OpenFile(path, flags, 0o644)
}

// OS returns the real-filesystem implementation of FS.
func OS() FS { return osFS{} }
