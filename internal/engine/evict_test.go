package engine

// Size-budget eviction tests: access-ordered removal under an explicit
// budget, safety of the never-evicted classes (quarantine, in-flight
// temp claims), and Put/Get/evict running concurrently under -race.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// payload builds a distinct valid-JSON payload of roughly n bytes.
func payload(i, n int) []byte {
	b, _ := json.Marshal(map[string]any{"i": i, "pad": string(make([]byte, n))})
	return b
}

func hashOf(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("evict-test-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestEvictionRemovesLeastRecentlyAccessed(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if err := c.Put(hashOf(i), payload(i, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	// Deterministic access order: object i was last touched at base+i,
	// so 0 is the coldest. (Explicit Chtimes, not sleeps.)
	base := time.Now().Add(-time.Hour)
	var perObj int64
	for i := 0; i < n; i++ {
		path := c.path(hashOf(i))
		if err := os.Chtimes(path, base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		perObj = info.Size()
	}

	// Budget for ~4 objects; the low-water sweep keeps <= 3.6 → 3.
	c.SetMaxBytes(4 * perObj)

	if got := c.EvictedCount(); got == 0 {
		t.Fatalf("eviction removed nothing under a %d-byte budget", 4*perObj)
	}
	if got := c.SizeBytes(); got > 4*perObj {
		t.Fatalf("accounted size %d still above budget %d", got, 4*perObj)
	}
	// The coldest objects are gone, the hottest survive.
	if _, err := c.Get(hashOf(0)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("coldest object survived eviction (err=%v)", err)
	}
	if _, err := c.Get(hashOf(n - 1)); err != nil {
		t.Fatalf("hottest object evicted: %v", err)
	}
}

func TestEvictionSparesQuarantineAndTempClaims(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	// A quarantined object (post-mortem evidence) and an in-flight temp
	// claim must both survive any sweep.
	qdir := c.QuarantineDir()
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	qfile := filepath.Join(qdir, hashOf(100)+".json")
	if err := os.WriteFile(qfile, []byte("corrupt evidence"), 0o644); err != nil {
		t.Fatal(err)
	}
	claim := c.path(hashOf(101)) + ".tmp.1234.1"
	if err := os.MkdirAll(filepath.Dir(claim), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(claim, []byte("half-written claim"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-24 * time.Hour)
	_ = os.Chtimes(qfile, old, old)
	_ = os.Chtimes(claim, old, old)

	if err := c.Put(hashOf(0), payload(0, 1024)); err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(1) // evict everything evictable

	if _, err := os.Stat(qfile); err != nil {
		t.Fatalf("quarantined object evicted: %v", err)
	}
	if _, err := os.Stat(claim); err != nil {
		t.Fatalf("in-flight temp claim evicted: %v", err)
	}
}

// Concurrent writers and readers race the sweeper; no Get may ever see
// a torn object (ErrCorrupt) — missing is fine, wrong is not.
func TestEvictionConcurrentWithPutsAndGets(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(16 * 1024)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := w*50 + i
				if err := c.Put(hashOf(k), payload(k, 512)); err != nil {
					t.Errorf("put %d: %v", k, err)
					return
				}
				if _, err := c.Get(hashOf(k)); err != nil && !errors.Is(err, fs.ErrNotExist) {
					t.Errorf("get %d after put: %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.CorruptCount() != 0 {
		t.Fatalf("eviction corrupted %d object(s)", c.CorruptCount())
	}
	if got, max := c.SizeBytes(), c.MaxBytes(); got > 2*max {
		t.Fatalf("accounted size %d ran far past the %d budget", got, max)
	}
}
