package engine

// Content-addressed result cache. Every payload is stored under the
// SHA-256 of (schema | code version | job key), laid out git-style as
// <dir>/objects/<hh>/<hash>.json so one directory never holds millions
// of entries. Writes are atomic (temp file + rename), so a killed sweep
// can never leave a truncated payload behind for -resume to trust.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync/atomic"
)

// CacheSchema versions the payload encoding; bump it to invalidate every
// cached result when the canonical JSON projection changes shape.
const CacheSchema = 1

// CodeVersion identifies the code that produced a payload. It prefers
// the VCS revision baked into the build (plus a dirty marker), so a
// rebuilt binary with changed code misses the old cache; uncommitted dev
// builds and `go test` binaries fall back to "dev", where the schema
// constants above are the manual invalidation lever.
func CodeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return "dev"
	}
	return rev + dirty
}

// HashKey derives the content address of a job: SHA-256 over the cache
// schema, the code version, and the canonical job key.
func HashKey(version, jobKey string) string {
	h := sha256.New()
	fmt.Fprintf(h, "engine/%d|%s|", CacheSchema, version)
	h.Write([]byte(jobKey))
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is an on-disk content-addressed payload store. Methods are safe
// for concurrent use by the worker pool; concurrent Puts of the same
// hash are idempotent because equal keys produce equal payloads.
type Cache struct {
	dir     string
	version string
	seq     atomic.Uint64 // unique temp-file suffixes
}

// OpenCache opens (creating if needed) a cache rooted at dir. An empty
// version selects CodeVersion().
func OpenCache(dir, version string) (*Cache, error) {
	if version == "" {
		version = CodeVersion()
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("engine: open cache: %w", err)
	}
	return &Cache{dir: dir, version: version}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Version returns the code version mixed into every hash.
func (c *Cache) Version() string { return c.version }

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, "objects", hash[:2], hash+".json")
}

// Get returns the payload stored under hash, if present.
func (c *Cache) Get(hash string) ([]byte, bool) {
	b, err := os.ReadFile(c.path(hash))
	if err != nil {
		return nil, false
	}
	return b, true
}

// Put stores payload under hash atomically.
func (c *Cache) Put(hash string, payload []byte) error {
	path := c.path(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), c.seq.Add(1))
	if err := os.WriteFile(tmp, payload, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Len counts stored payloads (a full directory walk; diagnostics only).
func (c *Cache) Len() int {
	n := 0
	filepath.WalkDir(filepath.Join(c.dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
