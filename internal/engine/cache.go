package engine

// Content-addressed result cache. Every payload is stored under the
// SHA-256 of (schema | code version | job key), laid out git-style as
// <dir>/objects/<hh>/<hash>.json so one directory never holds millions
// of entries. Writes are atomic (temp file + rename), so a killed sweep
// can never leave a truncated payload behind for -resume to trust.
//
// Atomicity protects against torn writes, not against the disk itself:
// a bit flip, an fsck truncation, or an operator editing an object by
// hand would otherwise JSON-decode into a zero result and silently
// poison a sweep. Each object therefore carries a checksum header
//
//	hifi1 <sha256(payload) hex>\n<payload>
//
// verified on every Get. A mismatch (or a missing/garbled header, or a
// payload that is not valid JSON) returns ErrCorrupt and the object is
// moved aside to <dir>/objects/quarantine/ for post-mortem; the engine
// falls through to recomputation, so corruption costs one re-execution,
// never a wrong table. See docs/engine.md ("failure modes & recovery").

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync/atomic"

	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
)

// CacheSchema versions the object encoding; bump it to invalidate every
// cached result when the canonical JSON projection — or, as with the
// schema-2 checksum header, the on-disk framing — changes shape.
const CacheSchema = 2

// objectMagic prefixes every object file, followed by the payload
// checksum and a newline.
const objectMagic = "hifi1 "

// ErrCorrupt marks a cache object that failed checksum or framing
// verification. Callers match it with errors.Is and recompute.
var ErrCorrupt = errors.New("engine: corrupt cache object")

// CodeVersion identifies the code that produced a payload. It prefers
// the VCS revision baked into the build (plus a dirty marker), so a
// rebuilt binary with changed code misses the old cache; uncommitted dev
// builds and `go test` binaries fall back to "dev", where the schema
// constants above are the manual invalidation lever.
func CodeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return "dev"
	}
	return rev + dirty
}

// HashKey derives the content address of a job: SHA-256 over the cache
// schema, the code version, and the canonical job key.
func HashKey(version, jobKey string) string {
	h := sha256.New()
	fmt.Fprintf(h, "engine/%d|%s|", CacheSchema, version)
	h.Write([]byte(jobKey))
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is an on-disk content-addressed payload store. Methods are safe
// for concurrent use by the worker pool; concurrent Puts of the same
// hash are idempotent because equal keys produce equal payloads.
type Cache struct {
	dir     string
	version string
	fsys    FS
	seq     atomic.Uint64 // unique temp-file suffixes
	corrupt atomic.Uint64 // objects quarantined by Get

	// Size-budget state (evict.go). maxBytes <= 0 means unlimited;
	// bytes is the accounted usage (exact at the last scan, plus Puts
	// since); sweeping serializes eviction sweeps.
	maxBytes atomic.Int64
	bytes    atomic.Int64
	evicted  atomic.Uint64
	sweeping atomic.Bool

	// Optional instrumentation (Instrument); the telemetry types are
	// nil-safe, so an uninstrumented cache pays only a nil check.
	telEvictions *telemetry.Counter
	telBytes     *telemetry.Gauge
}

// OpenCache opens (creating if needed) a cache rooted at dir. An empty
// version selects CodeVersion().
func OpenCache(dir, version string) (*Cache, error) {
	return OpenCacheFS(dir, version, OS())
}

// OpenCacheFS is OpenCache over an explicit filesystem; the fault tests
// use it to interpose faultfs.
func OpenCacheFS(dir, version string, fsys FS) (*Cache, error) {
	if version == "" {
		version = CodeVersion()
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "objects")); err != nil {
		return nil, fmt.Errorf("engine: open cache: %w", err)
	}
	return &Cache{dir: dir, version: version, fsys: fsys}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Version returns the code version mixed into every hash.
func (c *Cache) Version() string { return c.version }

// CorruptCount returns how many objects Get has quarantined.
func (c *Cache) CorruptCount() uint64 { return c.corrupt.Load() }

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, "objects", hash[:2], hash+".json")
}

// QuarantineDir is where corrupt objects are moved for post-mortem.
func (c *Cache) QuarantineDir() string {
	return filepath.Join(c.dir, "objects", "quarantine")
}

// Get returns the payload stored under hash after verifying its
// checksum. A missing object returns an error matching fs.ErrNotExist;
// a present-but-damaged object is quarantined and returns an error
// matching ErrCorrupt. Any non-nil error means "not usable: recompute".
func (c *Cache) Get(hash string) ([]byte, error) {
	path := c.path(hash)
	b, err := c.fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := verifyObject(b)
	if err != nil {
		c.quarantine(hash, path)
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, hash[:12], err)
	}
	// Under a size budget, a served object is a recently-useful object:
	// refresh its mtime so eviction order is access order.
	c.touch(path)
	return payload, nil
}

// verifyObject checks the framing and checksum of one object file and
// returns the payload.
func verifyObject(b []byte) ([]byte, error) {
	rest, ok := bytes.CutPrefix(b, []byte(objectMagic))
	if !ok {
		return nil, errors.New("missing object header")
	}
	sum, payload, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return nil, errors.New("truncated object header")
	}
	want := sha256.Sum256(payload)
	if string(sum) != hex.EncodeToString(want[:]) {
		return nil, errors.New("checksum mismatch")
	}
	// Belt and braces: the engine only stores canonical JSON, so a
	// checksummed non-JSON payload still means something is wrong.
	if !json.Valid(payload) {
		return nil, errors.New("payload is not valid JSON")
	}
	return payload, nil
}

// quarantine moves a damaged object out of the addressable tree so the
// evidence survives but the next Get recomputes. Best effort: if the
// move fails the object is deleted instead, and if that fails too the
// corrupt bytes will simply be re-detected next read.
func (c *Cache) quarantine(hash, path string) {
	c.corrupt.Add(1)
	qdir := c.QuarantineDir()
	if err := c.fsys.MkdirAll(qdir); err == nil {
		if err := c.fsys.Rename(path, filepath.Join(qdir, hash+".json")); err == nil {
			return
		}
	}
	if err := c.fsys.Remove(path); err != nil {
		log.Errorf("engine: quarantine %s: cannot move or remove: %v", hash[:12], err)
	}
}

// Put stores payload under hash atomically, framed with the checksum
// header Get verifies.
//
// The temp-file name mixes the PID and a per-Cache sequence number, and
// the temp file is created exclusively (O_CREATE|O_EXCL): two processes
// sharing the cache directory — a daemon and a CLI pointed at the same
// -cache-dir, or a crashed writer's PID reused by a live one — can
// therefore never interleave writes into the same temp file and rename
// a torn hybrid into the addressable tree. A name collision just means
// someone else holds that claim; we take a fresh sequence number and
// try again. The final rename stays last-writer-wins, which is safe
// because equal hashes carry equal payloads.
func (c *Cache) Put(hash string, payload []byte) error {
	path := c.path(hash)
	if err := c.fsys.MkdirAll(filepath.Dir(path)); err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	obj := make([]byte, 0, len(objectMagic)+hex.EncodedLen(len(sum))+1+len(payload))
	obj = append(obj, objectMagic...)
	obj = append(obj, hex.EncodeToString(sum[:])...)
	obj = append(obj, '\n')
	obj = append(obj, payload...)
	var tmp string
	for attempt := 0; ; attempt++ {
		tmp = fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), c.seq.Add(1))
		err := c.fsys.WriteFileExcl(tmp, obj)
		if err == nil {
			break
		}
		if !errors.Is(err, fs.ErrExist) || attempt >= 8 {
			return err
		}
	}
	if err := c.fsys.Rename(tmp, path); err != nil {
		c.fsys.Remove(tmp)
		return err
	}
	c.accountPut(int64(len(obj)))
	return nil
}

// Len counts stored payloads (a full directory walk; diagnostics only).
// Quarantined objects are not counted.
func (c *Cache) Len() int {
	n := 0
	qdir := c.QuarantineDir()
	filepath.WalkDir(filepath.Join(c.dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if path == qdir {
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
