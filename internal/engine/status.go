package engine

// Live status for the /engine route on the CLIs' status mux: a JSON
// snapshot of the pool and the sweep-wide job ledger, readable while a
// sweep is in flight.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"racetrack/hifi/internal/telemetry/log"
)

// RunningJob is one in-flight job as exposed by Status.
type RunningJob struct {
	Label     string `json:"label"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Worker    int    `json:"worker"`
}

// Status is a point-in-time snapshot of the engine.
type Status struct {
	Workers   int          `json:"workers"`
	Queued    int64        `json:"queued"`
	Running   []RunningJob `json:"running,omitempty"`
	Jobs      uint64       `json:"jobs"`
	Executed  uint64       `json:"executed"`
	CacheHits uint64       `json:"cache_hits"`
	Resumed   uint64       `json:"resumed"`
	Retries   uint64       `json:"retries"`
	Failures  uint64       `json:"failures"`
	Corrupt   uint64       `json:"corrupt"`
	Timeouts  uint64       `json:"timeouts"`
}

// Status snapshots the engine's counters and in-flight jobs.
func (e *Engine) Status() Status {
	s := Status{
		Workers:   e.opts.Workers,
		Queued:    e.queued.Load(),
		Jobs:      e.total.Load(),
		Executed:  e.executed.Load(),
		CacheHits: e.hits.Load(),
		Resumed:   e.resumed.Load(),
		Retries:   e.retries.Load(),
		Failures:  e.failures.Load(),
		Corrupt:   e.corrupt.Load(),
		Timeouts:  e.timeouts.Load(),
	}
	now := time.Now()
	e.mu.Lock()
	for slot, rj := range e.inFlite {
		s.Running = append(s.Running, RunningJob{
			Label:     rj.Label,
			ElapsedMS: now.Sub(rj.Since).Milliseconds(),
			Worker:    slot,
		})
	}
	e.mu.Unlock()
	sort.Slice(s.Running, func(i, j int) bool { return s.Running[i].Worker < s.Running[j].Worker })
	return s
}

// ResourceSummary aggregates the per-job resource accounts over the
// engine's lifetime: what the sweep's executed jobs cost in wall, CPU,
// allocation, and GC work, plus the single most expensive job by wall
// time. Cache hits contribute to Jobs/CacheHits but to no resource
// total — a warm sweep's summary shows exactly the work the cache saved.
type ResourceSummary struct {
	Jobs         uint64 `json:"jobs"`
	Executed     uint64 `json:"executed"`
	CacheHits    uint64 `json:"cache_hits"`
	JobWallMS    int64  `json:"job_wall_ms_total"`
	JobCPUMS     int64  `json:"job_cpu_ms_total"`
	AllocBytes   uint64 `json:"job_alloc_bytes_total"`
	Mallocs      uint64 `json:"job_mallocs_total"`
	GCCycles     uint64 `json:"job_gc_cycles_total"`
	MaxJobWallMS int64  `json:"max_job_wall_ms"`
	MaxJobLabel  string `json:"max_job_label,omitempty"`
}

// Resources snapshots the per-job resource totals.
func (e *Engine) Resources() ResourceSummary {
	rs := ResourceSummary{
		Jobs:       e.total.Load(),
		Executed:   e.executed.Load(),
		CacheHits:  e.hits.Load(),
		JobWallMS:  e.jobWallMS.Load(),
		JobCPUMS:   e.jobCPUMS.Load(),
		AllocBytes: e.allocBytes.Load(),
		Mallocs:    e.mallocs.Load(),
		GCCycles:   e.gcCycles.Load(),
	}
	e.mu.Lock()
	rs.MaxJobWallMS = e.maxJobWallMS
	rs.MaxJobLabel = e.maxJobLabel
	e.mu.Unlock()
	return rs
}

// StatusHandler serves the Status snapshot as indented JSON. Headers
// match the status-mux contract: explicit charset, never cached.
func (e *Engine) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(e.Status()); err != nil {
			log.Debugf("engine: /engine write: %v", err)
		}
	})
}

// Summary renders the one-line sweep ledger the CLIs log at exit (and
// that CI greps to assert cache reuse — greps match a prefix, so new
// fields append at the end):
//
//	engine: 84 jobs, 0 executed, 84 cache hits, 84 resumed, 0 retries, 0 failures, 0 corrupt, 0 timeouts
func (e *Engine) Summary() string {
	s := e.Status()
	return fmt.Sprintf("engine: %d jobs, %d executed, %d cache hits, %d resumed, %d retries, %d failures, %d corrupt, %d timeouts",
		s.Jobs, s.Executed, s.CacheHits, s.Resumed, s.Retries, s.Failures, s.Corrupt, s.Timeouts)
}
