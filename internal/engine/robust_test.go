package engine

// Robustness tests: checksum verification and quarantine on cache
// reads, skip-and-log for corrupt journal records, per-job timeouts,
// and retry backoff. The end-to-end chaos sweep (filesystem faults via
// engine/faultfs) lives in faultfs's own tests to keep the import
// graph acyclic.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheGetVerifiesChecksum(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, "v-test")
	if err != nil {
		t.Fatal(err)
	}
	hash := HashKey("v-test", "some-job")
	payload := []byte(`{"value":42}`)
	if err := c.Put(hash, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(hash)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("round trip: %q, %v", got, err)
	}

	// Flip one payload byte on disk: Get must refuse and quarantine.
	path := c.path(hash)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(hash); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted object: err = %v, want ErrCorrupt", err)
	}
	if c.CorruptCount() != 1 {
		t.Errorf("corrupt count = %d, want 1", c.CorruptCount())
	}
	if _, err := os.Stat(filepath.Join(c.QuarantineDir(), hash+".json")); err != nil {
		t.Errorf("corrupt object not quarantined: %v", err)
	}
	// The address is free again: the next read is a plain miss.
	if _, err := c.Get(hash); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("post-quarantine read: err = %v, want fs.ErrNotExist", err)
	}
}

// A schema-1 object (raw JSON, no checksum header) used to decode into
// a zero result; under the checksum framing it is corrupt by
// construction, never silently zero.
func TestCacheGetRejectsHeaderlessObject(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, "v-test")
	if err != nil {
		t.Fatal(err)
	}
	hash := HashKey("v-test", "legacy-job")
	path := c.path(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	// Perfectly valid JSON — the failure mode is framing, not syntax.
	if err := os.WriteFile(path, []byte(`{"value":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(hash); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("headerless object: err = %v, want ErrCorrupt", err)
	}
	// Truncated mid-header is corrupt too, not a decode-to-zero.
	if err := os.WriteFile(path, []byte(objectMagic+"abcd"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(hash); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated object: err = %v, want ErrCorrupt", err)
	}
}

func TestEngineRecomputesCorruptObject(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, "v-test")
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	jobs := testJobs(6, &execs)
	if _, err := New(Options{Workers: 2, Cache: cache}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}

	// Damage one object behind the cache's back.
	victim := cache.path(HashKey("v-test", jobs[3].Key))
	if err := os.WriteFile(victim, []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}

	cache2, _ := OpenCache(dir, "v-test")
	e := New(Options{Workers: 2, Cache: cache2})
	rep, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("corruption must not fail the sweep: %v", err)
	}
	if rep.Executed != 1 || rep.CacheHits != 5 {
		t.Errorf("executed %d hits %d, want 1/5 (only the damaged job recomputes)", rep.Executed, rep.CacheHits)
	}
	if s := e.Status(); s.Corrupt != 1 {
		t.Errorf("status corrupt = %d, want 1", s.Corrupt)
	}
	out, err := DecodeAll[map[string]int](rep.Payloads)
	if err != nil {
		t.Fatal(err)
	}
	if out[3]["square"] != 9 {
		t.Errorf("recomputed payload = %v", out[3])
	}
}

func TestJournalSkipsCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	good := func(seq int, hash string) string {
		return fmt.Sprintf(`{"seq":%d,"key":"k%d","hash":%q,"attempts":1,"dur_ms":1}`, seq, seq, hash)
	}
	content := good(1, "aaa") + "\n" +
		`{"seq":2,"key":"k2","ha` + "\n" + // damaged middle record
		"not json at all\n" + // a second damaged record
		good(4, "ddd") + "\n" +
		`{"seq":9,"key":"torn` // torn tail: tolerated, not counted
	if err := os.WriteFile(jpath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(jpath, true)
	if err != nil {
		t.Fatalf("resume must survive middle corruption: %v", err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Errorf("loaded %d entries, want 2", j.Len())
	}
	if !j.Done("aaa") || !j.Done("ddd") {
		t.Error("intact records around the damage were lost")
	}
	if j.Skipped() != 2 {
		t.Errorf("skipped = %d, want 2 (the torn tail is not corruption)", j.Skipped())
	}
	// Appends continue past the highest surviving sequence number.
	if err := j.Append(Entry{Key: "k5", Hash: "eee"}); err != nil {
		t.Fatal(err)
	}
	if !j.Done("eee") {
		t.Error("append after damaged load not recorded")
	}
}

func TestJobTimeoutAbandonsHungAttempt(t *testing.T) {
	var attempts atomic.Int64
	hang := Job{
		Key:   "hang-once",
		Label: "hang-once",
		Fn: func(ctx context.Context) (any, error) {
			if attempts.Add(1) == 1 {
				<-ctx.Done() // hung until the per-job deadline fires
				return nil, context.Cause(ctx)
			}
			return "recovered", nil
		},
	}
	e := New(Options{Workers: 1, Retries: 1, JobTimeout: 30 * time.Millisecond})
	rep, err := e.Run(context.Background(), []Job{hang})
	if err != nil {
		t.Fatalf("timeout + retry should recover: %v", err)
	}
	if rep.Retried != 1 {
		t.Errorf("retried = %d, want 1", rep.Retried)
	}
	if s := e.Status(); s.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", s.Timeouts)
	}
	v, err := Decode[string](rep.Payloads[0])
	if err != nil || v != "recovered" {
		t.Errorf("payload = %q, %v", v, err)
	}

	// A job that always hangs exhausts retries with a timeout error.
	stuck := Job{
		Key: "always-hung",
		Fn: func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, context.Cause(ctx)
		},
	}
	_, err = New(Options{Workers: 1, Retries: 1, JobTimeout: 10 * time.Millisecond}).
		Run(context.Background(), []Job{stuck})
	if !errors.Is(err, errAttemptTimeout) {
		t.Errorf("permanently hung job: err = %v, want attempt-timeout cause", err)
	}
}

func TestRetryBackoffDelaysAndCancels(t *testing.T) {
	var attempts atomic.Int64
	flaky := Job{
		Key: "flaky-timed",
		Fn: func(ctx context.Context) (any, error) {
			if attempts.Add(1) <= 2 {
				return nil, fmt.Errorf("transient")
			}
			return "ok", nil
		},
	}
	start := time.Now()
	_, err := New(Options{Workers: 1, Retries: 2, RetryBackoff: 20 * time.Millisecond}).
		Run(context.Background(), []Job{flaky})
	if err != nil {
		t.Fatal(err)
	}
	// Two backoffs: >= 20ms + 40ms before jitter.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("elapsed %v, want >= 60ms of backoff", elapsed)
	}

	// Cancellation mid-backoff returns promptly instead of sleeping out.
	ctx, cancel := context.WithCancel(context.Background())
	always := Job{
		Key: "always-bad-timed",
		Fn: func(ctx context.Context) (any, error) {
			cancel() // fail and take the sweep down while backing off
			return nil, fmt.Errorf("boom")
		},
	}
	start = time.Now()
	_, err = New(Options{Workers: 1, Retries: 3, RetryBackoff: 10 * time.Second}).
		Run(ctx, []Job{always})
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; backoff did not honour ctx", elapsed)
	}
}

func TestCachePutFailureWarnsOnceAndContinues(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir, "v-test")
	if err != nil {
		t.Fatal(err)
	}
	// Make the objects tree unwritable so every Put fails. (Root can
	// write anyway on some CI images; skip if the chmod has no effect.)
	objects := filepath.Join(dir, "objects")
	if err := os.Chmod(objects, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(objects, 0o755)
	if f, err := os.Create(filepath.Join(objects, "probe")); err == nil {
		f.Close()
		t.Skip("running with privileges that ignore directory permissions")
	}
	var execs atomic.Int64
	rep, err := New(Options{Workers: 2, Cache: cache}).Run(context.Background(), testJobs(4, &execs))
	if err != nil {
		t.Fatalf("unwritable cache must degrade, not fail: %v", err)
	}
	if rep.Executed != 4 {
		t.Errorf("executed %d, want 4", rep.Executed)
	}
}
