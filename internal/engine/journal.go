package engine

// The sweep journal: an append-only JSONL file, one line per completed
// job, flushed entry by entry. A sweep interrupted mid-run leaves a
// journal whose entries name exactly the jobs that finished; reopening
// it with resume=true lets the engine skip those jobs (provided their
// payloads are still in the cache). A torn final line — the signature of
// a kill mid-write — is ignored on load rather than treated as
// corruption.
//
// This journal tracks *job-level* sweep progress. It is deliberately
// separate from the device-level checkpointing in the repository root's
// checkpoint.go, which snapshots the logical contents of one simulated
// Memory; see docs/engine.md for why the two layers stay apart.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Entry is one completed job.
type Entry struct {
	Seq      int    `json:"seq"`
	Key      string `json:"key"`
	Label    string `json:"label,omitempty"`
	Hash     string `json:"hash"`
	Attempts int    `json:"attempts"` // 0 = served from cache
	DurMS    int64  `json:"dur_ms"`
}

// Journal is the on-disk completion log. Safe for concurrent Append
// from the worker pool.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	seq  int
	done map[string]Entry // by hash
}

// OpenJournal opens the journal at path. With resume=true existing
// entries are loaded (and later Appends continue the sequence); without
// it the file is truncated — a fresh sweep starts a fresh journal.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{path: path, done: map[string]Entry{}}
	if resume {
		if err := j.load(); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: open journal: %w", err)
	}
	j.f = f
	return j, nil
}

// load reads existing entries, ignoring a torn final line.
func (j *Journal) load() error {
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("engine: load journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			// A malformed line can only be the torn tail of a killed
			// write; everything before it is intact.
			break
		}
		j.done[e.Hash] = e
		if e.Seq > j.seq {
			j.seq = e.Seq
		}
	}
	return sc.Err()
}

// Len returns the number of distinct completed jobs loaded or appended.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Done reports whether hash is recorded as completed. Nil-safe so the
// engine can consult an absent journal.
func (j *Journal) Done(hash string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[hash]
	return ok
}

// Append records one completion and flushes it to disk.
func (j *Journal) Append(e Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return err
	}
	j.done[e.Hash] = e
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}
