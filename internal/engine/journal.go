package engine

// The sweep journal: an append-only JSONL file, one line per completed
// job, flushed entry by entry. A sweep interrupted mid-run leaves a
// journal whose entries name exactly the jobs that finished; reopening
// it with resume=true lets the engine skip those jobs (provided their
// payloads are still in the cache).
//
// Two damage modes are tolerated on load:
//
//   - A torn *final* line with no trailing newline — the signature of a
//     kill mid-write — is silently ignored; everything before it is
//     intact by construction.
//   - A malformed line in the *middle* (or a complete-but-garbled final
//     line) means the file itself was damaged after the fact. Each such
//     record is skipped and logged, counted in Skipped() and the
//     hifi_engine_journal_skipped_total metric; the jobs it named are
//     simply re-resolved from the cache or re-executed. Resume degrades,
//     correctness does not.
//
// This journal tracks *job-level* sweep progress. It is deliberately
// separate from the device-level checkpointing in the repository root's
// checkpoint.go, which snapshots the logical contents of one simulated
// Memory; see docs/engine.md for why the two layers stay apart.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"

	"racetrack/hifi/internal/telemetry/log"
)

// Entry is one completed job.
type Entry struct {
	Seq      int    `json:"seq"`
	Key      string `json:"key"`
	Label    string `json:"label,omitempty"`
	Hash     string `json:"hash"`
	Attempts int    `json:"attempts"` // 0 = served from cache
	DurMS    int64  `json:"dur_ms"`
	// Resources is the executed job's measured cost (absent for cache
	// hits, which cost nothing). Older journals without the field load
	// fine; resume ignores it.
	Resources *JobResources `json:"resources,omitempty"`
}

// Journal is the on-disk completion log. Safe for concurrent Append
// from the worker pool.
type Journal struct {
	mu      sync.Mutex
	path    string
	fsys    FS
	w       io.WriteCloser
	seq     int
	skipped int
	done    map[string]Entry // by hash
}

// OpenJournal opens the journal at path. With resume=true existing
// entries are loaded (and later Appends continue the sequence); without
// it the file is truncated — a fresh sweep starts a fresh journal.
func OpenJournal(path string, resume bool) (*Journal, error) {
	return OpenJournalFS(path, resume, OS())
}

// OpenJournalFS is OpenJournal over an explicit filesystem; the fault
// tests use it to interpose faultfs.
func OpenJournalFS(path string, resume bool, fsys FS) (*Journal, error) {
	j := &Journal{path: path, fsys: fsys, done: map[string]Entry{}}
	if resume {
		if err := j.load(); err != nil {
			return nil, err
		}
	}
	w, err := fsys.OpenAppend(path, !resume)
	if err != nil {
		return nil, fmt.Errorf("engine: open journal: %w", err)
	}
	j.w = w
	return j, nil
}

// load reads existing entries, ignoring a torn final line and skipping
// (with a log line and the skip counter) any other malformed record.
func (j *Journal) load() error {
	content, err := j.fsys.ReadFile(j.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("engine: load journal: %w", err)
	}
	// Only a line terminated by '\n' was fully written; an unterminated
	// final line is the torn tail of a killed write, not corruption.
	torn := len(content) > 0 && content[len(content)-1] != '\n'
	lines := bytes.Split(content, []byte{'\n'})
	// Split leaves a trailing empty element after the final '\n' (or the
	// torn tail when there is one); drop the empty, keep the tail marked.
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
		torn = false
	}
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Hash == "" {
			if torn && i == len(lines)-1 {
				break // torn tail: expected damage, not worth a log line
			}
			j.skipped++
			log.Errorf("engine: journal %s: skipping corrupt record at line %d: %v", j.path, i+1, err)
			continue
		}
		j.done[e.Hash] = e
		if e.Seq > j.seq {
			j.seq = e.Seq
		}
	}
	return nil
}

// Len returns the number of distinct completed jobs loaded or appended.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Skipped returns how many corrupt records load discarded.
func (j *Journal) Skipped() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.skipped
}

// Done reports whether hash is recorded as completed. Nil-safe so the
// engine can consult an absent journal.
func (j *Journal) Done(hash string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[hash]
	return ok
}

// Append records one completion and flushes it to disk.
func (j *Journal) Append(e Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return err
	}
	j.done[e.Hash] = e
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil || j.w == nil {
		return nil
	}
	return j.w.Close()
}
