package engine

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"testing"
)

// Two Cache instances over one directory model two processes sharing
// -cache-dir (a daemon and a CLI, or two daemons). With the O_EXCL
// temp-file claim, concurrent writers of the same objects must never
// make a reader observe a torn or mixed object: every Get sees either
// "not there yet" or the exact checksummed payload — ErrCorrupt is a
// protocol violation.
func TestCacheConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir, "v-shared")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir, "v-shared")
	if err != nil {
		t.Fatal(err)
	}
	caches := []*Cache{c1, c2}

	const objects = 24
	hashes := make([]string, objects)
	payloads := make([][]byte, objects)
	for i := range hashes {
		hashes[i] = HashKey("v-shared", fmt.Sprintf("shared-job-%d", i))
		payloads[i] = []byte(fmt.Sprintf(`{"object":%d,"payload":"0123456789abcdef"}`, i))
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)

	// Writers: both "processes" race to publish every object, repeatedly
	// — the same-key overwrite is the contended path the claim protects.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := caches[w%len(caches)]
			for round := 0; round < 8; round++ {
				for i := range hashes {
					if err := c.Put(hashes[i], payloads[i]); err != nil {
						errc <- fmt.Errorf("writer %d: Put %d: %w", w, i, err)
						return
					}
				}
			}
		}(w)
	}

	// Readers: from both "processes", concurrently with the writers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := caches[r%len(caches)]
			for round := 0; round < 16; round++ {
				for i := range hashes {
					b, err := c.Get(hashes[i])
					switch {
					case err == nil:
						if string(b) != string(payloads[i]) {
							errc <- fmt.Errorf("reader %d: object %d: got %q", r, i, b)
							return
						}
					case errors.Is(err, fs.ErrNotExist):
						// Not published yet — fine.
					default:
						errc <- fmt.Errorf("reader %d: object %d: %w", r, i, err)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if n := c1.CorruptCount() + c2.CorruptCount(); n != 0 {
		t.Fatalf("concurrent writers produced %d corrupt object(s)", n)
	}
	// After the dust settles every object is readable from either side.
	for i := range hashes {
		for ci, c := range caches {
			b, err := c.Get(hashes[i])
			if err != nil {
				t.Fatalf("cache %d: object %d unreadable after writers finished: %v", ci, i, err)
			}
			if string(b) != string(payloads[i]) {
				t.Fatalf("cache %d: object %d: got %q", ci, i, b)
			}
		}
	}
}

// The exclusive-create claim itself: a pre-existing temp path makes
// WriteFileExcl fail with fs.ErrExist, and Put retries onto a fresh
// sequence number instead of clobbering the other writer's file.
func TestWriteFileExclRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	path := dir + "/claim"
	if err := fsys.WriteFileExcl(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	err := fsys.WriteFileExcl(path, []byte("second"))
	if !errors.Is(err, fs.ErrExist) {
		t.Fatalf("second exclusive create: got %v, want fs.ErrExist", err)
	}
	b, err := fsys.ReadFile(path)
	if err != nil || string(b) != "first" {
		t.Fatalf("claimed file was disturbed: %q, %v", b, err)
	}
}
