// Package faultfs is a test-only engine.FS wrapper that injects
// filesystem failures — read errors, bit rot, torn writes, rename
// failures, write stalls, and a fully read-only mode — on a
// deterministic schedule, so the engine's detect/quarantine/retry and
// cache-less degradation paths can be exercised under -race without a
// real failing disk. Production code never imports this package.
package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"sync/atomic"
	"time"

	"racetrack/hifi/internal/engine"
)

// Options selects which faults fire and how often. Every "EveryNth"
// schedule is deterministic: the Nth, 2Nth, ... call of that kind
// fails (0 disables the fault).
type Options struct {
	// FailReadEveryNth makes every Nth ReadFile return a synthetic EIO.
	FailReadEveryNth int
	// CorruptReadEveryNth makes every Nth (successful) ReadFile flip a
	// byte in the returned content — bit rot without touching the disk.
	CorruptReadEveryNth int
	// TornWriteEveryNth makes every Nth WriteFile persist only the first
	// half of the data and then report an error, like a crash mid-write.
	TornWriteEveryNth int
	// FailRenameEveryNth makes every Nth Rename fail, stranding the
	// temp file the engine's atomic-put protocol just wrote.
	FailRenameEveryNth int
	// StallWriteEveryNth makes every Nth WriteFile sleep StallFor before
	// proceeding — a hung disk, for exercising job timeouts.
	StallWriteEveryNth int
	StallFor           time.Duration
	// ReadOnly fails every mutation (MkdirAll, WriteFile, Rename,
	// Remove, OpenAppend) with fs.ErrPermission — the unwritable cache
	// directory the engine must degrade around.
	ReadOnly bool
}

// Counts reports how many operations ran and how many faults fired.
type Counts struct {
	Reads, Writes, Renames          uint64
	EIO, Corrupted, Torn, RenameErr uint64
}

// FS wraps a base engine.FS with fault injection. Safe for concurrent
// use (all schedule state is atomic), matching the engine's worker
// pool.
type FS struct {
	base engine.FS
	opts Options

	reads, writes, renames          atomic.Uint64
	eio, corrupted, torn, renameErr atomic.Uint64
}

// New wraps base (engine.OS() when nil) with the given fault schedule.
func New(base engine.FS, opts Options) *FS {
	if base == nil {
		base = engine.OS()
	}
	return &FS{base: base, opts: opts}
}

// Counts snapshots the operation and fault counters.
func (f *FS) Counts() Counts {
	return Counts{
		Reads:     f.reads.Load(),
		Writes:    f.writes.Load(),
		Renames:   f.renames.Load(),
		EIO:       f.eio.Load(),
		Corrupted: f.corrupted.Load(),
		Torn:      f.torn.Load(),
		RenameErr: f.renameErr.Load(),
	}
}

// nth reports whether this call (1-based counter n) is on the every-Nth
// schedule.
func nth(n uint64, every int) bool {
	return every > 0 && n%uint64(every) == 0
}

func (f *FS) MkdirAll(dir string) error {
	if f.opts.ReadOnly {
		return fmt.Errorf("faultfs: mkdir %s: %w", dir, fs.ErrPermission)
	}
	return f.base.MkdirAll(dir)
}

func (f *FS) ReadFile(path string) ([]byte, error) {
	n := f.reads.Add(1)
	if nth(n, f.opts.FailReadEveryNth) {
		f.eio.Add(1)
		return nil, fmt.Errorf("faultfs: read %s: injected I/O error", path)
	}
	b, err := f.base.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if nth(n, f.opts.CorruptReadEveryNth) && len(b) > 0 {
		f.corrupted.Add(1)
		b = append([]byte(nil), b...) // never mutate the base's buffer
		b[len(b)/2] ^= 0x40
	}
	return b, nil
}

func (f *FS) WriteFile(path string, data []byte) error {
	if f.opts.ReadOnly {
		return fmt.Errorf("faultfs: write %s: %w", path, fs.ErrPermission)
	}
	n := f.writes.Add(1)
	if f.opts.StallFor > 0 && nth(n, f.opts.StallWriteEveryNth) {
		time.Sleep(f.opts.StallFor)
	}
	if nth(n, f.opts.TornWriteEveryNth) {
		f.torn.Add(1)
		f.base.WriteFile(path, data[:len(data)/2])
		return fmt.Errorf("faultfs: write %s: injected torn write", path)
	}
	return f.base.WriteFile(path, data)
}

// WriteFileExcl shares WriteFile's fault schedule (both are "a write of
// a whole file"): a scheduled torn write persists half the data through
// the base's exclusive create and then reports the error.
func (f *FS) WriteFileExcl(path string, data []byte) error {
	if f.opts.ReadOnly {
		return fmt.Errorf("faultfs: write %s: %w", path, fs.ErrPermission)
	}
	n := f.writes.Add(1)
	if f.opts.StallFor > 0 && nth(n, f.opts.StallWriteEveryNth) {
		time.Sleep(f.opts.StallFor)
	}
	if nth(n, f.opts.TornWriteEveryNth) {
		f.torn.Add(1)
		f.base.WriteFileExcl(path, data[:len(data)/2])
		return fmt.Errorf("faultfs: write %s: injected torn write", path)
	}
	return f.base.WriteFileExcl(path, data)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if f.opts.ReadOnly {
		return fmt.Errorf("faultfs: rename %s: %w", oldpath, fs.ErrPermission)
	}
	n := f.renames.Add(1)
	if nth(n, f.opts.FailRenameEveryNth) {
		f.renameErr.Add(1)
		return fmt.Errorf("faultfs: rename %s: injected failure", oldpath)
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(path string) error {
	if f.opts.ReadOnly {
		return fmt.Errorf("faultfs: remove %s: %w", path, fs.ErrPermission)
	}
	return f.base.Remove(path)
}

func (f *FS) Chtimes(path string, t time.Time) error {
	if f.opts.ReadOnly {
		return fmt.Errorf("faultfs: chtimes %s: %w", path, fs.ErrPermission)
	}
	return f.base.Chtimes(path, t)
}

func (f *FS) OpenAppend(path string, truncate bool) (io.WriteCloser, error) {
	if f.opts.ReadOnly {
		return nil, fmt.Errorf("faultfs: append %s: %w", path, fs.ErrPermission)
	}
	w, err := f.base.OpenAppend(path, truncate)
	if err != nil {
		return nil, err
	}
	return &tornWriter{f: f, w: w}, nil
}

// tornWriter applies the torn-write schedule to journal appends: a
// scheduled fault writes only half the record (with no trailing
// newline) and reports an error — exactly the damage a power cut
// leaves in an append-only log.
type tornWriter struct {
	f *FS
	w io.WriteCloser
}

func (t *tornWriter) Write(p []byte) (int, error) {
	n := t.f.writes.Add(1)
	if nth(n, t.f.opts.TornWriteEveryNth) {
		t.f.torn.Add(1)
		half := len(p) / 2
		t.w.Write(p[:half])
		return half, fmt.Errorf("faultfs: append: injected torn write")
	}
	return t.w.Write(p)
}

func (t *tornWriter) Close() error { return t.w.Close() }
