package faultfs_test

// The end-to-end chaos tests: the engine driven over a faulting
// filesystem must keep its determinism contract — exit 0, correct
// payloads — while the robustness counters record what it survived.
// CI runs this package under -race (the `chaos` job).

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/engine/faultfs"
)

func chaosJobs(n int, execs *atomic.Int64, panicOnce *atomic.Bool) []engine.Job {
	jobs := make([]engine.Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = engine.Job{
			Key:   fmt.Sprintf("chaos-job|%d", i),
			Label: fmt.Sprintf("chaos%d", i),
			Fn: func(ctx context.Context) (any, error) {
				// One job kills its worker mid-flight, exactly once across
				// the whole test: the pool must isolate and retry it.
				if i == n/2 && panicOnce != nil && panicOnce.CompareAndSwap(false, true) {
					panic("worker killed mid-job")
				}
				execs.Add(1)
				return map[string]int{"index": i, "cube": i * i * i}, nil
			},
		}
	}
	return jobs
}

func checkPayloads(t *testing.T, rep *engine.Report) {
	t.Helper()
	out, err := engine.DecodeAll[map[string]int](rep.Payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range out {
		if m["index"] != i || m["cube"] != i*i*i {
			t.Errorf("payload %d = %v", i, m)
		}
	}
}

// TestChaosSweep is the acceptance scenario from the issue: corrupt
// >=10% of the cache objects, kill one worker mid-job, and tear journal
// writes — the sweep must still complete with a nil error, byte-correct
// payloads, and nonzero corruption/retry counters.
func TestChaosSweep(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	// Tear every 7th write. Cache puts write whole objects (the torn
	// temp file never gets renamed), journal appends glue half-records
	// into the next line — both damage modes the loaders must absorb.
	ffs := faultfs.New(nil, faultfs.Options{TornWriteEveryNth: 7})
	cache, err := engine.OpenCacheFS(dir, "v-chaos", ffs)
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal.jsonl")
	journal, err := engine.OpenJournalFS(jpath, false, ffs)
	if err != nil {
		t.Fatal(err)
	}

	var execs atomic.Int64
	var panicked atomic.Bool
	jobs := chaosJobs(n, &execs, &panicked)
	e1 := engine.New(engine.Options{
		Workers: 4, Cache: cache, Journal: journal, Retries: 2,
		RetryBackoff: time.Millisecond, JobTimeout: 10 * time.Second,
	})
	rep, err := e1.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("chaos sweep failed: %v", err)
	}
	journal.Close()
	checkPayloads(t, rep)
	if !panicked.Load() {
		t.Fatal("the mid-job panic never fired")
	}
	if s := e1.Status(); s.Retries == 0 {
		t.Errorf("status = %+v: the killed worker's job was not retried", s)
	}

	// Corrupt >=10% of the surviving cache objects on disk.
	var objects []string
	filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			objects = append(objects, path)
		}
		return nil
	})
	if len(objects) < n/2 {
		t.Fatalf("only %d objects cached, torn writes ate too many", len(objects))
	}
	corrupted := 0
	for i, path := range objects {
		if i%5 == 0 { // 20% of objects
			if err := os.WriteFile(path, []byte("{}garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted*10 < len(objects) {
		t.Fatalf("corrupted %d of %d objects, need >=10%%", corrupted, len(objects))
	}

	// Resume over the damaged cache and journal, still on the torn FS.
	cache2, err := engine.OpenCacheFS(dir, "v-chaos", ffs)
	if err != nil {
		t.Fatal(err)
	}
	journal2, err := engine.OpenJournalFS(jpath, true, ffs)
	if err != nil {
		t.Fatalf("resume over torn journal failed: %v", err)
	}
	defer journal2.Close()
	e2 := engine.New(engine.Options{
		Workers: 4, Cache: cache2, Journal: journal2, Resume: true, Retries: 2,
		RetryBackoff: time.Millisecond,
	})
	jobs2 := chaosJobs(n, &execs, nil)
	rep2, err := e2.Run(context.Background(), jobs2)
	if err != nil {
		t.Fatalf("resumed chaos sweep failed: %v", err)
	}
	checkPayloads(t, rep2)
	s := e2.Status()
	if s.Corrupt == 0 {
		t.Error("no corruption detected despite 20% of objects damaged")
	}
	if int(s.Corrupt) != corrupted {
		t.Errorf("corrupt counter = %d, want %d", s.Corrupt, corrupted)
	}
	if rep2.Executed == 0 || rep2.CacheHits == 0 {
		t.Errorf("resume split executed/hits = %d/%d: want both nonzero", rep2.Executed, rep2.CacheHits)
	}
	if c := ffs.Counts(); c.Torn == 0 {
		t.Errorf("faultfs counts = %+v: no torn writes fired", c)
	}
	if cache2.CorruptCount() != uint64(corrupted) {
		t.Errorf("cache quarantined %d, want %d", cache2.CorruptCount(), corrupted)
	}
}

// TestReadErrorsAreMisses proves injected EIO on cache reads degrades
// to recomputation, never to failure.
func TestReadErrorsAreMisses(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil, faultfs.Options{FailReadEveryNth: 3})
	cache, err := engine.OpenCacheFS(dir, "v-eio", ffs)
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	jobs := chaosJobs(12, &execs, nil)
	if _, err := engine.New(engine.Options{Workers: 2, Cache: cache}).
		Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	cache2, _ := engine.OpenCacheFS(dir, "v-eio", ffs)
	e := engine.New(engine.Options{Workers: 2, Cache: cache2})
	rep, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("EIO on reads must not fail the sweep: %v", err)
	}
	checkPayloads(t, rep)
	if rep.Executed == 0 {
		t.Error("every read supposedly hit despite injected EIO")
	}
	if c := ffs.Counts(); c.EIO == 0 {
		t.Errorf("faultfs counts = %+v: no EIO fired", c)
	}
}

// TestBitRotOnReadIsQuarantineFree proves in-flight corruption (the
// disk returns different bytes than were written) is detected by the
// checksum even though the on-disk object is fine.
func TestBitRotOnRead(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil, faultfs.Options{CorruptReadEveryNth: 4})
	cache, err := engine.OpenCacheFS(dir, "v-rot", ffs)
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	jobs := chaosJobs(12, &execs, nil)
	if _, err := engine.New(engine.Options{Workers: 2, Cache: cache}).
		Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	cache2, _ := engine.OpenCacheFS(dir, "v-rot", ffs)
	e := engine.New(engine.Options{Workers: 2, Cache: cache2})
	rep, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("bit rot on reads must not fail the sweep: %v", err)
	}
	checkPayloads(t, rep)
	if e.Status().Corrupt == 0 {
		t.Error("checksum never caught the flipped bytes")
	}
}

// TestReadOnlyFilesystemDegrades covers the two unwritable-store
// shapes: a cache dir that cannot even be created (open fails — the
// signal cliutil turns into cache-less operation), and a store whose
// every write fails after opening (full disk, permissions flipped
// mid-run) — the sweep still completes with exit 0.
func TestReadOnlyFilesystemDegrades(t *testing.T) {
	dir := t.TempDir()
	ro := faultfs.New(nil, faultfs.Options{ReadOnly: true})
	if _, err := engine.OpenCacheFS(dir, "v-ro", ro); err == nil {
		t.Fatal("OpenCacheFS over a read-only FS must fail (cliutil's degrade signal)")
	}

	broken := faultfs.New(nil, faultfs.Options{TornWriteEveryNth: 1, FailRenameEveryNth: 1})
	cache, err := engine.OpenCacheFS(dir, "v-ro", broken)
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	jobs := chaosJobs(8, &execs, nil)
	rep, err := engine.New(engine.Options{Workers: 2, Cache: cache}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("unwritable store must degrade, not fail: %v", err)
	}
	checkPayloads(t, rep)
	if rep.Executed != 8 {
		t.Errorf("executed %d, want 8 (nothing cacheable)", rep.Executed)
	}
}
