package engine

// Cache lifecycle for long-lived daemons: an optional size budget with
// access-ordered eviction. A CLI sweep lives for minutes and can let
// the content-addressed store grow monotonically; hifi-serve lives for
// weeks, and without a budget the cache eventually fills the disk the
// daemon also needs for its job index and journals.
//
// The design constraints come from the cache's concurrency story:
//
//   - Eviction only ever removes fully-renamed *.json objects. Temp
//     files (the O_CREATE|O_EXCL claims of in-flight writers, named
//     <hash>.json.tmp.<pid>.<seq>) and the quarantine directory are
//     never touched, so a concurrent Put — in this process or another
//     one sharing the directory — can never lose its claim mid-write.
//   - Removing an object a concurrent reader just opened is safe: the
//     reader already has the bytes or gets fs.ErrNotExist and
//     recomputes. Removing one a concurrent writer is about to rename
//     over is also safe: the rename recreates it.
//   - Ordering is by modification time. Get touches objects it serves
//     (Chtimes, best effort), so "least recently used" survives across
//     restarts without any sidecar state; a freshly-written object has
//     the newest mtime and is evicted last.
//
// Eviction is triggered by Put once the accounted size exceeds the
// budget, runs on at most one goroutine at a time (concurrent triggers
// return immediately), and sweeps down to evictLowWater of the budget
// so steady-state writes do not re-trigger it per object. See
// docs/engine.md ("cache size budgets & eviction").

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"

	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
)

// evictLowWater is the fraction of the budget eviction sweeps down to,
// so the cache does not thrash at exactly the limit.
const evictLowWater = 0.9

// SetMaxBytes arms the size budget: once the objects tree exceeds max
// bytes, the least-recently-accessed objects are evicted until usage is
// back under evictLowWater of the budget. max <= 0 disables eviction.
// The current usage is scanned immediately so a pre-filled directory is
// brought under budget without waiting for the first Put.
func (c *Cache) SetMaxBytes(max int64) {
	c.maxBytes.Store(max)
	if max > 0 {
		c.evict()
	}
}

// MaxBytes returns the configured budget (0 = unlimited).
func (c *Cache) MaxBytes() int64 { return c.maxBytes.Load() }

// SizeBytes returns the accounted size of the objects tree: exact as of
// the last eviction scan, plus every Put since. Only maintained once
// SetMaxBytes has armed the budget.
func (c *Cache) SizeBytes() int64 { return c.bytes.Load() }

// EvictedCount returns how many objects eviction has removed.
func (c *Cache) EvictedCount() uint64 { return c.evicted.Load() }

// Instrument registers the cache's lifecycle series on reg (nil-safe):
// the eviction counter and the accounted-bytes gauge. Safe to call
// before or after SetMaxBytes.
func (c *Cache) Instrument(reg *telemetry.Registry) {
	c.telEvictions = reg.Counter(telemetry.MetricEngineCacheEvictions,
		"cache objects evicted by the size budget")
	c.telBytes = reg.Gauge(telemetry.MetricEngineCacheBytes,
		"accounted bytes in the cache objects tree (budget accounting)")
}

// accountPut charges one stored object against the budget and triggers
// an eviction sweep when it tips usage over the limit.
func (c *Cache) accountPut(n int64) {
	max := c.maxBytes.Load()
	if max <= 0 {
		return
	}
	total := c.bytes.Add(n)
	c.telBytes.Set(float64(total))
	if total > max {
		c.evict()
	}
}

// touch refreshes an object's access time so eviction order tracks
// reads, not just writes. Best effort: a read-only filesystem just
// degrades ordering to write time.
func (c *Cache) touch(path string) {
	if c.maxBytes.Load() <= 0 {
		return
	}
	_ = c.fsys.Chtimes(path, time.Now())
}

// cacheObject is one evictable entry discovered by the scan.
type cacheObject struct {
	path  string
	size  int64
	mtime time.Time
}

// evict rescans the objects tree and removes the oldest objects until
// usage is under the low-water mark. At most one sweep runs at a time;
// concurrent triggers return immediately (the running sweep sees their
// writes in its scan or the next trigger does).
func (c *Cache) evict() {
	if !c.sweeping.CompareAndSwap(false, true) {
		return
	}
	defer c.sweeping.Store(false)

	max := c.maxBytes.Load()
	if max <= 0 {
		return
	}
	objects, total := c.scanObjects()
	target := int64(float64(max) * evictLowWater)
	if total > target {
		sort.Slice(objects, func(i, j int) bool { return objects[i].mtime.Before(objects[j].mtime) })
		removed := 0
		for _, o := range objects {
			if total <= target {
				break
			}
			if err := c.fsys.Remove(o.path); err != nil {
				// Already gone (another process evicted it) or a sick
				// disk; either way the next scan re-reconciles.
				continue
			}
			total -= o.size
			removed++
		}
		if removed > 0 {
			c.evicted.Add(uint64(removed))
			c.telEvictions.Add(float64(removed))
			log.Debugf("engine: cache evicted %d object(s), %d bytes accounted (budget %d)",
				removed, total, max)
		}
	}
	c.bytes.Store(total)
	c.telBytes.Set(float64(total))
}

// scanObjects walks the objects tree, skipping the quarantine directory
// and anything that is not a fully-renamed object (temp-file claims of
// in-flight writers keep their .tmp.<pid>.<seq> suffix and are never
// candidates).
func (c *Cache) scanObjects() ([]cacheObject, int64) {
	var (
		objects []cacheObject
		total   int64
	)
	qdir := c.QuarantineDir()
	_ = filepath.WalkDir(filepath.Join(c.dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if path == qdir {
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) != ".json" {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				log.Debugf("engine: cache scan %s: %v", path, err)
			}
			return nil
		}
		objects = append(objects, cacheObject{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	return objects, total
}
