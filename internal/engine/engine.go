// Package engine is the parallel experiment engine: it turns a sweep of
// independent deterministic jobs — one per (experiment, config, seed)
// tuple — into a fault-tolerant schedule over a bounded worker pool.
//
// The three pillars, each optional and composable:
//
//   - A worker pool (default runtime.NumCPU()) executes jobs with
//     per-job panic isolation and a bounded retry budget, so one bad
//     configuration cannot take down a multi-hour sweep.
//   - A content-addressed on-disk cache (Cache) keyed by a canonical
//     hash of the resolved job inputs plus the code version, so
//     re-running a sweep only executes jobs whose inputs changed.
//   - An append-only journal (Journal) records every completed job, so
//     an interrupted sweep resumes where it stopped (-resume) instead
//     of starting over.
//
// Determinism is the core contract: job functions must be pure in their
// Key, and every result — fresh or cached — is canonicalized through the
// same JSON encoding, so a sweep run with 8 workers, 1 worker, or a warm
// cache renders byte-identical tables. See docs/engine.md.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/log"
)

// Job is one unit of sweep work. Fn must be deterministic with respect
// to Key: the Key is the canonical identity of every input that affects
// the result (use KeyJSON to build it), and the cache assumes equal keys
// mean equal results.
type Job struct {
	// Key canonically identifies the job's resolved inputs. It is hashed
	// together with the code version into the content-addressed cache key.
	Key string
	// Label is the short human name used for spans, logs, and the
	// /engine status route; Key is used when empty.
	Label string
	// Fn computes the result. The returned value must marshal to JSON;
	// the engine canonicalizes every result (fresh or cached) through
	// that encoding. Panics are recovered and treated as job errors.
	Fn func(ctx context.Context) (any, error)
}

// SubSeed deterministically derives a per-job seed from the sweep's base
// seed and a stable name (a workload, a config label). Jobs that must
// share a random stream — e.g. scheme comparisons over one trace —
// should derive from the shared part of their identity only.
func SubSeed(base uint64, name string) uint64 {
	// FNV-1a over the name, then a splitmix64 finalizer mixing in base,
	// so adjacent base seeds yield unrelated streams.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	z := h + base*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // seed 0 means "use default" to several configs; avoid it
	}
	return z
}

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent job execution; <= 0 means
	// runtime.NumCPU().
	Workers int
	// Cache enables content-addressed result reuse; nil disables it.
	Cache *Cache
	// Journal records completed jobs for resumability; nil disables it.
	Journal *Journal
	// Resume skips jobs already recorded in the journal whose payloads
	// are still in the cache.
	Resume bool
	// Retries is how many times a failed (error or panic) job is
	// re-executed before the failure is permanent. Negative means 0.
	Retries int
	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it (capped at 30s) and adds a deterministic
	// jitter derived from the job hash. Zero retries immediately.
	RetryBackoff time.Duration
	// JobTimeout bounds each execution attempt; an attempt that exceeds
	// it is abandoned (counted in the timeout metric) and retried like
	// any other failure. Zero means no per-job deadline.
	JobTimeout time.Duration
	// Metrics optionally receives the engine counters and pool gauges
	// named in telemetry/names.go. Nil disables instrumentation.
	Metrics *telemetry.Registry
	// Events optionally receives the job lifecycle as structured events
	// (job.queued/started/finished/cache_hit/retry/timeout/panic/failed;
	// see docs/events.md). Nil disables emission at zero cost.
	Events *events.Bus
}

// Engine schedules jobs over a worker pool. One engine is typically
// shared by every batch of a sweep, so its counters accumulate
// sweep-wide totals (the numbers the final summary and the /engine
// route report).
type Engine struct {
	opts Options

	// Lifetime totals, atomics so Status() can read mid-run.
	total    atomic.Uint64
	executed atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	resumed  atomic.Uint64
	retries  atomic.Uint64
	failures atomic.Uint64
	corrupt  atomic.Uint64
	timeouts atomic.Uint64

	queued  atomic.Int64
	running atomic.Int64

	// Per-job resource totals (see JobResources): what the executed jobs
	// of this engine's lifetime cost in wall, CPU, allocation, and GC
	// work. Read through Resources().
	jobWallMS  atomic.Int64
	jobCPUMS   atomic.Int64
	allocBytes atomic.Uint64
	mallocs    atomic.Uint64
	gcCycles   atomic.Uint64

	putWarned atomic.Bool // cache writes failing: warn once, degrade

	mu           sync.Mutex
	inFlite      map[int]runningJob // worker slot -> job
	maxJobWallMS int64
	maxJobLabel  string

	tel engineTelemetry
}

// JobResources is the measured cost of one executed job: wall time of
// the successful attempt, plus the process-wide CPU, allocation, and GC
// deltas over that attempt. With one worker the deltas are exact; under
// parallel workers concurrent jobs bleed into each other's process-wide
// counters, so per-job numbers are attributions, not isolations — their
// sweep-wide totals remain meaningful either way.
type JobResources struct {
	WallMS     int64  `json:"wall_ms"`
	CPUMS      int64  `json:"cpu_ms"`
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	GCCycles   uint32 `json:"gc_cycles"`
}

type runningJob struct {
	Label string
	Since time.Time
}

type engineTelemetry struct {
	jobs     *telemetry.Counter
	executed *telemetry.Counter
	hits     *telemetry.Counter
	misses   *telemetry.Counter
	resumed  *telemetry.Counter
	retries  *telemetry.Counter
	failures *telemetry.Counter
	corrupt  *telemetry.Counter
	timeouts *telemetry.Counter
	queue    *telemetry.Gauge
	busy     *telemetry.Gauge
	jobMS    *telemetry.Histogram
	cpuMS    *telemetry.Counter
	alloc    *telemetry.Counter
	mallocs  *telemetry.Counter
	gc       *telemetry.Counter
}

// New builds an engine. The zero Options value is a serial, uncached,
// unjournaled engine — the drop-in replacement for an inline loop.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	e := &Engine{opts: opts, inFlite: map[int]runningJob{}}
	if reg := opts.Metrics; reg != nil {
		e.tel = engineTelemetry{
			jobs:     reg.Counter(telemetry.MetricEngineJobs, "jobs submitted to the engine"),
			executed: reg.Counter(telemetry.MetricEngineExecuted, "jobs actually executed (cache misses)"),
			hits:     reg.Counter(telemetry.MetricEngineCacheHits, "jobs served from the result cache"),
			misses:   reg.Counter(telemetry.MetricEngineCacheMiss, "jobs not found in the result cache"),
			resumed:  reg.Counter(telemetry.MetricEngineResumed, "jobs skipped via the resume journal"),
			retries:  reg.Counter(telemetry.MetricEngineRetries, "job re-executions after a panic or error"),
			failures: reg.Counter(telemetry.MetricEngineFailures, "jobs failed permanently"),
			corrupt:  reg.Counter(telemetry.MetricEngineCacheCorrupt, "cache objects that failed checksum verification"),
			timeouts: reg.Counter(telemetry.MetricEngineJobTimeouts, "job attempts abandoned at the per-job deadline"),
			queue:    reg.Gauge(telemetry.MetricEngineQueueLen, "jobs waiting for a worker"),
			busy:     reg.Gauge(telemetry.MetricEngineBusy, "workers currently executing a job"),
			jobMS: reg.Histogram(telemetry.MetricEngineJobMS,
				"wall milliseconds per executed job", telemetry.LatencyCycleBuckets()),
			cpuMS:   reg.Counter(telemetry.MetricEngineJobCPUMS, "process CPU milliseconds attributed to executed jobs"),
			alloc:   reg.Counter(telemetry.MetricEngineJobAllocBytes, "heap bytes allocated over executed jobs"),
			mallocs: reg.Counter(telemetry.MetricEngineJobMallocs, "heap objects allocated over executed jobs"),
			gc:      reg.Counter(telemetry.MetricEngineJobGCCycles, "GC cycles completed during executed jobs"),
		}
	}
	return e
}

// Workers returns the configured pool width.
func (e *Engine) Workers() int { return e.opts.Workers }

// InFlight returns how many jobs are executing right now (the /healthz
// jobs_in_flight probe).
func (e *Engine) InFlight() int { return int(e.running.Load()) }

// Report summarizes one Run call. Payloads holds the canonical JSON
// result of each job in submission order; decode with Decode/DecodeAll.
type Report struct {
	Payloads  [][]byte
	Executed  int
	CacheHits int
	Resumed   int
	Retried   int
	Wall      time.Duration
}

// Run executes every job and returns their canonical payloads in
// submission order. Jobs are pulled by up to Workers goroutines; a job
// that panics or errors is retried up to Retries times and a permanent
// failure cancels the jobs still queued (in-flight jobs finish) and is
// returned after the pool drains. Run may be called repeatedly on one
// engine; the cache, journal, and counters carry across calls.
func (e *Engine) Run(ctx context.Context, jobs []Job) (*Report, error) {
	start := time.Now()
	rep := &Report{Payloads: make([][]byte, len(jobs))}
	if len(jobs) == 0 {
		return rep, nil
	}
	e.total.Add(uint64(len(jobs)))
	e.tel.jobs.Add(float64(len(jobs)))
	e.queued.Add(int64(len(jobs)))
	e.tel.queue.Add(float64(len(jobs)))
	// Queued events are emitted up front in submission order — the one
	// part of the job lifecycle whose ordering is deterministic under any
	// worker count.
	for i := range jobs {
		e.opts.Events.Emit(events.Event{
			Type: events.JobQueued, Name: label(jobs[i]), N: int64(len(jobs)),
		})
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	outs := make([]outcome, len(jobs))
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for slot := 0; slot < workers; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := range next {
				e.queued.Add(-1)
				e.tel.queue.Add(-1)
				payload, o := e.process(ctx, slot, jobs[i])
				rep.Payloads[i] = payload
				outs[i] = o
				if o.err != nil {
					cancel() // stop feeding queued jobs
				}
			}
		}(slot)
	}
	wg.Wait()

	// Whatever is still marked queued was never handed to a worker
	// (cancelled); settle the gauges.
	if q := e.queued.Swap(0); q != 0 {
		e.tel.queue.Add(float64(-q))
	}

	var firstErr error
	for i, o := range outs {
		switch {
		case o.executed:
			rep.Executed++
		case o.hit:
			rep.CacheHits++
		}
		if o.resumed {
			rep.Resumed++
		}
		rep.Retried += o.retried
		if o.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: job %q: %w", label(jobs[i]), o.err)
		}
	}
	rep.Wall = time.Since(start)
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return rep, firstErr
}

func label(j Job) string {
	if j.Label != "" {
		return j.Label
	}
	return j.Key
}

// outcome is one job's bookkeeping: how it was resolved and whether it
// failed permanently.
type outcome struct {
	executed, hit, resumed bool
	retried                int
	err                    error
}

// process resolves one job: resume journal, then cache, then execution
// with panic isolation and retry. It returns the canonical payload.
func (e *Engine) process(ctx context.Context, slot int, j Job) (payload []byte, o outcome) {
	if ctx.Err() != nil {
		o.err = ctx.Err()
		return nil, o
	}
	hash := HashKey(e.version(), j.Key)

	// Resume: a journaled job whose payload is still cached is done.
	if e.opts.Resume && e.opts.Journal.Done(hash) && e.opts.Cache != nil {
		if p := e.cacheGet(j, hash); p != nil {
			e.resumed.Add(1)
			e.hits.Add(1)
			e.tel.resumed.Inc()
			e.tel.hits.Inc()
			e.opts.Events.Emit(events.Event{
				Type: events.JobCacheHit, Name: label(j), Detail: "resumed",
			})
			o.hit, o.resumed = true, true
			return p, o
		}
	}
	if e.opts.Cache != nil {
		if p := e.cacheGet(j, hash); p != nil {
			e.hits.Add(1)
			e.tel.hits.Inc()
			e.journal(j, hash, 0, JobResources{})
			e.opts.Events.Emit(events.Event{Type: events.JobCacheHit, Name: label(j)})
			o.hit = true
			return p, o
		}
		e.misses.Add(1)
		e.tel.misses.Inc()
	}

	e.running.Add(1)
	e.tel.busy.Add(1)
	e.mu.Lock()
	e.inFlite[slot] = runningJob{Label: label(j), Since: time.Now()}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.inFlite, slot)
		e.mu.Unlock()
		e.running.Add(-1)
		e.tel.busy.Add(-1)
	}()

	jctx, sp := telemetry.StartSpan(ctx, "job:"+label(j), telemetry.A("hash", hash[:12]))
	defer sp.End()
	e.opts.Events.Emit(events.Event{Type: events.JobStarted, Name: label(j), Worker: slot})
	jobStart := time.Now()

	var lastErr error
	for attempt := 0; attempt <= e.opts.Retries; attempt++ {
		if attempt > 0 {
			e.retries.Add(1)
			e.tel.retries.Inc()
			o.retried++
			log.Infof("engine: retrying %s (attempt %d/%d): %v",
				label(j), attempt+1, e.opts.Retries+1, lastErr)
			e.opts.Events.Emit(events.Event{
				Type: events.JobRetried, Name: label(j),
				N: int64(attempt), Detail: firstLine(lastErr),
			})
			if err := e.backoff(ctx, hash, attempt); err != nil {
				lastErr = err
				break
			}
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		cpu0 := telemetry.CPUSeconds()
		started := time.Now()
		result, err := e.runAttempt(jctx, j)
		if err != nil {
			lastErr = err
			if errors.Is(err, errAttemptTimeout) {
				e.timeouts.Add(1)
				e.tel.timeouts.Inc()
				e.opts.Events.Emit(events.Event{
					Type: events.JobTimeout, Name: label(j),
					MS: e.opts.JobTimeout.Milliseconds(),
				})
			}
			var pe *panicError
			if errors.As(err, &pe) {
				e.opts.Events.Emit(events.Event{
					Type: events.JobPanic, Name: label(j), Detail: pe.value,
				})
			}
			if ctx.Err() != nil {
				break // the sweep is being cancelled; stop burning retries
			}
			continue
		}
		payload, err = json.Marshal(result)
		if err != nil {
			// Marshal failures are deterministic; retrying cannot help.
			lastErr = fmt.Errorf("marshal result: %w", err)
			break
		}
		dur := time.Since(started)
		runtime.ReadMemStats(&ms1)
		res := JobResources{
			WallMS:     dur.Milliseconds(),
			CPUMS:      int64((telemetry.CPUSeconds() - cpu0) * 1e3),
			AllocBytes: ms1.TotalAlloc - ms0.TotalAlloc,
			Mallocs:    ms1.Mallocs - ms0.Mallocs,
			GCCycles:   ms1.NumGC - ms0.NumGC,
		}
		e.account(label(j), res)
		e.tel.jobMS.Observe(float64(res.WallMS))
		e.cachePut(j, hash, payload)
		e.executed.Add(1)
		e.tel.executed.Inc()
		e.journal(j, hash, attempt+1, res)
		e.opts.Events.Emit(events.Event{
			Type: events.JobFinished, Name: label(j), Worker: slot,
			MS: time.Since(jobStart).Milliseconds(), N: int64(attempt + 1),
		})
		o.executed = true
		return payload, o
	}
	e.failures.Add(1)
	e.tel.failures.Inc()
	sp.SetAttr("error", fmt.Sprint(lastErr))
	e.opts.Events.Emit(events.Event{
		Type: events.JobFailed, Name: label(j), Detail: firstLine(lastErr),
	})
	o.err = lastErr
	return nil, o
}

// firstLine renders an error's first line — event Detail fields carry
// the headline, not a panic's full stack trace.
func firstLine(err error) string {
	if err == nil {
		return ""
	}
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// cacheGet resolves hash from the cache, mapping every failure to "not
// cached". Corruption is counted and logged (the object has already
// been quarantined by Cache.Get); unexpected read errors are logged so
// a dying disk is visible, but neither ever fails the job — the engine
// recomputes instead.
func (e *Engine) cacheGet(j Job, hash string) []byte {
	p, err := e.opts.Cache.Get(hash)
	switch {
	case err == nil:
		return p
	case errors.Is(err, fs.ErrNotExist):
	case errors.Is(err, ErrCorrupt):
		e.corrupt.Add(1)
		e.tel.corrupt.Inc()
		log.Errorf("engine: %s: %v (quarantined; recomputing)", label(j), err)
	default:
		log.Errorf("engine: cache read %s: %v (recomputing)", label(j), err)
	}
	return nil
}

// cachePut stores a fresh payload, degrading to cache-less operation on
// failure: the first error warns, later ones are dropped so an
// unwritable cache directory does not flood a long sweep's log.
func (e *Engine) cachePut(j Job, hash string, payload []byte) {
	if e.opts.Cache == nil {
		return
	}
	if err := e.opts.Cache.Put(hash, payload); err != nil {
		if e.putWarned.CompareAndSwap(false, true) {
			log.Errorf("engine: cache put %s: %v (continuing without cache writes)", label(j), err)
		}
	}
}

// backoff sleeps before a retry: exponential in the attempt number from
// the configured base, capped at 30s, with a deterministic jitter
// derived from the job hash so a stampede of retrying workers
// de-synchronizes reproducibly. Returns early if the sweep is
// cancelled mid-sleep.
func (e *Engine) backoff(ctx context.Context, hash string, attempt int) error {
	base := e.opts.RetryBackoff
	if base <= 0 {
		return nil
	}
	d := base << (attempt - 1)
	if max := 30 * time.Second; d > max || d <= 0 {
		d = max
	}
	// Jitter in [0, d/2), seeded by (hash, attempt) — deterministic for
	// a given job, different across jobs and attempts.
	frac := float64(SubSeed(uint64(attempt), hash)%1024) / 1024
	d += time.Duration(frac * float64(d) / 2)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("engine: cancelled during retry backoff: %w", context.Cause(ctx))
	}
}

// errAttemptTimeout is the cancel cause installed by the per-job
// deadline, distinguishable from a sweep-wide cancellation.
var errAttemptTimeout = errors.New("engine: job attempt deadline exceeded")

// runAttempt executes one attempt, bounded by Options.JobTimeout when
// set. A timed-out attempt is abandoned: its goroutine keeps running
// until the job function honours ctx (or leaks, if it never does — the
// engine cannot preempt it), but the worker moves on and the attempt
// counts as a retryable failure.
func (e *Engine) runAttempt(ctx context.Context, j Job) (any, error) {
	if e.opts.JobTimeout <= 0 {
		return runIsolated(ctx, j)
	}
	actx, cancel := context.WithTimeoutCause(ctx, e.opts.JobTimeout, errAttemptTimeout)
	defer cancel()
	type res struct {
		result any
		err    error
	}
	ch := make(chan res, 1)
	go func() {
		r, err := runIsolated(actx, j)
		ch <- res{r, err}
	}()
	select {
	case r := <-ch:
		return r.result, r.err
	case <-actx.Done():
		return nil, fmt.Errorf("after %v: %w", e.opts.JobTimeout, context.Cause(actx))
	}
}

// account folds one executed job's resources into the engine-lifetime
// totals and the telemetry counters.
func (e *Engine) account(jobLabel string, r JobResources) {
	e.jobWallMS.Add(r.WallMS)
	e.jobCPUMS.Add(r.CPUMS)
	e.allocBytes.Add(r.AllocBytes)
	e.mallocs.Add(r.Mallocs)
	e.gcCycles.Add(uint64(r.GCCycles))
	e.tel.cpuMS.Add(float64(r.CPUMS))
	e.tel.alloc.Add(float64(r.AllocBytes))
	e.tel.mallocs.Add(float64(r.Mallocs))
	e.tel.gc.Add(float64(r.GCCycles))
	e.mu.Lock()
	if r.WallMS > e.maxJobWallMS || e.maxJobLabel == "" {
		e.maxJobWallMS = r.WallMS
		e.maxJobLabel = jobLabel
	}
	e.mu.Unlock()
}

// journal appends a completion record, tolerating a nil journal.
func (e *Engine) journal(j Job, hash string, attempts int, res JobResources) {
	if e.opts.Journal == nil {
		return
	}
	entry := Entry{
		Key:      j.Key,
		Label:    label(j),
		Hash:     hash,
		Attempts: attempts,
		DurMS:    res.WallMS,
	}
	if attempts > 0 {
		// Cache hits cost nothing; only executed jobs carry an account.
		entry.Resources = &res
	}
	if err := e.opts.Journal.Append(entry); err != nil {
		log.Errorf("engine: journal %s: %v", label(j), err)
	}
}

func (e *Engine) version() string {
	if e.opts.Cache != nil {
		return e.opts.Cache.Version()
	}
	return CodeVersion()
}

// panicError is a recovered job panic: the panic value as a headline
// plus the goroutine stack. Typed so the event plane can report the
// isolation distinctly from ordinary job errors.
type panicError struct {
	value string
	stack string
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %s\n%s", p.value, p.stack) }

// runIsolated invokes the job function, converting a panic into an
// error so a bad configuration fails one job, not the whole sweep.
func runIsolated(ctx context.Context, j Job) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 4<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &panicError{value: fmt.Sprint(r), stack: string(buf)}
		}
	}()
	return j.Fn(ctx)
}

// Decode unmarshals one canonical payload.
func Decode[T any](payload []byte) (T, error) {
	var v T
	err := json.Unmarshal(payload, &v)
	return v, err
}

// DecodeAll unmarshals every payload of a report in order.
func DecodeAll[T any](payloads [][]byte) ([]T, error) {
	out := make([]T, len(payloads))
	for i, p := range payloads {
		v, err := Decode[T](p)
		if err != nil {
			return nil, fmt.Errorf("engine: payload %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// KeyJSON renders v as the canonical key string for Job.Key: compact
// JSON with struct fields in declaration order (encoding/json), which
// is deterministic for a fixed type. Maps are avoided by convention —
// key structs should use only ordered fields.
func KeyJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Key structs are plain data; a marshal failure is a programming
		// error best surfaced immediately.
		panic(fmt.Sprintf("engine: KeyJSON: %v", err))
	}
	return string(b)
}
