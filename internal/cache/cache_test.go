package cache

import (
	"testing"
	"testing/quick"

	"racetrack/hifi/internal/sim"
)

func TestNewGeometry(t *testing.T) {
	c := New(4<<20, 16, 64)
	if c.Sets() != 4096 {
		t.Errorf("sets = %d, want 4096", c.Sets())
	}
	if c.Ways() != 16 || c.LineBytes() != 64 {
		t.Error("geometry wrong")
	}
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, 16, 64) },
		func() { New(4<<20, 0, 64) },
		func() { New(100, 16, 64) }, // not divisible
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(1<<10, 2, 64) // 8 sets
	r := c.Access(0x1000, false)
	if r.Hit {
		t.Fatal("cold access hit")
	}
	r = c.Access(0x1000, false)
	if !r.Hit {
		t.Fatal("second access missed")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(2*64, 2, 64) // 1 set, 2 ways
	c.Access(0*64, false) // A
	c.Access(1*64, false) // B
	c.Access(0*64, false) // touch A: B is LRU
	r := c.Access(2*64, false)
	if !r.Evicted || r.EvictedAddr != 1*64 {
		t.Errorf("LRU eviction wrong: %+v", r)
	}
	if !c.Contains(0 * 64) {
		t.Error("recently used line evicted")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(2*64, 2, 64)
	c.Access(0*64, true) // dirty A
	c.Access(1*64, false)
	c.Access(1*64, false)
	r := c.Access(2*64, false) // evicts A (LRU)
	if !r.Writeback || r.EvictedAddr != 0 {
		t.Errorf("dirty eviction: %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := New(2*64, 2, 64)
	c.Access(0, false)
	c.Access(0, true) // dirty via write hit
	c.Access(64, false)
	c.Access(64, false)
	r := c.Access(128, false)
	if !r.Writeback {
		t.Error("write-hit dirty bit lost")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1<<10, 2, 64)
	c.Access(0x40, true)
	res, dirty := c.Invalidate(0x40)
	if !res || !dirty {
		t.Errorf("invalidate = %v, %v", res, dirty)
	}
	if c.Contains(0x40) {
		t.Error("line still resident")
	}
	res, _ = c.Invalidate(0x40)
	if res {
		t.Error("double invalidate reported resident")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

func TestQuickWorkingSetFits(t *testing.T) {
	// Property: a working set no larger than capacity, accessed twice,
	// hits on every second-round access (true LRU, no conflict aliasing
	// beyond capacity within a set... use a direct-capacity set check).
	f := func(seed uint64) bool {
		c := New(1<<12, 4, 64) // 16 sets x 4 ways = 64 lines
		r := sim.NewRNG(seed)
		// Pick 64 distinct line addresses mapped evenly: exactly 4 per set.
		addrs := make([]uint64, 0, 64)
		for set := 0; set < 16; set++ {
			for w := 0; w < 4; w++ {
				addrs = append(addrs, uint64(set)*64+uint64(w)*16*64)
			}
		}
		_ = r
		for _, a := range addrs {
			c.Access(a, false)
		}
		for _, a := range addrs {
			if !c.Access(a, false).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRTMGeometry(t *testing.T) {
	g := DefaultRTM()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.LinesPerGroup() != 64 {
		t.Errorf("lines per group = %d, want 64", g.LinesPerGroup())
	}
	if g.GroupBytes() != 4096 {
		t.Errorf("group bytes = %d, want 4096", g.GroupBytes())
	}
	bad := g
	bad.SegLen = 7
	if bad.Validate() == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestRTMArraySizing(t *testing.T) {
	a := NewRTMArray(DefaultRTM(), 128<<20)
	if a.Groups() != 32768 {
		t.Errorf("groups = %d, want 32768 (128MB/4KB)", a.Groups())
	}
}

func TestRTMAccessDistance(t *testing.T) {
	a := NewRTMArray(DefaultRTM(), 1<<20)
	const ways = 16
	// (set 0, way 0) is domain 0: offset 0, head already there.
	g, d, _ := a.AccessDistance(0, 0, ways)
	if d != 0 {
		t.Errorf("domain 0 distance = %d, want 0", d)
	}
	// (set 1, way 1): domain = 1*4 + 1 = 5 -> offset 5.
	_, d, dir := a.AccessDistance(1, 1, ways)
	if d != 5 || dir != +1 {
		t.Errorf("domain 5: dist %d dir %d", d, dir)
	}
	a.MoveHead(g, 5, +1, 1)
	if a.Head(g) != 5 {
		t.Errorf("head = %d, want 5", a.Head(g))
	}
	// Back toward offset 2 ((set 2, way 0): domain 2): distance 3 back.
	_, d, dir = a.AccessDistance(2, 0, ways)
	if d != 3 || dir != -1 {
		t.Errorf("return: dist %d dir %d", d, dir)
	}
}

func TestRTMGroupMapping(t *testing.T) {
	a := NewRTMArray(DefaultRTM(), 1<<20)
	const ways = 16
	// The 64 (set, way) slots of 4 consecutive sets share one group.
	g0, _, _ := a.AccessDistance(0, 0, ways)
	g1, _, _ := a.AccessDistance(3, 15, ways)
	if g0 != g1 {
		t.Errorf("slots of sets 0-3 in different groups: %d vs %d", g0, g1)
	}
	g2, _, _ := a.AccessDistance(4, 0, ways)
	if g2 == g0 {
		t.Error("set 4 should start the next group")
	}
	// Domain assignment is a bijection over the group.
	seen := map[int]bool{}
	for set := 0; set < 4; set++ {
		for way := 0; way < ways; way++ {
			_, domain := a.lineIndex(set, way, ways)
			if seen[domain] {
				t.Fatalf("domain %d assigned twice", domain)
			}
			seen[domain] = true
		}
	}
	if len(seen) != 64 {
		t.Fatalf("only %d distinct domains", len(seen))
	}
	// Way 0 of neighbouring sets sits at adjacent offsets (short shifts
	// for sequential fills).
	_, d0 := a.lineIndex(0, 0, ways)
	_, d1 := a.lineIndex(1, 0, ways)
	if d1-d0 != 1 {
		t.Errorf("way-0 domains of neighbouring sets: %d, %d", d0, d1)
	}
}

func TestRTMMoveHeadBounds(t *testing.T) {
	a := NewRTMArray(DefaultRTM(), 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range head move did not panic")
		}
	}()
	a.MoveHead(0, 8, +1, 1)
}

func TestRTMStats(t *testing.T) {
	a := NewRTMArray(DefaultRTM(), 1<<20)
	a.MoveHead(0, 3, +1, 1)
	a.MoveHead(0, 3, -1, 3)
	a.MoveHead(1, 0, +1, 1)
	if a.ShiftOps != 4 || a.ShiftSteps != 6 {
		t.Errorf("ops=%d steps=%d", a.ShiftOps, a.ShiftSteps)
	}
	if a.ZeroShiftAccesses != 1 {
		t.Errorf("zero-shift accesses = %d", a.ZeroShiftAccesses)
	}
	if a.AvgShiftDistance() != 1.5 {
		t.Errorf("avg distance = %v", a.AvgShiftDistance())
	}
}

func TestRTMCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-divisible capacity did not panic")
		}
	}()
	NewRTMArray(DefaultRTM(), 4096+512)
}
