package cache

import (
	"fmt"

	"racetrack/hifi/internal/telemetry"
)

// RTMGeometry describes the racetrack organization behind an LLC data
// array, following the paper's default mapping: a 64-byte line occupies one
// bit of each of 512 stripes; each stripe holds DataBits domains split into
// DataBits/SegLen segments; the 64 lines sharing a stripe group are
// distinguished by their domain index, so accessing line L requires the
// group's shared head to sit at in-segment offset L mod SegLen.
type RTMGeometry struct {
	StripesPerGroup int // stripes shifting together (512)
	DataBits        int // domains per stripe (64)
	SegLen          int // domains per access port (8)
	LineBytes       int // cache line size (64)
}

// DefaultRTM returns the paper's configuration.
func DefaultRTM() RTMGeometry {
	return RTMGeometry{StripesPerGroup: 512, DataBits: 64, SegLen: 8, LineBytes: 64}
}

// Validate checks the geometry.
func (g RTMGeometry) Validate() error {
	switch {
	case g.StripesPerGroup <= 0 || g.DataBits <= 0 || g.SegLen <= 0 || g.LineBytes <= 0:
		return fmt.Errorf("cache: non-positive RTM geometry")
	case g.DataBits%g.SegLen != 0:
		return fmt.Errorf("cache: SegLen %d does not divide DataBits %d", g.SegLen, g.DataBits)
	case g.StripesPerGroup*g.LineBytes*8%g.StripesPerGroup != 0:
		return fmt.Errorf("cache: inconsistent line interleave")
	}
	return nil
}

// LinesPerGroup returns how many cache lines one stripe group stores: one
// line per domain index (each stripe contributes LineBytes*8 /
// StripesPerGroup bits per line; with the default 512 stripes and 64-byte
// lines that is exactly one bit per stripe).
func (g RTMGeometry) LinesPerGroup() int { return g.DataBits }

// GroupBytes returns the data capacity of one stripe group.
func (g RTMGeometry) GroupBytes() int64 {
	return int64(g.LinesPerGroup()) * int64(g.LineBytes)
}

// RTMArray tracks the head positions of every stripe group in an LLC data
// array and converts line accesses into shift distances.
type RTMArray struct {
	geom   RTMGeometry
	heads  []int8 // current in-segment offset per group
	groups int

	// ShiftOps and ShiftSteps accumulate issued operations and distance.
	ShiftOps   uint64
	ShiftSteps uint64
	// ZeroShiftAccesses counts accesses that needed no movement.
	ZeroShiftAccesses uint64

	// Telemetry handles; nil (the default) costs one branch per event.
	mOps, mSteps, mZero *telemetry.Counter
	mDistance           *telemetry.Histogram
}

// Instrument attaches shift counters and the fixed-layout distance
// histogram from reg. A nil registry detaches.
func (a *RTMArray) Instrument(reg *telemetry.Registry) {
	a.mOps = reg.Counter(telemetry.MetricShiftOps, "shift operations issued")
	a.mSteps = reg.Counter(telemetry.MetricShiftSteps, "total shift distance in steps")
	a.mZero = reg.Counter(telemetry.MetricShiftZero, "accesses needing no head movement")
	a.mDistance = reg.Histogram(telemetry.MetricShiftDistance,
		"per-access shift distance in steps", telemetry.ShiftDistanceBuckets())
}

// NewRTMArray sizes the head-position state for an LLC of capacityB bytes.
func NewRTMArray(geom RTMGeometry, capacityB int64) *RTMArray {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	gb := geom.GroupBytes()
	if capacityB%gb != 0 {
		panic(fmt.Sprintf("cache: capacity %d not divisible by group bytes %d", capacityB, gb))
	}
	return &RTMArray{
		geom:   geom,
		groups: int(capacityB / gb),
		heads:  make([]int8, capacityB/gb),
	}
}

// Groups returns the number of stripe groups.
func (a *RTMArray) Groups() int { return a.groups }

// Geometry returns the array's geometry.
func (a *RTMArray) Geometry() RTMGeometry { return a.geom }

// lineIndex returns which of the group's lines a (set, way) slot maps to,
// and which group. A group holds LinesPerGroup/ways consecutive sets. The
// domain index within the group is way-major (domain = way*setsPerGroup +
// setWithinGroup), so that lines of the same way in neighbouring sets sit
// at adjacent domains: sequential fills into way 0 then produce short
// neighbour shifts rather than all landing on one offset.
func (a *RTMArray) lineIndex(set, way, ways int) (group, domain int) {
	setsPerGroup := a.geom.LinesPerGroup() / ways
	if setsPerGroup < 1 {
		setsPerGroup = 1
	}
	group = set / setsPerGroup % a.groups
	domain = (way*setsPerGroup + set%setsPerGroup) % a.geom.LinesPerGroup()
	return group, domain
}

// AccessDistance returns the shift distance required to bring the line at
// (set, way) under its group's ports, given the cache's associativity, and
// the direction (+1 toward higher offsets, -1 toward lower). It does not
// move the head; call MoveHead after the shift plan commits.
func (a *RTMArray) AccessDistance(set, way, ways int) (group, dist, dir int) {
	group, domain := a.lineIndex(set, way, ways)
	target := domain % a.geom.SegLen
	cur := int(a.heads[group])
	switch {
	case target == cur:
		return group, 0, +1
	case target > cur:
		return group, target - cur, +1
	default:
		return group, cur - target, -1
	}
}

// MoveHead commits a completed shift of dist steps in direction dir on the
// group and updates statistics. ops is the number of shift operations the
// controller issued to cover the distance (1 unless a safe-distance plan
// split it).
func (a *RTMArray) MoveHead(group, dist, dir, ops int) {
	if dist == 0 {
		a.ZeroShiftAccesses++
		a.mZero.Inc()
		return
	}
	h := int(a.heads[group]) + dir*dist
	if h < 0 || h >= a.geom.SegLen {
		panic(fmt.Sprintf("cache: head of group %d moved to %d (SegLen %d)", group, h, a.geom.SegLen))
	}
	a.heads[group] = int8(h)
	a.ShiftOps += uint64(ops)
	a.ShiftSteps += uint64(dist)
	a.mOps.Add(float64(ops))
	a.mSteps.Add(float64(dist))
	a.mDistance.Observe(float64(dist))
}

// Head returns the current offset of a group (tests).
func (a *RTMArray) Head(group int) int { return int(a.heads[group]) }

// AvgShiftDistance returns mean steps per shifting access.
func (a *RTMArray) AvgShiftDistance() float64 {
	if a.ShiftOps == 0 {
		return 0
	}
	return float64(a.ShiftSteps) / float64(a.ShiftOps)
}
