// Package cache implements the set-associative cache model used by the
// system simulator, plus the racetrack-memory LLC organization with the
// paper's data mapping: each 64-byte line is interleaved over a group of
// 512 stripes that shift together, each stripe contributing one bit per
// line across its 64 data domains (8 segments of 8 by default).
package cache

import (
	"fmt"

	"racetrack/hifi/internal/telemetry"
)

// Stats counts cache events.
type Stats struct {
	Hits, Misses  uint64
	Evictions     uint64
	Writebacks    uint64
	ReadAccesses  uint64
	WriteAccesses uint64
}

// MissRate returns misses / accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// age is a per-set LRU counter stamp; larger = more recent.
	age uint64
}

// Cache is a blocking set-associative cache with true-LRU replacement.
type Cache struct {
	sets, ways int
	lineBytes  int
	lines      []line // sets * ways
	clock      uint64
	Stats      Stats

	// Telemetry handles; nil (the default) costs one branch per event.
	// Several caches may share handles (memsim aggregates the per-core
	// L1s into one labelled series).
	mHits, mMisses, mEvictions, mWritebacks *telemetry.Counter
}

// Instrument attaches labelled event counters from reg; level tags the
// series ("l1", "l2", "l3"). A nil registry detaches. Sibling caches
// instrumented with the same level share the same series.
func (c *Cache) Instrument(reg *telemetry.Registry, level string) {
	tag := func(name string) string { return telemetry.Label(name, "level", level) }
	c.mHits = reg.Counter(tag(telemetry.MetricCacheHits), "cache hits by level")
	c.mMisses = reg.Counter(tag(telemetry.MetricCacheMisses), "cache misses by level")
	c.mEvictions = reg.Counter(tag(telemetry.MetricCacheEvictions), "cache evictions by level")
	c.mWritebacks = reg.Counter(tag(telemetry.MetricCacheWritebacks), "dirty cache evictions by level")
}

// New builds a cache of the given capacity. capacity must be divisible by
// ways*lineBytes.
func New(capacityB int64, ways, lineBytes int) *Cache {
	if capacityB <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("cache: non-positive geometry")
	}
	setBytes := int64(ways * lineBytes)
	if capacityB%setBytes != 0 {
		panic(fmt.Sprintf("cache: capacity %d not divisible by way size %d", capacityB, setBytes))
	}
	sets := int(capacityB / setBytes)
	return &Cache{
		sets:      sets,
		ways:      ways,
		lineBytes: lineBytes,
		lines:     make([]line, sets*ways),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// index splits an address into set index and tag.
func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(c.lineBytes)
	return int(lineAddr % uint64(c.sets)), lineAddr / uint64(c.sets)
}

// Result describes one access.
type Result struct {
	Hit bool
	// Way is the way the line occupies after the access.
	Way int
	// Set is the set index.
	Set int
	// Evicted reports a valid line was displaced.
	Evicted bool
	// Writeback reports the displaced line was dirty.
	Writeback bool
	// EvictedAddr reconstructs the displaced line's address.
	EvictedAddr uint64
}

// Access looks up addr, allocating on miss (write-allocate, writeback).
func (c *Cache) Access(addr uint64, write bool) Result {
	c.clock++
	set, tag := c.index(addr)
	base := set * c.ways
	if write {
		c.Stats.WriteAccesses++
	} else {
		c.Stats.ReadAccesses++
	}
	// Hit?
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			l.age = c.clock
			if write {
				l.dirty = true
			}
			c.Stats.Hits++
			c.mHits.Inc()
			return Result{Hit: true, Way: w, Set: set}
		}
	}
	c.Stats.Misses++
	c.mMisses.Inc()
	// Victim: invalid way first, else LRU.
	victim := 0
	oldest := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if !l.valid {
			victim = w
			oldest = 0
			break
		}
		if l.age < oldest {
			oldest = l.age
			victim = w
		}
	}
	res := Result{Way: victim, Set: set}
	l := &c.lines[base+victim]
	if l.valid {
		res.Evicted = true
		res.Writeback = l.dirty
		if res.Writeback {
			c.Stats.Writebacks++
			c.mWritebacks.Inc()
		}
		c.Stats.Evictions++
		c.mEvictions.Inc()
		res.EvictedAddr = (l.tag*uint64(c.sets) + uint64(set)) * uint64(c.lineBytes)
	}
	*l = line{tag: tag, valid: true, dirty: write, age: c.clock}
	return res
}

// Contains reports whether addr is resident (no state change).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		l := c.lines[base+w]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr if resident, reporting whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (resident, dirty bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			resident, dirty = true, l.dirty
			l.valid = false
			return resident, dirty
		}
	}
	return false, false
}
