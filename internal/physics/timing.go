package physics

import "math"

// FlatTime returns the time a domain wall needs to traverse one flat region
// of width L under drive velocity u (paper Eq. 2):
//
//	T_flat = alpha * L / ((2*alpha - beta) * u)
//
// It returns +Inf when the drive cannot move the wall.
func (p Params) FlatTime(u float64) float64 {
	denom := (2*p.GilbertAlpha - p.NonAdiabaticBeta) * u
	if denom <= 0 {
		return math.Inf(1)
	}
	return p.GilbertAlpha * p.FlatWidth / denom
}

// DeltaL returns the escape margin delta_l of Eq. 2. A wall can leave a
// notch region only when delta_l > 0; delta_l <= 0 means the drive is at or
// below the threshold density J0 for these parameters.
//
// The paper's expression is delta_l = u*d*M_s/((2*alpha-beta)*V*Delta*gamma)
// - L - d; the material prefactor is folded into escapeC (calibrated so that
// delta_l = 0 exactly at u(J0) for the Table 1 means).
func (p Params) DeltaL(u float64) float64 {
	c := p.escapeC()
	return c*u - p.FlatWidth - p.PinWidth
}

// escapeC returns d*M_s/((2*alpha-beta)*V*Delta*gamma) up to the calibrated
// absolute scale. The nominal operating point fixes the scale: at u0 =
// u(J0) the margin is exactly zero, so C = (L+d)/u0 for nominal geometry;
// parameter variation then perturbs C through d, V and Delta.
func (p Params) escapeC() float64 {
	nominal := Default()
	u0 := nominal.U(nominal.ThresholdJ0)
	c0 := (nominal.FlatWidth + nominal.PinWidth) / u0
	// Relative dependence on the varying parameters, per the closed form.
	rel := (p.PinWidth / nominal.PinWidth) *
		(nominal.PinPotentialV / p.PinPotentialV) *
		(nominal.DomainWallWidth / p.DomainWallWidth)
	return c0 * rel
}

// NotchTime returns the time a wall needs to escape one notch region under
// drive velocity u (paper Eq. 2):
//
//	T_notch = tau * ln(1 + d/delta_l)
//
// It returns +Inf for sub-threshold drive (delta_l <= 0): the wall stays
// pinned, which is exactly the property the STS technique exploits.
func (p Params) NotchTime(u float64) float64 {
	dl := p.DeltaL(u)
	if dl <= 0 {
		return math.Inf(1)
	}
	tau := p.PinTimeConstant *
		(p.PinWidth / Default().PinWidth) *
		(Default().DomainWallWidth / p.DomainWallWidth) *
		(Default().PinPotentialV / p.PinPotentialV)
	return tau * math.Log(1+p.PinWidth/dl)
}

// StepTime returns the nominal time to advance one step (escape a notch and
// cross a flat region) at drive density j.
func (p Params) StepTime(j float64) float64 {
	u := p.U(j)
	return p.NotchTime(u) + p.FlatTime(u)
}

// ShiftPulseWidth returns the stage-1 drive pulse width for an intended
// n-step shift at the configured drive density: the ideal time for n steps
// computed from the nominal (mean) parameters (paper §4.1: T_N = N *
// (T_notch + T_flat)), plus half a notch-escape time of margin so the
// nominal wall ends centered in the target notch rather than exactly at its
// entrance.
func ShiftPulseWidth(n int) float64 {
	p := Default()
	u := p.U(p.ShiftCurrentJ)
	return float64(n)*p.StepTime(p.ShiftCurrentJ) + 0.5*p.NotchTime(u)
}

// SubThreshold reports whether drive density j is below the escape threshold
// J0 for these parameters, i.e. whether a pulse at j performs a sub-threshold
// shift that moves walls only inside flat regions.
func (p Params) SubThreshold(j float64) bool {
	return p.DeltaL(p.U(j)) <= 0
}
