package physics

// Material presets. The paper's quantitative model targets in-plane
// magnetized permalloy nanowires (Table 1); its §3.1 notes that
// perpendicular-anisotropy (PMA) material shrinks the domains — raising
// density — but increases the position error rate at the same time. The
// presets below capture those trade-offs so the error model and the
// density/area studies can be re-run for either device.

// Material identifies a nanowire technology option.
type Material int

const (
	// InPlane is the Table 1 permalloy device the paper evaluates.
	InPlane Material = iota
	// Perpendicular is a PMA device: ~2x shorter domains and pinning
	// regions (higher density), stronger anisotropy, but proportionally
	// tighter timing margins, which raises the raw position error rate.
	Perpendicular
)

// String implements fmt.Stringer.
func (m Material) String() string {
	switch m {
	case InPlane:
		return "in-plane"
	case Perpendicular:
		return "perpendicular"
	default:
		return "unknown-material"
	}
}

// ForMaterial returns the device parameters for the chosen material.
// InPlane returns Default(). Perpendicular halves the geometric pitch
// (domain wall width, pinning width, flat width) and raises the anisotropy
// field; the same absolute process variation over smaller features doubles
// the relative variation, which is what drives the higher error rate.
func ForMaterial(m Material) Params {
	p := Default()
	if m != Perpendicular {
		return p
	}
	p.DomainWallWidth /= 2
	p.PinWidth /= 2
	p.FlatWidth /= 2
	p.AnisotropyHK *= 4 // PMA: strong out-of-plane anisotropy
	// Absolute lithographic variation is unchanged while features halve:
	// relative sigmas double.
	p.SigmaDelta *= 2
	p.SigmaV *= 2
	p.SigmaD *= 2
	p.SigmaL *= 2
	// Smaller pitch at the same wall velocity: per-step time halves, so
	// the calibrated pinning time constant scales with the pitch.
	p.PinTimeConstant /= 2
	return p
}

// DensityGain returns the storage-density advantage of a material relative
// to the in-plane baseline (domains per unit length).
func DensityGain(m Material) float64 {
	base := Default().StepPitch()
	return base / ForMaterial(m).StepPitch()
}
