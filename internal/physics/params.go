// Package physics implements the one-dimensional domain-wall motion model
// that underlies racetrack-memory shift operations (paper §3.1, Eq. 1-2,
// Table 1).
//
// The model has two layers:
//
//   - An ODE layer (Wall, Step) integrating the collective-coordinate
//     equations for wall position q and tilt angle psi, used to study wall
//     dynamics directly.
//   - A timing layer (FlatTime, NotchTime, StepTime) using the paper's
//     closed-form expressions for the time a wall needs to traverse a flat
//     region and escape a notch region, used by the Monte-Carlo shift
//     outcome sampler and by the latency model.
//
// Physical constants whose absolute SI magnitudes are unobservable at the
// architecture level (the paper's V is quoted in J/dm^3 and its torque
// prefactors are material-specific) are folded into two calibrated
// quantities, documented on Params: the wall velocity per unit current
// density, and the pinning time constant. Calibration reproduces the
// paper's headline timing (0.4 ns per shifted step at J = 2*J0) and its
// threshold current density J0 = J/2 for the Table 1 operating point.
package physics

import "racetrack/hifi/internal/sim"

// Params holds the device parameters of Table 1 plus the material constants
// of the 1-D model. All lengths are in meters, times in seconds, and current
// densities in A/m^2.
type Params struct {
	// Table 1 geometry.
	DomainWallWidth  float64 // Delta, mean 5.00 nm
	PinPotentialV    float64 // V, pinning potential depth (normalized units)
	PinWidth         float64 // d, notch (pinning) region width, mean 45 nm
	FlatWidth        float64 // L, flat region width, mean 150 nm
	ShiftCurrentJ    float64 // J, drive current density, 1.24 A/um^2 = 2*J0
	ThresholdJ0      float64 // J0, minimum density that frees a pinned wall
	VelocityPerJ     float64 // b_J: wall velocity u = b_J * J (m/s per A/m^2)
	PinTimeConstant  float64 // tau: notch escape time scale (s)
	GilbertAlpha     float64 // alpha, Gilbert damping
	NonAdiabaticBeta float64 // beta, non-adiabatic spin-transfer term
	GammaGyro        float64 // gamma, gyromagnetic ratio (m/(A*s))
	AnisotropyHK     float64 // H_K, anisotropy field (A/m)
	SaturationMs     float64 // M_s, saturation magnetization (A/m)

	// Relative standard deviations (process variation, Table 1).
	SigmaDelta float64 // 0.02 * mean
	SigmaV     float64 // 0.02 * mean
	SigmaD     float64 // 0.05 * mean
	SigmaL     float64 // 0.05 * mean
	// Environmental variation applied to the drive velocity per operation.
	SigmaU float64
}

// Default returns the Table 1 operating point. The drive current is twice
// the threshold (J = 2*J0), the paper's choice that balances under- and
// over-shift rates.
func Default() Params {
	const (
		j   = 1.24e12 // 1.24 A/um^2 in A/m^2
		j0  = j / 2
		l   = 150e-9
		d   = 45e-9
		del = 5e-9
	)
	return Params{
		DomainWallWidth: del,
		PinPotentialV:   1.2, // normalized depth; absolute scale folded into tau
		PinWidth:        d,
		FlatWidth:       l,
		ShiftCurrentJ:   j,
		ThresholdJ0:     j0,
		// Calibrated so that T_flat(2*J0) = 0.25 ns with the constants
		// below: u(2*J0) = alpha*L / ((2*alpha-beta) * 0.25ns) = 400 m/s.
		VelocityPerJ: 400.0 / j,
		// Calibrated so that T_notch(2*J0) = 0.15 ns, giving the paper's
		// 0.4 ns per-step stage-1 latency.
		PinTimeConstant:  0.722e-9,
		GilbertAlpha:     0.02,
		NonAdiabaticBeta: 0.01,
		GammaGyro:        2.21e5,
		// The anisotropy field sets the maximum drive a pinned wall can
		// balance (the Walker-like ceiling 0.5*gamma*Delta*H_K ~ 188 m/s
		// here). Calibrated between u(0.8*J0)=160 m/s (STS stage-2 must
		// hold pinned walls) and u(J0)=200 m/s (threshold drive must
		// free them), consistent with Eq. 2's escape threshold.
		AnisotropyHK: 3.4e5,
		SaturationMs: 8.0e5,
		SigmaDelta:   0.02,
		SigmaV:       0.02,
		SigmaD:       0.05,
		SigmaL:       0.05,
		SigmaU:       0.012,
	}
}

// U returns the steady-state wall velocity (m/s) for drive density j.
func (p Params) U(j float64) float64 { return p.VelocityPerJ * j }

// StepPitch returns the distance between successive notch centers:
// one flat region plus one pinning region.
func (p Params) StepPitch() float64 { return p.FlatWidth + p.PinWidth }

// Variant returns a copy of p with geometry parameters perturbed by process
// variation (per stripe/notch) and the drive velocity perturbed by
// environmental variation (per operation). Variations are truncated at
// +-4 sigma, the paper's "conservative estimation".
func (p Params) Variant(r *sim.RNG) Params {
	v := p
	v.DomainWallWidth = r.TruncNormal(p.DomainWallWidth, p.SigmaDelta*p.DomainWallWidth, 4)
	v.PinPotentialV = r.TruncNormal(p.PinPotentialV, p.SigmaV*p.PinPotentialV, 4)
	v.PinWidth = r.TruncNormal(p.PinWidth, p.SigmaD*p.PinWidth, 4)
	v.FlatWidth = r.TruncNormal(p.FlatWidth, p.SigmaL*p.FlatWidth, 4)
	v.VelocityPerJ = r.TruncNormal(p.VelocityPerJ, p.SigmaU*p.VelocityPerJ, 4)
	return v
}

// Validate reports whether the parameters are physically meaningful for the
// 1-D model (positive geometry, drive above zero, 2*alpha > beta so the
// flat-region traversal time is positive).
func (p Params) Validate() error {
	switch {
	case p.DomainWallWidth <= 0, p.PinWidth <= 0, p.FlatWidth <= 0:
		return errNonPositiveGeometry
	case p.ShiftCurrentJ <= 0 || p.ThresholdJ0 <= 0:
		return errNonPositiveDrive
	case 2*p.GilbertAlpha <= p.NonAdiabaticBeta:
		return errDampingRegime
	case p.VelocityPerJ <= 0 || p.PinTimeConstant <= 0:
		return errCalibration
	}
	return nil
}

type paramError string

func (e paramError) Error() string { return "physics: " + string(e) }

const (
	errNonPositiveGeometry = paramError("non-positive geometry parameter")
	errNonPositiveDrive    = paramError("non-positive current density")
	errDampingRegime       = paramError("requires 2*alpha > beta")
	errCalibration         = paramError("non-positive calibration constant")
)
