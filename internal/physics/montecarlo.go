package physics

import (
	"context"
	"math"

	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/telemetry"
)

// Outcome describes where the domain walls of a stripe ended up after one
// shift pulse, relative to the intended target position.
//
// StepOffset is in whole steps: 0 means the walls reached the intended notch
// neighborhood, +1 means over-shifted by one step, -1 under-shifted, etc.
// InNotch reports whether the walls settled inside a notch region; when
// false the shift suffered a stop-in-middle error and reads are
// indeterminate (paper Fig. 3c).
type Outcome struct {
	StepOffset int
	InNotch    bool
}

// Correct reports whether the shift fully succeeded.
func (o Outcome) Correct() bool { return o.StepOffset == 0 && o.InNotch }

// OutOfStep reports whether the shift completed into a notch but at the
// wrong step (paper Fig. 3d).
func (o Outcome) OutOfStep() bool { return o.InNotch && o.StepOffset != 0 }

// StopInMiddle reports whether the walls stopped between notches.
func (o Outcome) StopInMiddle() bool { return !o.InNotch }

// SampleShift simulates one n-step shift pulse with process and
// environmental variation and returns the resulting outcome.
//
// The controller programs the stage-1 pulse for the nominal n-step duration;
// the wall's actual progress accumulates per-region traversal times drawn
// from the varied parameters (Eq. 2 closed forms). When the pulse ends the
// wall is either inside a notch region (aligned, possibly at the wrong
// step) or inside a flat region (stop-in-middle).
func SampleShift(p Params, n int, r *sim.RNG) Outcome {
	if n <= 0 {
		return Outcome{StepOffset: 0, InNotch: true}
	}
	// Nominal pulse schedule with a half-notch margin (see ShiftPulseWidth).
	pulse := float64(n)*p.StepTime(p.ShiftCurrentJ) +
		0.5*p.NotchTime(p.U(p.ShiftCurrentJ))
	elapsed := 0.0
	steps := 0
	// Walk region by region until the pulse budget is exhausted. Each
	// region's traversal time is drawn with fresh variation (different
	// notches, plus environmental drift within the pulse).
	for {
		v := p.Variant(r)
		u := v.U(v.ShiftCurrentJ)
		tn := v.NotchTime(u)
		if math.IsInf(tn, 1) {
			// Drive fell below threshold for this notch: wall never
			// escapes; it stays pinned where it is.
			return Outcome{StepOffset: steps - n, InNotch: true}
		}
		if elapsed+tn >= pulse {
			// Pulse ended while the wall was escaping this notch. At
			// drive well above the 2*J0 operating point, a wall deep
			// into its escape carries enough momentum to leave the notch
			// anyway ("blow-through") and strand in the following flat
			// region — the over-shift mechanism behind the paper's
			// warning that too-large J raises over-shifted error rates.
			progress := (pulse - elapsed) / tn
			ratio := v.ShiftCurrentJ / v.ThresholdJ0
			if ratio > 2 && progress > 0.3 {
				pBlow := (ratio - 2) / ratio * progress
				if r.Float64() < pBlow {
					return Outcome{StepOffset: steps - n, InNotch: false}
				}
			}
			return Outcome{StepOffset: steps - n, InNotch: true}
		}
		elapsed += tn
		tf := v.FlatTime(u)
		if elapsed+tf >= pulse {
			// Pulse ended mid-flat: where in the flat region the wall is
			// determines whether momentum carries it into the next notch.
			frac := (pulse - elapsed) / tf
			// Walls very close to the next notch still settle into it
			// (the pinning attraction has finite range ~ d/2 around the
			// notch), otherwise the wall stops in the middle.
			capture := v.PinWidth / 2 / v.FlatWidth
			if frac >= 1-capture {
				return Outcome{StepOffset: steps + 1 - n, InNotch: true}
			}
			if frac <= capture && steps > 0 {
				return Outcome{StepOffset: steps - n, InNotch: true}
			}
			return Outcome{StepOffset: steps - n, InNotch: false}
		}
		elapsed += tf
		steps++
		if steps > n+8 {
			// Runaway (drive far above nominal): report gross over-shift.
			return Outcome{StepOffset: steps - n, InNotch: true}
		}
	}
}

// ErrorPDF estimates the probability distribution of shift outcomes for an
// n-step shift from samples Monte-Carlo trials. The returned map keys are
// outcome classes as used in the paper's Fig. 4: integer step offsets for
// out-of-step/aligned outcomes, and half-open interval labels for
// stop-in-middle outcomes (the wall stopped between offset k and k+1 is
// keyed as k with InNotch=false).
type PDFBin struct {
	StepOffset int
	InNotch    bool
}

// ErrorPDF runs trials Monte-Carlo samples of an n-step shift and returns
// outcome frequencies keyed by bin.
func ErrorPDF(p Params, n int, trials int, r *sim.RNG) map[PDFBin]float64 {
	return ErrorPDFCtx(context.Background(), p, n, trials, r)
}

// ErrorPDFCtx is ErrorPDF recorded as a span ("physics-errorpdf", with
// the distance and trial count as attributes) when ctx carries a
// telemetry.SpanCollector — the Monte-Carlo sweep dominates the analytic
// experiments' wall time, so it gets its own timing node.
func ErrorPDFCtx(ctx context.Context, p Params, n int, trials int, r *sim.RNG) map[PDFBin]float64 {
	_, sp := telemetry.StartSpan(ctx, "physics-errorpdf",
		telemetry.AInt("steps", int64(n)), telemetry.AInt("trials", int64(trials)))
	defer sp.End()
	counts := make(map[PDFBin]int)
	for i := 0; i < trials; i++ {
		o := SampleShift(p, n, r)
		counts[PDFBin{o.StepOffset, o.InNotch}]++
	}
	pdf := make(map[PDFBin]float64, len(counts))
	for k, c := range counts {
		pdf[k] = float64(c) / float64(trials)
	}
	return pdf
}

// TailRate estimates, analytically, the probability that the accumulated
// timing deviation of an n-step shift exceeds k steps in either direction
// (out-of-step error of magnitude >= k), using a Gaussian accumulation model
// of the per-step traversal-time jitter with tail probabilities computed in
// log space (rates like 1e-21 are far beyond Monte-Carlo reach; the paper
// likewise reports fitted values).
//
// The returned value is log10 of the rate.
func TailRateLog10(p Params, n, k int, r *sim.RNG) float64 {
	mean, sd := stepTimeMoments(p, r)
	if sd == 0 {
		return math.Inf(-1)
	}
	// The pulse is scheduled for n nominal steps; an error of k steps
	// requires the accumulated time of n steps to deviate by ~k step times.
	z := float64(k) * mean / (sd * math.Sqrt(float64(n)))
	// Two-sided.
	return sim.LogNormalTailApprox(z) + math.Log10(2)
}

// stepTimeMoments estimates the per-step traversal-time mean and standard
// deviation under parameter variation by sampling.
func stepTimeMoments(p Params, r *sim.RNG) (mean, sd float64) {
	var s sim.Summary
	for i := 0; i < 4096; i++ {
		v := p.Variant(r)
		u := v.U(v.ShiftCurrentJ)
		t := v.NotchTime(u) + v.FlatTime(u)
		if math.IsInf(t, 1) {
			continue
		}
		s.Add(t)
	}
	return s.Mean(), s.StdDev()
}
