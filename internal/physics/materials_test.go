package physics

import (
	"testing"

	"racetrack/hifi/internal/sim"
)

func TestMaterialString(t *testing.T) {
	if InPlane.String() != "in-plane" || Perpendicular.String() != "perpendicular" {
		t.Error("material names wrong")
	}
	if Material(9).String() != "unknown-material" {
		t.Error("unknown material name")
	}
}

func TestForMaterialInPlaneIsDefault(t *testing.T) {
	if ForMaterial(InPlane) != Default() {
		t.Error("in-plane should be the Table 1 device")
	}
}

func TestPerpendicularValidates(t *testing.T) {
	if err := ForMaterial(Perpendicular).Validate(); err != nil {
		t.Fatalf("perpendicular params invalid: %v", err)
	}
}

func TestPerpendicularDensityGain(t *testing.T) {
	// Paper §3.1: perpendicular material reduces domain size — about 2x
	// density with the halved pitch.
	gain := DensityGain(Perpendicular)
	if gain < 1.9 || gain > 2.1 {
		t.Errorf("density gain = %v, want ~2", gain)
	}
	if DensityGain(InPlane) != 1 {
		t.Error("in-plane density gain should be 1")
	}
}

func TestPerpendicularHigherErrorRate(t *testing.T) {
	// Paper §3.1: "using perpendicular material can reduce the size of
	// domain but may increase error rate at the same time."
	inPlane := ForMaterial(InPlane)
	pma := ForMaterial(Perpendicular)
	rate := func(p Params, seed uint64) float64 {
		r := sim.NewRNG(seed)
		bad := 0
		const trials = 40000
		for i := 0; i < trials; i++ {
			if !SampleShift(p, 4, r).Correct() {
				bad++
			}
		}
		return float64(bad) / trials
	}
	rIn := rate(inPlane, 1)
	rPMA := rate(pma, 1)
	if rPMA <= rIn {
		t.Errorf("perpendicular error rate %v should exceed in-plane %v", rPMA, rIn)
	}
}

func TestPerpendicularStillShifts(t *testing.T) {
	// The PMA device must remain functional: sub-threshold behaviour and
	// finite step times.
	p := ForMaterial(Perpendicular)
	if p.SubThreshold(p.ShiftCurrentJ) {
		t.Error("full drive should stay above threshold")
	}
	st := p.StepTime(p.ShiftCurrentJ)
	if st <= 0 || st > 1e-9 {
		t.Errorf("step time %v out of plausible range", st)
	}
}
