package physics

import (
	"context"
	"math"

	"racetrack/hifi/internal/telemetry"
)

// Wall is the collective-coordinate state of one domain wall: its position q
// along the stripe (m) and tilt angle psi (rad).
type Wall struct {
	Q   float64
	Psi float64
}

// Derivatives returns (dq/dt, dpsi/dt) for the 1-D domain-wall equation of
// motion (paper Eq. 1) with zero applied transverse and lengthwise fields
// (H_T = H_A = 0, the practical operating condition):
//
//	(1+alpha^2) dq/dt  =  (1/2) gamma Delta H_K sin(2 psi)
//	                      - alpha gamma Delta V q / (M_s d)
//	                      + (1 + alpha beta) u
//	(1+alpha^2) dpsi/dt = -(1/2) alpha gamma H_K sin(2 psi)
//	                      - gamma V q / (M_s d)
//	                      - ((beta - alpha)/Delta) u
//
// The -V q/(M_s d) terms model the restoring force of a pinning notch
// centered at q = 0; pass pinned=false to drop them (free flat region).
func (p Params) Derivatives(w Wall, u float64, pinned bool) (dq, dpsi float64) {
	inv := 1 / (1 + p.GilbertAlpha*p.GilbertAlpha)
	sin2 := math.Sin(2 * w.Psi)
	var pin float64
	if pinned {
		pin = p.PinPotentialV * w.Q / (p.SaturationMs * p.PinWidth) * pinScale
	}
	dq = inv * (0.5*p.GammaGyro*p.DomainWallWidth*p.AnisotropyHK*sin2 -
		p.GilbertAlpha*p.GammaGyro*p.DomainWallWidth*pin +
		(1+p.GilbertAlpha*p.NonAdiabaticBeta)*u)
	dpsi = inv * (-0.5*p.GilbertAlpha*p.GammaGyro*p.AnisotropyHK*sin2 -
		p.GammaGyro*pin -
		(p.NonAdiabaticBeta-p.GilbertAlpha)/p.DomainWallWidth*u)
	return dq, dpsi
}

// pinScale converts the normalized pinning depth V into an effective field
// amplitude. The restoring channel alpha*gamma*Delta*P(q) must outrun the
// drive term (1+alpha*beta)*u below threshold: with P(d) = V*pinScale/Ms,
// the escape threshold sits at u_th = alpha*gamma*Delta*P(d) ~ 180 m/s —
// between the sub-threshold STS drive u(0.8*J0) = 160 m/s (held) and the
// threshold drive u(J0) = 200 m/s (released), consistent with Eq. 2.
const pinScale = 5.4e12

// Step advances the wall by dt seconds under drive velocity u using a
// fourth-order Runge-Kutta step.
func (p Params) Step(w Wall, u, dt float64, pinned bool) Wall {
	k1q, k1p := p.Derivatives(w, u, pinned)
	k2q, k2p := p.Derivatives(Wall{w.Q + 0.5*dt*k1q, w.Psi + 0.5*dt*k1p}, u, pinned)
	k3q, k3p := p.Derivatives(Wall{w.Q + 0.5*dt*k2q, w.Psi + 0.5*dt*k2p}, u, pinned)
	k4q, k4p := p.Derivatives(Wall{w.Q + dt*k3q, w.Psi + dt*k3p}, u, pinned)
	return Wall{
		Q:   w.Q + dt/6*(k1q+2*k2q+2*k3q+k4q),
		Psi: w.Psi + dt/6*(k1p+2*k2p+2*k3p+k4p),
	}
}

// Integrate advances the wall for total seconds in fixed sub-steps of dt and
// returns the final state.
func (p Params) Integrate(w Wall, u, total, dt float64, pinned bool) Wall {
	steps := int(total / dt)
	for i := 0; i < steps; i++ {
		w = p.Step(w, u, dt, pinned)
	}
	if rem := total - float64(steps)*dt; rem > 0 {
		w = p.Step(w, u, rem, pinned)
	}
	return w
}

// IntegrateCtx is Integrate recorded as a "physics-rk4" span (with the
// sub-step count as an attribute) when ctx carries a span collector. Use
// it for trajectory-level integrations; the per-step RK4 math stays
// span-free.
func (p Params) IntegrateCtx(ctx context.Context, w Wall, u, total, dt float64, pinned bool) Wall {
	_, sp := telemetry.StartSpan(ctx, "physics-rk4",
		telemetry.AInt("substeps", int64(total/dt)))
	defer sp.End()
	return p.Integrate(w, u, total, dt, pinned)
}

// TerminalVelocity returns the asymptotic wall velocity in a flat region for
// drive velocity u, in the steady (below Walker breakdown) regime:
// v = (beta/alpha) u when psi locks. For the paper's operating regime with
// beta < alpha the effective closed-form drift used by the timing layer is
// (2*alpha - beta)/alpha * u; see FlatTime.
func (p Params) TerminalVelocity(u float64) float64 {
	return (2*p.GilbertAlpha - p.NonAdiabaticBeta) / p.GilbertAlpha * u
}
