package physics

import (
	"math"
	"testing"

	"racetrack/hifi/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero wall width", func(p *Params) { p.DomainWallWidth = 0 }},
		{"zero pin width", func(p *Params) { p.PinWidth = 0 }},
		{"negative flat", func(p *Params) { p.FlatWidth = -1 }},
		{"zero current", func(p *Params) { p.ShiftCurrentJ = 0 }},
		{"zero threshold", func(p *Params) { p.ThresholdJ0 = 0 }},
		{"damping regime", func(p *Params) { p.NonAdiabaticBeta = 0.1 }},
		{"zero velocity", func(p *Params) { p.VelocityPerJ = 0 }},
		{"zero tau", func(p *Params) { p.PinTimeConstant = 0 }},
	}
	for _, c := range cases {
		p := Default()
		c.mut(&p)
		if p.Validate() == nil {
			t.Errorf("%s: Validate accepted invalid params", c.name)
		}
	}
}

func TestFlatTimeCalibration(t *testing.T) {
	p := Default()
	got := p.FlatTime(p.U(p.ShiftCurrentJ))
	if math.Abs(got-0.25e-9) > 0.01e-9 {
		t.Errorf("T_flat at 2*J0 = %.3g s, want 0.25 ns", got)
	}
}

func TestNotchTimeCalibration(t *testing.T) {
	p := Default()
	got := p.NotchTime(p.U(p.ShiftCurrentJ))
	if math.Abs(got-0.15e-9) > 0.01e-9 {
		t.Errorf("T_notch at 2*J0 = %.3g s, want ~0.15 ns", got)
	}
}

func TestStepTimeIsPaperHeadline(t *testing.T) {
	// Paper: stage-1 latency is ~0.4 ns per step at the Table 1 point.
	p := Default()
	got := p.StepTime(p.ShiftCurrentJ)
	if math.Abs(got-0.4e-9) > 0.02e-9 {
		t.Errorf("step time = %.3g s, want ~0.4 ns", got)
	}
}

func TestThresholdBehaviour(t *testing.T) {
	p := Default()
	if !p.SubThreshold(p.ThresholdJ0 * 0.99) {
		t.Error("drive just below J0 should be sub-threshold")
	}
	if p.SubThreshold(p.ShiftCurrentJ) {
		t.Error("full drive should be above threshold")
	}
	if !math.IsInf(p.NotchTime(p.U(p.ThresholdJ0*0.5)), 1) {
		t.Error("notch escape time at half threshold should be +Inf")
	}
}

func TestNotchTimeDivergesNearThreshold(t *testing.T) {
	// T_notch grows without bound as J -> J0 from above: the paper's
	// rationale for why driving near threshold is too slow.
	p := Default()
	t1 := p.NotchTime(p.U(p.ThresholdJ0 * 1.01))
	t2 := p.NotchTime(p.U(p.ThresholdJ0 * 1.5))
	t3 := p.NotchTime(p.U(p.ShiftCurrentJ))
	if !(t1 > t2 && t2 > t3) {
		t.Errorf("notch time not decreasing with drive: %g, %g, %g", t1, t2, t3)
	}
}

func TestShiftPulseWidthAffine(t *testing.T) {
	// Pulse width is N*step + constant margin: the per-step increment must
	// be constant and equal to the nominal step time.
	w1 := ShiftPulseWidth(1)
	w2 := ShiftPulseWidth(2)
	w7 := ShiftPulseWidth(7)
	step := Default().StepTime(Default().ShiftCurrentJ)
	if math.Abs((w2-w1)-step) > 1e-15 {
		t.Errorf("per-step increment = %g, want %g", w2-w1, step)
	}
	if math.Abs((w7-w1)-6*step) > 1e-15 {
		t.Errorf("w7-w1 = %g, want %g", w7-w1, 6*step)
	}
	if w1 <= step {
		t.Errorf("w1 = %g should exceed one step time (margin)", w1)
	}
}

func TestVariantStaysNearMean(t *testing.T) {
	p := Default()
	r := sim.NewRNG(1)
	var s sim.Summary
	for i := 0; i < 20000; i++ {
		v := p.Variant(r)
		s.Add(v.PinWidth)
		if v.PinWidth <= 0 || v.FlatWidth <= 0 {
			t.Fatal("variant produced non-positive geometry")
		}
	}
	if math.Abs(s.Mean()-p.PinWidth)/p.PinWidth > 0.01 {
		t.Errorf("variant pin width mean %g, want ~%g", s.Mean(), p.PinWidth)
	}
	rel := s.StdDev() / p.PinWidth
	if math.Abs(rel-p.SigmaD) > 0.005 {
		t.Errorf("variant pin width sigma %g, want ~%g", rel, p.SigmaD)
	}
}

func TestWallMovesWithDrive(t *testing.T) {
	p := Default()
	u := p.U(p.ShiftCurrentJ)
	w := p.Integrate(Wall{}, u, 1e-9, 1e-13, false)
	if w.Q <= 0 {
		t.Errorf("wall did not advance under positive drive: q=%g", w.Q)
	}
	// Should have crossed at least one flat region in 1 ns at ~600 m/s
	// effective velocity.
	if w.Q < 100e-9 {
		t.Errorf("wall advanced only %g m in 1 ns", w.Q)
	}
}

func TestWallStationaryWithoutDrive(t *testing.T) {
	p := Default()
	w := p.Integrate(Wall{}, 0, 1e-9, 1e-13, false)
	if math.Abs(w.Q) > 1e-12 {
		t.Errorf("wall moved without drive: q=%g", w.Q)
	}
}

func TestPinningRestoresSmallDisplacement(t *testing.T) {
	// A wall displaced slightly inside a notch with no drive relaxes back
	// toward the notch center (q = 0).
	p := Default()
	w0 := Wall{Q: 2e-9}
	w := p.Integrate(w0, 0, 5e-9, 1e-13, true)
	if math.Abs(w.Q) >= math.Abs(w0.Q) {
		t.Errorf("pinning did not restore: |q| %g -> %g", w0.Q, math.Abs(w.Q))
	}
}

func TestRK4MatchesSmallStepEuler(t *testing.T) {
	// Sanity: RK4 with coarse steps should agree with Euler at tiny steps.
	p := Default()
	u := p.U(p.ShiftCurrentJ)
	rk := p.Integrate(Wall{}, u, 0.1e-9, 1e-12, false)
	// Euler with very fine steps.
	w := Wall{}
	dt := 1e-15
	for i := 0; i < int(0.1e-9/dt); i++ {
		dq, dp := p.Derivatives(w, u, false)
		w.Q += dq * dt
		w.Psi += dp * dt
	}
	if math.Abs(rk.Q-w.Q) > 1e-3*math.Abs(w.Q)+1e-15 {
		t.Errorf("RK4 q=%g vs Euler q=%g", rk.Q, w.Q)
	}
}

func TestSampleShiftZeroSteps(t *testing.T) {
	r := sim.NewRNG(2)
	o := SampleShift(Default(), 0, r)
	if !o.Correct() {
		t.Errorf("0-step shift should be trivially correct, got %+v", o)
	}
}

func TestSampleShiftMostlyCorrect(t *testing.T) {
	p := Default()
	r := sim.NewRNG(3)
	correct := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if SampleShift(p, 1, r).Correct() {
			correct++
		}
	}
	frac := float64(correct) / trials
	if frac < 0.995 {
		t.Errorf("1-step shift correct fraction = %v, want > 0.995", frac)
	}
	if frac == 1 {
		t.Log("no errors observed in 20k trials (rate may be below resolution); acceptable")
	}
}

func TestErrorRateGrowsWithDistance(t *testing.T) {
	// Paper observation 1: error rates increase with shift distance.
	p := Default()
	// Inflate variation so the Monte-Carlo resolves rates quickly.
	p.SigmaU = 0.05
	r := sim.NewRNG(4)
	rate := func(n int) float64 {
		bad := 0
		const trials = 30000
		for i := 0; i < trials; i++ {
			if !SampleShift(p, n, r).Correct() {
				bad++
			}
		}
		return float64(bad) / trials
	}
	r1, r7 := rate(1), rate(7)
	if r7 <= r1 {
		t.Errorf("error rate did not grow with distance: r1=%v r7=%v", r1, r7)
	}
}

func TestErrorPDFNormalized(t *testing.T) {
	p := Default()
	p.SigmaU = 0.05
	r := sim.NewRNG(5)
	pdf := ErrorPDF(p, 4, 5000, r)
	total := 0.0
	for _, v := range pdf {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("PDF sums to %v", total)
	}
	if pdf[PDFBin{0, true}] < 0.5 {
		t.Errorf("correct outcome not dominant: %v", pdf[PDFBin{0, true}])
	}
}

func TestTailRateLog10Properties(t *testing.T) {
	p := Default()
	r := sim.NewRNG(6)
	l1 := TailRateLog10(p, 1, 1, r.Split())
	l17 := TailRateLog10(p, 7, 1, r.Split())
	l2 := TailRateLog10(p, 1, 2, r.Split())
	if l17 <= l1 {
		t.Errorf("k=1 tail should grow with distance: n=1 %v, n=7 %v", l1, l17)
	}
	if l2 >= l1 {
		t.Errorf("k=2 tail should be far below k=1: k1=%v k2=%v", l1, l2)
	}
	if math.IsNaN(l1) || math.IsInf(l1, 1) {
		t.Errorf("tail rate not finite: %v", l1)
	}
}

func TestTerminalVelocityPositive(t *testing.T) {
	p := Default()
	v := p.TerminalVelocity(p.U(p.ShiftCurrentJ))
	if v <= 0 {
		t.Errorf("terminal velocity = %v", v)
	}
}
