package physics

import (
	"math"
	"testing"
)

// escapesNotch integrates the full equation of motion (Eq. 1) for a wall
// starting at a notch center under drive density j and reports whether it
// escapes the pinning region (|q| > d) within the time budget.
func escapesNotch(p Params, j, budget float64) bool {
	u := p.U(j)
	w := Wall{}
	dt := 1e-13
	steps := int(budget / dt)
	for i := 0; i < steps; i++ {
		w = p.Step(w, u, dt, true)
		if math.Abs(w.Q) > p.PinWidth {
			return true
		}
	}
	return false
}

func TestODEExhibitsPinningThreshold(t *testing.T) {
	// The architecture-level model (Eq. 2 closed forms, STS stage-2)
	// rests on a drive threshold: below J0 a pinned wall stays pinned,
	// at the 2*J0 operating point it escapes quickly. The integrated
	// Eq. 1 dynamics must reproduce that qualitative behaviour.
	p := Default()
	const budget = 5e-9 // generous: 12x the nominal step time

	if escapesNotch(p, 0.2*p.ThresholdJ0, budget) {
		t.Error("wall escaped at 0.2*J0: pinning too weak for STS stage-2")
	}
	if !escapesNotch(p, p.ShiftCurrentJ, budget) {
		t.Error("wall failed to escape at the 2*J0 operating point")
	}
	// Higher drive escapes at least as fast (monotonicity).
	if !escapesNotch(p, 1.5*p.ShiftCurrentJ, budget) {
		t.Error("wall failed to escape at 3*J0")
	}
}

func TestODEEscapeTimeOrdering(t *testing.T) {
	// Escape should take longer at lower (supra-threshold) drive — the
	// ODE analogue of NotchTime's divergence near J0.
	p := Default()
	escapeTime := func(j float64) float64 {
		u := p.U(j)
		w := Wall{}
		dt := 1e-13
		for i := 0; i < 200000; i++ {
			w = p.Step(w, u, dt, true)
			if math.Abs(w.Q) > p.PinWidth {
				return float64(i) * dt
			}
		}
		return math.Inf(1)
	}
	fast := escapeTime(1.5 * p.ShiftCurrentJ)
	slow := escapeTime(p.ShiftCurrentJ)
	if math.IsInf(slow, 1) {
		t.Fatal("no escape at operating drive")
	}
	if fast >= slow {
		t.Errorf("escape at 3*J0 (%g s) not faster than at 2*J0 (%g s)", fast, slow)
	}
}

func TestODESubThresholdFlatMotion(t *testing.T) {
	// STS stage-2 depends on sub-threshold drive moving walls through
	// FLAT regions while notches hold: the free-region equation must
	// still advance the wall at 0.8*J0.
	p := Default()
	j := 0.8 * p.ThresholdJ0
	u := p.U(j)
	w := p.Integrate(Wall{}, u, 1e-9, 1e-13, false)
	if w.Q <= 0 {
		t.Errorf("sub-threshold drive did not move a free wall: q=%g", w.Q)
	}
	// And the same drive must NOT free a pinned wall.
	if escapesNotch(p, j, 5e-9) {
		t.Error("sub-threshold drive freed a pinned wall: STS stage-2 would over-shift")
	}
}
