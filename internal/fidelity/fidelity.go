// Package fidelity scores a run of the experiment suite against the
// paper's published numbers. Each Anchor is one declarative claim about
// one experiment table — a cell value with a tolerance, a bound, a
// column ordering, or a column ratio — tagged with where in the paper
// the claim comes from. Evaluate checks every anchor against a set of
// rendered tables and produces a deterministic scorecard: the same
// tables always yield byte-identical fidelity.json, so the scorecard
// inherits the engine's reproducibility contract (docs/engine.md) and
// two runs can be diffed directly. See docs/fidelity.md.
package fidelity

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"

	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/telemetry/events"
)

// SchemaV1 identifies the scorecard JSON layout.
const SchemaV1 = "hifi_fidelity_v1"

// Kind selects how an anchor's claim is checked.
type Kind string

const (
	// Value compares the selected cell to Want: relative error within
	// RelTol passes, within WarnTol warns, beyond fails.
	Value Kind = "value"
	// AtLeast requires cell >= Want (warn band: >= Want*(1-WarnTol)).
	AtLeast Kind = "at-least"
	// AtMost requires cell <= Want (warn band: <= Want*(1+WarnTol)).
	AtMost Kind = "at-most"
	// Order requires the Cols values to be strictly increasing across
	// each selected row; a violation within multiplicative Slack warns.
	Order Kind = "order"
	// RatioAtLeast requires cell/baseline >= Want per selected row
	// (warn band: >= Want*(1-WarnTol)).
	RatioAtLeast Kind = "ratio-at-least"
	// RatioAtMost requires cell/baseline <= Want per selected row
	// (warn band: <= Want*(1+WarnTol)).
	RatioAtMost Kind = "ratio-at-most"
)

// Anchor is one declarative claim tying an experiment table back to a
// published number or relationship. Anchors address cells by header
// name so they survive column reordering, and select rows by exact
// cell match so they survive row reordering.
type Anchor struct {
	// ID names the anchor in scorecards and CI logs: "table2/k1-d1".
	ID string `json:"id"`
	// Experiment is the table key as listed by experiments.Order().
	Experiment string `json:"experiment"`
	// Source is the paper provenance: "Table 2, d=1, k=1 column".
	Source string `json:"source"`
	// Desc states the claim in words.
	Desc string `json:"desc,omitempty"`

	Kind Kind `json:"kind"`
	// Where filters rows: every listed header column must equal the
	// given cell text exactly. Empty selects every row.
	Where map[string]string `json:"where,omitempty"`
	// Col is the header name of the column under test (all kinds
	// except Order).
	Col string `json:"col,omitempty"`
	// Cols lists the columns that must ascend, for Order.
	Cols []string `json:"cols,omitempty"`
	// Baseline is the denominator column for the ratio kinds.
	Baseline string `json:"baseline,omitempty"`

	// Want is the published value, bound, or ratio bound.
	Want float64 `json:"want,omitempty"`
	// RelTol is the pass band for Value (relative error).
	RelTol float64 `json:"rel_tol,omitempty"`
	// WarnTol widens the band to a warning instead of a failure.
	WarnTol float64 `json:"warn_tol,omitempty"`
	// Slack is the multiplicative tolerance for Order violations.
	Slack float64 `json:"slack,omitempty"`
}

// Status is an anchor verdict. Skip means the experiment's table was
// not in the evaluated set (e.g. a partial sweep), not that it passed.
type Status string

const (
	Pass Status = "pass"
	Warn Status = "warn"
	Fail Status = "fail"
	Skip Status = "skip"
)

// rank orders statuses by severity so row-wise results aggregate to
// the worst one.
func (s Status) rank() int {
	switch s {
	case Fail:
		return 3
	case Warn:
		return 2
	case Pass:
		return 1
	}
	return 0
}

// Result is one evaluated anchor.
type Result struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Source     string `json:"source"`
	Desc       string `json:"desc,omitempty"`
	Kind       Kind   `json:"kind"`
	Status     Status `json:"status"`
	// Measured is the checked value (cell, ratio, or the first
	// offending pair for Order) from the worst row.
	Measured float64 `json:"measured,omitempty"`
	Want     float64 `json:"want,omitempty"`
	// RelErr is the worst relative deviation observed across the
	// selected rows (0 for Order).
	RelErr float64 `json:"rel_err,omitempty"`
	// Rows is how many rows the anchor checked.
	Rows int `json:"rows"`
	// Detail names the row (and reason) behind a non-pass status.
	Detail string `json:"detail,omitempty"`
}

// Scorecard is the full evaluation: one Result per Anchor, in anchor
// declaration order, plus counts. Identical tables produce identical
// scorecards byte for byte.
type Scorecard struct {
	Schema  string   `json:"schema"`
	Pass    int      `json:"pass"`
	Warn    int      `json:"warn"`
	Fail    int      `json:"fail"`
	Skip    int      `json:"skip"`
	Anchors []Result `json:"anchors"`
}

// Evaluate checks every anchor against the tables, keyed as in
// experiments.All. Missing tables skip their anchors; malformed ones
// (unknown column, non-numeric cell, no matching rows) fail them —
// silence here would let a renamed header disable a gate unnoticed.
func Evaluate(anchors []Anchor, tables map[string]experiments.Table) Scorecard {
	sc := Scorecard{Schema: SchemaV1}
	for _, a := range anchors {
		r := evalAnchor(a, tables)
		switch r.Status {
		case Pass:
			sc.Pass++
		case Warn:
			sc.Warn++
		case Fail:
			sc.Fail++
		case Skip:
			sc.Skip++
		}
		sc.Anchors = append(sc.Anchors, r)
	}
	return sc
}

// Err returns a non-nil error when any anchor failed, formatted for a
// CI gate or log.Fatalf.
func (sc Scorecard) Err() error {
	if sc.Fail == 0 {
		return nil
	}
	var first string
	for _, r := range sc.Anchors {
		if r.Status == Fail {
			first = fmt.Sprintf("%s (%s)", r.ID, r.Detail)
			break
		}
	}
	return fmt.Errorf("fidelity: %d anchor(s) failed, first: %s", sc.Fail, first)
}

// Emit publishes one fidelity.verdict event per evaluated anchor to
// bus: Name is the anchor ID, Detail the status (pass/warn/fail/skip),
// V the measured value. Anchor declaration order, so the event stream
// carries the verdicts deterministically. Nil-safe.
func (sc Scorecard) Emit(bus *events.Bus) {
	for _, r := range sc.Anchors {
		bus.Emit(events.Event{
			Type:   events.FidelityVerdict,
			Name:   r.ID,
			Detail: string(r.Status),
			V:      r.Measured,
		})
	}
}

// WriteJSON marshals the scorecard with stable indentation.
func (sc Scorecard) JSON() []byte {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		// Scorecard has no unmarshalable fields; keep the signature clean.
		panic(fmt.Sprintf("fidelity: marshal: %v", err))
	}
	return append(b, '\n')
}

// WriteFile writes the scorecard JSON to path.
func (sc Scorecard) WriteFile(path string) error {
	return os.WriteFile(path, sc.JSON(), 0o644)
}

func evalAnchor(a Anchor, tables map[string]experiments.Table) Result {
	r := Result{ID: a.ID, Experiment: a.Experiment, Source: a.Source,
		Desc: a.Desc, Kind: a.Kind, Want: a.Want}
	tab, ok := tables[a.Experiment]
	if !ok {
		r.Status = Skip
		r.Detail = "experiment not in evaluated set"
		return r
	}
	rows, err := selectRows(tab, a.Where)
	if err == nil && len(rows) == 0 {
		err = fmt.Errorf("no rows match %v", a.Where)
	}
	if err != nil {
		r.Status = Fail
		r.Detail = err.Error()
		return r
	}
	r.Status = Pass
	for _, row := range rows {
		st, measured, relErr, why, err := evalRow(a, tab, row)
		if err != nil {
			r.Status = Fail
			r.Detail = fmt.Sprintf("row %q: %v", rowKey(row), err)
			return r
		}
		r.Rows++
		if relErr > r.RelErr {
			r.RelErr = relErr
		}
		if st.rank() > r.Status.rank() {
			r.Status = st
			r.Measured = measured
			r.Detail = fmt.Sprintf("row %q: %s", rowKey(row), why)
		} else if r.Status == Pass && r.Rows == 1 {
			r.Measured = measured
		}
	}
	return r
}

// rowKey labels a row for Detail strings: its first cell.
func rowKey(row []string) string {
	if len(row) == 0 {
		return ""
	}
	return row[0]
}

func selectRows(tab experiments.Table, where map[string]string) ([][]string, error) {
	if len(where) == 0 {
		return tab.Rows, nil
	}
	idx := make(map[string]int, len(where))
	for col := range where {
		i, err := colIndex(tab, col)
		if err != nil {
			return nil, err
		}
		idx[col] = i
	}
	var out [][]string
	for _, row := range tab.Rows {
		match := true
		for col, want := range where {
			if i := idx[col]; i >= len(row) || row[i] != want {
				match = false
				break
			}
		}
		if match {
			out = append(out, row)
		}
	}
	return out, nil
}

func colIndex(tab experiments.Table, name string) (int, error) {
	for i, h := range tab.Header {
		if h == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("column %q not in header %v", name, tab.Header)
}

func cell(tab experiments.Table, row []string, col string) (float64, error) {
	i, err := colIndex(tab, col)
	if err != nil {
		return 0, err
	}
	if i >= len(row) {
		return 0, fmt.Errorf("row has no column %q", col)
	}
	v, err := strconv.ParseFloat(row[i], 64)
	if err != nil {
		return 0, fmt.Errorf("cell %q in column %q is not numeric", row[i], col)
	}
	return v, nil
}

// evalRow checks one anchor against one row, returning the verdict,
// the measured value, the relative deviation from Want, and (for
// non-pass verdicts) a reason.
func evalRow(a Anchor, tab experiments.Table, row []string) (Status, float64, float64, string, error) {
	switch a.Kind {
	case Value:
		v, err := cell(tab, row, a.Col)
		if err != nil {
			return Fail, 0, 0, "", err
		}
		relErr := math.Abs(v-a.Want) / math.Max(math.Abs(a.Want), math.SmallestNonzeroFloat64)
		switch {
		case relErr <= a.RelTol:
			return Pass, v, relErr, "", nil
		case relErr <= a.WarnTol:
			return Warn, v, relErr, fmt.Sprintf("%s = %g, want %g (rel err %.2g > %.2g)",
				a.Col, v, a.Want, relErr, a.RelTol), nil
		}
		return Fail, v, relErr, fmt.Sprintf("%s = %g, want %g (rel err %.2g)",
			a.Col, v, a.Want, relErr), nil

	case AtLeast, AtMost:
		v, err := cell(tab, row, a.Col)
		if err != nil {
			return Fail, 0, 0, "", err
		}
		return bound(a, a.Col, v)

	case RatioAtLeast, RatioAtMost:
		num, err := cell(tab, row, a.Col)
		if err != nil {
			return Fail, 0, 0, "", err
		}
		den, err := cell(tab, row, a.Baseline)
		if err != nil {
			return Fail, 0, 0, "", err
		}
		if den == 0 {
			return Fail, 0, 0, "", fmt.Errorf("baseline %q is zero", a.Baseline)
		}
		return bound(a, fmt.Sprintf("%s/%s", a.Col, a.Baseline), num/den)

	case Order:
		prev := math.Inf(-1)
		prevCol := ""
		worst := Pass
		var measured float64
		why := ""
		for _, col := range a.Cols {
			v, err := cell(tab, row, col)
			if err != nil {
				return Fail, 0, 0, "", err
			}
			var st Status
			switch {
			case v > prev:
				st = Pass
			case v >= prev*(1-a.Slack):
				st = Warn
			default:
				st = Fail
			}
			if st.rank() > worst.rank() {
				worst = st
				measured = v
				why = fmt.Sprintf("%s (%g) not above %s (%g)", col, v, prevCol, prev)
			}
			prev, prevCol = v, col
		}
		return worst, measured, 0, why, nil
	}
	return Fail, 0, 0, "", fmt.Errorf("unknown anchor kind %q", a.Kind)
}

// bound applies the AtLeast/AtMost (and ratio) verdict bands to v.
func bound(a Anchor, label string, v float64) (Status, float64, float64, string, error) {
	relErr := 0.0
	if a.Want != 0 {
		relErr = math.Abs(v-a.Want) / math.Abs(a.Want)
	}
	atLeast := a.Kind == AtLeast || a.Kind == RatioAtLeast
	ok, warnOK := v >= a.Want, v >= a.Want*(1-a.WarnTol)
	cmp := ">="
	if !atLeast {
		ok, warnOK = v <= a.Want, v <= a.Want*(1+a.WarnTol)
		cmp = "<="
	}
	switch {
	case ok:
		return Pass, v, relErr, "", nil
	case warnOK:
		return Warn, v, relErr, fmt.Sprintf("%s = %g, want %s %g (within warn band)",
			label, v, cmp, a.Want), nil
	}
	return Fail, v, relErr, fmt.Sprintf("%s = %g, want %s %g", label, v, cmp, a.Want), nil
}
