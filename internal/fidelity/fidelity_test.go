package fidelity

import (
	"bytes"
	"strings"
	"testing"

	"racetrack/hifi/internal/experiments"
)

func tab(header []string, rows ...[]string) experiments.Table {
	return experiments.Table{Title: "t", Header: header, Rows: rows}
}

func one(t *testing.T, a Anchor, tables map[string]experiments.Table) Result {
	t.Helper()
	sc := Evaluate([]Anchor{a}, tables)
	if len(sc.Anchors) != 1 {
		t.Fatalf("anchors = %d", len(sc.Anchors))
	}
	return sc.Anchors[0]
}

func TestValueBands(t *testing.T) {
	tables := map[string]experiments.Table{
		"e": tab([]string{"k", "v"}, []string{"x", "1.02"}),
	}
	a := Anchor{ID: "a", Experiment: "e", Kind: Value, Col: "v", Want: 1.0,
		RelTol: 0.05, WarnTol: 0.10}
	if r := one(t, a, tables); r.Status != Pass || r.Measured != 1.02 {
		t.Errorf("2%% off with 5%% tol = %+v", r)
	}
	a.RelTol = 0.01
	if r := one(t, a, tables); r.Status != Warn {
		t.Errorf("2%% off with 1%% tol, 10%% warn = %+v", r)
	}
	a.WarnTol = 0.015
	if r := one(t, a, tables); r.Status != Fail || !strings.Contains(r.Detail, "x") {
		t.Errorf("2%% off beyond warn band = %+v", r)
	}
}

func TestBoundsAndRatios(t *testing.T) {
	tables := map[string]experiments.Table{
		"e": tab([]string{"k", "a", "b"}, []string{"x", "2", "4"}),
	}
	cases := []struct {
		a    Anchor
		want Status
	}{
		{Anchor{Kind: AtLeast, Col: "a", Want: 1.5}, Pass},
		{Anchor{Kind: AtLeast, Col: "a", Want: 2.1, WarnTol: 0.10}, Warn},
		{Anchor{Kind: AtLeast, Col: "a", Want: 3}, Fail},
		{Anchor{Kind: AtMost, Col: "a", Want: 2}, Pass},
		{Anchor{Kind: AtMost, Col: "a", Want: 1.95, WarnTol: 0.05}, Warn},
		{Anchor{Kind: RatioAtLeast, Col: "b", Baseline: "a", Want: 2}, Pass},
		{Anchor{Kind: RatioAtMost, Col: "b", Baseline: "a", Want: 1.9}, Fail},
	}
	for i, c := range cases {
		c.a.ID, c.a.Experiment = "a", "e"
		if r := one(t, c.a, tables); r.Status != c.want {
			t.Errorf("case %d (%s %s want %g): %s, want %s (%s)",
				i, c.a.Kind, c.a.Col, c.a.Want, r.Status, c.want, r.Detail)
		}
	}
}

func TestOrderAndSlack(t *testing.T) {
	tables := map[string]experiments.Table{
		"e": tab([]string{"k", "a", "b", "c"},
			[]string{"x", "1", "2", "3"},
			[]string{"y", "1", "0.99", "3"}),
	}
	a := Anchor{ID: "a", Experiment: "e", Kind: Order, Cols: []string{"a", "b", "c"}}
	if r := one(t, a, tables); r.Status != Fail || !strings.Contains(r.Detail, `"y"`) {
		t.Errorf("descending pair should fail naming row y: %+v", r)
	}
	a.Slack = 0.02
	if r := one(t, a, tables); r.Status != Warn {
		t.Errorf("1%% dip within 2%% slack should warn: %+v", r)
	}
	if r := one(t, a, tables); r.Rows != 2 {
		t.Errorf("rows checked = %d, want 2", r.Rows)
	}
}

func TestWhereSelectsRows(t *testing.T) {
	tables := map[string]experiments.Table{
		"e": tab([]string{"k", "class", "v"},
			[]string{"x", "hot", "5"},
			[]string{"y", "cold", "50"}),
	}
	a := Anchor{ID: "a", Experiment: "e", Kind: AtMost, Col: "v", Want: 10,
		Where: map[string]string{"class": "hot"}}
	if r := one(t, a, tables); r.Status != Pass || r.Rows != 1 {
		t.Errorf("filtered check = %+v", r)
	}
	a.Where = map[string]string{"class": "lukewarm"}
	if r := one(t, a, tables); r.Status != Fail {
		t.Errorf("no matching rows must fail loudly, got %+v", r)
	}
}

func TestMalformedTableFails(t *testing.T) {
	tables := map[string]experiments.Table{
		"e": tab([]string{"k", "v"}, []string{"x", "N/A"}),
	}
	a := Anchor{ID: "a", Experiment: "e", Kind: Value, Col: "v", Want: 1}
	if r := one(t, a, tables); r.Status != Fail || !strings.Contains(r.Detail, "not numeric") {
		t.Errorf("non-numeric cell = %+v", r)
	}
	a.Col = "nope"
	if r := one(t, a, tables); r.Status != Fail || !strings.Contains(r.Detail, "nope") {
		t.Errorf("unknown column = %+v", r)
	}
}

func TestSkipAndGate(t *testing.T) {
	a := Anchor{ID: "a", Experiment: "absent", Kind: Value, Col: "v", Want: 1}
	sc := Evaluate([]Anchor{a}, nil)
	if sc.Skip != 1 || sc.Anchors[0].Status != Skip {
		t.Errorf("missing table should skip: %+v", sc)
	}
	if err := sc.Err(); err != nil {
		t.Errorf("skips must not trip the gate: %v", err)
	}
	tables := map[string]experiments.Table{
		"e": tab([]string{"k", "v"}, []string{"x", "9"}),
	}
	sc = Evaluate([]Anchor{{ID: "bad", Experiment: "e", Kind: AtMost, Col: "v", Want: 1}}, tables)
	err := sc.Err()
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("gate error should name the anchor: %v", err)
	}
}

func TestScorecardJSONDeterministic(t *testing.T) {
	tables := map[string]experiments.Table{
		"e": tab([]string{"k", "class", "v"},
			[]string{"x", "hot", "5"}, []string{"y", "cold", "50"}),
	}
	anchors := []Anchor{
		{ID: "a", Experiment: "e", Kind: AtMost, Col: "v", Want: 100,
			Where: map[string]string{"class": "hot", "k": "x"}},
		{ID: "b", Experiment: "e", Kind: AtLeast, Col: "v", Want: 1},
	}
	first := Evaluate(anchors, tables).JSON()
	for i := 0; i < 10; i++ {
		if got := Evaluate(anchors, tables).JSON(); !bytes.Equal(got, first) {
			t.Fatalf("run %d produced different bytes", i)
		}
	}
	if !strings.Contains(string(first), `"schema": "hifi_fidelity_v1"`) {
		t.Errorf("schema missing:\n%s", first)
	}
}

// The shipped anchor set must be internally consistent: unique IDs,
// known experiments, and column references that resolve once tables
// exist (checked end-to-end in the experiments package).
func TestDefaultAnchorsWellFormed(t *testing.T) {
	known := make(map[string]bool)
	for _, k := range experiments.Order() {
		known[k] = true
	}
	seen := make(map[string]bool)
	for _, a := range Anchors() {
		if a.ID == "" || seen[a.ID] {
			t.Errorf("anchor ID %q empty or duplicated", a.ID)
		}
		seen[a.ID] = true
		if !known[a.Experiment] {
			t.Errorf("%s: unknown experiment %q", a.ID, a.Experiment)
		}
		if a.Source == "" {
			t.Errorf("%s: missing paper provenance", a.ID)
		}
		switch a.Kind {
		case Value:
			if a.RelTol <= 0 || a.WarnTol < a.RelTol {
				t.Errorf("%s: value anchor needs 0 < rel_tol <= warn_tol", a.ID)
			}
		case Order:
			if len(a.Cols) < 2 {
				t.Errorf("%s: order anchor needs >= 2 columns", a.ID)
			}
		case RatioAtLeast, RatioAtMost:
			if a.Baseline == "" {
				t.Errorf("%s: ratio anchor needs a baseline column", a.ID)
			}
		}
	}
	if len(seen) < 30 {
		t.Errorf("anchor set has %d entries, expected the full published set (>= 30)", len(seen))
	}
}
