package fidelity

import (
	"fmt"

	"racetrack/hifi/internal/mttf"
)

// Published Table 2 rates (paper Table 2, post-STS), indexed by shift
// distance 1..7. These are inputs to the error model, so the anchors
// double as a regression gate on the model's tabulated core.
var (
	table2K1 = []float64{4.55e-5, 9.95e-5, 2.07e-4, 3.76e-4, 5.94e-4, 8.43e-4, 1.10e-3}
	table2K2 = []float64{1.37e-21, 1.19e-20, 5.59e-20, 1.80e-19, 4.47e-19, 9.96e-18, 7.57e-15}
)

// Anchors returns the default anchor set: every published number or
// relationship the reproduction is held to, in a fixed order (the
// scorecard preserves it). Tolerances are per-anchor: tight for
// analytic tables that must match the paper digit for digit, loose for
// simulation-backed figures where the scaled system preserves
// directions and ratios but not absolute values.
func Anchors() []Anchor {
	var as []Anchor

	// Table 2: per-distance out-of-step error rates, k=1 and k=2.
	// The rendered cells round-trip the published values exactly; the
	// 0.5% band absorbs only formatting (%.3g / %.4g) loss.
	for d := 1; d <= 7; d++ {
		as = append(as, Anchor{
			ID:         fmt.Sprintf("table2/k1-d%d", d),
			Experiment: "table2",
			Source:     fmt.Sprintf("Table 2, distance %d, k=1", d),
			Desc:       "post-STS +-1 out-of-step rate matches the published table",
			Kind:       Value,
			Where:      map[string]string{"distance": fmt.Sprint(d)},
			Col:        "k=1",
			Want:       table2K1[d-1],
			RelTol:     0.005, WarnTol: 0.05,
		}, Anchor{
			ID:         fmt.Sprintf("table2/k2-d%d", d),
			Experiment: "table2",
			Source:     fmt.Sprintf("Table 2, distance %d, k=2", d),
			Desc:       "post-STS +-2 out-of-step rate matches the published table",
			Kind:       Value,
			Where:      map[string]string{"distance": fmt.Sprint(d)},
			Col:        "k=2",
			Want:       table2K2[d-1],
			RelTol:     0.005, WarnTol: 0.05,
		})
	}

	// Fig 1: a per-stripe error rate of 1e-19 must sit near the 10-year
	// MTTF the paper reads off the curve (we land at 7.5 years; the
	// 3..30-year band tolerates intensity-model differences).
	as = append(as, Anchor{
		ID: "fig1/mttf-at-1e-19-low", Experiment: "fig1",
		Source: "Fig 1: ~10-year MTTF at 1e-19 error rate",
		Desc:   "LLC MTTF at 1e-19 is at least 3 years",
		Kind:   AtLeast,
		Where:  map[string]string{"error_rate": "1e-19"},
		Col:    "mttf_s",
		Want:   3 * mttf.SecondsPerYear,
	}, Anchor{
		ID: "fig1/mttf-at-1e-19-high", Experiment: "fig1",
		Source: "Fig 1: ~10-year MTTF at 1e-19 error rate",
		Desc:   "LLC MTTF at 1e-19 is at most 30 years",
		Kind:   AtMost,
		Where:  map[string]string{"error_rate": "1e-19"},
		Col:    "mttf_s",
		Want:   30 * mttf.SecondsPerYear,
	})

	// Table 3a: the Dsafe=1 uncorrectable rate is the k=2 rate at
	// distance 1 (the paper's 4.53G acc/s safe-intensity row).
	as = append(as, Anchor{
		ID: "table3/dsafe1-rate", Experiment: "table3",
		Source: "Table 3(a), Dsafe=1",
		Desc:   "uncorrectable rate at safe distance 1 equals k=2(1)",
		Kind:   Value,
		Where:  map[string]string{"part": "a", "key": "Dsafe=1"},
		Col:    "value",
		Want:   1.37e-21,
		RelTol: 0.005, WarnTol: 0.05,
	})

	// Fig 10: SDC MTTF ordering — unprotected << SED << SECDED — must
	// hold for every workload, and the unprotected LLC must fail in
	// well under a second (paper: 1.33us).
	as = append(as, Anchor{
		ID: "fig10/sdc-ordering", Experiment: "fig10",
		Source: "Fig 10: SDC MTTF per protection level",
		Desc:   "baseline < SED < SECDED SDC MTTF for every workload",
		Kind:   Order,
		Cols:   []string{"baseline", "SED p-ECC", "SECDED p-ECC"},
	}, Anchor{
		ID: "fig10/baseline-tiny", Experiment: "fig10",
		Source: "Fig 10 / §3.2: unprotected SDC MTTF ~1.33us",
		Desc:   "unprotected SDC MTTF stays far below one second",
		Kind:   AtMost,
		Col:    "baseline",
		Want:   1.0,
	})

	// Fig 11: DUE MTTF relationships between the protection schemes.
	as = append(as, Anchor{
		ID: "fig11/sed-below-secded", Experiment: "fig11",
		Source: "Fig 11: SED detects every +-1 error",
		Desc:   "SED DUE MTTF below SECDED for every workload",
		Kind:   Order,
		Cols:   []string{"SED", "SECDED"},
	}, Anchor{
		ID: "fig11/pecco-beats-secded", Experiment: "fig11",
		Source: "Fig 11: p-ECC-O achieves the highest DUE MTTF",
		Desc:   "p-ECC-O DUE MTTF above plain SECDED",
		Kind:   RatioAtLeast,
		Col:    "SECDED p-ECC-O", Baseline: "SECDED",
		Want: 1.0,
	}, Anchor{
		ID: "fig11/worst-at-least-secded", Experiment: "fig11",
		Source: "Fig 11: p-ECC-S worst never regresses below SECDED",
		Desc:   "worst-case plan DUE MTTF >= 0.99x SECDED",
		Kind:   RatioAtLeast,
		Col:    "p-ECC-S worst", Baseline: "SECDED",
		Want: 0.99,
	}, Anchor{
		ID: "fig11/adaptive-at-least-secded", Experiment: "fig11",
		Source: "Fig 11: adaptive plan sits at or above SECDED",
		Desc:   "adaptive DUE MTTF >= SECDED",
		Kind:   RatioAtLeast,
		Col:    "p-ECC-S adaptive", Baseline: "SECDED",
		Want: 1.0,
	})

	// Fig 14: shift-latency overheads relative to the unprotected
	// racetrack baseline.
	as = append(as, Anchor{
		ID: "fig14/pecco-overhead", Experiment: "fig14",
		Source: "Fig 14: p-ECC-O roughly doubles shift latency",
		Desc:   "p-ECC-O relative shift latency above 1.15 everywhere",
		Kind:   AtLeast,
		Col:    "p-ECC-O",
		Want:   1.15,
	}, Anchor{
		ID: "fig14/adaptive-below-pecco", Experiment: "fig14",
		Source: "Fig 14: safe-distance variants cost less than p-ECC-O",
		Desc:   "adaptive shift latency never exceeds p-ECC-O",
		Kind:   RatioAtMost,
		Col:    "p-ECC-S adaptive", Baseline: "p-ECC-O",
		Want: 1.0, WarnTol: 0.01,
	}, Anchor{
		ID: "fig14/worst-below-pecco", Experiment: "fig14",
		Source: "Fig 14: safe-distance variants cost less than p-ECC-O",
		Desc:   "worst-case shift latency never exceeds p-ECC-O",
		Kind:   RatioAtMost,
		Col:    "p-ECC-S worst", Baseline: "p-ECC-O",
		Want: 1.0, WarnTol: 0.01,
	}, Anchor{
		ID: "fig14/adaptive-not-below-baseline", Experiment: "fig14",
		Source: "Fig 14: protection cannot be cheaper than no protection",
		Desc:   "adaptive relative latency stays near or above 1",
		Kind:   AtLeast,
		Col:    "p-ECC-S adaptive",
		Want:   0.95,
	}, Anchor{
		ID: "fig14/worst-not-below-baseline", Experiment: "fig14",
		Source: "Fig 14: protection cannot be cheaper than no protection",
		Desc:   "worst-case relative latency stays near or above 1",
		Kind:   AtLeast,
		Col:    "p-ECC-S worst",
		Want:   0.95,
	})

	// Fig 16: execution time normalized to SRAM. Racetrack's capacity
	// advantage must show on capacity-sensitive workloads, and the
	// protection overhead must stay small.
	as = append(as, Anchor{
		ID: "fig16/sram-normalized", Experiment: "fig16",
		Source: "Fig 16: values normalized to SRAM",
		Desc:   "the SRAM column is exactly 1 in every row",
		Kind:   Value,
		Col:    "SRAM",
		Want:   1.0, RelTol: 1e-12, WarnTol: 1e-12,
	}, Anchor{
		ID: "fig16/rm-ideal-beats-sram-capsensitive", Experiment: "fig16",
		Source: "Fig 16: racetrack capacity wins on sensitive workloads",
		Desc:   "RM-Ideal beats SRAM on every capacity-sensitive workload",
		Kind:   AtMost,
		Where:  map[string]string{"class": "cap-sensitive"},
		Col:    "RM-Ideal",
		Want:   1.0,
	}, Anchor{
		ID: "fig16/ideal-not-slower-than-real", Experiment: "fig16",
		Source: "Fig 16: shift latency costs something",
		Desc:   "RM-Ideal execution time never exceeds real RM",
		Kind:   RatioAtMost,
		Col:    "RM-Ideal", Baseline: "RM w/o p-ECC",
		Want: 1.0, WarnTol: 0.001,
	}, Anchor{
		ID: "fig16/adaptive-overhead-small", Experiment: "fig16",
		Source: "Fig 16 / §6.2: p-ECC-S overhead ~0.2%",
		Desc:   "adaptive execution time within 10% of unprotected RM",
		Kind:   RatioAtMost,
		Col:    "RM p-ECC-S adaptive", Baseline: "RM w/o p-ECC",
		Want: 1.10,
	})

	// Fig 17: LLC dynamic energy normalized to SRAM.
	as = append(as, Anchor{
		ID: "fig17/pecco-above-base", Experiment: "fig17",
		Source: "Fig 17: p-ECC-O pays extra shifts in energy",
		Desc:   "p-ECC-O dynamic energy above unprotected RM",
		Kind:   RatioAtLeast,
		Col:    "RM p-ECC-O", Baseline: "RM w/o p-ECC",
		Want: 1.0,
	}, Anchor{
		ID: "fig17/adaptive-between", Experiment: "fig17",
		Source: "Fig 17: adaptive sits between unprotected and p-ECC-O",
		Desc:   "adaptive dynamic energy >= 0.99x unprotected RM",
		Kind:   RatioAtLeast,
		Col:    "RM p-ECC-S adaptive", Baseline: "RM w/o p-ECC",
		Want: 0.99,
	}, Anchor{
		ID: "fig17/adaptive-below-pecco", Experiment: "fig17",
		Source: "Fig 17: adaptive sits between unprotected and p-ECC-O",
		Desc:   "adaptive dynamic energy <= 1.01x p-ECC-O",
		Kind:   RatioAtMost,
		Col:    "RM p-ECC-S adaptive", Baseline: "RM p-ECC-O",
		Want: 1.01,
	})

	// Fig 18: total energy normalized to SRAM, on the capacity-
	// sensitive split where the dense LLCs save DRAM trips.
	as = append(as, Anchor{
		ID: "fig18/stt-not-worse", Experiment: "fig18",
		Source: "Fig 18: STT-RAM total energy below SRAM (+noise)",
		Desc:   "STT-RAM total energy under 1.2x SRAM on sensitive workloads",
		Kind:   AtMost,
		Where:  map[string]string{"class": "cap-sensitive"},
		Col:    "STT-RAM",
		Want:   1.2,
	}, Anchor{
		ID: "fig18/rm-adaptive-not-worse", Experiment: "fig18",
		Source: "Fig 18: protected racetrack total energy below SRAM (+noise)",
		Desc:   "RM adaptive total energy under 1.2x SRAM on sensitive workloads",
		Kind:   AtMost,
		Where:  map[string]string{"class": "cap-sensitive"},
		Col:    "RM p-ECC-S adaptive",
		Want:   1.2,
	})

	// Table 5: protection hardware overheads. Detection cost and the
	// controller areas are modeled directly from the paper; the cell
	// overheads re-derive the paper's 17.6% / 15.7% within a few
	// percent from the code-geometry arithmetic.
	as = append(as, Anchor{
		ID: "table5/pecc-detect-ns", Experiment: "table5",
		Source: "Table 5: p-ECC detection latency 0.34ns",
		Kind:   Value,
		Where:  map[string]string{"approach": "p-ecc"},
		Col:    "detect_ns",
		Want:   0.34, RelTol: 0.005, WarnTol: 0.05,
	}, Anchor{
		ID: "table5/pecc-detect-pj", Experiment: "table5",
		Source: "Table 5: p-ECC detection energy 3.73pJ",
		Kind:   Value,
		Where:  map[string]string{"approach": "p-ecc"},
		Col:    "detect_pJ",
		Want:   3.73, RelTol: 0.005, WarnTol: 0.05,
	}, Anchor{
		ID: "table5/pecc-cell-overhead", Experiment: "table5",
		Source: "Table 5: p-ECC cell overhead 17.6%",
		Desc:   "re-derived SECDED cell overhead near the published 17.6%",
		Kind:   Value,
		Where:  map[string]string{"approach": "p-ecc"},
		Col:    "cell_%",
		Want:   17.6, RelTol: 0.05, WarnTol: 0.10,
	}, Anchor{
		ID: "table5/pecco-cell-overhead", Experiment: "table5",
		Source: "Table 5: p-ECC-O cell overhead 15.7%",
		Desc:   "re-derived overlapped cell overhead near the published 15.7%",
		Kind:   Value,
		Where:  map[string]string{"approach": "p-ecc-o"},
		Col:    "cell_%",
		Want:   15.7, RelTol: 0.05, WarnTol: 0.10,
	})
	for _, c := range []struct {
		approach string
		um2      float64
	}{
		{"sts", 1.94},
		{"p-ecc", 54.0},
		{"p-ecc-s worst", 54.3},
		{"p-ecc-s adaptive", 109.4},
	} {
		as = append(as, Anchor{
			ID:         "table5/area-" + c.approach,
			Experiment: "table5",
			Source:     fmt.Sprintf("Table 5: %s controller area %.4g um^2", c.approach, c.um2),
			Kind:       Value,
			Where:      map[string]string{"approach": c.approach},
			Col:        "controller_um2",
			Want:       c.um2, RelTol: 0.01, WarnTol: 0.05,
		})
	}
	return as
}
