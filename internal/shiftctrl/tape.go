package shiftctrl

import (
	"fmt"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/faults"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
	"racetrack/hifi/internal/telemetry"
)

// LayoutFor builds a stripe layout sized for a SECDED-family p-ECC: the
// left guard absorbs the full access excursion (Lseg-1 steps) plus the
// worst correctable-or-detectable error (m+1); the right guard absorbs
// negative excursions; the p-ECC region holds the code plus m+1 slack slots
// so negative excursions never destroy code bits.
func LayoutFor(c pecc.Code, dataLen int) stripe.Layout {
	m := c.M()
	return stripe.Layout{
		DataLen:    dataLen,
		SegLen:     c.SegLen(),
		GuardLeft:  c.SegLen() - 1 + m + 1,
		GuardRight: m + 1,
		PECCLen:    c.Length() + m + 1,
		PECCPorts:  c.Window(),
	}
}

// Tape is a functional, fault-injected model of one protected racetrack
// stripe: it executes real shift operations on the underlying stripe, with
// position errors drawn from the device error model, and runs the p-ECC
// detect/correct loop after every operation. It is the end-to-end
// realization of the paper's shift architecture for a single stripe, used
// by the examples and the integration tests; the cache-scale evaluation
// uses the analytic rate tracking instead (rates below 1e-15 are not
// observable functionally).
// CheckMode selects how much of the p-ECC machinery a Tape engages,
// mirroring the protection schemes.
type CheckMode int

const (
	// CheckCorrect runs full detect-and-correct (SECDED family). Default.
	CheckCorrect CheckMode = iota
	// CheckDetect detects errors but cannot correct (SED): every hit is a
	// DUE.
	CheckDetect
	// CheckNone performs no p-ECC check at all (baseline / STS-only):
	// position errors accumulate silently.
	CheckNone
)

type Tape struct {
	st     *stripe.Stripe
	lay    stripe.Layout
	code   pecc.Code
	em     errmodel.Model
	timing Timing
	rng    *sim.RNG

	// Mode selects the protection level; zero value is full correction.
	Mode CheckMode

	// Faults optionally modulates every sampled shift outcome with the
	// device-plane fault injectors (internal/faults). Nil — the default
	// and the nominal device — costs one nil check per operation.
	Faults *faults.Device

	believed int // offset the controller believes (0..SegLen-1 nominally)
	trueOff  int // actual tape offset (oracle; hardware cannot see this)

	// Statistics.
	Ops         uint64 // shift operations issued (including corrections)
	Cycles      uint64 // total latency spent shifting and checking
	Corrections uint64 // corrective shifts applied after p-ECC hits
	DUEs        uint64 // detected unrecoverable errors
	SilentBad   uint64 // oracle count of undetected misalignment episodes

	// Telemetry handles; nil (the default) costs one branch per event.
	mOps, mCycles, mCorrections, mDUEs *telemetry.Counter
	tracer                             *telemetry.Tracer
}

// Instrument attaches shift/correction counters, the fault-injection
// counters of the underlying error model, p-ECC decode counters, and an
// optional event tracer. Pass nil for either argument to leave that
// sink detached.
func (t *Tape) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	t.mOps = reg.Counter(telemetry.MetricShiftOps, "shift operations issued")
	t.mCycles = reg.Counter(telemetry.MetricShiftCycles, "cycles spent shifting and checking")
	t.mCorrections = reg.Counter(telemetry.MetricTapeCorrections, "corrective shifts applied after p-ECC hits")
	t.mDUEs = reg.Counter(telemetry.MetricPECCDUEs, "detected unrecoverable position errors")
	if reg != nil {
		t.em.Tel = errmodel.NewSampleTelemetry(reg)
		t.code = t.code.WithTelemetry(pecc.NewDecodeTelemetry(reg))
	}
	t.tracer = tr
}

// maxCorrectionRounds bounds the detect-correct loop; two consecutive
// correctable hits are already vanishingly rare.
const maxCorrectionRounds = 4

// NewTape builds a protected tape with an initialized p-ECC region and
// zeroed data domains.
func NewTape(code pecc.Code, dataLen int, em errmodel.Model, timing Timing, rng *sim.RNG) *Tape {
	lay := LayoutFor(code, dataLen)
	if err := lay.Validate(); err != nil {
		panic(err)
	}
	st := stripe.New(lay.TotalSlots())
	snap := st.Snapshot()
	for i := 0; i < dataLen; i++ {
		snap[lay.DataSlot(i)] = stripe.Zero
	}
	for i := 0; i < code.Length(); i++ {
		snap[lay.PECCSlot(i)] = code.Bit(i)
	}
	st.LoadSlots(snap)
	return &Tape{st: st, lay: lay, code: code, em: em, timing: timing, rng: rng}
}

// Layout returns the tape's layout.
func (t *Tape) Layout() stripe.Layout { return t.lay }

// BelievedOffset returns the controller's current position belief.
func (t *Tape) BelievedOffset() int { return t.believed }

// TrueOffset returns the oracle tape position (tests only).
func (t *Tape) TrueOffset() int { return t.trueOff }

// Aligned reports whether belief matches reality (oracle).
func (t *Tape) Aligned() bool { return t.believed == t.trueOff && !t.st.Misaligned() }

// shiftOnce performs one shift operation of dist steps toward the target
// direction (dir=+1 moves the tape left / increases offset), injecting a
// sampled position error, then runs the p-ECC check-and-correct loop.
func (t *Tape) shiftOnce(dist, dir int) {
	t.applyRaw(dist, dir)
	t.believed += dir * dist
	t.checkAndCorrect()
}

// applyRaw moves the tape by dist steps in direction dir with a sampled
// position error, updating physical state and the true offset, without any
// checking.
func (t *Tape) applyRaw(dist, dir int) {
	o := t.Faults.Sample(t.em, dist, t.rng)
	actual := dist + o.StepOffset
	if actual < 0 {
		actual = 0
	}
	t.Ops++
	t.Cycles += uint64(t.timing.OpCycles(dist))
	t.mOps.Inc()
	t.mCycles.Add(float64(t.timing.OpCycles(dist)))
	t.tracer.Emit(telemetry.EventShift, t.Cycles, -1, int64(dir*dist), 1)
	if !o.Correct() {
		stopped := int64(0)
		if o.StopInMiddle {
			stopped = 1
		}
		t.tracer.Emit(telemetry.EventErrorInject, t.Cycles, int64(dist), int64(o.StepOffset), stopped)
	}
	if dir > 0 {
		t.st.ShiftLeft(actual, nil)
		t.trueOff += actual
	} else {
		t.st.ShiftRight(actual, nil)
		t.trueOff -= actual
	}
	t.st.SetMisaligned(o.StopInMiddle)
}

// checkAndCorrect reads the p-ECC window and applies corrective shifts
// until the code matches or the error is declared unrecoverable. The
// tape's Mode limits how far the machinery goes.
func (t *Tape) checkAndCorrect() {
	if t.Mode == CheckNone {
		// Unprotected: stop-in-middle clears only by luck on a later
		// shift; out-of-step drift persists silently.
		if t.believed != t.trueOff || t.st.Misaligned() {
			t.SilentBad++
		}
		return
	}
	for round := 0; round < maxCorrectionRounds; round++ {
		res := t.decode()
		switch {
		case !res.Detected:
			if t.believed != t.trueOff {
				// Oracle: an aliased multi-step error slipped through.
				t.SilentBad++
			}
			return
		case res.Correctable && t.Mode == CheckDetect:
			// SED knows something is wrong but not which direction.
			t.DUEs++
			t.mDUEs.Inc()
			t.tracer.Emit(telemetry.EventDUE, t.Cycles, int64(t.believed), 0, 0)
			t.recoverDUE()
			return
		case res.Correctable:
			t.Corrections++
			t.mCorrections.Inc()
			t.tracer.Emit(telemetry.EventCorrection, t.Cycles, int64(res.Offset), 0, 0)
			// Shift back by the detected offset. The correction is itself
			// a shift operation with its own error injection.
			d := res.Offset
			if d > 0 {
				t.applyRaw(d, -1)
			} else {
				t.applyRaw(-d, +1)
			}
		default:
			// Indeterminate or +-(m+1): detected but unrecoverable.
			t.DUEs++
			t.mDUEs.Inc()
			t.tracer.Emit(telemetry.EventDUE, t.Cycles, int64(t.believed), 0, 0)
			t.recoverDUE()
			return
		}
	}
	t.DUEs++
	t.mDUEs.Inc()
	t.tracer.Emit(telemetry.EventDUE, t.Cycles, int64(t.believed), 0, 0)
	t.recoverDUE()
}

// recoverDUE models the architectural response to an unrecoverable
// position error: the line is invalidated and the stripe re-initialized
// (§4.3). The tape is physically realigned to the believed offset (a
// maintenance operation outside normal shifting) and the p-ECC pattern is
// restored; data content after a DUE is the caller's responsibility, as in
// a real system where the cache refetches the line.
func (t *Tape) recoverDUE() {
	t.st.SetMisaligned(false)
	// Physically realign: undo the net drift without error injection.
	if delta := t.trueOff - t.believed; delta > 0 {
		t.st.ShiftRight(delta, nil)
	} else if delta < 0 {
		t.st.ShiftLeft(-delta, nil)
	}
	t.trueOff = t.believed
	// Re-program the code pattern at the current offset.
	snap := t.st.Snapshot()
	for i := 0; i < t.code.Length(); i++ {
		slot := t.lay.PECCSlot(i) - t.believed
		if slot >= 0 && slot < len(snap) {
			snap[slot] = t.code.Bit(i)
		}
	}
	t.st.LoadSlots(snap)
}

// decode reads the code window under the fixed p-ECC ports and compares it
// with the window expected at the believed offset. Ports are fixed in
// space; the tape moved left by trueOff, so the port over code home
// position base+j now sees code bit base+j+trueOff.
func (t *Tape) decode() pecc.Result {
	w := make([]stripe.Bit, t.code.Window())
	base := t.code.M() + 1 // port window base within the code region
	for j := range w {
		portSlot := t.lay.PECCSlot(base + j)
		if t.st.Misaligned() {
			w[j] = stripe.Unknown
			continue
		}
		w[j] = t.st.Read(portSlot)
	}
	return t.code.Decode(base+t.believed, w)
}

// AlignTo shifts the tape so that in-segment offset target is under the
// data ports, using the given shift sequence planner output. seqFor decides
// how a distance is split into operations (nil means one operation per
// request, the unconstrained SECDED behaviour).
func (t *Tape) AlignTo(target int, seqFor func(dist int) []int) error {
	if target < 0 || target >= t.lay.SegLen {
		return fmt.Errorf("shiftctrl: target offset %d outside segment [0,%d)", target, t.lay.SegLen)
	}
	dist := target - t.believed
	dir := +1
	if dist < 0 {
		dist, dir = -dist, -1
	}
	var seq []int
	if seqFor != nil {
		seq = seqFor(dist)
	} else if dist > 0 {
		seq = []int{dist}
	}
	for _, n := range seq {
		t.shiftOnce(n, dir)
	}
	return nil
}

// ReadData returns the value of data domain i, which must currently be
// aligned under its segment port (i.e. OffsetOf(i) == believed offset).
func (t *Tape) ReadData(i int) (stripe.Bit, error) {
	if t.lay.OffsetOf(i) != t.believed {
		return stripe.Unknown, fmt.Errorf("shiftctrl: domain %d not aligned (offset %d, believed %d)",
			i, t.lay.OffsetOf(i), t.believed)
	}
	slot := t.lay.PortSlot(t.lay.SegmentOf(i))
	return t.st.Read(slot), nil
}

// WriteData stores v into data domain i, which must be aligned under its
// segment port.
func (t *Tape) WriteData(i int, v stripe.Bit) error {
	if t.lay.OffsetOf(i) != t.believed {
		return fmt.Errorf("shiftctrl: domain %d not aligned for write", i)
	}
	if t.st.Misaligned() {
		return fmt.Errorf("shiftctrl: stripe misaligned")
	}
	t.st.Write(t.lay.PortSlot(t.lay.SegmentOf(i)), v)
	return nil
}

// InjectDrift physically drifts the tape by e steps without the
// controller's knowledge: a deterministic out-of-step fault for tests and
// injection campaigns. Positive e drifts in the positive (leftward)
// direction.
func (t *Tape) InjectDrift(e int) {
	if e > 0 {
		t.st.ShiftLeft(e, nil)
	} else if e < 0 {
		t.st.ShiftRight(-e, nil)
	}
	t.trueOff += e
}

// CheckNow runs the p-ECC check-and-correct loop immediately, as the next
// shift operation would.
func (t *Tape) CheckNow() { t.checkAndCorrect() }

// PeekData returns the oracle value of data domain i regardless of
// alignment (tests only).
func (t *Tape) PeekData(i int) stripe.Bit {
	slot := t.lay.DataSlot(i) - t.trueOff
	if slot < 0 || slot >= t.st.Len() {
		return stripe.Unknown
	}
	return t.st.Peek(slot)
}
