package shiftctrl

import (
	"math"
	"reflect"
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/mttf"
)

func TestOpCyclesMatchesPaper(t *testing.T) {
	// Paper Table 3b latencies imply ceil(0.8n)+3 per operation.
	tm := DefaultTiming()
	want := map[int]int{1: 4, 2: 5, 3: 6, 4: 7, 7: 9}
	for n, w := range want {
		if got := tm.OpCycles(n); got != w {
			t.Errorf("OpCycles(%d) = %d, want %d", n, got, w)
		}
	}
	if tm.OpCycles(0) != 0 {
		t.Error("OpCycles(0) != 0")
	}
}

func TestSeqCyclesTable3(t *testing.T) {
	// Every latency in paper Table 3(b).
	tm := DefaultTiming()
	cases := []struct {
		seq  []int
		want int
	}{
		{[]int{7}, 9},
		{[]int{4, 3}, 13},
		{[]int{3, 2, 2}, 16},
		{[]int{2, 2, 2, 1}, 19},
		{[]int{2, 2, 1, 1, 1}, 22},
		{[]int{2, 1, 1, 1, 1, 1}, 25},
		{[]int{1, 1, 1, 1, 1, 1, 1}, 28},
	}
	for _, c := range cases {
		if got := tm.SeqCycles(c.seq); got != c.want {
			t.Errorf("SeqCycles(%v) = %d, want %d", c.seq, got, c.want)
		}
	}
}

func TestSafeDistance(t *testing.T) {
	var em errmodel.Model
	// With a bound just above the 3-step k2 rate, safe distance is 3.
	d := SafeDistance(em, 6e-20, 7)
	if d != 3 {
		t.Errorf("SafeDistance = %d, want 3", d)
	}
	// Huge budget: full segment distance.
	if d := SafeDistance(em, 1, 7); d != 7 {
		t.Errorf("SafeDistance(loose) = %d, want 7", d)
	}
	// Tiny budget: still 1 (finest possible operation).
	if d := SafeDistance(em, 1e-30, 7); d != 1 {
		t.Errorf("SafeDistance(tight) = %d, want 1", d)
	}
}

func TestSafeIntensityTable3a(t *testing.T) {
	// Paper Table 3(a): safe distance vs shift intensity, for the 10-year
	// DUE target and 512-stripe groups.
	var em errmodel.Model
	target := 10 * mttf.SecondsPerYear
	want := map[int]float64{
		1: 4.53e9,
		2: 518e6,
		3: 111e6,
		4: 34.3e6,
		5: 13.9e6,
		6: 621e3,
		7: 0.82e3,
	}
	for n, w := range want {
		got := SafeIntensity(em, n, target, 512)
		if math.Abs(got-w)/w > 0.03 {
			t.Errorf("SafeIntensity(%d) = %.3g, want %.3g (Table 3a)", n, got, w)
		}
	}
}

func TestPlannerUnconstrained(t *testing.T) {
	p := NewPlanner(errmodel.Model{}, DefaultTiming(), 7, 7)
	seq, err := p.Plan(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, []int{7}) {
		t.Errorf("unconstrained plan = %v, want [7]", seq)
	}
}

func TestPlannerZeroDistance(t *testing.T) {
	p := NewPlanner(errmodel.Model{}, DefaultTiming(), 7, 7)
	seq, err := p.Plan(0, 1)
	if err != nil || seq != nil {
		t.Errorf("Plan(0) = %v, %v", seq, err)
	}
}

func TestPlannerOutOfRange(t *testing.T) {
	p := NewPlanner(errmodel.Model{}, DefaultTiming(), 7, 7)
	if _, err := p.Plan(8, 1); err == nil {
		t.Error("Plan beyond range accepted")
	}
}

func TestPlannerTable3bSequences(t *testing.T) {
	// Reproduce paper Table 3(b): the safe sequences for a 7-step shift at
	// each interval regime. The rate budget for interval I cycles is
	// 1/(T * (clock/I) * 512).
	em := errmodel.Model{}
	p := NewPlanner(em, DefaultTiming(), 7, 7)
	target := 10 * mttf.SecondsPerYear
	const clock = 2e9
	budget := func(interval float64) float64 {
		return interval / (clock * target * 512)
	}
	cases := []struct {
		interval float64
		want     []int
	}{
		{3e6, []int{7}},
		{100, []int{4, 3}},
		{30, []int{3, 2, 2}},
		{13, []int{2, 2, 2, 1}},
		{10, []int{2, 2, 1, 1, 1}},
		{7, []int{2, 1, 1, 1, 1, 1}},
		{4, []int{1, 1, 1, 1, 1, 1, 1}},
	}
	for _, c := range cases {
		seq, err := p.Plan(7, budget(c.interval))
		if err != nil {
			t.Errorf("interval %v: %v", c.interval, err)
			continue
		}
		if !sameMultiset(seq, c.want) {
			t.Errorf("interval %v: plan %v, want %v", c.interval, seq, c.want)
		}
	}
}

func TestPlannerFallbackBelowOneStep(t *testing.T) {
	p := NewPlanner(errmodel.Model{}, DefaultTiming(), 7, 7)
	seq, err := p.Plan(7, 1e-30)
	if err == nil {
		t.Error("expected error when even 1-step ops exceed the budget")
	}
	if !reflect.DeepEqual(seq, []int{1, 1, 1, 1, 1, 1, 1}) {
		t.Errorf("fallback = %v", seq)
	}
}

func TestPlannerLongDistances(t *testing.T) {
	// Long-segment configurations (Fig 12/13/15) need distances up to 63.
	p := NewPlanner(errmodel.Model{}, DefaultTiming(), 63, 63)
	seq, err := p.Plan(63, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range seq {
		total += s
	}
	if total != 63 {
		t.Errorf("plan distances sum to %d, want 63", total)
	}
	// Tight budget forces small steps everywhere.
	seq, _ = p.Plan(63, 5e-20)
	for _, s := range seq {
		if s > 3 {
			t.Errorf("step %d exceeds budget-implied max 3 in %v", s, seq)
		}
	}
}

func TestSeqUncorrectableRateAdds(t *testing.T) {
	em := errmodel.Model{}
	got := SeqUncorrectableRate(em, []int{4, 3})
	want := em.K2Rate(4) + em.K2Rate(3)
	if got != want {
		t.Errorf("rate %g, want %g", got, want)
	}
}

func TestAdapterTable3bIntervals(t *testing.T) {
	// Paper Table 3(b): interval thresholds for the 7-step sequences.
	em := errmodel.Model{}
	p := NewPlanner(em, DefaultTiming(), 7, 7)
	a := NewAdapter(p, 2e9, 10*mttf.SecondsPerYear, 512)
	rows := a.Table(7)
	if len(rows) < 7 {
		t.Fatalf("adapter table for distance 7 has %d rows, want >= 7", len(rows))
	}
	// First (fastest) row is the single 7-step shift at ~2.45M cycles.
	if rows[0].Cycles != 9 {
		t.Errorf("fastest row cycles = %d, want 9", rows[0].Cycles)
	}
	if math.Abs(float64(rows[0].MinInterval)-2.445e6)/2.445e6 > 0.02 {
		t.Errorf("fastest row interval = %d, want ~2445260 (Table 3b)", rows[0].MinInterval)
	}
	// The {4,3} row at 13 cycles needs interval ~76.
	found := false
	for _, row := range rows {
		if row.Cycles == 13 {
			found = true
			if row.MinInterval < 60 || row.MinInterval > 90 {
				t.Errorf("{4,3} interval = %d, want ~76", row.MinInterval)
			}
		}
	}
	if !found {
		t.Error("no 13-cycle row in adapter table")
	}
	// Slowest row: all 1-step, 28 cycles, interval ~3.
	last := rows[len(rows)-1]
	if last.Cycles != 28 {
		t.Errorf("slowest row cycles = %d, want 28", last.Cycles)
	}
	if last.MinInterval > 5 {
		t.Errorf("slowest row interval = %d, want ~3", last.MinInterval)
	}
}

func TestAdapterSequenceFor(t *testing.T) {
	em := errmodel.Model{}
	p := NewPlanner(em, DefaultTiming(), 7, 7)
	a := NewAdapter(p, 2e9, 10*mttf.SecondsPerYear, 512)
	// Huge interval: single shift.
	if seq := a.SequenceFor(7, 1<<40); !reflect.DeepEqual(seq, []int{7}) {
		t.Errorf("idle sequence = %v, want [7]", seq)
	}
	// Tiny interval: all 1-step.
	if seq := a.SequenceFor(7, 1); len(seq) != 7 {
		t.Errorf("busy sequence = %v, want seven 1-steps", seq)
	}
	// Zero distance.
	if seq := a.SequenceFor(0, 100); seq != nil {
		t.Errorf("zero distance sequence = %v", seq)
	}
}

func TestAdapterMonotone(t *testing.T) {
	// Longer intervals must never produce slower sequences.
	em := errmodel.Model{}
	p := NewPlanner(em, DefaultTiming(), 7, 7)
	a := NewAdapter(p, 2e9, 10*mttf.SecondsPerYear, 512)
	tm := DefaultTiming()
	prev := math.MaxInt32
	for _, iv := range []uint64{1, 5, 8, 11, 20, 50, 100, 1e6, 1e9} {
		c := tm.SeqCycles(a.SequenceFor(7, iv))
		if c > prev {
			t.Errorf("interval %d: cycles %d > previous %d", iv, c, prev)
		}
		prev = c
	}
}

func TestWorstCaseSequence(t *testing.T) {
	// Paper §5.2: a 128MB racetrack memory supports up to 83M accesses/s,
	// so the conservative safe distance is 3 steps.
	em := errmodel.Model{}
	p := NewPlanner(em, DefaultTiming(), 7, 7)
	seq := WorstCaseSequence(p, 7, 83e6, 10*mttf.SecondsPerYear, 512)
	for _, s := range seq {
		if s > 3 {
			t.Errorf("worst-case plan %v uses step > 3 (paper: safe distance 3)", seq)
		}
	}
	total := 0
	for _, s := range seq {
		total += s
	}
	if total != 7 {
		t.Errorf("plan sums to %d", total)
	}
}

func TestSchemeProperties(t *testing.T) {
	if Baseline.UsesSTS() {
		t.Error("baseline must not use STS")
	}
	for _, s := range []Scheme{STSOnly, SED, SECDED, PECCO, PECCSWorst, PECCSAdaptive} {
		if !s.UsesSTS() {
			t.Errorf("%v should use STS", s)
		}
	}
	if !PECCO.StepLimited() || SECDED.StepLimited() {
		t.Error("StepLimited wrong")
	}
	if !PECCSWorst.UsesSafeDistance() || !PECCSAdaptive.UsesSafeDistance() || SECDED.UsesSafeDistance() {
		t.Error("UsesSafeDistance wrong")
	}
	names := map[Scheme]string{
		Baseline: "baseline", SED: "sed-pecc", SECDED: "secded-pecc",
		PECCO: "secded-pecc-o", PECCSWorst: "secded-pecc-s-worst",
		PECCSAdaptive: "secded-pecc-s-adaptive", STSOnly: "sts-only",
	}
	for s, n := range names {
		if s.String() != n {
			t.Errorf("String(%d) = %q, want %q", s, s.String(), n)
		}
	}
	if Scheme(99).String() != "unknown-scheme" {
		t.Error("unknown scheme string")
	}
}

func TestFailureRateClassification(t *testing.T) {
	em := errmodel.Model{}
	n := 4
	// Baseline: everything silent, nothing detected.
	sdc, due := Baseline.FailureRates(em, n)
	if due != 0 || sdc <= em.K1Rate(n) {
		t.Errorf("baseline: sdc=%g due=%g", sdc, due)
	}
	// SED: k1 detected (DUE), k2 silent.
	sdc, due = SED.FailureRates(em, n)
	if sdc != em.K2Rate(n) {
		t.Errorf("SED sdc = %g, want k2 %g", sdc, em.K2Rate(n))
	}
	if due < em.K1Rate(n) {
		t.Errorf("SED due = %g, want >= k1 %g", due, em.K1Rate(n))
	}
	// SECDED: k1 corrected, k2 → DUE, k3 → SDC.
	sdc, due = SECDED.FailureRates(em, n)
	if due != em.K2Rate(n) {
		t.Errorf("SECDED due = %g, want k2", due)
	}
	if sdc != em.K3PlusRate(n) {
		t.Errorf("SECDED sdc = %g, want k3+", sdc)
	}
	// Zero distance: no failures.
	if s, d := SECDED.FailureRates(em, 0); s != 0 || d != 0 {
		t.Error("zero distance should have zero failure rates")
	}
}

func TestFailureRateOrdering(t *testing.T) {
	// Stronger protection must strictly dominate on SDC at every distance.
	em := errmodel.Model{}
	for n := 1; n <= 7; n++ {
		b, _ := Baseline.FailureRates(em, n)
		s, _ := SED.FailureRates(em, n)
		c, _ := SECDED.FailureRates(em, n)
		if !(b > s && s > c) {
			t.Errorf("n=%d: SDC ordering violated: baseline %g, SED %g, SECDED %g", n, b, s, c)
		}
	}
}

func sameMultiset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[int]int{}
	for _, x := range a {
		count[x]++
	}
	for _, x := range b {
		count[x]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}
