// Package shiftctrl implements the position-error-aware shift architecture
// (paper §5): the protection schemes compared in the evaluation, the
// safe-distance rule, the optimal shift-sequence selection of Algorithm 1,
// the adaptive run-time intensity adapter, and a functional fault-injecting
// tape controller for end-to-end protection of a single stripe.
package shiftctrl

import "racetrack/hifi/internal/errmodel"

// Scheme is one of the protection configurations evaluated in the paper.
type Scheme int

const (
	// Baseline is the unprotected racetrack memory: no STS, no p-ECC.
	// Every position error is silent.
	Baseline Scheme = iota
	// STSOnly applies sub-threshold shift without any p-ECC: stop-in-middle
	// errors are eliminated, but out-of-step errors stay silent.
	STSOnly
	// SED is STS plus the single-step-error-detecting p-ECC (§4.2.1):
	// odd step errors are detected (DUE) but nothing is corrected.
	SED
	// SECDED is STS plus the single-correct/double-detect p-ECC (§4.2.2).
	SECDED
	// PECCO is STS plus SECDED p-ECC-O (§4.2.4): codes live in the
	// overhead region and every operation moves exactly one step.
	PECCO
	// PECCSWorst is SECDED p-ECC plus the safe-distance constraint
	// computed from the worst-case access intensity (§5.2).
	PECCSWorst
	// PECCSAdaptive is SECDED p-ECC plus the run-time adaptive safe
	// distance (§5.3).
	PECCSAdaptive
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case STSOnly:
		return "sts-only"
	case SED:
		return "sed-pecc"
	case SECDED:
		return "secded-pecc"
	case PECCO:
		return "secded-pecc-o"
	case PECCSWorst:
		return "secded-pecc-s-worst"
	case PECCSAdaptive:
		return "secded-pecc-s-adaptive"
	default:
		return "unknown-scheme"
	}
}

// UsesSTS reports whether the scheme applies sub-threshold shift.
func (s Scheme) UsesSTS() bool { return s != Baseline }

// UsesSafeDistance reports whether the scheme constrains shift distance by
// the safe-distance rule.
func (s Scheme) UsesSafeDistance() bool {
	return s == PECCSWorst || s == PECCSAdaptive
}

// StepLimited reports whether every shift operation is limited to one step
// (p-ECC-O's shift-and-write).
func (s Scheme) StepLimited() bool { return s == PECCO }

// FailureRates returns the per-operation probabilities of silent data
// corruption and detected-unrecoverable error for a single shift operation
// of distance n under scheme s, given the device error model.
//
// Classification per the p-ECC semantics (§4.2):
//
//	baseline:  no detection at all — every position error is an SDC.
//	sts-only:  stop-in-middle gone; all out-of-step errors are SDCs.
//	SED:       odd-magnitude errors flip the parity-like code → detected
//	           (DUE, since direction is unknown); even-magnitude errors
//	           leave it unchanged → silent (SDC).
//	SECDED:    +-1 corrected (no failure); +-2 detected → DUE; +-3 aliases
//	           to -+1 in the period-4 cycle → miscorrected → SDC.
//	p-ECC-O / p-ECC-S: same SECDED classification (distance handling is
//	           done by the sequence planner, not here).
func (s Scheme) FailureRates(em errmodel.Model, n int) (sdc, due float64) {
	if n <= 0 {
		return 0, 0
	}
	switch s {
	case Baseline:
		raw := em
		raw.DisableSTS = true
		return raw.ErrorRate(n), 0
	case STSOnly:
		return em.K1Rate(n) + em.K2Rate(n) + em.K3PlusRate(n), 0
	case SED:
		return em.K2Rate(n), em.K1Rate(n) + em.K3PlusRate(n)
	default: // SECDED family
		return em.K3PlusRate(n), em.K2Rate(n)
	}
}

// OffsetClass is the fate of one concrete position error under a
// scheme, as classified by ClassifyOffset.
type OffsetClass int

const (
	// OffsetOK: no position error (or one the scheme fully corrects).
	OffsetOK OffsetClass = iota
	// OffsetSDC: the error is silent data corruption.
	OffsetSDC
	// OffsetDUE: the error is detected but unrecoverable.
	OffsetDUE
)

// ClassifyOffset classifies one concrete step offset k — a known,
// injected position error such as a stuck-domain fault — under scheme
// s, using the same p-ECC semantics as FailureRates. FailureRates
// integrates the error-model distribution; ClassifyOffset answers for
// a single deterministic outcome, which is what the fault-injection
// plane needs to account a forced error at probability 1.
func (s Scheme) ClassifyOffset(k int) OffsetClass {
	if k < 0 {
		k = -k
	}
	if k == 0 {
		return OffsetOK
	}
	switch s {
	case Baseline, STSOnly:
		return OffsetSDC
	case SED:
		if k%2 == 1 {
			return OffsetDUE
		}
		return OffsetSDC
	default: // SECDED family: +-1 corrected, +-2 DUE, >= 3 aliases silently
		switch k {
		case 1:
			return OffsetOK
		case 2:
			return OffsetDUE
		default:
			return OffsetSDC
		}
	}
}
