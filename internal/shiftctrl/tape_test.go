package shiftctrl

import (
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

func newTestTape(rateScale float64, seed uint64) *Tape {
	return NewTape(pecc.SECDED(8), 64, errmodel.Model{RateScale: rateScale},
		DefaultTiming(), sim.NewRNG(seed))
}

func TestLayoutForSizing(t *testing.T) {
	c := pecc.SECDED(8)
	lay := LayoutFor(c, 64)
	if err := lay.Validate(); err != nil {
		t.Fatalf("layout invalid: %v", err)
	}
	if lay.GuardLeft != 9 { // Lseg-1 + m+1 = 7+2
		t.Errorf("GuardLeft = %d, want 9", lay.GuardLeft)
	}
	if lay.GuardRight != 2 {
		t.Errorf("GuardRight = %d, want 2", lay.GuardRight)
	}
	if lay.PECCLen != c.Length()+2 {
		t.Errorf("PECCLen = %d, want code+slack %d", lay.PECCLen, c.Length()+2)
	}
}

func TestTapeCleanAccessSequence(t *testing.T) {
	tp := newTestTape(0, 1) // RateScale 0 means factor 1 — use explicit 1e-9 for clean
	tp = NewTape(pecc.SECDED(8), 64, errmodel.Model{RateScale: 1e-9}, DefaultTiming(), sim.NewRNG(1))
	// Write a recognizable pattern into domain 19 (segment 2, offset 3).
	if err := tp.AlignTo(3, nil); err != nil {
		t.Fatal(err)
	}
	if err := tp.WriteData(19, stripe.One); err != nil {
		t.Fatal(err)
	}
	// Move away and back.
	if err := tp.AlignTo(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := tp.AlignTo(3, nil); err != nil {
		t.Fatal(err)
	}
	got, err := tp.ReadData(19)
	if err != nil {
		t.Fatal(err)
	}
	if got != stripe.One {
		t.Errorf("read back %v, want One", got)
	}
	if !tp.Aligned() {
		t.Error("tape should be aligned after clean operations")
	}
	if tp.DUEs != 0 || tp.Corrections != 0 {
		t.Errorf("clean run recorded DUEs=%d corrections=%d", tp.DUEs, tp.Corrections)
	}
}

func TestTapeRejectsBadTargets(t *testing.T) {
	tp := newTestTape(1e-9, 2)
	if err := tp.AlignTo(8, nil); err == nil {
		t.Error("offset beyond segment accepted")
	}
	if err := tp.AlignTo(-1, nil); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestTapeUnalignedReadRejected(t *testing.T) {
	tp := newTestTape(1e-9, 3)
	// Believed offset 0; domain 19 needs offset 3.
	if _, err := tp.ReadData(19); err == nil {
		t.Error("unaligned read accepted")
	}
	if err := tp.WriteData(19, stripe.One); err == nil {
		t.Error("unaligned write accepted")
	}
}

func TestTapeCorrectsInjectedErrors(t *testing.T) {
	// Inflate the +-1 rate to make corrections frequent, and verify that
	// after many random accesses the tape remains aligned and data
	// written is read back correctly.
	tp := NewTape(pecc.SECDED(8), 64, errmodel.Model{RateScale: 300},
		DefaultTiming(), sim.NewRNG(4))
	r := sim.NewRNG(5)
	// Write known values at offset 0 of each segment first.
	if err := tp.AlignTo(0, nil); err != nil {
		t.Fatal(err)
	}
	for seg := 0; seg < 8; seg++ {
		if err := tp.WriteData(seg*8, stripe.FromBool(seg%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		target := r.Intn(8)
		if err := tp.AlignTo(target, nil); err != nil {
			t.Fatal(err)
		}
		if !tp.Aligned() && tp.SilentBad == 0 {
			t.Fatalf("iteration %d: tape silently misaligned without oracle count", i)
		}
	}
	if tp.Corrections == 0 {
		t.Error("inflated error rate produced no corrections")
	}
	// Return to offset 0 and verify data survived (modulo DUEs, which
	// invalidate; at k2 rates scaled by 300 DUEs are still ~1e-18).
	if err := tp.AlignTo(0, nil); err != nil {
		t.Fatal(err)
	}
	if tp.DUEs == 0 && tp.SilentBad == 0 {
		for seg := 0; seg < 8; seg++ {
			got, err := tp.ReadData(seg * 8)
			if err != nil {
				t.Fatal(err)
			}
			if got != stripe.FromBool(seg%2 == 0) {
				t.Errorf("segment %d data corrupted: %v", seg, got)
			}
		}
	}
}

func TestTapeDetectsDoubleStepAsDUE(t *testing.T) {
	// Force many +-2 errors: k2 scaled enormously. Use a model where k2
	// dominates by scaling and distance 7.
	em := errmodel.Model{RateScale: 1e14} // k2(7)=7.57e-15*1e14 ≈ 0.757
	tp := NewTape(pecc.SECDED(8), 64, em, DefaultTiming(), sim.NewRNG(6))
	for i := 0; i < 50; i++ {
		target := 7 - tp.BelievedOffset()%8
		if target < 0 || target > 7 {
			target = 7
		}
		if err := tp.AlignTo(target, nil); err != nil {
			t.Fatal(err)
		}
		tp.AlignTo(0, nil)
	}
	if tp.DUEs == 0 {
		t.Error("massively inflated k2 rate produced no DUEs")
	}
	// After recovery the tape must be aligned again.
	if !tp.Aligned() {
		t.Error("tape not realigned after DUE recovery")
	}
}

func TestTapeWithPlannedSequences(t *testing.T) {
	// Drive the tape through the planner: distances split into safe steps.
	em := errmodel.Model{RateScale: 100}
	p := NewPlanner(em, DefaultTiming(), 7, 7)
	tp := NewTape(pecc.SECDED(8), 64, em, DefaultTiming(), sim.NewRNG(7))
	seqFor := func(d int) []int {
		seq, _ := p.Plan(d, 1e-16) // forces small steps at this scale
		return seq
	}
	r := sim.NewRNG(8)
	for i := 0; i < 500; i++ {
		if err := tp.AlignTo(r.Intn(8), seqFor); err != nil {
			t.Fatal(err)
		}
	}
	if tp.Ops < 500 {
		t.Errorf("expected more ops than accesses with split sequences: %d", tp.Ops)
	}
}

func TestTapeStatisticsAccumulate(t *testing.T) {
	tp := newTestTape(1e-9, 9)
	tp.AlignTo(7, nil)
	if tp.Ops != 1 {
		t.Errorf("Ops = %d, want 1", tp.Ops)
	}
	if tp.Cycles != uint64(DefaultTiming().OpCycles(7)) {
		t.Errorf("Cycles = %d, want %d", tp.Cycles, DefaultTiming().OpCycles(7))
	}
	tp.AlignTo(0, nil)
	if tp.Ops != 2 {
		t.Errorf("Ops = %d, want 2", tp.Ops)
	}
}

func TestTapePeekOracle(t *testing.T) {
	tp := newTestTape(1e-9, 10)
	tp.AlignTo(0, nil)
	tp.WriteData(0, stripe.One)
	if tp.PeekData(0) != stripe.One {
		t.Error("PeekData disagrees with write")
	}
	tp.AlignTo(5, nil)
	// Peek still sees the value wherever the tape moved it.
	if tp.PeekData(0) != stripe.One {
		t.Error("PeekData lost track after shifting")
	}
}
