package shiftctrl

// Randomized invariant tests: drive the protected tapes with long random
// operation sequences at a range of error intensities and check that the
// bookkeeping invariants hold at every step.

import (
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/sim"
)

// checkTapeInvariants asserts the properties that must hold after any
// operation on any tape.
func checkTapeInvariants(t *testing.T, tc TapeController, step int) {
	t.Helper()
	c := tc.Counters()
	b := tc.BelievedOffset()
	if b < 0 || b > 7 {
		t.Fatalf("step %d: believed offset %d escaped the segment", step, b)
	}
	// Oracle: an unflagged mismatch means an accounting hole. Either the
	// tape is aligned, or one of the failure counters recorded why not.
	if !tc.Aligned() && c.DUEs == 0 && c.SilentBad == 0 {
		t.Fatalf("step %d: misaligned (true %d, believed %d) with no DUE/silent record",
			step, tc.TrueOffset(), b)
	}
	if c.Cycles < c.Ops {
		t.Fatalf("step %d: cycles %d < ops %d", step, c.Cycles, c.Ops)
	}
}

func fuzzOneTape(t *testing.T, mk func(em errmodel.Model, seed uint64) TapeController, scale float64, seed uint64) {
	em := errmodel.Model{RateScale: scale}
	tc := mk(em, seed)
	r := sim.NewRNG(seed ^ 0xFACE)
	for i := 0; i < 4000; i++ {
		target := r.Intn(8)
		if err := tc.Align(target, nil); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if tc.BelievedOffset() != target {
			t.Fatalf("step %d: believed %d after aligning to %d", i, tc.BelievedOffset(), target)
		}
		checkTapeInvariants(t, tc, i)
	}
}

func TestFuzzTapeAcrossIntensities(t *testing.T) {
	mk := func(em errmodel.Model, seed uint64) TapeController {
		return NewTape(pecc.SECDED(8), 64, em, DefaultTiming(), sim.NewRNG(seed))
	}
	for _, scale := range []float64{1e-9, 1, 100, 2000, 1e5} {
		for seed := uint64(1); seed <= 3; seed++ {
			fuzzOneTape(t, mk, scale, seed)
		}
	}
}

func TestFuzzOTapeAcrossIntensities(t *testing.T) {
	mk := func(em errmodel.Model, seed uint64) TapeController {
		return NewOTape(pecc.MustNewO(1, 8), 64, em, DefaultTiming(), sim.NewRNG(seed))
	}
	for _, scale := range []float64{1e-9, 1, 100, 2000, 1e5} {
		for seed := uint64(1); seed <= 3; seed++ {
			fuzzOneTape(t, mk, scale, seed)
		}
	}
}

func TestFuzzTapeWithPlans(t *testing.T) {
	// Same fuzz but routing every move through the safe-distance planner
	// at a tight budget (forces multi-op sequences).
	em := errmodel.Model{RateScale: 500}
	p := NewPlanner(em, DefaultTiming(), 7, 7)
	tp := NewTape(pecc.SECDED(8), 64, em, DefaultTiming(), sim.NewRNG(9))
	seqFor := func(d int) []int {
		seq, _ := p.Plan(d, 1e-18)
		return seq
	}
	r := sim.NewRNG(10)
	for i := 0; i < 3000; i++ {
		if err := tp.Align(r.Intn(8), seqFor); err != nil {
			t.Fatal(err)
		}
		checkTapeInvariants(t, tp, i)
	}
	if tp.Corrections == 0 {
		t.Error("expected corrections under 500x rates")
	}
}

func TestFuzzTapeDetectMode(t *testing.T) {
	em := errmodel.Model{RateScale: 1000}
	tp := NewTape(pecc.SECDED(8), 64, em, DefaultTiming(), sim.NewRNG(11))
	tp.Mode = CheckDetect
	r := sim.NewRNG(12)
	for i := 0; i < 3000; i++ {
		if err := tp.Align(r.Intn(8), nil); err != nil {
			t.Fatal(err)
		}
		checkTapeInvariants(t, tp, i)
	}
	if tp.DUEs == 0 {
		t.Error("detect-only mode at 1000x rates recorded no DUEs")
	}
	if tp.Corrections != 0 {
		t.Error("detect-only mode corrected")
	}
}

func TestFuzzHigherStrengthTapes(t *testing.T) {
	// m=2 and m=3 codes must survive the same fuzz.
	for _, m := range []int{2, 3} {
		tp := NewTape(pecc.MustNew(m, 8), 64, errmodel.Model{RateScale: 1000},
			DefaultTiming(), sim.NewRNG(uint64(m)))
		r := sim.NewRNG(uint64(m) * 7)
		for i := 0; i < 2000; i++ {
			if err := tp.Align(r.Intn(8), nil); err != nil {
				t.Fatal(err)
			}
			checkTapeInvariants(t, tp, i)
		}
		// Stronger codes correct more and leak less.
		if tp.Corrections == 0 {
			t.Errorf("m=%d: no corrections", m)
		}
	}
}
