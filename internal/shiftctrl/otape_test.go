package shiftctrl

import (
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

func newTestOTape(scale float64, seed uint64) *OTape {
	return NewOTape(pecc.MustNewO(1, 8), 64, errmodel.Model{RateScale: scale},
		DefaultTiming(), sim.NewRNG(seed))
}

func TestOTapeCleanRoundTrip(t *testing.T) {
	tp := newTestOTape(1e-9, 1)
	if err := tp.AlignTo(3); err != nil {
		t.Fatal(err)
	}
	if err := tp.WriteData(19, stripe.One); err != nil {
		t.Fatal(err)
	}
	if err := tp.AlignTo(0); err != nil {
		t.Fatal(err)
	}
	if err := tp.AlignTo(3); err != nil {
		t.Fatal(err)
	}
	got, err := tp.ReadData(19)
	if err != nil {
		t.Fatal(err)
	}
	if got != stripe.One {
		t.Errorf("read back %v", got)
	}
	if !tp.Aligned() {
		t.Error("clean OTape should be aligned")
	}
	if tp.DUEs != 0 || tp.Corrections != 0 {
		t.Errorf("clean run: DUEs=%d corr=%d", tp.DUEs, tp.Corrections)
	}
}

func TestOTapeStepGranularity(t *testing.T) {
	tp := newTestOTape(1e-9, 2)
	tp.AlignTo(7)
	// 7 steps must take 7 operations, each with a shift-and-write.
	if tp.Ops != 7 || tp.Writes != 7 {
		t.Errorf("ops=%d writes=%d, want 7/7", tp.Ops, tp.Writes)
	}
	wantCycles := uint64(7 * DefaultTiming().OpCycles(1))
	if tp.Cycles != wantCycles {
		t.Errorf("cycles=%d, want %d", tp.Cycles, wantCycles)
	}
}

func TestOTapeRejectsBadTarget(t *testing.T) {
	tp := newTestOTape(1e-9, 3)
	if err := tp.AlignTo(8); err == nil {
		t.Error("offset 8 accepted")
	}
	if err := tp.AlignTo(-1); err == nil {
		t.Error("offset -1 accepted")
	}
}

func TestOTapeUnalignedAccessRejected(t *testing.T) {
	tp := newTestOTape(1e-9, 4)
	if _, err := tp.ReadData(19); err == nil {
		t.Error("unaligned read accepted")
	}
	if err := tp.WriteData(19, stripe.One); err == nil {
		t.Error("unaligned write accepted")
	}
}

func TestOTapeCorrectsInjectedErrors(t *testing.T) {
	tp := NewOTape(pecc.MustNewO(1, 8), 64, errmodel.Model{RateScale: 300},
		DefaultTiming(), sim.NewRNG(5))
	r := sim.NewRNG(6)
	tp.AlignTo(0)
	for seg := 0; seg < 8; seg++ {
		if err := tp.WriteData(seg*8, stripe.FromBool(seg%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		if err := tp.AlignTo(r.Intn(8)); err != nil {
			t.Fatal(err)
		}
		if !tp.Aligned() && tp.SilentBad == 0 {
			t.Fatalf("iteration %d: silent misalignment unaccounted", i)
		}
	}
	if tp.Corrections == 0 {
		t.Error("no corrections at 300x rates")
	}
	tp.AlignTo(0)
	if tp.DUEs == 0 && tp.SilentBad == 0 {
		for seg := 0; seg < 8; seg++ {
			got, err := tp.ReadData(seg * 8)
			if err != nil {
				t.Fatal(err)
			}
			if got != stripe.FromBool(seg%2 == 0) {
				t.Errorf("segment %d corrupted: %v", seg, got)
			}
		}
	}
}

func TestOTapeCodeMaintainedAcrossExcursions(t *testing.T) {
	// After many full excursions, the shift-and-write must keep the code
	// decodable (no silent decay of the overhead regions).
	tp := newTestOTape(1e-9, 7)
	for round := 0; round < 50; round++ {
		tp.AlignTo(7)
		tp.AlignTo(0)
	}
	if tp.DUEs != 0 {
		t.Errorf("clean excursions produced %d DUEs", tp.DUEs)
	}
	if !tp.Aligned() {
		t.Error("OTape lost alignment")
	}
	// Final decode must be clean.
	if res := tp.decode(); res.Detected {
		t.Errorf("code no longer decodes cleanly: %+v", res)
	}
}

func TestOTapeUnprotectedMode(t *testing.T) {
	tp := newTestOTape(2000, 8)
	tp.Mode = CheckNone
	for i := 0; i < 2000 && tp.SilentBad == 0; i++ {
		tp.AlignTo(i % 8)
	}
	if tp.SilentBad == 0 {
		t.Error("CheckNone mode never recorded silent misalignment at 2000x rates")
	}
	if tp.Corrections != 0 || tp.DUEs != 0 {
		t.Error("CheckNone mode must not correct or detect")
	}
}

func TestOTapeDetectOnlyMode(t *testing.T) {
	tp := newTestOTape(500, 9)
	tp.Mode = CheckDetect
	for i := 0; i < 3000 && tp.DUEs == 0; i++ {
		tp.AlignTo(i % 8)
	}
	if tp.DUEs == 0 {
		t.Error("detect-only mode never reported a DUE at 500x rates")
	}
	if tp.Corrections != 0 {
		t.Error("detect-only mode must not correct")
	}
	if !tp.Aligned() {
		t.Error("DUE recovery should realign")
	}
}

func TestOTapeHigherStrength(t *testing.T) {
	// m=2 p-ECC-O: corrects +-2 step errors.
	tp := NewOTape(pecc.MustNewO(2, 8), 64, errmodel.Model{RateScale: 300},
		DefaultTiming(), sim.NewRNG(10))
	for i := 0; i < 2000; i++ {
		tp.AlignTo(i % 8)
	}
	if tp.SilentBad != 0 {
		t.Errorf("m=2 OTape silently misaligned %d times", tp.SilentBad)
	}
}

func TestOTapePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dataLen not divisible by segLen did not panic")
		}
	}()
	NewOTape(pecc.MustNewO(1, 8), 63, errmodel.Model{}, DefaultTiming(), sim.NewRNG(1))
}

func TestOTapePeekOracle(t *testing.T) {
	tp := newTestOTape(1e-9, 11)
	tp.AlignTo(0)
	tp.WriteData(0, stripe.One)
	if tp.PeekData(0) != stripe.One {
		t.Error("PeekData disagrees with write")
	}
	tp.AlignTo(5)
	if tp.PeekData(0) != stripe.One {
		t.Error("PeekData lost track after shifting")
	}
}

func TestOTapeWindowGeometry(t *testing.T) {
	tp := newTestOTape(1e-9, 30)
	// The mirrored left window sits inside the left region with the same
	// margin the right window keeps, and both windows are code.Window()
	// consecutive slots.
	w := tp.code.Window()
	if tp.leftWindowSlot(w-1) >= tp.regionL {
		t.Error("left window leaks into the data region")
	}
	if tp.leftWindowSlot(0) < 0 {
		t.Error("left window before the stripe start")
	}
	for j := 1; j < w; j++ {
		if tp.leftWindowSlot(j) != tp.leftWindowSlot(j-1)+1 {
			t.Error("left window not consecutive")
		}
		if tp.rightWindowSlot(j) != tp.rightWindowSlot(j-1)+1 {
			t.Error("right window not consecutive")
		}
	}
	// Mirror symmetry: distances to the respective data boundaries match.
	leftGap := tp.regionL - 1 - tp.leftWindowSlot(w-1)
	rightGap := tp.rightWindowSlot(0) - (tp.regionL + tp.dataLen)
	if leftGap != rightGap {
		t.Errorf("window margins asymmetric: %d vs %d", leftGap, rightGap)
	}
}
