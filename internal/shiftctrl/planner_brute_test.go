package shiftctrl

// Brute-force cross-check of the Pareto planner: for small distances,
// enumerate every composition of the distance into steps and verify that
// Plan returns the true minimum-latency sequence under each rate budget
// (Algorithm 1's specification).

import (
	"math"
	"testing"

	"racetrack/hifi/internal/errmodel"
)

// compositions enumerates all ordered decompositions of d into steps of at
// most maxStep, invoking f on each. Order doesn't change cost, but
// enumerating ordered compositions is simpler and covers all multisets.
func compositions(d, maxStep int, prefix []int, f func([]int)) {
	if d == 0 {
		f(prefix)
		return
	}
	for s := 1; s <= maxStep && s <= d; s++ {
		compositions(d-s, maxStep, append(prefix, s), f)
	}
}

func TestPlannerMatchesBruteForce(t *testing.T) {
	em := errmodel.Model{}
	tm := DefaultTiming()
	p := NewPlanner(em, tm, 10, 7)

	budgets := []float64{1, 1e-14, 1e-18, 5e-20, 2.5e-20, 1.4e-20, 1e-20, 3e-21}
	for d := 1; d <= 10; d++ {
		for _, budget := range budgets {
			// Brute force: min latency among sequences meeting the budget,
			// then min rate among those.
			bestLat := math.MaxInt32
			bestRate := math.Inf(1)
			feasible := false
			compositions(d, 7, nil, func(seq []int) {
				rate := SeqUncorrectableRate(em, seq)
				if rate > budget {
					return
				}
				feasible = true
				lat := tm.SeqCycles(seq)
				if lat < bestLat || (lat == bestLat && rate < bestRate) {
					bestLat = lat
					bestRate = rate
				}
			})

			seq, err := p.Plan(d, budget)
			gotLat := tm.SeqCycles(seq)
			gotRate := SeqUncorrectableRate(em, seq)

			if !feasible {
				// Planner must fall back to all-1s with an error.
				if err == nil {
					t.Errorf("d=%d budget=%g: no feasible sequence but planner returned %v without error",
						d, budget, seq)
				}
				continue
			}
			if err != nil {
				t.Errorf("d=%d budget=%g: planner error %v but brute force found %d cycles",
					d, budget, err, bestLat)
				continue
			}
			if gotLat != bestLat {
				t.Errorf("d=%d budget=%g: planner %v (%d cy) vs brute-force optimum %d cy",
					d, budget, seq, gotLat, bestLat)
			}
			if gotRate > budget {
				t.Errorf("d=%d budget=%g: planner sequence %v violates budget (rate %g)",
					d, budget, seq, gotRate)
			}
		}
	}
}

func TestPlannerFrontierIsPareto(t *testing.T) {
	em := errmodel.Model{}
	p := NewPlanner(em, DefaultTiming(), 9, 7)
	for d := 1; d <= 9; d++ {
		cycles, rates := p.Frontier(d)
		for i := 1; i < len(cycles); i++ {
			if cycles[i] <= cycles[i-1] {
				t.Errorf("d=%d: frontier cycles not increasing at %d", d, i)
			}
			if rates[i] >= rates[i-1] {
				t.Errorf("d=%d: frontier rates not decreasing at %d", d, i)
			}
		}
		// Every frontier sequence reconstructs to matching totals.
		for i := range cycles {
			seq := p.Sequence(d, i)
			total := 0
			for _, s := range seq {
				total += s
			}
			if total != d {
				t.Errorf("d=%d row %d: sequence %v sums to %d", d, i, seq, total)
			}
			if got := DefaultTiming().SeqCycles(seq); got != cycles[i] {
				t.Errorf("d=%d row %d: sequence %v costs %d, frontier says %d",
					d, i, seq, got, cycles[i])
			}
		}
	}
}
