package shiftctrl

// TapeController is the interface shared by the protected-tape
// implementations: the standard p-ECC Tape (dedicated code region,
// multi-step shifts) and the p-ECC-O OTape (overhead-region codes,
// step-by-step shift-and-write). The hifi facade drives stripe groups
// through this interface so the protection scheme selects the mechanism.
type TapeController interface {
	// Align brings in-segment offset target under the data ports. seqFor
	// chooses how distances split into operations; implementations that
	// mandate their own granularity (p-ECC-O) may ignore it.
	Align(target int, seqFor func(dist int) []int) error
	// BelievedOffset is the controller's position belief.
	BelievedOffset() int
	// TrueOffset is the oracle position (tests and fault accounting).
	TrueOffset() int
	// Aligned reports belief == reality (oracle).
	Aligned() bool
	// Counters returns cumulative statistics.
	Counters() Counters
}

// Counters is the statistics snapshot shared by tape implementations.
type Counters struct {
	Ops         uint64
	Cycles      uint64
	Corrections uint64
	DUEs        uint64
	SilentBad   uint64
}

// Align implements TapeController for Tape.
func (t *Tape) Align(target int, seqFor func(int) []int) error {
	return t.AlignTo(target, seqFor)
}

// Counters implements TapeController for Tape.
func (t *Tape) Counters() Counters {
	return Counters{Ops: t.Ops, Cycles: t.Cycles, Corrections: t.Corrections,
		DUEs: t.DUEs, SilentBad: t.SilentBad}
}

// Align implements TapeController for OTape; the sequence planner is
// ignored because p-ECC-O mandates 1-step operations.
func (t *OTape) Align(target int, _ func(int) []int) error {
	return t.AlignTo(target)
}

// Counters implements TapeController for OTape.
func (t *OTape) Counters() Counters {
	return Counters{Ops: t.Ops, Cycles: t.Cycles, Corrections: t.Corrections,
		DUEs: t.DUEs, SilentBad: t.SilentBad}
}

// Interface conformance checks.
var (
	_ TapeController = (*Tape)(nil)
	_ TapeController = (*OTape)(nil)
)
