package shiftctrl

import (
	"fmt"
	"math"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/sts"
	"racetrack/hifi/internal/telemetry"
)

// Timing bundles the latency model for planned shift operations.
type Timing struct {
	STS sts.Config
	// CheckCycles is the extra latency of the p-ECC phase comparison per
	// shift operation (1 cycle in the paper's Table 3 latencies).
	CheckCycles int
}

// DefaultTiming matches the paper's 2 GHz operating point: every shift of n
// steps costs ceil(0.8n)+2 STS cycles plus 1 detection cycle.
func DefaultTiming() Timing {
	return Timing{STS: sts.DefaultConfig(), CheckCycles: 1}
}

// OpCycles returns the cycles of one n-step shift operation including the
// p-ECC check.
func (t Timing) OpCycles(n int) int {
	if n <= 0 {
		return 0
	}
	return t.STS.Cycles(n) + t.CheckCycles
}

// SeqCycles returns the total latency of a shift sequence.
func (t Timing) SeqCycles(seq []int) int {
	total := 0
	for _, n := range seq {
		total += t.OpCycles(n)
	}
	return total
}

// SeqUncorrectableRate returns the overall uncorrectable (k=2) error rate of
// a sequence: the sum of per-operation rates (union bound; rates are tiny).
func SeqUncorrectableRate(em errmodel.Model, seq []int) float64 {
	total := 0.0
	for _, n := range seq {
		total += em.K2Rate(n)
	}
	return total
}

// SafeDistance returns the largest single-shift distance whose
// uncorrectable rate stays within maxRate, bounded by maxDist (usually
// Lseg-1). It returns 1 even if the 1-step rate exceeds maxRate: a 1-step
// shift is the finest operation available.
func SafeDistance(em errmodel.Model, maxRate float64, maxDist int) int {
	d := 1
	for n := 2; n <= maxDist; n++ {
		if em.K2Rate(n) > maxRate {
			break
		}
		d = n
	}
	return d
}

// SafeIntensity returns the highest average shift intensity (operations per
// second) at which single shifts of distance n still meet the MTTF target,
// with stripes shifting together per operation (Table 3a: the paper's
// 512-stripe groups and 10-year DUE target).
func SafeIntensity(em errmodel.Model, n int, target float64, stripes int) float64 {
	rate := em.K2Rate(n) * float64(stripes)
	if rate <= 0 {
		return math.Inf(1)
	}
	return 1 / (rate * target)
}

// Planner selects safe shift sequences (Algorithm 1). It memoizes a
// latency/error Pareto table per distance so that per-access planning is a
// table lookup.
type Planner struct {
	em     errmodel.Model
	timing Timing
	// maxStep is the longest step any plan may use (Lseg-1).
	maxStep int
	// pareto[d] lists the Pareto-optimal (cycles, rate, firstStep) choices
	// for distance d, sorted by cycles ascending / rate descending.
	pareto [][]paretoEntry
}

type paretoEntry struct {
	cycles int
	rate   float64
	first  int // first step of an optimal sequence achieving this point
}

// NewPlanner builds a planner for distances up to maxDist with steps up to
// maxStep.
func NewPlanner(em errmodel.Model, timing Timing, maxDist, maxStep int) *Planner {
	if maxDist < 1 || maxStep < 1 {
		panic("shiftctrl: planner needs positive distances")
	}
	p := &Planner{em: em, timing: timing, maxStep: maxStep}
	p.pareto = make([][]paretoEntry, maxDist+1)
	p.pareto[0] = []paretoEntry{{0, 0, 0}}
	for d := 1; d <= maxDist; d++ {
		// Collect candidate (cycles, rate) for each first step, then
		// reduce to the Pareto frontier.
		var cands []paretoEntry
		for s := 1; s <= maxStep && s <= d; s++ {
			opC := timing.OpCycles(s)
			opR := em.K2Rate(s)
			for _, rest := range p.pareto[d-s] {
				cands = append(cands, paretoEntry{
					cycles: opC + rest.cycles,
					rate:   opR + rest.rate,
					first:  s,
				})
			}
		}
		p.pareto[d] = paretoReduce(cands)
	}
	return p
}

// paretoReduce keeps only non-dominated entries, sorted by cycles
// ascending; among equal cycles the lowest rate survives.
func paretoReduce(cands []paretoEntry) []paretoEntry {
	if len(cands) == 0 {
		return nil
	}
	// Insertion sort by (cycles, rate); candidate lists are small.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.cycles < a.cycles || (b.cycles == a.cycles && b.rate < a.rate) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	out := cands[:0]
	bestRate := math.Inf(1)
	lastCycles := -1
	for _, c := range cands {
		if c.cycles == lastCycles {
			continue // higher or equal rate at same cycles
		}
		if c.rate < bestRate {
			out = append(out, c)
			bestRate = c.rate
			lastCycles = c.cycles
		}
	}
	return out
}

// MaxDist returns the largest plannable distance.
func (p *Planner) MaxDist() int { return len(p.pareto) - 1 }

// Plan returns the minimum-latency shift sequence for distance d whose
// total uncorrectable rate does not exceed maxRate (Algorithm 1). Among
// minimum-latency candidates the lowest-rate sequence is chosen. If even
// the all-1-step sequence exceeds maxRate it is returned anyway with an
// error: the architecture cannot do better than single steps.
func (p *Planner) Plan(d int, maxRate float64) ([]int, error) {
	if d < 0 || d > p.MaxDist() {
		return nil, fmt.Errorf("shiftctrl: distance %d outside planner range [0,%d]", d, p.MaxDist())
	}
	if d == 0 {
		return nil, nil
	}
	seq := p.reconstruct(d, maxRate)
	if seq == nil {
		// No frontier point satisfies the bound; fall back to all-1s.
		seq = make([]int, d)
		for i := range seq {
			seq[i] = 1
		}
		return seq, fmt.Errorf("shiftctrl: no sequence for distance %d meets rate %g; using 1-step ops", d, maxRate)
	}
	return seq, nil
}

// reconstruct walks the Pareto tables to emit the chosen sequence, or nil
// when no entry meets the bound.
func (p *Planner) reconstruct(d int, maxRate float64) []int {
	var seq []int
	remaining := maxRate
	for d > 0 {
		entry, ok := pickEntry(p.pareto[d], remaining)
		if !ok {
			return nil
		}
		seq = append(seq, entry.first)
		remaining -= p.em.K2Rate(entry.first)
		d -= entry.first
	}
	return seq
}

// pickEntry returns the first (fastest) frontier entry with rate <= budget.
func pickEntry(frontier []paretoEntry, budget float64) (paretoEntry, bool) {
	for _, e := range frontier {
		if e.rate <= budget {
			return e, true
		}
	}
	return paretoEntry{}, false
}

// Frontier exposes the (cycles, rate) Pareto points for distance d, used by
// the adapter to build interval threshold tables and by tests.
func (p *Planner) Frontier(d int) (cycles []int, rates []float64) {
	for _, e := range p.pareto[d] {
		cycles = append(cycles, e.cycles)
		rates = append(rates, e.rate)
	}
	return cycles, rates
}

// Sequence reconstructs the full sequence for the frontier entry of
// distance d with the given index.
func (p *Planner) Sequence(d, idx int) []int {
	if d == 0 {
		return nil
	}
	e := p.pareto[d][idx]
	seq := []int{e.first}
	// The remainder follows the frontier entry whose totals match.
	restCycles := e.cycles - p.timing.OpCycles(e.first)
	restRate := e.rate - p.em.K2Rate(e.first)
	rest := p.pareto[d-e.first]
	for i, re := range rest {
		if re.cycles == restCycles && math.Abs(re.rate-restRate) <= 1e-30+1e-9*restRate {
			return append(seq, p.Sequence(d-e.first, i)...)
		}
	}
	// Fall back: greedy reconstruct under the entry's rate budget.
	tail := p.reconstruct(d-e.first, e.rate-p.em.K2Rate(e.first)+1e-30)
	return append(seq, tail...)
}

// Adapter implements the run-time adaptive safe distance (§5.3): it maps
// the interval since the previous shift (in cycles) to the safe sequence
// for each requested distance, using one global table and an interval
// counter — the paper's "Adapter" block.
type Adapter struct {
	planner *Planner
	clockHz float64
	target  float64 // DUE MTTF target in seconds
	stripes int     // stripes shifting together per operation
	// table[d] is sorted by MinInterval descending: the first entry whose
	// MinInterval <= interval is the fastest safe sequence.
	table [][]AdaptEntry
	// stalls counts lookups where even the slowest row's MinInterval
	// exceeded the observed interval (the architecture would stall).
	stalls *telemetry.Counter
}

// Instrument attaches the stall counter from reg; nil detaches.
func (a *Adapter) Instrument(reg *telemetry.Registry) {
	a.stalls = reg.Counter(telemetry.MetricAdapterStalls,
		"adapter lookups where even the all-1-step row needed a longer interval")
}

// AdaptEntry is one row of the adapter table (paper Table 3b).
type AdaptEntry struct {
	MinInterval uint64 // minimum inter-shift interval in cycles
	Seq         []int
	Cycles      int
	Rate        float64
}

// NewAdapter builds the adapter table for all distances the planner covers.
func NewAdapter(p *Planner, clockHz, targetSeconds float64, stripes int) *Adapter {
	a := &Adapter{planner: p, clockHz: clockHz, target: targetSeconds, stripes: stripes}
	a.table = make([][]AdaptEntry, p.MaxDist()+1)
	for d := 1; d <= p.MaxDist(); d++ {
		cycles, rates := p.Frontier(d)
		entries := make([]AdaptEntry, 0, len(cycles))
		for i := range cycles {
			// Safe when rate <= 1/(T * I * stripes) with I = clock/interval:
			// interval >= clock * rate * T * stripes.
			min := uint64(math.Ceil(clockHz * rates[i] * targetSeconds * float64(stripes)))
			entries = append(entries, AdaptEntry{
				MinInterval: min,
				Seq:         p.Sequence(d, i),
				Cycles:      cycles[i],
				Rate:        rates[i],
			})
		}
		a.table[d] = entries
	}
	return a
}

// Table returns the rows for distance d (fastest first), for reporting.
func (a *Adapter) Table(d int) []AdaptEntry { return a.table[d] }

// SequenceFor returns the fastest safe sequence for a shift of distance d
// issued intervalCycles after the previous shift. If even the slowest
// (all-1-step) row requires a longer interval, that row is returned — the
// architecture stalls rather than exceeding it, so callers should treat
// its MinInterval as a lower bound on issue time.
func (a *Adapter) SequenceFor(d int, intervalCycles uint64) []int {
	if d <= 0 {
		return nil
	}
	if d > a.planner.MaxDist() {
		panic(fmt.Sprintf("shiftctrl: distance %d outside adapter range", d))
	}
	rows := a.table[d]
	for _, e := range rows {
		if intervalCycles >= e.MinInterval {
			return e.Seq
		}
	}
	a.stalls.Inc()
	return rows[len(rows)-1].Seq
}

// WorstCaseSequence returns the safe sequence assuming the highest access
// intensity the memory supports (the p-ECC-S "worst" configuration, §5.2).
func WorstCaseSequence(p *Planner, d int, maxIntensity float64, targetSeconds float64, stripes int) []int {
	maxRate := mttf.MaxRateFor(targetSeconds, maxIntensity*float64(stripes))
	seq, _ := p.Plan(d, maxRate)
	return seq
}
