package shiftctrl

import (
	"fmt"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

// OTape is the functional model of a p-ECC-O protected stripe (§4.2.4,
// Fig. 8): instead of a dedicated code region with its own ports, the
// cyclic code lives in the overhead regions at BOTH ends of the stripe and
// is maintained by a shift-and-write port at each end.
//
// Operation: every shift moves exactly one step. When the tape moves left
// (offset increases), the right-end read ports check the code bits arriving
// there, and the left-end write port simultaneously writes the next code
// bit into the vacated slot — so a valid code is always present in the
// region the tape will later be checked against when it moves back right.
// The same holds mirrored for right moves.
//
// Layout of the underlying stripe:
//
//	[ left code region | data | right code region ]
//
// with each code region sized 2(m+1) + excursion slack.
type OTape struct {
	st   *stripe.Stripe
	code pecc.OCode
	em   errmodel.Model
	tim  Timing
	rng  *sim.RNG

	segLen   int
	dataLen  int
	regionL  int // slots in each end region
	believed int
	trueOff  int

	// Statistics, matching Tape's fields.
	Ops         uint64
	Cycles      uint64
	Writes      uint64 // shift-and-write operations
	Corrections uint64
	DUEs        uint64
	SilentBad   uint64

	// Mode mirrors Tape.Mode semantics.
	Mode CheckMode
}

// NewOTape builds a p-ECC-O protected stripe with dataLen data domains.
func NewOTape(code pecc.OCode, dataLen int, em errmodel.Model, tim Timing, rng *sim.RNG) *OTape {
	segLen := code.SegLen()
	if dataLen%segLen != 0 {
		panic(fmt.Sprintf("shiftctrl: dataLen %d not divisible by segLen %d", dataLen, segLen))
	}
	// Each end region: the 2(m+1) code domains plus the full access
	// excursion (Lseg-1) plus error slack (m+1).
	regionL := code.ExtraDomainsPerEnd() + segLen - 1 + code.M() + 1
	t := &OTape{
		st:      stripe.New(2*regionL + dataLen),
		code:    code,
		em:      em,
		tim:     tim,
		rng:     rng,
		segLen:  segLen,
		dataLen: dataLen,
		regionL: regionL,
	}
	// Zero the data domains and program both end codes for offset 0.
	snap := t.st.Snapshot()
	for i := 0; i < dataLen; i++ {
		snap[regionL+i] = stripe.Zero
	}
	t.st.LoadSlots(snap)
	t.programCodes()
	return t
}

// dataSlot returns the physical slot of data domain i at home position.
func (t *OTape) dataSlot(i int) int { return t.regionL + i }

// portSlot returns the slot of the data port for segment p.
func (t *OTape) portSlot(p int) int { return t.regionL + p*t.segLen }

// rightWindowSlot returns the slot of right-end code read port j. The
// right-end window sits just past the data region's home end, offset by
// the worst-case under-shift margin so it stays within the region.
func (t *OTape) rightWindowSlot(j int) int {
	return t.regionL + t.dataLen + t.code.M() + 1 + j
}

// leftWindowSlot returns the slot a mirrored left-end window would use.
// It exists for the dual-window experiments and the renderer; decode uses
// only the right window (see decode for why it is sufficient).
func (t *OTape) leftWindowSlot(j int) int {
	// Mirrored: the window's last slot sits M+1 before the data region,
	// matching the right window's first slot M+1 past it.
	return t.regionL - (t.code.M() + 1) - t.code.Window() + j
}

// programCodes writes the cyclic pattern into both end regions such that
// the windows decode offset 0 at home position. Bit value at slot s follows
// the global phase (s - base) so every window read at offset o yields phase
// base+o consistently.
func (t *OTape) programCodes() {
	snap := t.st.Snapshot()
	for s := 0; s < t.regionL; s++ {
		snap[s] = t.codeBitAtSlot(s, 0)
	}
	for s := t.regionL + t.dataLen; s < t.st.Len(); s++ {
		snap[s] = t.codeBitAtSlot(s, 0)
	}
	t.st.LoadSlots(snap)
}

// codeBitAtSlot returns the code bit that belongs at physical slot s when
// the tape displacement is off: the pattern is anchored to the tape, so the
// value at a fixed slot advances with displacement.
func (t *OTape) codeBitAtSlot(s, off int) stripe.Bit {
	return t.code.Bit(s + off)
}

// BelievedOffset returns the controller's position belief.
func (t *OTape) BelievedOffset() int { return t.believed }

// TrueOffset returns the oracle position.
func (t *OTape) TrueOffset() int { return t.trueOff }

// Aligned reports belief == reality (oracle).
func (t *OTape) Aligned() bool { return t.believed == t.trueOff && !t.st.Misaligned() }

// AlignTo shifts step by step (p-ECC-O's mandated granularity) until the
// believed offset reaches target, checking and correcting after each step.
func (t *OTape) AlignTo(target int) error {
	if target < 0 || target >= t.segLen {
		return fmt.Errorf("shiftctrl: target offset %d outside segment [0,%d)", target, t.segLen)
	}
	for t.believed != target {
		dir := +1
		if target < t.believed {
			dir = -1
		}
		t.stepOnce(dir)
	}
	return nil
}

// stepOnce performs one 1-step shift-and-write with error injection, then
// the check/correct loop.
func (t *OTape) stepOnce(dir int) {
	t.applyRaw(dir)
	t.believed += dir
	t.checkAndCorrect()
}

// applyRaw moves the tape one intended step in direction dir (with sampled
// position error) and performs the shift-and-write of the incoming code
// bit.
func (t *OTape) applyRaw(dir int) {
	o := t.em.Sample(1, t.rng)
	actual := 1 + o.StepOffset
	if actual < 0 {
		actual = 0
	}
	t.Ops++
	t.Writes++
	t.Cycles += uint64(t.tim.OpCycles(1))
	// The write port injects the code bit for the *believed* next
	// displacement; if the tape actually moved a different distance the
	// written bit lands one slot off — which the opposite window's check
	// then exposes, exactly like hardware.
	next := t.believed + dir
	if dir > 0 {
		fill := make([]stripe.Bit, actual)
		for i := range fill {
			// Only the first (intended) bit is driven by the controller;
			// any extra movement drags unknown magnetization in.
			if i == 0 {
				fill[i] = t.codeBitAtSlot(t.st.Len()-1, next)
			} else {
				fill[i] = stripe.Unknown
			}
		}
		t.st.ShiftLeft(actual, fill)
		t.trueOff += actual
	} else {
		fill := make([]stripe.Bit, actual)
		for i := range fill {
			if i == 0 {
				fill[i] = t.codeBitAtSlot(0, next)
			} else {
				fill[i] = stripe.Unknown
			}
		}
		t.st.ShiftRight(actual, fill)
		t.trueOff -= actual
	}
	t.st.SetMisaligned(o.StopInMiddle)
}

// checkAndCorrect decodes the active end's window and reacts per Mode.
func (t *OTape) checkAndCorrect() {
	if t.Mode == CheckNone {
		if t.believed != t.trueOff || t.st.Misaligned() {
			t.SilentBad++
		}
		return
	}
	for round := 0; round < maxCorrectionRounds; round++ {
		res := t.decode()
		switch {
		case !res.Detected:
			if t.believed != t.trueOff {
				t.SilentBad++
			}
			return
		case res.Correctable && t.Mode == CheckDetect:
			t.DUEs++
			t.recoverDUE()
			return
		case res.Correctable:
			t.Corrections++
			t.correct(res.Offset)
		default:
			t.DUEs++
			t.recoverDUE()
			return
		}
	}
	t.DUEs++
	t.recoverDUE()
}

// decode reads the right-end code window. The paper's Fig. 8 alternates
// between the two end regions by direction; in this slot model a single
// window near the data/right-region boundary is provably always valid:
// the code bits written by shift-and-write slide coherently with the tape
// (into the last data home slots during left excursions and back out
// during right ones), so the window content equals the global cyclic
// pattern at the tape's true displacement in both directions. A window at
// the far left end would instead be stale for the first m+1 steps after a
// direction change — the left region's role here is purely to absorb the
// data excursion, which is also why ExtraDomainsPerEnd sizes both ends.
func (t *OTape) decode() pecc.Result {
	w := make([]stripe.Bit, t.code.Window())
	for j := range w {
		if t.st.Misaligned() {
			w[j] = stripe.Unknown
			continue
		}
		w[j] = t.st.Read(t.rightWindowSlot(j))
	}
	base := t.rightWindowSlot(0)
	return t.code.Decode(base+t.believed, w)
}

// correct shifts back by the detected offset, one step at a time, with
// fresh error injection per step (corrections can themselves fail).
func (t *OTape) correct(offset int) {
	dir := -1
	n := offset
	if offset < 0 {
		dir = +1
		n = -offset
	}
	for i := 0; i < n; i++ {
		o := t.em.Sample(1, t.rng)
		actual := 1 + o.StepOffset
		if actual < 0 {
			actual = 0
		}
		t.Ops++
		t.Cycles += uint64(t.tim.OpCycles(1))
		var fill []stripe.Bit
		if dir > 0 {
			if actual >= 1 {
				fill = []stripe.Bit{t.codeBitAtSlot(t.st.Len()-1, t.believed)}
			}
			t.st.ShiftLeft(actual, fill)
			t.trueOff += actual
		} else {
			if actual >= 1 {
				fill = []stripe.Bit{t.codeBitAtSlot(0, t.believed)}
			}
			t.st.ShiftRight(actual, fill)
			t.trueOff -= actual
		}
		t.st.SetMisaligned(o.StopInMiddle)
	}
}

// recoverDUE realigns and re-programs both codes (maintenance operation).
func (t *OTape) recoverDUE() {
	t.st.SetMisaligned(false)
	if delta := t.trueOff - t.believed; delta > 0 {
		t.st.ShiftRight(delta, nil)
	} else if delta < 0 {
		t.st.ShiftLeft(-delta, nil)
	}
	t.trueOff = t.believed
	snap := t.st.Snapshot()
	for s := 0; s < t.regionL; s++ {
		snap[s] = t.codeBitAtSlot(s+t.believed, 0)
	}
	for s := t.regionL + t.dataLen; s < t.st.Len(); s++ {
		snap[s] = t.codeBitAtSlot(s+t.believed, 0)
	}
	t.st.LoadSlots(snap)
}

// ReadData returns the value of data domain i, which must be aligned.
func (t *OTape) ReadData(i int) (stripe.Bit, error) {
	if i%t.segLen != t.believed {
		return stripe.Unknown, fmt.Errorf("shiftctrl: domain %d not aligned", i)
	}
	return t.st.Read(t.portSlot(i / t.segLen)), nil
}

// WriteData stores v into data domain i, which must be aligned.
func (t *OTape) WriteData(i int, v stripe.Bit) error {
	if i%t.segLen != t.believed {
		return fmt.Errorf("shiftctrl: domain %d not aligned for write", i)
	}
	if t.st.Misaligned() {
		return fmt.Errorf("shiftctrl: stripe misaligned")
	}
	t.st.Write(t.portSlot(i/t.segLen), v)
	return nil
}

// PeekData returns the oracle value of data domain i.
func (t *OTape) PeekData(i int) stripe.Bit {
	slot := t.dataSlot(i) - t.trueOff
	if slot < 0 || slot >= t.st.Len() {
		return stripe.Unknown
	}
	return t.st.Peek(slot)
}
