package mttf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFITConversions(t *testing.T) {
	// Paper §2.2: 11,415 FIT is equivalent to 10-year MTTF.
	tenYears := 10 * SecondsPerYear
	fit := ToFIT(tenYears)
	if math.Abs(fit-11415)/11415 > 0.01 {
		t.Errorf("ToFIT(10y) = %v, want ~11415", fit)
	}
	back := FromFIT(fit)
	if math.Abs(back-tenYears)/tenYears > 1e-9 {
		t.Errorf("round trip: %v vs %v", back, tenYears)
	}
}

func TestFITEdgeCases(t *testing.T) {
	if !math.IsInf(FromFIT(0), 1) {
		t.Error("FromFIT(0) should be +Inf")
	}
	if !math.IsInf(ToFIT(0), 1) {
		t.Error("ToFIT(0) should be +Inf")
	}
}

func TestFromRate(t *testing.T) {
	// Paper Fig 1 anchor: at per-stripe rate 1e-19 and the LLC's
	// 83M accesses/s over 512-stripe groups, MTTF ~ 10 years.
	got := FromRate(1e-19, 83e6*512)
	years := Years(got)
	if years < 5 || years > 15 {
		t.Errorf("MTTF at 1e-19 = %.1f years, want ~10 (paper Fig 1)", years)
	}
	if !math.IsInf(FromRate(0, 1e6), 1) {
		t.Error("zero rate should give infinite MTTF")
	}
}

func TestBaselineMTTFMatchesPaper(t *testing.T) {
	// Paper: the unprotected baseline MTTF is 1.33 us. The raw per-shift
	// error rate at the average shift distance (~4 steps, rate ~2e-3 with
	// stop-in-middle included) over 512 stripes at 83M/s accesses gives
	// microseconds — verify the order of magnitude.
	rate := 1.9e-3 // raw 4-step total error rate, pre-STS
	got := FromRate(rate, 83e6*512*0.0093)
	// (0.0093: fraction of accesses that actually shift varies by workload;
	// here we just confirm the microsecond scale is reachable.)
	if got > 1e-3 || got < 1e-8 {
		t.Errorf("baseline MTTF = %g s, want microsecond scale", got)
	}
}

func TestMaxRateForInvertsFromRate(t *testing.T) {
	f := func(a, b uint32) bool {
		target := float64(a%1000+1) * SecondsPerYear
		intensity := float64(b%1000+1) * 1e6
		rate := MaxRateFor(target, intensity)
		mttf := FromRate(rate, intensity)
		return math.Abs(mttf-target)/target < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTargets(t *testing.T) {
	g := IBMTargets()
	if Years(g.SDC) != 1000 || Years(g.DUE) != 10 {
		t.Errorf("targets = %v years SDC, %v years DUE", Years(g.SDC), Years(g.DUE))
	}
	if !g.Meets(2000*SecondsPerYear, 69*SecondsPerYear) {
		t.Error("paper's result (SDC>1000y, DUE=69y) should meet the targets")
	}
	if g.Meets(999*SecondsPerYear, 100*SecondsPerYear) {
		t.Error("SDC below target should fail")
	}
	if g.Meets(2000*SecondsPerYear, 9*SecondsPerYear) {
		t.Error("DUE below target should fail")
	}
}

func TestTrackerBasics(t *testing.T) {
	var tr Tracker
	if !math.IsInf(tr.SDCMTTF(), 1) || !math.IsInf(tr.DUEMTTF(), 1) {
		t.Error("empty tracker should report infinite MTTF")
	}
	tr.AddTime(100)
	tr.AddShift(0.25, 0.5)
	tr.AddShift(0.25, 0.5)
	if tr.ExpectedSDC() != 0.5 || tr.ExpectedDUE() != 1.0 {
		t.Errorf("expected counts: %v SDC, %v DUE", tr.ExpectedSDC(), tr.ExpectedDUE())
	}
	if got := tr.SDCMTTF(); got != 200 {
		t.Errorf("SDC MTTF = %v, want 200", got)
	}
	if got := tr.DUEMTTF(); got != 100 {
		t.Errorf("DUE MTTF = %v, want 100", got)
	}
}

func TestTrackerMerge(t *testing.T) {
	var a, b Tracker
	a.AddTime(10)
	a.AddShift(1, 0)
	b.AddTime(30)
	b.AddShift(1, 2)
	a.Merge(b)
	if a.Seconds() != 40 || a.ExpectedSDC() != 2 || a.ExpectedDUE() != 2 {
		t.Errorf("merge result: %v s, %v SDC, %v DUE", a.Seconds(), a.ExpectedSDC(), a.ExpectedDUE())
	}
}

func TestYears(t *testing.T) {
	if got := Years(SecondsPerYear * 69); math.Abs(got-69) > 1e-9 {
		t.Errorf("Years = %v", got)
	}
}

func TestQuickFromRatePositive(t *testing.T) {
	f := func(r, i float64) bool {
		if math.IsNaN(r) || math.IsNaN(i) || r < 0 || i < 0 {
			return true
		}
		m := FromRate(r, i)
		// m == 0 is correct when rate*intensity overflows to +Inf.
		return m >= 0 || math.IsInf(m, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
