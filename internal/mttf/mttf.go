// Package mttf provides the reliability arithmetic used throughout the
// evaluation (paper §2.2, §6.2): conversions between FIT and mean time to
// failure, MTTF from per-shift error rates and shift intensity, and an
// expected-failure tracker for trace-driven simulation.
//
// Failure classes follow the paper: silent data corruption (SDC) for
// undetected errors and detected unrecoverable errors (DUE) for detected
// ones that cannot be corrected. The reference reliability goal is IBM's
// Power4 target: 1000-year SDC MTTF and 10-year DUE MTTF.
package mttf

import "math"

// SecondsPerYear uses the Julian year, the convention in reliability
// literature.
const SecondsPerYear = 365.25 * 24 * 3600

// HoursPerBillion is the FIT normalization: failures per 1e9 device-hours.
const fitHours = 1e9

// FromFIT converts a FIT rate to MTTF in seconds.
func FromFIT(fit float64) float64 {
	if fit <= 0 {
		return math.Inf(1)
	}
	return fitHours / fit * 3600
}

// ToFIT converts an MTTF in seconds to a FIT rate.
func ToFIT(seconds float64) float64 {
	if seconds <= 0 {
		return math.Inf(1)
	}
	return fitHours / (seconds / 3600)
}

// FromRate returns the MTTF in seconds given a per-event failure
// probability and an event intensity (events per second). Events here are
// typically shift operations on a stripe group.
func FromRate(perEvent, eventsPerSec float64) float64 {
	r := perEvent * eventsPerSec
	if r <= 0 {
		return math.Inf(1)
	}
	return 1 / r
}

// MaxRateFor returns the largest per-event failure probability compatible
// with an MTTF target (seconds) at the given event intensity. This is the
// safe-distance criterion of §5.2.
func MaxRateFor(targetSeconds, eventsPerSec float64) float64 {
	if targetSeconds <= 0 || eventsPerSec <= 0 {
		return math.Inf(1)
	}
	return 1 / (targetSeconds * eventsPerSec)
}

// Targets is a pair of reliability goals, in seconds.
type Targets struct {
	SDC float64
	DUE float64
}

// IBMTargets returns the Power4-class goals the paper adopts: 1000-year SDC
// and 10-year DUE MTTF.
func IBMTargets() Targets {
	return Targets{SDC: 1000 * SecondsPerYear, DUE: 10 * SecondsPerYear}
}

// Meets reports whether the measured MTTFs satisfy the targets.
func (t Targets) Meets(sdcSeconds, dueSeconds float64) bool {
	return sdcSeconds >= t.SDC && dueSeconds >= t.DUE
}

// Years converts seconds to years for reporting.
func Years(seconds float64) float64 { return seconds / SecondsPerYear }

// Tracker accumulates expected failure counts over simulated time. Because
// protected error rates (1e-19 and below) are unobservable by direct
// sampling, the simulator adds the analytic per-operation failure
// probability for every shift it executes; MTTF is simulated time divided
// by expected failures. This mirrors the paper's methodology ("given error
// rates for different shift operations, we track run-time errors that may
// happen during simulation").
type Tracker struct {
	expectedSDC float64
	expectedDUE float64
	seconds     float64
}

// AddShift records one shift operation with the given per-operation SDC and
// DUE probabilities.
func (t *Tracker) AddShift(sdcProb, dueProb float64) {
	t.expectedSDC += sdcProb
	t.expectedDUE += dueProb
}

// AddTime advances simulated wall-clock time.
func (t *Tracker) AddTime(seconds float64) { t.seconds += seconds }

// Seconds returns the accumulated simulated time.
func (t *Tracker) Seconds() float64 { return t.seconds }

// ExpectedSDC returns the accumulated expected SDC count.
func (t *Tracker) ExpectedSDC() float64 { return t.expectedSDC }

// ExpectedDUE returns the accumulated expected DUE count.
func (t *Tracker) ExpectedDUE() float64 { return t.expectedDUE }

// SDCMTTF returns the SDC mean time to failure implied by the accumulated
// counts, +Inf if no failures are expected.
func (t *Tracker) SDCMTTF() float64 {
	if t.expectedSDC <= 0 {
		return math.Inf(1)
	}
	return t.seconds / t.expectedSDC
}

// DUEMTTF returns the DUE mean time to failure.
func (t *Tracker) DUEMTTF() float64 {
	if t.expectedDUE <= 0 {
		return math.Inf(1)
	}
	return t.seconds / t.expectedDUE
}

// Merge adds another tracker's counts and time into t (for aggregating
// per-core or per-workload trackers).
func (t *Tracker) Merge(o Tracker) {
	t.expectedSDC += o.expectedSDC
	t.expectedDUE += o.expectedDUE
	t.seconds += o.seconds
}
