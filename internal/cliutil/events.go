package cliutil

// The shared -events-out flag: every hifi-* binary can append its
// structured event stream (hifi_events_v1 NDJSON, docs/events.md) to a
// file. Obs threads this through its Start/Finish lifecycle; tools that
// do not carry the full Obs surface (hifi-bench) use EventsOut
// directly.

import (
	"bufio"
	"flag"
	"os"

	"racetrack/hifi/internal/telemetry/events"
)

// EventsOut owns the -events-out flag and the NDJSON sink file it names.
type EventsOut struct {
	tool string
	path *string

	bus *events.Bus
	f   *os.File
	w   *bufio.Writer
}

// AddEventsOut registers -events-out on fs. Call before flag.Parse.
func AddEventsOut(fs *flag.FlagSet, tool string) *EventsOut {
	e := &EventsOut{tool: tool}
	e.path = fs.String("events-out", "",
		"write the structured event stream (hifi_events_v1 NDJSON) to this file")
	return e
}

// Path returns the parsed -events-out value.
func (e *EventsOut) Path() string { return *e.path }

// Open builds an event bus with the NDJSON sink attached when
// -events-out was given, nil otherwise — the one-call surface for tools
// without the full Obs lifecycle. Pair with Close.
func (e *EventsOut) Open() (*events.Bus, error) {
	if *e.path == "" {
		return nil, nil
	}
	bus := events.New(0)
	if err := e.Attach(bus); err != nil {
		return nil, err
	}
	return bus, nil
}

// Attach opens the sink file (when -events-out was given), writes the
// schema header, and routes bus's events there. No-op without the flag.
func (e *EventsOut) Attach(bus *events.Bus) error {
	if *e.path == "" {
		return nil
	}
	f, err := os.Create(*e.path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := events.WriteHeader(w, e.tool); err != nil {
		_ = f.Close()
		return err
	}
	bus.AttachSink(w)
	e.bus, e.f, e.w = bus, f, w
	return nil
}

// Close flushes and closes the sink file, surfacing any write error the
// bus hit mid-run. Safe to call when no sink was opened.
func (e *EventsOut) Close() error {
	if e.f == nil {
		return nil
	}
	err := e.bus.SinkErr()
	if ferr := e.w.Flush(); err == nil {
		err = ferr
	}
	if cerr := e.f.Close(); err == nil {
		err = cerr
	}
	e.bus, e.f, e.w = nil, nil, nil
	return err
}
