package cliutil

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
)

// TestObsEndToEnd drives the full flag → Start → span → Finish cycle and
// checks every artifact lands next to the metrics base, manifest included.
func TestObsEndToEnd(t *testing.T) {
	defer log.SetLevel(log.GetLevel())
	dir := t.TempDir()
	base := filepath.Join(dir, "run")

	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "trace seed")
	obs := AddFlags(fs, "tool")
	if err := fs.Parse([]string{"-metrics-out", base, "-spans-out", base, "-seed", "7", "-q"}); err != nil {
		t.Fatal(err)
	}
	_ = seed

	ctx := obs.Start()
	if log.GetLevel() != log.Error {
		t.Errorf("-q not applied: level %v", log.GetLevel())
	}
	if obs.Reg == nil || obs.Col == nil || obs.Man == nil {
		t.Fatal("Start did not build registry/collector/manifest")
	}
	obs.Reg.Counter("tool_work_total", "").Add(3)
	_, sp := telemetry.StartSpan(ctx, "work")
	sp.End()
	if err := obs.Finish(); err != nil {
		t.Fatal(err)
	}

	for _, f := range []string{"run.json", "run.prom", "run.spans.json", "run.folded", "run.manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("artifact %s missing: %v", f, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "run.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Tool    string            `json:"tool"`
		Status  string            `json:"status"`
		Seed    uint64            `json:"seed"`
		Config  map[string]string `json:"config"`
		Outputs []string          `json:"outputs"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if man.Tool != "tool" || man.Status != "done" {
		t.Errorf("manifest tool/status = %q/%q", man.Tool, man.Status)
	}
	if man.Seed != 7 {
		t.Errorf("seed not auto-captured from flags: %d", man.Seed)
	}
	if man.Config["metrics-out"] != base {
		t.Errorf("resolved config missing metrics-out: %v", man.Config)
	}
	if len(man.Outputs) != 4 {
		t.Errorf("outputs = %v, want the 4 metric/span files", man.Outputs)
	}
}

// TestObsDisabled checks the zero-config path: no flags set, no registry,
// no collector, root span a no-op, Finish writes nothing.
func TestObsDisabled(t *testing.T) {
	defer log.SetLevel(log.GetLevel())
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	obs := AddFlags(fs, "tool")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	ctx := obs.Start()
	if obs.Reg != nil || obs.Col != nil {
		t.Error("registry/collector built without being asked for")
	}
	if _, sp := telemetry.StartSpan(ctx, "x"); sp != nil {
		t.Error("span recorded without a collector")
	}
	if err := obs.Finish(); err != nil {
		t.Fatal(err)
	}
	if path := obs.manifestPath(); path != "" {
		t.Errorf("manifest path = %q, want none", path)
	}
}

// TestManifestPathPrecedence: explicit -manifest-out wins over the
// derived default, and extensions on the metrics base are trimmed.
func TestManifestPathPrecedence(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	obs := AddFlags(fs, "tool")
	if err := fs.Parse([]string{"-metrics-out", "out/run.json", "-manifest-out", "explicit.json"}); err != nil {
		t.Fatal(err)
	}
	if got := obs.manifestPath(); got != "explicit.json" {
		t.Errorf("manifestPath = %q, want explicit.json", got)
	}

	fs2 := flag.NewFlagSet("tool", flag.ContinueOnError)
	obs2 := AddFlags(fs2, "tool")
	if err := fs2.Parse([]string{"-metrics-out", "out/run.json"}); err != nil {
		t.Fatal(err)
	}
	if got := obs2.manifestPath(); got != "out/run.manifest.json" {
		t.Errorf("manifestPath = %q, want out/run.manifest.json", got)
	}
}

// TestObsProfileAndPerf drives the profiling flag surface: -profile
// captures pprof files under the derived base, -perf-out writes the
// hifi_perf_v1 analysis, and both land in the manifest's outputs.
func TestObsProfileAndPerf(t *testing.T) {
	defer log.SetLevel(log.GetLevel())
	dir := t.TempDir()
	base := filepath.Join(dir, "run")
	perfPath := filepath.Join(dir, "perf.json")

	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	obs := AddFlags(fs, "tool")
	if err := fs.Parse([]string{
		"-metrics-out", base, "-spans-out", base,
		"-profile", "heap,allocs", "-perf-out", perfPath, "-q",
	}); err != nil {
		t.Fatal(err)
	}
	ctx := obs.Start()
	if obs.Cap == nil {
		t.Fatal("Start did not build the profile capture")
	}
	if obs.Perf == nil {
		t.Fatal("Start did not build the perf handler")
	}
	_, sp := telemetry.StartSpan(ctx, "work")
	sp.End()
	if err := obs.Finish(); err != nil {
		t.Fatal(err)
	}

	for _, f := range []string{"run.heap.pprof", "run.allocs.pprof"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("profile %s missing: %v", f, err)
		}
	}
	data, err := os.ReadFile(perfPath)
	if err != nil {
		t.Fatal(err)
	}
	var perf struct {
		Schema string `json:"schema"`
		Spans  []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &perf); err != nil {
		t.Fatal(err)
	}
	if perf.Schema != "hifi_perf_v1" {
		t.Errorf("perf schema = %q", perf.Schema)
	}
	names := map[string]bool{}
	for _, s := range perf.Spans {
		names[s.Name] = true
	}
	if !names["work"] || !names["tool"] {
		t.Errorf("perf spans = %v, want work and the root", names)
	}

	var man struct {
		Outputs []string `json:"outputs"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, "run.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, out := range man.Outputs {
		if strings.HasSuffix(out, ".pprof") || out == perfPath {
			found++
		}
	}
	if found != 3 {
		t.Errorf("manifest outputs list %d profile/perf files, want 3: %v", found, man.Outputs)
	}
}

// TestObsPerfOutForcesSpans: -perf-out alone must switch span collection
// on, or the analysis would always be empty.
func TestObsPerfOutForcesSpans(t *testing.T) {
	defer log.SetLevel(log.GetLevel())
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	obs := AddFlags(fs, "tool")
	perfPath := filepath.Join(t.TempDir(), "perf.json")
	if err := fs.Parse([]string{"-perf-out", perfPath, "-q"}); err != nil {
		t.Fatal(err)
	}
	obs.Start()
	if obs.Col == nil {
		t.Fatal("-perf-out did not enable the span collector")
	}
	if err := obs.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(perfPath); err != nil {
		t.Errorf("perf export missing: %v", err)
	}
}

// TestProfileBasePrecedence: explicit -profile-out wins; else profiles
// share the manifest's stem; else the tool name.
func TestProfileBasePrecedence(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-profile-out", "p/base"}, "p/base"},
		{[]string{"-metrics-out", "out/run.json"}, "out/run"},
		{[]string{"-manifest-out", "m/run.manifest.json"}, "m/run"},
		{nil, "tool"},
	}
	for _, c := range cases {
		fs := flag.NewFlagSet("tool", flag.ContinueOnError)
		obs := AddFlags(fs, "tool")
		if err := fs.Parse(c.args); err != nil {
			t.Fatal(err)
		}
		if got := obs.profileBase(); got != c.want {
			t.Errorf("profileBase(%v) = %q, want %q", c.args, got, c.want)
		}
	}
}
