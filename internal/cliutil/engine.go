package cliutil

// Shared flag surface for the parallel experiment engine: every binary
// that runs sweeps registers -jobs, -cache-dir, and -resume through
// EngineFlags so the flags, their defaults, and the wiring to the
// telemetry registry and the /engine status route stay uniform across
// the CLI fleet. See docs/engine.md.

import (
	"flag"
	"fmt"
	"path/filepath"
	"runtime"
	"time"

	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
)

// EngineFlags holds the parsed engine flags for one CLI.
type EngineFlags struct {
	jobs          *int
	cacheDir      *string
	cacheMaxBytes *int64
	resume        *bool
	retries       *int
	backoff       *time.Duration
	jobTimeout    *time.Duration

	journal *engine.Journal
}

// NewEngineFlags registers the engine flags on the default flag set.
// Call before flag.Parse; call Build after Obs.Start.
func NewEngineFlags() *EngineFlags { return AddEngineFlags(flag.CommandLine) }

// AddEngineFlags registers the engine flags on fs.
func AddEngineFlags(fs *flag.FlagSet) *EngineFlags {
	ef := &EngineFlags{}
	ef.jobs = fs.Int("jobs", runtime.NumCPU(),
		"parallel simulation jobs (worker pool size)")
	ef.cacheDir = fs.String("cache-dir", "",
		"content-addressed result cache directory (empty disables caching)")
	ef.cacheMaxBytes = fs.Int64("cache-max-bytes", 0,
		"size budget for the result cache; least-recently-accessed objects are evicted above it (0 = unlimited)")
	ef.resume = fs.Bool("resume", false,
		"resume an interrupted sweep from the journal in -cache-dir")
	ef.retries = fs.Int("job-retries", 1,
		"re-executions of a failed job before the failure is permanent")
	ef.backoff = fs.Duration("retry-backoff", 250*time.Millisecond,
		"base delay before retrying a failed job (doubles per retry, jittered; 0 retries immediately)")
	ef.jobTimeout = fs.Duration("job-timeout", 0,
		"per-job execution deadline; a timed-out attempt is retried (0 disables)")
	return ef
}

// Build assembles the engine the parsed flags describe: worker pool
// width, result cache, resume journal, metrics from the Obs registry,
// and — when the Obs status server is up — the /engine route. Call
// after Obs.Start so the registry and mux exist.
//
// An unusable cache directory (unwritable disk, bad permissions) is a
// degradation, not a failure: Build warns once and returns a cache-less
// engine, so a sweep on a sick machine still completes — it just
// cannot reuse or journal its results.
func (ef *EngineFlags) Build(o *Obs) (*engine.Engine, error) {
	opts := engine.Options{
		Workers:      *ef.jobs,
		Retries:      *ef.retries,
		Resume:       *ef.resume,
		RetryBackoff: *ef.backoff,
		JobTimeout:   *ef.jobTimeout,
	}
	if o != nil {
		opts.Metrics = o.Reg
		opts.Events = o.Events
	}
	if *ef.resume && *ef.cacheDir == "" {
		return nil, fmt.Errorf("-resume requires -cache-dir (the journal lives in the cache directory)")
	}
	if *ef.cacheDir != "" {
		cache, err := engine.OpenCache(*ef.cacheDir, "")
		if err != nil {
			log.Errorf("engine: %v; continuing without cache or journal (results will not be reused)", err)
		} else {
			opts.Cache = cache
			if o != nil {
				cache.Instrument(o.Reg)
			}
			if *ef.cacheMaxBytes > 0 {
				cache.SetMaxBytes(*ef.cacheMaxBytes)
			}
			journal, err := engine.OpenJournal(filepath.Join(*ef.cacheDir, "journal.jsonl"), *ef.resume)
			if err != nil {
				log.Errorf("engine: %v; continuing without journal (sweep will not be resumable)", err)
				opts.Resume = false
			} else {
				opts.Journal = journal
				ef.journal = journal
				if *ef.resume {
					log.Infof("engine: resuming, journal lists %d completed job(s)", journal.Len())
				}
				if skipped := journal.Skipped(); skipped > 0 {
					log.Errorf("engine: journal had %d corrupt record(s); the jobs they named will re-resolve", skipped)
					if o != nil && o.Reg != nil {
						o.Reg.Counter(telemetry.MetricEngineJournalSkipped,
							"journal records skipped as corrupt on resume").Add(float64(skipped))
					}
				}
			}
		}
	}
	eng := engine.New(opts)
	if o != nil && o.Mux != nil {
		o.Mux.Handle("/engine", eng.StatusHandler())
	}
	if o != nil {
		o.SetPerfResources(func() any { return eng.Resources() })
		o.Health.SetInFlight(eng.InFlight)
	}
	return eng, nil
}

// Finish logs the engine's sweep-wide summary line and closes the
// journal. Safe to call with a nil engine (flags registered, Build
// never called).
func (ef *EngineFlags) Finish(eng *engine.Engine) {
	if eng != nil {
		log.Infof("%s", eng.Summary())
	}
	if ef.journal != nil {
		if err := ef.journal.Close(); err != nil {
			log.Errorf("engine: close journal: %v", err)
		}
	}
}
