package cliutil

// Shared flag surface for the parallel experiment engine: every binary
// that runs sweeps registers -jobs, -cache-dir, and -resume through
// EngineFlags so the flags, their defaults, and the wiring to the
// telemetry registry and the /engine status route stay uniform across
// the CLI fleet. See docs/engine.md.

import (
	"flag"
	"fmt"
	"path/filepath"
	"runtime"

	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/telemetry/log"
)

// EngineFlags holds the parsed engine flags for one CLI.
type EngineFlags struct {
	jobs     *int
	cacheDir *string
	resume   *bool
	retries  *int

	journal *engine.Journal
}

// NewEngineFlags registers the engine flags on the default flag set.
// Call before flag.Parse; call Build after Obs.Start.
func NewEngineFlags() *EngineFlags { return AddEngineFlags(flag.CommandLine) }

// AddEngineFlags registers the engine flags on fs.
func AddEngineFlags(fs *flag.FlagSet) *EngineFlags {
	ef := &EngineFlags{}
	ef.jobs = fs.Int("jobs", runtime.NumCPU(),
		"parallel simulation jobs (worker pool size)")
	ef.cacheDir = fs.String("cache-dir", "",
		"content-addressed result cache directory (empty disables caching)")
	ef.resume = fs.Bool("resume", false,
		"resume an interrupted sweep from the journal in -cache-dir")
	ef.retries = fs.Int("job-retries", 1,
		"re-executions of a failed job before the failure is permanent")
	return ef
}

// Build assembles the engine the parsed flags describe: worker pool
// width, result cache, resume journal, metrics from the Obs registry,
// and — when the Obs status server is up — the /engine route. Call
// after Obs.Start so the registry and mux exist.
func (ef *EngineFlags) Build(o *Obs) (*engine.Engine, error) {
	opts := engine.Options{
		Workers: *ef.jobs,
		Retries: *ef.retries,
		Resume:  *ef.resume,
	}
	if o != nil {
		opts.Metrics = o.Reg
	}
	if *ef.resume && *ef.cacheDir == "" {
		return nil, fmt.Errorf("-resume requires -cache-dir (the journal lives in the cache directory)")
	}
	if *ef.cacheDir != "" {
		cache, err := engine.OpenCache(*ef.cacheDir, "")
		if err != nil {
			return nil, err
		}
		journal, err := engine.OpenJournal(filepath.Join(*ef.cacheDir, "journal.jsonl"), *ef.resume)
		if err != nil {
			return nil, err
		}
		opts.Cache = cache
		opts.Journal = journal
		ef.journal = journal
		if *ef.resume {
			log.Infof("engine: resuming, journal lists %d completed job(s)", journal.Len())
		}
	}
	eng := engine.New(opts)
	if o != nil && o.Mux != nil {
		o.Mux.Handle("/engine", eng.StatusHandler())
	}
	return eng, nil
}

// Finish logs the engine's sweep-wide summary line and closes the
// journal. Safe to call with a nil engine (flags registered, Build
// never called).
func (ef *EngineFlags) Finish(eng *engine.Engine) {
	if eng != nil {
		log.Infof("%s", eng.Summary())
	}
	if ef.journal != nil {
		if err := ef.journal.Close(); err != nil {
			log.Errorf("engine: close journal: %v", err)
		}
	}
}
