package cliutil

// Shared flag surface for device-plane fault injection: every CLI that
// can run simulations under an off-nominal device registers -faults,
// -fault-plan, and -fault-intensity through FaultFlags so the plan
// sources and their precedence stay uniform. See docs/faults.md.

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"racetrack/hifi/internal/faults"
)

// FaultFlags holds the parsed fault-injection flags for one CLI.
type FaultFlags struct {
	preset    *string
	planPath  *string
	intensity *float64
}

// NewFaultFlags registers the fault flags on the default flag set.
func NewFaultFlags() *FaultFlags { return AddFaultFlags(flag.CommandLine) }

// AddFaultFlags registers the fault flags on fs.
func AddFaultFlags(fs *flag.FlagSet) *FaultFlags {
	ff := &FaultFlags{}
	ff.preset = fs.String("faults", "off",
		"fault-injection preset ("+strings.Join(faults.PresetNames(), "|")+")")
	ff.planPath = fs.String("fault-plan", "",
		"JSON fault plan file (overrides -faults; see docs/faults.md)")
	ff.intensity = fs.Float64("fault-intensity", 1,
		"scale every injector's intensity by this factor")
	return ff
}

// Plan resolves the flags into a fault plan: an explicit -fault-plan
// file wins over the -faults preset, and -fault-intensity scales the
// result. Returns nil (the nominal device) when injection is off.
// Resolution itself lives in faults.Resolve so the serve API's spec
// path composes the sources with exactly the same precedence.
func (ff *FaultFlags) Plan() (*faults.Plan, error) {
	var planJSON []byte
	if *ff.planPath != "" {
		b, err := os.ReadFile(*ff.planPath)
		if err != nil {
			return nil, fmt.Errorf("-fault-plan: %w", err)
		}
		planJSON = b
	}
	plan, err := faults.Resolve(*ff.preset, planJSON, *ff.intensity)
	if err != nil {
		if *ff.planPath != "" {
			return nil, fmt.Errorf("-fault-plan %s: %w", *ff.planPath, err)
		}
		return nil, err
	}
	return plan, nil
}
