package cliutil

// Shared graceful-shutdown plumbing: every long-lived hifi-* binary
// (hifi-serve, hifi-watch, and an interrupted hifi-experiments sweep)
// reacts to SIGINT/SIGTERM the same way — cancel the run context, let
// the tool drain, and flush its observability artifacts through
// Obs.Finish on the way out. A second signal skips the drain and exits
// immediately, so a wedged shutdown can always be escalated by hand.

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"racetrack/hifi/internal/telemetry/log"
)

// SignalContext derives a context from parent that is canceled on the
// first SIGINT or SIGTERM. The first signal logs and cancels — the
// tool's main loop sees ctx.Done(), stops starting new work, and falls
// through to its flush path (event sinks, metrics snapshots, the run
// manifest via Obs.Finish). A second signal exits the process with
// status 130 immediately.
//
// The returned stop function releases the signal registration and the
// watcher goroutine; call it (usually via defer) once shutdown handling
// is no longer wanted.
func SignalContext(parent context.Context, tool string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	// stopped — not ctx.Done(), which the first signal itself closes —
	// is what retires the watcher, so the escalation arm stays armed
	// through the whole drain.
	stopped := make(chan struct{})
	go func() {
		defer signal.Stop(ch)
		select {
		case sig := <-ch:
			log.Infof("%s: received %v; draining (signal again to exit immediately)", tool, sig)
			cancel()
		case <-stopped:
			return
		case <-parent.Done():
			return
		}
		select {
		case sig := <-ch:
			log.Errorf("%s: received second %v; exiting without draining", tool, sig)
			os.Exit(130)
		case <-stopped:
		}
	}()
	var once sync.Once
	return ctx, func() {
		once.Do(func() { close(stopped) })
		cancel()
	}
}
