// Package cliutil is the plumbing shared by every hifi-* binary: the
// observability flag set (-metrics-out, -spans-out, -manifest-out, -pprof,
// -v, -q), the wiring from those flags to the telemetry registry, span
// collector, run manifest, and live status server, and the end-of-run
// artifact writing. Keeping it in one place means every CLI exposes the
// same surface and docs/observability.md documents all of them at once.
package cliutil

import (
	"context"
	"flag"
	"net/http"
	"strconv"
	"strings"
	"time"

	"racetrack/hifi/internal/profile"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/telemetry/timeseries"
)

// Obs owns one CLI's observability state from flag registration to the
// final artifact writes. Zero-cost when no flag is set: the registry and
// span collector stay nil and the instrumented packages fall back to their
// nil-safe no-op paths.
type Obs struct {
	tool string
	fs   *flag.FlagSet

	metricsOut  *string
	spansOut    *string
	manifestOut *string
	statusAddr  *string
	tsOut       *string
	tsEvery     *int
	tsWall      *time.Duration
	profKinds   *string
	profOut     *string
	profPhases  *bool
	perfOut     *string
	verbose     *bool
	quiet       *bool

	// Reg aggregates metrics (nil unless requested or forced), Col
	// collects spans, Man is the run manifest (always present after
	// Start so /runinfo and crash forensics have provenance).
	Reg *telemetry.Registry
	Col *telemetry.SpanCollector
	Man *telemetry.Manifest

	// TS is the windowed time-series sampler (nil unless -timeseries-out
	// or -pprof asked for one). Thread it into the code being observed:
	// memsim.Config.Sampler, experiments.RunOpts.Sampler.
	TS *timeseries.Sampler

	// Mux is the live status mux once Start has launched it (nil without
	// -pprof). Subsystems built after Start — the experiment engine's
	// /engine route — register their handlers here; http.ServeMux is
	// safe for Handle calls while serving.
	Mux *http.ServeMux

	// Cap is the automated pprof capture (nil unless -profile named at
	// least one kind). Perf is the self-time analyzer behind /perf and
	// -perf-out (nil unless spans are being collected).
	Cap  *profile.Capture
	Perf *profile.Handler

	// Events is the structured event bus (nil unless -events-out or
	// -pprof asked for an event surface). Thread it into the code being
	// observed: engine.Options.Events, memsim.Config.Events,
	// experiments.RunOpts.Events. Health backs the enriched /healthz.
	Events *events.Bus
	Health *telemetry.HealthState

	ev          *EventsOut
	forceSpans  bool
	forceEvents bool
	started     time.Time
	root        *telemetry.Span
}

// NewObs registers the shared observability flags on the default flag set.
// Call before flag.Parse; call Start after.
func NewObs(tool string) *Obs { return AddFlags(flag.CommandLine, tool) }

// AddFlags registers the shared observability flags on fs.
func AddFlags(fs *flag.FlagSet, tool string) *Obs {
	o := &Obs{tool: tool, fs: fs}
	o.metricsOut = fs.String("metrics-out", "",
		"write aggregated metrics snapshots to <base>.json and <base>.prom")
	o.spansOut = fs.String("spans-out", "",
		"write the hierarchical span tree to <base>.spans.json and <base>.folded (flamegraph)")
	o.manifestOut = fs.String("manifest-out", "",
		"write the run manifest here (default: <metrics/spans base>.manifest.json)")
	o.statusAddr = fs.String("pprof", "",
		"serve /metrics /spans /runinfo /timeseries /events /healthz and /debug/pprof on this address (e.g. localhost:6060)")
	o.tsOut = fs.String("timeseries-out", "",
		"write the windowed metrics time-series (JSON) to this file")
	o.tsEvery = fs.Int("timeseries-every", timeseries.DefaultEvery,
		"time-series window width in simulated accesses")
	o.tsWall = fs.Duration("timeseries-wall", 0,
		"additionally cut a time-series window at this wall-clock interval (0 disables; nondeterministic)")
	o.profKinds = fs.String("profile", "",
		"capture pprof profiles: comma-separated cpu,heap,allocs,mutex,block or \"all\"")
	o.profOut = fs.String("profile-out", "",
		"profile base path; files land at <base>.<kind>.pprof (default: next to the manifest)")
	o.profPhases = fs.Bool("profile-phases", false,
		"rotate the CPU profile and snapshot the heap at each phase boundary")
	o.perfOut = fs.String("perf-out", "",
		"write the span self-time analysis (hifi_perf_v1 JSON) to this file")
	o.ev = AddEventsOut(fs, tool)
	o.verbose = fs.Bool("v", false, "debug logging (overrides HIFI_LOG)")
	o.quiet = fs.Bool("q", false, "errors only (overrides HIFI_LOG)")
	return o
}

// EnableMetrics forces a registry even when -metrics-out is unset, for
// tools that read gauges while running (hifi-sim's progress line).
func (o *Obs) EnableMetrics() {
	if o.Reg == nil {
		o.Reg = telemetry.NewRegistry()
	}
}

// MetricsRequested reports whether the user asked for a metrics snapshot
// on disk (as opposed to a registry forced by the tool itself).
func (o *Obs) MetricsRequested() bool { return *o.metricsOut != "" }

// EnableSpans forces span collection even when -spans-out is unset, for
// tools that consume the span tree themselves (hifi-report's self-time
// section). Call before Start.
func (o *Obs) EnableSpans() { o.forceSpans = true }

// EnableEvents forces an event bus even when neither -events-out nor
// -pprof asked for one, for tools that serve the stream themselves
// (hifi-serve's /events and per-job SSE routes). Call before Start.
func (o *Obs) EnableEvents() { o.forceEvents = true }

// Start applies the log level, builds the telemetry objects the parsed
// flags call for, starts the status server, captures the resolved
// configuration into the manifest, and opens the root span. The returned
// context carries the span collector; thread it through the run.
func (o *Obs) Start() context.Context {
	switch {
	case *o.quiet:
		log.SetLevel(log.Error)
	case *o.verbose:
		log.SetLevel(log.Debug)
	}

	if *o.metricsOut != "" || *o.statusAddr != "" || *o.manifestOut != "" || *o.tsOut != "" {
		o.EnableMetrics()
	}
	if *o.spansOut != "" || *o.statusAddr != "" || *o.perfOut != "" || o.forceSpans {
		o.Col = telemetry.NewSpanCollector(o.Reg)
	}
	if o.Col != nil {
		col := o.Col
		o.Perf = profile.NewHandler(func() telemetry.SpanExport { return col.Export() })
	}
	if *o.tsOut != "" || *o.statusAddr != "" {
		o.TS = timeseries.New(o.Reg, timeseries.Options{
			Every:        *o.tsEvery,
			WallInterval: *o.tsWall,
		})
	}

	o.Man = telemetry.NewManifest(o.tool)
	cfg := make(map[string]string)
	o.fs.VisitAll(func(f *flag.Flag) { cfg[f.Name] = f.Value.String() })
	o.Man.SetConfig(cfg)
	if f := o.fs.Lookup("seed"); f != nil {
		if s, err := strconv.ParseUint(f.Value.String(), 10, 64); err == nil {
			o.Man.SetSeed(s)
		}
	}

	if kinds, err := profile.ParseKinds(*o.profKinds); err != nil {
		log.Fatalf("%s: -profile: %v", o.tool, err)
	} else if len(kinds) > 0 {
		o.Cap = profile.New(o.profileBase(), kinds, *o.profPhases)
		if err := o.Cap.Start(); err != nil {
			log.Errorf("profile: %v; continuing without capture", err)
			o.Cap = nil
		}
	}

	// The event bus exists whenever anything can consume it: an NDJSON
	// sink (-events-out) or the SSE /events route (-pprof). Detached
	// tools keep the nil bus and its zero-alloc Emit path.
	if o.ev.Path() != "" || *o.statusAddr != "" || o.forceEvents {
		o.Events = events.New(0)
		o.Events.Instrument(o.Reg)
		if err := o.ev.Attach(o.Events); err != nil {
			log.Fatalf("%s: -events-out: %v", o.tool, err)
		}
	}
	o.Health = telemetry.NewHealthState()
	o.Health.SetEventsSeq(o.Events.Seq)

	if *o.statusAddr != "" {
		var perf http.Handler
		if o.Perf != nil {
			perf = o.Perf
		}
		o.Mux = telemetry.NewStatusMux(telemetry.StatusBackends{
			Registry:   o.Reg,
			Spans:      o.Col,
			Manifest:   o.Man,
			Timeseries: o.TS.Handler(),
			Perf:       perf,
			Events:     events.Handler(o.Events),
			Health:     o.Health,
		})
		go func(addr string, mux *http.ServeMux) {
			log.Infof("status listening on http://%s/ (/metrics /spans /runinfo /perf /events /debug/pprof)", addr)
			if err := http.ListenAndServe(addr, mux); err != nil {
				log.Errorf("status server: %v", err)
			}
		}(*o.statusAddr, o.Mux)
	}

	o.started = time.Now()
	o.Events.Emit(events.Event{Type: events.RunStart, Name: o.tool})

	ctx := context.Background()
	if o.Col != nil {
		ctx = telemetry.WithCollector(ctx, o.Col)
	}
	ctx, o.root = telemetry.StartSpan(ctx, o.tool)
	return ctx
}

// manifestPath resolves where the manifest goes: the explicit flag, else
// next to the metrics (or spans) output, else nowhere.
func (o *Obs) manifestPath() string {
	if *o.manifestOut != "" {
		return *o.manifestOut
	}
	if base := o.artifactBase(); base != "" {
		return base + ".manifest.json"
	}
	return ""
}

// artifactBase is the common output stem shared by the manifest and the
// profile files: the metrics (or spans) output path with its extensions
// stripped.
func (o *Obs) artifactBase() string {
	base := *o.metricsOut
	if base == "" {
		base = *o.spansOut
	}
	for _, ext := range []string{".json", ".prom", ".txt", ".spans", ".folded"} {
		base = strings.TrimSuffix(base, ext)
	}
	return base
}

// profileBase resolves the profile file stem: the explicit -profile-out,
// else next to the manifest, else the tool name (files in the working
// directory). Deterministic for a given flag set — the capture appends
// ".<kind>.pprof" per profile.
func (o *Obs) profileBase() string {
	if *o.profOut != "" {
		return *o.profOut
	}
	if base := o.artifactBase(); base != "" {
		return base
	}
	if *o.manifestOut != "" {
		return strings.TrimSuffix(*o.manifestOut, ".manifest.json")
	}
	return o.tool
}

// Phase marks a named run phase: it lands in the event stream and the
// /healthz body, and the pprof capture rotates its CPU profile and
// snapshots the heap there when -profile-phases is set. Nil-safe.
func (o *Obs) Phase(name string) {
	if o == nil {
		return
	}
	o.Health.SetPhase(name)
	o.Events.Emit(events.Event{Type: events.RunPhase, Name: name})
	if o.Cap == nil {
		return
	}
	if err := o.Cap.Phase(name); err != nil {
		log.Errorf("profile: phase %s: %v", name, err)
	}
}

// SetPerfResources attaches a resource-summary source (the experiment
// engine's Resources snapshot) to the /perf export.
func (o *Obs) SetPerfResources(f func() any) {
	if o != nil && o.Perf != nil {
		o.Perf.SetResources(f)
	}
}

// Finish ends the root span and writes every requested artifact: metrics
// snapshot, span export, and manifest. Returns the first write error; the
// run's numbers have already been printed by then, so callers typically
// route it to log.Fatalf.
func (o *Obs) Finish() error {
	o.root.End()
	o.Events.Emit(events.Event{
		Type: events.RunFinish,
		Name: o.tool,
		MS:   time.Since(o.started).Milliseconds(),
	})

	var firstErr error
	if *o.metricsOut != "" {
		jsonPath, promPath, err := o.Reg.Snapshot().WriteFiles(*o.metricsOut)
		if err != nil {
			firstErr = err
		} else {
			o.Man.AddOutput(jsonPath, promPath)
			log.Infof("wrote metrics to %s and %s", jsonPath, promPath)
		}
	}
	if *o.spansOut != "" && o.Col != nil {
		jsonPath, foldedPath, err := o.Col.Export().WriteFiles(*o.spansOut)
		if err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil {
			o.Man.AddOutput(jsonPath, foldedPath)
			log.Infof("wrote spans to %s and %s", jsonPath, foldedPath)
		}
	}
	if o.Cap != nil {
		files, err := o.Cap.Stop()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if len(files) > 0 {
			o.Man.AddOutput(files...)
			log.Infof("wrote %d profile(s) to %s.*.pprof", len(files), o.profileBase())
		}
	}
	if *o.perfOut != "" && o.Perf != nil {
		if err := o.Perf.Export().WriteFile(*o.perfOut); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			o.Man.AddOutput(*o.perfOut)
			log.Infof("wrote self-time analysis to %s", *o.perfOut)
		}
	}
	if o.ev.Path() != "" {
		seq := o.Events.Seq()
		if err := o.ev.Close(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			o.Man.AddOutput(o.ev.Path())
			log.Infof("wrote %d event(s) to %s", seq, o.ev.Path())
		}
	}
	o.TS.Stop()
	if *o.tsOut != "" && o.TS != nil {
		se := o.TS.Export()
		if err := se.WriteFile(*o.tsOut); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			o.Man.AddOutput(*o.tsOut)
			log.Infof("wrote %d time-series windows to %s", len(se.Windows), *o.tsOut)
		}
	}

	var snap *telemetry.Snapshot
	if o.Reg != nil {
		s := o.Reg.Snapshot()
		snap = &s
	}
	o.Man.Finish(snap)
	if path := o.manifestPath(); path != "" {
		if err := o.Man.WriteFile(path); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			log.Infof("wrote manifest to %s", path)
		}
	}
	return firstErr
}

// AddOutput records extra files the tool wrote (tables, traces, reports)
// into the manifest.
func (o *Obs) AddOutput(paths ...string) { o.Man.AddOutput(paths...) }
