package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// parse registers the engine flags on a private flag set and parses
// args, returning the flag struct Build consumes.
func parse(t *testing.T, args ...string) *EngineFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	ef := AddEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return ef
}

func TestBuildDegradesWhenCacheDirUnusable(t *testing.T) {
	// A regular file where the cache directory should be: MkdirAll can
	// never succeed, so Build must warn and hand back a cache-less
	// engine rather than failing the run.
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ef := parse(t, "-cache-dir", blocker, "-jobs", "2")
	eng, err := ef.Build(nil)
	if err != nil {
		t.Fatalf("unusable cache dir must degrade, not error: %v", err)
	}
	if eng == nil {
		t.Fatal("no engine returned")
	}
	ef.Finish(eng)
}

func TestBuildResumeStillRequiresCacheDir(t *testing.T) {
	ef := parse(t, "-resume")
	if _, err := ef.Build(nil); err == nil {
		t.Fatal("-resume without -cache-dir must stay an error (explicit user intent)")
	}
}

func TestBuildWiresRobustnessOptions(t *testing.T) {
	dir := t.TempDir()
	ef := parse(t, "-cache-dir", dir, "-retry-backoff", "1ms", "-job-timeout", "5s", "-job-retries", "3")
	eng, err := ef.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng == nil {
		t.Fatal("no engine returned")
	}
	ef.Finish(eng)
	// The journal must exist: Build opened it for the writable dir.
	if _, err := os.Stat(filepath.Join(dir, "journal.jsonl")); err != nil {
		t.Errorf("journal not created: %v", err)
	}
}
