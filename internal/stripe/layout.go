package stripe

import "fmt"

// Layout describes how a protected racetrack stripe is organized into
// regions and where its access ports sit (paper Fig. 2c, Fig. 6).
//
// Slot map, left to right:
//
//	[ left guard+overhead | data domains | right guard+overhead | p-ECC code ]
//
// Data ports are uniformly distributed: port p is aligned with data domain
// p*SegLen when the stripe is at its home position. Shifting the tape right
// by o steps brings data domain p*SegLen+o under port p, for o in
// [0, SegLen-1]. The guard/overhead slots absorb position errors of up to
// GuardLeft/GuardRight steps without destroying data.
type Layout struct {
	DataLen    int // number of data domains (e.g. 64)
	SegLen     int // domains per read/write port (Lseg)
	GuardLeft  int // guard+overhead slots left of the data region
	GuardRight int // guard+overhead slots right of the data region
	PECCLen    int // p-ECC code slots appended at the right end (0 if none)
	PECCPorts  int // read ports over the p-ECC region (0 if none)
}

// NumSegments returns the number of data access ports.
func (l Layout) NumSegments() int { return l.DataLen / l.SegLen }

// MaxShift returns the longest intended single-access shift distance:
// SegLen-1 steps (from one end of a segment to the other).
func (l Layout) MaxShift() int { return l.SegLen - 1 }

// TotalSlots returns the stripe length in slots.
func (l Layout) TotalSlots() int {
	return l.GuardLeft + l.DataLen + l.GuardRight + l.PECCLen
}

// Validate checks structural consistency.
func (l Layout) Validate() error {
	switch {
	case l.DataLen <= 0:
		return fmt.Errorf("stripe: DataLen %d must be positive", l.DataLen)
	case l.SegLen <= 0 || l.DataLen%l.SegLen != 0:
		return fmt.Errorf("stripe: SegLen %d must divide DataLen %d", l.SegLen, l.DataLen)
	case l.GuardLeft < 0 || l.GuardRight < 0 || l.PECCLen < 0 || l.PECCPorts < 0:
		return fmt.Errorf("stripe: negative region size")
	case l.PECCPorts > l.PECCLen:
		return fmt.Errorf("stripe: more p-ECC ports (%d) than code slots (%d)", l.PECCPorts, l.PECCLen)
	}
	return nil
}

// DataSlot returns the physical slot of data domain i at the home position.
func (l Layout) DataSlot(i int) int {
	if i < 0 || i >= l.DataLen {
		panic(fmt.Sprintf("stripe: data index %d out of range", i))
	}
	return l.GuardLeft + i
}

// PortSlot returns the physical slot under data port p. Ports sit over the
// home position of the first domain of each segment.
func (l Layout) PortSlot(p int) int {
	if p < 0 || p >= l.NumSegments() {
		panic(fmt.Sprintf("stripe: port %d out of range", p))
	}
	return l.GuardLeft + p*l.SegLen
}

// PECCSlot returns the physical slot of p-ECC code bit i at home position.
func (l Layout) PECCSlot(i int) int {
	if i < 0 || i >= l.PECCLen {
		panic(fmt.Sprintf("stripe: p-ECC index %d out of range", i))
	}
	return l.GuardLeft + l.DataLen + l.GuardRight + i
}

// PECCPortSlot returns the physical slot under p-ECC read port j. The
// PECCPorts ports read consecutive code bits; they are placed so that the
// port window stays inside the code region across the full legal offset
// range [-(GuardLeft), SegLen-1+GuardRight].
//
// Port j sits over code bit GuardLeft + j at home position: after the
// largest legal left displacement the window has j >= 0 margin, and after
// the largest right displacement (SegLen-1 plus error absorbed by
// GuardRight) the window needs GuardLeft + PECCPorts - 1 + SegLen - 1 +
// GuardRight < PECCLen, which Validate-time sizing in package pecc
// guarantees.
func (l Layout) PECCPortSlot(j int) int {
	if j < 0 || j >= l.PECCPorts {
		panic(fmt.Sprintf("stripe: p-ECC port %d out of range", j))
	}
	return l.GuardLeft + l.DataLen + l.GuardRight + l.GuardLeft + j
}

// SegmentOf returns the port index whose segment contains data domain i.
func (l Layout) SegmentOf(i int) int {
	if i < 0 || i >= l.DataLen {
		panic(fmt.Sprintf("stripe: data index %d out of range", i))
	}
	return i / l.SegLen
}

// OffsetOf returns the in-segment offset of data domain i: the tape offset
// at which domain i is aligned under its segment's port.
func (l Layout) OffsetOf(i int) int {
	if i < 0 || i >= l.DataLen {
		panic(fmt.Sprintf("stripe: data index %d out of range", i))
	}
	return i % l.SegLen
}
