package stripe

import "strings"

// Render returns a two-line ASCII picture of the stripe under the given
// layout: the top line shows region boundaries and port positions, the
// bottom line the slot values. Intended for examples, debugging, and
// teaching — a quick way to see where the tape actually is.
//
//	ports:  |G.........P.......P.......|G.|C..CC.|
//	slots:  ??0110100101110010110010?? ?? 0110011
func Render(s *Stripe, lay Layout) string {
	n := lay.TotalSlots()
	marks := make([]byte, n)
	for i := range marks {
		marks[i] = '.'
	}
	for i := 0; i < lay.GuardLeft; i++ {
		marks[i] = 'g'
	}
	for i := 0; i < lay.GuardRight; i++ {
		marks[lay.GuardLeft+lay.DataLen+i] = 'g'
	}
	for i := 0; i < lay.PECCLen; i++ {
		marks[lay.PECCSlot(i)] = 'c'
	}
	for p := 0; p < lay.NumSegments(); p++ {
		marks[lay.PortSlot(p)] = 'P'
	}
	for j := 0; j < lay.PECCPorts; j++ {
		marks[lay.PECCPortSlot(j)] = 'R'
	}

	var top, bot strings.Builder
	top.WriteString("marks: ")
	bot.WriteString("slots: ")
	for i := 0; i < n; i++ {
		top.WriteByte(marks[i])
		bot.WriteString(s.Peek(i).String())
	}
	if s.Misaligned() {
		bot.WriteString("   [MISALIGNED]")
	}
	return top.String() + "\n" + bot.String()
}
