package stripe

import (
	"strings"
	"testing"
)

func TestRenderShape(t *testing.T) {
	lay := Layout{DataLen: 16, SegLen: 4, GuardLeft: 2, GuardRight: 2, PECCLen: 9, PECCPorts: 2}
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	s := New(lay.TotalSlots())
	out := Render(s, lay)
	lines := strings.Split(out, "\n")
	if len(lines) != 2 {
		t.Fatalf("render has %d lines", len(lines))
	}
	marks, slots := lines[0], lines[1]
	if !strings.HasPrefix(marks, "marks: ") || !strings.HasPrefix(slots, "slots: ") {
		t.Fatal("prefixes missing")
	}
	body := marks[len("marks: "):]
	if len(body) != lay.TotalSlots() {
		t.Fatalf("marks body %d chars, want %d", len(body), lay.TotalSlots())
	}
	// Ports appear at the right count.
	if got := strings.Count(body, "P"); got != lay.NumSegments() {
		t.Errorf("%d data ports rendered, want %d", got, lay.NumSegments())
	}
	if got := strings.Count(body, "R"); got != lay.PECCPorts {
		t.Errorf("%d p-ECC ports rendered, want %d", got, lay.PECCPorts)
	}
	// Fresh stripe: all slots unknown.
	if !strings.Contains(slots, "?") {
		t.Error("fresh stripe should render unknowns")
	}
}

func TestRenderMisaligned(t *testing.T) {
	lay := Layout{DataLen: 8, SegLen: 4, GuardLeft: 1, GuardRight: 1}
	s := New(lay.TotalSlots())
	s.SetMisaligned(true)
	if !strings.Contains(Render(s, lay), "MISALIGNED") {
		t.Error("misalignment not flagged")
	}
}

func TestRenderValues(t *testing.T) {
	lay := Layout{DataLen: 4, SegLen: 2, GuardLeft: 0, GuardRight: 0}
	s := New(lay.TotalSlots())
	s.LoadSlots([]Bit{One, Zero, One, One})
	out := Render(s, lay)
	if !strings.Contains(out, "1011") {
		t.Errorf("values not rendered:\n%s", out)
	}
}
