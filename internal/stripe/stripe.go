// Package stripe models a racetrack-memory stripe at the architecture level
// (paper §2.1, Fig. 2): a tape of magnetic domains pinned at notch positions,
// moved past fixed access ports by shift operations.
//
// The stripe is represented by its physical slots. A shift moves domain
// values through the slots; values pushed past either end of the stripe are
// physically destroyed (this is why guard domains and the overhead region
// exist). The package models exactly the physical substrate; the controller
// logic that decides shift distances, injects position errors, and runs
// p-ECC protection lives in internal/shiftctrl and internal/pecc.
package stripe

import "fmt"

// Bit is a tri-state domain value. Unknown models the indeterminate readout
// of a misaligned (stop-in-middle) stripe and the uninitialized content of
// overhead-region domains.
type Bit byte

const (
	Zero Bit = iota
	One
	Unknown
)

// String implements fmt.Stringer.
func (b Bit) String() string {
	switch b {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "?"
	}
}

// FromBool converts a bool to a Bit.
func FromBool(v bool) Bit {
	if v {
		return One
	}
	return Zero
}

// Stripe is one racetrack nanowire. The zero value is unusable; construct
// with New.
type Stripe struct {
	slots []Bit
	// misaligned records a stop-in-middle condition: domain walls are
	// pinned between notches and every port reads an indeterminate value
	// until a corrective shift completes.
	misaligned bool
	// shifts counts completed shift operations (for statistics).
	shifts uint64
	// moved counts total steps moved, in either direction.
	moved uint64
}

// New returns a stripe with n physical slots, all initialized to Unknown
// (freshly fabricated domains have arbitrary magnetization).
func New(n int) *Stripe {
	if n <= 0 {
		panic("stripe: non-positive slot count")
	}
	s := &Stripe{slots: make([]Bit, n)}
	for i := range s.slots {
		s.slots[i] = Unknown
	}
	return s
}

// Len returns the number of physical slots.
func (s *Stripe) Len() int { return len(s.slots) }

// Misaligned reports whether the stripe is in a stop-in-middle state.
func (s *Stripe) Misaligned() bool { return s.misaligned }

// SetMisaligned marks or clears the stop-in-middle condition.
func (s *Stripe) SetMisaligned(v bool) { s.misaligned = v }

// Shifts returns the number of shift operations performed.
func (s *Stripe) Shifts() uint64 { return s.shifts }

// StepsMoved returns the total steps moved across all shifts.
func (s *Stripe) StepsMoved() uint64 { return s.moved }

// Read returns the value visible at physical slot i. While the stripe is
// misaligned every read returns Unknown, matching the indeterminate sensing
// of a domain wall stopped between notches.
func (s *Stripe) Read(i int) Bit {
	s.checkSlot(i)
	if s.misaligned {
		return Unknown
	}
	return s.slots[i]
}

// Peek returns the value at slot i ignoring misalignment. It is an oracle
// for tests and fault-injection bookkeeping, not an operation hardware can
// perform.
func (s *Stripe) Peek(i int) Bit {
	s.checkSlot(i)
	return s.slots[i]
}

// Write stores v at physical slot i (the aligned domain under a read/write
// port). Writing requires alignment; writing a misaligned stripe panics, as
// the architecture never issues writes while a shift is outstanding.
func (s *Stripe) Write(i int, v Bit) {
	s.checkSlot(i)
	if s.misaligned {
		panic("stripe: write while misaligned")
	}
	s.slots[i] = v
}

func (s *Stripe) checkSlot(i int) {
	if i < 0 || i >= len(s.slots) {
		panic(fmt.Sprintf("stripe: slot %d out of range [0,%d)", i, len(s.slots)))
	}
}

// ShiftRight moves every domain value k slots toward higher indices. Values
// pushed past the last slot are destroyed. Vacated slots at the low end take
// fill[i] if provided (the shift-based write mechanism supplies reference
// domain values there), otherwise Unknown. k must be >= 0.
func (s *Stripe) ShiftRight(k int, fill []Bit) {
	s.shift(k, fill, true)
}

// ShiftLeft moves every domain value k slots toward lower indices, with the
// symmetric fill applied at the high end.
func (s *Stripe) ShiftLeft(k int, fill []Bit) {
	s.shift(k, fill, false)
}

func (s *Stripe) shift(k int, fill []Bit, right bool) {
	if k < 0 {
		panic("stripe: negative shift distance")
	}
	if len(fill) > k {
		panic("stripe: fill longer than shift distance")
	}
	n := len(s.slots)
	if k > 0 {
		s.shifts++
		s.moved += uint64(k)
	}
	if k >= n {
		// Entire contents destroyed.
		for i := range s.slots {
			s.slots[i] = Unknown
		}
		k = n
	} else if right {
		copy(s.slots[k:], s.slots[:n-k])
	} else {
		copy(s.slots[:n-k], s.slots[k:])
	}
	// Fill vacated slots.
	for i := 0; i < k && i < n; i++ {
		v := Unknown
		if i < len(fill) {
			v = fill[i]
		}
		if right {
			// fill[0] enters first and ends up deepest.
			s.slots[k-1-i] = v
		} else {
			s.slots[n-k+i] = v
		}
	}
}

// Snapshot returns a copy of all slot values (oracle for tests).
func (s *Stripe) Snapshot() []Bit {
	out := make([]Bit, len(s.slots))
	copy(out, s.slots)
	return out
}

// LoadSlots overwrites all slots from vals; len(vals) must equal Len. It
// models test-equipment initialization, not a normal memory operation.
func (s *Stripe) LoadSlots(vals []Bit) {
	if len(vals) != len(s.slots) {
		panic("stripe: LoadSlots length mismatch")
	}
	copy(s.slots, vals)
}
