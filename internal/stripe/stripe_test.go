package stripe

import (
	"testing"
	"testing/quick"

	"racetrack/hifi/internal/sim"
)

func loadPattern(s *Stripe, start int, bits ...Bit) {
	snap := s.Snapshot()
	copy(snap[start:], bits)
	s.LoadSlots(snap)
}

func TestNewAllUnknown(t *testing.T) {
	s := New(8)
	for i := 0; i < 8; i++ {
		if s.Read(i) != Unknown {
			t.Fatalf("slot %d = %v, want Unknown", i, s.Read(i))
		}
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := New(4)
	s.Write(2, One)
	if got := s.Read(2); got != One {
		t.Errorf("Read(2) = %v, want One", got)
	}
	s.Write(2, Zero)
	if got := s.Read(2); got != Zero {
		t.Errorf("Read(2) = %v, want Zero", got)
	}
}

func TestShiftRightMovesValues(t *testing.T) {
	s := New(6)
	loadPattern(s, 0, One, Zero, Zero, Zero, Zero, Zero)
	s.ShiftRight(2, nil)
	if s.Read(2) != One {
		t.Errorf("value did not move right: %v", s.Snapshot())
	}
	if s.Read(0) != Unknown || s.Read(1) != Unknown {
		t.Errorf("vacated slots not Unknown: %v", s.Snapshot())
	}
}

func TestShiftLeftMovesValues(t *testing.T) {
	s := New(6)
	loadPattern(s, 5, One)
	s.ShiftLeft(3, nil)
	if s.Read(2) != One {
		t.Errorf("value did not move left: %v", s.Snapshot())
	}
	if s.Read(5) != Unknown {
		t.Errorf("vacated slot not Unknown: %v", s.Snapshot())
	}
}

func TestShiftDestroysAtEdge(t *testing.T) {
	s := New(4)
	loadPattern(s, 3, One)
	s.ShiftRight(1, nil)
	for i := 0; i < 4; i++ {
		if s.Read(i) == One {
			t.Fatalf("value at slot %d survived falling off the end", i)
		}
	}
}

func TestShiftFill(t *testing.T) {
	s := New(5)
	s.ShiftRight(2, []Bit{One, Zero})
	// fill[0] enters first and is pushed deepest (slot 1), fill[1] at slot 0.
	if s.Read(1) != One || s.Read(0) != Zero {
		t.Errorf("fill order wrong: %v", s.Snapshot())
	}
	s2 := New(5)
	s2.ShiftLeft(2, []Bit{One, Zero})
	if s2.Read(3) != One || s2.Read(4) != Zero {
		t.Errorf("left fill order wrong: %v", s2.Snapshot())
	}
}

func TestShiftFillTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-long fill did not panic")
		}
	}()
	New(5).ShiftRight(1, []Bit{One, Zero})
}

func TestShiftWholeStripe(t *testing.T) {
	s := New(3)
	loadPattern(s, 0, One, One, One)
	s.ShiftRight(5, nil)
	for i := 0; i < 3; i++ {
		if s.Read(i) != Unknown {
			t.Errorf("slot %d survived a full-length shift", i)
		}
	}
}

func TestShiftNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative shift did not panic")
		}
	}()
	New(4).ShiftRight(-1, nil)
}

func TestMisalignedReads(t *testing.T) {
	s := New(4)
	s.Write(1, One)
	s.SetMisaligned(true)
	if s.Read(1) != Unknown {
		t.Error("misaligned stripe should read Unknown")
	}
	if s.Peek(1) != One {
		t.Error("Peek should bypass misalignment")
	}
	s.SetMisaligned(false)
	if s.Read(1) != One {
		t.Error("realigned stripe should read stored value")
	}
}

func TestWriteWhileMisalignedPanics(t *testing.T) {
	s := New(4)
	s.SetMisaligned(true)
	defer func() {
		if recover() == nil {
			t.Fatal("write while misaligned did not panic")
		}
	}()
	s.Write(0, One)
}

func TestShiftCounters(t *testing.T) {
	s := New(8)
	s.ShiftRight(3, nil)
	s.ShiftLeft(2, nil)
	s.ShiftRight(0, nil)
	if s.Shifts() != 2 {
		t.Errorf("Shifts = %d, want 2 (zero-distance shifts don't count)", s.Shifts())
	}
	if s.StepsMoved() != 5 {
		t.Errorf("StepsMoved = %d, want 5", s.StepsMoved())
	}
}

func TestQuickShiftRoundTrip(t *testing.T) {
	// Shifting right then left by the same distance restores interior
	// values (those that never reached an edge).
	r := sim.NewRNG(1)
	f := func(kRaw uint8) bool {
		k := int(kRaw % 8)
		s := New(32)
		vals := make([]Bit, 32)
		for i := range vals {
			vals[i] = Bit(r.Intn(2))
		}
		s.LoadSlots(vals)
		s.ShiftRight(k, nil)
		s.ShiftLeft(k, nil)
		for i := 0; i < 32-k; i++ {
			if s.Read(i) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftPreservesInteriorOrder(t *testing.T) {
	r := sim.NewRNG(2)
	f := func(kRaw uint8) bool {
		k := int(kRaw % 6)
		s := New(24)
		vals := make([]Bit, 24)
		for i := range vals {
			vals[i] = Bit(r.Intn(2))
		}
		s.LoadSlots(vals)
		s.ShiftRight(k, nil)
		for i := 0; i+k < 24; i++ {
			if s.Peek(i+k) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitString(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || Unknown.String() != "?" {
		t.Error("Bit.String values wrong")
	}
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Error("FromBool wrong")
	}
}

func defaultLayout() Layout {
	return Layout{DataLen: 64, SegLen: 8, GuardLeft: 2, GuardRight: 2, PECCLen: 13, PECCPorts: 2}
}

func TestLayoutValidate(t *testing.T) {
	if err := defaultLayout().Validate(); err != nil {
		t.Fatalf("default layout invalid: %v", err)
	}
	bad := []Layout{
		{DataLen: 0, SegLen: 1},
		{DataLen: 64, SegLen: 7}, // doesn't divide
		{DataLen: 64, SegLen: 8, GuardLeft: -1},
		{DataLen: 64, SegLen: 8, PECCLen: 1, PECCPorts: 2},
	}
	for i, l := range bad {
		if l.Validate() == nil {
			t.Errorf("case %d: Validate accepted invalid layout %+v", i, l)
		}
	}
}

func TestLayoutGeometry(t *testing.T) {
	l := defaultLayout()
	if l.NumSegments() != 8 {
		t.Errorf("NumSegments = %d", l.NumSegments())
	}
	if l.MaxShift() != 7 {
		t.Errorf("MaxShift = %d", l.MaxShift())
	}
	if l.TotalSlots() != 2+64+2+13 {
		t.Errorf("TotalSlots = %d", l.TotalSlots())
	}
	if l.DataSlot(0) != 2 || l.DataSlot(63) != 65 {
		t.Error("DataSlot mapping wrong")
	}
	if l.PortSlot(0) != 2 || l.PortSlot(7) != 2+56 {
		t.Error("PortSlot mapping wrong")
	}
	if l.PECCSlot(0) != 68 {
		t.Errorf("PECCSlot(0) = %d", l.PECCSlot(0))
	}
	if l.PECCPortSlot(0) != 68+2 || l.PECCPortSlot(1) != 68+3 {
		t.Errorf("PECCPortSlot = %d,%d", l.PECCPortSlot(0), l.PECCPortSlot(1))
	}
}

func TestLayoutSegmentMath(t *testing.T) {
	l := defaultLayout()
	for i := 0; i < l.DataLen; i++ {
		seg, off := l.SegmentOf(i), l.OffsetOf(i)
		if seg*l.SegLen+off != i {
			t.Fatalf("segment math broken at %d: seg=%d off=%d", i, seg, off)
		}
		if off < 0 || off >= l.SegLen {
			t.Fatalf("offset out of range at %d", i)
		}
	}
}

func TestLayoutAlignment(t *testing.T) {
	// Shifting the tape right by OffsetOf(i) steps brings domain i under
	// its port: the domain's home slot plus the offset equals the port
	// slot plus the offset... verified via physical simulation.
	l := defaultLayout()
	s := New(l.TotalSlots())
	// Mark data domain 19 (segment 2, offset 3).
	vals := s.Snapshot()
	for i := range vals {
		vals[i] = Zero
	}
	vals[l.DataSlot(19)] = One
	s.LoadSlots(vals)
	// To read domain 19 at port 2 the tape must move LEFT by 3 (domain
	// moves from home slot 21 to port slot 18).
	off := l.OffsetOf(19)
	s.ShiftLeft(off, nil)
	if got := s.Read(l.PortSlot(l.SegmentOf(19))); got != One {
		t.Errorf("domain 19 not visible at its port after aligning: %v", got)
	}
}

func TestLayoutPanics(t *testing.T) {
	l := defaultLayout()
	for name, f := range map[string]func(){
		"DataSlot":     func() { l.DataSlot(64) },
		"PortSlot":     func() { l.PortSlot(8) },
		"PECCSlot":     func() { l.PECCSlot(13) },
		"PECCPortSlot": func() { l.PECCPortSlot(2) },
		"SegmentOf":    func() { l.SegmentOf(-1) },
		"OffsetOf":     func() { l.OffsetOf(64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out-of-range did not panic", name)
				}
			}()
			f()
		}()
	}
}
