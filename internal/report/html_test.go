package report

import (
	"bytes"
	"strings"
	"testing"

	"racetrack/hifi/internal/bench"
	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/fidelity"
	"racetrack/hifi/internal/profile"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/timeseries"
)

func sampleData() Data {
	tab := experiments.Table{
		Title:  "Fig X: demo",
		Note:   "a note",
		Header: []string{"workload", "value"},
	}
	tab.AddRow("canneal <b>", 1.25)
	sc := fidelity.Evaluate([]fidelity.Anchor{
		{ID: "x/v", Experiment: "figx", Source: "Fig X", Kind: fidelity.AtMost,
			Col: "value", Want: 2},
	}, map[string]experiments.Table{"figx": tab})
	se := timeseries.Series{Schema: timeseries.SchemaV1, Every: 4, Ticks: 8,
		Windows: []timeseries.Window{
			{Index: 0, StartTick: 0, EndTick: 4, Marks: []string{"setup"},
				Counters: []telemetry.SeriesValue{{Name: "hifi_x_total", Value: 3}}},
			{Index: 1, StartTick: 4, EndTick: 8,
				Counters: []telemetry.SeriesValue{{Name: "hifi_x_total", Value: 5}}},
		}}
	spans := telemetry.SpanExport{Spans: []telemetry.SpanRecord{
		{ID: 1, Name: "run", StartNS: 0, DurNS: 1000000},
		{ID: 2, Parent: 1, Name: "phase & co", StartNS: 100, DurNS: 500000},
	}}
	perf := profile.Analyze(spans)
	perf.Heap = []profile.Hotspot{
		{Func: "racetrack/hifi/internal/memsim.Run", AllocBytes: 3 << 20, AllocObjects: 42, InUseBytes: 1 << 10},
	}
	tr := &bench.Trajectory{
		Snapshots: []bench.SnapshotMeta{
			{Path: "BENCH_a.json", DateUTC: "2026-01-01T00:00:00Z"},
			{Path: "BENCH_b.json", DateUTC: "2026-02-01T00:00:00Z"},
		},
		Series: []bench.Series{{Name: "memsim-replay", Points: []bench.Point{
			{DateUTC: "2026-01-01T00:00:00Z", NsPerOp: 1e6, AllocsPerOp: 100},
			{DateUTC: "2026-02-01T00:00:00Z", NsPerOp: 5e5, AllocsPerOp: 90},
		}}},
	}
	rs := &engine.ResourceSummary{
		Jobs: 12, Executed: 6, CacheHits: 6,
		JobWallMS: 420, JobCPUMS: 400, AllocBytes: 7 << 20, Mallocs: 9000, GCCycles: 3,
		MaxJobWallMS: 99, MaxJobLabel: "fig10/pecc<s>",
	}
	return Data{
		Title:        "demo report",
		Params:       []Param{{"scaled", "true"}, {"seed", "1"}},
		Keys:         []string{"figx"},
		Tables:       map[string]experiments.Table{"figx": tab},
		Scorecard:    &sc,
		Series:       &se,
		Spans:        &spans,
		Perf:         perf,
		Trajectory:   tr,
		Resources:    rs,
		ManifestJSON: []byte(`{"tool":"test"}`),
	}
}

func TestHTMLSections(t *testing.T) {
	out := string(HTML(sampleData()))
	for _, want := range []string{
		"<!DOCTYPE html>",
		"demo report",
		"Fig X: demo",
		"Paper-fidelity scorecard",
		"badge pass\">1 pass",
		"Windowed time-series",
		"hifi_x_total",
		"<polyline",
		"Span flamegraph",
		"phase &amp; co",
		"Run manifest",
		`{&#34;tool&#34;:&#34;test&#34;}`,
		"id=\"performance\"",
		"Bench trajectory",
		"memsim-replay",
		"0.50x",
		"Span self-time",
		"Per-job resources",
		"fig10/pecc&lt;s&gt;",
		"Heap hotspots",
		"memsim.Run",
		"3.00 MiB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Cell content must be escaped, not interpreted.
	if strings.Contains(out, "canneal <b>") {
		t.Error("unescaped table cell")
	}
	if strings.Contains(out, "fig10/pecc<s>") {
		t.Error("unescaped job label")
	}
}

func TestHTMLSelfContained(t *testing.T) {
	out := string(HTML(sampleData()))
	for _, banned := range []string{"<script", "src=", "href=\"http", "@import", "url("} {
		if strings.Contains(out, banned) {
			t.Errorf("report references external content: found %q", banned)
		}
	}
}

func TestHTMLDeterministic(t *testing.T) {
	d := sampleData()
	first := HTML(d)
	for i := 0; i < 5; i++ {
		if !bytes.Equal(HTML(d), first) {
			t.Fatalf("render %d differs", i)
		}
	}
}

func TestHTMLOptionalSectionsOmitted(t *testing.T) {
	d := sampleData()
	d.Scorecard, d.Series, d.Spans, d.ManifestJSON = nil, nil, nil, nil
	d.Perf, d.Trajectory, d.Resources = nil, nil, nil
	out := string(HTML(d))
	for _, absent := range []string{"fidelity", "timeseries", "flamegraph", "manifest", "performance"} {
		if strings.Contains(out, "id=\""+absent+"\"") {
			t.Errorf("section %q rendered without data", absent)
		}
	}
	if !strings.Contains(out, "Fig X: demo") {
		t.Error("tables must still render")
	}
}
