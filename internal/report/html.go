// Package report renders one run of the experiment suite as a single
// self-contained HTML document: every table, the fidelity scorecard,
// per-window time-series charts, a span flamegraph, and the run
// manifest. Everything is inlined — one <style> block and hand-built
// SVG, no scripts, no external assets — so the file can be archived,
// attached to CI, or mailed around and still render identically.
package report

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"html"
	"sort"
	"strings"

	"racetrack/hifi/internal/bench"
	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/fidelity"
	"racetrack/hifi/internal/profile"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/timeseries"
)

// Param is one generation parameter shown in the report header.
type Param struct {
	Key, Value string
}

// Data is everything one report embeds. Optional sections (Scorecard,
// Series, Spans, Manifest) are omitted from the output when nil/empty,
// so a tables-only run still renders.
type Data struct {
	Title  string
	Params []Param
	// Keys orders the experiment sections; each must be in Tables.
	Keys   []string
	Tables map[string]experiments.Table

	Scorecard *fidelity.Scorecard
	Series    *timeseries.Series
	Spans     *telemetry.SpanExport

	// Performance section inputs: the span self-time analysis (with heap
	// hotspots), the committed bench-snapshot trajectory, and the sweep's
	// per-job resource summary. Any of them may be nil; the section is
	// omitted when all three are.
	Perf       *profile.Export
	Trajectory *bench.Trajectory
	Resources  *engine.ResourceSummary

	// ManifestJSON is the rendered run manifest, shown verbatim.
	ManifestJSON []byte
}

// hasPerf reports whether the Performance section has anything to show.
func (d Data) hasPerf() bool {
	return d.Perf != nil || d.Trajectory != nil || d.Resources != nil
}

// HTML renders the report. Identical Data yields identical bytes: all
// map iteration is over sorted keys and no clocks are read here.
func HTML(d Data) []byte {
	var b bytes.Buffer
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", esc(d.Title))
	b.WriteString("<style>\n" + styles + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(d.Title))

	if len(d.Params) > 0 {
		b.WriteString("<p class=\"params\">")
		for i, p := range d.Params {
			if i > 0 {
				b.WriteString(" &middot; ")
			}
			fmt.Fprintf(&b, "<b>%s</b>=%s", esc(p.Key), esc(p.Value))
		}
		b.WriteString("</p>\n")
	}
	writeTOC(&b, d)
	if d.Scorecard != nil {
		writeScorecard(&b, *d.Scorecard)
	}
	for _, k := range d.Keys {
		tab, ok := d.Tables[k]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "<section id=\"%s\">\n<h2>%s</h2>\n", esc(k), esc(tab.Title))
		if tab.Note != "" {
			fmt.Fprintf(&b, "<p class=\"note\">%s</p>\n", esc(tab.Note))
		}
		writeTable(&b, tab)
		b.WriteString("</section>\n")
	}
	if d.Series != nil && len(d.Series.Windows) > 0 {
		writeTimeseries(&b, *d.Series)
	}
	if d.Spans != nil && (len(d.Spans.Spans) > 0 || len(d.Spans.InFlight) > 0) {
		writeFlamegraph(&b, *d.Spans)
	}
	if d.hasPerf() {
		writePerformance(&b, d)
	}
	if len(d.ManifestJSON) > 0 {
		b.WriteString("<section id=\"manifest\">\n<h2>Run manifest</h2>\n<pre class=\"manifest\">")
		b.WriteString(esc(string(d.ManifestJSON)))
		b.WriteString("</pre>\n</section>\n")
	}
	b.WriteString("</body>\n</html>\n")
	return b.Bytes()
}

func esc(s string) string { return html.EscapeString(s) }

const styles = `body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:70em;padding:0 1em;color:#1a1a2e}
h1{border-bottom:2px solid #1a1a2e;padding-bottom:.3em}
h2{margin-top:2em}
.params,.note{color:#555}
table{border-collapse:collapse;margin:.5em 0;font-variant-numeric:tabular-nums}
th,td{border:1px solid #ccc;padding:.25em .6em;text-align:right}
th:first-child,td:first-child{text-align:left}
th{background:#eef}
.toc a{margin-right:.8em}
.badge{display:inline-block;padding:0 .5em;border-radius:.6em;color:#fff;font-size:12px}
.pass{background:#2a7d2a}.warn{background:#b8860b}.fail{background:#b22222}.skip{background:#888}
tr.fail td{background:#fde8e8}tr.warn td{background:#fdf6e3}
.chart{margin:.4em 1em .4em 0}
.charts{display:flex;flex-wrap:wrap}
svg text{font:10px system-ui,sans-serif}
pre.manifest{background:#f6f6f6;border:1px solid #ddd;padding:1em;overflow-x:auto;font-size:12px}
`

func writeTOC(b *bytes.Buffer, d Data) {
	b.WriteString("<p class=\"toc\">")
	if d.Scorecard != nil {
		b.WriteString("<a href=\"#fidelity\">fidelity</a>")
	}
	for _, k := range d.Keys {
		if _, ok := d.Tables[k]; ok {
			fmt.Fprintf(b, "<a href=\"#%s\">%s</a>", esc(k), esc(k))
		}
	}
	if d.Series != nil && len(d.Series.Windows) > 0 {
		b.WriteString("<a href=\"#timeseries\">timeseries</a>")
	}
	if d.Spans != nil && len(d.Spans.Spans) > 0 {
		b.WriteString("<a href=\"#flamegraph\">flamegraph</a>")
	}
	if d.hasPerf() {
		b.WriteString("<a href=\"#performance\">performance</a>")
	}
	if len(d.ManifestJSON) > 0 {
		b.WriteString("<a href=\"#manifest\">manifest</a>")
	}
	b.WriteString("</p>\n")
}

func writeTable(b *bytes.Buffer, tab experiments.Table) {
	b.WriteString("<table>\n<tr>")
	for _, h := range tab.Header {
		fmt.Fprintf(b, "<th>%s</th>", esc(h))
	}
	b.WriteString("</tr>\n")
	for _, row := range tab.Rows {
		b.WriteString("<tr>")
		for _, c := range row {
			fmt.Fprintf(b, "<td>%s</td>", esc(c))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
}

func writeScorecard(b *bytes.Buffer, sc fidelity.Scorecard) {
	b.WriteString("<section id=\"fidelity\">\n<h2>Paper-fidelity scorecard</h2>\n")
	fmt.Fprintf(b, "<p><span class=\"badge pass\">%d pass</span> <span class=\"badge warn\">%d warn</span> "+
		"<span class=\"badge fail\">%d fail</span> <span class=\"badge skip\">%d skip</span></p>\n",
		sc.Pass, sc.Warn, sc.Fail, sc.Skip)
	b.WriteString("<table>\n<tr><th>anchor</th><th>status</th><th>measured</th><th>want</th>" +
		"<th>rel err</th><th>rows</th><th>source</th><th>detail</th></tr>\n")
	for _, r := range sc.Anchors {
		fmt.Fprintf(b, "<tr class=\"%s\"><td>%s</td><td><span class=\"badge %s\">%s</span></td>",
			r.Status, esc(r.ID), r.Status, r.Status)
		fmt.Fprintf(b, "<td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
			num(r.Measured), num(r.Want), num(r.RelErr), r.Rows, esc(r.Source), esc(r.Detail))
	}
	b.WriteString("</table>\n</section>\n")
}

func num(v float64) string {
	if v == 0 {
		return "0"
	}
	return fmt.Sprintf("%.4g", v)
}

// writeTimeseries renders one small-multiple line chart per counter
// (per-window delta) and per histogram (per-window mean), in sorted
// name order.
func writeTimeseries(b *bytes.Buffer, se timeseries.Series) {
	counters := map[string]bool{}
	hists := map[string]bool{}
	for _, w := range se.Windows {
		for _, c := range w.Counters {
			counters[c.Name] = true
		}
		for _, h := range w.Histograms {
			hists[h.Name] = true
		}
	}
	b.WriteString("<section id=\"timeseries\">\n<h2>Windowed time-series</h2>\n")
	fmt.Fprintf(b, "<p class=\"note\">%d windows of %d simulated accesses each (%d ticks total, %d windows dropped). "+
		"Counters plot per-window deltas; histograms plot per-window means.</p>\n",
		len(se.Windows), se.Every, se.Ticks, se.Dropped)
	b.WriteString("<div class=\"charts\">\n")
	for _, name := range sorted(counters) {
		ticks, deltas := se.CounterSeries(name)
		writeChart(b, name, ticks, deltas)
	}
	for _, name := range sorted(hists) {
		ticks, means := se.HistMeanSeries(name)
		writeChart(b, name+" (mean)", ticks, means)
	}
	b.WriteString("</div>\n</section>\n")
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeChart emits one 300x110 SVG line chart: series name on top,
// min/max labels on the y extremes, last tick on the x axis.
func writeChart(b *bytes.Buffer, name string, ticks []int64, vals []float64) {
	const w, h = 300, 110
	const left, right, top, bottom = 8, 8, 16, 14
	pw, ph := float64(w-left-right), float64(h-top-bottom)
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var pts strings.Builder
	n := len(vals)
	for i, v := range vals {
		x := float64(left)
		if n > 1 {
			x += pw * float64(i) / float64(n-1)
		}
		y := float64(top) + ph*(1-(v-lo)/span)
		fmt.Fprintf(&pts, "%.1f,%.1f ", x, y)
	}
	fmt.Fprintf(b, "<svg class=\"chart\" width=\"%d\" height=\"%d\" role=\"img\" aria-label=\"%s\">\n",
		w, h, esc(name))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"11\">%s</text>\n", left, esc(name))
	fmt.Fprintf(b, "<rect x=\"%d\" y=\"%d\" width=\"%.0f\" height=\"%.0f\" fill=\"#fafaff\" stroke=\"#ddd\"/>\n",
		left, top, pw, ph)
	fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"#3455a4\" stroke-width=\"1.5\"/>\n",
		strings.TrimSpace(pts.String()))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" fill=\"#777\">%s .. %s</text>\n",
		left, h-3, num(lo), num(hi))
	if n > 0 {
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" fill=\"#777\" text-anchor=\"end\">tick %d</text>\n",
			w-right, h-3, ticks[n-1])
	}
	b.WriteString("</svg>\n")
}

// writeFlamegraph lays spans out icicle-style: time on x (relative to
// the earliest span), depth on y, one tooltip per rect. Self-contained
// SVG — the interactive zoom of flamegraph.pl is traded for zero
// scripts.
func writeFlamegraph(b *bytes.Buffer, e telemetry.SpanExport) {
	all := append(append([]telemetry.SpanRecord{}, e.Spans...), e.InFlight...)
	children := map[uint64][]telemetry.SpanRecord{}
	ids := map[uint64]bool{}
	for _, r := range all {
		ids[r.ID] = true
	}
	var roots []telemetry.SpanRecord
	minNS, maxNS := all[0].StartNS, all[0].StartNS+all[0].DurNS
	for _, r := range all {
		if r.Parent != 0 && ids[r.Parent] {
			children[r.Parent] = append(children[r.Parent], r)
		} else {
			roots = append(roots, r)
		}
		if r.StartNS < minNS {
			minNS = r.StartNS
		}
		if end := r.StartNS + r.DurNS; end > maxNS {
			maxNS = end
		}
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i].StartNS < c[j].StartNS })
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].StartNS < roots[j].StartNS })
	span := maxNS - minNS
	if span <= 0 {
		span = 1
	}

	const width, rowH = 960, 18
	depthOf := func() int {
		max := 1
		var walk func(r telemetry.SpanRecord, d int)
		walk = func(r telemetry.SpanRecord, d int) {
			if d > max {
				max = d
			}
			for _, c := range children[r.ID] {
				walk(c, d+1)
			}
		}
		for _, r := range roots {
			walk(r, 1)
		}
		return max
	}()
	height := depthOf*rowH + 4

	b.WriteString("<section id=\"flamegraph\">\n<h2>Span flamegraph</h2>\n")
	fmt.Fprintf(b, "<p class=\"note\">%d spans over %s; hover a block for its name, duration, and attributes.</p>\n",
		len(all), fmt.Sprintf("%.3gs", float64(span)/1e9))
	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\">\n", width, height)
	var draw func(r telemetry.SpanRecord, depth int)
	draw = func(r telemetry.SpanRecord, depth int) {
		x := float64(width) * float64(r.StartNS-minNS) / float64(span)
		w := float64(width) * float64(r.DurNS) / float64(span)
		if w < 0.5 {
			w = 0.5
		}
		y := (depth - 1) * rowH
		label := fmt.Sprintf("%s %.3gms", r.Name, float64(r.DurNS)/1e6)
		title := label
		for _, a := range r.Attrs {
			title += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		if r.Running {
			title += " (running)"
		}
		fmt.Fprintf(b, "<g><rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\" stroke=\"#fff\"/>"+
			"<title>%s</title>", x, y, w, rowH-2, spanColor(r.Name), esc(title))
		// Label only blocks wide enough to hold text (~6px/char).
		if int(w)/6 > len(r.Name) {
			fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%d\">%s</text>", x+3, y+12, esc(r.Name))
		}
		b.WriteString("</g>\n")
		for _, c := range children[r.ID] {
			draw(c, depth+1)
		}
	}
	for _, r := range roots {
		draw(r, 1)
	}
	b.WriteString("</svg>\n</section>\n")
}

// spanColor maps a span name to a stable warm hue, so identical trees
// render identically and repeated names share a color.
func spanColor(name string) string {
	h := fnv.New32a()
	h.Write([]byte(name))
	return fmt.Sprintf("hsl(%d,65%%,72%%)", h.Sum32()%60)
}

// perfTopSpans bounds the self-time table: the head of the attribution
// is the answer; the tail is noise.
const perfTopSpans = 10

// writePerformance renders the Performance section: the bench-snapshot
// trajectory (chart + first-vs-last deltas), the top self-time spans,
// the sweep's per-job resource summary, and the heap hotspots. Pure
// function of d, like every other section.
func writePerformance(b *bytes.Buffer, d Data) {
	b.WriteString("<section id=\"performance\">\n<h2>Performance</h2>\n")

	if tr := d.Trajectory; tr != nil && len(tr.Snapshots) > 0 {
		first, last := tr.Snapshots[0], tr.Snapshots[len(tr.Snapshots)-1]
		b.WriteString("<h3>Bench trajectory</h3>\n")
		fmt.Fprintf(b, "<p class=\"note\">%d snapshots, %s to %s; lines plot ns/op relative to each "+
			"benchmark's first snapshot (log scale, clamped to 0.25x..4x).</p>\n",
			len(tr.Snapshots), esc(trimDate(first.DateUTC)), esc(trimDate(last.DateUTC)))
		// The SVG is generated, not user text; embed it unescaped.
		b.WriteString(tr.SVG())
		if deltas := tr.Deltas(); len(deltas) > 0 {
			b.WriteString("<table>\n<tr><th>benchmark</th><th>first ns/op</th><th>last ns/op</th>" +
				"<th>ratio</th><th>first allocs/op</th><th>last allocs/op</th></tr>\n")
			for _, dd := range deltas {
				fmt.Fprintf(b, "<tr><td>%s</td><td>%.0f</td><td>%.0f</td><td>%.2fx</td><td>%d</td><td>%d</td></tr>\n",
					esc(dd.Name), dd.Old, dd.New, dd.Ratio, dd.OldAllocs, dd.NewAllocs)
			}
			b.WriteString("</table>\n")
		}
	}

	if p := d.Perf; p != nil && len(p.Spans) > 0 {
		fmt.Fprintf(b, "<h3>Span self-time (top %d)</h3>\n", perfTopSpans)
		fmt.Fprintf(b, "<p class=\"note\">Self time is a span's duration minus its children's; the %d rows "+
			"below account for the largest share of %.3gs of instrumented self time.</p>\n",
			perfTopSpans, float64(p.SelfNS)/1e9)
		b.WriteString("<table>\n<tr><th>span</th><th>count</th><th>total ms</th><th>self ms</th><th>self share</th></tr>\n")
		for _, s := range p.Top(perfTopSpans) {
			share := 0.0
			if p.SelfNS > 0 {
				share = float64(s.SelfNS) / float64(p.SelfNS)
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.1f%%</td></tr>\n",
				esc(s.Name), s.Count, float64(s.TotalNS)/1e6, float64(s.SelfNS)/1e6, 100*share)
		}
		b.WriteString("</table>\n")
		if len(p.Groups) > 0 {
			b.WriteString("<table>\n<tr><th>group</th><th>spans</th><th>self ms</th><th>share</th></tr>\n")
			for _, g := range p.Groups {
				fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%.2f</td><td>%.1f%%</td></tr>\n",
					esc(g.Group), g.Count, float64(g.SelfNS)/1e6, 100*g.Share)
			}
			b.WriteString("</table>\n")
		}
	}

	if rs := d.Resources; rs != nil && rs.Jobs > 0 {
		b.WriteString("<h3>Per-job resources</h3>\n")
		b.WriteString("<p class=\"note\">Totals over executed jobs; cache hits cost nothing, so a warm " +
			"sweep's table shows exactly the work the cache saved. CPU and allocation are process-wide " +
			"attributions, exact at -jobs=1.</p>\n")
		b.WriteString("<table>\n<tr><th>jobs</th><th>executed</th><th>cache hits</th><th>wall ms</th>" +
			"<th>cpu ms</th><th>alloc</th><th>mallocs</th><th>gc cycles</th><th>slowest job</th></tr>\n")
		fmt.Fprintf(b, "<tr><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%d</td><td>%d</td><td>%s (%d ms)</td></tr>\n",
			rs.Jobs, rs.Executed, rs.CacheHits, rs.JobWallMS, rs.JobCPUMS,
			bytesHuman(rs.AllocBytes), rs.Mallocs, rs.GCCycles, esc(rs.MaxJobLabel), rs.MaxJobWallMS)
		b.WriteString("</table>\n")
	}

	if p := d.Perf; p != nil && len(p.Heap) > 0 {
		b.WriteString("<h3>Heap hotspots</h3>\n")
		b.WriteString("<p class=\"note\">Cumulative allocation by allocating function, unsampled from the " +
			"runtime's memory profile.</p>\n")
		b.WriteString("<table>\n<tr><th>function</th><th>alloc</th><th>objects</th><th>in use</th></tr>\n")
		for _, h := range p.Heap {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%s</td></tr>\n",
				esc(h.Func), bytesHuman(uint64(h.AllocBytes)), h.AllocObjects, bytesHuman(uint64(h.InUseBytes)))
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</section>\n")
}

// trimDate reduces an RFC3339 stamp to its date part for labels.
func trimDate(s string) string {
	if len(s) > 10 {
		return s[:10]
	}
	return s
}

// bytesHuman renders a byte count with a binary unit.
func bytesHuman(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
