package design

import (
	"strings"
	"testing"

	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/shiftctrl"
)

func TestEvaluateValidation(t *testing.T) {
	req := DefaultRequirements()
	if _, err := Evaluate(7, 64, shiftctrl.SECDED, 1, req); err == nil {
		t.Error("non-dividing segLen accepted")
	}
	if _, err := Evaluate(4, 64, shiftctrl.SECDED, 3, req); err == nil {
		t.Error("strength >= segLen-1 accepted")
	}
}

func TestEvaluatePaperPoint(t *testing.T) {
	// The paper's configuration (8x8, SECDED with safe distance) must
	// meet the reliability targets at the LLC intensity.
	req := DefaultRequirements()
	pt, err := Evaluate(8, 64, shiftctrl.PECCSWorst, 1, req)
	if err != nil {
		t.Fatal(err)
	}
	if mttf.Years(pt.DUEMTTF) < 10 {
		t.Errorf("paper point DUE MTTF = %.1f years, want >= 10", mttf.Years(pt.DUEMTTF))
	}
	if mttf.Years(pt.SDCMTTF) < 1000 {
		t.Errorf("paper point SDC MTTF = %.1f years, want >= 1000", mttf.Years(pt.SDCMTTF))
	}
	if pt.AreaPerBit <= 0 || pt.AvgLatency <= 0 || pt.AvgEnergy <= 0 {
		t.Errorf("degenerate metrics: %+v", pt)
	}
	if !strings.Contains(pt.Label(), "8x8") {
		t.Errorf("label = %q", pt.Label())
	}
}

func TestPlainSECDEDFailsDUETarget(t *testing.T) {
	// Without safe-distance planning, unconstrained SECDED at full
	// intensity misses the 10-year DUE target (the paper's Fig 11 point
	// that motivates p-ECC-S).
	req := DefaultRequirements()
	pt, err := Evaluate(8, 64, shiftctrl.SECDED, 1, req)
	if err != nil {
		t.Fatal(err)
	}
	if mttf.Years(pt.DUEMTTF) >= 10 {
		t.Errorf("plain SECDED DUE MTTF = %.1f years; expected to miss the target", mttf.Years(pt.DUEMTTF))
	}
}

func TestSearchFindsFeasiblePoints(t *testing.T) {
	feasible, rejected := Search(DefaultSpace(), DefaultRequirements())
	if len(feasible) == 0 {
		t.Fatal("no feasible configurations at the paper's requirements")
	}
	if rejected == 0 {
		t.Error("no configurations rejected — requirements not binding")
	}
	// Every feasible point actually meets the targets.
	for _, p := range feasible {
		if mttf.Years(p.DUEMTTF) < 10 || mttf.Years(p.SDCMTTF) < 1000 {
			t.Errorf("%s: infeasible point returned (%.1fy DUE)", p.Label(), mttf.Years(p.DUEMTTF))
		}
	}
	// Sorted by area.
	for i := 1; i < len(feasible); i++ {
		if feasible[i].AreaPerBit < feasible[i-1].AreaPerBit {
			t.Fatal("feasible set not sorted by area")
		}
	}
}

func TestSearchHonorsAreaCap(t *testing.T) {
	req := DefaultRequirements()
	req.MaxAreaPerBit = 9.0
	feasible, _ := Search(DefaultSpace(), req)
	for _, p := range feasible {
		if p.AreaPerBit > 9.0 {
			t.Errorf("%s exceeds area cap: %v", p.Label(), p.AreaPerBit)
		}
	}
}

func TestSearchHonorsLatencyCap(t *testing.T) {
	req := DefaultRequirements()
	req.MaxLatency = 8
	feasible, _ := Search(DefaultSpace(), req)
	for _, p := range feasible {
		if p.AvgLatency > 8 {
			t.Errorf("%s exceeds latency cap: %v", p.Label(), p.AvgLatency)
		}
	}
	// p-ECC-O on long segments must be excluded by this cap.
	for _, p := range feasible {
		if p.Scheme == shiftctrl.PECCO && p.SegLen >= 16 {
			t.Errorf("p-ECC-O at segLen %d passed an 8-cycle latency cap", p.SegLen)
		}
	}
}

func TestParetoDominance(t *testing.T) {
	feasible, _ := Search(DefaultSpace(), DefaultRequirements())
	frontier := Pareto(feasible)
	if len(frontier) == 0 || len(frontier) > len(feasible) {
		t.Fatalf("frontier size %d of %d", len(frontier), len(feasible))
	}
	// No frontier point dominates another.
	for i, p := range frontier {
		for j, q := range frontier {
			if i == j {
				continue
			}
			if q.AreaPerBit <= p.AreaPerBit && q.AvgLatency <= p.AvgLatency &&
				q.DUEMTTF >= p.DUEMTTF &&
				(q.AreaPerBit < p.AreaPerBit || q.AvgLatency < p.AvgLatency || q.DUEMTTF > p.DUEMTTF) {
				t.Fatalf("frontier point %s dominated by %s", p.Label(), q.Label())
			}
		}
	}
}

func TestHigherStrengthCostsArea(t *testing.T) {
	req := DefaultRequirements()
	m1, err := Evaluate(8, 64, shiftctrl.PECCSWorst, 1, req)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Evaluate(8, 64, shiftctrl.PECCSWorst, 2, req)
	if err != nil {
		t.Fatal(err)
	}
	if m2.AreaPerBit < m1.AreaPerBit {
		t.Error("stronger code should not shrink area")
	}
	if m2.DUEMTTF <= m1.DUEMTTF {
		t.Error("stronger code should raise DUE MTTF")
	}
}
