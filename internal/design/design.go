// Package design searches the racetrack-memory design space: given
// reliability, area, and latency requirements, it evaluates every
// combination of stripe geometry, protection scheme, and p-ECC strength
// through the analytic models and returns the feasible set and its Pareto
// frontier. It is the programmatic version of the paper's §6 exploration
// ("trade-off among reliability, area, performance, and energy").
package design

import (
	"fmt"
	"sort"

	"racetrack/hifi/internal/area"
	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/shiftctrl"
)

// Point is one evaluated configuration.
type Point struct {
	SegLen   int
	DataBits int
	Scheme   shiftctrl.Scheme
	Strength int

	// Evaluated metrics.
	DUEMTTF    float64 // seconds, at the requirement's intensity
	SDCMTTF    float64 // seconds
	AreaPerBit float64 // F^2 per data bit
	AvgLatency float64 // cycles per shifting access (uniform offsets)
	AvgEnergy  float64 // nJ per shifting access
}

// Label renders a short configuration name.
func (p Point) Label() string {
	return fmt.Sprintf("%dx%d/%s/m%d", p.DataBits/p.SegLen, p.SegLen, p.Scheme, p.Strength)
}

// Requirements bounds the search.
type Requirements struct {
	// MinDUEYears and MinSDCYears are the reliability floors (0 = none).
	MinDUEYears float64
	MinSDCYears float64
	// MaxAreaPerBit caps F^2/bit (0 = none).
	MaxAreaPerBit float64
	// MaxLatency caps average shift cycles per access (0 = none).
	MaxLatency float64
	// Intensity is the shift intensity the memory must sustain (ops/s).
	Intensity float64
	// Stripes is the interleave group width (default 512).
	Stripes int
}

// DefaultRequirements is the paper's operating point: 10-year DUE,
// 1000-year SDC, at the LLC's intensity.
func DefaultRequirements() Requirements {
	return Requirements{
		MinDUEYears: 10,
		MinSDCYears: 1000,
		Intensity:   83e6,
		Stripes:     512,
	}
}

// Space enumerates the candidate configurations.
type Space struct {
	SegLens   []int
	DataBits  []int
	Schemes   []shiftctrl.Scheme
	Strengths []int
}

// DefaultSpace covers the paper's sensitivity range.
func DefaultSpace() Space {
	return Space{
		SegLens:   []int{4, 8, 16, 32},
		DataBits:  []int{32, 64, 128},
		Schemes:   []shiftctrl.Scheme{shiftctrl.SECDED, shiftctrl.PECCO, shiftctrl.PECCSWorst, shiftctrl.PECCSAdaptive},
		Strengths: []int{1, 2},
	}
}

// Evaluate computes the metrics of one configuration analytically.
func Evaluate(segLen, dataBits int, scheme shiftctrl.Scheme, strength int, req Requirements) (Point, error) {
	if dataBits%segLen != 0 {
		return Point{}, fmt.Errorf("design: segLen %d does not divide dataBits %d", segLen, dataBits)
	}
	if strength >= segLen-1 {
		return Point{}, fmt.Errorf("design: strength %d too high for segLen %d", strength, segLen)
	}
	if req.Stripes == 0 {
		req.Stripes = 512
	}
	em := errmodel.Model{}
	timing := shiftctrl.DefaultTiming()
	shiftE := defaultShiftEnergy()

	maxDist := segLen - 1
	var planner *shiftctrl.Planner
	if scheme.UsesSafeDistance() {
		planner = shiftctrl.NewPlanner(em, timing, maxDist, maxDist)
	}

	// Uniform-offset access model.
	n := float64(segLen)
	var due, sdc, lat, nrg, accessP float64
	for d := 1; d < segLen; d++ {
		p := 2 * (n - float64(d)) / (n * n)
		accessP += p
		seq := []int{d}
		switch {
		case scheme.StepLimited():
			seq = make([]int, d)
			for i := range seq {
				seq[i] = 1
			}
		case planner != nil:
			seq = shiftctrl.WorstCaseSequence(planner, d, req.Intensity,
				10*mttf.SecondsPerYear, req.Stripes)
		}
		for _, step := range seq {
			s, du := failureRates(scheme, em, step, strength)
			sdc += p * s * float64(req.Stripes)
			due += p * du * float64(req.Stripes)
		}
		lat += p * float64(timing.SeqCycles(seq))
		nrg += p * seqNJ(shiftE, seq, scheme.StepLimited())
	}

	pt := Point{
		SegLen: segLen, DataBits: dataBits, Scheme: scheme, Strength: strength,
		DUEMTTF:    mttf.FromRate(due, req.Intensity),
		SDCMTTF:    mttf.FromRate(sdc, req.Intensity),
		AvgLatency: lat / accessP,
		AvgEnergy:  nrg / accessP,
	}
	pt.AreaPerBit = areaOf(segLen, dataBits, scheme, strength)
	return pt, nil
}

// failureRates generalizes scheme.FailureRates to higher strengths: with
// strength m, errors up to m are corrected, m+1 detected (DUE), beyond
// aliased (SDC).
func failureRates(scheme shiftctrl.Scheme, em errmodel.Model, step, strength int) (sdc, due float64) {
	if scheme == shiftctrl.SED {
		return scheme.FailureRates(em, step)
	}
	due = em.KRate(step, strength+1)
	sdc = em.KRate(step, strength+2)
	return sdc, due
}

// areaOf evaluates the per-bit area of the protected stripe.
func areaOf(segLen, dataBits int, scheme shiftctrl.Scheme, strength int) float64 {
	m := area.Default()
	if scheme.StepLimited() {
		oc := pecc.MustNewO(strength, segLen)
		return m.PerBit(area.StripeConfig{
			DataBits: dataBits, SegLen: segLen,
			ExtraDomain: oc.ExtraDomains(),
			ExtraReads:  2 * (oc.M() + 1),
			ExtraWrites: oc.WritePorts(),
		})
	}
	code := pecc.MustNew(strength, segLen)
	return m.PerBit(area.StripeConfig{
		DataBits: dataBits, SegLen: segLen,
		ExtraDomain: code.AreaLength() + code.GuardDomains(),
		ExtraReads:  code.Window(),
	})
}

// Search evaluates the whole space and returns the feasible points sorted
// by area then latency, plus the infeasible count.
func Search(space Space, req Requirements) (feasible []Point, rejected int) {
	for _, bits := range space.DataBits {
		for _, segLen := range space.SegLens {
			if bits%segLen != 0 {
				continue
			}
			for _, scheme := range space.Schemes {
				for _, strength := range space.Strengths {
					if strength >= segLen-1 {
						continue
					}
					pt, err := Evaluate(segLen, bits, scheme, strength, req)
					if err != nil {
						continue
					}
					if !meets(pt, req) {
						rejected++
						continue
					}
					feasible = append(feasible, pt)
				}
			}
		}
	}
	sort.Slice(feasible, func(i, j int) bool {
		if feasible[i].AreaPerBit != feasible[j].AreaPerBit {
			return feasible[i].AreaPerBit < feasible[j].AreaPerBit
		}
		return feasible[i].AvgLatency < feasible[j].AvgLatency
	})
	return feasible, rejected
}

func meets(p Point, req Requirements) bool {
	if req.MinDUEYears > 0 && mttf.Years(p.DUEMTTF) < req.MinDUEYears {
		return false
	}
	if req.MinSDCYears > 0 && mttf.Years(p.SDCMTTF) < req.MinSDCYears {
		return false
	}
	if req.MaxAreaPerBit > 0 && p.AreaPerBit > req.MaxAreaPerBit {
		return false
	}
	if req.MaxLatency > 0 && p.AvgLatency > req.MaxLatency {
		return false
	}
	return true
}

// Pareto filters points to the area/latency/DUE-MTTF Pareto frontier
// (lower area, lower latency, higher MTTF).
func Pareto(points []Point) []Point {
	var out []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.AreaPerBit <= p.AreaPerBit && q.AvgLatency <= p.AvgLatency &&
				q.DUEMTTF >= p.DUEMTTF &&
				(q.AreaPerBit < p.AreaPerBit || q.AvgLatency < p.AvgLatency || q.DUEMTTF > p.DUEMTTF) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// --- small local copies of energy constants to avoid an import cycle ---

type shiftEnergy struct{ perOp, perStep, owrite float64 }

func defaultShiftEnergy() shiftEnergy {
	return shiftEnergy{perOp: 0.40, perStep: 0.931, owrite: 0.20}
}

func seqNJ(e shiftEnergy, seq []int, owrite bool) float64 {
	total := 0.0
	for _, n := range seq {
		total += e.perOp + e.perStep*float64(n)
		if owrite {
			total += e.owrite * float64(n)
		}
	}
	return total
}
