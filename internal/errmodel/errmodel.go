// Package errmodel provides the position-error model for racetrack-memory
// shift operations (paper §3.1, §4.1).
//
// Position errors come in two kinds:
//
//   - stop-in-middle: domain walls settle between notches, so the aligned
//     domain reads an indeterminate value (paper Fig. 3c). The STS
//     technique eliminates these by converting them into out-of-step
//     errors (§4.1).
//   - out-of-step: walls settle into notches but over- or under-shifted by
//     k whole steps (paper Fig. 3d), written +-k.
//
// Two models are provided:
//
//   - Model (the default, used by the evaluation): the paper's published
//     post-STS out-of-step rate table (Table 2) for distances 1..7, with a
//     documented log-quadratic extrapolation for longer distances, plus a
//     pre-STS decomposition for the raw (unprotected) device.
//   - The physical Monte-Carlo model in internal/physics, used for the
//     Fig. 4 PDF-shape experiment and available for cross-checking.
package errmodel

import (
	"fmt"
	"math"

	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/telemetry"
)

// table2K1 and table2K2 are the published post-STS out-of-step error rates
// (paper Table 2) for +-1 and +-2 step errors, indexed by shift distance
// 1..7. Rates for |k| >= 3 are "too small" (below 1e-30) and treated as
// negligible except through the extrapolated tail.
var (
	table2K1 = [8]float64{0, 4.55e-5, 9.95e-5, 2.07e-4, 3.76e-4, 5.94e-4, 8.43e-4, 1.10e-3}
	table2K2 = [8]float64{0, 1.37e-21, 1.19e-20, 5.59e-20, 1.80e-19, 4.47e-19, 9.96e-18, 7.57e-15}
)

// MaxTabulated is the longest shift distance with published rates.
const MaxTabulated = 7

// Model is the analytic position-error model. The zero value is the paper's
// Table 1/Table 2 operating point with STS enabled.
type Model struct {
	// DisableSTS restores the raw device behaviour: stop-in-middle errors
	// reappear and dominate (used for the baseline of Fig. 10 and the
	// Fig. 4 decomposition).
	DisableSTS bool
	// RateScale multiplies every error rate; 0 means 1. Used for
	// sensitivity studies (Fig. 1 sweeps the per-stripe rate directly).
	RateScale float64
	// TempC is the operating temperature in Celsius; 0 means the 25C
	// reference point. The paper's variations combine process and
	// environmental sources (§3.1 [23,9]); temperature widens the
	// environmental part. The timing-margin z-score shrinks by ~0.5% per
	// Kelvin above the reference, which the Gaussian tail turns into
	// roughly an order of magnitude of error rate per ~50K.
	TempC float64
	// Tel optionally records sampled outcomes; nil (the zero value)
	// keeps Sample allocation-free with a single extra branch.
	Tel *SampleTelemetry
}

// SampleTelemetry holds the fault-injection counters a Model reports
// into. Handles are nil-safe, so a partially filled struct is fine.
type SampleTelemetry struct {
	// Injected counts sampled position errors of any kind.
	Injected *telemetry.Counter
	// StopInMiddle counts pre-STS stop-in-middle outcomes.
	StopInMiddle *telemetry.Counter
	// Magnitude observes |k| of sampled out-of-step errors.
	Magnitude *telemetry.Histogram
}

// NewSampleTelemetry registers the fault-injection series on reg (nil
// reg yields an inert, still-usable struct).
func NewSampleTelemetry(reg *telemetry.Registry) *SampleTelemetry {
	return &SampleTelemetry{
		Injected:     reg.Counter(telemetry.MetricErrInjected, "sampled position errors injected"),
		StopInMiddle: reg.Counter(telemetry.Label(telemetry.MetricErrInjected, "kind", "stop-in-middle"), "sampled stop-in-middle errors"),
		Magnitude:    reg.Histogram(telemetry.MetricErrMagnitude, "magnitude |k| of sampled out-of-step errors", []float64{1, 2, 3, 4}),
	}
}

// record notes one sampled outcome.
func (t *SampleTelemetry) record(o Outcome) {
	if t == nil || o.Correct() {
		return
	}
	t.Injected.Inc()
	if o.StopInMiddle {
		t.StopInMiddle.Inc()
		return
	}
	off := o.StepOffset
	if off < 0 {
		off = -off
	}
	t.Magnitude.Observe(float64(off))
}

// tempReferenceC is the characterization temperature of the Table 2 rates.
const tempReferenceC = 25

func (m Model) scale() float64 {
	s := m.RateScale
	if s == 0 {
		s = 1
	}
	return s * m.tempFactor()
}

// tempFactor converts the temperature delta into a rate multiplier via the
// Gaussian-margin model: the Table 2 one-sided k=1 margin sits near
// z = 3.9; shrinking z by 0.5%/K re-weights the tail by
// exp(z^2*(1-f^2)/2) with f the shrink factor. Cooler than reference
// tightens the margin instead (factor < 1), floored at 0.01x.
func (m Model) tempFactor() float64 {
	if m.TempC == 0 || m.TempC == tempReferenceC {
		return 1
	}
	const z = 3.9
	f := 1 - 0.005*(m.TempC-tempReferenceC)
	if f < 0.1 {
		f = 0.1
	}
	mult := math.Exp(z * z * (1 - f*f) / 2)
	if mult < 0.01 {
		mult = 0.01
	}
	return mult
}

// K1Rate returns the probability that a single n-step shift suffers a +-1
// out-of-step error (either direction combined), after STS.
// Distances 1..7 use the published Table 2 values; longer distances use a
// log-quadratic fit of those values (documented in DESIGN.md); n <= 0
// returns 0.
func (m Model) K1Rate(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n <= MaxTabulated {
		return table2K1[n] * m.scale()
	}
	return m.scale() * extrapolateK1(n)
}

// K2Rate returns the probability of a +-2 out-of-step error for an n-step
// shift, after STS. This is the uncorrectable-error rate under SECDED p-ECC
// and therefore the quantity that the safe-distance mechanism bounds.
func (m Model) K2Rate(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n <= MaxTabulated {
		return table2K2[n] * m.scale()
	}
	return m.scale() * extrapolateK2(n)
}

// K3PlusRate returns the probability of a |k| >= 3 out-of-step error. The
// paper reports these as "too small" for all tabulated distances. We model
// the tail by continuing the observed super-exponential decay: each extra
// step of magnitude costs the same factor as the k=1 to k=2 gap at that
// distance (7e-12 at 7 steps), keeping k>=3 below 1e-25 everywhere —
// consistent with the paper's SECDED SDC MTTF exceeding 1000 years.
func (m Model) K3PlusRate(n int) float64 {
	k1, k2 := m.K1Rate(n), m.K2Rate(n)
	if k1 <= 0 {
		return 0
	}
	return k2 * (k2 / k1)
}

// KRate returns the rate of a |k|-step out-of-step error for an n-step
// shift. k must be >= 1.
func (m Model) KRate(n, k int) float64 {
	switch {
	case k < 1:
		panic("errmodel: KRate with k < 1")
	case k == 1:
		return m.K1Rate(n)
	case k == 2:
		return m.K2Rate(n)
	default:
		// Each additional step of magnitude costs the k=1 to k=2 decay
		// factor again (super-exponential tail).
		k1, k2 := m.K1Rate(n), m.K2Rate(n)
		if k1 <= 0 {
			return 0
		}
		r := k2
		for i := 2; i < k; i++ {
			r *= k2 / k1
		}
		return r
	}
}

// extrapolateK1 extends the Table 2 k=1 rates beyond 7 steps with the
// log-quadratic fit ln p = a + b ln n + c (ln n)^2 anchored at n=1 and
// matched to n=2 and n=7 (within ~15% of all tabulated points).
func extrapolateK1(n int) float64 {
	const (
		a = -9.998
		b = 0.8499
		c = 0.4043
	)
	ln := math.Log(float64(n))
	p := math.Exp(a + b*ln + c*ln*ln)
	if p > 0.5 {
		p = 0.5
	}
	return p
}

// extrapolateK2 extends the Table 2 k=2 rates beyond 7 steps. The published
// values grow super-exponentially near n=7 (the ratio to the k=1 rate grows
// ~600x per step); we continue that ratio growth and cap the k=2 rate at
// one tenth of the k=1 rate.
func extrapolateK2(n int) float64 {
	ratio7 := table2K2[7] / table2K1[7]
	growth := ratio7 / (table2K2[6] / table2K1[6])
	r := ratio7 * math.Pow(growth, float64(n-7))
	if r > 0.1 {
		r = 0.1
	}
	return extrapolateK1(n) * r
}

// StopInMiddleRate returns the pre-STS probability that an n-step shift
// stops between notches. With STS enabled this is (nearly) zero: the paper
// reports STS eliminates stop-in-middle errors, converting them into
// out-of-step errors already counted in Table 2.
//
// The pre-STS rate is modeled as the dominant error mode of the raw device:
// the paper quotes typical raw position-error rates of 1e-4..1e-5 per shift
// and Fig. 4 shows stop-in-middle mass comparable to the +-1 bars. We model
// it as 4x the post-STS k=1 rate, asymmetric toward the over-shift side
// (drive above threshold).
func (m Model) StopInMiddleRate(n int) float64 {
	if !m.DisableSTS {
		return 0
	}
	return 4 * m.K1Rate(n)
}

// ErrorRate returns the total probability that an n-step shift suffers any
// position error (all out-of-step magnitudes plus, pre-STS, stop-in-middle).
func (m Model) ErrorRate(n int) float64 {
	total := m.K1Rate(n) + m.K2Rate(n) + m.K3PlusRate(n) + m.StopInMiddleRate(n)
	if total > 1 {
		total = 1
	}
	return total
}

// Outcome is the sampled result of one shift operation.
type Outcome struct {
	// StepOffset is the signed out-of-step error; 0 for a correct shift.
	StepOffset int
	// StopInMiddle reports walls settled between notches (pre-STS only).
	StopInMiddle bool
}

// Correct reports whether the shift succeeded.
func (o Outcome) Correct() bool { return o.StepOffset == 0 && !o.StopInMiddle }

// overShiftBias is the fraction of out-of-step errors that are over-shifts.
// The paper notes asymmetry because the drive current is above threshold
// ("typical driving current is higher than threshold to facilitate
// shifting"); with positive STS, converted stop-in-middle errors also land
// on the + side.
const overShiftBias = 0.7

// Sample draws the outcome of one n-step shift.
func (m Model) Sample(n int, r *sim.RNG) Outcome {
	o := m.sample(n, r)
	m.Tel.record(o)
	return o
}

func (m Model) sample(n int, r *sim.RNG) Outcome {
	if n == 0 {
		return Outcome{}
	}
	u := r.Float64()
	// Order: stop-in-middle (pre-STS), then k=1, k=2, k=3 errors.
	if s := m.StopInMiddleRate(n); u < s {
		// Which inter-notch gap: mostly between 0 and +1.
		return Outcome{StopInMiddle: true, StepOffset: 0}
	} else {
		u -= s
	}
	for k := 1; k <= 3; k++ {
		rate := m.KRate(n, k)
		if u < rate {
			if r.Float64() < overShiftBias {
				return Outcome{StepOffset: k}
			}
			return Outcome{StepOffset: -k}
		}
		u -= rate
	}
	return Outcome{}
}

// String implements fmt.Stringer for diagnostics.
func (o Outcome) String() string {
	switch {
	case o.StopInMiddle:
		return "stop-in-middle"
	case o.StepOffset == 0:
		return "correct"
	default:
		return fmt.Sprintf("out-of-step %+d", o.StepOffset)
	}
}
