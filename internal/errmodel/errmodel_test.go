package errmodel

import (
	"math"
	"testing"
	"testing/quick"

	"racetrack/hifi/internal/sim"
)

func TestTable2ValuesExact(t *testing.T) {
	// The published Table 2 rates must be reproduced verbatim.
	var m Model
	wantK1 := []float64{4.55e-5, 9.95e-5, 2.07e-4, 3.76e-4, 5.94e-4, 8.43e-4, 1.10e-3}
	wantK2 := []float64{1.37e-21, 1.19e-20, 5.59e-20, 1.80e-19, 4.47e-19, 9.96e-18, 7.57e-15}
	for n := 1; n <= 7; n++ {
		if got := m.K1Rate(n); got != wantK1[n-1] {
			t.Errorf("K1Rate(%d) = %g, want %g", n, got, wantK1[n-1])
		}
		if got := m.K2Rate(n); got != wantK2[n-1] {
			t.Errorf("K2Rate(%d) = %g, want %g", n, got, wantK2[n-1])
		}
	}
}

func TestRatesMonotoneInDistance(t *testing.T) {
	// Paper observation: error rates increase with shift distance. This
	// must hold through the extrapolated region too.
	var m Model
	for n := 2; n <= 64; n++ {
		if m.K1Rate(n) < m.K1Rate(n-1) {
			t.Errorf("K1Rate decreasing at n=%d: %g < %g", n, m.K1Rate(n), m.K1Rate(n-1))
		}
		if m.K2Rate(n) < m.K2Rate(n-1) {
			t.Errorf("K2Rate decreasing at n=%d: %g < %g", n, m.K2Rate(n), m.K2Rate(n-1))
		}
	}
	// Strictly increasing below the saturation caps.
	for n := 2; n <= 40; n++ {
		if m.K1Rate(n) <= m.K1Rate(n-1) {
			t.Errorf("K1Rate not strictly increasing at n=%d", n)
		}
	}
}

func TestK2FarBelowK1(t *testing.T) {
	// Paper observation: rates decrease sharply with k; +-1 errors are the
	// critical problem.
	var m Model
	for n := 1; n <= 32; n++ {
		if m.K2Rate(n) >= m.K1Rate(n) {
			t.Errorf("K2 >= K1 at n=%d", n)
		}
		if m.K3PlusRate(n) >= m.K2Rate(n) {
			t.Errorf("K3+ >= K2 at n=%d", n)
		}
	}
}

func TestZeroAndNegativeDistance(t *testing.T) {
	var m Model
	if m.K1Rate(0) != 0 || m.K2Rate(0) != 0 || m.ErrorRate(0) != 0 {
		t.Error("zero-distance shift must be error-free")
	}
	if m.K1Rate(-3) != 0 {
		t.Error("negative distance must report zero rate")
	}
}

func TestKRateGeneral(t *testing.T) {
	var m Model
	if m.KRate(4, 1) != m.K1Rate(4) {
		t.Error("KRate(n,1) != K1Rate(n)")
	}
	if m.KRate(4, 2) != m.K2Rate(4) {
		t.Error("KRate(n,2) != K2Rate(n)")
	}
	if m.KRate(4, 4) >= m.KRate(4, 3) {
		t.Error("KRate not decreasing in k")
	}
}

func TestKRatePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KRate(1, 0) did not panic")
		}
	}()
	var m Model
	m.KRate(1, 0)
}

func TestRateScale(t *testing.T) {
	base := Model{}
	scaled := Model{RateScale: 10}
	if got, want := scaled.K1Rate(3), 10*base.K1Rate(3); math.Abs(got-want) > 1e-20 {
		t.Errorf("RateScale: got %g want %g", got, want)
	}
}

func TestSTSEliminatesStopInMiddle(t *testing.T) {
	withSTS := Model{}
	withoutSTS := Model{DisableSTS: true}
	for n := 1; n <= 7; n++ {
		if withSTS.StopInMiddleRate(n) != 0 {
			t.Errorf("STS enabled but stop-in-middle rate nonzero at n=%d", n)
		}
		if withoutSTS.StopInMiddleRate(n) <= 0 {
			t.Errorf("raw device must have stop-in-middle errors at n=%d", n)
		}
	}
}

func TestRawErrorRateInPaperRange(t *testing.T) {
	// Paper: "a typical position error rate is in the range of 1e-4 ~ 1e-5
	// for different shift operations" (raw device).
	raw := Model{DisableSTS: true}
	r1 := raw.ErrorRate(1)
	if r1 < 1e-5 || r1 > 1e-3 {
		t.Errorf("raw 1-step error rate %g outside plausible range", r1)
	}
}

func TestErrorRateCapped(t *testing.T) {
	m := Model{RateScale: 1e6, DisableSTS: true}
	if r := m.ErrorRate(7); r > 1 {
		t.Errorf("ErrorRate exceeded 1: %g", r)
	}
}

func TestSampleMatchesRates(t *testing.T) {
	// With inflated rates the sampler's empirical frequencies must match
	// the analytic rates.
	m := Model{RateScale: 1e2}
	r := sim.NewRNG(1)
	const trials = 2_000_000
	var k1, correct int
	for i := 0; i < trials; i++ {
		o := m.Sample(7, r)
		switch {
		case o.Correct():
			correct++
		case o.StepOffset == 1 || o.StepOffset == -1:
			k1++
		}
	}
	want := m.K1Rate(7)
	got := float64(k1) / trials
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("sampled k1 rate %g, want %g", got, want)
	}
	if correct == 0 {
		t.Error("no correct outcomes sampled")
	}
}

func TestSampleZeroDistance(t *testing.T) {
	var m Model
	r := sim.NewRNG(2)
	if o := m.Sample(0, r); !o.Correct() {
		t.Errorf("0-step sample should be correct, got %v", o)
	}
}

func TestSampleOverShiftBias(t *testing.T) {
	// Errors should lean to the over-shift side (+) per the paper's
	// asymmetry note.
	m := Model{RateScale: 1e4}
	r := sim.NewRNG(3)
	var plus, minus int
	for i := 0; i < 500000; i++ {
		o := m.Sample(7, r)
		if o.StepOffset > 0 {
			plus++
		} else if o.StepOffset < 0 {
			minus++
		}
	}
	if plus <= minus {
		t.Errorf("over-shift bias violated: +%d vs -%d", plus, minus)
	}
}

func TestOutcomeString(t *testing.T) {
	cases := []struct {
		o    Outcome
		want string
	}{
		{Outcome{}, "correct"},
		{Outcome{StepOffset: 2}, "out-of-step +2"},
		{Outcome{StepOffset: -1}, "out-of-step -1"},
		{Outcome{StopInMiddle: true}, "stop-in-middle"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.o, got, c.want)
		}
	}
}

func TestQuickRatesAreProbabilities(t *testing.T) {
	f := func(n uint8, scale float64) bool {
		if math.IsNaN(scale) || scale < 0 || scale > 1e3 {
			return true
		}
		m := Model{RateScale: scale}
		d := int(n%64) + 1
		for _, r := range []float64{m.K1Rate(d), m.K2Rate(d), m.ErrorRate(d)} {
			if r < 0 || r > 1 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSampleAlwaysValid(t *testing.T) {
	m := Model{RateScale: 100, DisableSTS: true}
	r := sim.NewRNG(4)
	for i := 0; i < 100000; i++ {
		o := m.Sample(i%8, r)
		if o.StopInMiddle && o.StepOffset > 3 {
			t.Fatalf("implausible outcome %+v", o)
		}
		if o.StepOffset > 3 || o.StepOffset < -3 {
			t.Fatalf("sample produced |k|>3 which has negligible rate: %+v", o)
		}
	}
}

func TestExtrapolationContinuity(t *testing.T) {
	// The extrapolated curve should connect to the tabulated values within
	// a factor of 2 at the boundary.
	var m Model
	p7 := m.K1Rate(7)
	p8 := m.K1Rate(8)
	if p8/p7 > 2 || p8/p7 < 1 {
		t.Errorf("K1 extrapolation discontinuous: p7=%g p8=%g", p7, p8)
	}
	q7 := m.K2Rate(7)
	q8 := m.K2Rate(8)
	if q8 <= q7 {
		t.Errorf("K2 extrapolation not increasing: %g -> %g", q7, q8)
	}
}
