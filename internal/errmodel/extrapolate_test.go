package errmodel

// Edge tests for the rate model beyond the published Table 2 range:
// the log-quadratic K1 extrapolation, the ratio-growth K2 tail, and the
// k >= 3 super-exponential decay must stay monotone, bounded, and free
// of NaN/Inf for any shift distance a campaign can produce — a single
// NaN here poisons every MTTF downstream.

import (
	"math"
	"testing"
)

// probe distances: the full tabulated range, the first extrapolated
// points, and far-tail distances no real geometry reaches.
var probeN = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 64, 512, 1 << 20}

// wellFormed fails the test if p is not a probability.
func wellFormed(t *testing.T, label string, p float64) {
	t.Helper()
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
		t.Errorf("%s = %g, want a probability", label, p)
	}
}

func TestRatesMonotonicAcrossExtrapolationBoundary(t *testing.T) {
	var m Model
	lastK1, lastK2 := 0.0, 0.0
	for _, n := range probeN {
		k1, k2 := m.K1Rate(n), m.K2Rate(n)
		wellFormed(t, "K1Rate", k1)
		wellFormed(t, "K2Rate", k2)
		if k1 < lastK1 {
			t.Errorf("K1Rate(%d) = %g dips below previous %g", n, k1, lastK1)
		}
		if k2 < lastK2 {
			t.Errorf("K2Rate(%d) = %g dips below previous %g", n, k2, lastK2)
		}
		if k2 > k1 {
			t.Errorf("K2Rate(%d) = %g exceeds K1Rate = %g", n, k2, k1)
		}
		lastK1, lastK2 = k1, k2
	}
	// The boundary itself: the first extrapolated point continues the
	// tabulated growth rather than jumping orders of magnitude. Table 2
	// grows ~1.3x per step near n=7; allow up to the K2 ratio growth.
	if r := m.K1Rate(MaxTabulated+1) / m.K1Rate(MaxTabulated); r < 1 || r > 3 {
		t.Errorf("K1 growth across the table boundary = %gx, want 1..3x", r)
	}
	if r := m.K2Rate(MaxTabulated+1) / m.K2Rate(MaxTabulated); r < 1 || r > 1e4 {
		t.Errorf("K2 growth across the table boundary = %gx, want 1..1e4x", r)
	}
}

func TestKRateTailDecaysAndStaysFinite(t *testing.T) {
	var m Model
	for _, n := range probeN {
		last := m.K2Rate(n)
		for k := 3; k <= 8; k++ {
			r := m.KRate(n, k)
			wellFormed(t, "KRate", r)
			if r > last {
				t.Errorf("KRate(%d,%d) = %g grows over KRate(%d,%d) = %g", n, k, r, n, k-1, last)
			}
			last = r
		}
		if got, want := m.KRate(n, 3), m.K3PlusRate(n); got != want {
			t.Errorf("KRate(%d,3) = %g, K3PlusRate = %g; tail head must match", n, got, want)
		}
	}
}

func TestKRateDegenerateInputs(t *testing.T) {
	var m Model
	for _, n := range []int{0, -1, -100} {
		if r := m.K1Rate(n); r != 0 {
			t.Errorf("K1Rate(%d) = %g, want 0", n, r)
		}
		if r := m.K2Rate(n); r != 0 {
			t.Errorf("K2Rate(%d) = %g, want 0", n, r)
		}
		if r := m.K3PlusRate(n); r != 0 {
			t.Errorf("K3PlusRate(%d) = %g, want 0", n, r)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("KRate with k = 0 did not panic")
		}
	}()
	m.KRate(4, 0)
}

// TestRatesBoundedUnderHostileScaling: a fault campaign multiplies
// RateScale and temperature well past nominal; every rate must saturate
// instead of escaping [0, 1], and its reciprocal (the per-event MTTF
// numerator) must stay finite or +Inf — never NaN.
func TestRatesBoundedUnderHostileScaling(t *testing.T) {
	for _, m := range []Model{
		{RateScale: 1e6},
		{RateScale: 1e12, TempC: 85},
		{TempC: 300},
		{RateScale: 1e-12, TempC: -40},
		{DisableSTS: true, RateScale: 1e9},
	} {
		for _, n := range probeN {
			total := m.ErrorRate(n)
			wellFormed(t, "ErrorRate", total)
			for k := 1; k <= 6; k++ {
				r := m.KRate(n, k)
				if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
					t.Fatalf("KRate(%d,%d) under %+v = %g", n, k, m, r)
				}
				if r > 0 {
					if inv := 1 / r; math.IsNaN(inv) {
						t.Fatalf("1/KRate(%d,%d) is NaN under %+v", n, k, m)
					}
				}
			}
		}
	}
}

// TestExtrapolatedTailStaysNegligible: the k=2 extrapolation is capped
// at a tenth of k=1 and the k>=3 tail below it, so SECDED's aliasing
// mass never dominates — the property behind the paper's ">1000 years"
// SECDED SDC MTTF claim surviving long shifts.
func TestExtrapolatedTailStaysNegligible(t *testing.T) {
	var m Model
	for _, n := range []int{8, 16, 64, 512, 1 << 20} {
		k1, k2 := m.K1Rate(n), m.K2Rate(n)
		if k2 > 0.1*k1 {
			t.Errorf("K2Rate(%d) = %g exceeds the 0.1*K1 cap (K1 = %g)", n, k2, k1)
		}
		if k3 := m.K3PlusRate(n); k3 > k2 {
			t.Errorf("K3PlusRate(%d) = %g exceeds K2Rate = %g", n, k3, k2)
		}
	}
}
