package errmodel

import (
	"testing"

	"racetrack/hifi/internal/sim"
)

func TestTempFactorReference(t *testing.T) {
	ref := Model{TempC: 25}
	zero := Model{}
	for n := 1; n <= 7; n++ {
		if ref.K1Rate(n) != zero.K1Rate(n) {
			t.Fatalf("reference temperature changed rates at n=%d", n)
		}
	}
}

func TestTempRatesIncreaseWithHeat(t *testing.T) {
	cold := Model{TempC: 0.001} // effectively 0C (cooler than reference)
	ref := Model{}
	hot := Model{TempC: 85}
	hotter := Model{TempC: 105}
	for n := 1; n <= 7; n++ {
		if !(cold.K1Rate(n) < ref.K1Rate(n)) {
			t.Errorf("n=%d: cold rate %g not below reference %g", n, cold.K1Rate(n), ref.K1Rate(n))
		}
		if !(ref.K1Rate(n) < hot.K1Rate(n) && hot.K1Rate(n) < hotter.K1Rate(n)) {
			t.Errorf("n=%d: rates not increasing with temperature", n)
		}
	}
}

func TestTempEffectMagnitude(t *testing.T) {
	// ~order of magnitude per ~50K at the k=1 margin.
	ref := Model{}
	hot := Model{TempC: 75}
	ratio := hot.K1Rate(4) / ref.K1Rate(4)
	if ratio < 3 || ratio > 100 {
		t.Errorf("50K rate multiplier = %v, want order-of-magnitude scale", ratio)
	}
}

func TestTempRatesStayProbabilities(t *testing.T) {
	for _, temp := range []float64{-40, 0.001, 25, 85, 125, 400} {
		m := Model{TempC: temp}
		for n := 1; n <= 7; n++ {
			r := m.ErrorRate(n)
			if r < 0 || r > 1 {
				t.Fatalf("temp %v n=%d: rate %g out of [0,1]", temp, n, r)
			}
		}
	}
}

func TestTempSamplingConsistent(t *testing.T) {
	// The sampler must reflect the temperature-scaled rates.
	hot := Model{TempC: 85, RateScale: 50}
	ref := Model{RateScale: 50}
	r := sim.NewRNG(5)
	count := func(m Model) int {
		bad := 0
		for i := 0; i < 200000; i++ {
			if !m.Sample(4, r).Correct() {
				bad++
			}
		}
		return bad
	}
	if count(hot) <= count(ref) {
		t.Error("hot model sampled fewer errors than reference")
	}
}
