package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite exporter golden files")

// goldenRegistry builds a small fixed registry covering every export
// shape: plain and labelled counters, a gauge, fractional values, and a
// histogram with label merging.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("hifi_shift_ops_total", "shift operations issued").Add(42)
	r.Counter(Label("hifi_cache_hits_total", "level", "l1"), "cache hits by level").Add(7)
	r.Counter(Label("hifi_cache_hits_total", "level", "l3"), "cache hits by level").Add(3)
	r.Counter("hifi_expected_corrections_total", "expected corrections").Add(1.5)
	r.Gauge("hifi_sim_accesses_done", "accesses simulated so far").Set(1000)
	h := r.Histogram("hifi_shift_distance_steps", "distance per shift op", []float64{1, 2, 4})
	for _, v := range []float64{1, 1, 2, 3, 5} {
		h.Observe(v)
	}
	hl := r.Histogram(Label("hifi_op_cycles", "op", "read"), "cycles per op", []float64{8, 16})
	hl.Observe(10)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/telemetry -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestExporterGoldenPrometheus(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.prom", b.Bytes())
}

func TestExporterGoldenJSON(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json", b.Bytes())
}

// TestSnapshotDeterminism: identical registry state must export
// identical bytes regardless of registration or update order.
func TestSnapshotDeterminism(t *testing.T) {
	a := NewRegistry()
	a.Counter("x", "").Add(1)
	a.Counter("a", "").Add(2)
	a.Gauge("m", "").Set(3)
	a.Histogram("h", "", []float64{1}).Observe(0.5)

	b := NewRegistry()
	b.Histogram("h", "", []float64{1}).Observe(0.5)
	b.Gauge("m", "").Set(3)
	b.Counter("a", "").Add(2)
	b.Counter("x", "").Add(1)

	var ba, bb bytes.Buffer
	if err := a.Snapshot().WritePrometheus(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WritePrometheus(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Errorf("export depends on registration order:\n%s\nvs\n%s", ba.String(), bb.String())
	}
	var ja, jb bytes.Buffer
	if err := a.Snapshot().WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Error("JSON export depends on registration order")
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", "", []float64{1, 2})
	h.Observe(1)
	h.Observe(2)
	h.Observe(9)
	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`d_bucket{le="1"} 1`,
		`d_bucket{le="2"} 2`,
		`d_bucket{le="+Inf"} 3`,
		`d_sum 12`,
		`d_count 3`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{1.5, "1.5"},
		{1e20, "1e+20"},
		{3078.50496, "3078.50496"},
	}
	for _, c := range cases {
		if got := formatValue(c.in); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "run.json") // extension must be trimmed
	jp, pp, err := goldenRegistry().Snapshot().WriteFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	if jp != filepath.Join(dir, "run.json") || pp != filepath.Join(dir, "run.prom") {
		t.Fatalf("paths = %q, %q", jp, pp)
	}
	j, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := os.ReadFile(pp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(j, []byte("hifi_shift_ops_total")) || !bytes.Contains(p, []byte("hifi_shift_ops_total")) {
		t.Error("written files missing expected series")
	}
}

func TestLookupMissing(t *testing.T) {
	s := NewRegistry().Snapshot()
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup on empty snapshot must report absence")
	}
}
