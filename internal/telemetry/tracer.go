package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind classifies trace events emitted by the simulation stack.
type EventKind uint8

// Event kinds. The Arg fields of an Event are kind-specific; the schema
// is documented in docs/observability.md and kept stable for tooling.
const (
	// EventShift: one planned shift. Arg0=group, Arg1=signed distance,
	// Arg2=operations in the planned sequence.
	EventShift EventKind = iota + 1
	// EventVerify: one p-ECC check. Arg0=believed offset, Arg1=detected
	// (0/1), Arg2=correctable (0/1).
	EventVerify
	// EventErrorInject: a sampled position error. Arg0=requested
	// distance, Arg1=signed step offset, Arg2=stop-in-middle (0/1).
	EventErrorInject
	// EventCorrection: a corrective shift applied after a p-ECC hit.
	// Arg0=detected offset.
	EventCorrection
	// EventDUE: a detected unrecoverable error. Arg0=believed offset.
	EventDUE
	// EventEviction: an LLC eviction. Arg0=set, Arg1=way, Arg2=dirty
	// (0/1).
	EventEviction
	// EventPromoFlush: a promotion-buffer dirty eviction flushed back to
	// the array. Arg0=set, Arg1=way.
	EventPromoFlush
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventShift:
		return "shift"
	case EventVerify:
		return "verify"
	case EventErrorInject:
		return "error-inject"
	case EventCorrection:
		return "correction"
	case EventDUE:
		return "due"
	case EventEviction:
		return "eviction"
	case EventPromoFlush:
		return "promo-flush"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one fixed-size trace record. Cycle is the emitting timeline's
// cycle count (the LLC timeline in memsim, cumulative tape cycles in the
// functional controller).
type Event struct {
	Seq   uint64    `json:"seq"`
	Cycle uint64    `json:"cycle"`
	Kind  EventKind `json:"-"`
	Arg0  int64     `json:"arg0"`
	Arg1  int64     `json:"arg1"`
	Arg2  int64     `json:"arg2"`
}

// MarshalJSON renders the kind symbolically.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seq   uint64 `json:"seq"`
		Cycle uint64 `json:"cycle"`
		Kind  string `json:"kind"`
		Arg0  int64  `json:"arg0"`
		Arg1  int64  `json:"arg1"`
		Arg2  int64  `json:"arg2"`
	}{e.Seq, e.Cycle, e.Kind.String(), e.Arg0, e.Arg1, e.Arg2})
}

// Tracer records events into a preallocated ring buffer: the hot path
// never allocates, and once the buffer wraps the oldest events are
// overwritten (Dropped counts them). A nil *Tracer is a valid disabled
// handle — Emit on nil is a single branch and nothing else.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever emitted
}

// NewTracer returns a tracer holding the most recent capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit appends one event. Safe for concurrent use; zero-alloc.
func (t *Tracer) Emit(kind EventKind, cycle uint64, arg0, arg1, arg2 int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = Event{
		Seq: t.next, Cycle: cycle, Kind: kind, Arg0: arg0, Arg1: arg1, Arg2: arg2,
	}
	t.next++
	t.mu.Unlock()
}

// Len returns how many events are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten after the ring
// wrapped.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next <= uint64(len(t.buf)) {
		return 0
	}
	return t.next - uint64(len(t.buf))
}

// Events returns the retained events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	if t.next <= n {
		out := make([]Event, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]Event, 0, n)
	start := t.next % n
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}

// WriteJSON emits the retained events as a JSON document with a small
// header recording totals and drops.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		Emitted uint64  `json:"emitted"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}{Events: []Event{}}
	if t != nil {
		doc.Events = t.Events()
		t.mu.Lock()
		doc.Emitted = t.next
		t.mu.Unlock()
		doc.Dropped = doc.Emitted - uint64(len(doc.Events))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
