package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestManifestLifecycle(t *testing.T) {
	m := NewManifest("hifi-test")
	if m.Status != "running" {
		t.Fatalf("fresh manifest status = %q", m.Status)
	}
	if m.GoVersion != runtime.Version() || m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Errorf("environment not captured: %+v", m)
	}
	m.SetConfig(map[string]string{"workload": "ferret", "seed": "1"})
	m.SetSeed(1)
	m.AddOutput("run.json", "run.prom")

	reg := NewRegistry()
	reg.Counter("hifi_shift_ops_total", "").Add(42)
	snap := reg.Snapshot()
	m.Finish(&snap)

	if m.Status != "done" {
		t.Errorf("status after Finish = %q", m.Status)
	}
	if m.WallSeconds < 0 {
		t.Errorf("wall seconds = %v", m.WallSeconds)
	}
	if runtime.GOOS == "linux" {
		if m.CPUSeconds <= 0 || m.PeakRSSBytes <= 0 {
			t.Errorf("rusage not captured: cpu=%v rss=%v", m.CPUSeconds, m.PeakRSSBytes)
		}
	}

	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	for _, key := range []string{"tool", "git_sha", "go_version", "config",
		"seed", "wall_seconds", "cpu_seconds", "peak_rss_bytes", "outputs", "metrics"} {
		if _, ok := back[key]; !ok {
			t.Errorf("manifest JSON missing %q", key)
		}
	}
	if back["tool"] != "hifi-test" {
		t.Errorf("tool = %v", back["tool"])
	}
}

func TestManifestWriteFile(t *testing.T) {
	m := NewManifest("hifi-test")
	m.Finish(nil)
	path := filepath.Join(t.TempDir(), "run.manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Tool != "hifi-test" || back.Status != "done" {
		t.Errorf("round-trip: tool=%q status=%q", back.Tool, back.Status)
	}
}
