package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Manifest records the provenance of one run: what binary ran, from which
// commit, on what host, under which resolved configuration, for how long,
// and what it produced. Written alongside every output so any number in
// the repo's tables is reproducible from its manifest alone.
type Manifest struct {
	mu sync.Mutex

	Tool     string    `json:"tool"`
	Args     []string  `json:"args"`
	StartUTC time.Time `json:"start_utc"`
	Status   string    `json:"status"` // "running" until Finish

	GitSHA   string `json:"git_sha"`
	GitDirty bool   `json:"git_dirty,omitempty"`

	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname"`

	// Config is the fully resolved flag set (defaults included), so the
	// run is re-creatable without knowing which flags were explicit.
	Config map[string]string `json:"config,omitempty"`
	Seed   uint64            `json:"seed,omitempty"`

	WallSeconds  float64 `json:"wall_seconds"`
	CPUSeconds   float64 `json:"cpu_seconds"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`

	// Outputs lists files the run wrote (tables, metrics, traces, spans).
	Outputs []string `json:"outputs,omitempty"`

	// Metrics is the final registry snapshot, attached by Finish.
	Metrics *Snapshot `json:"metrics,omitempty"`

	start time.Time // monotonic anchor for WallSeconds
}

// NewManifest captures the environment for tool and starts the clock.
func NewManifest(tool string) *Manifest {
	now := time.Now()
	m := &Manifest{
		Tool:       tool,
		Args:       os.Args[1:],
		StartUTC:   now.UTC().Truncate(time.Second),
		Status:     "running",
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		start:      now,
	}
	m.Hostname, _ = os.Hostname()
	m.GitSHA, m.GitDirty = vcsInfo()
	return m
}

// CPUSeconds returns the process's cumulative user+system CPU time (0
// where unavailable). Exported for the per-job resource accounting in
// internal/engine; the manifest uses the same reading at Finish.
func CPUSeconds() float64 { return cpuSeconds() }

// vcsInfo reads the VCS stamp the Go toolchain embeds into binaries
// built from a checkout. The stamp is absent from `go run` and `go
// test` binaries and from builds outside a checkout — there the
// HIFI_GIT_SHA environment variable (exported by the Makefile's
// bench-snapshot target) fills in, so committed benchmark baselines
// carry a real commit instead of "unknown".
func vcsInfo() (sha string, dirty bool) {
	sha = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				sha = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if sha == "unknown" {
		if env := os.Getenv("HIFI_GIT_SHA"); env != "" {
			sha = env
		}
	}
	return sha, dirty
}

// SetConfig records the resolved configuration map.
func (m *Manifest) SetConfig(cfg map[string]string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.Config = cfg
	m.mu.Unlock()
}

// SetSeed records the run's trace seed.
func (m *Manifest) SetSeed(seed uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.Seed = seed
	m.mu.Unlock()
}

// AddOutput appends one produced file path.
func (m *Manifest) AddOutput(paths ...string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.Outputs = append(m.Outputs, paths...)
	m.mu.Unlock()
}

// Finish stamps wall time, CPU time, and peak RSS, attaches the final
// metrics snapshot (may be nil), and marks the run done. Wall/CPU keep
// updating if called again, so a manifest-so-far can be finished twice.
func (m *Manifest) Finish(snap *Snapshot) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Status = "done"
	m.WallSeconds = time.Since(m.start).Seconds()
	m.CPUSeconds = cpuSeconds()
	m.PeakRSSBytes = peakRSSBytes()
	m.Metrics = snap
}

// WriteJSON emits the manifest as indented JSON. Safe to call from the
// status endpoint while the run is still mutating the manifest.
func (m *Manifest) WriteJSON(w io.Writer) error {
	m.mu.Lock()
	// Shallow-copy the exported fields so marshalling happens outside
	// the lock-guarded window only via the copy.
	cp := struct {
		Tool         string            `json:"tool"`
		Args         []string          `json:"args"`
		StartUTC     time.Time         `json:"start_utc"`
		Status       string            `json:"status"`
		GitSHA       string            `json:"git_sha"`
		GitDirty     bool              `json:"git_dirty,omitempty"`
		GoVersion    string            `json:"go_version"`
		OS           string            `json:"os"`
		Arch         string            `json:"arch"`
		NumCPU       int               `json:"num_cpu"`
		GOMAXPROCS   int               `json:"gomaxprocs"`
		Hostname     string            `json:"hostname"`
		Config       map[string]string `json:"config,omitempty"`
		Seed         uint64            `json:"seed,omitempty"`
		WallSeconds  float64           `json:"wall_seconds"`
		CPUSeconds   float64           `json:"cpu_seconds"`
		PeakRSSBytes int64             `json:"peak_rss_bytes"`
		Outputs      []string          `json:"outputs,omitempty"`
		Metrics      *Snapshot         `json:"metrics,omitempty"`
	}{m.Tool, m.Args, m.StartUTC, m.Status, m.GitSHA, m.GitDirty,
		m.GoVersion, m.OS, m.Arch, m.NumCPU, m.GOMAXPROCS, m.Hostname,
		m.Config, m.Seed, m.WallSeconds, m.CPUSeconds, m.PeakRSSBytes,
		m.Outputs, m.Metrics}
	m.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	return writeTo(path, m.WriteJSON)
}

// writeTo streams fn into a freshly created file, surfacing write and
// close errors.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
