package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubClock advances a fake clock by step on every reading, giving spans
// deterministic durations.
func stubClock(c *SpanCollector, step time.Duration) {
	t := c.epoch
	c.clock = func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestStartSpanWithoutCollectorIsNoop(t *testing.T) {
	ctx, sp := StartSpan(nil, "root", A("k", "v"))
	if sp != nil {
		t.Fatalf("expected nil span without collector, got %v", sp)
	}
	if ctx == nil {
		t.Fatal("expected usable context")
	}
	// All nil-handle methods must be safe.
	sp.End()
	sp.SetAttr("a", "b")
	if sp.Duration() != 0 || sp.Name() != "" {
		t.Error("nil span should report zero values")
	}
}

func TestSpanNestingAndExport(t *testing.T) {
	col := NewSpanCollector(nil)
	stubClock(col, time.Millisecond)
	ctx := WithCollector(nil, col)

	ctx, root := StartSpan(ctx, "run")
	cctx, child := StartSpan(ctx, "phase", A("name", "warmup"))
	_, grand := StartSpan(cctx, "inner")
	grand.End()
	child.End()
	// Sibling under root.
	_, sib := StartSpan(ctx, "phase", A("name", "measure"))
	sib.End()
	root.End()

	e := col.Export()
	if len(e.Spans) != 4 || len(e.InFlight) != 0 {
		t.Fatalf("got %d finished, %d in flight; want 4, 0", len(e.Spans), len(e.InFlight))
	}
	byName := map[string][]SpanRecord{}
	for _, r := range e.Spans {
		byName[r.Name] = append(byName[r.Name], r)
	}
	rootRec := byName["run"][0]
	if rootRec.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rootRec.Parent)
	}
	for _, ph := range byName["phase"] {
		if ph.Parent != rootRec.ID {
			t.Errorf("phase parent = %d, want %d", ph.Parent, rootRec.ID)
		}
	}
	if inner := byName["inner"][0]; inner.Parent != byName["phase"][0].ID {
		t.Errorf("inner parent = %d, want %d", inner.Parent, byName["phase"][0].ID)
	}
	for _, r := range e.Spans {
		if r.DurNS <= 0 {
			t.Errorf("span %s has non-positive duration %d", r.Name, r.DurNS)
		}
	}
}

func TestSpanChildDurationsNestInsideRoot(t *testing.T) {
	// Child durations are positive and never exceed the root's: the
	// invariant behind reading coverage off a span tree.
	col := NewSpanCollector(nil)
	stubClock(col, time.Millisecond)
	ctx := WithCollector(nil, col)
	ctx, root := StartSpan(ctx, "run")
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	e := col.Export()
	var rootNS, childNS int64
	for _, r := range e.Spans {
		if r.Name == "run" {
			rootNS = r.DurNS
		} else {
			if r.DurNS <= 0 {
				t.Errorf("child duration %d", r.DurNS)
			}
			childNS += r.DurNS
		}
	}
	if childNS > rootNS {
		t.Fatalf("children sum %dns exceeds root %dns", childNS, rootNS)
	}
}

func TestSpanMetricDeltas(t *testing.T) {
	reg := NewRegistry()
	shifts := reg.Counter("test_shifts_total", "")
	idle := reg.Counter("test_idle_total", "")
	shifts.Add(5) // pre-span traffic must not appear in the delta
	idle.Add(1)

	col := NewSpanCollector(reg)
	ctx := WithCollector(nil, col)
	_, sp := StartSpan(ctx, "measure")
	shifts.Add(37)
	sp.End()

	e := col.Export()
	if len(e.Spans) != 1 {
		t.Fatalf("got %d spans", len(e.Spans))
	}
	m := e.Spans[0].Metrics
	if len(m) != 1 || m[0].Name != "test_shifts_total" || m[0].Value != 37 {
		t.Fatalf("metric deltas = %+v, want test_shifts_total=37 only", m)
	}
}

func TestSpanFoldedExport(t *testing.T) {
	col := NewSpanCollector(nil)
	stubClock(col, time.Millisecond)
	ctx := WithCollector(nil, col)
	ctx, root := StartSpan(ctx, "run")
	_, a := StartSpan(ctx, "alpha")
	a.End()
	_, b := StartSpan(ctx, "beta")
	b.End()
	root.End()

	var sb strings.Builder
	if err := col.Export().WriteFolded(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"run;alpha ", "run;beta ", "run "} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second export folds to identical bytes.
	var sb2 strings.Builder
	col.Export().WriteFolded(&sb2)
	if sb2.String() != out {
		t.Error("folded export not deterministic")
	}
}

func TestSpanExportInFlight(t *testing.T) {
	col := NewSpanCollector(nil)
	stubClock(col, time.Millisecond)
	ctx := WithCollector(nil, col)
	_, root := StartSpan(ctx, "run")
	e := col.Export()
	if len(e.InFlight) != 1 || !e.InFlight[0].Running || e.InFlight[0].Name != "run" {
		t.Fatalf("in-flight export = %+v", e.InFlight)
	}
	if e.InFlight[0].DurNS <= 0 {
		t.Error("in-flight span should report elapsed time")
	}
	root.End()
	root.End() // double End is a no-op
	if e := col.Export(); len(e.Spans) != 1 || len(e.InFlight) != 0 {
		t.Fatalf("after End: %d finished, %d in flight", len(e.Spans), len(e.InFlight))
	}
}

func TestSpanWriteFiles(t *testing.T) {
	col := NewSpanCollector(nil)
	stubClock(col, time.Millisecond)
	ctx := WithCollector(nil, col)
	_, sp := StartSpan(ctx, "run")
	sp.End()
	base := filepath.Join(t.TempDir(), "out")
	jp, fp, err := col.Export().WriteFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{jp, fp} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("expected non-empty %s: %v", p, err)
		}
	}
}

func TestSpanConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	col := NewSpanCollector(reg)
	ctx := WithCollector(nil, col)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sctx, sp := StartSpan(ctx, "worker")
				_, inner := StartSpan(sctx, "op")
				c.Inc()
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(col.Export().Spans); got != 1600 {
		t.Fatalf("got %d spans, want 1600", got)
	}
}
