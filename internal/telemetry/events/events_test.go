package events

import (
	"strings"
	"sync"
	"testing"

	"racetrack/hifi/internal/telemetry"
)

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	b.Emit(Event{Type: RunStart, Name: "x"})
	b.AttachSink(nil)
	b.Instrument(nil)
	if got := b.Seq(); got != 0 {
		t.Errorf("nil bus Seq() = %d, want 0", got)
	}
	if got := b.Dropped(); got != 0 {
		t.Errorf("nil bus Dropped() = %d, want 0", got)
	}
	if err := b.SinkErr(); err != nil {
		t.Errorf("nil bus SinkErr() = %v, want nil", err)
	}
	if got := b.ReplaySince(0); got != nil {
		t.Errorf("nil bus ReplaySince = %v, want nil", got)
	}
	replay, ch, cancel := b.Subscribe(0, 0)
	if replay != nil || ch != nil {
		t.Errorf("nil bus Subscribe = (%v, %v), want nils", replay, ch)
	}
	cancel() // must not panic
}

// The detached fast path must be free: ROADMAP item 2 (zero-overhead
// observability) depends on a nil bus costing nothing on every
// Emit call threaded through the engine and simulator hot paths.
func TestNilBusEmitZeroAllocs(t *testing.T) {
	var b *Bus
	e := Event{Type: JobFinished, Name: "w/x", Worker: 3, MS: 12, N: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		b.Emit(e)
	})
	if allocs != 0 {
		t.Errorf("nil bus Emit: %v allocs/op, want 0", allocs)
	}
}

func TestEmitAssignsMonotonicSeq(t *testing.T) {
	b := New(8)
	for i := 0; i < 5; i++ {
		b.Emit(Event{Type: RunPhase, Name: "p"})
	}
	if got := b.Seq(); got != 5 {
		t.Fatalf("Seq() = %d, want 5", got)
	}
	evs := b.ReplaySince(0)
	if len(evs) != 5 {
		t.Fatalf("ReplaySince(0) returned %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has Seq %d, want %d", i, e.Seq, i+1)
		}
		if e.TMS == 0 {
			t.Errorf("event %d has zero timestamp", i)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Emit(Event{Type: RunPhase})
	}
	evs := b.ReplaySince(0)
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Seqs 7..10 survive; 1..6 were evicted.
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Errorf("ring spans seq %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
}

func TestReplaySinceFilters(t *testing.T) {
	b := New(16)
	for i := 0; i < 6; i++ {
		b.Emit(Event{Type: RunPhase})
	}
	evs := b.ReplaySince(4)
	if len(evs) != 2 || evs[0].Seq != 5 || evs[1].Seq != 6 {
		t.Fatalf("ReplaySince(4) = %+v, want seqs 5,6", evs)
	}
	if got := b.ReplaySince(6); len(got) != 0 {
		t.Errorf("ReplaySince(6) = %+v, want empty", got)
	}
}

func TestSubscribeReceivesLiveEvents(t *testing.T) {
	b := New(16)
	b.Emit(Event{Type: RunStart, Name: "tool"})
	replay, ch, cancel := b.Subscribe(0, 8)
	defer cancel()
	if len(replay) != 1 || replay[0].Type != RunStart {
		t.Fatalf("replay = %+v, want the run.start event", replay)
	}
	b.Emit(Event{Type: RunPhase, Name: "p1"})
	e := <-ch
	if e.Type != RunPhase || e.Seq != 2 {
		t.Fatalf("live event = %+v, want run.phase seq 2", e)
	}
}

// Replay and registration must be atomic: no event may be both replayed
// and delivered live, and none may fall between. Hammer the bus from a
// writer goroutine while subscribing repeatedly and check each
// subscriber sees a gapless, duplicate-free sequence.
func TestSubscribeReplayNoGapNoDup(t *testing.T) {
	b := New(1024)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Emit(Event{Type: RunPhase})
			}
		}
	}()
	for i := 0; i < 20; i++ {
		replay, ch, cancel := b.Subscribe(0, 1024)
		last := uint64(0)
		for _, e := range replay {
			if e.Seq != last+1 && last != 0 {
				// A ring eviction can truncate the front of the replay, but
				// within the replay the sequence must be gapless.
				t.Fatalf("replay gap: %d after %d", e.Seq, last)
			}
			last = e.Seq
		}
		// The first live event must directly follow the replay.
		if e, ok := <-ch; ok {
			if last != 0 && e.Seq != last+1 {
				t.Fatalf("live event seq %d does not follow replay end %d", e.Seq, last)
			}
		}
		cancel()
	}
	close(stop)
	wg.Wait()
}

func TestSlowSubscriberDropsAndCounts(t *testing.T) {
	b := New(64)
	reg := telemetry.NewRegistry()
	b.Instrument(reg)
	_, _, cancel := b.Subscribe(0, 2) // tiny buffer, never read
	defer cancel()
	for i := 0; i < 10; i++ {
		b.Emit(Event{Type: RunPhase})
	}
	// 2 buffered, 8 dropped.
	if got := b.Dropped(); got != 8 {
		t.Fatalf("Dropped() = %d, want 8", got)
	}
	if v, ok := reg.Snapshot().Lookup(telemetry.MetricEventsDropped); !ok || v != 8 {
		t.Errorf("registry %s = %v (present=%v), want 8", telemetry.MetricEventsDropped, v, ok)
	}
}

func TestCancelIsIdempotentAndClosesChannel(t *testing.T) {
	b := New(8)
	_, ch, cancel := b.Subscribe(0, 2)
	cancel()
	cancel() // second cancel must not panic (double close)
	if _, ok := <-ch; ok {
		t.Error("channel still open after cancel")
	}
	b.Emit(Event{Type: RunPhase}) // must not panic on the removed sub
}

func TestAttachSinkWritesNDJSON(t *testing.T) {
	b := New(8)
	var sb strings.Builder
	if err := WriteHeader(&sb, "test-tool"); err != nil {
		t.Fatal(err)
	}
	b.AttachSink(&sb)
	b.Emit(Event{Type: RunStart, Name: "test-tool"})
	b.Emit(Event{Type: JobFinished, Name: "w/x", Worker: 1, MS: 3, N: 1})
	if err := b.SinkErr(); err != nil {
		t.Fatalf("SinkErr: %v", err)
	}

	hdr, evs, err := ReadLog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if hdr.Schema != SchemaV1 || hdr.Tool != "test-tool" {
		t.Errorf("header = %+v", hdr)
	}
	if len(evs) != 2 || evs[0].Type != RunStart || evs[1].Type != JobFinished {
		t.Fatalf("events = %+v", evs)
	}
	if evs[1].Worker != 1 || evs[1].MS != 3 || evs[1].N != 1 {
		t.Errorf("round-trip lost fields: %+v", evs[1])
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errWriteFailed
}

var errWriteFailed = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write failed" }

func TestSinkErrorDetachesLogically(t *testing.T) {
	b := New(8)
	fw := &failWriter{}
	b.AttachSink(fw)
	b.Emit(Event{Type: RunPhase})
	b.Emit(Event{Type: RunPhase})
	if err := b.SinkErr(); err == nil {
		t.Fatal("SinkErr = nil after failing writes")
	}
	if fw.n != 1 {
		t.Errorf("sink written %d times after first failure, want 1", fw.n)
	}
	// The bus itself keeps working.
	if got := b.Seq(); got != 2 {
		t.Errorf("Seq() = %d, want 2", got)
	}
}

func TestReadLogToleratesTruncatedTail(t *testing.T) {
	log := `{"schema":"hifi_events_v1","tool":"t"}
{"seq":1,"t_ms":1,"type":"run.start","name":"t"}
{"seq":2,"t_ms":2,"type":"run.fin`
	hdr, evs, err := ReadLog(strings.NewReader(log))
	if err != nil {
		t.Fatalf("ReadLog on truncated tail: %v", err)
	}
	if hdr.Schema != SchemaV1 || len(evs) != 1 {
		t.Fatalf("hdr=%+v events=%d, want schema + 1 event", hdr, len(evs))
	}
}

func TestReadLogRejectsMidfileCorruption(t *testing.T) {
	log := `{"seq":1,"t_ms":1,"type":"run.start"}
not json at all
{"seq":3,"t_ms":3,"type":"run.finish"}`
	if _, _, err := ReadLog(strings.NewReader(log)); err == nil {
		t.Fatal("ReadLog accepted corruption followed by valid lines")
	}
}

func TestCanonicalExcludesTimingFields(t *testing.T) {
	a := Event{Seq: 1, TMS: 111, Type: JobFinished, Name: "w/x", Worker: 2, MS: 9, N: 1, V: 0.5}
	b := Event{Seq: 7, TMS: 999, Type: JobFinished, Name: "w/x", Worker: 5, MS: 42, N: 1, V: 0.5}
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical forms differ:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	c := Event{Type: JobFinished, Name: "w/y", N: 1, V: 0.5}
	if a.Canonical() == c.Canonical() {
		t.Error("canonical form ignores Name")
	}
}

func TestConcurrentEmitAndSubscribe(t *testing.T) {
	b := New(256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Emit(Event{Type: JobFinished, Worker: w})
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			replay, ch, cancel := b.Subscribe(0, 16)
			// Receive one event from whichever side the subscribe raced
			// into: an empty replay means seq was 0 at subscribe time,
			// so every emit lands after us and a live delivery is
			// guaranteed.
			if len(replay) == 0 {
				<-ch
			}
			cancel()
		}()
	}
	wg.Wait()
	if got := b.Seq(); got != 800 {
		t.Errorf("Seq() = %d, want 800", got)
	}
}
