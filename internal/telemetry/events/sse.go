package events

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler serves the bus as a Server-Sent Events stream (the /events
// route on the status mux). The protocol is plain SSE:
//
//	: hifi_events_v1
//	id: 17
//	event: job.started
//	data: {"seq":17,"t_ms":...,"type":"job.started","name":"fig14/ferret",...}
//
// Each event's SSE id is its bus sequence number, so the browser/client
// reconnect contract works exactly: a client that reconnects with
// Last-Event-ID: 17 (header, or ?last_event_id=17 for curl-style
// clients) first receives a replay of every ring-buffered event with
// seq > 17, then the live stream. Events older than the ring are gone;
// the client detects the gap from the first replayed id.
//
// The stream never blocks Emit: a client that reads too slowly has
// events dropped (counted in hifi_events_dropped_total) and recovers
// them by reconnecting with its last seen id.
//
// Returns a 200 with an empty comment-only stream when the bus is nil,
// matching the empty-but-valid contract of the other status routes.
func Handler(b *Bus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The controller surfaces flush errors (including "streaming
		// unsupported"), so a dead or non-streaming client ends the
		// handler instead of being ignored.
		fl := http.NewResponseController(w)
		h := w.Header()
		h.Set("Content-Type", "text/event-stream; charset=utf-8")
		h.Set("Cache-Control", "no-store")
		h.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)

		// Handshake comment: names the schema and confirms the stream is
		// open before any event arrives.
		fmt.Fprintf(w, ": %s\n\n", SchemaV1)
		if err := fl.Flush(); err != nil {
			return
		}

		if b == nil {
			// Empty-but-valid: hold the stream open until the client goes
			// away, exactly like a bus that never emits.
			<-r.Context().Done()
			return
		}

		after := lastEventID(r)
		replay, ch, cancel := b.Subscribe(after, 256)
		defer cancel()
		for _, e := range replay {
			if err := writeSSE(w, e); err != nil {
				return
			}
		}
		if err := fl.Flush(); err != nil {
			return
		}

		for {
			select {
			case e, ok := <-ch:
				if !ok {
					return
				}
				if err := writeSSE(w, e); err != nil {
					return
				}
				// Flush per event: latency beats throughput on a
				// human-watched dashboard stream.
				if err := fl.Flush(); err != nil {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	})
}

// lastEventID extracts the client's resume position: the standard SSE
// Last-Event-ID header, or a last_event_id query parameter for clients
// that cannot set headers. 0 means no position — replay everything the
// ring still holds.
func lastEventID(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("last_event_id")
	}
	if v == "" {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// writeSSE renders one event as an SSE frame.
func writeSSE(w http.ResponseWriter, e Event) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, b)
	return err
}
