package events

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// The NDJSON event log (-events-out) is one JSON object per line: a
// header identifying the schema, then every event in emission order.
//
//	{"schema":"hifi_events_v1","tool":"hifi-experiments"}
//	{"seq":1,"t_ms":1754649600000,"type":"run.start","name":"hifi-experiments"}
//	{"seq":2,"t_ms":1754649600003,"type":"run.phase","name":"fig14"}
//	...
//
// Append-only and line-oriented, so the file is valid at every instant:
// hifi-watch can tail it while the run is live, and a truncated final
// line (the process died mid-write) spoils nothing before it.

// Header is the first line of an NDJSON event log.
type Header struct {
	Schema string `json:"schema"`
	// Tool is the emitting command ("hifi-experiments").
	Tool string `json:"tool,omitempty"`
}

// WriteHeader writes the hifi_events_v1 header line for tool to w.
func WriteHeader(w io.Writer, tool string) error {
	b, err := json.Marshal(Header{Schema: SchemaV1, Tool: tool})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// writeNDJSON appends one event line to w.
func writeNDJSON(w io.Writer, e Event) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// ReadLog parses an NDJSON event log from r: an optional header line
// followed by event lines. Blank lines are skipped; a truncated or
// malformed final line is tolerated (the process may have died
// mid-write), but a malformed line with valid lines after it is an
// error. Returns the header (zero-valued if the log starts directly
// with an event) and the events in file order.
func ReadLog(r io.Reader) (Header, []Event, error) {
	var hdr Header
	var evs []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	badLine := 0 // most recent unparseable line (tolerated only if last)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if badLine != 0 {
			return hdr, evs, fmt.Errorf("events: log line %d: malformed JSON", badLine)
		}
		if lineNo == 1 && strings.Contains(line, `"schema"`) {
			if err := json.Unmarshal([]byte(line), &hdr); err != nil {
				return hdr, evs, fmt.Errorf("events: log header: %w", err)
			}
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			badLine = lineNo
			continue
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		return hdr, evs, fmt.Errorf("events: read log: %w", err)
	}
	return hdr, evs, nil
}

// ReadLogFile is ReadLog over a file path.
func ReadLogFile(path string) (Header, []Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer func() { _ = f.Close() }()
	return ReadLog(f)
}
