package events

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseFrame is one parsed SSE event frame.
type sseFrame struct {
	ID    uint64
	Event string
	Data  Event
}

// readFrames consumes SSE frames from r until n frames arrive or the
// stream ends, skipping comment lines.
func readFrames(t *testing.T, r *bufio.Reader, n int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	var sawData bool
	for len(frames) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended after %d/%d frames: %v", len(frames), n, err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if sawData {
				frames = append(frames, cur)
				cur, sawData = sseFrame{}, false
			}
		case strings.HasPrefix(line, ":"):
			// comment (handshake)
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.ID = id
		case strings.HasPrefix(line, "event: "):
			cur.Event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &cur.Data); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			sawData = true
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

func dialSSE(t *testing.T, url string, lastEventID uint64) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
	return bufio.NewReader(resp.Body), func() { _ = resp.Body.Close() }
}

func TestSSELiveStream(t *testing.T) {
	b := New(64)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()

	r, done := dialSSE(t, srv.URL, 0)
	defer done()

	go func() {
		for i := 0; i < 5; i++ {
			b.Emit(Event{Type: JobFinished, Name: fmt.Sprintf("job-%d", i), N: 1})
		}
	}()

	frames := readFrames(t, r, 5)
	for i, f := range frames {
		if f.ID != uint64(i+1) {
			t.Errorf("frame %d has id %d, want %d (monotonic from 1)", i, f.ID, i+1)
		}
		if f.Event != string(JobFinished) {
			t.Errorf("frame %d event = %q", i, f.Event)
		}
		if f.Data.Seq != f.ID {
			t.Errorf("frame %d: data.seq %d != id %d", i, f.Data.Seq, f.ID)
		}
		if f.Data.Name != fmt.Sprintf("job-%d", i) {
			t.Errorf("frame %d name = %q", i, f.Data.Name)
		}
	}
}

func TestSSEReplayFromLastEventID(t *testing.T) {
	b := New(64)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()

	for i := 0; i < 8; i++ {
		b.Emit(Event{Type: RunPhase, Name: fmt.Sprintf("p%d", i)})
	}

	// Reconnect claiming we saw up to id 5: frames 6, 7, 8 replay, then
	// live events follow seamlessly.
	r, done := dialSSE(t, srv.URL, 5)
	defer done()
	frames := readFrames(t, r, 3)
	for i, f := range frames {
		if f.ID != uint64(6+i) {
			t.Fatalf("replay frame %d has id %d, want %d", i, f.ID, 6+i)
		}
	}
	b.Emit(Event{Type: RunFinish})
	live := readFrames(t, r, 1)
	if live[0].ID != 9 || live[0].Event != string(RunFinish) {
		t.Fatalf("post-replay live frame = %+v, want run.finish id 9", live[0])
	}
}

func TestSSEReplayQueryParam(t *testing.T) {
	b := New(64)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()
	for i := 0; i < 4; i++ {
		b.Emit(Event{Type: RunPhase})
	}
	r, done := dialSSE(t, srv.URL+"?last_event_id=2", 0)
	defer done()
	frames := readFrames(t, r, 2)
	if frames[0].ID != 3 || frames[1].ID != 4 {
		t.Fatalf("query-param replay ids = %d,%d, want 3,4", frames[0].ID, frames[1].ID)
	}
}

func TestSSEMultiSubscriber(t *testing.T) {
	b := New(64)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()

	const subs = 3
	var wg sync.WaitGroup
	ready := make(chan struct{}, subs)
	for s := 0; s < subs; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, done := dialSSE(t, srv.URL, 0)
			defer done()
			ready <- struct{}{}
			frames := readFrames(t, r, 4)
			last := uint64(0)
			for _, f := range frames {
				if f.ID <= last {
					t.Errorf("non-monotonic id %d after %d", f.ID, last)
				}
				last = f.ID
			}
		}()
	}
	for s := 0; s < subs; s++ {
		<-ready
	}
	// The subscribers are connected but their bus subscriptions may lag
	// the dial; replay makes this safe — every frame is either replayed
	// or live.
	for i := 0; i < 4; i++ {
		b.Emit(Event{Type: JobFinished, N: 1})
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
}

// A subscriber that never reads must not block Emit; the dropped
// deliveries are counted.
func TestSSESlowClientDoesNotBlockEmit(t *testing.T) {
	b := New(2048)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()

	r, done := dialSSE(t, srv.URL, 0)
	defer done()

	// Emit far more than the subscriber buffer (256) plus any kernel
	// socket buffering could hold, without reading: Emit must return
	// promptly every time.
	emitted := make(chan struct{})
	go func() {
		for i := 0; i < 5000; i++ {
			b.Emit(Event{Type: JobFinished, Name: "flood", N: 1})
		}
		close(emitted)
	}()
	select {
	case <-emitted:
	case <-time.After(10 * time.Second):
		t.Fatal("Emit blocked on a slow SSE client")
	}
	if b.Dropped() == 0 {
		t.Error("expected dropped deliveries for a non-reading client")
	}
	// The stream itself is still coherent from the start.
	frames := readFrames(t, r, 1)
	if frames[0].ID == 0 {
		t.Error("frame without id")
	}
}

func TestSSENilBusServesEmptyStream(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil-bus /events: %d, want 200", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, SchemaV1) {
		t.Errorf("handshake = %q, want schema comment", line)
	}
}
