// Package events is the push-based structured event plane of the
// observability stack: a nil-safe, bounded, lock-cheap bus emitting
// sequence-numbered events for run lifecycle, engine job lifecycle,
// fault-plan windows, fidelity verdicts, and bench regressions.
//
// Where the metrics registry answers "how much so far" by polling, the
// bus answers "what just happened" by pushing: every Emit assigns the
// next sequence number, appends the event to a bounded replay ring,
// fans it out to live subscribers (the SSE /events route), and appends
// one NDJSON line to the optional sink (-events-out). This is the
// streaming substrate the planned hifi-serve sweep daemon reuses
// verbatim (ROADMAP item 1); cmd/hifi-watch is its first consumer.
//
// Three contracts, mirroring the rest of internal/telemetry:
//
//   - Nil-safe and free when detached: every method on a nil *Bus is a
//     no-op, and the nil Emit path performs zero allocations (guarded
//     by an allocs/op test and the events-emit bench case).
//   - Bounded: the replay ring holds the last RingCap events; a slow
//     SSE subscriber drops events (counted in
//     hifi_events_dropped_total) rather than blocking Emit.
//   - Deterministic payloads: an Event separates identity (Type, Name,
//     Detail, N, V — reproducible for a seeded sweep at any worker
//     count) from timing (Seq, TMS, MS, Worker — wall-clock and
//     scheduling facts). Canonical() renders only the identity, which
//     is what the golden event-log test compares across -jobs settings.
//
// See docs/events.md for the hifi_events_v1 schema and the SSE
// protocol.
package events

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"racetrack/hifi/internal/telemetry"
)

// SchemaV1 identifies the event stream layout, stamped into the NDJSON
// header line and the SSE handshake comment.
const SchemaV1 = "hifi_events_v1"

// Type names one event kind. The dotted families group related events
// for subscribers that filter ("job.*" is the engine lifecycle).
type Type string

const (
	// Run lifecycle, emitted by the CLI plumbing (internal/cliutil) and
	// the memsim phase boundaries.
	RunStart  Type = "run.start"  // Name: tool
	RunPhase  Type = "run.phase"  // Name: phase ("fig14", "memsim:ferret/measure")
	RunFinish Type = "run.finish" // MS: run wall time

	// Engine job lifecycle (internal/engine). Name is the job label.
	JobQueued   Type = "job.queued"    // N: batch size the job arrived in
	JobStarted  Type = "job.started"   // Worker: pool slot
	JobFinished Type = "job.finished"  // Worker, MS: wall ms, N: attempts
	JobCacheHit Type = "job.cache_hit" // Detail: "resumed" when via the journal
	JobRetried  Type = "job.retry"     // N: attempt number, Detail: error
	JobTimeout  Type = "job.timeout"   // MS: the deadline that fired
	JobPanic    Type = "job.panic"     // Detail: first line of the panic value
	JobFailed   Type = "job.failed"    // Detail: the permanent error

	// Device fault-plan windows (internal/faults): a window opens when
	// the composed modulation leaves identity and closes when it
	// returns. Name scopes the run ("memsim:ferret"), N is the shift
	// operation index on the device's own clock.
	FaultOpen  Type = "fault.open" // V: rate factor at opening
	FaultClose Type = "fault.close"

	// Fidelity verdicts (internal/fidelity): one per evaluated anchor.
	FidelityVerdict Type = "fidelity.verdict" // Name: anchor ID, Detail: status, V: measured

	// Sweep-daemon job lifecycle (internal/serve, cmd/hifi-serve). Name
	// is the serve job ID. On the daemon's global bus these narrate all
	// tenants; on a job's own bus the serve.job.* terminal event is the
	// last event of the stream, which is how a per-job SSE client knows
	// the stream is complete (see docs/serve.md).
	ServeJobAccepted Type = "serve.job.accepted" // Detail: spec fingerprint
	ServeJobDeduped  Type = "serve.job.deduped"  // Detail: spec fingerprint (a submission coalesced onto a live job)
	ServeJobRejected Type = "serve.job.rejected" // Detail: "queue" | "quota" | "draining"
	ServeJobStarted  Type = "serve.job.started"
	ServeJobFinished Type = "serve.job.finished" // MS: job wall time, N: experiments run
	ServeJobFailed   Type = "serve.job.failed"   // Detail: the error
	ServeJobCanceled Type = "serve.job.canceled" // Detail: "client" | "drain"
	// ServeJobRecovered narrates restart recovery from the crash-safe
	// job index: Detail is "restored" (a completed job whose status is
	// queryable again) or "requeued" (a job that was queued or running
	// when the previous process died and will run again).
	ServeJobRecovered Type = "serve.job.recovered" // Detail: "restored" | "requeued"

	// Bench regressions (cmd/hifi-bench -compare): one per breached gate.
	BenchRegression Type = "bench.regression" // Name: benchmark, Detail: reason, V: ratio
)

// Event is one structured occurrence. The zero value of every optional
// field is omitted from the JSON, so payloads stay small and the
// canonical form is stable.
type Event struct {
	// Seq is the bus-assigned sequence number: strictly increasing,
	// starting at 1, unique across the whole run. It doubles as the SSE
	// event id, so Last-Event-ID replay is exact.
	Seq uint64 `json:"seq"`
	// TMS is the emit wall-clock time in Unix milliseconds.
	TMS int64 `json:"t_ms"`

	Type Type `json:"type"`
	// Name identifies the subject: job label, phase name, anchor ID,
	// benchmark name, fault scope.
	Name string `json:"name,omitempty"`
	// Detail carries free-text context: an error, a verdict status.
	Detail string `json:"detail,omitempty"`
	// TraceID correlates the event with the request that caused it: the
	// 32-hex-char W3C trace ID minted or ingested at the hifi-serve HTTP
	// layer (internal/telemetry/tracectx). Empty outside a served
	// request. Events emitted without one inherit the bus's default
	// (SetTraceID) — how a serve job's entire stream gets stamped.
	TraceID string `json:"trace_id,omitempty"`
	// Worker is the engine pool slot (job.started / job.finished).
	Worker int `json:"worker,omitempty"`
	// N is a small integer fact: attempts, batch size, operation index.
	N int64 `json:"n,omitempty"`
	// MS is a duration in milliseconds (job wall time, run wall time).
	MS int64 `json:"ms,omitempty"`
	// V is a float fact: a measured value, a ratio, a rate factor.
	V float64 `json:"v,omitempty"`
}

// canonical is the deterministic projection of an Event: identity
// fields only, no sequence numbers, timestamps, durations, or worker
// slots — the parts of a seeded sweep that are byte-identical at any
// -jobs setting or cache temperature.
type canonical struct {
	Type    Type    `json:"type"`
	Name    string  `json:"name,omitempty"`
	Detail  string  `json:"detail,omitempty"`
	TraceID string  `json:"trace_id,omitempty"`
	N       int64   `json:"n,omitempty"`
	V       float64 `json:"v,omitempty"`
}

// Canonical renders the event's deterministic identity as compact JSON.
// The golden event-log test sorts these lines and compares runs; see
// docs/events.md ("determinism").
func (e Event) Canonical() string {
	b, err := json.Marshal(canonical{e.Type, e.Name, e.Detail, e.TraceID, e.N, e.V})
	if err != nil {
		// Event is plain data; a marshal failure is a programming error.
		panic(fmt.Sprintf("events: Canonical: %v", err))
	}
	return string(b)
}

// DefaultRingCap is the replay ring capacity when New is given none:
// enough for every event of a scaled CI sweep and several minutes of a
// full one, at ~100 bytes an event about 400 KB.
const DefaultRingCap = 4096

// Bus is the event fan-out point. One bus serves a whole process: the
// CLIs build one in cliutil.Obs when -events-out or -pprof asks for an
// event surface, and thread it through the engine, memsim, and the
// fault plane. A nil *Bus is the detached state — every method is a
// nil-safe no-op and Emit costs one branch and zero allocations.
type Bus struct {
	mu   sync.Mutex
	seq  uint64
	ring []Event // fixed-capacity circular buffer
	head int     // next write position
	n    int     // live events in ring

	subs   map[int]chan Event
	nextID int

	sink    io.Writer
	sinkErr error // first sink write failure; later writes are skipped

	// defaultTrace, when set, stamps every emitted event that carries no
	// TraceID of its own. A per-job serve bus sets it once at admission
	// so the whole engine event stream inherits the request's trace ID.
	defaultTrace string

	dropped atomic.Uint64
	dropCtr *telemetry.Counter
}

// New builds a bus with the given replay-ring capacity (<= 0 means
// DefaultRingCap).
func New(ringCap int) *Bus {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Bus{
		ring: make([]Event, ringCap),
		subs: map[int]chan Event{},
	}
}

// Instrument registers the slow-client drop counter on reg. Nil-safe on
// both sides.
func (b *Bus) Instrument(reg *telemetry.Registry) {
	if b == nil || reg == nil {
		return
	}
	b.mu.Lock()
	b.dropCtr = reg.Counter(telemetry.MetricEventsDropped,
		"events dropped because a subscriber's buffer was full")
	b.mu.Unlock()
}

// AttachSink routes every subsequent event to w as one NDJSON line.
// The caller owns w's lifetime (buffering, flush, close); cliutil
// flushes and closes it at Finish. The first write error detaches the
// sink logically — later events skip it — and is returned by SinkErr.
func (b *Bus) AttachSink(w io.Writer) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.sink = w
	b.sinkErr = nil
	b.mu.Unlock()
}

// SetTraceID sets the bus's default trace ID: every subsequently
// emitted event that carries no TraceID of its own is stamped with it.
// hifi-serve calls this on each job's private bus at admission, which
// is how engine events — emitted by code that knows nothing about
// traces — end up correlated with the HTTP request that queued the
// job. Nil-safe.
func (b *Bus) SetTraceID(id string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.defaultTrace = id
	b.mu.Unlock()
}

// SinkErr returns the first NDJSON sink write failure, or nil.
func (b *Bus) SinkErr() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sinkErr
}

// Seq returns the high-water sequence number: how many events have been
// emitted over the bus's lifetime. Nil-safe (0).
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Dropped returns how many subscriber deliveries were dropped because a
// buffer was full. Nil-safe (0).
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Emit stamps the event with the next sequence number and the current
// wall clock, stores it in the replay ring, appends it to the NDJSON
// sink, and offers it to every live subscriber without blocking: a
// subscriber whose buffer is full misses the event (counted in
// hifi_events_dropped_total) and can recover the gap by reconnecting
// with Last-Event-ID. Safe for concurrent use; a nil bus is a free
// no-op.
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	e.TMS = time.Now().UnixMilli()
	if e.TraceID == "" {
		e.TraceID = b.defaultTrace
	}

	b.ring[b.head] = e
	b.head = (b.head + 1) % len(b.ring)
	if b.n < len(b.ring) {
		b.n++
	}

	if b.sink != nil && b.sinkErr == nil {
		if err := writeNDJSON(b.sink, e); err != nil {
			b.sinkErr = err
		}
	}

	var drops uint64
	for _, ch := range b.subs {
		select {
		case ch <- e:
		default:
			drops++
		}
	}
	ctr := b.dropCtr
	b.mu.Unlock()

	if drops > 0 {
		b.dropped.Add(drops)
		ctr.Add(float64(drops))
	}
}

// Subscribe registers a live subscriber with the given channel buffer
// (<= 0 means 64) after replaying the ring's events newer than afterSeq
// into the returned slice. Replay and registration are atomic, so the
// caller sees every event exactly once (or a counted drop): replayed
// events end at some sequence number s, and the channel carries s+1
// onward. The cancel function unregisters and closes the channel.
func (b *Bus) Subscribe(afterSeq uint64, buf int) (replay []Event, ch <-chan Event, cancel func()) {
	if b == nil {
		return nil, nil, func() {}
	}
	if buf <= 0 {
		buf = 64
	}
	c := make(chan Event, buf)
	b.mu.Lock()
	replay = b.replayLocked(afterSeq)
	id := b.nextID
	b.nextID++
	b.subs[id] = c
	b.mu.Unlock()
	return replay, c, func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
		b.mu.Unlock()
	}
}

// ReplaySince returns the ring's events with Seq > afterSeq, oldest
// first. Events older than the ring's capacity are gone; the caller can
// detect the gap by comparing the first returned Seq with afterSeq+1.
func (b *Bus) ReplaySince(afterSeq uint64) []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.replayLocked(afterSeq)
}

func (b *Bus) replayLocked(afterSeq uint64) []Event {
	if b.n == 0 {
		return nil
	}
	start := (b.head - b.n + len(b.ring)) % len(b.ring)
	out := make([]Event, 0, b.n)
	for i := 0; i < b.n; i++ {
		e := b.ring[(start+i)%len(b.ring)]
		if e.Seq > afterSeq {
			out = append(out, e)
		}
	}
	return out
}
