package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// HealthState carries the live process facts behind the enriched
// /healthz body: uptime, the current run phase, jobs in flight, and the
// event stream's sequence high-water mark. The probe contract stays a
// bare 200 whose body contains "ok"; the JSON fields ride along for
// humans and dashboards.
//
// Phase is pushed by the CLI plumbing at each phase boundary; jobs in
// flight and the events high-water mark are pulled through settable
// funcs because their owners (the engine, the event bus) are built
// after the status mux starts serving. A nil *HealthState is a valid
// no-op, and every setter is safe for concurrent use with serving.
type HealthState struct {
	start time.Time

	mu        sync.Mutex
	phase     string
	inFlight  func() int
	eventsSeq func() uint64
	degraded  func() []string
}

// NewHealthState starts the uptime clock now.
func NewHealthState() *HealthState {
	return &HealthState{start: time.Now()}
}

// SetPhase records the current run phase. Nil-safe.
func (h *HealthState) SetPhase(phase string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.phase = phase
	h.mu.Unlock()
}

// SetInFlight supplies the jobs-in-flight probe (the engine's running
// count). Nil-safe; f may be nil to detach.
func (h *HealthState) SetInFlight(f func() int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.inFlight = f
	h.mu.Unlock()
}

// SetEventsSeq supplies the event-stream high-water probe (the bus's
// Seq). Nil-safe; f may be nil to detach.
func (h *HealthState) SetEventsSeq(f func() uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.eventsSeq = f
	h.mu.Unlock()
}

// SetDegraded supplies the degradation probe: a func returning the
// names of subsystems currently running in degraded mode (empty or nil
// when fully healthy). Nil-safe; f may be nil to detach.
func (h *HealthState) SetDegraded(f func() []string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.degraded = f
	h.mu.Unlock()
}

// healthBody is the /healthz JSON document.
type healthBody struct {
	Status   string `json:"status"`
	UptimeMS int64  `json:"uptime_ms"`
	Phase    string `json:"phase,omitempty"`
	InFlight int    `json:"jobs_in_flight"`
	Events   uint64 `json:"events_seq"`
	// Degraded lists subsystems running in degraded mode (e.g. a job
	// index that stopped persisting after ENOSPC). Status stays "ok" —
	// the probe contract is liveness, not fitness — so orchestrators
	// don't restart-loop a daemon that is still serving.
	Degraded []string `json:"degraded,omitempty"`
}

// WriteJSON renders the health document. A nil state still writes a
// valid body (status ok, zero uptime), preserving the probe contract
// for tools that never built one.
func (h *HealthState) WriteJSON(w io.Writer) error {
	body := healthBody{Status: "ok"}
	if h != nil {
		body.UptimeMS = time.Since(h.start).Milliseconds()
		h.mu.Lock()
		body.Phase = h.phase
		inFlight, eventsSeq, degraded := h.inFlight, h.eventsSeq, h.degraded
		h.mu.Unlock()
		if inFlight != nil {
			body.InFlight = inFlight()
		}
		if eventsSeq != nil {
			body.Events = eventsSeq()
		}
		if degraded != nil {
			body.Degraded = degraded()
		}
	}
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
