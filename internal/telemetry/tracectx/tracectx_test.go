package tracectx

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	g := NewGen(42)
	tc := g.NewContext()
	h := tc.Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent %q is %d chars, want 55", h, len(h))
	}
	got, err := Parse(h)
	if err != nil {
		t.Fatalf("Parse(%q): %v", h, err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q: want version 00 and sampled flags", h)
	}
}

func TestParseMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, err := Parse(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	cases := []struct {
		name, header string
	}{
		{"empty", ""},
		{"too short", "00-abc-def-01"},
		{"bad separators", strings.ReplaceAll(valid, "-", "_")},
		{"uppercase trace-id", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01"},
		{"uppercase parent-id", "00-0af7651916cd43dd8448eb211c80319c-B7AD6B7169203331-01"},
		{"non-hex version", "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"forbidden version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"all-zero trace-id", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"all-zero parent-id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
		{"version 00 with trailing data", valid + "-extra"},
		{"future version without separator", "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01xx"},
		{"non-hex flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.header); err == nil {
				t.Fatalf("Parse(%q) accepted a malformed header", tt.header)
			}
		})
	}
	// Forward compatibility: a future version may carry extra fields.
	future := "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-future-data"
	if _, err := Parse(future); err != nil {
		t.Fatalf("future-version header rejected: %v", err)
	}
}

func TestGenDeterministicAndNonZero(t *testing.T) {
	a, b := NewGen(7), NewGen(7)
	for i := 0; i < 64; i++ {
		ta, tb := a.TraceID(), b.TraceID()
		if ta != tb {
			t.Fatalf("iteration %d: same seed diverged: %s vs %s", i, ta, tb)
		}
		if ta.IsZero() {
			t.Fatalf("iteration %d: zero trace ID generated", i)
		}
		sa, sb := a.SpanID(), b.SpanID()
		if sa != sb || sa.IsZero() {
			t.Fatalf("iteration %d: span IDs %s vs %s", i, sa, sb)
		}
	}
	if NewGen(7).TraceID() == NewGen(8).TraceID() {
		t.Fatal("different seeds produced the same first trace ID")
	}
}

func TestChildKeepsTraceMintsSpan(t *testing.T) {
	g := NewGen(3)
	parent := g.NewContext()
	child := g.Child(parent)
	if child.TraceID != parent.TraceID {
		t.Fatalf("child switched traces: %s vs %s", child.TraceID, parent.TraceID)
	}
	if child.SpanID == parent.SpanID {
		t.Fatal("child reused the parent span ID")
	}
	if child.Flags != parent.Flags {
		t.Fatalf("child flags %02x, want %02x", child.Flags, parent.Flags)
	}
}

func TestContextPropagation(t *testing.T) {
	if _, ok := From(context.Background()); ok {
		t.Fatal("empty context reported a trace")
	}
	tc := NewGen(1).NewContext()
	ctx := Into(context.Background(), tc)
	got, ok := From(ctx)
	if !ok || got != tc {
		t.Fatalf("From: got %+v ok=%v, want %+v", got, ok, tc)
	}
}

func TestFromRequest(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	if _, ok := FromRequest(r); ok {
		t.Fatal("headerless request reported a trace")
	}
	tc := NewGen(9).NewContext()
	r.Header.Set(Header, tc.Traceparent())
	got, ok := FromRequest(r)
	if !ok || got != tc {
		t.Fatalf("FromRequest: got %+v ok=%v, want %+v", got, ok, tc)
	}
	r.Header.Set(Header, "00-bogus")
	if _, ok := FromRequest(r); ok {
		t.Fatal("malformed header accepted")
	}
}
