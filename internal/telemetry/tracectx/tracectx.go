// Package tracectx is the request-correlation primitive of the
// observability stack: a W3C Trace Context (traceparent) parser and
// formatter, a deterministic seedable TraceID/SpanID generator, and
// context.Context propagation helpers.
//
// A trace ID names one request's journey end to end: minted (or
// ingested from an incoming traceparent header) at the HTTP edge of
// hifi-serve, threaded through the job it admits, stamped onto every
// event the job emits (events.Bus.SetTraceID), annotated onto every
// span opened under the job's context (telemetry.StartSpan), and echoed
// back to the client in the traceparent/X-Request-Id response headers.
// One grep for the hex trace ID over the access log, the event log, and
// the span export reconstructs the full lifecycle — the correlation
// contract the planned coordinator/worker split will carry across
// hosts. See docs/observability.md ("Tracing a request end to end").
//
// The package is dependency-free and imports nothing from the rest of
// the telemetry stack, so every layer (telemetry, events, serve) can
// depend on it without cycles.
package tracectx

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Header is the W3C trace-context request/response header name.
const Header = "traceparent"

// TraceID is the 16-byte whole-trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte per-hop identifier (the traceparent "parent-id").
type SpanID [8]byte

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// FlagSampled is the traceparent sampled flag bit.
const FlagSampled = 0x01

// Context is one position in a trace: the trace it belongs to, the span
// that produced it, and the trace flags. The zero value is invalid.
type Context struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether both IDs are non-zero, per the W3C spec.
func (c Context) Valid() bool { return !c.TraceID.IsZero() && !c.SpanID.IsZero() }

// Traceparent renders the context as a version-00 traceparent header
// value: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
func (c Context) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", c.TraceID, c.SpanID, c.Flags)
}

// Parse decodes a traceparent header value. It accepts the version-00
// layout exactly and, per the spec's forward-compatibility rule, any
// higher hex version whose value starts with the same four fields (the
// remainder after the flags must then begin with "-"). Hex digits must
// be lowercase; all-zero trace or parent IDs and version "ff" are
// rejected.
func Parse(header string) (Context, error) {
	var c Context
	h := header
	if len(h) < 55 {
		return c, fmt.Errorf("tracectx: traceparent too short (%d < 55 chars)", len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return c, fmt.Errorf("tracectx: traceparent %q: bad field separators", header)
	}
	ver, traceHex, spanHex, flagsHex := h[0:2], h[3:35], h[36:52], h[53:55]
	vb, err := decodeLowerHex(ver)
	if err != nil {
		return c, fmt.Errorf("tracectx: traceparent version: %w", err)
	}
	switch {
	case vb[0] == 0xff:
		return c, fmt.Errorf("tracectx: traceparent version ff is forbidden")
	case vb[0] == 0 && len(h) != 55:
		return c, fmt.Errorf("tracectx: version-00 traceparent must be exactly 55 chars, got %d", len(h))
	case vb[0] != 0 && len(h) > 55 && h[55] != '-':
		return c, fmt.Errorf("tracectx: traceparent %q: trailing data without separator", header)
	}
	tb, err := decodeLowerHex(traceHex)
	if err != nil {
		return c, fmt.Errorf("tracectx: trace-id: %w", err)
	}
	sb, err := decodeLowerHex(spanHex)
	if err != nil {
		return c, fmt.Errorf("tracectx: parent-id: %w", err)
	}
	fb, err := decodeLowerHex(flagsHex)
	if err != nil {
		return c, fmt.Errorf("tracectx: trace-flags: %w", err)
	}
	copy(c.TraceID[:], tb)
	copy(c.SpanID[:], sb)
	c.Flags = fb[0]
	if c.TraceID.IsZero() {
		return Context{}, fmt.Errorf("tracectx: all-zero trace-id is invalid")
	}
	if c.SpanID.IsZero() {
		return Context{}, fmt.Errorf("tracectx: all-zero parent-id is invalid")
	}
	return c, nil
}

// ParseTraceID decodes a bare 32-char lowercase-hex trace ID (the form
// logs and journals carry). The all-zero ID is rejected.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("tracectx: trace-id %q: want 32 hex chars, got %d", s, len(s))
	}
	b, err := decodeLowerHex(s)
	if err != nil {
		return t, fmt.Errorf("tracectx: trace-id: %w", err)
	}
	copy(t[:], b)
	if t.IsZero() {
		return t, fmt.Errorf("tracectx: all-zero trace-id is invalid")
	}
	return t, nil
}

// decodeLowerHex decodes s, rejecting uppercase digits (the W3C grammar
// allows lowercase only).
func decodeLowerHex(s string) ([]byte, error) {
	if s != strings.ToLower(s) {
		return nil, fmt.Errorf("uppercase hex in %q", s)
	}
	return hex.DecodeString(s)
}

// Gen generates trace and span IDs. Seeded generation is deterministic
// — the same seed yields the same ID sequence, which is what lets tests
// and reproducible daemons pin their correlation IDs — while seed 0
// draws a random seed from crypto/rand (the production default). Safe
// for concurrent use.
type Gen struct {
	mu    sync.Mutex
	state uint64
}

// NewGen returns a generator. seed 0 means "unpredictable": the state
// is drawn from crypto/rand.
func NewGen(seed uint64) *Gen {
	if seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
		if seed == 0 {
			seed = 0x9e3779b97f4a7c15 // rand failed or drew 0; any fixed non-zero works
		}
	}
	return &Gen{state: seed}
}

// next is one splitmix64 step: a full-period 64-bit sequence, so IDs
// never repeat within a generator's lifetime at any realistic scale.
func (g *Gen) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// TraceID draws a new non-zero trace ID.
func (g *Gen) TraceID() TraceID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[0:8], g.next())
		binary.BigEndian.PutUint64(t[8:16], g.next())
	}
	return t
}

// SpanID draws a new non-zero span ID.
func (g *Gen) SpanID() SpanID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], g.next())
	}
	return s
}

// NewContext mints a fresh sampled context: a new trace with this
// process as its first span.
func (g *Gen) NewContext() Context {
	return Context{TraceID: g.TraceID(), SpanID: g.SpanID(), Flags: FlagSampled}
}

// Child returns a context continuing parent's trace through a new span
// minted from g — what a server does when it ingests a traceparent.
func (g *Gen) Child(parent Context) Context {
	return Context{TraceID: parent.TraceID, SpanID: g.SpanID(), Flags: parent.Flags}
}

type ctxKey struct{}

// Into returns a context.Context carrying tc; StartSpan and other
// consumers below it recover it with From.
func Into(ctx context.Context, tc Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// From returns the trace context carried by ctx, if any.
func From(ctx context.Context) (Context, bool) {
	if ctx == nil {
		return Context{}, false
	}
	tc, ok := ctx.Value(ctxKey{}).(Context)
	return tc, ok && tc.Valid()
}

// FromRequest parses the request's traceparent header. ok is false when
// the header is absent or malformed — the caller mints a fresh context
// instead (a malformed header must not poison the request, per spec).
func FromRequest(r *http.Request) (Context, bool) {
	h := r.Header.Get(Header)
	if h == "" {
		return Context{}, false
	}
	tc, err := Parse(h)
	if err != nil {
		return Context{}, false
	}
	return tc, true
}
