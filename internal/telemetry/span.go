package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"racetrack/hifi/internal/telemetry/tracectx"
)

// Attr is one key/value annotation on a span. Values are strings so the
// export formats stay schema-free; use A/AInt/AFloat to build them.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt builds an integer attribute.
func AInt(key string, v int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", v)} }

// AFloat builds a float attribute in shortest form.
func AFloat(key string, v float64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%g", v)} }

// SpanCollector records hierarchical timing spans. Spans nest through
// context.Context (StartSpan), carry attributes, and — when the collector
// was built over a Registry — capture the counter deltas that occurred
// while they were open, so a phase's share of shift cycles or DRAM fills
// is attributable directly from the span export.
//
// Like the rest of the package, absence is free: with no collector in the
// context StartSpan returns a nil *Span, and every method of a nil *Span
// is a no-op branch.
type SpanCollector struct {
	mu       sync.Mutex
	reg      *Registry
	epoch    time.Time
	clock    func() time.Time // stubbed in tests
	nextID   uint64
	active   map[uint64]*Span
	finished []SpanRecord
	capacity int
	dropped  uint64
}

// DefaultSpanCapacity bounds retained finished spans; later spans are
// counted as dropped. Spans are phase-grained (runs, sweeps, warmup), so
// the cap is generous.
const DefaultSpanCapacity = 1 << 16

// NewSpanCollector returns an empty collector. reg may be nil; when set,
// every span records the registry's counter deltas over its lifetime.
func NewSpanCollector(reg *Registry) *SpanCollector {
	now := time.Now()
	return &SpanCollector{
		reg:      reg,
		epoch:    now,
		clock:    time.Now,
		active:   map[uint64]*Span{},
		capacity: DefaultSpanCapacity,
	}
}

// Span is one in-flight or finished timing region. A nil *Span is a valid
// disabled handle.
type Span struct {
	col    *SpanCollector
	id     uint64
	parent uint64
	name   string
	attrs  []Attr
	start  time.Time
	startC map[string]float64 // counter values at start (nil without registry)
	dur    time.Duration
	ended  bool
}

// SpanRecord is the immutable exported form of a span. StartNS is the
// offset from the collector's epoch, so records are comparable across
// processes without wall-clock coupling.
type SpanRecord struct {
	ID      uint64        `json:"id"`
	Parent  uint64        `json:"parent,omitempty"` // 0 means root
	Name    string        `json:"name"`
	Attrs   []Attr        `json:"attrs,omitempty"`
	StartNS int64         `json:"start_ns"`
	DurNS   int64         `json:"dur_ns"`
	Running bool          `json:"running,omitempty"`
	Metrics []SeriesValue `json:"metrics,omitempty"` // counter deltas over the span
}

type collectorKey struct{}
type spanKey struct{}

// WithCollector returns a context carrying col; StartSpan below it
// records into col.
func WithCollector(ctx context.Context, col *SpanCollector) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, collectorKey{}, col)
}

// CollectorFrom returns the collector carried by ctx, or nil.
func CollectorFrom(ctx context.Context) *SpanCollector {
	if ctx == nil {
		return nil
	}
	col, _ := ctx.Value(collectorKey{}).(*SpanCollector)
	return col
}

// StartSpan opens a span named name under the span already in ctx (if
// any) and returns a context carrying the new span as parent for further
// nesting. With no collector in ctx it returns ctx unchanged and a nil
// span, costing two context lookups and nothing else.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	col, _ := ctx.Value(collectorKey{}).(*SpanCollector)
	if col == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	// Root spans inherit the request correlation ID from the context
	// (set by the hifi-serve HTTP layer via tracectx.Into), so a span
	// export greps by the same trace ID as the access and event logs.
	// Child spans skip the attr: the root anchors the whole tree.
	if parent == nil {
		if tc, ok := tracectx.From(ctx); ok {
			attrs = append(attrs, A("trace_id", tc.TraceID.String()))
		}
	}
	sp := col.start(parent, name, attrs)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

func (c *SpanCollector) start(parent *Span, name string, attrs []Attr) *Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	sp := &Span{
		col:   c,
		id:    c.nextID,
		name:  name,
		attrs: attrs,
		start: c.clock(),
	}
	if parent != nil {
		sp.parent = parent.id
	}
	if c.reg != nil {
		sp.startC = c.reg.counterValues()
	}
	c.active[sp.id] = sp
	return sp
}

// Name returns the span name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr adds (or appends) an attribute after the span was started.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.col.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.col.mu.Unlock()
}

// Duration returns the span's length: final once ended, the running
// elapsed time while open, 0 for a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.col.mu.Lock()
	defer s.col.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return s.col.clock().Sub(s.start)
}

// End closes the span, fixing its duration and counter deltas. Ending a
// span twice is a no-op; ending a nil span is a single branch.
func (s *Span) End() {
	if s == nil {
		return
	}
	c := s.col
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = c.clock().Sub(s.start)
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Attrs:   s.attrs,
		StartNS: s.start.Sub(c.epoch).Nanoseconds(),
		DurNS:   s.dur.Nanoseconds(),
	}
	if s.startC != nil {
		end := c.reg.counterValues()
		for _, k := range sortedKeys(end) {
			if d := end[k] - s.startC[k]; d != 0 {
				rec.Metrics = append(rec.Metrics, SeriesValue{Name: k, Value: d})
			}
		}
	}
	delete(c.active, s.id)
	if len(c.finished) >= c.capacity {
		c.dropped++
	} else {
		c.finished = append(c.finished, rec)
	}
}

// counterValues copies the current counter totals (nil registry yields
// nil). Used by span delta accounting; spans are phase-grained, so the
// copy is off any hot path.
func (r *Registry) counterValues() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.counters))
	for k, c := range r.counters {
		out[k] = c.Value()
	}
	return out
}

// SpanExport is a consistent snapshot of a collector: finished spans in
// start order plus the currently open ones (with running durations).
type SpanExport struct {
	Spans    []SpanRecord `json:"spans"`
	InFlight []SpanRecord `json:"in_flight,omitempty"`
	Dropped  uint64       `json:"dropped,omitempty"`
}

// Export snapshots the collector. A nil collector yields an empty export.
func (c *SpanCollector) Export() SpanExport {
	var e SpanExport
	e.Spans = []SpanRecord{}
	if c == nil {
		return e
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e.Spans = append(e.Spans, c.finished...)
	sort.Slice(e.Spans, func(i, j int) bool { return e.Spans[i].ID < e.Spans[j].ID })
	now := c.clock()
	for _, id := range sortedSpanIDs(c.active) {
		sp := c.active[id]
		e.InFlight = append(e.InFlight, SpanRecord{
			ID:      sp.id,
			Parent:  sp.parent,
			Name:    sp.name,
			Attrs:   sp.attrs,
			StartNS: sp.start.Sub(c.epoch).Nanoseconds(),
			DurNS:   now.Sub(sp.start).Nanoseconds(),
			Running: true,
		})
	}
	e.Dropped = c.dropped
	return e
}

func sortedSpanIDs(m map[uint64]*Span) []uint64 {
	out := make([]uint64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteJSON emits the export as indented JSON.
func (e SpanExport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteFolded emits the export as folded stacks — one line per unique
// root-to-leaf name path, with the accumulated self time in microseconds —
// the input format of flamegraph.pl, inferno, and speedscope. Lines are
// sorted, so identical span trees fold to identical bytes.
func (e SpanExport) WriteFolded(w io.Writer) error {
	all := append(append([]SpanRecord{}, e.Spans...), e.InFlight...)
	byID := make(map[uint64]SpanRecord, len(all))
	childNS := make(map[uint64]int64)
	for _, r := range all {
		byID[r.ID] = r
	}
	for _, r := range all {
		if r.Parent != 0 {
			childNS[r.Parent] += r.DurNS
		}
	}
	path := func(r SpanRecord) string {
		parts := []string{r.Name}
		for p := r.Parent; p != 0; {
			pr, ok := byID[p]
			if !ok {
				break
			}
			parts = append(parts, pr.Name)
			p = pr.Parent
		}
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		return strings.Join(parts, ";")
	}
	selfUS := map[string]int64{}
	for _, r := range all {
		self := r.DurNS - childNS[r.ID]
		if self < 0 {
			self = 0
		}
		selfUS[path(r)] += self / 1000
	}
	var b strings.Builder
	for _, k := range int64SortedKeys(selfUS) {
		fmt.Fprintf(&b, "%s %d\n", k, selfUS[k])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func int64SortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteFiles writes the export next to base in both formats:
// "<base>.spans.json" and "<base>.folded" (an existing .json extension on
// base is trimmed first). It returns the two paths written.
func (e SpanExport) WriteFiles(base string) (jsonPath, foldedPath string, err error) {
	base = strings.TrimSuffix(base, ".json")
	base = strings.TrimSuffix(base, ".spans")
	jsonPath, foldedPath = base+".spans.json", base+".folded"
	if err := writeTo(jsonPath, e.WriteJSON); err != nil {
		return "", "", err
	}
	if err := writeTo(foldedPath, e.WriteFolded); err != nil {
		return "", "", err
	}
	return jsonPath, foldedPath, nil
}
