//go:build !linux

package telemetry

// cpuSeconds reports 0 on platforms without rusage support wired up.
func cpuSeconds() float64 { return 0 }

// peakRSSBytes reports 0 on platforms without rusage support wired up.
func peakRSSBytes() int64 { return 0 }
