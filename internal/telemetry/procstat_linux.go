//go:build linux

package telemetry

import "syscall"

// cpuSeconds returns the process's user+system CPU time.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6 +
		float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
}

// peakRSSBytes returns the process's peak resident set size (ru_maxrss is
// kilobytes on Linux).
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024
}
