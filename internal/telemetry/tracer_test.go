package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(EventShift, 1, 2, 3, 4)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be inert")
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Emitted uint64            `json:"emitted"`
		Dropped uint64            `json:"dropped"`
		Events  []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Emitted != 0 || doc.Dropped != 0 || len(doc.Events) != 0 {
		t.Fatalf("nil tracer JSON = %s", b.String())
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(EventShift, uint64(i), int64(i), 0, 0)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	// Oldest-first: the four retained events are seq 6..9.
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (events %v)", i, e.Seq, want, evs)
		}
	}
}

func TestTracerBelowCapacity(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(EventEviction, 100, 1, 2, 1)
	tr.Emit(EventDUE, 200, 3, 0, 0)
	if tr.Len() != 2 || tr.Dropped() != 0 {
		t.Fatalf("Len/Dropped = %d/%d", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Kind != EventEviction || evs[1].Kind != EventDUE {
		t.Fatalf("events out of order: %v", evs)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("sequence numbers wrong: %v", evs)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1 << 12)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Emit(EventShift, uint64(i), 1, 2, 3)
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != workers*perWorker {
		t.Fatalf("Len = %d, want %d", got, workers*perWorker)
	}
	seen := map[uint64]bool{}
	for _, e := range tr.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestEventJSONKindSymbolic(t *testing.T) {
	e := Event{Seq: 5, Cycle: 9, Kind: EventErrorInject, Arg0: 4, Arg1: -1, Arg2: 1}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":5,"cycle":9,"kind":"error-inject","arg0":4,"arg1":-1,"arg2":1}`
	if string(b) != want {
		t.Fatalf("got %s, want %s", b, want)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EventShift:       "shift",
		EventVerify:      "verify",
		EventErrorInject: "error-inject",
		EventCorrection:  "correction",
		EventDUE:         "due",
		EventEviction:    "eviction",
		EventPromoFlush:  "promo-flush",
		EventKind(99):    "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestTracerWriteJSONRoundTrip(t *testing.T) {
	tr := NewTracer(2)
	tr.Emit(EventShift, 1, 0, 3, 2)
	tr.Emit(EventCorrection, 2, 1, 0, 0)
	tr.Emit(EventDUE, 3, 2, 0, 0) // overwrites the shift
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Emitted uint64 `json:"emitted"`
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Emitted != 3 || doc.Dropped != 1 || len(doc.Events) != 2 {
		t.Fatalf("envelope = %+v", doc)
	}
	if doc.Events[0].Kind != "correction" || doc.Events[1].Kind != "due" {
		t.Fatalf("events = %+v", doc.Events)
	}
}

func BenchmarkTracerEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(EventShift, uint64(i), 1, 2, 3)
	}
}

func BenchmarkTracerEmitEnabled(b *testing.B) {
	tr := NewTracer(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(EventShift, uint64(i), 1, 2, 3)
	}
}
