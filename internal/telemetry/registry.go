package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry owns named metrics. Lookups are write-locked only on first
// registration; handles are cached by the instrumented code, so the hot
// path never touches the registry. A nil *Registry is a valid no-op
// source: every constructor returns a nil handle.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil when the registry is nil.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil when the registry is nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name with the given
// ascending bucket upper bounds, creating it on first use. Returns nil
// when the registry is nil. Re-registering with different bounds keeps
// the original layout.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, help: help, bounds: b}
	h.counts = make([]atomic.Uint64, len(b)+1)
	r.histograms[name] = h
	return h
}

// Label appends one label pair to a base series name, producing the
// Prometheus-style "base{k="v"}" form. Repeated application appends
// further pairs in order: Label(Label(n, "level", "l1"), "op", "read").
func Label(name, key, value string) string {
	if i := strings.LastIndexByte(name, '}'); i >= 0 && strings.IndexByte(name, '{') >= 0 {
		return fmt.Sprintf("%s,%s=%q}", name[:i], key, value)
	}
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

// splitName separates a series name into its metric name and label body
// ("" when unlabelled): "a{b="c"}" -> "a", `b="c"`.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	j := strings.LastIndexByte(name, '}')
	if j < i {
		return name, ""
	}
	return name[:i], name[i+1 : j]
}

// sortedKeys returns map keys in lexical order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
