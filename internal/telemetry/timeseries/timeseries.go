// Package timeseries adds the time axis to the telemetry registry: a
// windowed sampler that snapshots selected registry series every N
// simulated accesses (ticks) and retains per-window deltas in a bounded
// ring. Where a Snapshot answers "what happened over the whole run", a
// Series answers "how did it evolve" — error-injection rates climbing
// with temperature, shift-distance distributions settling after warmup,
// cache miss bursts at working-set boundaries.
//
// The design follows the rest of the telemetry stack:
//
//   - a nil *Sampler is a valid no-op handle; Tick on it is one branch,
//     so instrumented code holds the field unconditionally.
//   - the tick path is lock-free (one atomic add and a compare); the
//     window-cut path takes a mutex, but runs once per N ticks.
//   - exports are deterministic: series within a window are sorted by
//     name, so identical tick sequences produce identical bytes.
//
// The simulated-access tick is the primary clock because it is
// reproducible; an optional wall-clock cutter (Options.WallInterval)
// exists for watching long runs live via the /timeseries status route.
package timeseries

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"racetrack/hifi/internal/telemetry"
)

// DefaultEvery is the default window width in ticks (simulated accesses).
const DefaultEvery = 4096

// DefaultCapacity bounds the retained window ring; older windows are
// dropped (and counted) once the ring is full.
const DefaultCapacity = 1024

// Options configures a Sampler.
type Options struct {
	// Every is the window width in ticks; DefaultEvery when <= 0.
	Every int
	// Capacity is the maximum number of retained windows;
	// DefaultCapacity when <= 0.
	Capacity int
	// WallInterval, when positive, additionally cuts a window every
	// wall-clock interval (started by Start, stopped by Stop). Wall cuts
	// make live dashboards tick during long windows but are inherently
	// nondeterministic; leave zero for reproducible artifacts.
	WallInterval time.Duration
}

// Sampler cuts the registry's cumulative series into windows.
type Sampler struct {
	reg   *telemetry.Registry
	every int64

	ticks atomic.Int64

	mu       sync.Mutex
	capacity int
	windows  []Window
	dropped  uint64
	marks    []string
	index    int
	lastTick int64
	last     baseline

	stopWall chan struct{}
	wallWG   sync.WaitGroup
}

// baseline is the cumulative state at the previous cut, used to compute
// per-window deltas.
type baseline struct {
	counters map[string]float64
	gauges   []telemetry.SeriesValue
	hists    map[string]histState
}

type histState struct {
	counts []uint64
	sum    float64
	count  uint64
}

// New builds a sampler over reg. A nil registry yields a nil sampler:
// the whole subsystem then costs one branch per Tick.
func New(reg *telemetry.Registry, opts Options) *Sampler {
	if reg == nil {
		return nil
	}
	if opts.Every <= 0 {
		opts.Every = DefaultEvery
	}
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	s := &Sampler{
		reg:      reg,
		every:    int64(opts.Every),
		capacity: opts.Capacity,
	}
	s.last = s.capture()
	if opts.WallInterval > 0 {
		s.startWall(opts.WallInterval)
	}
	return s
}

// Every returns the configured window width in ticks (0 for nil).
func (s *Sampler) Every() int {
	if s == nil {
		return 0
	}
	return int(s.every)
}

// Tick advances the simulated clock by n ticks, cutting a window each
// time a multiple of the window width is crossed. Nil-safe and
// concurrency-safe: the hot path is one atomic add.
func (s *Sampler) Tick(n int) {
	if s == nil || n <= 0 {
		return
	}
	before := s.ticks.Add(int64(n)) - int64(n)
	after := before + int64(n)
	if after/s.every > before/s.every {
		s.Cut()
	}
}

// Ticks returns the current tick count (0 for nil).
func (s *Sampler) Ticks() int64 {
	if s == nil {
		return 0
	}
	return s.ticks.Load()
}

// Mark annotates the next cut window with a label (phase boundaries,
// workload starts). Nil-safe.
func (s *Sampler) Mark(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.marks = append(s.marks, label)
	s.mu.Unlock()
}

// Cut closes the current window immediately, regardless of tick
// alignment. Used at phase boundaries so warmup and measurement never
// share a window, and by the wall-clock cutter. Windows with no ticks,
// no marks, and no activity are elided. Nil-safe.
func (s *Sampler) Cut() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cutLocked()
}

func (s *Sampler) cutLocked() {
	now := s.ticks.Load()
	cur := s.capture()
	w := Window{
		Index:     s.index,
		StartTick: s.lastTick,
		EndTick:   now,
		Marks:     s.marks,
	}
	for _, k := range sortedKeys(cur.counters) {
		if d := cur.counters[k] - s.last.counters[k]; d != 0 {
			w.Counters = append(w.Counters, telemetry.SeriesValue{Name: k, Value: d})
		}
	}
	for _, g := range cur.gauges {
		w.Gauges = append(w.Gauges, telemetry.SeriesValue{Name: g.Name, Value: g.Value})
	}
	for _, k := range sortedKeys(cur.hists) {
		h := cur.hists[k]
		prev := s.last.hists[k]
		if h.count == prev.count {
			continue
		}
		hw := HistWindow{
			Name:  k,
			Count: h.count - prev.count,
			Sum:   h.sum - prev.sum,
		}
		for i, c := range h.counts {
			var p uint64
			if i < len(prev.counts) {
				p = prev.counts[i]
			}
			hw.Counts = append(hw.Counts, c-p)
		}
		w.Histograms = append(w.Histograms, hw)
	}
	// Elide windows in which nothing happened at all (no ticks, marks,
	// or deltas): back-to-back wall cuts on an idle registry would
	// otherwise fill the ring with noise.
	if w.EndTick == w.StartTick && len(w.Marks) == 0 &&
		len(w.Counters) == 0 && len(w.Histograms) == 0 {
		s.last = cur
		return
	}
	s.index++
	s.lastTick = now
	s.last = cur
	s.marks = nil
	if len(s.windows) >= s.capacity {
		copy(s.windows, s.windows[1:])
		s.windows = s.windows[:len(s.windows)-1]
		s.dropped++
	}
	s.windows = append(s.windows, w)
}

// capture copies the cumulative counter and histogram state.
func (s *Sampler) capture() baseline {
	snap := s.reg.Snapshot()
	b := baseline{
		counters: make(map[string]float64, len(snap.Counters)),
		hists:    make(map[string]histState, len(snap.Histograms)),
	}
	for _, c := range snap.Counters {
		b.counters[c.Name] = c.Value
	}
	for _, g := range snap.Gauges {
		b.gauges = append(b.gauges, telemetry.SeriesValue{Name: g.Name, Value: g.Value})
	}
	for _, h := range snap.Histograms {
		b.hists[h.Name] = histState{counts: h.Counts, sum: h.Sum, count: h.Count}
	}
	return b
}

// startWall launches the wall-clock cutter.
func (s *Sampler) startWall(every time.Duration) {
	s.stopWall = make(chan struct{})
	s.wallWG.Add(1)
	go func() {
		defer s.wallWG.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-s.stopWall:
				return
			case <-t.C:
				s.Cut()
			}
		}
	}()
}

// Stop terminates the wall-clock cutter, if one was started. Nil-safe
// and idempotent.
func (s *Sampler) Stop() {
	if s == nil || s.stopWall == nil {
		return
	}
	close(s.stopWall)
	s.wallWG.Wait()
	s.stopWall = nil
}

// Window is one closed sampling window: series deltas between two cuts.
type Window struct {
	Index     int      `json:"index"`
	StartTick int64    `json:"start_tick"`
	EndTick   int64    `json:"end_tick"`
	Marks     []string `json:"marks,omitempty"`
	// Counters holds per-window deltas (only series that moved).
	Counters []telemetry.SeriesValue `json:"counters,omitempty"`
	// Gauges holds the values at window close.
	Gauges []telemetry.SeriesValue `json:"gauges,omitempty"`
	// Histograms holds per-window distribution summaries (only series
	// that received observations).
	Histograms []HistWindow `json:"histograms,omitempty"`
}

// HistWindow summarizes one histogram over one window.
type HistWindow struct {
	Name   string   `json:"name"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
	Counts []uint64 `json:"counts"` // per-bucket deltas, +Inf last
}

// Mean returns the window's average observation (0 when empty).
func (h HistWindow) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Series is a consistent export of the sampler: every retained window
// plus the still-open tail (cut on the fly so the export is current).
type Series struct {
	Schema  string   `json:"schema"`
	Every   int      `json:"every"`
	Ticks   int64    `json:"ticks"`
	Dropped uint64   `json:"dropped,omitempty"`
	Windows []Window `json:"windows"`
}

// SchemaV1 names the export layout.
const SchemaV1 = "hifi_timeseries_v1"

// Export cuts the open window and snapshots the ring. A nil sampler
// yields an empty, still-valid Series.
func (s *Sampler) Export() Series {
	se := Series{Schema: SchemaV1, Windows: []Window{}}
	if s == nil {
		return se
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cutLocked()
	se.Every = int(s.every)
	se.Ticks = s.ticks.Load()
	se.Dropped = s.dropped
	se.Windows = append(se.Windows, s.windows...)
	return se
}

// WriteJSON emits the series as indented JSON.
func (se Series) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(se)
}

// WriteFile writes the series to path.
func (se Series) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := se.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// CounterSeries extracts one counter's per-window deltas in window
// order, returning parallel tick (window end) and delta slices.
func (se Series) CounterSeries(name string) (ticks []int64, deltas []float64) {
	for _, w := range se.Windows {
		var v float64
		for _, c := range w.Counters {
			if c.Name == name {
				v = c.Value
				break
			}
		}
		ticks = append(ticks, w.EndTick)
		deltas = append(deltas, v)
	}
	return ticks, deltas
}

// HistMeanSeries extracts one histogram's per-window mean observation.
func (se Series) HistMeanSeries(name string) (ticks []int64, means []float64) {
	for _, w := range se.Windows {
		var m float64
		for _, h := range w.Histograms {
			if h.Name == name {
				m = h.Mean()
				break
			}
		}
		ticks = append(ticks, w.EndTick)
		means = append(means, m)
	}
	return ticks, means
}

// Handler serves the live export as JSON, for the /timeseries status
// route. A nil sampler serves an empty series, so dashboards can poll
// uniformly.
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.Export().WriteJSON(w)
	})
}

// sortedKeys returns map keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
