package timeseries

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"racetrack/hifi/internal/telemetry"
)

func TestNilSamplerIsNoOp(t *testing.T) {
	var s *Sampler
	s.Tick(5)
	s.Mark("phase")
	s.Cut()
	s.Stop()
	if got := s.Ticks(); got != 0 {
		t.Errorf("Ticks = %d", got)
	}
	se := s.Export()
	if se.Schema != SchemaV1 || len(se.Windows) != 0 {
		t.Errorf("nil export = %+v", se)
	}
	var b bytes.Buffer
	if err := se.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), SchemaV1) {
		t.Errorf("export JSON missing schema: %s", b.String())
	}
}

func TestNewNilRegistry(t *testing.T) {
	if s := New(nil, Options{}); s != nil {
		t.Error("New(nil) should return a nil sampler")
	}
}

func TestWindowDeltas(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("events_total", "")
	g := reg.Gauge("depth", "")
	h := reg.Histogram("dist", "", []float64{1, 2, 4})
	s := New(reg, Options{Every: 10, Capacity: 8})

	c.Add(3)
	g.Set(7)
	h.Observe(1)
	h.Observe(3)
	s.Tick(10) // closes window 0

	c.Add(2)
	g.Set(9)
	s.Tick(10) // closes window 1

	se := s.Export()
	if se.Ticks != 20 || se.Every != 10 {
		t.Fatalf("ticks=%d every=%d", se.Ticks, se.Every)
	}
	if len(se.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(se.Windows))
	}
	w0, w1 := se.Windows[0], se.Windows[1]
	if w0.StartTick != 0 || w0.EndTick != 10 || w1.StartTick != 10 || w1.EndTick != 20 {
		t.Errorf("window bounds wrong: %+v %+v", w0, w1)
	}
	if len(w0.Counters) != 1 || w0.Counters[0].Value != 3 {
		t.Errorf("w0 counters = %+v", w0.Counters)
	}
	if len(w1.Counters) != 1 || w1.Counters[0].Value != 2 {
		t.Errorf("w1 counters = %+v (want delta 2, not cumulative 5)", w1.Counters)
	}
	if len(w0.Gauges) != 1 || w0.Gauges[0].Value != 7 || w1.Gauges[0].Value != 9 {
		t.Errorf("gauges wrong: %+v %+v", w0.Gauges, w1.Gauges)
	}
	if len(w0.Histograms) != 1 {
		t.Fatalf("w0 histograms = %+v", w0.Histograms)
	}
	hw := w0.Histograms[0]
	if hw.Count != 2 || hw.Sum != 4 || hw.Mean() != 2 {
		t.Errorf("hist window = %+v", hw)
	}
	// No observations in window 1: histogram elided there.
	if len(w1.Histograms) != 0 {
		t.Errorf("w1 histograms = %+v, want none", w1.Histograms)
	}
}

func TestTickCrossingMidWindow(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("x", "")
	s := New(reg, Options{Every: 100})
	c.Inc()
	s.Tick(250) // crosses two boundaries in one call: one cut
	se := s.Export()
	// One window from the crossing plus the export's tail cut.
	if len(se.Windows) != 1 {
		t.Fatalf("windows = %+v", se.Windows)
	}
	if se.Windows[0].EndTick != 250 {
		t.Errorf("end tick = %d", se.Windows[0].EndTick)
	}
}

func TestMarksAttachToNextWindow(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("x", "").Inc()
	s := New(reg, Options{Every: 10})
	s.Mark("warmup")
	s.Mark("measure")
	s.Tick(10)
	se := s.Export()
	if len(se.Windows) == 0 {
		t.Fatal("no windows")
	}
	got := strings.Join(se.Windows[0].Marks, ",")
	if got != "warmup,measure" {
		t.Errorf("marks = %q", got)
	}
	if len(se.Windows) > 1 && len(se.Windows[1].Marks) != 0 {
		t.Errorf("marks leaked to window 1: %+v", se.Windows[1].Marks)
	}
}

func TestRingBound(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("x", "")
	s := New(reg, Options{Every: 1, Capacity: 4})
	for i := 0; i < 10; i++ {
		c.Inc()
		s.Tick(1)
	}
	se := s.Export()
	if len(se.Windows) > 4 {
		t.Fatalf("ring exceeded capacity: %d windows", len(se.Windows))
	}
	if se.Dropped == 0 {
		t.Error("expected dropped windows")
	}
	// The retained windows are the newest ones.
	last := se.Windows[len(se.Windows)-1]
	if last.EndTick != 10 {
		t.Errorf("newest window end = %d, want 10", last.EndTick)
	}
}

func TestEmptyWindowsElided(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(reg, Options{Every: 10})
	s.Cut()
	s.Cut()
	s.Cut()
	se := s.Export()
	if len(se.Windows) != 0 {
		t.Errorf("idle cuts produced %d windows", len(se.Windows))
	}
}

func TestExportDeterministic(t *testing.T) {
	build := func() Series {
		reg := telemetry.NewRegistry()
		b := reg.Counter("b_total", "")
		a := reg.Counter("a_total", "")
		s := New(reg, Options{Every: 5})
		b.Add(2)
		a.Add(1)
		s.Tick(5)
		return s.Export()
	}
	j1, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("exports differ:\n%s\n%s", j1, j2)
	}
	// Series sorted by name within the window.
	var se Series
	if err := json.Unmarshal(j1, &se); err != nil {
		t.Fatal(err)
	}
	w := se.Windows[0]
	if w.Counters[0].Name != "a_total" || w.Counters[1].Name != "b_total" {
		t.Errorf("counters not sorted: %+v", w.Counters)
	}
}

func TestCounterAndHistSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("x", "")
	h := reg.Histogram("d", "", []float64{1, 2})
	s := New(reg, Options{Every: 10})
	c.Add(4)
	h.Observe(2)
	s.Tick(10)
	c.Add(6)
	s.Tick(10)
	se := s.Export()
	ticks, deltas := se.CounterSeries("x")
	if len(ticks) != 2 || deltas[0] != 4 || deltas[1] != 6 {
		t.Errorf("counter series = %v %v", ticks, deltas)
	}
	_, means := se.HistMeanSeries("d")
	if means[0] != 2 || means[1] != 0 {
		t.Errorf("hist means = %v", means)
	}
}

func TestConcurrentTicks(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("x", "")
	s := New(reg, Options{Every: 64, Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				s.Tick(1)
			}
		}()
	}
	wg.Wait()
	se := s.Export()
	if se.Ticks != 4000 {
		t.Errorf("ticks = %d", se.Ticks)
	}
	var total float64
	for _, w := range se.Windows {
		for _, cv := range w.Counters {
			total += cv.Value
		}
	}
	// The ring may have dropped early windows; with capacity 64 and
	// 4000/64 = ~62 windows nothing should drop.
	if se.Dropped == 0 && total != 4000 {
		t.Errorf("summed deltas = %v, want 4000", total)
	}
}
