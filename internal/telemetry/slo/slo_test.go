package slo

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"racetrack/hifi/internal/telemetry"
)

var t0 = time.UnixMilli(1_754_000_000_000)

func testSet(reg *telemetry.Registry) *Set {
	return New(reg, []Objective{
		{Name: "availability", Target: 0.9},
		{Name: "latency", Target: 0.5, LatencyMS: 100},
	}, []Window{{"5m", 5 * time.Minute}, {"1h", time.Hour}})
}

func TestBurnRateOverWindows(t *testing.T) {
	s := testSet(nil)
	// One bad among nine good inside the 5m window: error rate 10%,
	// budget 10% -> burn exactly 1.0.
	for i := 0; i < 9; i++ {
		s.ObserveAt("availability", true, t0)
	}
	s.ObserveAt("availability", false, t0)
	// An hour-old burst of 10 good: inside 1h only.
	for i := 0; i < 10; i++ {
		s.ObserveAt("availability", true, t0.Add(-50*time.Minute))
	}
	rep := s.EvaluateAt(t0.Add(time.Second))
	if len(rep.Objectives) != 2 {
		t.Fatalf("objectives: %d, want 2", len(rep.Objectives))
	}
	av := rep.Objectives[0]
	if av.GoodTotal != 19 || av.BadTotal != 1 {
		t.Fatalf("lifetime good/bad = %d/%d, want 19/1", av.GoodTotal, av.BadTotal)
	}
	w5, w1h := av.Windows[0], av.Windows[1]
	if w5.Good != 9 || w5.Bad != 1 {
		t.Fatalf("5m good/bad = %d/%d, want 9/1", w5.Good, w5.Bad)
	}
	if math.Abs(w5.BurnRate-1.0) > 1e-9 {
		t.Fatalf("5m burn rate %g, want 1.0", w5.BurnRate)
	}
	if w1h.Good != 19 || w1h.Bad != 1 {
		t.Fatalf("1h good/bad = %d/%d, want 19/1", w1h.Good, w1h.Bad)
	}
	if math.Abs(w1h.BurnRate-0.5) > 1e-9 {
		t.Fatalf("1h burn rate %g, want 0.5", w1h.BurnRate)
	}
}

func TestNoTrafficBurnsNothing(t *testing.T) {
	rep := testSet(nil).EvaluateAt(t0)
	for _, o := range rep.Objectives {
		for _, w := range o.Windows {
			if w.BurnRate != 0 || w.Ratio != 1 {
				t.Fatalf("%s/%s: burn %g ratio %g, want 0 and 1", o.Name, w.Window, w.BurnRate, w.Ratio)
			}
		}
	}
}

func TestObserveLatencyClassifies(t *testing.T) {
	s := testSet(nil)
	// Threshold is 100ms: <= is good, > is bad.
	for _, ms := range []int64{10, 100, 101, 5000} {
		s.ObserveLatency("latency", ms)
	}
	got := s.Evaluate().Objectives[1]
	if got.GoodTotal != 2 || got.BadTotal != 2 {
		t.Fatalf("latency split %d/%d, want 2/2", got.GoodTotal, got.BadTotal)
	}
}

func TestGaugesAndCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := testSet(reg)
	s.ObserveAt("availability", true, t0)
	s.ObserveAt("availability", false, t0)
	s.EvaluateAt(t0.Add(time.Second))
	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`hifi_slo_good_total{slo="availability"} 1`,
		`hifi_slo_bad_total{slo="availability"} 1`,
		`hifi_slo_burn_rate{slo="availability",window="5m"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownObjectiveAndNilSet(t *testing.T) {
	var nilSet *Set
	nilSet.Observe("availability", true)
	nilSet.ObserveLatency("latency", 1)
	if rep := nilSet.Evaluate(); len(rep.Objectives) != 0 {
		t.Fatal("nil set produced objectives")
	}
	s := testSet(nil)
	s.Observe("no-such-objective", true) // dropped, not panicked
	if rep := s.EvaluateAt(t0); rep.Objectives[0].GoodTotal != 0 {
		t.Fatal("unknown objective leaked into a real one")
	}
}

func TestReportJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := testSet(nil).EvaluateAt(t0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), SchemaV1) {
		t.Fatalf("report missing schema stamp:\n%s", buf.String())
	}
}
