// Package slo evaluates declarative service-level objectives over
// windowed good/bad counters and exposes the result as burn-rate
// gauges and a JSON report (the hifi-serve /slo route).
//
// An Objective declares a target good-ratio ("99.9% of requests
// succeed", "99% of jobs complete within 60s"). The instrumented code
// reports each outcome as good or bad; the Set keeps a bounded ring of
// timestamped observations per objective and, on evaluation, computes
// the error rate over each configured window and divides it by the
// objective's error budget (1 - target). The quotient is the burn
// rate — the SRE-workbook quantity: 1.0 means the budget is being
// consumed exactly as fast as it accrues; 14.4 over a short window
// means a page-worthy fast burn. Burn rates land in
// hifi_slo_burn_rate{slo,window} gauges on every evaluation, so the
// same numbers are scrapeable from /metrics and renderable by
// hifi-watch's SLO panel.
//
// Like the rest of the telemetry stack, a nil *Set is a valid no-op
// handle.
package slo

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"racetrack/hifi/internal/telemetry"
)

// SchemaV1 identifies the /slo report layout.
const SchemaV1 = "hifi_slo_v1"

// Objective is one declarative target.
type Objective struct {
	// Name keys the objective ("availability", "job_completion").
	Name string `json:"name"`
	// Help is the one-line human description.
	Help string `json:"help,omitempty"`
	// Target is the good-ratio target in (0,1), e.g. 0.999. The error
	// budget is 1 - Target.
	Target float64 `json:"target"`
	// LatencyMS, when non-zero, documents the latency threshold that
	// separates good from bad for latency objectives; ObserveLatency
	// classifies against it.
	LatencyMS int64 `json:"latency_ms,omitempty"`
}

// Window is one evaluation horizon.
type Window struct {
	Name string
	Dur  time.Duration
}

// DefaultWindows are the classic multi-window pair: a short window that
// catches fast burns and a long one that catches slow leaks.
func DefaultWindows() []Window {
	return []Window{{"5m", 5 * time.Minute}, {"1h", time.Hour}}
}

// ringCap bounds retained observations per objective. At one request
// per second that is over two hours of history — more than the default
// long window needs.
const ringCap = 8192

// obs is one timestamped outcome.
type obs struct {
	tms  int64
	good bool
}

// track is one objective's state: lifetime counters plus the
// observation ring.
type track struct {
	objective Objective
	good, bad uint64
	ring      []obs // circular
	head, n   int

	goodCtr *telemetry.Counter
	badCtr  *telemetry.Counter
	burn    []*telemetry.Gauge // parallel to Set.windows
}

// Set owns a group of objectives evaluated over shared windows.
type Set struct {
	mu      sync.Mutex
	windows []Window
	tracks  []*track
	byName  map[string]*track
}

// New builds a Set over the given objectives and windows (nil windows
// means DefaultWindows). reg may be nil; when set, each objective
// registers hifi_slo_good_total/hifi_slo_bad_total{slo} counters and a
// hifi_slo_burn_rate{slo,window} gauge per window, refreshed by every
// Evaluate.
func New(reg *telemetry.Registry, objectives []Objective, windows []Window) *Set {
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	s := &Set{windows: windows, byName: make(map[string]*track, len(objectives))}
	for _, o := range objectives {
		t := &track{
			objective: o,
			ring:      make([]obs, ringCap),
			goodCtr: reg.Counter(telemetry.Label(telemetry.MetricSLOGood, "slo", o.Name),
				"observations meeting the SLO"),
			badCtr: reg.Counter(telemetry.Label(telemetry.MetricSLOBad, "slo", o.Name),
				"observations violating the SLO"),
		}
		for _, w := range windows {
			name := telemetry.Label(telemetry.Label(telemetry.MetricSLOBurnRate, "slo", o.Name), "window", w.Name)
			t.burn = append(t.burn, reg.Gauge(name,
				"error-budget burn rate over the window (1.0 = budget consumed exactly at accrual rate)"))
		}
		s.tracks = append(s.tracks, t)
		s.byName[o.Name] = t
	}
	return s
}

// Observe records one outcome for the named objective at time.Now.
// Unknown names are dropped. Nil-safe.
func (s *Set) Observe(name string, good bool) { s.ObserveAt(name, good, time.Now()) }

// ObserveAt is Observe with an explicit timestamp (tests pin the clock).
func (s *Set) ObserveAt(name string, good bool, at time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	t := s.byName[name]
	if t == nil {
		s.mu.Unlock()
		return
	}
	if good {
		t.good++
	} else {
		t.bad++
	}
	t.ring[t.head] = obs{tms: at.UnixMilli(), good: good}
	t.head = (t.head + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	goodCtr, badCtr := t.goodCtr, t.badCtr
	s.mu.Unlock()
	if good {
		goodCtr.Inc()
	} else {
		badCtr.Inc()
	}
}

// ObserveLatency records a latency sample against the named objective's
// LatencyMS threshold: good when ms <= threshold (or when the objective
// declares no threshold). Nil-safe.
func (s *Set) ObserveLatency(name string, ms int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	t := s.byName[name]
	var thr int64
	if t != nil {
		thr = t.objective.LatencyMS
	}
	s.mu.Unlock()
	if t == nil {
		return
	}
	s.Observe(name, thr == 0 || ms <= thr)
}

// WindowReport is one objective × window evaluation.
type WindowReport struct {
	Window string `json:"window"`
	Good   int    `json:"good"`
	Bad    int    `json:"bad"`
	// Ratio is good/(good+bad); 1 with no observations (no traffic
	// burns no budget).
	Ratio float64 `json:"ratio"`
	// BurnRate is the error rate divided by the error budget.
	BurnRate float64 `json:"burn_rate"`
	// Clipped marks a window wider than the observation ring's reach:
	// old outcomes have been overwritten, so Good/Bad undercount.
	Clipped bool `json:"clipped,omitempty"`
}

// ObjectiveReport is one objective's evaluation.
type ObjectiveReport struct {
	Objective
	// GoodTotal/BadTotal are lifetime counts (not windowed).
	GoodTotal uint64         `json:"good_total"`
	BadTotal  uint64         `json:"bad_total"`
	Windows   []WindowReport `json:"windows"`
}

// Report is the /slo body.
type Report struct {
	Schema     string            `json:"schema"`
	Objectives []ObjectiveReport `json:"objectives"`
}

// Evaluate computes every objective over every window as of time.Now,
// refreshes the burn-rate gauges, and returns the report. Nil-safe
// (empty report).
func (s *Set) Evaluate() Report { return s.EvaluateAt(time.Now()) }

// EvaluateAt is Evaluate with an explicit "now" (tests pin the clock).
func (s *Set) EvaluateAt(now time.Time) Report {
	rep := Report{Schema: SchemaV1}
	if s == nil {
		return rep
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nowMS := now.UnixMilli()
	for _, t := range s.tracks {
		or := ObjectiveReport{Objective: t.objective, GoodTotal: t.good, BadTotal: t.bad}
		budget := 1 - t.objective.Target
		if budget <= 0 {
			budget = 1e-9 // a 100% target has no budget; any error burns "infinitely" fast
		}
		start := (t.head - t.n + len(t.ring)) % len(t.ring)
		var oldest int64
		if t.n > 0 {
			oldest = t.ring[start].tms
		}
		for wi, w := range s.windows {
			cut := nowMS - w.Dur.Milliseconds()
			wr := WindowReport{Window: w.Name, Ratio: 1}
			for i := 0; i < t.n; i++ {
				o := t.ring[(start+i)%len(t.ring)]
				if o.tms < cut {
					continue
				}
				if o.good {
					wr.Good++
				} else {
					wr.Bad++
				}
			}
			// The ring wrapped inside this window: observations at least
			// as old as the window start have been overwritten.
			wr.Clipped = t.n == len(t.ring) && oldest > cut
			if total := wr.Good + wr.Bad; total > 0 {
				wr.Ratio = float64(wr.Good) / float64(total)
				wr.BurnRate = (1 - wr.Ratio) / budget
			}
			t.burn[wi].Set(wr.BurnRate)
			or.Windows = append(or.Windows, wr)
		}
		rep.Objectives = append(rep.Objectives, or)
	}
	return rep
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
