package telemetry

import (
	"io"
	"net/http"
	"net/http/pprof"
)

// StatusBackends collects the data sources behind the status mux. Any
// field may be nil/zero; the corresponding route then serves an
// empty-but-valid document rather than an error, so dashboards can poll
// any tool uniformly whether or not that tool enabled the subsystem.
//
// Timeseries, Perf, and Events are plain http.Handlers because their
// owners live in subpackages that import this one (the windowed
// sampler, the self-time analyzer, the event bus).
type StatusBackends struct {
	Registry   *Registry
	Spans      *SpanCollector
	Manifest   *Manifest
	Timeseries http.Handler
	Perf       http.Handler
	// Events streams the structured event plane (SSE; see
	// internal/telemetry/events and docs/events.md).
	Events http.Handler
	// Health enriches /healthz beyond the bare-200 probe contract.
	Health *HealthState
}

// NewStatusMux builds the live observability surface served on the CLIs'
// -pprof address:
//
//	/healthz      liveness probe (JSON: status, uptime, phase, jobs in flight, events seq)
//	/metrics      current registry snapshot, Prometheus text format
//	/spans        span export: finished spans plus the in-flight tree
//	/runinfo      the manifest-so-far (config, provenance, progress)
//	/timeseries   windowed time-series export (JSON), when a sampler runs
//	/perf         self-time analysis + heap hotspots (hifi_perf_v1 JSON)
//	/events       live structured event stream (SSE, replay via Last-Event-ID)
//	/debug/pprof  the standard net/http/pprof handlers
//
// Every response carries Cache-Control: no-store — these are live
// snapshots of a running process, and a proxy serving a stale /metrics
// or /timeseries body would silently corrupt a dashboard — and an
// explicit charset on the text/plain routes.
func NewStatusMux(b StatusBackends) *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern, contentType string, f http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			h := w.Header()
			h.Set("Content-Type", contentType)
			h.Set("Cache-Control", "no-store")
			f(w, r)
		})
	}
	handle("/healthz", "application/json; charset=utf-8", func(w http.ResponseWriter, r *http.Request) {
		// WriteJSON is nil-safe and always says "ok": the probe contract
		// (200 + "ok" somewhere in the body) predates the JSON shape.
		_ = b.Health.WriteJSON(w)
	})
	handle("/metrics", "text/plain; version=0.0.4; charset=utf-8", func(w http.ResponseWriter, r *http.Request) {
		b.Registry.Snapshot().WritePrometheus(w)
	})
	handle("/spans", "application/json; charset=utf-8", func(w http.ResponseWriter, r *http.Request) {
		b.Spans.Export().WriteJSON(w)
	})
	handle("/runinfo", "application/json; charset=utf-8", func(w http.ResponseWriter, r *http.Request) {
		if b.Manifest == nil {
			io.WriteString(w, "{}\n")
			return
		}
		b.Manifest.WriteJSON(w)
	})
	proxy := func(pattern string, inner http.Handler) {
		handle(pattern, "application/json; charset=utf-8", func(w http.ResponseWriter, r *http.Request) {
			if inner == nil {
				io.WriteString(w, "{}\n")
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	proxy("/timeseries", b.Timeseries)
	proxy("/perf", b.Perf)
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if b.Events == nil {
			// Empty-but-valid: an SSE stream that never emits. Matches the
			// nil-bus behaviour of the events handler itself.
			h := w.Header()
			h.Set("Content-Type", "text/event-stream; charset=utf-8")
			h.Set("Cache-Control", "no-store")
			w.WriteHeader(http.StatusOK)
			return
		}
		b.Events.ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
