package telemetry

import (
	"io"
	"net/http"
	"net/http/pprof"
)

// NewStatusMux builds the live observability surface served on the CLIs'
// -pprof address:
//
//	/healthz      liveness probe ("ok")
//	/metrics      current registry snapshot, Prometheus text format
//	/spans        span export: finished spans plus the in-flight tree
//	/runinfo      the manifest-so-far (config, provenance, progress)
//	/timeseries   windowed time-series export (JSON), when a sampler runs
//	/perf         self-time analysis + heap hotspots (hifi_perf_v1 JSON)
//	/debug/pprof  the standard net/http/pprof handlers
//
// timeseries is the windowed sampler's live handler and perf the
// self-time analyzer's (both live in subpackages that import this one,
// so the mux takes them as plain http.Handlers). Any of reg, col, man,
// timeseries, perf may be nil; the corresponding route then serves an
// empty document rather than an error, so dashboards can poll uniformly.
func NewStatusMux(reg *Registry, col *SpanCollector, man *Manifest, timeseries, perf http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		col.Export().WriteJSON(w)
	})
	mux.HandleFunc("/runinfo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if man == nil {
			io.WriteString(w, "{}\n")
			return
		}
		man.WriteJSON(w)
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if timeseries == nil {
			io.WriteString(w, "{}\n")
			return
		}
		timeseries.ServeHTTP(w, r)
	})
	mux.HandleFunc("/perf", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if perf == nil {
			io.WriteString(w, "{}\n")
			return
		}
		perf.ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
