package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Snapshot is a consistent point-in-time copy of a registry. Series are
// sorted by name so two snapshots of the same state export identical
// bytes (determinism is load-bearing: golden tests and run-to-run diffs
// depend on it).
type Snapshot struct {
	Counters   []SeriesValue   `json:"counters"`
	Gauges     []SeriesValue   `json:"gauges"`
	Histograms []HistogramData `json:"histograms"`
}

// SeriesValue is one scalar series.
type SeriesValue struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// HistogramData is one distribution series.
type HistogramData struct {
	Name   string    `json:"name"`
	Help   string    `json:"help,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1, last is +Inf
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, k := range sortedKeys(r.counters) {
		c := r.counters[k]
		s.Counters = append(s.Counters, SeriesValue{Name: k, Help: c.help, Value: c.Value()})
	}
	for _, k := range sortedKeys(r.gauges) {
		g := r.gauges[k]
		s.Gauges = append(s.Gauges, SeriesValue{Name: k, Help: g.help, Value: g.Value()})
	}
	for _, k := range sortedKeys(r.histograms) {
		h := r.histograms[k]
		d := HistogramData{Name: k, Help: h.help, Sum: h.Sum(), Count: h.Count()}
		d.Bounds = append(d.Bounds, h.bounds...)
		for i := range h.counts {
			d.Counts = append(d.Counts, h.counts[i].Load())
		}
		s.Histograms = append(s.Histograms, d)
	}
	return s
}

// Lookup returns the value of the named scalar series in the snapshot,
// reporting whether it exists (counters first, then gauges).
func (s Snapshot) Lookup(name string) (float64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// WriteJSON emits the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format (one HELP/TYPE block per metric name, cumulative _bucket series
// for histograms).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastBase := ""
	header := func(base, help, typ string) {
		if base == lastBase {
			return
		}
		lastBase = base
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", base, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
	}
	for _, c := range s.Counters {
		base, _ := splitName(c.Name)
		header(base, c.Help, "counter")
		fmt.Fprintf(&b, "%s %s\n", c.Name, formatValue(c.Value))
	}
	lastBase = ""
	for _, g := range s.Gauges {
		base, _ := splitName(g.Name)
		header(base, g.Help, "gauge")
		fmt.Fprintf(&b, "%s %s\n", g.Name, formatValue(g.Value))
	}
	lastBase = ""
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		header(base, h.Help, "histogram")
		cum := uint64(0)
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatValue(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", base, labelPrefix(labels), le, cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, labelSuffix(labels), formatValue(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, labelSuffix(labels), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelPrefix renders an existing label body for merging with the le
// label: `a="b"` -> `a="b",`.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// labelSuffix renders an existing label body standalone: `a="b"` ->
// `{a="b"}`.
func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatValue renders a sample value the way Prometheus expects:
// integers without an exponent, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteFiles writes the snapshot next to path in both formats:
// "<path>.json" and "<path>.prom" (an existing .json/.prom/.txt
// extension on path is trimmed first). It returns the two paths written.
func (s Snapshot) WriteFiles(path string) (jsonPath, promPath string, err error) {
	base := path
	switch ext := filepath.Ext(path); ext {
	case ".json", ".prom", ".txt":
		base = strings.TrimSuffix(path, ext)
	}
	jsonPath, promPath = base+".json", base+".prom"
	jf, err := os.Create(jsonPath)
	if err != nil {
		return "", "", err
	}
	if err := s.WriteJSON(jf); err != nil {
		_ = jf.Close()
		return "", "", err
	}
	if err := jf.Close(); err != nil {
		return "", "", err
	}
	pf, err := os.Create(promPath)
	if err != nil {
		return "", "", err
	}
	if err := s.WritePrometheus(pf); err != nil {
		_ = pf.Close()
		return "", "", err
	}
	if err := pf.Close(); err != nil {
		return "", "", err
	}
	return jsonPath, promPath, nil
}

// Sort orders all series by name; snapshots produced by
// Registry.Snapshot are already sorted, this is for hand-built ones.
func (s *Snapshot) Sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
}
