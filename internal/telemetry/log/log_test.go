package log

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTestSetup redirects output to a buffer, pins the clock and level,
// and restores everything afterwards. Tests in this file share package
// state, so they must not run in parallel.
func withTestSetup(t *testing.T, l Level) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	prevLevel := GetLevel()
	SetOutput(&buf)
	SetLevel(l)
	mu.Lock()
	prevNow := now
	now = func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 678e6, time.UTC) }
	mu.Unlock()
	t.Cleanup(func() {
		SetOutput(os.Stderr)
		SetLevel(prevLevel)
		mu.Lock()
		now = prevNow
		mu.Unlock()
	})
	return &buf
}

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		ok   bool
	}{
		{"quiet", Quiet, true},
		{"off", Quiet, true},
		{"error", Error, true},
		{"0", Error, true},
		{"info", Info, true},
		{"", Info, true},
		{"INFO", Info, true},
		{" debug ", Debug, true},
		{"verbose", Debug, true},
		{"trace", Trace, true},
		{"3", Trace, true},
		{"bogus", Info, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if got != c.want || (err == nil) != c.ok {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestLevelFiltering(t *testing.T) {
	buf := withTestSetup(t, Info)
	Errorf("e")
	Infof("i")
	Debugf("d")
	Tracef("t")
	out := buf.String()
	if !strings.Contains(out, " e\n") || !strings.Contains(out, " i\n") {
		t.Errorf("error/info suppressed at Info level:\n%s", out)
	}
	if strings.Contains(out, " d\n") || strings.Contains(out, " t\n") {
		t.Errorf("debug/trace leaked at Info level:\n%s", out)
	}
}

func TestQuietSuppressesErrors(t *testing.T) {
	buf := withTestSetup(t, Quiet)
	Errorf("boom")
	if buf.Len() != 0 {
		t.Errorf("Quiet must suppress everything, got %q", buf.String())
	}
}

func TestMessageFormat(t *testing.T) {
	buf := withTestSetup(t, Debug)
	Debugf("ran %s in %d ms", "fig14", 42)
	want := "03:04:05.678 debug ran fig14 in 42 ms\n"
	if got := buf.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestEnabled(t *testing.T) {
	withTestSetup(t, Info)
	if !Enabled(Error) || !Enabled(Info) {
		t.Error("Error/Info must be enabled at Info level")
	}
	if Enabled(Debug) || Enabled(Trace) {
		t.Error("Debug/Trace must be disabled at Info level")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		Quiet: "quiet", Error: "error", Info: "info",
		Debug: "debug", Trace: "trace", Level(9): "level(9)",
	} {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", l, got, want)
		}
	}
}

// TestConcurrentLogging is the -race proof for the logger: level flips
// and emission from many goroutines.
func TestConcurrentLogging(t *testing.T) {
	withTestSetup(t, Info)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Infof("worker %d line %d", w, i)
				if i%50 == 0 {
					SetLevel(Level(i/50) % 5)
					SetLevel(Info)
				}
			}
		}(w)
	}
	wg.Wait()
}
