// Package log is the stack's small leveled logger. All diagnostic and
// progress output from the CLIs and the experiment driver goes through
// it (primary results keep using stdout directly: tables and reports are
// the programs' output, not diagnostics).
//
// The level comes from, in increasing precedence: the built-in default
// (info), the HIFI_LOG environment variable (error|info|debug|trace, or
// quiet/off), and an explicit SetLevel call (the CLIs' -v / -q flags).
package log

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders message severities; messages at or below the active
// level are emitted.
type Level int32

// Levels, quietest first.
const (
	// Quiet suppresses everything, errors included.
	Quiet Level = iota
	// Error emits failures only.
	Error
	// Info is the default: progress and one-line run summaries.
	Info
	// Debug adds per-step diagnostics (per-workload runs, file sizes).
	Debug
	// Trace adds the firehose (per-event diagnostics).
	Trace
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Quiet:
		return "quiet"
	case Error:
		return "error"
	case Info:
		return "info"
	case Debug:
		return "debug"
	case Trace:
		return "trace"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a level name (or verbosity digit) to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quiet", "off", "none":
		return Quiet, nil
	case "error", "0":
		return Error, nil
	case "info", "1", "":
		return Info, nil
	case "debug", "2", "verbose":
		return Debug, nil
	case "trace", "3":
		return Trace, nil
	default:
		return Info, fmt.Errorf("log: unknown level %q (quiet|error|info|debug|trace)", s)
	}
}

var (
	level atomic.Int32

	mu  sync.Mutex
	out io.Writer = os.Stderr
	// now is stubbed in tests for deterministic timestamps.
	now = time.Now
)

func init() {
	level.Store(int32(Info))
	if env := os.Getenv("HIFI_LOG"); env != "" {
		if l, err := ParseLevel(env); err == nil {
			level.Store(int32(l))
		}
	}
}

// SetLevel overrides the active level (flags beat HIFI_LOG).
func SetLevel(l Level) { level.Store(int32(l)) }

// GetLevel returns the active level.
func GetLevel() Level { return Level(level.Load()) }

// Enabled reports whether messages at l would be emitted, for callers
// that want to skip building expensive arguments.
func Enabled(l Level) bool { return l <= GetLevel() }

// SetOutput redirects log output (tests); default is os.Stderr.
func SetOutput(w io.Writer) {
	mu.Lock()
	defer mu.Unlock()
	out = w
}

func emit(l Level, format string, args ...interface{}) {
	if !Enabled(l) {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	fmt.Fprintf(out, "%s %-5s %s\n",
		now().Format("15:04:05.000"), l, fmt.Sprintf(format, args...))
}

// Errorf logs at Error level.
func Errorf(format string, args ...interface{}) { emit(Error, format, args...) }

// exit is stubbed in tests so Fatalf can be exercised.
var exit = os.Exit

// Fatalf logs at Error level and exits with status 1. The CLIs use it as
// their single fatal-error path so -q and HIFI_LOG=quiet govern fatal
// messages the same way they govern every other diagnostic.
func Fatalf(format string, args ...interface{}) {
	emit(Error, format, args...)
	exit(1)
}

// Infof logs at Info level.
func Infof(format string, args ...interface{}) { emit(Info, format, args...) }

// Debugf logs at Debug level.
func Debugf(format string, args ...interface{}) { emit(Debug, format, args...) }

// Tracef logs at Trace level.
func Tracef(format string, args ...interface{}) { emit(Trace, format, args...) }
