package telemetry

// Canonical series names shared by the instrumented packages and the
// exporter consumers. Instrumentation must register through these
// constants so docs/observability.md stays the single naming authority.
const (
	// Cache hierarchy (labelled with level="l1"|"l2"|"l3").
	MetricCacheHits       = "hifi_cache_hits_total"
	MetricCacheMisses     = "hifi_cache_misses_total"
	MetricCacheEvictions  = "hifi_cache_evictions_total"
	MetricCacheWritebacks = "hifi_cache_writebacks_total"

	// Racetrack array shift behaviour.
	MetricShiftOps        = "hifi_shift_ops_total"
	MetricShiftSteps      = "hifi_shift_steps_total"
	MetricShiftCycles     = "hifi_shift_cycles_total"
	MetricShiftZero       = "hifi_shift_zero_accesses_total"
	MetricShiftDistance   = "hifi_shift_distance_steps"
	MetricShiftOpLatency  = "hifi_shift_op_cycles"
	MetricShiftOpInterval = "hifi_shift_op_interval_steps"

	// Protection stack: p-ECC verifies, corrections, conversions, and
	// the analytic expected-failure accumulators driving MTTF.
	MetricPECCChecks          = "hifi_pecc_checks_total"
	MetricPECCDetected        = "hifi_pecc_detected_total"
	MetricPECCCorrections     = "hifi_pecc_corrections_total"
	MetricPECCDUEs            = "hifi_pecc_dues_total"
	MetricPECCIndeterminate   = "hifi_pecc_indeterminate_total"
	MetricSTSConversions      = "hifi_sts_conversions_total"
	MetricErrInjected         = "hifi_errors_injected_total"
	MetricErrMagnitude        = "hifi_error_magnitude_steps"
	MetricExpectedCorrections = "hifi_expected_corrections_total"
	MetricExpectedSDC         = "hifi_expected_sdc_total"
	MetricExpectedDUE         = "hifi_expected_due_total"

	// Shift architecture (planner / adapter).
	MetricAdapterStalls = "hifi_adapter_stall_sequences_total"

	// Promotion buffer.
	MetricPromoHits    = "hifi_promo_hits_total"
	MetricPromoMisses  = "hifi_promo_misses_total"
	MetricPromoFlushes = "hifi_promo_flushes_total"

	// DRAM behind the LLC.
	MetricDRAMFills      = "hifi_dram_fills_total"
	MetricDRAMWritebacks = "hifi_dram_writebacks_total"

	// Parallel experiment engine (internal/engine): job lifecycle
	// counters and live pool gauges. See docs/engine.md.
	MetricEngineJobs      = "hifi_engine_jobs_total"
	MetricEngineExecuted  = "hifi_engine_jobs_executed_total"
	MetricEngineCacheHits = "hifi_engine_cache_hits_total"
	MetricEngineCacheMiss = "hifi_engine_cache_misses_total"
	MetricEngineResumed   = "hifi_engine_jobs_resumed_total"
	MetricEngineRetries   = "hifi_engine_retries_total"
	MetricEngineFailures  = "hifi_engine_failures_total"
	MetricEngineQueueLen  = "hifi_engine_queue_depth"
	MetricEngineBusy      = "hifi_engine_workers_busy"
	MetricEngineJobMS     = "hifi_engine_job_ms"
	// Robustness counters: corrupt cache objects quarantined on read,
	// journal records skipped on -resume, and job attempts abandoned at
	// the per-job deadline. See docs/engine.md ("failure modes").
	MetricEngineCacheCorrupt   = "hifi_engine_cache_corrupt_total"
	MetricEngineJournalSkipped = "hifi_engine_journal_skipped_total"
	MetricEngineJobTimeouts    = "hifi_engine_job_timeouts_total"
	// Cache lifecycle under a -cache-max-bytes budget: objects evicted
	// access-ordered, and the accounted size of the objects tree. See
	// docs/engine.md ("cache size budgets & eviction").
	MetricEngineCacheEvictions = "hifi_engine_cache_evictions_total"
	MetricEngineCacheBytes     = "hifi_engine_cache_bytes"
	// Per-job resource accounting: process CPU, allocation, and GC work
	// attributed to executed jobs (approximate under parallel workers —
	// the counters are process-global). See docs/perf.md.
	MetricEngineJobCPUMS      = "hifi_engine_job_cpu_ms_total"
	MetricEngineJobAllocBytes = "hifi_engine_job_alloc_bytes_total"
	MetricEngineJobMallocs    = "hifi_engine_job_mallocs_total"
	MetricEngineJobGCCycles   = "hifi_engine_job_gc_cycles_total"

	// Fault injection (internal/faults): operations executed under an
	// active (non-identity) modulation and outcomes forced by a stuck
	// fault. See docs/faults.md.
	MetricFaultsActiveOps = "hifi_faults_active_ops_total"
	MetricFaultsForced    = "hifi_faults_forced_total"

	// Sweep daemon (internal/serve, cmd/hifi-serve): the multi-tenant
	// job API's admission and lifecycle ledger. See docs/serve.md.
	MetricServeSubmitted     = "hifi_serve_jobs_submitted_total"
	MetricServeDeduped       = "hifi_serve_jobs_deduped_total"
	MetricServeRejectedQueue = "hifi_serve_rejected_queue_total"
	MetricServeRejectedQuota = "hifi_serve_rejected_quota_total"
	MetricServeCompleted     = "hifi_serve_jobs_completed_total"
	MetricServeFailed        = "hifi_serve_jobs_failed_total"
	MetricServeCanceled      = "hifi_serve_jobs_canceled_total"
	MetricServeQueueDepth    = "hifi_serve_queue_depth"
	MetricServeRunning       = "hifi_serve_jobs_running"

	// Crash-safe job index (internal/serve/index.go): the append-only
	// hifi_serve_index_v1 WAL's write/replay/compaction ledger. See
	// docs/serve.md ("Restart recovery & the job index").
	MetricServeIndexRecords     = "hifi_serve_index_records_total"
	MetricServeIndexWriteErrors = "hifi_serve_index_write_errors_total"
	MetricServeIndexReplayed    = "hifi_serve_index_replayed_total"
	MetricServeIndexSkipped     = "hifi_serve_index_skipped_total"
	MetricServeIndexCompactions = "hifi_serve_index_compactions_total"

	// HTTP request plane (internal/serve middleware): per-route RED
	// metrics — request counters labelled {route,code}, error counters
	// labelled {route}, and a latency histogram labelled {route}. See
	// docs/serve.md ("Access log and request metrics").
	MetricServeHTTPRequests = "hifi_serve_http_requests_total"
	MetricServeHTTPErrors   = "hifi_serve_http_errors_total"
	MetricServeHTTPLatency  = "hifi_serve_http_request_ms"

	// SLO plane (internal/telemetry/slo): windowed good/bad counters
	// labelled {slo} and burn-rate gauges labelled {slo,window},
	// refreshed on every /slo evaluation. See docs/serve.md ("SLOs").
	MetricSLOGood     = "hifi_slo_good_total"
	MetricSLOBad      = "hifi_slo_bad_total"
	MetricSLOBurnRate = "hifi_slo_burn_rate"

	// Playback tape (internal/shiftctrl): misalignment corrections
	// applied during verified playback.
	MetricTapeCorrections = "hifi_tape_corrections_total"

	// Structured event plane (internal/telemetry/events): deliveries
	// dropped because an SSE subscriber's buffer was full. See
	// docs/events.md.
	MetricEventsDropped = "hifi_events_dropped_total"

	// Run progress (gauges, readable while a run is in flight).
	MetricSimAccessesDone  = "hifi_sim_accesses_done"
	MetricSimAccessesTotal = "hifi_sim_accesses_total"
	// MetricSimPhase is 0 during cache warmup and 1 once measurement
	// starts (always 1 for runs without a warmup phase).
	MetricSimPhase = "hifi_sim_phase"
	// MetricSimWarmupAccesses counts accesses consumed by the warmup
	// phase (excluded from the Result statistics).
	MetricSimWarmupAccesses = "hifi_sim_warmup_accesses_total"
)
