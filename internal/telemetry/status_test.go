package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches a route from the test server and returns status and body.
func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestStatusMuxRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hifi_test_total", "help").Add(3)
	col := NewSpanCollector(reg)
	ctx := WithCollector(nil, col)
	_, sp := StartSpan(ctx, "run")
	man := NewManifest("test-tool")
	ts := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"schema":"hifi_timeseries_v1","windows":[]}`)
	})
	perf := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"schema":"hifi_perf_v1","spans":[]}`)
	})
	srv := httptest.NewServer(NewStatusMux(StatusBackends{
		Registry: reg, Spans: col, Manifest: man, Timeseries: ts, Perf: perf,
	}))
	defer srv.Close()

	if code, got := get(t, srv, "/healthz"); code != 200 || !strings.Contains(got, "ok") {
		t.Errorf("/healthz = %d %q", code, got)
	}
	if _, got := get(t, srv, "/metrics"); !strings.Contains(got, "hifi_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", got)
	}
	if _, got := get(t, srv, "/spans"); !strings.Contains(got, `"name": "run"`) {
		t.Errorf("/spans missing in-flight span:\n%s", got)
	}
	if _, got := get(t, srv, "/runinfo"); !strings.Contains(got, `"tool": "test-tool"`) ||
		!strings.Contains(got, `"status": "running"`) {
		t.Errorf("/runinfo = %s", got)
	}
	if _, got := get(t, srv, "/timeseries"); !strings.Contains(got, "hifi_timeseries_v1") {
		t.Errorf("/timeseries = %s", got)
	}
	if _, got := get(t, srv, "/perf"); !strings.Contains(got, "hifi_perf_v1") {
		t.Errorf("/perf = %s", got)
	}
	sp.End()
}

// /healthz keeps the bare-200-with-"ok" probe contract but now carries
// the live process facts as JSON.
func TestStatusMuxHealthzJSON(t *testing.T) {
	h := NewHealthState()
	h.SetPhase("fig14")
	h.SetInFlight(func() int { return 3 })
	h.SetEventsSeq(func() uint64 { return 42 })
	srv := httptest.NewServer(NewStatusMux(StatusBackends{Health: h}))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 containing ok", code, body)
	}
	var got struct {
		Status   string `json:"status"`
		UptimeMS int64  `json:"uptime_ms"`
		Phase    string `json:"phase"`
		InFlight int    `json:"jobs_in_flight"`
		Events   uint64 `json:"events_seq"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/healthz body is not JSON: %v\n%s", err, body)
	}
	if got.Status != "ok" || got.Phase != "fig14" || got.InFlight != 3 || got.Events != 42 {
		t.Errorf("/healthz = %+v", got)
	}
	if got.UptimeMS < 0 {
		t.Errorf("negative uptime %d", got.UptimeMS)
	}
}

// Every route must serve an empty-but-valid document when its backing
// object is nil, so dashboards can poll any tool uniformly whether or
// not that tool enabled the subsystem.
func TestStatusMuxNilBackends(t *testing.T) {
	srv := httptest.NewServer(NewStatusMux(StatusBackends{}))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body = get(t, srv, "/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics on nil registry = %d %q, want empty 200", code, body)
	}
	for _, path := range []string{"/spans", "/runinfo", "/timeseries", "/perf", "/healthz"} {
		code, body := get(t, srv, path)
		if code != 200 {
			t.Errorf("%s = %d, want 200", path, code)
			continue
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Errorf("%s body is not JSON: %v\n%s", path, err, body)
		}
	}
	if code, body := get(t, srv, "/events"); code != 200 || body != "" {
		t.Errorf("/events with no bus = %d %q, want empty 200", code, body)
	}
}

// Live endpoints must never be cached by an intermediary (a stale
// /metrics snapshot silently corrupts a dashboard), and text routes
// declare their charset explicitly.
func TestStatusMuxContentTypes(t *testing.T) {
	srv := httptest.NewServer(NewStatusMux(StatusBackends{Registry: NewRegistry()}))
	defer srv.Close()
	for path, want := range map[string]string{
		"/healthz":    "application/json; charset=utf-8",
		"/metrics":    "text/plain; version=0.0.4; charset=utf-8",
		"/spans":      "application/json; charset=utf-8",
		"/runinfo":    "application/json; charset=utf-8",
		"/timeseries": "application/json; charset=utf-8",
		"/perf":       "application/json; charset=utf-8",
		"/events":     "text/event-stream; charset=utf-8",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		ct := resp.Header.Get("Content-Type")
		cc := resp.Header.Get("Cache-Control")
		resp.Body.Close()
		if ct != want {
			t.Errorf("%s Content-Type = %q, want %q", path, ct, want)
		}
		if cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
	}
}

func TestStatusMuxPprofIndex(t *testing.T) {
	srv := httptest.NewServer(NewStatusMux(StatusBackends{}))
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (len %d)", code, len(body))
	}
}
