package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches a route from the test server and returns status and body.
func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestStatusMuxRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hifi_test_total", "help").Add(3)
	col := NewSpanCollector(reg)
	ctx := WithCollector(nil, col)
	_, sp := StartSpan(ctx, "run")
	man := NewManifest("test-tool")
	ts := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"schema":"hifi_timeseries_v1","windows":[]}`)
	})
	perf := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"schema":"hifi_perf_v1","spans":[]}`)
	})
	srv := httptest.NewServer(NewStatusMux(reg, col, man, ts, perf))
	defer srv.Close()

	if code, got := get(t, srv, "/healthz"); code != 200 || !strings.Contains(got, "ok") {
		t.Errorf("/healthz = %d %q", code, got)
	}
	if _, got := get(t, srv, "/metrics"); !strings.Contains(got, "hifi_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", got)
	}
	if _, got := get(t, srv, "/spans"); !strings.Contains(got, `"name": "run"`) {
		t.Errorf("/spans missing in-flight span:\n%s", got)
	}
	if _, got := get(t, srv, "/runinfo"); !strings.Contains(got, `"tool": "test-tool"`) ||
		!strings.Contains(got, `"status": "running"`) {
		t.Errorf("/runinfo = %s", got)
	}
	if _, got := get(t, srv, "/timeseries"); !strings.Contains(got, "hifi_timeseries_v1") {
		t.Errorf("/timeseries = %s", got)
	}
	if _, got := get(t, srv, "/perf"); !strings.Contains(got, "hifi_perf_v1") {
		t.Errorf("/perf = %s", got)
	}
	sp.End()
}

// Every route must serve an empty-but-valid document when its backing
// object is nil, so dashboards can poll any tool uniformly whether or
// not that tool enabled the subsystem.
func TestStatusMuxNilBackends(t *testing.T) {
	srv := httptest.NewServer(NewStatusMux(nil, nil, nil, nil, nil))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body = get(t, srv, "/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics on nil registry = %d %q, want empty 200", code, body)
	}
	for _, path := range []string{"/spans", "/runinfo", "/timeseries", "/perf"} {
		code, body := get(t, srv, path)
		if code != 200 {
			t.Errorf("%s = %d, want 200", path, code)
			continue
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Errorf("%s body is not JSON: %v\n%s", path, err, body)
		}
	}
}

func TestStatusMuxContentTypes(t *testing.T) {
	srv := httptest.NewServer(NewStatusMux(NewRegistry(), nil, nil, nil, nil))
	defer srv.Close()
	for path, want := range map[string]string{
		"/healthz":    "text/plain",
		"/metrics":    "text/plain",
		"/spans":      "application/json",
		"/runinfo":    "application/json",
		"/timeseries": "application/json",
		"/perf":       "application/json",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		ct := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if !strings.HasPrefix(ct, want) {
			t.Errorf("%s Content-Type = %q, want prefix %q", path, ct, want)
		}
	}
}

func TestStatusMuxPprofIndex(t *testing.T) {
	srv := httptest.NewServer(NewStatusMux(nil, nil, nil, nil, nil))
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (len %d)", code, len(body))
	}
}
