package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestNilHandlesAreNoops(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(5)
	g.Add(-2)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	c.Add(2.5)
	c.Add(-4) // ignored: counters are monotone
	c.Add(0)  // ignored
	c.Inc()
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value = %v, want 3.5", got)
	}
}

func TestGaugeMovesBothWays(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	g.Set(10)
	g.Add(-4)
	g.Add(1.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("Value = %v, want 7.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("Value = %v, want -1", got)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	d := snap.Histograms[0]
	// Upper bounds are inclusive: le=1 holds {0.5, 1}, le=2 holds
	// {1.5, 2}, le=4 holds {3, 4}, +Inf holds {100}.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if d.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, d.Counts[i], w, d.Counts)
		}
	}
	if d.Count != 7 || d.Sum != 112 {
		t.Fatalf("count/sum = %d/%v, want 7/112", d.Count, d.Sum)
	}
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// run under -race this is the data-race proof, and the totals prove no
// lost updates in the CAS loops.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", ShiftDistanceBuckets())

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(0.5)
				g.Add(1)
				h.Observe(float64(i%7 + 1))
			}
		}(w)
	}
	wg.Wait()

	if got, want := c.Value(), 0.5*workers*perWorker; got != want {
		t.Errorf("counter = %v, want %v", got, want)
	}
	if got, want := g.Value(), float64(workers*perWorker); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var bucketSum uint64
	for _, d := range r.Snapshot().Histograms {
		for _, n := range d.Counts {
			bucketSum += n
		}
	}
	if got, want := bucketSum, uint64(workers*perWorker); got != want {
		t.Errorf("bucket total = %d, want %d", got, want)
	}
}

// TestConcurrentRegistration hammers the registry's first-use creation
// path: all goroutines must agree on one handle per name.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	handles := make([]*Counter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			handles[w] = r.Counter("shared", "")
			handles[w].Inc()
		}(w)
	}
	wg.Wait()
	for _, h := range handles[1:] {
		if h != handles[0] {
			t.Fatal("same name must yield the same handle")
		}
	}
	if got := handles[0].Value(); got != workers {
		t.Fatalf("shared counter = %v, want %d", got, workers)
	}
}

func TestAddFloatExactness(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	for i := 0; i < 1000; i++ {
		c.Add(0.125) // exactly representable: the sum must be exact
	}
	if got := c.Value(); got != 125 {
		t.Fatalf("Value = %v, want 125", got)
	}
	if math.IsNaN(c.Value()) {
		t.Fatal("NaN leaked into counter")
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("c", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("h", "", ShiftDistanceBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 7))
	}
}
