package telemetry

import "testing"

func TestRegistryIdempotentCreation(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c", "first help")
	c2 := r.Counter("c", "different help")
	if c1 != c2 {
		t.Fatal("re-registering a counter must return the original")
	}
	h1 := r.Histogram("h", "", []float64{1, 2})
	h2 := r.Histogram("h", "", []float64{10, 20, 30})
	if h1 != h2 {
		t.Fatal("re-registering a histogram must return the original")
	}
	if len(h1.bounds) != 2 {
		t.Fatalf("original bucket layout must win, got %v", h1.bounds)
	}
}

func TestHistogramBoundsCopied(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 2, 3}
	h := r.Histogram("h", "", bounds)
	bounds[0] = 99 // caller mutation must not corrupt the layout
	h.Observe(1)
	if got := r.Snapshot().Histograms[0].Counts[0]; got != 1 {
		t.Fatalf("le=1 bucket = %d, want 1 (bounds aliased?)", got)
	}
}

func TestLabel(t *testing.T) {
	cases := []struct{ in, key, val, want string }{
		{"m", "level", "l1", `m{level="l1"}`},
		{`m{level="l1"}`, "op", "read", `m{level="l1",op="read"}`},
	}
	for _, c := range cases {
		if got := Label(c.in, c.key, c.val); got != c.want {
			t.Errorf("Label(%q, %q, %q) = %q, want %q", c.in, c.key, c.val, got, c.want)
		}
	}
}

func TestSplitName(t *testing.T) {
	cases := []struct{ in, base, labels string }{
		{"m", "m", ""},
		{`m{a="b"}`, "m", `a="b"`},
		{`m{a="b",c="d"}`, "m", `a="b",c="d"`},
	}
	for _, c := range cases {
		base, labels := splitName(c.in)
		if base != c.base || labels != c.labels {
			t.Errorf("splitName(%q) = %q, %q, want %q, %q", c.in, base, labels, c.base, c.labels)
		}
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	l1 := r.Counter(Label("hits", "level", "l1"), "")
	l2 := r.Counter(Label("hits", "level", "l2"), "")
	if l1 == l2 {
		t.Fatal("different labels must be different series")
	}
	l1.Add(3)
	l2.Add(5)
	s := r.Snapshot()
	if v, ok := s.Lookup(`hits{level="l1"}`); !ok || v != 3 {
		t.Fatalf(`Lookup(hits{level="l1"}) = %v, %v`, v, ok)
	}
	if v, ok := s.Lookup(`hits{level="l2"}`); !ok || v != 5 {
		t.Fatalf(`Lookup(hits{level="l2"}) = %v, %v`, v, ok)
	}
}
