// Package telemetry is the observability substrate of the simulation
// stack: a dependency-free, concurrency-safe metrics registry (counters,
// gauges, histograms with fixed bucket layouts), a ring-buffer event
// tracer for shift operations and protection events, and snapshot
// exporters in Prometheus text format and JSON.
//
// The design goal is that instrumentation costs (almost) nothing when it
// is switched off: every metric handle is nil-safe, so a package holds
// plain *Counter / *Histogram fields and increments them unconditionally;
// with no registry attached the fields are nil and each call is a single
// predictable branch with zero allocations. When a registry is attached,
// updates are lock-free atomics safe for concurrent use.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing series. Values are float64 so
// that expected-value accounting (fractional error counts from the
// analytic model) shares the same type as event counts. A nil *Counter
// is a valid no-op handle.
type Counter struct {
	name string
	help string
	bits atomic.Uint64 // float64 bits
}

// Name returns the full series name, including any label suffix.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v. Negative deltas are ignored to keep
// the series monotone.
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current total (0 for a nil handle).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a series that can move both ways (queue depths, progress,
// head positions). A nil *Gauge is a valid no-op handle.
type Gauge struct {
	name string
	help string
	bits atomic.Uint64
}

// Name returns the full series name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by v (either sign).
func (g *Gauge) Add(v float64) {
	if g == nil || v == 0 {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value (0 for a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bucket bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// A nil *Histogram is a valid no-op handle.
type Histogram struct {
	name   string
	help   string
	bounds []float64       // len B, ascending upper bounds
	counts []atomic.Uint64 // len B+1, last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// Name returns the full series name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// Count returns the number of observations (0 for a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ShiftDistanceBuckets is the fixed layout for shift-distance histograms:
// one bucket per distance the paper tabulates (1..7, Table 2) plus the
// segment-length tail. Distances are small integers, so exact buckets
// make the Table 2 per-distance decomposition recoverable from the
// histogram alone.
func ShiftDistanceBuckets() []float64 {
	return []float64{1, 2, 3, 4, 5, 6, 7, 8, 16, 32}
}

// LatencyCycleBuckets is the fixed layout for latency histograms in
// controller cycles: powers of two from a single cycle to DRAM-scale
// stalls.
func LatencyCycleBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
}
