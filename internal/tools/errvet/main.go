// Command errvet is the repo's errcheck-style vet step. It flags two
// patterns that silently lose failure information:
//
// 1. Close() and Flush() calls whose error result is dropped. Those are
// exactly the calls where buffered data or a failed disk write
// disappears without a trace — a report writer that loses the tail of
// fidelity.json but exits zero is worse than one that crashes.
//
// A call is flagged when it appears as a bare expression statement:
//
//	f.Close()        // flagged: error dropped silently
//
// and accepted in every form that handles or visibly discards it:
//
//	err := f.Close() // handled
//	return f.Close() // handled
//	_ = f.Close()    // explicit, greppable discard
//	defer f.Close()  // read-path cleanup idiom; not an ExprStmt
//
// 2. Swallowed cancellation causes: a select case receiving from
// x.Done() whose body returns an explicit trailing nil without
// consulting x.Err() or context.Cause. A worker loop written that way
// reports success for a job that was actually cancelled or timed out —
// the engine's retry accounting then never sees the failure:
//
//	case <-ctx.Done():
//		return res, nil              // flagged: cancellation swallowed
//	case <-ctx.Done():
//		return res, ctx.Err()        // handled
//	case <-actx.Done():
//		return nil, context.Cause(actx) // handled (cause-aware)
//	case <-stop:
//		return nil, nil              // not a Done() channel; not flagged
//
// Bare `return` in a void goroutine (a feeder loop) is not flagged.
//
// Usage: errvet [dir ...]   (default ".", recursing; _test.go files
// and testdata/ are skipped). Exits 1 when any call is flagged, so it
// slots into `make vet` and CI directly.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// flagged lists the method names whose dropped error loses data.
var flagged = map[string]bool{"Close": true, "Flush": true}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		files, err := goFiles(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "errvet: %v\n", err)
			os.Exit(2)
		}
		for _, path := range files {
			n, err := checkFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "errvet: %v\n", err)
				os.Exit(2)
			}
			bad += n
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "errvet: %d finding(s); handle the error (or write `_ = x.Close()` / return x.Err())\n", bad)
		os.Exit(1)
	}
}

// goFiles walks root collecting non-test .go files, skipping vendor,
// testdata, and hidden directories.
func goFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// checkFile parses one file and reports every bare Close/Flush
// expression statement.
func checkFile(path string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return 0, err
	}
	bad := 0
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ExprStmt:
			call, ok := v.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !flagged[sel.Sel.Name] || len(call.Args) > 0 {
				return true
			}
			pos := fset.Position(v.Pos())
			fmt.Printf("%s:%d: result of %s.%s() is dropped\n",
				pos.Filename, pos.Line, exprString(sel.X), sel.Sel.Name)
			bad++
		case *ast.CommClause:
			bad += checkDoneClause(fset, v)
		}
		return true
	})
	return bad, nil
}

// checkDoneClause flags a `case <-x.Done():` whose body returns an
// explicit trailing nil without referencing x.Err() (any receiver's
// .Err(), conservatively) or context.Cause — the shape that swallows a
// cancellation and reports it as success.
func checkDoneClause(fset *token.FileSet, cc *ast.CommClause) int {
	recv := doneReceiver(cc.Comm)
	if recv == "" {
		return 0
	}
	consulted := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				// x.Err() / errors.Is(...) / context.Cause(actx) all
				// carry the cancellation out of the clause.
				if name == "Err" || name == "Cause" || name == "Is" || name == "As" {
					consulted = true
					return false
				}
			}
			return true
		})
	}
	if consulted {
		return 0
	}
	bad := 0
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // nested function bodies return elsewhere
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) == 0 {
				return true
			}
			last, ok := ret.Results[len(ret.Results)-1].(*ast.Ident)
			if !ok || last.Name != "nil" {
				return true
			}
			pos := fset.Position(ret.Pos())
			fmt.Printf("%s:%d: select on %s.Done() returns nil without consulting %s.Err() or context.Cause\n",
				pos.Filename, pos.Line, recv, recv)
			bad++
			return true
		})
	}
	return bad
}

// doneReceiver returns the rendered receiver of a `<-x.Done()` comm
// statement ("" when the clause receives from anything else).
func doneReceiver(comm ast.Stmt) string {
	var expr ast.Expr
	switch v := comm.(type) {
	case *ast.ExprStmt:
		expr = v.X
	case *ast.AssignStmt:
		if len(v.Rhs) == 1 {
			expr = v.Rhs[0]
		}
	}
	un, ok := expr.(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return ""
	}
	call, ok := un.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || len(call.Args) > 0 {
		return ""
	}
	return exprString(sel.X)
}

// exprString renders simple receivers for the message; anything
// complex falls back to "(...)".
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	}
	return "(...)"
}
