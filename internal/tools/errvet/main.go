// Command errvet is the repo's errcheck-style vet step: it flags
// Close() and Flush() calls whose error result is silently dropped.
// Those are exactly the calls where buffered data or a failed disk
// write disappears without a trace — a report writer that loses the
// tail of fidelity.json but exits zero is worse than one that crashes.
//
// A call is flagged when it appears as a bare expression statement:
//
//	f.Close()        // flagged: error dropped silently
//
// and accepted in every form that handles or visibly discards it:
//
//	err := f.Close() // handled
//	return f.Close() // handled
//	_ = f.Close()    // explicit, greppable discard
//	defer f.Close()  // read-path cleanup idiom; not an ExprStmt
//
// Usage: errvet [dir ...]   (default ".", recursing; _test.go files
// and testdata/ are skipped). Exits 1 when any call is flagged, so it
// slots into `make vet` and CI directly.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// flagged lists the method names whose dropped error loses data.
var flagged = map[string]bool{"Close": true, "Flush": true}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		files, err := goFiles(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "errvet: %v\n", err)
			os.Exit(2)
		}
		for _, path := range files {
			n, err := checkFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "errvet: %v\n", err)
				os.Exit(2)
			}
			bad += n
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "errvet: %d unchecked Close/Flush call(s); handle the error or write `_ = x.Close()`\n", bad)
		os.Exit(1)
	}
}

// goFiles walks root collecting non-test .go files, skipping vendor,
// testdata, and hidden directories.
func goFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// checkFile parses one file and reports every bare Close/Flush
// expression statement.
func checkFile(path string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return 0, err
	}
	bad := 0
	ast.Inspect(f, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !flagged[sel.Sel.Name] || len(call.Args) > 0 {
			return true
		}
		pos := fset.Position(stmt.Pos())
		fmt.Printf("%s:%d: result of %s.%s() is dropped\n",
			pos.Filename, pos.Line, exprString(sel.X), sel.Sel.Name)
		bad++
		return true
	})
	return bad, nil
}

// exprString renders simple receivers for the message; anything
// complex falls back to "(...)".
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	}
	return "(...)"
}
