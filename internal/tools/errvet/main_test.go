package main

import (
	"os"
	"path/filepath"
	"testing"
)

// write puts one source file in a fresh temp dir and returns its path.
func write(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func count(t *testing.T, src string) int {
	t.Helper()
	n, err := checkFile(write(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFlagsDroppedCloseAndFlush(t *testing.T) {
	src := `package p
func f(c interface{ Close() error }) {
	c.Close()          // flagged
	_ = c.Close()      // discarded visibly
	defer c.Close()    // cleanup idiom
	err := c.Close()   // handled
	_ = err
}`
	if got := count(t, src); got != 1 {
		t.Errorf("flagged %d calls, want 1", got)
	}
}

func TestFlagsSwallowedCancellation(t *testing.T) {
	src := `package p
import "context"
func f(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, nil // flagged: cancellation reported as success
	}
}`
	if got := count(t, src); got != 1 {
		t.Errorf("flagged %d clauses, want 1", got)
	}
}

func TestAcceptsConsultedCancellation(t *testing.T) {
	src := `package p
import "context"
func f(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
func g(actx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-actx.Done():
		return 0, context.Cause(actx)
	}
}
func h(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		if err := context.Cause(ctx); err != nil {
			return 0, err
		}
		return 0, nil // reachable only when the cause was consulted
	}
}`
	if got := count(t, src); got != 0 {
		t.Errorf("flagged %d clauses, want 0", got)
	}
}

func TestAcceptsNonDoneChannelsAndVoidReturns(t *testing.T) {
	src := `package p
import "context"
func feeder(ctx context.Context, out chan int) {
	for i := 0; ; i++ {
		select {
		case out <- i:
		case <-ctx.Done():
			return // void feeder loop: nothing to report
		}
	}
}
func stopper(stop chan struct{}, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-stop:
		return 0, nil // plain stop channel carries no cause
	}
}`
	if got := count(t, src); got != 0 {
		t.Errorf("flagged %d clauses, want 0", got)
	}
}

func TestNestedFuncLitDoesNotLeakReturns(t *testing.T) {
	src := `package p
import "context"
func f(ctx context.Context) error {
	select {
	case <-ctx.Done():
		fn := func() (int, error) { return 0, nil } // inner return is fn's
		_ = fn
		return ctx.Err()
	}
}`
	if got := count(t, src); got != 0 {
		t.Errorf("flagged %d clauses, want 0", got)
	}
}
