package main

import (
	"os"
	"path/filepath"
	"testing"
)

// tree writes a miniature repo: a telemetry/names.go plus source files,
// and returns its root.
func tree(t *testing.T, names string, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("telemetry/names.go", names)
	for rel, src := range files {
		write(rel, src)
	}
	return root
}

const names = `package telemetry
const (
	MetricShiftOps = "hifi_shift_ops_total"
	MetricQueue    = "hifi_queue_depth"
)`

func TestAcceptsConstantRegistrationAndDeclaredLiteral(t *testing.T) {
	root := tree(t, names, map[string]string{
		"a/a.go": `package a
const x = MetricShiftOps
const y = MetricQueue
const z = "hifi_shift_ops_total" // lookup of a declared value: fine
`,
	})
	if n, err := lintTree(root); err != nil || n != 0 {
		t.Fatalf("lintTree = %d, %v; want 0 findings", n, err)
	}
}

func TestFlagsUndeclaredLiteral(t *testing.T) {
	root := tree(t, names, map[string]string{
		"a/a.go": `package a
const x = MetricShiftOps
const y = MetricQueue
const rogue = "hifi_rogue_series_total"
`,
	})
	if n, err := lintTree(root); err != nil || n != 1 {
		t.Fatalf("lintTree = %d, %v; want 1 finding", n, err)
	}
}

func TestFlagsUnusedConstant(t *testing.T) {
	root := tree(t, names, map[string]string{
		"a/a.go": `package a
const x = MetricShiftOps // MetricQueue is never referenced
`,
	})
	if n, err := lintTree(root); err != nil || n != 1 {
		t.Fatalf("lintTree = %d, %v; want 1 finding", n, err)
	}
}

func TestSchemaStampsExempt(t *testing.T) {
	root := tree(t, names, map[string]string{
		"a/a.go": `package a
const x = MetricShiftOps
const y = MetricQueue
const schema = "hifi_access_v1" // wire format, not a series
`,
	})
	if n, err := lintTree(root); err != nil || n != 0 {
		t.Fatalf("lintTree = %d, %v; want 0 findings", n, err)
	}
}

func TestTestFilesSkipped(t *testing.T) {
	root := tree(t, names, map[string]string{
		"a/a.go": `package a
const x = MetricShiftOps
const y = MetricQueue
`,
		"a/a_test.go": `package a
const rogue = "hifi_testonly_total"
`,
	})
	if n, err := lintTree(root); err != nil || n != 0 {
		t.Fatalf("lintTree = %d, %v; want 0 findings", n, err)
	}
}

// The real repo must be clean — this is the same invocation `make vet`
// runs, so a regression fails here first.
func TestRealRepoClean(t *testing.T) {
	root := "../../.."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("repo root not found")
	}
	if n, err := lintTree(root); err != nil || n != 0 {
		t.Fatalf("lintTree(repo) = %d findings, err %v; want clean", n, err)
	}
}
