// Command metriclint keeps internal/telemetry/names.go the single
// naming authority for hifi_* metric series. It flags, in both
// directions:
//
//  1. A hifi_* series name appearing as a string literal anywhere
//     outside names.go that does not match the VALUE of a names.go
//     constant — a metric registered (or looked up) under a name the
//     docs and dashboards have never heard of. Instrumentation must
//     register through the constants; lookups may repeat a declared
//     value verbatim (examples do), but never invent one.
//  2. A names.go constant no non-test code references — a dead name
//     that would let docs drift from reality.
//
// Schema stamps (hifi_events_v1, hifi_access_v1, ...) end in a _vN
// version suffix by repo convention and are exempt: they name wire
// formats, not metric series.
//
// Usage: metriclint [dir ...]   (default ".", recursing; _test.go
// files and testdata/ are skipped). Exits 1 on any finding, so it
// slots into `make vet` and CI next to errvet.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// seriesRE recognizes a metric-series-shaped literal; versionRE exempts
// schema stamps.
var (
	seriesRE  = regexp.MustCompile(`^hifi_[a-z0-9_]+$`)
	versionRE = regexp.MustCompile(`_v[0-9]+$`)
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		n, err := lintTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d finding(s); declare series in internal/telemetry/names.go and register through the constants\n", bad)
		os.Exit(1)
	}
}

// lintTree lints one directory tree rooted at root. The tree must
// contain a names.go declaring the constants (internal/telemetry/
// names.go in the real repo); a tree without one has nothing to check.
func lintTree(root string) (int, error) {
	files, namesPath, err := goFiles(root)
	if err != nil {
		return 0, err
	}
	if namesPath == "" {
		return 0, nil
	}
	consts, err := declaredSeries(namesPath)
	if err != nil {
		return 0, err
	}
	values := map[string]string{} // series value → const name
	for name, v := range consts {
		values[v] = name
	}
	used := map[string]bool{} // const name → referenced somewhere
	bad := 0
	for _, path := range files {
		if path == namesPath {
			continue
		}
		n, err := lintFile(path, values, consts, used)
		if err != nil {
			return bad, err
		}
		bad += n
	}
	var unused []string
	for name := range consts {
		if !used[name] {
			unused = append(unused, name)
		}
	}
	sort.Strings(unused)
	for _, name := range unused {
		fmt.Printf("%s: constant %s (%q) is never referenced outside names.go\n", namesPath, name, consts[name])
		bad++
	}
	return bad, nil
}

// declaredSeries parses names.go and returns constName → series value
// for every string constant whose value looks like a hifi_* series.
func declaredSeries(path string) (map[string]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil || !seriesRE.MatchString(v) {
					continue
				}
				out[name.Name] = v
			}
		}
	}
	return out, nil
}

// lintFile flags undeclared hifi_* literals in one file and marks which
// constants it references.
func lintFile(path string, values map[string]string, consts map[string]string, used map[string]bool) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return 0, err
	}
	bad := 0
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BasicLit:
			if v.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(v.Value)
			if err != nil || !seriesRE.MatchString(s) || versionRE.MatchString(s) {
				return true
			}
			if _, ok := values[s]; !ok {
				pos := fset.Position(v.Pos())
				fmt.Printf("%s:%d: series %q is not declared in telemetry/names.go\n", pos.Filename, pos.Line, s)
				bad++
			}
		case *ast.Ident:
			if _, ok := consts[v.Name]; ok {
				used[v.Name] = true
			}
		}
		return true
	})
	return bad, nil
}

// goFiles walks root collecting non-test .go files (skipping vendor,
// testdata, and hidden directories) and locates the names.go of the
// telemetry package.
func goFiles(root string) (files []string, namesPath string, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		files = append(files, path)
		if name == "names.go" && filepath.Base(filepath.Dir(path)) == "telemetry" {
			namesPath = path
		}
		return nil
	})
	return files, namesPath, err
}
