package faults

import "fmt"

// Resolve composes the three plan sources every entry point shares —
// a named preset, explicit plan JSON, and an intensity multiplier —
// with one precedence rule: plan JSON wins over the preset, and the
// intensity scales whichever was chosen. An empty preset means "off"
// (the nominal device), and the result is normalized, so two callers
// describing the same regime get byte-identical canonical plans — the
// property the serve API needs for its spec fingerprints to match the
// CLI flags byte-for-byte (cliutil.FaultFlags and serve.Spec both
// resolve through here).
//
// Returns nil (no injection) for the nominal device.
func Resolve(preset string, planJSON []byte, intensity float64) (*Plan, error) {
	var plan *Plan
	if len(planJSON) > 0 {
		p, err := Parse(planJSON)
		if err != nil {
			return nil, err
		}
		plan = p
	} else {
		if preset == "" {
			preset = "off"
		}
		p, err := Preset(preset)
		if err != nil {
			return nil, err
		}
		plan = p
	}
	if plan != nil && intensity != 1 {
		plan = plan.Scale(intensity)
		if err := plan.Validate(); err != nil {
			return nil, fmt.Errorf("intensity %g: %w", intensity, err)
		}
	}
	return plan.Norm(), nil
}
