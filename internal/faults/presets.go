package faults

import (
	"fmt"
	"sort"
	"strings"
)

// presets are the named fault plans the CLIs expose through -faults.
// Each is a plausible off-nominal regime at intensity 1; campaigns
// sweep Plan.Scale to push them further. "off" is the nominal device.
var presets = map[string]func() *Plan{
	"off": func() *Plan { return nil },
	"burst": func() *Plan {
		return &Plan{Seed: 1, Injectors: []Injector{
			{Kind: KindBurst, Boost: 100, Len: 64, Period: 4096},
		}}
	},
	"markov": func() *Plan {
		return &Plan{Seed: 1, Injectors: []Injector{
			{Kind: KindMarkov, Boost: 50, PEnter: 0.001, PExit: 0.02},
		}}
	},
	"stuck": func() *Plan {
		return &Plan{Seed: 1, Injectors: []Injector{
			{Kind: KindStuck, Period: 8192, Offset: -1},
		}}
	},
	"temp": func() *Plan {
		return &Plan{Seed: 1, Injectors: []Injector{
			{Kind: KindTemp, PeakC: 85, RampOps: 2048, HoldOps: 4096, Period: 8192},
		}}
	},
	"drift": func() *Plan {
		return &Plan{Seed: 1, Injectors: []Injector{
			{Kind: KindDrift, PerOp: 5e-5, Cap: 50},
		}}
	},
	// mixed is the kitchen-sink regime used by chaos smoke runs: every
	// injector kind at moderate strength.
	"mixed": func() *Plan {
		return &Plan{Seed: 1, Injectors: []Injector{
			{Kind: KindBurst, Boost: 20, Len: 32, Period: 4096},
			{Kind: KindMarkov, Boost: 10, PEnter: 0.0005, PExit: 0.05},
			{Kind: KindStuck, Period: 16384, Offset: -1},
			{Kind: KindTemp, PeakC: 70, RampOps: 2048, HoldOps: 2048, Period: 16384},
			{Kind: KindDrift, PerOp: 2e-5, Cap: 20},
		}}
	},
}

// Preset returns the named plan, nil for "off". Unknown names list the
// valid choices in the error.
func Preset(name string) (*Plan, error) {
	f, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown preset %q (valid: %s)", name, strings.Join(PresetNames(), " "))
	}
	return f(), nil
}

// PresetNames lists the available presets in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for k := range presets {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
