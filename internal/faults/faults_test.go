package faults

import (
	"math"
	"strings"
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/sim"
)

func TestNormAndCanonical(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Norm() != nil || nilPlan.Canonical() != "" {
		t.Error("nil plan must normalize to nil with empty canonical form")
	}
	empty := &Plan{Seed: 7}
	if empty.Norm() != nil || empty.Canonical() != "" {
		t.Error("empty plan must normalize to nil: injection off has exactly one representation")
	}
	p := &Plan{Seed: 2, Injectors: []Injector{{Kind: KindDrift, PerOp: 1e-4}}}
	c1, c2 := p.Canonical(), p.Canonical()
	if c1 == "" || c1 != c2 {
		t.Errorf("canonical form unstable: %q vs %q", c1, c2)
	}
	if !strings.Contains(c1, `"drift"`) {
		t.Errorf("canonical form lost the injector kind: %s", c1)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte(`{"injectors":[{"kind":"nope"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Parse([]byte(`{"injectors":[{"kind":"burst","boost":2,"len":8,"period":4}]}`)); err == nil {
		t.Error("len > period accepted")
	}
	if _, err := Parse([]byte(`{"typo_field":1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	p, err := Parse([]byte(`{"seed":3,"injectors":[{"kind":"stuck","period":100}]}`))
	if err != nil || p == nil || p.Seed != 3 {
		t.Fatalf("valid plan rejected: %v %+v", err, p)
	}
	// Round trip through the canonical form.
	p2, err := Parse([]byte(p.Canonical()))
	if err != nil || p2.Canonical() != p.Canonical() {
		t.Errorf("canonical round trip failed: %v", err)
	}
}

func TestNewNilForEmpty(t *testing.T) {
	d, err := New(nil)
	if d != nil || err != nil {
		t.Fatalf("nil plan: device=%v err=%v, want nil/nil", d, err)
	}
	d, err = New(&Plan{})
	if d != nil || err != nil {
		t.Fatalf("empty plan: device=%v err=%v, want nil/nil", d, err)
	}
	if _, err := New(&Plan{Injectors: []Injector{{Kind: "bogus"}}}); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestNilDeviceIsIdentity(t *testing.T) {
	var d *Device
	m := d.Advance()
	if !m.Identity() {
		t.Errorf("nil device modulation = %+v, want identity", m)
	}
	if d.Ops() != 0 {
		t.Error("nil device counts ops")
	}
	em := errmodel.Model{}
	r1, r2 := sim.NewRNG(9), sim.NewRNG(9)
	for i := 0; i < 1000; i++ {
		if d.Sample(em, 4, r1) != em.Sample(4, r2) {
			t.Fatal("nil device Sample diverges from the bare model")
		}
	}
}

func TestDeterminism(t *testing.T) {
	plan := &Plan{Seed: 5, Injectors: []Injector{
		{Kind: KindMarkov, Boost: 10, PEnter: 0.05, PExit: 0.2},
		{Kind: KindBurst, Boost: 4, Len: 3, Period: 10},
		{Kind: KindStuck, Period: 17},
	}}
	d1, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := New(plan)
	for i := 0; i < 5000; i++ {
		if d1.Advance() != d2.Advance() {
			t.Fatalf("modulation diverged at op %d", i)
		}
	}
	if d1.Ops() != 5000 {
		t.Errorf("ops = %d, want 5000", d1.Ops())
	}
}

func TestBurstWindows(t *testing.T) {
	d, err := New(&Plan{Injectors: []Injector{{Kind: KindBurst, Boost: 7, Len: 2, Period: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 20; op++ {
		m := d.Advance()
		inBurst := op%5 < 2
		if inBurst && (m.RateFactor != 7 || !m.OverBias) {
			t.Errorf("op %d: in-burst mod = %+v, want factor 7 with over-bias", op, m)
		}
		if !inBurst && !m.Identity() {
			t.Errorf("op %d: calm mod = %+v, want identity", op, m)
		}
	}
}

func TestStuckPeriodAndDefaultOffset(t *testing.T) {
	d, err := New(&Plan{Injectors: []Injector{{Kind: KindStuck, Period: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	forced := 0
	for op := 0; op < 40; op++ {
		m := d.Advance()
		if m.ForceOffset != 0 {
			forced++
			if m.ForceOffset != -1 {
				t.Errorf("default stuck offset = %d, want -1", m.ForceOffset)
			}
		}
	}
	if forced != 10 {
		t.Errorf("forced %d of 40 ops at period 4, want 10", forced)
	}
	// A forced outcome overrides the sampled one.
	r := sim.NewRNG(1)
	d2, _ := New(&Plan{Injectors: []Injector{{Kind: KindStuck, Period: 1, Offset: 2}}})
	o := d2.Sample(errmodel.Model{}, 3, r)
	if o.StepOffset != 2 {
		t.Errorf("forced sample offset = %d, want 2", o.StepOffset)
	}
}

func TestTempExcursionShape(t *testing.T) {
	in := Injector{Kind: KindTemp, PeakC: 85, RampOps: 4, HoldOps: 2, Period: 4}
	d, err := New(&Plan{Injectors: []Injector{in}})
	if err != nil {
		t.Fatal(err)
	}
	var temps []float64
	for op := 0; op < 14; op++ { // one full cycle
		temps = append(temps, d.Advance().TempC)
	}
	// Ramp up strictly increasing to the peak.
	for i := 1; i < 4; i++ {
		if temps[i] <= temps[i-1] {
			t.Errorf("ramp not increasing at op %d: %v", i, temps[:4])
		}
	}
	if temps[3] != 85 || temps[4] != 85 || temps[5] != 85 {
		t.Errorf("hold window not at peak: %v", temps[3:6])
	}
	for i := 10; i < 14; i++ {
		if temps[i] != 0 {
			t.Errorf("idle op %d at %gC, want nominal 0", i, temps[i])
		}
	}
	// The modulated model's rates rise with the excursion.
	em := errmodel.Model{}
	hot := Mod{RateFactor: 1, TempC: 85}.Apply(em)
	if hot.K1Rate(4) <= em.K1Rate(4) {
		t.Error("85C excursion did not raise the k=1 rate")
	}
}

func TestDriftGrowsAndCaps(t *testing.T) {
	d, err := New(&Plan{Injectors: []Injector{{Kind: KindDrift, PerOp: 0.1, Cap: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	var last float64
	for op := 0; op < 100; op++ {
		f := d.Advance().RateFactor
		if f < prev {
			t.Errorf("drift factor shrank at op %d: %g < %g", op, f, prev)
		}
		prev, last = f, f
	}
	if last != 3 {
		t.Errorf("drift factor = %g after 100 ops, want capped at 3", last)
	}
}

func TestMarkovBoostsAndReturns(t *testing.T) {
	d, err := New(&Plan{Seed: 42, Injectors: []Injector{
		{Kind: KindMarkov, Boost: 9, PEnter: 0.1, PExit: 0.3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	burst, calm := 0, 0
	for op := 0; op < 10000; op++ {
		switch f := d.Advance().RateFactor; f {
		case 9:
			burst++
		case 1:
			calm++
		default:
			t.Fatalf("unexpected factor %g", f)
		}
	}
	if burst == 0 || calm == 0 {
		t.Errorf("chain never visited both states: burst=%d calm=%d", burst, calm)
	}
	// Stationary burst fraction should be near PEnter/(PEnter+PExit) = 0.25.
	frac := float64(burst) / 10000
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("burst fraction %g far from stationary 0.25", frac)
	}
}

func TestScale(t *testing.T) {
	p := &Plan{Injectors: []Injector{{Kind: KindBurst, Boost: 11, Len: 1, Period: 2}}}
	doubled := p.Scale(2)
	if got := doubled.Injectors[0].Intensity; got != 2 {
		t.Errorf("scaled intensity = %g, want 2", got)
	}
	d, err := New(doubled)
	if err != nil {
		t.Fatal(err)
	}
	if f := d.Advance().RateFactor; f != 21 { // 1 + (11-1)*2
		t.Errorf("boost at intensity 2 = %g, want 21", f)
	}
	// Scale(0) is inert but still a distinct (cache-keyed) plan.
	zero := p.Scale(0)
	if zero.Norm() == nil {
		t.Error("Scale(0) must stay a non-nil plan (distinct cache key)")
	}
	dz, err := New(zero)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 10; op++ {
		if m := dz.Advance(); !m.Identity() {
			t.Errorf("intensity-0 op %d modulation = %+v, want identity", op, m)
		}
	}
	if p.Injectors[0].Intensity != 0 {
		t.Error("Scale mutated the original plan")
	}
}

func TestPresetsAllValid(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name)
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if name == "off" {
			if p != nil {
				t.Error("preset off must be nil")
			}
			continue
		}
		if p.Norm() == nil {
			t.Errorf("preset %s is empty", name)
		}
		if _, err := New(p); err != nil {
			t.Errorf("preset %s does not build: %v", name, err)
		}
		if _, err := Parse([]byte(p.Canonical())); err != nil {
			t.Errorf("preset %s canonical form does not re-parse: %v", name, err)
		}
	}
	if _, err := Preset("no-such"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestModApplyKeepsRatesFinite(t *testing.T) {
	em := errmodel.Model{}
	for _, m := range []Mod{
		{RateFactor: 1e6},
		{RateFactor: 1, TempC: 125},
		{RateFactor: 50, TempC: 85},
	} {
		mod := m.Apply(em)
		for n := 1; n <= 64; n++ {
			if r := mod.ErrorRate(n); math.IsNaN(r) || r < 0 || r > 1 {
				t.Errorf("mod %+v: ErrorRate(%d) = %g out of range", m, n, r)
			}
		}
	}
}
