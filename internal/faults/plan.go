// Package faults is the deterministic, seeded fault-injection subsystem.
//
// The paper's evaluation replays one *calibrated* error regime — the
// Table 2 rates at the Table 1 operating point. Real devices leave that
// regime: drive variation produces correlated bursts of over-shifts,
// manufacturing defects pin domain walls at individual notches,
// temperature excursions widen the timing-margin tail, and slow
// mechanical or thermal drift degrades alignment over a device's life.
// This package models those off-nominal regimes as composable,
// deterministic injectors layered over the analytic error model
// (errmodel.Model) and the sampled shift path (shiftctrl.Tape), so a
// campaign can ask "how far past Table 2 does each protection scheme
// hold?" and get a reproducible degradation curve.
//
// Two rules keep injection compatible with the experiment engine's
// caching contract (docs/engine.md):
//
//   - A Plan is plain data: its canonical JSON participates in the
//     memsim fingerprint, so cached results are keyed by the fault
//     regime they were computed under.
//   - A nil (or empty) Plan is the nominal device and costs nothing: the
//     fingerprint bytes, the simulated tables, and the fidelity
//     scorecard are identical to a build without this package.
//
// See docs/faults.md for the schema, the injector catalog, and a
// campaign walkthrough.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Injector kinds. Each kind reads a different subset of the Injector
// parameters; Validate rejects mixes that make no sense.
const (
	// KindBurst is a deterministic periodic burst: every Period shift
	// operations, a window of Len operations runs with error rates
	// multiplied by Boost and outcomes biased toward over-shift
	// (correlated burst over-shifts; cf. the two-deletion bursts of
	// Vahid et al.).
	KindBurst = "burst"
	// KindMarkov is a two-state (calm/burst) Markov chain: each
	// operation enters the burst state with probability PEnter and
	// leaves it with probability PExit; while bursting, rates are
	// multiplied by Boost. Dwell times are geometric, so bursts are
	// correlated but aperiodic.
	KindMarkov = "markov"
	// KindStuck is a stuck-domain/notch defect: every Period shift
	// operations, one operation's outcome is forced to Offset steps
	// (default -1: the wall stays pinned in its notch, an under-shift).
	KindStuck = "stuck"
	// KindTemp is a cyclic temperature excursion: the operating
	// temperature ramps from the 25C reference to PeakC over RampOps
	// operations, holds for HoldOps, ramps back down, then idles at the
	// reference for Period operations before repeating. The error model
	// converts temperature into a rate multiplier via its
	// Gaussian-margin tempFactor.
	KindTemp = "temp"
	// KindDrift is slow misalignment drift: the rate multiplier grows
	// by PerOp per operation (compounded), capped at Cap — the aging
	// device whose margins erode over the run.
	KindDrift = "drift"
)

// Injector is one fault process. Kind selects the state machine; the
// remaining fields parameterize it (unused fields must stay zero so the
// canonical JSON is stable). Intensity scales the injector's strength:
// 1 (or 0, the zero value) is the configured strength, 0 after an
// explicit Scale(0) disables it, and values above 1 push the device
// further off-nominal. Campaigns sweep Intensity to trace degradation
// curves.
type Injector struct {
	Kind string `json:"kind"`
	// Intensity scales the injector strength; 0 means 1 (nominal
	// configured strength) so the zero value is usable.
	Intensity float64 `json:"intensity,omitempty"`
	// Disabled turns the injector off while keeping it in the plan (and
	// in the cache fingerprint) — the control point of a Scale sweep.
	Disabled bool `json:"disabled,omitempty"`

	// Boost multiplies error rates while a burst/markov injector is in
	// its burst state. Must be >= 1.
	Boost float64 `json:"boost,omitempty"`
	// Len is the burst window length in operations (KindBurst).
	Len int `json:"len,omitempty"`
	// PEnter and PExit are the Markov transition probabilities
	// (KindMarkov).
	PEnter float64 `json:"p_enter,omitempty"`
	PExit  float64 `json:"p_exit,omitempty"`

	// Period is the recurrence interval in shift operations (KindBurst,
	// KindStuck, and the idle phase of KindTemp).
	Period int `json:"period,omitempty"`
	// Offset is the forced step offset of a stuck fault (KindStuck);
	// 0 means -1 (wall pinned in its notch).
	Offset int `json:"offset,omitempty"`

	// PeakC is the excursion peak temperature in Celsius (KindTemp).
	PeakC float64 `json:"peak_c,omitempty"`
	// RampOps and HoldOps shape the excursion (KindTemp).
	RampOps int `json:"ramp_ops,omitempty"`
	HoldOps int `json:"hold_ops,omitempty"`

	// PerOp is the per-operation multiplicative rate growth of
	// KindDrift (e.g. 1e-5 compounds to ~1.65x over 50k operations).
	PerOp float64 `json:"per_op,omitempty"`
	// Cap bounds the drift multiplier; 0 means 100.
	Cap float64 `json:"cap,omitempty"`
}

// intensity returns the effective strength scale.
func (in Injector) intensity() float64 {
	if in.Disabled {
		return 0
	}
	if in.Intensity == 0 {
		return 1
	}
	return in.Intensity
}

// Validate checks one injector's parameters.
func (in Injector) Validate() error {
	if in.Intensity < 0 {
		return fmt.Errorf("faults: %s: negative intensity %g", in.Kind, in.Intensity)
	}
	switch in.Kind {
	case KindBurst:
		if in.Boost < 1 {
			return fmt.Errorf("faults: burst: boost %g < 1", in.Boost)
		}
		if in.Period <= 0 || in.Len <= 0 || in.Len > in.Period {
			return fmt.Errorf("faults: burst: need 0 < len <= period, got len=%d period=%d", in.Len, in.Period)
		}
	case KindMarkov:
		if in.Boost < 1 {
			return fmt.Errorf("faults: markov: boost %g < 1", in.Boost)
		}
		if in.PEnter <= 0 || in.PEnter > 1 || in.PExit <= 0 || in.PExit > 1 {
			return fmt.Errorf("faults: markov: transition probabilities must be in (0,1], got p_enter=%g p_exit=%g", in.PEnter, in.PExit)
		}
	case KindStuck:
		if in.Period <= 0 {
			return fmt.Errorf("faults: stuck: need period > 0, got %d", in.Period)
		}
	case KindTemp:
		if in.PeakC <= referenceTempC {
			return fmt.Errorf("faults: temp: peak %gC not above the %gC reference", in.PeakC, float64(referenceTempC))
		}
		if in.RampOps <= 0 {
			return fmt.Errorf("faults: temp: need ramp_ops > 0, got %d", in.RampOps)
		}
	case KindDrift:
		if in.PerOp <= 0 {
			return fmt.Errorf("faults: drift: need per_op > 0, got %g", in.PerOp)
		}
		if in.Cap < 0 {
			return fmt.Errorf("faults: drift: negative cap %g", in.Cap)
		}
	default:
		return fmt.Errorf("faults: unknown injector kind %q", in.Kind)
	}
	return nil
}

// Plan is a complete, serializable fault-injection configuration: a
// seed for the injector randomness and the injector list. The zero
// value (and nil) is the nominal, uninjected device.
type Plan struct {
	// Seed drives the injectors' private random stream; 0 means 1. The
	// stream is independent of the workload's trace randomness, so the
	// same plan perturbs different workloads comparably.
	Seed      uint64     `json:"seed,omitempty"`
	Injectors []Injector `json:"injectors"`
}

// Norm maps the empty plan to nil, the canonical "injection off"
// representation: fingerprints, caches, and the simulator all treat a
// normalized nil plan as the nominal device at zero cost.
func (p *Plan) Norm() *Plan {
	if p == nil || len(p.Injectors) == 0 {
		return nil
	}
	return p
}

// Validate checks every injector.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, in := range p.Injectors {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("injector %d: %w", i, err)
		}
	}
	return nil
}

// Scale returns a copy of the plan with every injector's Intensity
// multiplied by x (an unset Intensity counts as 1). Campaigns use it to
// sweep one plan across a degradation axis; Scale(0) marks every
// injector Disabled — the campaign's control point, inert but still a
// distinct cache key.
func (p *Plan) Scale(x float64) *Plan {
	if p == nil {
		return nil
	}
	out := &Plan{Seed: p.Seed, Injectors: make([]Injector, len(p.Injectors))}
	for i, in := range p.Injectors {
		if x == 0 {
			in.Disabled = true
		} else {
			in.Intensity = in.intensity() * x
		}
		out.Injectors[i] = in
	}
	return out
}

// Canonical renders the plan as its canonical JSON (compact, fields in
// declaration order), the form mixed into the memsim fingerprint. Nil
// and empty plans have no canonical form and return "".
func (p *Plan) Canonical() string {
	p = p.Norm()
	if p == nil {
		return ""
	}
	b, err := json.Marshal(p)
	if err != nil {
		// A Plan is plain data; a marshal failure is a programming error.
		panic(fmt.Sprintf("faults: Canonical: %v", err))
	}
	return string(b)
}

// Parse decodes a JSON plan and validates it. Unknown fields are
// rejected so a typo in a campaign config fails loudly instead of
// silently running the nominal device.
func Parse(b []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	return p.Norm(), nil
}
