package faults

import (
	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/telemetry/events"
)

// referenceTempC mirrors the error model's characterization temperature.
const referenceTempC = 25

// Mod is the modulation one shift operation experiences: a multiplier
// on every error rate, an optional temperature override, an optional
// forced outcome, and an over-shift bias flag. The identity Mod
// (RateFactor 1, everything else zero) is the nominal device.
type Mod struct {
	// RateFactor multiplies the error model's rates (>= 0; 1 nominal).
	RateFactor float64
	// TempC overrides the operating temperature; 0 keeps the model's.
	TempC float64
	// ForceOffset forces the sampled outcome to this step offset
	// (stuck-domain fault); 0 means no forcing.
	ForceOffset int
	// OverBias forces sampled out-of-step errors onto the over-shift
	// side (correlated burst over-shifts all push the same way).
	OverBias bool
}

// Identity reports whether the modulation leaves the device nominal.
func (m Mod) Identity() bool {
	return m.RateFactor == 1 && m.TempC == 0 && m.ForceOffset == 0 && !m.OverBias
}

// Apply returns the error model with the modulation folded in: the rate
// factor multiplies RateScale and a nonzero TempC replaces the model's
// temperature. Forced offsets and bias are sampling-plane effects and
// are applied by Sample, not here.
func (m Mod) Apply(em errmodel.Model) errmodel.Model {
	if m.RateFactor != 1 {
		rs := em.RateScale
		if rs == 0 {
			rs = 1
		}
		em.RateScale = rs * m.RateFactor
	}
	if m.TempC != 0 {
		em.TempC = m.TempC
	}
	return em
}

// Device is the live state of one plan's injectors over one simulated
// device: a deterministic state machine advanced once per shift
// operation. A nil *Device is the nominal device — every method is
// nil-safe and free — so callers thread it unconditionally.
//
// A Device is not safe for concurrent use; each simulated run owns its
// own (the experiment engine gives every job a private config, so this
// falls out naturally).
type Device struct {
	rng  *sim.RNG
	ops  uint64
	injs []injectorState

	// Event-plane wiring (SetEvents): a fault window "opens" when the
	// composed modulation leaves identity and "closes" when it returns.
	bus       *events.Bus
	scope     string
	winActive bool
}

// injectorState is one injector's runtime state.
type injectorState struct {
	cfg Injector
	// markov
	bursting bool
	// drift
	factor float64
}

// New builds the device-plane state for a plan. A nil or empty plan
// returns (nil, nil): injection off, zero cost. An invalid plan errors.
func New(p *Plan) (*Device, error) {
	p = p.Norm()
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	d := &Device{rng: sim.NewRNG(seed), injs: make([]injectorState, len(p.Injectors))}
	for i, in := range p.Injectors {
		d.injs[i] = injectorState{cfg: in, factor: 1}
	}
	return d, nil
}

// SetEvents routes fault-window transitions to bus as fault.open /
// fault.close events; scope names the run the device belongs to
// ("memsim:ferret") since one sweep simulates many devices. Nil-safe on
// both sides, and free per-op when no bus is attached.
func (d *Device) SetEvents(bus *events.Bus, scope string) {
	if d == nil {
		return
	}
	d.bus = bus
	d.scope = scope
}

// Ops returns how many operations have been advanced.
func (d *Device) Ops() uint64 {
	if d == nil {
		return 0
	}
	return d.ops
}

// Advance steps every injector by one shift operation and returns the
// combined modulation for that operation. Rate factors compose
// multiplicatively; the hottest temperature wins; the first active
// forced offset wins. Nil-safe: a nil device returns the identity.
func (d *Device) Advance() Mod {
	m := Mod{RateFactor: 1}
	if d == nil {
		return m
	}
	op := d.ops
	d.ops++
	for i := range d.injs {
		st := &d.injs[i]
		in := st.cfg
		I := in.intensity()
		if I == 0 {
			continue
		}
		switch in.Kind {
		case KindBurst:
			if op%uint64(in.Period) < uint64(in.Len) {
				m.RateFactor *= 1 + (in.Boost-1)*I
				m.OverBias = true
			}
		case KindMarkov:
			if st.bursting {
				if d.rng.Float64() < in.PExit {
					st.bursting = false
				}
			} else if d.rng.Float64() < in.PEnter {
				st.bursting = true
			}
			if st.bursting {
				m.RateFactor *= 1 + (in.Boost-1)*I
			}
		case KindStuck:
			// Intensity scales the firing frequency: the effective period
			// shrinks as I grows (an I of 2 pins twice as often).
			period := uint64(float64(in.Period) / I)
			if period == 0 {
				period = 1
			}
			if op%period == period-1 && m.ForceOffset == 0 {
				off := in.Offset
				if off == 0 {
					off = -1
				}
				m.ForceOffset = off
			}
		case KindTemp:
			if t := tempAt(in, op, I); t > m.TempC {
				m.TempC = t
			}
		case KindDrift:
			lim := in.Cap
			if lim == 0 {
				lim = 100
			}
			if st.factor < lim {
				st.factor *= 1 + in.PerOp*I
				if st.factor > lim {
					st.factor = lim
				}
			}
			m.RateFactor *= st.factor
		}
	}
	if d.bus != nil {
		if active := !m.Identity(); active != d.winActive {
			d.winActive = active
			if active {
				d.bus.Emit(events.Event{
					Type: events.FaultOpen, Name: d.scope, N: int64(op), V: m.RateFactor,
				})
			} else {
				d.bus.Emit(events.Event{
					Type: events.FaultClose, Name: d.scope, N: int64(op),
				})
			}
		}
	}
	return m
}

// tempAt evaluates the cyclic temperature excursion at operation op:
// ramp up over RampOps, hold HoldOps, ramp down over RampOps, idle for
// Period. Returns 0 (nominal) while idling at the reference.
func tempAt(in Injector, op uint64, intensity float64) float64 {
	ramp := uint64(in.RampOps)
	hold := uint64(in.HoldOps)
	idle := uint64(in.Period)
	cycle := 2*ramp + hold + idle
	pos := op % cycle
	var frac float64
	switch {
	case pos < ramp: // ramping up
		frac = float64(pos+1) / float64(ramp)
	case pos < ramp+hold: // holding at peak
		frac = 1
	case pos < 2*ramp+hold: // ramping down
		frac = float64(2*ramp+hold-pos) / float64(ramp)
	default: // idle at reference
		return 0
	}
	delta := (in.PeakC - referenceTempC) * frac * intensity
	if delta <= 0 {
		return 0
	}
	return referenceTempC + delta
}

// Sample draws one n-step shift outcome under the modulated device:
// the device advances one operation, the error model is modulated, and
// the outcome is sampled from the caller's random stream — then forced
// offsets and over-shift bias are applied. This is the device plane of
// the functional tape path (shiftctrl.Tape); the analytic cache-scale
// path uses Advance + Mod.Apply directly.
func (d *Device) Sample(em errmodel.Model, n int, r *sim.RNG) errmodel.Outcome {
	if d == nil {
		return em.Sample(n, r)
	}
	m := d.Advance()
	o := m.Apply(em).Sample(n, r)
	if m.ForceOffset != 0 {
		o = errmodel.Outcome{StepOffset: m.ForceOffset}
	} else if m.OverBias && o.StepOffset < 0 {
		o.StepOffset = -o.StepOffset
	}
	return o
}
