package becc

import (
	"math"
	"testing"
	"testing/quick"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/sim"
)

func TestParity(t *testing.T) {
	if Parity(0) != 0 || Parity(1) != 1 || Parity(3) != 0 {
		t.Error("parity values wrong")
	}
	if !CheckParity(0xff, 0) {
		t.Error("0xff has even parity")
	}
	if CheckParity(0x7f, 0) {
		t.Error("0x7f has odd parity")
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	r := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		d := r.Uint64()
		got, v := Decode(Encode(d))
		if v != OK || got != d {
			t.Fatalf("clean decode of %x: %x, %v", d, got, v)
		}
	}
}

func TestSingleBitCorrection(t *testing.T) {
	r := sim.NewRNG(2)
	for trial := 0; trial < 200; trial++ {
		d := r.Uint64()
		cw := Encode(d)
		bit := r.Intn(64)
		cw.Data ^= 1 << uint(bit)
		got, v := Decode(cw)
		if v != Corrected {
			t.Fatalf("single-bit flip at %d not corrected: %v", bit, v)
		}
		if got != d {
			t.Fatalf("miscorrected: got %x want %x", got, d)
		}
	}
}

func TestCheckBitCorrection(t *testing.T) {
	r := sim.NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		d := r.Uint64()
		cw := Encode(d)
		cw.Check ^= 1 << uint(r.Intn(8))
		got, v := Decode(cw)
		if v != Corrected || got != d {
			t.Fatalf("check-bit flip not handled: %v, %x vs %x", v, got, d)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	r := sim.NewRNG(4)
	for trial := 0; trial < 200; trial++ {
		d := r.Uint64()
		cw := Encode(d)
		b1 := r.Intn(64)
		b2 := r.Intn(64)
		for b2 == b1 {
			b2 = r.Intn(64)
		}
		cw.Data ^= 1<<uint(b1) | 1<<uint(b2)
		_, v := Decode(cw)
		if v != DetectedDouble {
			t.Fatalf("double flip (%d,%d) verdict %v, want DetectedDouble", b1, b2, v)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(d uint64) bool {
		got, v := Decode(Encode(d))
		return v == OK && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSingleFlipAlwaysCorrected(t *testing.T) {
	f := func(d uint64, bit uint8) bool {
		cw := Encode(d)
		cw.Data ^= 1 << uint(bit%64)
		got, v := Decode(cw)
		return v == Corrected && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- §3.2: why b-ECC fails on position errors ---

func TestWholeWordAliasIsSilent(t *testing.T) {
	// When a whole word lives on one stripe and it over-shifts one step,
	// b-ECC ends up checking the neighbouring word, which is a valid
	// codeword: the position error is silent data corruption.
	r := sim.NewRNG(5)
	for i := 0; i < 100; i++ {
		neighbor := r.Uint64()
		got, v := WholeWordAlias(neighbor)
		if v != OK {
			t.Fatalf("aliased word flagged: %v", v)
		}
		if got != neighbor {
			t.Fatalf("aliased word altered")
		}
	}
}

func TestBitInterleavedSilentWhenNeighborMatches(t *testing.T) {
	// One stripe out of step is invisible whenever its neighbour domain
	// stores the same value as the displaced bit.
	trueData := uint64(0b1010)
	neighbor := uint64(0b1010) // same values one step over
	got := BitInterleavedReadout(trueData, neighbor, 1<<1)
	if got != trueData {
		t.Fatalf("readout %x differs although neighbour matches", got)
	}
	// b-ECC sees a fully valid word.
	if _, v := Decode(Encode(got)); v != OK {
		t.Fatal("b-ECC flagged a silent position error")
	}
}

func TestBitInterleavedAccumulation(t *testing.T) {
	// As more stripes drift out of step, the observed word diverges; with
	// >= 2 differing bits SECDED can no longer correct, matching the
	// paper's accumulation argument.
	trueData := uint64(0xAAAA_AAAA_AAAA_AAAA)
	neighbor := ^trueData // worst case: every neighbour differs
	one := BitInterleavedReadout(trueData, neighbor, 1)
	if popcountDiff(one, trueData) != 1 {
		t.Fatal("single drifted stripe should flip one bit")
	}
	three := BitInterleavedReadout(trueData, neighbor, 0b111)
	if popcountDiff(three, trueData) != 3 {
		t.Fatal("three drifted stripes should flip three bits")
	}
	cw := Encode(trueData)
	cw.Data = three
	if _, v := Decode(cw); v == OK {
		t.Fatal("triple divergence undetected")
	}
	// And with the codeword's own data replaced by a 1-bit divergence,
	// b-ECC "corrects" it back — but the stripes remain misaligned: the
	// next access reads shifted data again. b-ECC has not fixed anything.
	cw2 := Encode(trueData)
	cw2.Data = one
	if _, v := Decode(cw2); v != Corrected {
		t.Fatal("one-bit divergence should look correctable to b-ECC")
	}
}

func TestRefreshRecoveryMatchesPaper(t *testing.T) {
	// Paper §3.2: refreshing a 64B line spread over 512 8-bit stripes
	// costs thousands of shifts, and the probability that a second
	// position error strikes during recovery is ~0.17.
	em := errmodel.Model{} // Table 2 (post-STS) 1-step rate, as the paper uses
	ops, pfail := RefreshRecovery(em, 8, 512)
	if ops != 4096 {
		t.Errorf("refresh ops = %d, want 4096", ops)
	}
	// 1 - (1-4.55e-5)^4096 = 0.170.
	if math.Abs(pfail-0.17) > 0.01 {
		t.Errorf("refresh failure probability = %v, want ~0.17 (paper)", pfail)
	}
}

func TestSimulateRefreshAgreesWithAnalytic(t *testing.T) {
	em := errmodel.Model{DisableSTS: true, RateScale: 3}
	ops, pfail := RefreshRecovery(em, 8, 64)
	r := sim.NewRNG(6)
	fails := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if SimulateRefresh(em, ops, r) {
			fails++
		}
	}
	got := float64(fails) / trials
	if math.Abs(got-pfail) > 0.03 {
		t.Errorf("simulated refresh failure %v vs analytic %v", got, pfail)
	}
}

func popcountDiff(a, b uint64) int {
	x := a ^ b
	n := 0
	for x != 0 {
		n++
		x &= x - 1
	}
	return n
}
