// Package becc implements conventional bit-error ECC ("b-ECC" in the paper,
// §3.2): parity and extended Hamming SECDED over 64-bit words, as used for
// last-level caches. It exists as the baseline the paper argues against —
// b-ECC detects unintended changes of bit values, but a position error
// changes which bits are under the ports without changing any stored value,
// so b-ECC misses aligned-looking data and cannot identify shift direction
// for recovery.
package becc

import "math/bits"

// Parity returns the even-parity bit of a 64-bit word.
func Parity(word uint64) uint64 {
	return uint64(bits.OnesCount64(word) & 1)
}

// CheckParity reports whether the stored parity matches the word.
func CheckParity(word, parity uint64) bool {
	return Parity(word) == parity&1
}

// SECDED(72,64): extended Hamming code with 8 check bits over a 64-bit data
// word — the classic DRAM/LLC configuration. Check bits 0..6 are Hamming
// parity groups over the 72-bit codeword positions; bit 7 is overall parity.

// Codeword is a 72-bit SECDED codeword: 64 data bits plus 8 check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// dataPosition maps data bit i (0..63) to its codeword position (1-based
// Hamming position, skipping the power-of-two check positions).
var dataPosition [64]uint8

func init() {
	pos := uint8(1)
	for i := 0; i < 64; i++ {
		for pos&(pos-1) == 0 { // skip powers of two (check positions)
			pos++
		}
		dataPosition[i] = pos
		pos++
	}
}

// Encode computes the SECDED codeword for a 64-bit data word.
func Encode(data uint64) Codeword {
	var check uint8
	for i := 0; i < 64; i++ {
		if data>>uint(i)&1 == 1 {
			p := dataPosition[i]
			for b := 0; b < 7; b++ {
				if p&(1<<uint(b)) != 0 {
					check ^= 1 << uint(b)
				}
			}
		}
	}
	// Overall parity over data and the 7 Hamming check bits.
	overall := uint8(bits.OnesCount64(data)+bits.OnesCount8(check&0x7f)) & 1
	check |= overall << 7
	return Codeword{Data: data, Check: check}
}

// Verdict classifies a decode.
type Verdict int

const (
	// OK means no error detected.
	OK Verdict = iota
	// Corrected means a single-bit error was found and fixed.
	Corrected
	// DetectedDouble means a double-bit error was detected (uncorrectable).
	DetectedDouble
	// Miscorrect is used by tests' oracles when a >2-bit error aliased into
	// an apparently-correctable syndrome; Decode itself cannot distinguish
	// it from Corrected.
	Miscorrect
)

// Decode checks a possibly corrupted codeword and returns the corrected
// data (if correctable) and a verdict.
func Decode(cw Codeword) (uint64, Verdict) {
	recomputed := Encode(cw.Data)
	syndrome := (recomputed.Check ^ cw.Check) & 0x7f
	// The encoder chooses the overall parity bit so the whole 72-bit
	// codeword has even parity; any odd number of flipped bits makes the
	// received codeword's total parity odd.
	parityErr := (bits.OnesCount64(cw.Data)+bits.OnesCount8(cw.Check))&1 == 1

	switch {
	case syndrome == 0 && !parityErr:
		return cw.Data, OK
	case syndrome == 0 && parityErr:
		// Error in the overall parity bit itself.
		return cw.Data, Corrected
	case parityErr:
		// Odd number of bit errors: assume single, correct it.
		pos := syndrome
		if pos&(pos-1) == 0 {
			// Error in a check bit; data is intact.
			return cw.Data, Corrected
		}
		for i := 0; i < 64; i++ {
			if dataPosition[i] == pos {
				return cw.Data ^ 1<<uint(i), Corrected
			}
		}
		// Syndrome points outside the codeword: uncorrectable.
		return cw.Data, DetectedDouble
	default:
		// Even number of errors with nonzero syndrome: double error.
		return cw.Data, DetectedDouble
	}
}
