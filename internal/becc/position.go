package becc

import (
	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/sim"
)

// This file models the paper's §3.2 argument: why b-ECC fails against
// position errors, for both data-mapping cases it discusses.

// BitInterleavedMiss reports whether SECDED b-ECC fails to flag a k-step
// position error under the bit-interleaved mapping (one bit of the word per
// stripe, 512 stripes per 64-byte line). When a single stripe over-shifts,
// the word read out differs from the stored word in exactly one bit
// position — but only if the misaligned stripe's neighbouring domain holds
// a different value. If it holds the same value, the error is silent until
// more stripes drift.
//
// The function simulates one word readout: trueData is the stored word,
// neighbor is the word formed by each stripe's adjacent (k-step-away)
// domains, and shifted is the bitmask of stripes currently out of step.
// It returns the word the cache would observe.
func BitInterleavedReadout(trueData, neighbor, shiftedMask uint64) uint64 {
	return (trueData &^ shiftedMask) | (neighbor & shiftedMask)
}

// WholeWordAlias models the other mapping (all bits of a word on one
// stripe): a +-1-step position error makes b-ECC check *another word's*
// data against that word's own check bits. If the neighbouring word is
// itself a valid codeword — which it always is, since every stored word was
// encoded — the check passes and the error is silent. The function returns
// the verdict b-ECC reaches: it decodes neighborWord against its own
// (valid) check bits, which is indistinguishable from a clean read.
func WholeWordAlias(neighborWord uint64) (uint64, Verdict) {
	return Decode(Encode(neighborWord))
}

// RefreshRecovery models the paper's recovery cost argument: once b-ECC
// detects a position error it cannot determine direction or distance, so
// the only remedy is to refresh all data in the affected stripes —
// thousands of extra shift operations during which further position errors
// strike. For an s-domain stripe refreshed bit by bit, the probability that
// a second position error corrupts the refresh is
//
//	P(fail) = 1 - (1 - p1)^(shifts)
//
// where p1 is the per-shift error rate. The paper quotes ~0.17 for an
// 8-bit stripe; that corresponds to the full 512-stripe line refresh
// (512 stripes x 8 bits read out with ~ one shift each).
func RefreshRecovery(em errmodel.Model, stripeDomains, stripes int) (shiftOps int, failProb float64) {
	shiftOps = stripeDomains * stripes
	p1 := em.ErrorRate(1)
	q := 1.0
	for i := 0; i < shiftOps; i++ {
		q *= 1 - p1
	}
	return shiftOps, 1 - q
}

// SimulateRefresh Monte-Carlo-samples a refresh and reports whether a
// second position error struck during it.
func SimulateRefresh(em errmodel.Model, shiftOps int, r *sim.RNG) bool {
	for i := 0; i < shiftOps; i++ {
		if !em.Sample(1, r).Correct() {
			return true
		}
	}
	return false
}
