package sparing

import (
	"math"
	"testing"

	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/sim"
)

func TestCleanArrayPassesBIST(t *testing.T) {
	dm := DefectModel{DefectProb: 0, DefectRateScale: 1}
	a := NewArray(pecc.SECDED(8), 64, 32, 4, dm, sim.NewRNG(1))
	rep := a.RunBIST(dm, 1, sim.NewRNG(2))
	if rep.Failed != 0 || rep.Remapped != 0 {
		t.Errorf("clean array: %+v", rep)
	}
	if !rep.Usable || rep.SparesLeft != 4 {
		t.Errorf("clean array not fully usable: %+v", rep)
	}
	// Identity mapping preserved.
	for i := 0; i < 32; i++ {
		if p, _ := a.Physical(i); p != i {
			t.Fatalf("logical %d remapped to %d without failures", i, p)
		}
	}
}

func TestDefectiveStripesRemapped(t *testing.T) {
	// Heavy defects: the screen must catch most and remap onto spares.
	dm := DefectModel{DefectProb: 0.15, DefectRateScale: 1e5}
	a := NewArray(pecc.SECDED(8), 64, 32, 12, dm, sim.NewRNG(3))
	rep := a.RunBIST(dm, 2, sim.NewRNG(4))
	if rep.Failed == 0 {
		t.Fatal("15% defect rate produced no BIST failures")
	}
	if rep.Remapped == 0 {
		t.Error("failures but no remapping")
	}
	// Every usable logical stripe must map to a passing physical stripe.
	if rep.Usable {
		for i := 0; i < 32; i++ {
			p, err := a.Physical(i)
			if err != nil {
				t.Fatal(err)
			}
			if a.failed[p] {
				t.Fatalf("logical %d maps to failed stripe %d", i, p)
			}
		}
	}
}

func TestPhysicalRange(t *testing.T) {
	dm := DefaultDefects()
	a := NewArray(pecc.SECDED(8), 64, 8, 2, dm, sim.NewRNG(5))
	if _, err := a.Physical(-1); err == nil {
		t.Error("negative logical index accepted")
	}
	if _, err := a.Physical(8); err == nil {
		t.Error("out-of-range logical index accepted")
	}
}

func TestArrayPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero primary did not panic")
		}
	}()
	NewArray(pecc.SECDED(8), 64, 0, 2, DefaultDefects(), sim.NewRNG(1))
}

func TestYieldMonotoneInSpares(t *testing.T) {
	dm := DefaultDefects()
	prev := 0.0
	for spares := 0; spares <= 8; spares++ {
		y := Yield(512, spares, dm, 0.99)
		if y < prev {
			t.Errorf("yield decreased at %d spares: %v", spares, y)
		}
		if y < 0 || y > 1 {
			t.Fatalf("yield %v out of range", y)
		}
		prev = y
	}
	// With 512 primaries at 0.5% defects (~2.6 expected failures), a few
	// spares lift yield substantially.
	y0 := Yield(512, 0, dm, 0.99)
	y8 := Yield(512, 8, dm, 0.99)
	if y0 > 0.2 {
		t.Errorf("zero-spare yield %v implausibly high", y0)
	}
	if y8 < 0.95 {
		t.Errorf("8-spare yield %v, want > 0.95", y8)
	}
}

func TestYieldDetectionMatters(t *testing.T) {
	dm := DefaultDefects()
	full := Yield(512, 4, dm, 1.0)
	half := Yield(512, 4, dm, 0.5)
	// Lower detection means fewer *detected* failures, so the screen
	// "passes" more arrays — but those arrays ship with escapes. The
	// yield formula reports screen-pass probability, which rises.
	if half < full {
		t.Errorf("screen-pass rate should rise with missed detections: %v vs %v", half, full)
	}
}

func TestBISTEscapesTracked(t *testing.T) {
	// A weak screen (1 round) against mild defects should let some
	// defective stripes escape across many trials; the oracle counts them.
	dm := DefectModel{DefectProb: 0.2, DefectRateScale: 50}
	escapes := 0
	for seed := uint64(0); seed < 10; seed++ {
		a := NewArray(pecc.SECDED(8), 64, 16, 4, dm, sim.NewRNG(seed))
		rep := a.RunBIST(dm, 1, sim.NewRNG(seed+100))
		escapes += rep.Escapes
	}
	if escapes == 0 {
		t.Skip("no escapes at this defect strength; screen caught everything")
	}
	// Escapes exist but are a minority of defects.
	t.Logf("escapes across trials: %d", escapes)
}

func TestYieldSumsNearOne(t *testing.T) {
	// With enough spares the pass probability approaches 1.
	dm := DefaultDefects()
	if y := Yield(64, 64, dm, 1.0); math.Abs(y-1) > 1e-6 {
		t.Errorf("yield with spares==primaries = %v", y)
	}
}
