// Package sparing implements manufacturing test and stripe sparing for
// racetrack arrays. The paper's §4.1 notes that stripes whose notches were
// not etched correctly — whose domain walls run away or stick — "can be
// disabled during chip testing"; this package is that mechanism: a
// built-in self test (BIST) that exercises every stripe's shift behaviour
// through the p-ECC initialization protocol, a remapping table that
// substitutes spare stripes for failed ones, and yield accounting.
package sparing

import (
	"fmt"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

// DefectModel describes manufacturing defects beyond parametric variation:
// a fraction of stripes have a mis-etched notch that makes shifts
// unreliable by a large factor.
type DefectModel struct {
	// DefectProb is the probability that a stripe is defective.
	DefectProb float64
	// DefectRateScale multiplies the defective stripe's position error
	// rates (mis-etched notches pin poorly).
	DefectRateScale float64
}

// DefaultDefects reflects a mature process: 0.5% defective stripes, four
// orders of magnitude worse shift behaviour when defective.
func DefaultDefects() DefectModel {
	return DefectModel{DefectProb: 0.005, DefectRateScale: 1e4}
}

// Array is a bank of primary and spare stripes with a remap table.
type Array struct {
	code    pecc.Code
	lay     stripe.Layout
	primary int
	spares  int
	// remap[i] is the physical stripe serving logical stripe i.
	remap []int
	// failed marks physical stripes disabled by BIST.
	failed []bool
	// defective is the oracle defect map (set at fabrication).
	defective []bool
}

// NewArray fabricates an array of primary+spares stripes under the defect
// model.
func NewArray(code pecc.Code, dataLen, primary, spares int, dm DefectModel, r *sim.RNG) *Array {
	if primary <= 0 || spares < 0 {
		panic("sparing: non-positive geometry")
	}
	total := primary + spares
	a := &Array{
		code:      code,
		primary:   primary,
		spares:    spares,
		remap:     make([]int, primary),
		failed:    make([]bool, total),
		defective: make([]bool, total),
	}
	a.lay = stripe.Layout{
		DataLen: dataLen, SegLen: code.SegLen(),
		GuardLeft: 2, GuardRight: 2,
		PECCLen: code.Length() + 6, PECCPorts: code.Window(),
	}
	for i := range a.remap {
		a.remap[i] = i
	}
	for i := range a.defective {
		a.defective[i] = r.Bool(dm.DefectProb)
	}
	return a
}

// TestReport summarizes a BIST pass.
type TestReport struct {
	Tested     int
	Failed     int
	Remapped   int
	SparesLeft int
	// Escapes counts defective stripes that slipped past the test
	// (oracle; the BIST cannot see this number).
	Escapes int
	// Usable reports whether every logical stripe maps to a passing
	// physical stripe.
	Usable bool
}

// RunBIST executes the §4.3 program-and-test initialization on every
// physical stripe as the manufacturing screen; stripes that cannot
// initialize are disabled and logical stripes remapped onto spares.
//
// rounds controls test thoroughness (initialization verify rounds); more
// rounds catch weaker defects at more test time.
func (a *Array) RunBIST(dm DefectModel, rounds int, r *sim.RNG) TestReport {
	cfg := pecc.DefaultInitConfig()
	cfg.Rounds = rounds
	cfg.MaxRestarts = 2 // manufacturing screen: little patience
	rep := TestReport{Tested: a.primary + a.spares}

	for phys := 0; phys < a.primary+a.spares; phys++ {
		em := errmodel.Model{}
		if a.defective[phys] {
			em.RateScale = dm.DefectRateScale
		}
		st := stripe.New(a.lay.TotalSlots())
		stats, err := pecc.Initialize(a.code, st, a.lay, em, cfg, r.Split())
		if err != nil || !stats.Initialized {
			a.failed[phys] = true
			rep.Failed++
		} else if a.defective[phys] {
			rep.Escapes++
		}
	}

	// Remap failed primaries onto passing spares.
	spare := a.primary
	for i := 0; i < a.primary; i++ {
		if !a.failed[a.remap[i]] {
			continue
		}
		for spare < a.primary+a.spares && a.failed[spare] {
			spare++
		}
		if spare == a.primary+a.spares {
			break // out of spares
		}
		a.remap[i] = spare
		spare++
		rep.Remapped++
	}
	rep.SparesLeft = 0
	for s := spare; s < a.primary+a.spares; s++ {
		if !a.failed[s] {
			rep.SparesLeft++
		}
	}
	rep.Usable = true
	for i := 0; i < a.primary; i++ {
		if a.failed[a.remap[i]] {
			rep.Usable = false
			break
		}
	}
	return rep
}

// Physical returns the physical stripe serving logical stripe i.
func (a *Array) Physical(i int) (int, error) {
	if i < 0 || i >= a.primary {
		return 0, fmt.Errorf("sparing: logical stripe %d out of range", i)
	}
	return a.remap[i], nil
}

// Yield estimates, analytically, the probability that an array with the
// given spare count is fully usable: at most `spares` of the primary+spare
// stripes fail. detection is the per-defect detection probability of the
// screen; failures follow the defect probability times detection.
func Yield(primary, spares int, dm DefectModel, detection float64) float64 {
	p := dm.DefectProb * detection
	n := primary + spares
	// P(failures <= spares) under Binomial(n, p); n*p is small, so the
	// direct sum is stable.
	prob := 0.0
	term := 1.0
	for k := 0; k <= n; k++ {
		if k > 0 {
			term *= float64(n-k+1) / float64(k) * p / (1 - p)
		}
		if k == 0 {
			term = pow1p(1-p, n)
		}
		if k <= spares {
			prob += term
		} else {
			break
		}
	}
	if prob > 1 {
		prob = 1
	}
	return prob
}

// pow1p computes x^n without math.Pow for clarity in the hot-free path.
func pow1p(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}
