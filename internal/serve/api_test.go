package serve

// HTTP-surface tests: the full client lifecycle over a real listener —
// concurrent submit/stream/cancel from several clients (run under -race
// in CI), admission-rejection status codes, and the REST plumbing
// (tables formats, scorecard, 404s, auth).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"racetrack/hifi/internal/telemetry/events"
)

func postJSON(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// streamUntilTerminal reads a job's SSE stream to its end and returns
// the event types seen, verifying the terminal-event-last contract.
func streamUntilTerminal(ctx context.Context, base, id string) ([]events.Type, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("events: %s", resp.Status)
	}
	var types []events.Type
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data:") {
			continue
		}
		var e events.Event
		if err := json.Unmarshal([]byte(strings.TrimSpace(strings.TrimPrefix(line, "data:"))), &e); err != nil {
			return types, err
		}
		types = append(types, e.Type)
		switch e.Type {
		case events.ServeJobFinished, events.ServeJobFailed, events.ServeJobCanceled:
			// The contract says nothing follows; drain to EOF and verify.
			for sc.Scan() {
				rest := sc.Text()
				if strings.HasPrefix(rest, "data:") {
					return types, fmt.Errorf("event after terminal: %s", rest)
				}
			}
			return types, sc.Err()
		}
	}
	if err := sc.Err(); err != nil {
		return types, err
	}
	return types, fmt.Errorf("stream ended without a terminal event (saw %d)", len(types))
}

// Four-plus concurrent clients submitting, streaming, and canceling
// against one daemon — the acceptance scenario CI runs under -race.
func TestHTTPConcurrentClients(t *testing.T) {
	srv := newTestServer(t, testOptions(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := []string{
		`{"run":["fig14"],"scaled":true,"accesses":300}`,
		`{"run":["fig14"],"scaled":true,"accesses":300}`, // dedup pair with client 0
		`{"run":["fig14"],"scaled":true,"accesses":300,"seed":2}`,
		`{"run":["table3"],"scaled":true}`,
		`{"run":["fig14"],"scaled":true,"accesses":50000,"seed":3}`, // client 4 cancels this
	}
	ids := make([]string, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = func() error {
				resp, body := postJSON(t, ts.URL+"/v1/jobs", specs[i], nil)
				if resp.StatusCode != http.StatusAccepted {
					return fmt.Errorf("submit %d: %s: %s", i, resp.Status, body)
				}
				var st JobStatus
				if err := json.Unmarshal(body, &st); err != nil {
					return err
				}
				ids[i] = st.ID
				if i == 4 {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
					dresp, err := http.DefaultClient.Do(req)
					if err != nil {
						return err
					}
					_ = dresp.Body.Close()
					// 202 normally; 409 if the job already finished.
					if dresp.StatusCode != http.StatusAccepted && dresp.StatusCode != http.StatusConflict {
						return fmt.Errorf("cancel: %s", dresp.Status)
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
				defer cancel()
				types, err := streamUntilTerminal(ctx, ts.URL, st.ID)
				if err != nil {
					return fmt.Errorf("stream %d: %w", i, err)
				}
				if len(types) == 0 {
					return fmt.Errorf("stream %d: empty", i)
				}
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Every job is terminal; the dedup pair rendered identical bytes.
	for i, id := range ids {
		resp, body := getBody(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: %s", id, resp.Status)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s (client %d) not terminal: %s", id, i, st.State)
		}
	}
	r0, text0 := getBody(t, ts.URL+"/v1/jobs/"+ids[0]+"/tables")
	r1, text1 := getBody(t, ts.URL+"/v1/jobs/"+ids[1]+"/tables")
	if r0.StatusCode != http.StatusOK || r1.StatusCode != http.StatusOK {
		t.Fatalf("tables: %s / %s", r0.Status, r1.Status)
	}
	if !bytes.Equal(text0, text1) {
		t.Fatalf("dedup pair rendered different tables")
	}

	// The rest of the read surface answers on a completed job.
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/"+ids[0]+"/tables?format=csv"); resp.StatusCode != http.StatusOK {
		t.Fatalf("tables csv: %s", resp.Status)
	}
	if resp, body := getBody(t, ts.URL+"/v1/jobs/"+ids[0]+"/tables?format=json"); resp.StatusCode != http.StatusOK ||
		!bytes.Contains(body, []byte("hifi_serve_tables_v1")) {
		t.Fatalf("tables json: %s: %s", resp.Status, body)
	}
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/"+ids[0]+"/scorecard"); resp.StatusCode != http.StatusOK {
		t.Fatalf("scorecard: %s", resp.Status)
	}
	if resp, body := getBody(t, ts.URL+"/v1/jobs"); resp.StatusCode != http.StatusOK ||
		!bytes.Contains(body, []byte(ids[0])) {
		t.Fatalf("job list: %s: %s", resp.Status, body)
	}
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	if resp, body := getBody(t, ts.URL+"/metrics"); resp.StatusCode != http.StatusOK ||
		!bytes.Contains(body, []byte("hifi_serve_jobs_submitted_total")) {
		t.Fatalf("metrics: %s: %s", resp.Status, body)
	}
}

func TestHTTPAdmissionStatusCodes(t *testing.T) {
	opts := testOptions(t)
	opts.Queue = 1
	opts.RequireToken = true
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	release := closeOnce(t, hold)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	auth := map[string]string{"Authorization": "Bearer tok-a"}

	// 401: no token on a require-token server.
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300}`, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous: %s, want 401", resp.Status)
	}
	// 400: invalid spec.
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig99"]}`, auth); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %s, want 400", resp.Status)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", `{"nope":1}`, auth); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %s, want 400", resp.Status)
	}
	// 202 fills the queue (held runners never dequeue).
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300}`, auth)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %s: %s", resp.Status, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	// 409: tables before the job is done.
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/tables"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("early tables: %s, want 409", resp.Status)
	}
	// 429 + Retry-After: queue full.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300,"seed":2}`, auth)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue full: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("queue-full 429 without Retry-After")
	}
	// 404: unknown job.
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/j9999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s, want 404", resp.Status)
	}

	// 503 while draining.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
	}()
	for {
		if _, _, err := srv.Submit(quickSpec(), "tok-a"); errors.Is(err, ErrDraining) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300,"seed":3}`, auth)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: %s, want 503", resp.Status)
	}
	release()
	<-drained
}

func TestHTTPQuotaRetryAfterHeader(t *testing.T) {
	opts := testOptions(t)
	opts.Rate = 0.25
	opts.Burst = 1
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	closeOnce(t, hold)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	auth := map[string]string{"X-API-Key": "key-1"}
	if resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300}`, auth); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %s: %s", resp.Status, body)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300,"seed":2}`, auth)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("quota 429 without Retry-After")
	}
}
