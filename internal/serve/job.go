package serve

// Job state: one accepted sweep, from queued through its terminal
// state, with its own event bus (the per-job SSE stream) and its own
// engine (sharing the server-wide cache and metrics registry). State
// transitions are guarded by the job's mutex; the server is the only
// writer, handlers and the poll route are concurrent readers.

import (
	"context"
	"strings"
	"sync"
	"time"

	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/tracectx"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one accepted sweep.
type Job struct {
	// ID is the server-assigned handle ("j0001"); Fingerprint is the
	// normalized spec's content address (the dedup key).
	ID          string
	Fingerprint string
	// TraceID is the 32-hex W3C trace ID of the submission that created
	// the job: the correlation key across the access log, the event
	// streams (the job bus stamps it on every event), the span export,
	// and the drain journal. Unlike Fingerprint it is per-request, not
	// per-content — a deduped submission keeps the original job's trace.
	TraceID string
	// Spec is the normalized spec the job runs.
	Spec Spec

	// Bus is the job's own event stream: serve.job.* lifecycle,
	// run.phase per experiment, and the engine/memsim/fault events of
	// the sweep. GET /v1/jobs/{id}/events serves it over SSE; the
	// serve.job.* terminal event is always the stream's last event.
	Bus *events.Bus

	ctx    context.Context
	cancel context.CancelCauseFunc
	// done closes when the job is terminal AND its terminal event is on
	// the job bus (finalize calls finish after the Emit), so waiters
	// released by Done() can rely on the event being deliverable.
	done chan struct{}

	mu       sync.Mutex
	state    State
	detail   string // error text (failed) or cancel reason (canceled)
	created  time.Time
	started  time.Time
	finished time.Time
	eng      *engine.Engine // live while running; snapshot survives in engStatus
	engFinal *engine.Status
	tables   map[string]experiments.Table
	text     string // rendered tables, byte-identical to the CLI's stdout
	subs     int    // submissions coalesced onto this job (1 = no dedup)
	// restored marks a job rebuilt from the crash-safe index rather than
	// run by this process. A restored done job holds no tables until a
	// results read re-materializes them through the shared cache.
	restored bool

	// rematMu single-flights re-materialization of a restored job's
	// tables; it is never held together with j.mu.
	rematMu sync.Mutex
}

func newJob(id, fingerprint string, spec Spec, parent context.Context, ringCap int, tc tracectx.Context) *Job {
	// The job context carries the trace, so spans the engine opens under
	// it (telemetry.StartSpan) self-annotate with the trace ID; the bus
	// default stamps it onto every event the job's engine emits.
	ctx, cancel := context.WithCancelCause(tracectx.Into(parent, tc))
	bus := events.New(ringCap)
	bus.SetTraceID(tc.TraceID.String())
	return &Job{
		ID:          id,
		Fingerprint: fingerprint,
		TraceID:     tc.TraceID.String(),
		Spec:        spec,
		Bus:         bus,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		state:       StateQueued,
		created:     time.Now(),
		tables:      map[string]experiments.Table{},
		subs:        1,
	}
}

// newRestoredJob rebuilds a terminal job from its crash-safe index
// record. The job is immediately queryable: state, timings, and error
// text are exactly what the index recorded; the done channel starts
// closed (the terminal event predates this process, so there is nothing
// to wait for). Tables are absent until a results read re-materializes
// them through the shared cache.
func newRestoredJob(r restoredJob, ringCap int, tc tracectx.Context) *Job {
	ctx, cancel := context.WithCancelCause(tracectx.Into(context.Background(), tc))
	bus := events.New(ringCap)
	bus.SetTraceID(tc.TraceID.String())
	done := make(chan struct{})
	close(done)
	j := &Job{
		ID:          r.id,
		Fingerprint: r.fingerprint,
		TraceID:     tc.TraceID.String(),
		Spec:        r.spec,
		Bus:         bus,
		ctx:         ctx,
		cancel:      cancel,
		done:        done,
		state:       State(r.state),
		detail:      r.detail,
		created:     time.UnixMilli(r.createdTMS),
		tables:      map[string]experiments.Table{},
		subs:        1,
		restored:    true,
	}
	if r.startedTMS != 0 {
		j.started = time.UnixMilli(r.startedTMS)
	}
	if r.finishedTMS != 0 {
		j.finished = time.UnixMilli(r.finishedTMS)
	}
	return j
}

// State returns the current lifecycle position.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job has reached a terminal
// state and its terminal event has been emitted on the job bus.
func (j *Job) Done() <-chan struct{} { return j.done }

// finish closes done. Only the server's finalize calls it, strictly
// after emitting the terminal event, so the SSE drain grace that starts
// at Done() always follows terminal-event delivery.
func (j *Job) finish() { close(j.done) }

// Tables returns the per-experiment tables of a completed job (nil
// until done) keyed by experiment name, plus the run order.
func (j *Job) Tables() (map[string]experiments.Table, []string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, nil
	}
	out := make(map[string]experiments.Table, len(j.tables))
	for k, v := range j.tables {
		out[k] = v
	}
	return out, append([]string(nil), j.Spec.Run...)
}

// Text returns the rendered tables of a completed job — the exact bytes
// `hifi-experiments -run <keys> <flags>` prints to stdout — or "" until
// the job is done.
func (j *Job) Text() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.text
}

// markStarted moves queued → running. Returns false when the job was
// canceled while queued (the runner skips it).
func (j *Job) markStarted(eng *engine.Engine) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.eng = eng
	return true
}

// markDone finalizes a successful run. Returns false if the job was
// already terminal — the winner of the terminal transition owns the
// finalize, so exactly one terminal event is ever emitted.
func (j *Job) markDone(st engine.Status, tables map[string]experiments.Table) bool {
	text := renderTables(j.Spec.Run, tables)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = StateDone
	j.finished = time.Now()
	j.tables = tables
	j.text = text
	j.engFinal = &st
	j.eng = nil
	return true
}

// renderTables produces the CLI's default rendering: one blank line
// between tables, none at the end (hifi-experiments prints tab.String()
// with fmt.Println() separators). markDone and re-materialization share
// it so restored results stay byte-identical to a direct run.
func renderTables(run []string, tables map[string]experiments.Table) string {
	var b strings.Builder
	for i, k := range run {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(tables[k].String())
	}
	return b.String()
}

// needsMaterialize reports whether a results read must first re-run the
// spec through the shared cache: the job is a restored done job whose
// tables have not been rebuilt in this process yet.
func (j *Job) needsMaterialize() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restored && j.state == StateDone && len(j.tables) == 0
}

// setMaterialized installs re-computed tables on a restored done job
// without disturbing its recorded timings or terminal state. The engine
// status (executed == 0 when the shared cache held every result) becomes
// the job's final ledger.
func (j *Job) setMaterialized(st engine.Status, tables map[string]experiments.Table) {
	text := renderTables(j.Spec.Run, tables)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || len(j.tables) > 0 {
		return
	}
	j.tables = tables
	j.text = text
	j.engFinal = &st
}

// indexSnapshot renders the job's current state as one self-contained
// index record — what compaction writes so a replay needs only one line
// per job.
func (j *Job) indexSnapshot() indexRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	spec := j.Spec
	r := indexRecord{
		Op:          opSnapshot,
		ID:          j.ID,
		Fingerprint: j.Fingerprint,
		TraceID:     j.TraceID,
		Spec:        &spec,
		State:       j.state,
		Detail:      j.detail,
		CreatedTMS:  j.created.UnixMilli(),
	}
	if !j.started.IsZero() {
		r.StartedTMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		r.FinishedTMS = j.finished.UnixMilli()
	}
	return r
}

// markFailed finalizes an errored run. Returns false if the job was
// already terminal.
func (j *Job) markFailed(st engine.Status, errText string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = StateFailed
	j.detail = errText
	j.finished = time.Now()
	j.engFinal = &st
	j.eng = nil
	return true
}

// markCanceled finalizes a canceled running job (st is the engine
// snapshot at unwind). Returns false if the job was already terminal.
func (j *Job) markCanceled(st *engine.Status, reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = StateCanceled
	j.detail = reason
	j.finished = time.Now()
	j.engFinal = st
	j.eng = nil
	return true
}

// markCanceledIfQueued finalizes a job that never started. It requires
// state == queued under j.mu — the same mutex markStarted takes — so a
// queued-cancel can never race the queued→running transition: either
// this wins and the runner's markStarted returns false, or the runner
// wins and the caller must cancel via the job's context instead.
func (j *Job) markCanceledIfQueued(reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCanceled
	j.detail = reason
	j.finished = time.Now()
	j.eng = nil
	return true
}

// coalesce counts one more submission deduped onto this job. Returns
// false when the job is already terminal (the caller must start a fresh
// job so the new client gets a fresh cache-served run). On success it
// emits the job-bus deduped event while still holding j.mu: a terminal
// transition needs the same mutex and its event is emitted after, so
// the deduped event always precedes the stream's terminal event.
func (j *Job) coalesce() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.subs++
	j.Bus.Emit(events.Event{Type: events.ServeJobDeduped, Name: j.ID, Detail: j.Fingerprint})
	return true
}

// JobStatus is the wire form of a job — the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID          string `json:"id"`
	State       State  `json:"state"`
	Fingerprint string `json:"fingerprint"`
	// TraceID correlates the job with the access log, event streams,
	// and span export: the 32-hex trace ID of the creating submission.
	TraceID string `json:"trace_id,omitempty"`
	// Deduped is set on the submit response when this submission
	// coalesced onto an already-live job.
	Deduped bool `json:"deduped,omitempty"`
	// Subscribers counts submissions coalesced onto this job.
	Subscribers int  `json:"subscribers"`
	Spec        Spec `json:"spec"`
	// Restored marks a job rebuilt from the crash-safe index after a
	// restart rather than run by this process.
	Restored bool `json:"restored,omitempty"`

	CreatedTMS  int64 `json:"created_t_ms"`
	StartedTMS  int64 `json:"started_t_ms,omitempty"`
	FinishedTMS int64 `json:"finished_t_ms,omitempty"`
	WallMS      int64 `json:"wall_ms,omitempty"`

	// Error is the failure text (state failed) or cancel reason
	// (state canceled).
	Error string `json:"error,omitempty"`

	// Engine is the sweep's job ledger: live while running, final
	// afterwards. A resubmitted spec served entirely from the shared
	// cache shows executed == 0 here — the zero-new-computation proof.
	Engine *engine.Status `json:"engine,omitempty"`

	// EventsSeq is the job bus's high-water mark; with the replay ring
	// size it bounds what an SSE reconnect can still recover.
	EventsSeq uint64 `json:"events_seq"`
}

// Status snapshots the job's wire form.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	s := JobStatus{
		ID:          j.ID,
		State:       j.state,
		Fingerprint: j.Fingerprint,
		TraceID:     j.TraceID,
		Subscribers: j.subs,
		Spec:        j.Spec,
		Restored:    j.restored,
		CreatedTMS:  j.created.UnixMilli(),
		Error:       j.detail,
	}
	if !j.started.IsZero() {
		s.StartedTMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		s.FinishedTMS = j.finished.UnixMilli()
		if !j.started.IsZero() {
			s.WallMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	eng, final := j.eng, j.engFinal
	j.mu.Unlock()

	switch {
	case final != nil:
		s.Engine = final
	case eng != nil:
		st := eng.Status()
		s.Engine = &st
	}
	s.EventsSeq = j.Bus.Seq()
	return s
}
