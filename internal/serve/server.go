package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/telemetry/slo"
	"racetrack/hifi/internal/telemetry/tracectx"
)

// Options configures a Server.
type Options struct {
	// Workers is the engine worker-pool width each job runs with
	// (<= 0 means runtime.NumCPU via the engine default).
	Workers int
	// CacheDir roots the shared content-addressed result cache — the
	// cross-client dedup substrate. Empty disables caching (every job
	// recomputes), which defeats the daemon's main value; the CLI
	// defaults it on.
	CacheDir string
	// Version overrides the cache code-version ("" = engine.CodeVersion).
	Version string
	// CacheMaxBytes arms the shared cache's size budget: once the
	// objects tree exceeds it, least-recently-accessed results are
	// evicted (engine/evict.go). 0 = unlimited — fine for a sweep,
	// unwise for a daemon that lives for weeks.
	CacheMaxBytes int64
	// Runners bounds concurrently running jobs (<= 0 means 2). Each job
	// gets its own engine, so total sim parallelism is Runners×Workers.
	Runners int
	// Queue bounds jobs accepted but not yet running (<= 0 means 16).
	// A full queue rejects submissions with 429 + Retry-After.
	Queue int
	// Rate and Burst shape the per-client token bucket (submissions per
	// second and bucket size). Rate <= 0 disables quotas.
	Rate  float64
	Burst int
	// RequireToken rejects submissions that carry no client token
	// (Authorization: Bearer or X-API-Key) instead of falling back to
	// the remote address as the quota key.
	RequireToken bool
	// MaxAccesses caps Spec.Accesses at admission (0 = unbounded), so a
	// public daemon can refuse arbitrarily large sweeps outright.
	MaxAccesses int
	// Retries and JobTimeout pass through to each job's engine.
	Retries    int
	JobTimeout time.Duration
	// RingCap sizes each job bus's SSE replay ring (0 = events default).
	// Tests shrink it to force replay gaps.
	RingCap int
	// JournalPath is where a drain journals its not-yet-started specs
	// for -resume ("" = <CacheDir>/serve.journal.json; no cache dir and
	// no explicit path means drained queue entries are lost).
	JournalPath string
	// IndexPath overrides where the crash-safe job index WAL lives
	// ("" = <CacheDir>/serve.index.ndjson; no cache dir and no explicit
	// path disables the index — job state is in-memory only, as before
	// the index existed). See index.go and docs/serve.md.
	IndexPath string
	// Metrics receives the hifi_serve_* admission/lifecycle series and
	// every job's engine/sim series. Nil disables instrumentation.
	Metrics *telemetry.Registry
	// Events is the daemon-wide bus narrating all tenants' lifecycle
	// (the /events route). Nil means the server creates its own.
	Events *events.Bus
	// AccessLog receives one hifi_access_v1 NDJSON line per HTTP
	// request (after a schema header line). Nil disables the access
	// log; cmd/hifi-serve defaults it to stderr.
	AccessLog io.Writer
	// TraceSeed seeds the trace/span ID generator. 0 (the production
	// default) draws unpredictable IDs from crypto/rand; a fixed seed
	// makes the daemon's minted trace IDs reproducible for tests and
	// replayable incident drills.
	TraceSeed uint64
	// SLOObjectives overrides the served SLO set (nil = the defaults in
	// slo.go: availability, submit_latency, job_completion).
	SLOObjectives []slo.Objective

	// hold gates each runner before it dequeues a job (one receive per
	// job; closing it releases the runners for good). In-package tests
	// use it to freeze jobs in a known state; it is unexported so
	// production callers cannot.
	hold chan struct{}
	// indexFS interposes the job index's filesystem (faultfs chaos
	// tests); nil means the real filesystem. Unexported: production
	// always writes through engine.OS().
	indexFS engine.FS
	// indexCompactEvery overrides the compaction cadence (appended
	// records between compactions); <= 0 means the default. Tests
	// shrink it to force compactions.
	indexCompactEvery int
}

// Submission errors the API layer maps to status codes.
var (
	// ErrDraining rejects submissions after Drain started (503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrQueueFull rejects submissions when the bounded queue is at
	// capacity (429 + Retry-After).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrTokenRequired rejects anonymous submissions under
	// RequireToken (401).
	ErrTokenRequired = errors.New("serve: client token required (Authorization: Bearer or X-API-Key)")
)

// QuotaError rejects a submission that exhausted its client's token
// bucket (429); RetryAfter is when the next token lands.
type QuotaError struct{ RetryAfter time.Duration }

func (e *QuotaError) Error() string {
	return fmt.Sprintf("serve: client quota exhausted; retry in %s", e.RetryAfter)
}

// Server is the sweep daemon: a bounded job queue, a fixed pool of job
// runners, the shared result cache, and the job table the API reads.
type Server struct {
	opts   Options
	cache  *engine.Cache
	bus    *events.Bus // daemon-wide lifecycle stream
	health *telemetry.HealthState
	quota  *quotas
	tel    serveTelemetry

	// Request-correlation and SLO plane (middleware.go, slo.go).
	tgen      *tracectx.Gen
	httpTel   *httpTelemetry
	accessLog *accessLog
	slo       *slo.Set

	// Durability plane (index.go): the crash-safe job-index WAL, plus
	// the jobs replayed from it, held until Resume applies them.
	index     *jobIndex
	recovered []restoredJob

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job // by ID
	order    []string        // IDs in acceptance order
	active   map[string]*Job // fingerprint → queued/running job
	nextID   int
	running  int

	// hold, when non-nil, gates each runner before it executes a job:
	// the runner receives one token per job. Tests use it to freeze
	// jobs in a known state; production never sets it.
	hold chan struct{}
}

type serveTelemetry struct {
	submitted  *telemetry.Counter
	deduped    *telemetry.Counter
	rejQueue   *telemetry.Counter
	rejQuota   *telemetry.Counter
	completed  *telemetry.Counter
	failed     *telemetry.Counter
	canceled   *telemetry.Counter
	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge
}

// New builds and starts a server: the runner pool is live on return.
// An unusable cache directory degrades to cache-less operation with a
// warning, mirroring the CLI engine flags.
func New(opts Options) *Server {
	if opts.Runners <= 0 {
		opts.Runners = 2
	}
	if opts.Queue <= 0 {
		opts.Queue = 16
	}
	s := &Server{
		opts:   opts,
		bus:    opts.Events,
		health: telemetry.NewHealthState(),
		quota:  newQuotas(opts.Rate, opts.Burst),
		queue:  make(chan *Job, opts.Queue),
		jobs:   map[string]*Job{},
		active: map[string]*Job{},
		hold:   opts.hold,
	}
	if s.bus == nil {
		s.bus = events.New(0)
		s.bus.Instrument(opts.Metrics)
	}
	if opts.CacheDir != "" {
		cache, err := engine.OpenCache(opts.CacheDir, opts.Version)
		if err != nil {
			log.Errorf("serve: %v; continuing without cache (no cross-client result reuse)", err)
		} else {
			s.cache = cache
			cache.Instrument(opts.Metrics)
			if opts.CacheMaxBytes > 0 {
				cache.SetMaxBytes(opts.CacheMaxBytes)
			}
		}
	}
	reg := opts.Metrics
	s.tel = serveTelemetry{
		submitted:  reg.Counter(telemetry.MetricServeSubmitted, "sweep specs accepted (including deduped)"),
		deduped:    reg.Counter(telemetry.MetricServeDeduped, "submissions coalesced onto a live identical job"),
		rejQueue:   reg.Counter(telemetry.MetricServeRejectedQueue, "submissions rejected because the job queue was full"),
		rejQuota:   reg.Counter(telemetry.MetricServeRejectedQuota, "submissions rejected by a client quota"),
		completed:  reg.Counter(telemetry.MetricServeCompleted, "jobs that completed successfully"),
		failed:     reg.Counter(telemetry.MetricServeFailed, "jobs that failed"),
		canceled:   reg.Counter(telemetry.MetricServeCanceled, "jobs canceled by a client or a drain"),
		queueDepth: reg.Gauge(telemetry.MetricServeQueueDepth, "jobs accepted but not yet running"),
		running:    reg.Gauge(telemetry.MetricServeRunning, "jobs currently running"),
	}
	s.tgen = tracectx.NewGen(opts.TraceSeed)
	s.httpTel = newHTTPTelemetry(opts.Metrics)
	s.accessLog = newAccessLog(opts.AccessLog)
	objectives := opts.SLOObjectives
	if objectives == nil {
		objectives = defaultObjectives()
	}
	s.slo = slo.New(opts.Metrics, objectives, nil)
	if path := s.indexPath(); path != "" {
		ix, recovered := openIndex(path, opts.indexFS, opts.indexCompactEvery,
			newIndexTelemetry(opts.Metrics),
			func(ok bool) { s.slo.Observe(sloIndexDurability, ok) })
		s.index = ix
		s.recovered = recovered
		// Mint above every recovered ID so new and recovered jobs never
		// collide in the table or the WAL — even when the operator skips
		// -resume and the recovered jobs stay on disk only.
		s.nextID = maxRecoveredID(recovered)
	}
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.health.SetDegraded(func() []string {
		var d []string
		if s.opts.CacheDir != "" && s.cache == nil {
			d = append(d, "result-cache")
		}
		if s.index.Degraded() {
			d = append(d, "job-index")
		}
		return d
	})
	s.health.SetEventsSeq(s.bus.Seq)
	s.health.SetInFlight(func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.running
	})
	for i := 0; i < opts.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// Cache exposes the shared result cache (nil when disabled).
func (s *Server) Cache() *engine.Cache { return s.cache }

// Bus exposes the daemon-wide event bus.
func (s *Server) Bus() *events.Bus { return s.bus }

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in acceptance order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Submit validates and admits one spec for client (the quota key) under
// a freshly minted trace. The HTTP path goes through SubmitTraced with
// the request's trace context instead.
func (s *Server) Submit(spec Spec, client string) (*Job, bool, error) {
	return s.SubmitTraced(spec, client, tracectx.Context{})
}

// SubmitTraced validates and admits one spec for client (the quota
// key), correlating the job and every event it emits with tc (an
// invalid tc mints a fresh trace). Returns the job — possibly an
// existing live one the submission coalesced onto (deduped true) — or a
// typed admission error.
func (s *Server) SubmitTraced(spec Spec, client string, tc tracectx.Context) (*Job, bool, error) {
	if !tc.Valid() {
		tc = s.tgen.NewContext()
	}
	trace := tc.TraceID.String()
	if s.opts.RequireToken && client == "" {
		return nil, false, ErrTokenRequired
	}
	// Validate before spending quota: a malformed or oversized spec is a
	// client error that did no work, and must not drain the bucket.
	norm, err := spec.Normalize()
	if err != nil {
		return nil, false, err
	}
	if s.opts.MaxAccesses > 0 && norm.Accesses > s.opts.MaxAccesses {
		return nil, false, fmt.Errorf("serve: accesses %d exceeds this server's limit of %d",
			norm.Accesses, s.opts.MaxAccesses)
	}
	if ok, retry := s.quota.allow(client, time.Now()); !ok {
		s.tel.rejQuota.Add(1)
		s.bus.Emit(events.Event{Type: events.ServeJobRejected, Name: client, Detail: "quota", TraceID: trace})
		return nil, false, &QuotaError{RetryAfter: retry}
	}
	j, deduped, err := s.admit(norm, tc)
	if err != nil {
		// Queue-full / draining rejections did no work either: return
		// the token so the rejection itself cannot throttle the client.
		s.quota.refund(client)
	}
	return j, deduped, err
}

// admit enqueues a normalized spec: the dedup check and the bounded
// queue, under one lock so a drain can never race a send onto a closed
// queue. tc must be valid (SubmitTraced mints one); the job and its
// whole event stream inherit its trace ID.
func (s *Server) admit(norm Spec, tc tracectx.Context) (*Job, bool, error) {
	trace := tc.TraceID.String()
	fp := norm.Fingerprint()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.bus.Emit(events.Event{Type: events.ServeJobRejected, Detail: "draining", TraceID: trace})
		return nil, false, ErrDraining
	}
	// coalesce emits the job-bus deduped event itself, under j.mu, so it
	// can never land after the stream's terminal event; only the
	// daemon-bus copy is emitted here. The deduped daemon event carries
	// the REJECTED submission's trace ID — the job keeps the trace of
	// the submission that created it — so the coalesced client's trace
	// still has a daemon-log footprint pointing at the live job.
	if live := s.active[fp]; live != nil && live.coalesce() {
		s.mu.Unlock()
		s.tel.submitted.Add(1)
		s.tel.deduped.Add(1)
		s.bus.Emit(events.Event{Type: events.ServeJobDeduped, Name: live.ID, Detail: fp, TraceID: trace})
		return live, true, nil
	}
	s.nextID++
	id := fmt.Sprintf("j%04d", s.nextID)
	j := newJob(id, fp, norm, s.baseCtx, s.opts.RingCap, tc)
	j.Bus.Instrument(s.opts.Metrics)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.tel.rejQueue.Add(1)
		s.bus.Emit(events.Event{Type: events.ServeJobRejected, Detail: "queue", TraceID: trace})
		return nil, false, ErrQueueFull
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.active[fp] = j
	s.mu.Unlock()

	s.tel.submitted.Add(1)
	s.tel.queueDepth.Add(1)
	s.bus.Emit(events.Event{Type: events.ServeJobAccepted, Name: id, Detail: fp, TraceID: trace})
	j.Bus.Emit(events.Event{Type: events.ServeJobAccepted, Name: id, Detail: fp})
	s.index.append(indexRecord{
		Op: opAdmitted, ID: id, Fingerprint: fp, TraceID: trace,
		Spec: &norm, TMS: j.created.UnixMilli(),
	})
	return j, false, nil
}

// Cancel requests cancellation of a job: a queued job is finalized
// immediately, a running one has its context canceled and finalizes
// when the engine unwinds. Returns false when the job is already
// terminal.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	// markCanceledIfQueued is atomic with the queued→running transition
	// (both hold j.mu), so a job a runner has already claimed can only
	// be canceled through its context — never by a state overwrite that
	// would race the runner's own terminal transition.
	if j.markCanceledIfQueued("client") {
		// The job is still in the queue channel; the runner that
		// eventually dequeues it sees the terminal state and skips it
		// (and owns the queue-depth decrement).
		s.finalize(j, events.Event{Type: events.ServeJobCanceled, Name: j.ID, Detail: "client"}, s.tel.canceled)
		return true
	}
	if j.State() == StateRunning {
		j.cancel(errors.New("serve: canceled by client"))
		return true
	}
	return false
}

// runner is one job-execution loop; Drain stops it by closing the
// queue.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		if s.hold != nil {
			// The gate precedes the dequeue so a held runner leaves jobs
			// observable in the queue (deterministic queue-full tests).
			// Tests close the channel to release the runner for good.
			<-s.hold
		}
		j, ok := <-s.queue
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job: its own engine over the shared cache, the
// experiments in spec order, and exactly one terminal event on the job
// bus.
func (s *Server) runJob(j *Job) {
	s.tel.queueDepth.Add(-1)
	if j.State() != StateQueued {
		// Canceled while queued; already finalized.
		return
	}
	eng := engine.New(engine.Options{
		Workers:    s.opts.Workers,
		Cache:      s.cache,
		Retries:    s.opts.Retries,
		JobTimeout: s.opts.JobTimeout,
		Metrics:    s.opts.Metrics,
		Events:     j.Bus,
	})
	if !j.markStarted(eng) {
		return
	}
	s.setRunning(+1)
	start := time.Now()
	s.bus.Emit(events.Event{Type: events.ServeJobStarted, Name: j.ID, Detail: j.Fingerprint, TraceID: j.TraceID})
	j.Bus.Emit(events.Event{Type: events.ServeJobStarted, Name: j.ID})
	s.index.append(indexRecord{Op: opStarted, ID: j.ID, TMS: start.UnixMilli()})

	opts, err := j.Spec.RunOpts()
	tables := map[string]experiments.Table{}
	if err == nil {
		opts.Metrics = s.opts.Metrics
		opts.Events = j.Bus
		opts.Eng = eng
		opts.Ctx = j.ctx
		for _, k := range j.Spec.Run {
			if cerr := j.ctx.Err(); cerr != nil {
				err = context.Cause(j.ctx)
				break
			}
			j.Bus.Emit(events.Event{Type: events.RunPhase, Name: k})
			tab, rerr := experiments.Run(k, opts)
			if rerr != nil {
				err = rerr
				break
			}
			tables[k] = tab
		}
	}

	st := eng.Status()
	wall := time.Since(start).Milliseconds()
	s.setRunning(-1)
	// Each mark* reports whether this goroutine won the terminal
	// transition; only the winner finalizes, so the job's done channel
	// is closed exactly once and exactly one terminal event is emitted.
	switch {
	case err == nil:
		if j.markDone(st, tables) {
			s.finalize(j, events.Event{
				Type: events.ServeJobFinished, Name: j.ID,
				MS: wall, N: int64(len(j.Spec.Run)),
			}, s.tel.completed)
		}
	case j.ctx.Err() != nil:
		if j.markCanceled(&st, err.Error()) {
			s.finalize(j, events.Event{
				Type: events.ServeJobCanceled, Name: j.ID, Detail: err.Error(), MS: wall,
			}, s.tel.canceled)
		}
	default:
		if j.markFailed(st, err.Error()) {
			s.finalize(j, events.Event{
				Type: events.ServeJobFailed, Name: j.ID, Detail: err.Error(), MS: wall,
			}, s.tel.failed)
		}
	}
}

// finalize retires a job from the dedup table, emits its terminal
// event on both buses — on the job bus it is by contract the last
// event of the stream — and only then closes the job's done channel,
// so the SSE drain grace that starts at Done() strictly follows
// terminal-event delivery. Called exactly once per job, by whichever
// goroutine won the terminal mark* transition.
func (s *Server) finalize(j *Job, terminal events.Event, ctr *telemetry.Counter) {
	s.mu.Lock()
	if s.active[j.Fingerprint] == j {
		delete(s.active, j.Fingerprint)
	}
	s.mu.Unlock()
	terminal.TraceID = j.TraceID
	ctr.Add(1)
	s.bus.Emit(terminal)
	j.Bus.Emit(terminal)
	j.finish()
	// The WAL records the terminal transition after the event is on the
	// buses; a crash in between replays as "still running" and the job
	// re-runs — at-least-once, which the content-addressed cache makes
	// idempotent.
	st := j.Status()
	s.index.append(indexRecord{
		Op: string(st.State), ID: j.ID, Detail: st.Error, TMS: st.FinishedTMS,
	})
	s.maybeCompactIndex()
	// Job-completion SLO: a finished job is good when its wall time met
	// the threshold, a failed job is bad, and a cancellation — client's
	// choice or a drain — is nobody's breach and is not observed.
	switch terminal.Type {
	case events.ServeJobFinished:
		s.slo.ObserveLatency(sloJobCompletion, terminal.MS)
	case events.ServeJobFailed:
		s.slo.Observe(sloJobCompletion, false)
	}
}

func (s *Server) setRunning(delta int) {
	s.mu.Lock()
	s.running += delta
	s.mu.Unlock()
	s.tel.running.Add(float64(delta))
}

// journalPath resolves where drained specs are journaled.
func (s *Server) journalPath() string {
	if s.opts.JournalPath != "" {
		return s.opts.JournalPath
	}
	if s.opts.CacheDir != "" {
		return filepath.Join(s.opts.CacheDir, "serve.journal.json")
	}
	return ""
}

// indexPath resolves where the crash-safe job index lives.
func (s *Server) indexPath() string {
	if s.opts.IndexPath != "" {
		return s.opts.IndexPath
	}
	if s.opts.CacheDir != "" {
		return filepath.Join(s.opts.CacheDir, "serve.index.ndjson")
	}
	return ""
}

// maybeCompactIndex compacts the WAL once enough records accumulated.
func (s *Server) maybeCompactIndex() {
	if s.index.shouldCompact() {
		s.compactIndex()
	}
}

// compactIndex rewrites the WAL as one snapshot record per known job.
// The gather callback runs under the index lock; every transition takes
// the job's mutex before its record is appended (which would block on
// that same index lock), so the snapshot always reflects at least
// every state whose record made it to the WAL — compaction can
// duplicate a transition, never lose one.
func (s *Server) compactIndex() {
	s.index.compactWith(func() []indexRecord {
		var recs []indexRecord
		seen := map[string]bool{}
		for _, j := range s.Jobs() {
			recs = append(recs, j.indexSnapshot())
			seen[j.ID] = true
		}
		// Jobs replayed but not yet applied by Resume (or never applied,
		// when the operator skipped -resume) must survive the rewrite.
		s.mu.Lock()
		recovered := s.recovered
		s.mu.Unlock()
		for _, r := range recovered {
			if seen[r.id] {
				continue
			}
			spec := r.spec
			recs = append(recs, indexRecord{
				Op: opSnapshot, ID: r.id, Fingerprint: r.fingerprint, TraceID: r.trace,
				Spec: &spec, State: r.state, Detail: r.detail,
				CreatedTMS: r.createdTMS, StartedTMS: r.startedTMS, FinishedTMS: r.finishedTMS,
			})
		}
		sort.Slice(recs, func(i, j int) bool { return jobIDNum(recs[i].ID) < jobIDNum(recs[j].ID) })
		return recs
	})
}

// tablesFor returns a job's tables, re-materializing a restored
// completed job's results through the shared cache first. The sweep
// already ran to completion once, so the engine resolves every job from
// the content-addressed store and the job's ledger shows executed=0 —
// unless eviction or corruption removed objects, in which case they are
// recomputed (slower, still byte-identical).
func (s *Server) tablesFor(j *Job) (map[string]experiments.Table, []string, error) {
	if j.needsMaterialize() {
		if err := s.materialize(j); err != nil {
			return nil, nil, err
		}
	}
	tables, runs := j.Tables()
	return tables, runs, nil
}

// materialize re-runs a restored job's spec through the shared cache
// and attaches the tables, text, and engine ledger to the job.
// Single-flight per job via rematMu; concurrent requests for the same
// restored job wait for the first materialization.
func (s *Server) materialize(j *Job) error {
	j.rematMu.Lock()
	defer j.rematMu.Unlock()
	if !j.needsMaterialize() {
		return nil
	}
	eng := engine.New(engine.Options{
		Workers:    s.opts.Workers,
		Cache:      s.cache,
		Retries:    s.opts.Retries,
		JobTimeout: s.opts.JobTimeout,
		Metrics:    s.opts.Metrics,
	})
	opts, err := j.Spec.RunOpts()
	if err != nil {
		return err
	}
	opts.Metrics = s.opts.Metrics
	opts.Eng = eng
	opts.Ctx = s.baseCtx
	tables := map[string]experiments.Table{}
	for _, k := range j.Spec.Run {
		tab, rerr := experiments.Run(k, opts)
		if rerr != nil {
			return fmt.Errorf("serve: re-materialize %s: %w", j.ID, rerr)
		}
		tables[k] = tab
	}
	j.setMaterialized(eng.Status(), tables)
	return nil
}

// Drain is the graceful-shutdown protocol: stop admitting, cancel and
// journal every job still queued (for a later -resume), let running
// jobs finish, and — if ctx expires first — cancel them and wait for
// the unwind. Jobs that were running when the drain began and did NOT
// finish (the deadline canceled them) are journaled too, marked
// interrupted, so a drain during execution is resumable rather than
// only a quiet-queue drain. Returns how many specs were journaled.
func (s *Server) Drain(ctx context.Context) (int, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return 0, nil
	}
	s.draining = true
	var leftovers []*Job
drain:
	for {
		select {
		case j := <-s.queue:
			leftovers = append(leftovers, j)
		default:
			break drain
		}
	}
	close(s.queue)
	// Snapshot what is running right now: if the deadline cancels any
	// of these, their specs join the journal as interrupted.
	var runningAtDrain []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil && j.State() == StateRunning {
			runningAtDrain = append(runningAtDrain, j)
		}
	}
	s.mu.Unlock()

	specs := make([]journalEntry, 0, len(leftovers))
	for _, j := range leftovers {
		// Drain popped these from the queue, so the runner's usual -1
		// never happens; Drain owns the decrement for every popped job,
		// including ones a client already canceled while queued.
		s.tel.queueDepth.Add(-1)
		if j.markCanceledIfQueued("drain") {
			specs = append(specs, journalEntry{Spec: j.Spec, TraceID: j.TraceID})
			s.finalize(j, events.Event{Type: events.ServeJobCanceled, Name: j.ID, Detail: "drain"}, s.tel.canceled)
		}
	}

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		// Deadline: abort in-flight jobs and wait for the unwind — the
		// engine honors cancellation, so this is bounded.
		s.baseCancel(fmt.Errorf("serve: drain deadline: %w", context.Cause(ctx)))
		<-finished
	}

	// Now the runners are quiet: any running-at-drain job that ended
	// canceled was interrupted by the deadline, not by a client, and
	// its spec is resumable work.
	interrupted := 0
	for _, j := range runningAtDrain {
		if j.State() == StateCanceled {
			specs = append(specs, journalEntry{Spec: j.Spec, TraceID: j.TraceID, Interrupted: true})
			interrupted++
		}
	}

	var journalErr error
	if len(specs) > 0 {
		if path := s.journalPath(); path != "" {
			journalErr = writeJournal(path, specs)
			if journalErr == nil {
				log.Infof("serve: journaled %d spec(s) (%d interrupted mid-run) to %s (submit with -resume)",
					len(specs), interrupted, path)
			}
		} else {
			journalErr = fmt.Errorf("serve: %d spec(s) dropped (%d interrupted mid-run): no journal path (set -cache-dir)",
				len(specs), interrupted)
		}
	}

	// Leave a tidy index behind: one snapshot per job, terminal states
	// all recorded, so the next boot replays O(jobs) lines.
	s.compactIndex()
	return len(specs), journalErr
}

// Resume rebuilds state from the previous process: first the crash-safe
// job index (terminal jobs become queryable restored jobs; jobs that
// were queued or running at the crash are re-queued under their
// original IDs), then the drain journal, if one exists, is re-admitted
// as fresh jobs. Call before serving traffic. Returns how many jobs
// were (re-)queued for execution.
func (s *Server) Resume() (int, error) {
	n := s.applyRecovered()
	path := s.journalPath()
	if path == "" {
		return n, nil
	}
	specs, err := readJournal(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return n, nil
		}
		return n, err
	}
	if err := os.Remove(path); err != nil {
		return n, fmt.Errorf("serve: remove journal: %w", err)
	}
	for _, entry := range specs {
		norm, err := entry.Normalize()
		if err != nil {
			log.Errorf("serve: resume: dropping journaled spec: %v", err)
			continue
		}
		// Resume the original trace: the re-admitted job's events carry
		// the trace ID of the submission the drain interrupted, through
		// a fresh span of this process. A missing or mangled trace ID
		// (an old-schema journal) just mints a new one.
		tc := s.tgen.NewContext()
		if tid, err := tracectx.ParseTraceID(entry.TraceID); err == nil {
			tc.TraceID = tid
		}
		if _, _, err := s.admit(norm, tc); err != nil {
			log.Errorf("serve: resume: dropping journaled spec: %v", err)
			continue
		}
		n++
	}
	return n, nil
}

// applyRecovered installs the jobs the index replay found. Terminal
// jobs become restored entries in the job table — queryable across the
// restart, results lazily re-materialized from the shared cache. Jobs
// the index last saw queued or running were interrupted by the crash:
// they are re-queued under their ORIGINAL IDs and traces, so a client
// polling a pre-crash job handle watches it run again rather than
// getting a 404. Returns how many jobs were re-queued.
func (s *Server) applyRecovered() int {
	s.mu.Lock()
	recovered := s.recovered
	s.recovered = nil
	if len(recovered) == 0 || s.draining {
		s.mu.Unlock()
		return 0
	}
	restored, requeued := 0, 0
	var queued []*Job
	for _, r := range recovered {
		if _, exists := s.jobs[r.id]; exists {
			continue
		}
		// Keep the job's original trace so pre-crash and post-crash
		// telemetry correlate; a record without one mints a fresh trace.
		tc := s.tgen.NewContext()
		if tid, err := tracectx.ParseTraceID(r.trace); err == nil {
			tc.TraceID = tid
		}
		if State(r.state).Terminal() {
			j := newRestoredJob(r, s.opts.RingCap, tc)
			j.Bus.Instrument(s.opts.Metrics)
			s.jobs[j.ID] = j
			s.order = append(s.order, j.ID)
			restored++
			continue
		}
		// Queued or running at the crash: re-run. The content-addressed
		// cache makes the replay idempotent — finished experiments of a
		// half-done sweep are served from disk, not recomputed.
		j := newJob(r.id, r.fingerprint, r.spec, s.baseCtx, s.opts.RingCap, tc)
		j.Bus.Instrument(s.opts.Metrics)
		select {
		case s.queue <- j:
		default:
			log.Errorf("serve: resume: queue full, dropping recovered job %s (spec stays in the index)", r.id)
			// Put it back so compaction keeps its record and a later
			// restart can try again.
			s.recovered = append(s.recovered, r)
			continue
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if s.active[j.Fingerprint] == nil {
			s.active[j.Fingerprint] = j
		}
		queued = append(queued, j)
		requeued++
	}
	s.mu.Unlock()

	for _, j := range queued {
		s.tel.queueDepth.Add(1)
		s.bus.Emit(events.Event{Type: events.ServeJobRecovered, Name: j.ID, Detail: "requeued", TraceID: j.TraceID})
		j.Bus.Emit(events.Event{Type: events.ServeJobRecovered, Name: j.ID, Detail: "requeued"})
		s.index.append(indexRecord{Op: opRequeued, ID: j.ID, TMS: time.Now().UnixMilli()})
	}
	if restored > 0 || requeued > 0 {
		log.Infof("serve: recovered %d job(s) from the index (%d restored, %d re-queued)",
			restored+requeued, restored, requeued)
		s.bus.Emit(events.Event{Type: events.ServeJobRecovered, Detail: "restored", N: int64(restored)})
		// One snapshot per job leaves the WAL tidy for the next boot.
		s.compactIndex()
	}
	return requeued
}

// journalEntry is one drained job: its spec plus the correlation trace
// ID the resume re-attaches. Spec embeds flat, so a v1 journal written
// before trace IDs existed still parses (TraceID stays "").
type journalEntry struct {
	Spec
	TraceID string `json:"trace_id,omitempty"`
	// Interrupted marks a spec whose job was running when the drain
	// deadline canceled it — resumable work, not a client cancellation.
	Interrupted bool `json:"interrupted,omitempty"`
}

// journalFile is the on-disk drain journal (hifi_serve_journal_v1).
type journalFile struct {
	Schema string         `json:"schema"`
	Jobs   []journalEntry `json:"jobs"`
}

// JournalSchemaV1 stamps the drain journal.
const JournalSchemaV1 = "hifi_serve_journal_v1"

func writeJournal(path string, specs []journalEntry) error {
	b, err := json.MarshalIndent(journalFile{Schema: JournalSchemaV1, Jobs: specs}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readJournal(path string) ([]journalEntry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var jf journalFile
	if err := json.Unmarshal(b, &jf); err != nil {
		return nil, fmt.Errorf("serve: journal %s: %w", path, err)
	}
	if jf.Schema != JournalSchemaV1 {
		return nil, fmt.Errorf("serve: journal %s: unknown schema %q", path, jf.Schema)
	}
	return jf.Jobs, nil
}
