package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/telemetry/slo"
	"racetrack/hifi/internal/telemetry/tracectx"
)

// Options configures a Server.
type Options struct {
	// Workers is the engine worker-pool width each job runs with
	// (<= 0 means runtime.NumCPU via the engine default).
	Workers int
	// CacheDir roots the shared content-addressed result cache — the
	// cross-client dedup substrate. Empty disables caching (every job
	// recomputes), which defeats the daemon's main value; the CLI
	// defaults it on.
	CacheDir string
	// Version overrides the cache code-version ("" = engine.CodeVersion).
	Version string
	// Runners bounds concurrently running jobs (<= 0 means 2). Each job
	// gets its own engine, so total sim parallelism is Runners×Workers.
	Runners int
	// Queue bounds jobs accepted but not yet running (<= 0 means 16).
	// A full queue rejects submissions with 429 + Retry-After.
	Queue int
	// Rate and Burst shape the per-client token bucket (submissions per
	// second and bucket size). Rate <= 0 disables quotas.
	Rate  float64
	Burst int
	// RequireToken rejects submissions that carry no client token
	// (Authorization: Bearer or X-API-Key) instead of falling back to
	// the remote address as the quota key.
	RequireToken bool
	// MaxAccesses caps Spec.Accesses at admission (0 = unbounded), so a
	// public daemon can refuse arbitrarily large sweeps outright.
	MaxAccesses int
	// Retries and JobTimeout pass through to each job's engine.
	Retries    int
	JobTimeout time.Duration
	// RingCap sizes each job bus's SSE replay ring (0 = events default).
	// Tests shrink it to force replay gaps.
	RingCap int
	// JournalPath is where a drain journals its not-yet-started specs
	// for -resume ("" = <CacheDir>/serve.journal.json; no cache dir and
	// no explicit path means drained queue entries are lost).
	JournalPath string
	// Metrics receives the hifi_serve_* admission/lifecycle series and
	// every job's engine/sim series. Nil disables instrumentation.
	Metrics *telemetry.Registry
	// Events is the daemon-wide bus narrating all tenants' lifecycle
	// (the /events route). Nil means the server creates its own.
	Events *events.Bus
	// AccessLog receives one hifi_access_v1 NDJSON line per HTTP
	// request (after a schema header line). Nil disables the access
	// log; cmd/hifi-serve defaults it to stderr.
	AccessLog io.Writer
	// TraceSeed seeds the trace/span ID generator. 0 (the production
	// default) draws unpredictable IDs from crypto/rand; a fixed seed
	// makes the daemon's minted trace IDs reproducible for tests and
	// replayable incident drills.
	TraceSeed uint64
	// SLOObjectives overrides the served SLO set (nil = the defaults in
	// slo.go: availability, submit_latency, job_completion).
	SLOObjectives []slo.Objective

	// hold gates each runner before it dequeues a job (one receive per
	// job; closing it releases the runners for good). In-package tests
	// use it to freeze jobs in a known state; it is unexported so
	// production callers cannot.
	hold chan struct{}
}

// Submission errors the API layer maps to status codes.
var (
	// ErrDraining rejects submissions after Drain started (503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrQueueFull rejects submissions when the bounded queue is at
	// capacity (429 + Retry-After).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrTokenRequired rejects anonymous submissions under
	// RequireToken (401).
	ErrTokenRequired = errors.New("serve: client token required (Authorization: Bearer or X-API-Key)")
)

// QuotaError rejects a submission that exhausted its client's token
// bucket (429); RetryAfter is when the next token lands.
type QuotaError struct{ RetryAfter time.Duration }

func (e *QuotaError) Error() string {
	return fmt.Sprintf("serve: client quota exhausted; retry in %s", e.RetryAfter)
}

// Server is the sweep daemon: a bounded job queue, a fixed pool of job
// runners, the shared result cache, and the job table the API reads.
type Server struct {
	opts   Options
	cache  *engine.Cache
	bus    *events.Bus // daemon-wide lifecycle stream
	health *telemetry.HealthState
	quota  *quotas
	tel    serveTelemetry

	// Request-correlation and SLO plane (middleware.go, slo.go).
	tgen      *tracectx.Gen
	httpTel   *httpTelemetry
	accessLog *accessLog
	slo       *slo.Set

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job // by ID
	order    []string        // IDs in acceptance order
	active   map[string]*Job // fingerprint → queued/running job
	nextID   int
	running  int

	// hold, when non-nil, gates each runner before it executes a job:
	// the runner receives one token per job. Tests use it to freeze
	// jobs in a known state; production never sets it.
	hold chan struct{}
}

type serveTelemetry struct {
	submitted  *telemetry.Counter
	deduped    *telemetry.Counter
	rejQueue   *telemetry.Counter
	rejQuota   *telemetry.Counter
	completed  *telemetry.Counter
	failed     *telemetry.Counter
	canceled   *telemetry.Counter
	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge
}

// New builds and starts a server: the runner pool is live on return.
// An unusable cache directory degrades to cache-less operation with a
// warning, mirroring the CLI engine flags.
func New(opts Options) *Server {
	if opts.Runners <= 0 {
		opts.Runners = 2
	}
	if opts.Queue <= 0 {
		opts.Queue = 16
	}
	s := &Server{
		opts:   opts,
		bus:    opts.Events,
		health: telemetry.NewHealthState(),
		quota:  newQuotas(opts.Rate, opts.Burst),
		queue:  make(chan *Job, opts.Queue),
		jobs:   map[string]*Job{},
		active: map[string]*Job{},
		hold:   opts.hold,
	}
	if s.bus == nil {
		s.bus = events.New(0)
		s.bus.Instrument(opts.Metrics)
	}
	if opts.CacheDir != "" {
		cache, err := engine.OpenCache(opts.CacheDir, opts.Version)
		if err != nil {
			log.Errorf("serve: %v; continuing without cache (no cross-client result reuse)", err)
		} else {
			s.cache = cache
		}
	}
	reg := opts.Metrics
	s.tel = serveTelemetry{
		submitted:  reg.Counter(telemetry.MetricServeSubmitted, "sweep specs accepted (including deduped)"),
		deduped:    reg.Counter(telemetry.MetricServeDeduped, "submissions coalesced onto a live identical job"),
		rejQueue:   reg.Counter(telemetry.MetricServeRejectedQueue, "submissions rejected because the job queue was full"),
		rejQuota:   reg.Counter(telemetry.MetricServeRejectedQuota, "submissions rejected by a client quota"),
		completed:  reg.Counter(telemetry.MetricServeCompleted, "jobs that completed successfully"),
		failed:     reg.Counter(telemetry.MetricServeFailed, "jobs that failed"),
		canceled:   reg.Counter(telemetry.MetricServeCanceled, "jobs canceled by a client or a drain"),
		queueDepth: reg.Gauge(telemetry.MetricServeQueueDepth, "jobs accepted but not yet running"),
		running:    reg.Gauge(telemetry.MetricServeRunning, "jobs currently running"),
	}
	s.tgen = tracectx.NewGen(opts.TraceSeed)
	s.httpTel = newHTTPTelemetry(opts.Metrics)
	s.accessLog = newAccessLog(opts.AccessLog)
	objectives := opts.SLOObjectives
	if objectives == nil {
		objectives = defaultObjectives()
	}
	s.slo = slo.New(opts.Metrics, objectives, nil)
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.health.SetEventsSeq(s.bus.Seq)
	s.health.SetInFlight(func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.running
	})
	for i := 0; i < opts.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// Cache exposes the shared result cache (nil when disabled).
func (s *Server) Cache() *engine.Cache { return s.cache }

// Bus exposes the daemon-wide event bus.
func (s *Server) Bus() *events.Bus { return s.bus }

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in acceptance order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Submit validates and admits one spec for client (the quota key) under
// a freshly minted trace. The HTTP path goes through SubmitTraced with
// the request's trace context instead.
func (s *Server) Submit(spec Spec, client string) (*Job, bool, error) {
	return s.SubmitTraced(spec, client, tracectx.Context{})
}

// SubmitTraced validates and admits one spec for client (the quota
// key), correlating the job and every event it emits with tc (an
// invalid tc mints a fresh trace). Returns the job — possibly an
// existing live one the submission coalesced onto (deduped true) — or a
// typed admission error.
func (s *Server) SubmitTraced(spec Spec, client string, tc tracectx.Context) (*Job, bool, error) {
	if !tc.Valid() {
		tc = s.tgen.NewContext()
	}
	trace := tc.TraceID.String()
	if s.opts.RequireToken && client == "" {
		return nil, false, ErrTokenRequired
	}
	// Validate before spending quota: a malformed or oversized spec is a
	// client error that did no work, and must not drain the bucket.
	norm, err := spec.Normalize()
	if err != nil {
		return nil, false, err
	}
	if s.opts.MaxAccesses > 0 && norm.Accesses > s.opts.MaxAccesses {
		return nil, false, fmt.Errorf("serve: accesses %d exceeds this server's limit of %d",
			norm.Accesses, s.opts.MaxAccesses)
	}
	if ok, retry := s.quota.allow(client, time.Now()); !ok {
		s.tel.rejQuota.Add(1)
		s.bus.Emit(events.Event{Type: events.ServeJobRejected, Name: client, Detail: "quota", TraceID: trace})
		return nil, false, &QuotaError{RetryAfter: retry}
	}
	j, deduped, err := s.admit(norm, tc)
	if err != nil {
		// Queue-full / draining rejections did no work either: return
		// the token so the rejection itself cannot throttle the client.
		s.quota.refund(client)
	}
	return j, deduped, err
}

// admit enqueues a normalized spec: the dedup check and the bounded
// queue, under one lock so a drain can never race a send onto a closed
// queue. tc must be valid (SubmitTraced mints one); the job and its
// whole event stream inherit its trace ID.
func (s *Server) admit(norm Spec, tc tracectx.Context) (*Job, bool, error) {
	trace := tc.TraceID.String()
	fp := norm.Fingerprint()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.bus.Emit(events.Event{Type: events.ServeJobRejected, Detail: "draining", TraceID: trace})
		return nil, false, ErrDraining
	}
	// coalesce emits the job-bus deduped event itself, under j.mu, so it
	// can never land after the stream's terminal event; only the
	// daemon-bus copy is emitted here. The deduped daemon event carries
	// the REJECTED submission's trace ID — the job keeps the trace of
	// the submission that created it — so the coalesced client's trace
	// still has a daemon-log footprint pointing at the live job.
	if live := s.active[fp]; live != nil && live.coalesce() {
		s.mu.Unlock()
		s.tel.submitted.Add(1)
		s.tel.deduped.Add(1)
		s.bus.Emit(events.Event{Type: events.ServeJobDeduped, Name: live.ID, Detail: fp, TraceID: trace})
		return live, true, nil
	}
	s.nextID++
	id := fmt.Sprintf("j%04d", s.nextID)
	j := newJob(id, fp, norm, s.baseCtx, s.opts.RingCap, tc)
	j.Bus.Instrument(s.opts.Metrics)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.tel.rejQueue.Add(1)
		s.bus.Emit(events.Event{Type: events.ServeJobRejected, Detail: "queue", TraceID: trace})
		return nil, false, ErrQueueFull
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.active[fp] = j
	s.mu.Unlock()

	s.tel.submitted.Add(1)
	s.tel.queueDepth.Add(1)
	s.bus.Emit(events.Event{Type: events.ServeJobAccepted, Name: id, Detail: fp, TraceID: trace})
	j.Bus.Emit(events.Event{Type: events.ServeJobAccepted, Name: id, Detail: fp})
	return j, false, nil
}

// Cancel requests cancellation of a job: a queued job is finalized
// immediately, a running one has its context canceled and finalizes
// when the engine unwinds. Returns false when the job is already
// terminal.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	// markCanceledIfQueued is atomic with the queued→running transition
	// (both hold j.mu), so a job a runner has already claimed can only
	// be canceled through its context — never by a state overwrite that
	// would race the runner's own terminal transition.
	if j.markCanceledIfQueued("client") {
		// The job is still in the queue channel; the runner that
		// eventually dequeues it sees the terminal state and skips it
		// (and owns the queue-depth decrement).
		s.finalize(j, events.Event{Type: events.ServeJobCanceled, Name: j.ID, Detail: "client"}, s.tel.canceled)
		return true
	}
	if j.State() == StateRunning {
		j.cancel(errors.New("serve: canceled by client"))
		return true
	}
	return false
}

// runner is one job-execution loop; Drain stops it by closing the
// queue.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		if s.hold != nil {
			// The gate precedes the dequeue so a held runner leaves jobs
			// observable in the queue (deterministic queue-full tests).
			// Tests close the channel to release the runner for good.
			<-s.hold
		}
		j, ok := <-s.queue
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job: its own engine over the shared cache, the
// experiments in spec order, and exactly one terminal event on the job
// bus.
func (s *Server) runJob(j *Job) {
	s.tel.queueDepth.Add(-1)
	if j.State() != StateQueued {
		// Canceled while queued; already finalized.
		return
	}
	eng := engine.New(engine.Options{
		Workers:    s.opts.Workers,
		Cache:      s.cache,
		Retries:    s.opts.Retries,
		JobTimeout: s.opts.JobTimeout,
		Metrics:    s.opts.Metrics,
		Events:     j.Bus,
	})
	if !j.markStarted(eng) {
		return
	}
	s.setRunning(+1)
	start := time.Now()
	s.bus.Emit(events.Event{Type: events.ServeJobStarted, Name: j.ID, Detail: j.Fingerprint, TraceID: j.TraceID})
	j.Bus.Emit(events.Event{Type: events.ServeJobStarted, Name: j.ID})

	opts, err := j.Spec.RunOpts()
	tables := map[string]experiments.Table{}
	if err == nil {
		opts.Metrics = s.opts.Metrics
		opts.Events = j.Bus
		opts.Eng = eng
		opts.Ctx = j.ctx
		for _, k := range j.Spec.Run {
			if cerr := j.ctx.Err(); cerr != nil {
				err = context.Cause(j.ctx)
				break
			}
			j.Bus.Emit(events.Event{Type: events.RunPhase, Name: k})
			tab, rerr := experiments.Run(k, opts)
			if rerr != nil {
				err = rerr
				break
			}
			tables[k] = tab
		}
	}

	st := eng.Status()
	wall := time.Since(start).Milliseconds()
	s.setRunning(-1)
	// Each mark* reports whether this goroutine won the terminal
	// transition; only the winner finalizes, so the job's done channel
	// is closed exactly once and exactly one terminal event is emitted.
	switch {
	case err == nil:
		if j.markDone(st, tables) {
			s.finalize(j, events.Event{
				Type: events.ServeJobFinished, Name: j.ID,
				MS: wall, N: int64(len(j.Spec.Run)),
			}, s.tel.completed)
		}
	case j.ctx.Err() != nil:
		if j.markCanceled(&st, err.Error()) {
			s.finalize(j, events.Event{
				Type: events.ServeJobCanceled, Name: j.ID, Detail: err.Error(), MS: wall,
			}, s.tel.canceled)
		}
	default:
		if j.markFailed(st, err.Error()) {
			s.finalize(j, events.Event{
				Type: events.ServeJobFailed, Name: j.ID, Detail: err.Error(), MS: wall,
			}, s.tel.failed)
		}
	}
}

// finalize retires a job from the dedup table, emits its terminal
// event on both buses — on the job bus it is by contract the last
// event of the stream — and only then closes the job's done channel,
// so the SSE drain grace that starts at Done() strictly follows
// terminal-event delivery. Called exactly once per job, by whichever
// goroutine won the terminal mark* transition.
func (s *Server) finalize(j *Job, terminal events.Event, ctr *telemetry.Counter) {
	s.mu.Lock()
	if s.active[j.Fingerprint] == j {
		delete(s.active, j.Fingerprint)
	}
	s.mu.Unlock()
	terminal.TraceID = j.TraceID
	ctr.Add(1)
	s.bus.Emit(terminal)
	j.Bus.Emit(terminal)
	j.finish()
	// Job-completion SLO: a finished job is good when its wall time met
	// the threshold, a failed job is bad, and a cancellation — client's
	// choice or a drain — is nobody's breach and is not observed.
	switch terminal.Type {
	case events.ServeJobFinished:
		s.slo.ObserveLatency(sloJobCompletion, terminal.MS)
	case events.ServeJobFailed:
		s.slo.Observe(sloJobCompletion, false)
	}
}

func (s *Server) setRunning(delta int) {
	s.mu.Lock()
	s.running += delta
	s.mu.Unlock()
	s.tel.running.Add(float64(delta))
}

// journalPath resolves where drained specs are journaled.
func (s *Server) journalPath() string {
	if s.opts.JournalPath != "" {
		return s.opts.JournalPath
	}
	if s.opts.CacheDir != "" {
		return filepath.Join(s.opts.CacheDir, "serve.journal.json")
	}
	return ""
}

// Drain is the graceful-shutdown protocol: stop admitting, journal
// every job still queued (for a later -resume), let running jobs
// finish, and — if ctx expires first — cancel them and wait for the
// unwind. Returns how many specs were journaled.
func (s *Server) Drain(ctx context.Context) (int, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return 0, nil
	}
	s.draining = true
	var leftovers []*Job
drain:
	for {
		select {
		case j := <-s.queue:
			leftovers = append(leftovers, j)
		default:
			break drain
		}
	}
	close(s.queue)
	s.mu.Unlock()

	specs := make([]journalEntry, 0, len(leftovers))
	for _, j := range leftovers {
		// Drain popped these from the queue, so the runner's usual -1
		// never happens; Drain owns the decrement for every popped job,
		// including ones a client already canceled while queued.
		s.tel.queueDepth.Add(-1)
		if j.markCanceledIfQueued("drain") {
			specs = append(specs, journalEntry{Spec: j.Spec, TraceID: j.TraceID})
			s.finalize(j, events.Event{Type: events.ServeJobCanceled, Name: j.ID, Detail: "drain"}, s.tel.canceled)
		}
	}

	var journalErr error
	if len(specs) > 0 {
		if path := s.journalPath(); path != "" {
			journalErr = writeJournal(path, specs)
			if journalErr == nil {
				log.Infof("serve: journaled %d queued spec(s) to %s (submit with -resume)", len(specs), path)
			}
		} else {
			journalErr = fmt.Errorf("serve: %d queued spec(s) dropped: no journal path (set -cache-dir)", len(specs))
		}
	}

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		// Deadline: abort in-flight jobs and wait for the unwind — the
		// engine honors cancellation, so this is bounded.
		s.baseCancel(fmt.Errorf("serve: drain deadline: %w", context.Cause(ctx)))
		<-finished
	}
	return len(specs), journalErr
}

// Resume re-admits the specs a previous drain journaled and removes the
// journal. Call before serving traffic.
func (s *Server) Resume() (int, error) {
	path := s.journalPath()
	if path == "" {
		return 0, nil
	}
	specs, err := readJournal(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	if err := os.Remove(path); err != nil {
		return 0, fmt.Errorf("serve: remove journal: %w", err)
	}
	n := 0
	for _, entry := range specs {
		norm, err := entry.Normalize()
		if err != nil {
			log.Errorf("serve: resume: dropping journaled spec: %v", err)
			continue
		}
		// Resume the original trace: the re-admitted job's events carry
		// the trace ID of the submission the drain interrupted, through
		// a fresh span of this process. A missing or mangled trace ID
		// (an old-schema journal) just mints a new one.
		tc := s.tgen.NewContext()
		if tid, err := tracectx.ParseTraceID(entry.TraceID); err == nil {
			tc.TraceID = tid
		}
		if _, _, err := s.admit(norm, tc); err != nil {
			log.Errorf("serve: resume: dropping journaled spec: %v", err)
			continue
		}
		n++
	}
	return n, nil
}

// journalEntry is one drained job: its spec plus the correlation trace
// ID the resume re-attaches. Spec embeds flat, so a v1 journal written
// before trace IDs existed still parses (TraceID stays "").
type journalEntry struct {
	Spec
	TraceID string `json:"trace_id,omitempty"`
}

// journalFile is the on-disk drain journal (hifi_serve_journal_v1).
type journalFile struct {
	Schema string         `json:"schema"`
	Jobs   []journalEntry `json:"jobs"`
}

// JournalSchemaV1 stamps the drain journal.
const JournalSchemaV1 = "hifi_serve_journal_v1"

func writeJournal(path string, specs []journalEntry) error {
	b, err := json.MarshalIndent(journalFile{Schema: JournalSchemaV1, Jobs: specs}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readJournal(path string) ([]journalEntry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var jf journalFile
	if err := json.Unmarshal(b, &jf); err != nil {
		return nil, fmt.Errorf("serve: journal %s: %w", path, err)
	}
	if jf.Schema != JournalSchemaV1 {
		return nil, fmt.Errorf("serve: journal %s: unknown schema %q", path, jf.Schema)
	}
	return jf.Jobs, nil
}
