package serve

// The daemon's declarative SLOs. Targets are deliberately modest — this
// is a research daemon, not a product — but the mechanics (windowed
// good/bad counters, burn-rate gauges, the /slo report) are the real
// multi-window multi-burn-rate scheme from the SRE workbook, so the
// numbers are directly alertable.

import (
	"time"

	"racetrack/hifi/internal/telemetry/slo"
)

// Objective names, shared by the recorders (middleware, finalize) and
// the defaults below.
const (
	// sloAvailability: fraction of HTTP responses that are not 5xx.
	sloAvailability = "availability"
	// sloSubmitLatency: fraction of accepted submissions whose handler
	// round-trip — which includes putting the accepted event on the
	// job's SSE bus — lands under the threshold.
	sloSubmitLatency = "submit_latency"
	// sloJobCompletion: fraction of finished jobs that completed
	// successfully within the threshold. Failures are bad; client or
	// drain cancellations are nobody's breach and are not observed.
	sloJobCompletion = "job_completion"
	// sloIndexDurability: fraction of job-index WAL appends that reached
	// disk. A burn here means job state is no longer crash-safe (the
	// daemon keeps serving from memory — see "graceful degradation" in
	// docs/serve.md).
	sloIndexDurability = "index_durability"
)

// defaultObjectives is the served SLO set when Options.SLOObjectives is
// nil.
func defaultObjectives() []slo.Objective {
	return []slo.Objective{
		{
			Name:   sloAvailability,
			Help:   "non-5xx fraction of all HTTP responses",
			Target: 0.999,
		},
		{
			Name:      sloSubmitLatency,
			Help:      "accepted submissions answered (first SSE event queued) within 1s",
			Target:    0.99,
			LatencyMS: 1000,
		},
		{
			Name:      sloJobCompletion,
			Help:      "jobs that finish successfully within 5 minutes of starting",
			Target:    0.95,
			LatencyMS: (5 * time.Minute).Milliseconds(),
		},
		{
			Name:   sloIndexDurability,
			Help:   "job-index WAL appends that reached disk (crash-safety of job state)",
			Target: 0.999,
		},
	}
}

// SLOReport evaluates the daemon's objectives as of now, refreshing the
// hifi_slo_* gauges — the GET /slo body and the hifi-watch SLO panel's
// source.
func (s *Server) SLOReport() slo.Report { return s.slo.Evaluate() }
