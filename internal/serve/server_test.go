package serve

// The daemon's acceptance tests: byte-identity with the CLI, cross-client
// dedup through the shared cache, admission control, cancellation, and
// the drain/journal/resume protocol. All run under -race in CI. Tests
// that need jobs frozen in the queue set Options.hold — the runner gate
// that precedes the dequeue — and release it by closing the channel.

import (
	"context"
	"errors"
	"testing"
	"time"

	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
)

// quickSpec is the test workhorse: a scaled fig14 sweep short enough for
// unit tests but real enough to exercise the engine and the cache.
func quickSpec() Spec {
	return Spec{Run: []string{"fig14"}, Scaled: true, Accesses: 300}
}

func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		CacheDir: t.TempDir(),
		Runners:  2,
		Queue:    16,
		Metrics:  telemetry.NewRegistry(),
	}
}

// newTestServer starts a server and tears it down through Drain, the
// production shutdown path. Tests that set opts.hold must close it
// before the cleanup runs (closeOnce makes that idempotent).
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := New(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if _, err := s.Drain(ctx); err != nil {
			t.Logf("drain: %v", err)
		}
	})
	return s
}

// closeOnce returns an idempotent closer for a hold channel, registered
// as a cleanup so held runners are always released before Drain.
func closeOnce(t *testing.T, ch chan struct{}) func() {
	t.Helper()
	done := false
	release := func() {
		if !done {
			done = true
			close(ch)
		}
	}
	t.Cleanup(release)
	return release
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not reach a terminal state (still %s)", j.ID, j.State())
	}
}

// The core determinism claim: the daemon's rendered tables are
// byte-identical to a direct experiments run with the same knobs, and a
// spec resubmitted after completion runs entirely from the shared cache
// — a fresh job whose engine ledger shows zero executed simulations.
func TestSubmitByteIdenticalAndCacheServedResubmit(t *testing.T) {
	srv := newTestServer(t, testOptions(t))

	j1, deduped, err := srv.Submit(quickSpec(), "client-a")
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Fatalf("first submission reported deduped")
	}
	waitDone(t, j1)
	if st := j1.State(); st != StateDone {
		t.Fatalf("job 1 state %s, error %q", st, j1.Status().Error)
	}

	// The CLI-equivalent run, built the way cmd/hifi-experiments builds
	// it from -scaled -run fig14 -accesses 300.
	opts := experiments.QuickRunOpts()
	opts.AccessesPerCore = 300
	tab, err := experiments.Run("fig14", opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := tab.String(); j1.Text() != want {
		t.Fatalf("served tables differ from a direct run:\nserved:\n%s\ndirect:\n%s", j1.Text(), want)
	}
	st1 := j1.Status()
	if st1.Engine == nil || st1.Engine.Executed == 0 {
		t.Fatalf("first run executed nothing: %+v", st1.Engine)
	}

	// Resubmit after completion: a fresh job (the finished one left the
	// dedup table) that the shared cache serves without recomputing.
	j2, deduped, err := srv.Submit(quickSpec(), "client-b")
	if err != nil {
		t.Fatal(err)
	}
	if deduped || j2.ID == j1.ID {
		t.Fatalf("resubmission after completion coalesced onto the finished job")
	}
	waitDone(t, j2)
	if st := j2.State(); st != StateDone {
		t.Fatalf("job 2 state %s, error %q", st, j2.Status().Error)
	}
	if j2.Text() != j1.Text() {
		t.Fatalf("cache-served run rendered different bytes")
	}
	st2 := j2.Status()
	if st2.Engine == nil {
		t.Fatalf("job 2 has no engine ledger")
	}
	if st2.Engine.Executed != 0 {
		t.Fatalf("resubmission executed %d simulation(s); want 0 (all cache hits)", st2.Engine.Executed)
	}
	if st2.Engine.CacheHits == 0 || st2.Engine.CacheHits != st2.Engine.Jobs {
		t.Fatalf("resubmission ledger %+v; want every job a cache hit", st2.Engine)
	}
}

// A spec equal to a queued/running one coalesces onto that job instead
// of spawning a second computation.
func TestDedupCoalescesOntoLiveJob(t *testing.T) {
	opts := testOptions(t)
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	release := closeOnce(t, hold)

	j1, deduped, err := srv.Submit(quickSpec(), "client-a")
	if err != nil || deduped {
		t.Fatalf("first submit: deduped=%v err=%v", deduped, err)
	}
	j2, deduped, err := srv.Submit(quickSpec(), "client-b")
	if err != nil {
		t.Fatal(err)
	}
	if !deduped || j2 != j1 {
		t.Fatalf("identical live spec did not coalesce: deduped=%v j1=%s j2=%s", deduped, j1.ID, j2.ID)
	}
	if subs := j1.Status().Subscribers; subs != 2 {
		t.Fatalf("subscribers = %d, want 2", subs)
	}
	if got, _ := srv.opts.Metrics.Snapshot().Lookup(telemetry.MetricServeDeduped); got != 1 {
		t.Fatalf("%s = %v, want 1", telemetry.MetricServeDeduped, got)
	}

	release()
	waitDone(t, j1)
	if st := j1.State(); st != StateDone {
		t.Fatalf("coalesced job ended %s", st)
	}
	// The job-bus deduped event precedes the terminal event, which is
	// still the stream's last — the per-job-stream ordering contract.
	replay := j1.Bus.ReplaySince(0)
	dedupAt := -1
	for i, e := range replay {
		if e.Type == events.ServeJobDeduped {
			dedupAt = i
		}
	}
	if dedupAt < 0 {
		t.Fatalf("job bus never saw the deduped event: %+v", replay)
	}
	if last := replay[len(replay)-1].Type; last != events.ServeJobFinished {
		t.Fatalf("job stream ends with %s, want the terminal event", last)
	}
}

func TestQueueFullRejects(t *testing.T) {
	opts := testOptions(t)
	opts.Queue = 2
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	closeOnce(t, hold)

	a := quickSpec()
	b := quickSpec()
	b.Seed = 2
	c := quickSpec()
	c.Seed = 3
	if _, _, err := srv.Submit(a, "c"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(b, "c"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(c, "c"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if got, _ := srv.opts.Metrics.Snapshot().Lookup(telemetry.MetricServeRejectedQueue); got != 1 {
		t.Fatalf("%s = %v, want 1", telemetry.MetricServeRejectedQueue, got)
	}
}

func TestQuotaRejectsPerClient(t *testing.T) {
	opts := testOptions(t)
	opts.Rate = 0.5
	opts.Burst = 2
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	closeOnce(t, hold)

	spec := func(seed uint64) Spec {
		s := quickSpec()
		s.Seed = seed
		return s
	}
	if _, _, err := srv.Submit(spec(1), "alice"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(spec(2), "alice"); err != nil {
		t.Fatal(err)
	}
	_, _, err := srv.Submit(spec(3), "alice")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("third submit: %v, want QuotaError", err)
	}
	if qe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %s, want at least a whole second", qe.RetryAfter)
	}
	// Another client's bucket is untouched.
	if _, _, err := srv.Submit(spec(4), "bob"); err != nil {
		t.Fatalf("bob rejected: %v", err)
	}
}

func TestRequireToken(t *testing.T) {
	opts := testOptions(t)
	opts.RequireToken = true
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	closeOnce(t, hold)

	if _, _, err := srv.Submit(quickSpec(), ""); !errors.Is(err, ErrTokenRequired) {
		t.Fatalf("anonymous submit: %v, want ErrTokenRequired", err)
	}
	if _, _, err := srv.Submit(quickSpec(), "tok-1"); err != nil {
		t.Fatalf("tokened submit: %v", err)
	}
}

func TestMaxAccessesCap(t *testing.T) {
	opts := testOptions(t)
	opts.MaxAccesses = 1000
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	closeOnce(t, hold)

	big := quickSpec()
	big.Accesses = 5000
	if _, _, err := srv.Submit(big, "c"); err == nil {
		t.Fatalf("oversized spec admitted")
	}
	if _, _, err := srv.Submit(quickSpec(), "c"); err != nil {
		t.Fatal(err)
	}
}

// Canceling a queued job finalizes it immediately; the runner that later
// dequeues it skips it. The terminal event is the job stream's last.
func TestCancelQueued(t *testing.T) {
	opts := testOptions(t)
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	release := closeOnce(t, hold)

	j, _, err := srv.Submit(quickSpec(), "c")
	if err != nil {
		t.Fatal(err)
	}
	if !srv.Cancel(j.ID) {
		t.Fatalf("cancel of queued job returned false")
	}
	waitDone(t, j)
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state %s, want canceled", st)
	}
	if srv.Cancel(j.ID) {
		t.Fatalf("second cancel of a terminal job returned true")
	}
	replay := j.Bus.ReplaySince(0)
	if len(replay) == 0 || replay[len(replay)-1].Type != events.ServeJobCanceled {
		t.Fatalf("job stream does not end with the terminal event: %+v", replay)
	}
	release() // runner dequeues the corpse and must skip it quietly
}

// Canceling a running job cancels its context; the engine unwinds and
// the job finalizes as canceled.
func TestCancelRunning(t *testing.T) {
	srv := newTestServer(t, testOptions(t))

	long := quickSpec()
	long.Accesses = 50_000 // a few seconds of simulation: a wide cancel window
	j, _, err := srv.Submit(long, "c")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", j.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !srv.Cancel(j.ID) {
		t.Fatalf("cancel of running job returned false")
	}
	waitDone(t, j)
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state %s, want canceled", st)
	}
	replay := j.Bus.ReplaySince(0)
	if replay[len(replay)-1].Type != events.ServeJobCanceled {
		t.Fatalf("job stream does not end with the terminal event")
	}
}

// Drain journals still-queued specs and a fresh server re-admits them
// with -resume semantics.
func TestDrainJournalsQueueAndResumeReplays(t *testing.T) {
	opts := testOptions(t)
	hold := make(chan struct{})
	opts.hold = hold
	release := closeOnce(t, hold)
	srv := New(opts) // not newTestServer: this test drives Drain itself

	a := quickSpec()
	b := quickSpec()
	b.Seed = 2
	ja, _, err := srv.Submit(a, "c")
	if err != nil {
		t.Fatal(err)
	}
	jb, _, err := srv.Submit(b, "c")
	if err != nil {
		t.Fatal(err)
	}

	type drainRes struct {
		n   int
		err error
	}
	resc := make(chan drainRes, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		n, err := srv.Drain(ctx)
		resc <- drainRes{n, err}
	}()
	// Drain sets draining, empties the queue, and closes it inside one
	// critical section; once a submit sees ErrDraining all of that has
	// happened, so releasing the held runners afterwards cannot race the
	// leftover collection.
	for {
		if _, _, err := srv.Submit(quickSpec(), "late"); errors.Is(err, ErrDraining) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	release()
	res := <-resc
	if res.err != nil {
		t.Fatalf("drain: %v", res.err)
	}
	if res.n != 2 {
		t.Fatalf("drain journaled %d spec(s), want 2", res.n)
	}
	if ja.State() != StateCanceled || jb.State() != StateCanceled {
		t.Fatalf("drained jobs not canceled: %s %s", ja.State(), jb.State())
	}

	// Same cache dir → same journal path; the successor re-admits both.
	// The crash-safe index ALSO restores the two drain-canceled jobs as
	// queryable terminal entries, so the successor's table holds four:
	// the restored shells plus the re-admitted live jobs.
	opts2 := testOptions(t)
	opts2.CacheDir = opts.CacheDir
	srv2 := newTestServer(t, opts2)
	n, err := srv2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resume re-admitted %d spec(s), want 2", n)
	}
	jobs := srv2.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("successor has %d job(s), want 4 (2 restored canceled + 2 re-admitted)", len(jobs))
	}
	restored, live := 0, 0
	for _, j := range jobs {
		if j.Status().Restored {
			restored++
			if st := j.State(); st != StateCanceled {
				t.Fatalf("restored job %s is %s, want canceled", j.ID, st)
			}
			continue
		}
		live++
		waitDone(t, j)
		if st := j.State(); st != StateDone {
			t.Fatalf("resumed job %s ended %s (%s)", j.ID, st, j.Status().Error)
		}
	}
	if restored != 2 || live != 2 {
		t.Fatalf("successor split restored=%d live=%d, want 2/2", restored, live)
	}
	// The journal is consumed: a second resume finds nothing.
	if n, err := srv2.Resume(); err != nil || n != 0 {
		t.Fatalf("second resume: n=%d err=%v, want 0,nil", n, err)
	}
}

// Regression: a cancel landing in the instant a runner claims the job
// must resolve atomically — either the queued-cancel wins (the runner
// skips the corpse) or the runner wins (the cancel goes through the
// job's context). The old two-step State()-then-mark allowed both to
// win, double-closing the done channel. Exercised under -race in CI;
// every job must end with exactly one terminal event, stream-last.
func TestCancelRacesRunnerStart(t *testing.T) {
	opts := testOptions(t)
	opts.Runners = 4
	opts.Queue = 64
	srv := newTestServer(t, opts)

	const jobs = 16
	for i := 0; i < jobs; i++ {
		sp := quickSpec()
		sp.Seed = uint64(i + 1) // distinct fingerprints: no coalescing
		j, _, err := srv.Submit(sp, "c")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Cancel(j.ID) // races the runner's dequeue + markStarted
	}
	terminal := map[events.Type]bool{
		events.ServeJobFinished: true,
		events.ServeJobFailed:   true,
		events.ServeJobCanceled: true,
	}
	for _, j := range srv.Jobs() {
		waitDone(t, j)
		if st := j.State(); !st.Terminal() {
			t.Fatalf("job %s not terminal: %s", j.ID, st)
		}
		replay := j.Bus.ReplaySince(0)
		n := 0
		for _, e := range replay {
			if terminal[e.Type] {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("job %s emitted %d terminal events: %+v", j.ID, n, replay)
		}
		if last := replay[len(replay)-1].Type; !terminal[last] {
			t.Fatalf("job %s stream ends with %s, want its terminal event", j.ID, last)
		}
	}
}

// Drain owns the queue-depth decrement for every job it pops — including
// a corpse a client canceled while queued (the runner that normally owns
// the -1 never dequeues it), so the gauge returns to zero.
func TestDrainAccountsCanceledQueuedJobs(t *testing.T) {
	opts := testOptions(t)
	hold := make(chan struct{})
	opts.hold = hold
	release := closeOnce(t, hold)
	srv := New(opts) // drives Drain itself

	a := quickSpec()
	b := quickSpec()
	b.Seed = 2
	ja, _, err := srv.Submit(a, "c")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(b, "c"); err != nil {
		t.Fatal(err)
	}
	if !srv.Cancel(ja.ID) { // finalized but still in the queue channel
		t.Fatal("cancel of queued job failed")
	}

	resc := make(chan int, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		n, err := srv.Drain(ctx)
		if err != nil {
			t.Errorf("drain: %v", err)
		}
		resc <- n
	}()
	// Probe with b's spec: until draining it coalesces onto the queued
	// jb (no new queue entries); ErrDraining means the queue is emptied
	// and closed. a's spec would enqueue fresh jobs — ja's fingerprint
	// was freed by the cancel.
	for {
		if _, _, err := srv.Submit(b, "late"); errors.Is(err, ErrDraining) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	release()
	if n := <-resc; n != 1 {
		t.Fatalf("drain journaled %d spec(s), want 1 (the corpse is not journaled)", n)
	}
	if got, _ := opts.Metrics.Snapshot().Lookup(telemetry.MetricServeQueueDepth); got != 0 {
		t.Fatalf("%s = %v after drain, want 0", telemetry.MetricServeQueueDepth, got)
	}
}

// Rejections that did no work must not drain the client's token bucket:
// invalid and oversized specs are rejected before the quota gate, and a
// queue-full rejection refunds the token it took.
func TestQuotaNotSpentByRejectedSubmissions(t *testing.T) {
	opts := testOptions(t)
	opts.Rate = 0.001 // no meaningful refill within the test
	opts.Burst = 2
	opts.Queue = 1
	opts.MaxAccesses = 1000
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	closeOnce(t, hold)

	bad := quickSpec()
	bad.Accesses = -1
	big := quickSpec()
	big.Accesses = 5000
	for i := 0; i < 5; i++ {
		if _, _, err := srv.Submit(bad, "alice"); err == nil {
			t.Fatal("invalid spec admitted")
		}
		if _, _, err := srv.Submit(big, "alice"); err == nil {
			t.Fatal("oversized spec admitted")
		}
	}
	// Both tokens survive the rejections: one admits, and the queue-full
	// rejection refunds, so retries keep hitting 429-queue, never quota.
	if _, _, err := srv.Submit(quickSpec(), "alice"); err != nil {
		t.Fatalf("first real submit: %v", err)
	}
	overflow := quickSpec()
	overflow.Seed = 2
	for i := 0; i < 5; i++ {
		if _, _, err := srv.Submit(overflow, "alice"); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("overflow submit %d: %v, want ErrQueueFull", i, err)
		}
	}
	if got, _ := srv.opts.Metrics.Snapshot().Lookup(telemetry.MetricServeRejectedQuota); got != 0 {
		t.Fatalf("%s = %v, want 0 (no rejection should have spent quota)", telemetry.MetricServeRejectedQuota, got)
	}
}

// A canceled queued job must not leave its fingerprint claimed: the next
// identical submission gets a fresh job, not a corpse.
func TestResubmitAfterQueuedCancel(t *testing.T) {
	opts := testOptions(t)
	hold := make(chan struct{})
	opts.hold = hold
	srv := newTestServer(t, opts)
	release := closeOnce(t, hold)

	j1, _, err := srv.Submit(quickSpec(), "c")
	if err != nil {
		t.Fatal(err)
	}
	if !srv.Cancel(j1.ID) {
		t.Fatal("cancel failed")
	}
	j2, deduped, err := srv.Submit(quickSpec(), "c")
	if err != nil {
		t.Fatal(err)
	}
	if deduped || j2 == j1 {
		t.Fatalf("resubmission coalesced onto a canceled job")
	}
	release()
	waitDone(t, j2)
	if st := j2.State(); st != StateDone {
		t.Fatalf("fresh job ended %s", st)
	}
}
