package serve

// Crash-safety tests for the job index: a hard-stopped daemon (no
// drain, no journal) must come back with every completed job queryable
// and every interrupted job re-queued, torn WAL tails must replay
// cleanly, and a disk that refuses writes must degrade the index — not
// submissions. All run under -race in CI.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"racetrack/hifi/internal/engine/faultfs"
)

// crashStop emulates kill -9 as closely as an in-process test can: the
// index stops writing first (the WAL on disk stays exactly as the crash
// would leave it), then the runners are torn down without any of the
// drain protocol — no queued-spec journal, no compaction, no terminal
// records for whatever was in flight.
func (s *Server) crashStop() {
	s.index.seal()
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.baseCancel(errors.New("test: simulated crash"))
	s.wg.Wait()
}

// The tentpole property: submit jobs, hard-stop the daemon mid-queue,
// restart against the same cache directory, and observe (1) completed
// statuses restored and their tables re-served byte-identically with
// executed=0, (2) interrupted jobs re-queued under their original IDs,
// and (3) resubmissions of completed specs served from cache.
func TestCrashRecoveryRestoresAndRequeues(t *testing.T) {
	opts := testOptions(t)
	hold := make(chan struct{})
	opts.hold = hold
	release := closeOnce(t, hold)
	srv := New(opts)

	specA, specB, specC := quickSpec(), quickSpec(), quickSpec()
	specB.Seed = 2
	specC.Seed = 3

	jA, _, err := srv.Submit(specA, "c")
	if err != nil {
		t.Fatal(err)
	}
	hold <- struct{}{} // let exactly one runner take job A
	waitDone(t, jA)
	if st := jA.State(); st != StateDone {
		t.Fatalf("job A ended %s (%s)", st, jA.Status().Error)
	}
	wantText := jA.Text()

	jB, _, err := srv.Submit(specB, "c")
	if err != nil {
		t.Fatal(err)
	}
	jC, _, err := srv.Submit(specC, "c")
	if err != nil {
		t.Fatal(err)
	}

	// Freeze the WAL at the crash point BEFORE releasing the held
	// runners: whatever they do to B and C during teardown happens only
	// in the memory of a process that is "dead" — the on-disk index
	// still says admitted-but-never-finished, which is what a real
	// kill -9 leaves.
	srv.index.seal()
	release()
	srv.crashStop()

	// Restart against the same cache dir (same index path).
	opts2 := testOptions(t)
	opts2.CacheDir = opts.CacheDir
	srv2 := newTestServer(t, opts2)
	n, err := srv2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resume re-queued %d job(s), want 2", n)
	}

	// (1) The completed job answers across the restart.
	rA, ok := srv2.Job(jA.ID)
	if !ok {
		t.Fatalf("completed job %s not restored", jA.ID)
	}
	st := rA.Status()
	if !st.Restored || st.State != StateDone || st.FinishedTMS == 0 {
		t.Fatalf("restored status wrong: restored=%v state=%s finished=%d", st.Restored, st.State, st.FinishedTMS)
	}
	// Its tables re-materialize through the shared cache, byte-identical
	// and with zero executions.
	tables, _, err := srv2.tablesFor(rA)
	if err != nil {
		t.Fatal(err)
	}
	if tables == nil {
		t.Fatalf("restored job has no tables after materialization")
	}
	if got := rA.Text(); got != wantText {
		t.Fatalf("restored tables differ from the pre-crash run:\nrestored:\n%s\noriginal:\n%s", got, wantText)
	}
	if eng := rA.Status().Engine; eng == nil || eng.Executed != 0 {
		t.Fatalf("re-materialization executed simulations: %+v", eng)
	}

	// (2) Interrupted jobs run again under their original IDs.
	for _, orig := range []*Job{jB, jC} {
		rj, ok := srv2.Job(orig.ID)
		if !ok {
			t.Fatalf("interrupted job %s not re-queued", orig.ID)
		}
		if rj.Status().Restored {
			t.Fatalf("re-queued job %s marked restored", rj.ID)
		}
		waitDone(t, rj)
		if st := rj.State(); st != StateDone {
			t.Fatalf("re-queued job %s ended %s (%s)", rj.ID, st, rj.Status().Error)
		}
	}

	// (3) A resubmission of the completed spec is a fresh cache-served
	// job: executed stays zero.
	j2, deduped, err := srv2.Submit(specA, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Fatalf("resubmission coalesced onto a restored job")
	}
	waitDone(t, j2)
	if eng := j2.Status().Engine; eng == nil || eng.Executed != 0 {
		t.Fatalf("resubmitted spec executed simulations: %+v", eng)
	}
}

// A torn final line (the killed append) replays silently; a garbled
// middle record is skipped without poisoning its neighbors.
func TestIndexReplayTornTailAndGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.index.ndjson")
	spec := `{"run":["fig14"],"scaled":true,"accesses":300}`
	wal := `{"schema":"hifi_serve_index_v1"}
{"op":"admitted","id":"j0001","fingerprint":"f1","spec":` + spec + `,"t_ms":100}
{"op":"started","id":"j0001","t_ms":110}
{"op":"done","id":"j0001","t_ms":200}
this line is not JSON at all
{"op":"admitted","id":"j0002","fingerprint":"f2","spec":` + spec + `,"t_ms":300}
{"op":"started","id":"j0002","t_m` // torn mid-append: no newline, no close brace
	if err := os.WriteFile(path, []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}

	ix, restored := openIndex(path, nil, 0, indexTelemetry{}, nil)
	if ix.Degraded() {
		t.Fatalf("replayable index came up degraded")
	}
	if len(restored) != 2 {
		t.Fatalf("replayed %d job(s), want 2: %+v", len(restored), restored)
	}
	if restored[0].id != "j0001" || restored[0].state != StateDone || restored[0].finishedTMS != 200 {
		t.Fatalf("j0001 replayed wrong: %+v", restored[0])
	}
	// The torn started record is lost; j0002 degrades to its last intact
	// state (queued) — recoverable work, never wrong state.
	if restored[1].id != "j0002" || restored[1].state != StateQueued {
		t.Fatalf("j0002 replayed wrong: %+v", restored[1])
	}
}

// An unwritable index degrades to in-memory-only and must never fail a
// submission; /healthz reports the degradation.
func TestIndexDegradedNeverFailsSubmissions(t *testing.T) {
	for name, fsOpts := range map[string]faultfs.Options{
		"read-only":  {ReadOnly: true},
		"torn-every": {TornWriteEveryNth: 1},
	} {
		t.Run(name, func(t *testing.T) {
			opts := testOptions(t)
			opts.indexFS = faultfs.New(nil, fsOpts)
			srv := newTestServer(t, opts)

			j, _, err := srv.Submit(quickSpec(), "c")
			if err != nil {
				t.Fatalf("submission failed on a degraded index: %v", err)
			}
			waitDone(t, j)
			if st := j.State(); st != StateDone {
				t.Fatalf("job ended %s (%s)", st, j.Status().Error)
			}
			if !srv.index.Degraded() {
				t.Fatalf("index not degraded under %s faults", name)
			}
			var body strings.Builder
			if err := srv.health.WriteJSON(&body); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(body.String(), `"degraded":["job-index"]`) {
				t.Fatalf("healthz does not report the degraded index: %s", body.String())
			}
		})
	}
}

// Compaction keeps the WAL O(jobs) and heals a degraded index: the
// rewrite re-persists the full state a sick disk lost.
func TestIndexCompactionBoundsWALAndHeals(t *testing.T) {
	opts := testOptions(t)
	opts.indexCompactEvery = 2 // force compactions constantly
	srv := newTestServer(t, opts)

	var last *Job
	for i := 1; i <= 4; i++ {
		sp := quickSpec()
		sp.Seed = uint64(i)
		j, _, err := srv.Submit(sp, "c")
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		last = j
	}
	_ = last

	b, err := os.ReadFile(srv.indexPath())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(b), "\n")
	// 4 jobs × 3 transitions = 12 appends without compaction; with
	// compactEvery=2 the file must stay near one snapshot per job.
	if lines > 8 {
		t.Fatalf("compaction did not bound the WAL: %d lines\n%s", lines, b)
	}

	// Heal: a degraded index recovers when a compaction succeeds.
	srv.index.mu.Lock()
	srv.index.degraded = true
	srv.index.mu.Unlock()
	srv.compactIndex()
	if srv.index.Degraded() {
		t.Fatalf("successful compaction did not heal the degraded index")
	}

	// The compacted WAL replays to the full job set.
	_, restored := openIndex(srv.indexPath(), nil, 0, indexTelemetry{}, nil)
	if len(restored) != 4 {
		t.Fatalf("compacted WAL replays %d job(s), want 4", len(restored))
	}
	for _, r := range restored {
		if r.state != StateDone {
			t.Fatalf("replayed job %s is %s, want done", r.id, r.state)
		}
	}
}
