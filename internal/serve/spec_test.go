package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"racetrack/hifi/internal/experiments"
)

// Equivalent specs — different spelling, same run — must fingerprint
// identically; that equality is the cross-client dedup key.
func TestFingerprintNormalization(t *testing.T) {
	a := Spec{Run: []string{" FIG14 "}, Scaled: true}
	b := Spec{Run: []string{"fig14"}, Scaled: true, Seed: 1, Faults: "off", FaultIntensity: 1}
	na, err := a.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if na.Fingerprint() != nb.Fingerprint() {
		t.Fatalf("equivalent specs fingerprint differently:\n%+v\n%+v", na, nb)
	}

	c := b
	c.Seed = 2
	nc, err := c.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if nc.Fingerprint() == nb.Fingerprint() {
		t.Fatalf("different seeds share a fingerprint")
	}
}

func TestFingerprintFaultPlanWhitespace(t *testing.T) {
	a := Spec{Run: []string{"fig14"}, FaultPlan: json.RawMessage(`{ "seed": 3,   "injectors": [] }`)}
	b := Spec{Run: []string{"fig14"}, FaultPlan: json.RawMessage(`{"seed":3,"injectors":[]}`)}
	na, err := a.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if na.Fingerprint() != nb.Fingerprint() {
		t.Fatalf("fault-plan whitespace changed the fingerprint")
	}
}

func TestNormalizeEmptyRunMeansAll(t *testing.T) {
	n, err := Spec{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(n.Run, ","), strings.Join(experiments.Order(), ","); got != want {
		t.Fatalf("empty run normalized to %q, want every experiment", got)
	}
	if n.Seed != 1 || n.Faults != "off" || n.FaultIntensity != 1 {
		t.Fatalf("defaults not made explicit: %+v", n)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []Spec{
		{Run: []string{"fig99"}},                             // unknown experiment
		{Run: []string{"fig14"}, Accesses: -1},               // negative accesses
		{Run: []string{"fig14"}, MCTrials: -2},               // negative trials
		{Run: []string{"fig14"}, Faults: "no-such-preset"},   // bad preset
		{Run: []string{"fig14"}, FaultPlan: []byte(`{nope`)}, // bad plan JSON
	}
	for i, spec := range cases {
		if _, err := spec.Normalize(); err == nil {
			t.Errorf("case %d: %+v normalized without error", i, spec)
		}
	}
}

// RunOpts must mirror the CLI's flag application: a scaled spec starts
// from QuickRunOpts, overrides land on top.
func TestRunOptsMirrorsCLI(t *testing.T) {
	n, err := Spec{Run: []string{"fig14"}, Scaled: true, Accesses: 300, Seed: 7, MCTrials: 9}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.RunOpts()
	if err != nil {
		t.Fatal(err)
	}
	want := experiments.QuickRunOpts()
	want.AccessesPerCore = 300
	want.Seed = 7
	want.MCTrials = 9
	if got.AccessesPerCore != want.AccessesPerCore || got.Seed != want.Seed ||
		got.MCTrials != want.MCTrials || got.Scaled != want.Scaled {
		t.Fatalf("RunOpts mismatch: got %+v want %+v", got, want)
	}
	if got.FaultPlan != nil {
		t.Fatalf("faults off resolved to a non-nil plan")
	}
}
