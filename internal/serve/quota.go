package serve

// Per-client admission quotas: a classic token bucket per client key.
// The key is whatever identity the API layer extracted (Bearer token,
// X-API-Key, or the remote address as a fallback), so one noisy client
// is throttled without starving the others. Buckets refill continuously
// at Rate tokens per second up to Burst; a submission costs one token,
// and a client that is out of tokens gets a 429 with a Retry-After
// telling it exactly when the next token lands.

import (
	"math"
	"sync"
	"time"
)

// quotas tracks one token bucket per client key. The zero-value nil
// pointer disables quota enforcement entirely (allow always succeeds).
type quotas struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity (and the initial fill)

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newQuotas builds the bucket table, or nil (unlimited) when rate <= 0.
func newQuotas(rate float64, burst int) *quotas {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 1
	}
	return &quotas{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports false and how long until one token will have accumulated —
// the Retry-After the API layer returns. Nil-safe: a nil quotas always
// allows.
func (q *quotas) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[key]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	secs := deficit / q.rate
	// Round up to whole seconds: Retry-After is an integer header, and
	// "come back in 0s" would invite an immediate re-rejection.
	return false, time.Duration(math.Ceil(secs)) * time.Second
}

// refund returns one token to key's bucket (capped at burst). The
// server calls it when a submission that passed the quota gate is
// rejected downstream anyway (queue full, draining), so rejections that
// did no work cannot throttle the client out of its own retries.
// Nil-safe.
func (q *quotas) refund(key string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if b := q.buckets[key]; b != nil {
		b.tokens = math.Min(q.burst, b.tokens+1)
	}
}
