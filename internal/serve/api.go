package serve

// The HTTP surface. Routes (Go 1.22 method+wildcard patterns):
//
//	POST   /v1/jobs             submit a sweep spec (202, dedup-aware)
//	GET    /v1/jobs             list jobs, acceptance order
//	GET    /v1/jobs/{id}        pollable status (the SSE-gap fallback)
//	GET    /v1/jobs/{id}/tables rendered results (?format=text|csv|json)
//	GET    /v1/jobs/{id}/scorecard  fidelity scorecard for the tables
//	GET    /v1/jobs/{id}/events per-job SSE stream with replay
//	DELETE /v1/jobs/{id}        cancel
//	GET    /events              daemon-wide lifecycle SSE stream
//	GET    /healthz             enriched health (uptime, phase, in-flight)
//	GET    /metrics             Prometheus text exposition
//	GET    /slo                 SLO evaluation (hifi_slo_v1 burn-rate report)
//
// Admission maps typed Submit errors onto status codes: 400 invalid
// spec, 401 missing token (when required), 429 + Retry-After for quota
// and queue-full, 503 while draining. Every JSON body is written with
// the status-mux header contract (explicit charset, Cache-Control
// no-store).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"racetrack/hifi/internal/fidelity"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/telemetry/tracectx"
)

// maxSpecBody bounds a POST /v1/jobs body; real specs are tiny.
const maxSpecBody = 1 << 20

// drainGrace is how long a finished job's SSE stream stays open after
// the terminal event, so live subscribers drain their channel before
// the server closes the stream.
const drainGrace = 200 * time.Millisecond

// Handler builds the daemon's HTTP mux, wrapped in the observability
// middleware (middleware.go): every route — the mux's 404s included —
// gets a trace context, traceparent/X-Request-Id response headers, an
// access-log line, and RED metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/tables", s.handleTables)
	mux.HandleFunc("GET /v1/jobs/{id}/scorecard", s.handleScorecard)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.Handle("GET /events", events.Handler(s.bus))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /slo", s.handleSLO)
	return s.withObservability(mux)
}

// clientToken extracts the client identity a request carries: a Bearer
// token or an X-API-Key header. "" means anonymous.
func clientToken(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimSpace(strings.TrimPrefix(auth, "Bearer "))
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// clientKey is the quota key: the token when present, else the remote
// host, so anonymous clients on a tokenless server are still throttled
// per source.
func clientKey(r *http.Request) string {
	if tok := clientToken(r); tok != "" {
		return tok
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
		return
	}
	client := clientKey(r)
	if s.opts.RequireToken && clientToken(r) == "" {
		client = ""
	}
	// The middleware put the request's trace context — ingested or
	// minted — into the context; the job inherits it.
	tc, _ := tracectx.From(r.Context())
	job, deduped, err := s.SubmitTraced(spec, client, tc)
	if err != nil {
		var qe *QuotaError
		switch {
		case errors.Is(err, ErrTokenRequired):
			writeError(w, http.StatusUnauthorized, err)
		case errors.As(err, &qe):
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(qe.RetryAfter.Seconds())))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "2")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "10")
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	st := job.Status()
	st.Deduped = deduped
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	// tablesFor re-materializes a restored job's tables through the
	// shared cache first (executed=0 when nothing was evicted).
	tables, runs, err := s.tablesFor(j)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if tables == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; tables exist once it is done", j.ID, j.State()))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		if _, err := fmt.Fprint(w, j.Text()); err != nil {
			log.Debugf("serve: tables write: %v", err)
		}
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		for _, k := range runs {
			if _, err := fmt.Fprint(w, tables[k].CSV()); err != nil {
				log.Debugf("serve: tables write: %v", err)
				return
			}
		}
	case "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"schema": "hifi_serve_tables_v1",
			"runs":   runs,
			"tables": tables,
		})
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (text|csv|json)", format))
	}
}

func (s *Server) handleScorecard(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	tables, _, err := s.tablesFor(j)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if tables == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; the scorecard exists once it is done", j.ID, j.State()))
		return
	}
	sc := fidelity.Evaluate(fidelity.Anchors(), tables)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if _, err := w.Write(sc.JSON()); err != nil {
		log.Debugf("serve: scorecard write: %v", err)
	}
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	// The per-job stream ends shortly after the job does: the SSE
	// handler itself streams until the request context cancels, so
	// derive one that cancels a grace period after the terminal event.
	// j.Done() closes only after the terminal event is on the job bus
	// (finalize emits, then closes), so the grace strictly follows
	// terminal-event delivery. Clients treat the serve.job.* terminal
	// event as end-of-stream; the grace only exists so a live
	// subscriber's channel drains.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-j.Done():
			t := time.NewTimer(drainGrace)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
			cancel()
		case <-ctx.Done():
		}
	}()
	events.Handler(j.Bus).ServeHTTP(w, r.WithContext(ctx))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	if !s.Cancel(j.ID) {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is already %s", j.ID, j.State()))
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if err := s.health.WriteJSON(w); err != nil {
		log.Debugf("serve: /healthz write: %v", err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if s.opts.Metrics == nil {
		return
	}
	// Burn-rate gauges are computed, not incremented: refresh them so a
	// scrape always reads windows evaluated at scrape time.
	s.slo.Evaluate()
	if err := s.opts.Metrics.Snapshot().WritePrometheus(w); err != nil {
		log.Debugf("serve: /metrics write: %v", err)
	}
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if err := s.SLOReport().WriteJSON(w); err != nil {
		log.Debugf("serve: /slo write: %v", err)
	}
}

// writeJSON renders v with the status-route header contract.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Debugf("serve: response write: %v", err)
	}
}

// writeError renders one error as a JSON body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
