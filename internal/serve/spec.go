// Package serve is the multi-tenant sweep daemon behind cmd/hifi-serve:
// an HTTP/JSON job API over the existing experiment stack. Clients POST
// sweep specs, the server runs them through internal/experiments on the
// parallel engine with one shared content-addressed cache, and results
// come back three ways — pollable JSON status, rendered tables that are
// byte-identical to a direct hifi-experiments run, and a per-job SSE
// event stream with Last-Event-ID replay.
//
// Tenancy is cheap because the platform underneath is deterministic:
// identical specs fingerprint identically, a spec submitted while an
// equal one is queued or running coalesces onto that job, and a spec
// resubmitted after completion re-runs through the shared cache and
// executes nothing. Admission control (a bounded queue and per-client
// token buckets) and graceful drain (journal the queue, finish what is
// running) make the daemon safe to put in front of more clients than
// the machine could serve naively. See docs/serve.md.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/faults"
)

// SpecSchema versions the spec fingerprint; bump it when the normalized
// encoding below changes shape, so old and new daemons never conflate
// differently-normalized specs.
const SpecSchema = 1

// Spec is one sweep request: which experiments to run and the knobs the
// hifi-experiments CLI exposes for them. The zero value of every field
// means "the CLI default", so a minimal {"run":["fig14"]} body behaves
// exactly like `hifi-experiments -run fig14`.
type Spec struct {
	// Run lists experiment keys (see `hifi-experiments -list`); empty
	// means all of them, in canonical order.
	Run []string `json:"run,omitempty"`
	// Scaled selects the scaled-down hierarchy (CLI -scaled).
	Scaled bool `json:"scaled,omitempty"`
	// Accesses is the trace length per core (CLI -accesses; 0 default).
	Accesses int `json:"accesses,omitempty"`
	// Seed selects the trace family (CLI -seed; 0 means the default, 1).
	Seed uint64 `json:"seed,omitempty"`
	// MCTrials is the fig4 Monte-Carlo trial count (CLI -mc-trials).
	MCTrials int `json:"mc_trials,omitempty"`
	// Faults names a fault-injection preset (CLI -faults; "" = "off").
	Faults string `json:"faults,omitempty"`
	// FaultPlan is an inline fault plan, overriding the preset exactly
	// like -fault-plan overrides -faults.
	FaultPlan json.RawMessage `json:"fault_plan,omitempty"`
	// FaultIntensity scales the plan (CLI -fault-intensity; 0 means 1).
	FaultIntensity float64 `json:"fault_intensity,omitempty"`
}

// Normalize returns the spec in canonical form: run keys trimmed,
// lowercased, and expanded (empty Run → every experiment), defaults
// made explicit where the CLI would apply them anyway (Seed 0 → 1,
// FaultIntensity 0 → 1, Faults "" → "off"), and the inline fault plan
// compacted. Two specs that would run identically normalize to equal
// values, which is what makes Fingerprint a dedup key.
func (s Spec) Normalize() (Spec, error) {
	n := s
	if len(s.Run) == 0 {
		n.Run = experiments.Order()
	} else {
		n.Run = make([]string, 0, len(s.Run))
		for _, k := range s.Run {
			k = strings.TrimSpace(strings.ToLower(k))
			if k != "" {
				n.Run = append(n.Run, k)
			}
		}
		if len(n.Run) == 0 {
			n.Run = experiments.Order()
		}
	}
	if n.Accesses < 0 {
		return Spec{}, fmt.Errorf("serve: accesses must be >= 0, got %d", n.Accesses)
	}
	if n.MCTrials < 0 {
		return Spec{}, fmt.Errorf("serve: mc_trials must be >= 0, got %d", n.MCTrials)
	}
	if n.Seed == 0 {
		n.Seed = 1 // the CLI default; 0 would fall through to it anyway
	}
	if n.Faults == "" {
		n.Faults = "off"
	}
	if n.FaultIntensity == 0 {
		n.FaultIntensity = 1
	}
	if len(n.FaultPlan) > 0 {
		var buf bytes.Buffer
		if err := json.Compact(&buf, n.FaultPlan); err != nil {
			return Spec{}, fmt.Errorf("serve: fault_plan: %w", err)
		}
		n.FaultPlan = json.RawMessage(buf.Bytes())
	}
	valid := make(map[string]bool)
	for _, k := range experiments.Order() {
		valid[k] = true
	}
	var unknown []string
	for _, k := range n.Run {
		if !valid[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		return Spec{}, fmt.Errorf("serve: unknown experiment(s): %s (valid: %s)",
			strings.Join(unknown, ", "), strings.Join(experiments.Order(), " "))
	}
	// Resolving the plan now surfaces bad plans/presets/intensities at
	// admission (HTTP 400) instead of as a failed job later.
	if _, err := n.Plan(); err != nil {
		return Spec{}, fmt.Errorf("serve: %w", err)
	}
	return n, nil
}

// Plan resolves the spec's fault-plan sources with the same precedence
// as the CLI flags (faults.Resolve), so a spec and the equivalent flag
// set produce byte-identical canonical plans — and therefore identical
// engine cache fingerprints.
func (s Spec) Plan() (*faults.Plan, error) {
	intensity := s.FaultIntensity
	if intensity == 0 {
		intensity = 1
	}
	return faults.Resolve(s.Faults, s.FaultPlan, intensity)
}

// Fingerprint content-addresses the normalized spec: the sha256 (hex)
// of its canonical JSON under the spec schema. Equal fingerprints mean
// "this sweep would run identically", which is the server's dedup key
// across clients. Call on a normalized spec.
func (s Spec) Fingerprint() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; a marshal failure is a programming error.
		panic(fmt.Sprintf("serve: spec fingerprint: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "hifi-serve-spec/%d|", SpecSchema)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// RunOpts builds the experiments options exactly as cmd/hifi-experiments
// builds them from the equivalent flags — same default structs, same
// override order — so the rendered tables are byte-identical to a
// direct CLI run. Call on a normalized spec.
func (s Spec) RunOpts() (experiments.RunOpts, error) {
	opts := experiments.DefaultRunOpts()
	if s.Scaled {
		opts = experiments.QuickRunOpts()
	}
	if s.Accesses > 0 {
		opts.AccessesPerCore = s.Accesses
	}
	if s.Seed != 0 {
		opts.Seed = s.Seed
	}
	if s.MCTrials > 0 {
		opts.MCTrials = s.MCTrials
	}
	plan, err := s.Plan()
	if err != nil {
		return opts, err
	}
	opts.FaultPlan = plan
	return opts, nil
}
