package serve

// The crash-safe job index: an append-only NDJSON write-ahead log
// (hifi_serve_index_v1) under the cache directory that records every
// admission, start, and terminal transition the daemon performs. A
// graceful drain already journals still-queued specs; the index is the
// stronger property — after a kill -9, a restart with -resume can
//
//   - restore every completed job's status (GET /v1/jobs/{id} keeps
//     answering across restarts; tables re-materialize lazily through
//     the shared content-addressed cache with executed=0), and
//   - re-queue every job that was queued or running when the process
//     died, under its original ID and trace.
//
// The file format mirrors the engine's sweep journal: a schema header
// line, then one self-delimiting JSON record per line, flushed per
// append. Replay tolerates the two damage modes a crash can leave:
// a torn final line (ignored silently — everything before it is intact
// by construction) and garbled middle records (skipped and counted in
// hifi_serve_index_skipped_total; the jobs they describe degrade to
// "not recovered", never to wrong state).
//
// All I/O goes through engine.FS so the faultfs chaos tests can
// exercise torn appends and EIO. A write failure (ENOSPC, EIO, a
// read-only disk) must never fail a submission: the index degrades to
// in-memory-only with a warn-once log, surfaces in /healthz as
// "degraded":["job-index"], and feeds the index_durability SLO. A later
// successful compaction — which rewrites the whole state from memory —
// restores durability, so a disk that recovers (an operator freeing
// space) heals the index without a restart. See docs/serve.md
// ("Restart recovery & the job index").

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"

	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
)

// IndexSchemaV1 stamps the job-index WAL's header line.
const IndexSchemaV1 = "hifi_serve_index_v1"

// indexCompactEvery is the default append count between compactions: a
// long-lived daemon's index stays O(jobs), not O(transitions).
const indexCompactEvery = 4096

// Record ops. Terminal transitions use the State strings verbatim
// (done/failed/canceled) so the record reads as the job's final state.
const (
	opAdmitted = "admitted"
	opStarted  = "started"
	opRequeued = "requeued" // restart recovery re-queued an interrupted job
	opSnapshot = "snapshot" // compaction: one authoritative record per job
)

// indexRecord is one WAL line. The header line carries only Schema;
// every other line carries Op + ID and whatever the op needs. Snapshot
// records are self-contained (spec, state, all timestamps), so a
// compacted index replays without any earlier history.
type indexRecord struct {
	Schema      string `json:"schema,omitempty"`
	Op          string `json:"op,omitempty"`
	ID          string `json:"id,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	TraceID     string `json:"trace_id,omitempty"`
	Spec        *Spec  `json:"spec,omitempty"`
	State       State  `json:"state,omitempty"`
	Detail      string `json:"detail,omitempty"`
	TMS         int64  `json:"t_ms,omitempty"`
	CreatedTMS  int64  `json:"created_t_ms,omitempty"`
	StartedTMS  int64  `json:"started_t_ms,omitempty"`
	FinishedTMS int64  `json:"finished_t_ms,omitempty"`
}

// restoredJob is one job reconstructed by replay: enough to restore a
// terminal job's status, or to re-queue an interrupted one.
type restoredJob struct {
	id          string
	fingerprint string
	trace       string
	spec        Spec
	state       State
	detail      string
	createdTMS  int64
	startedTMS  int64
	finishedTMS int64
}

type indexTelemetry struct {
	records     *telemetry.Counter
	writeErrors *telemetry.Counter
	replayed    *telemetry.Counter
	skipped     *telemetry.Counter
	compactions *telemetry.Counter
}

func newIndexTelemetry(reg *telemetry.Registry) indexTelemetry {
	return indexTelemetry{
		records:     reg.Counter(telemetry.MetricServeIndexRecords, "job-index records appended to the WAL"),
		writeErrors: reg.Counter(telemetry.MetricServeIndexWriteErrors, "job-index appends that failed to reach disk"),
		replayed:    reg.Counter(telemetry.MetricServeIndexReplayed, "jobs reconstructed from the index on startup"),
		skipped:     reg.Counter(telemetry.MetricServeIndexSkipped, "corrupt or orphaned index records skipped on replay"),
		compactions: reg.Counter(telemetry.MetricServeIndexCompactions, "index compactions (WAL rewritten as one snapshot per job)"),
	}
}

// jobIndex is the WAL writer. Appends are serialized by mu; a failed
// append flips degraded (in-memory-only until a compaction succeeds).
type jobIndex struct {
	path         string
	fsys         engine.FS
	compactEvery int
	tel          indexTelemetry
	// observe feeds the index_durability SLO one outcome per append
	// attempt (nil disables).
	observe func(ok bool)

	mu       sync.Mutex
	w        io.WriteCloser
	appends  int // records since open/compaction (counted even while degraded, so compaction still triggers and can heal)
	degraded bool
	sealed   bool // test-only crash emulation: drop all further writes
}

// openIndex replays the WAL at path and opens it for appending. It
// never fails the daemon: replay errors restore nothing and an
// unopenable file starts the index degraded (in-memory-only), both with
// a log line. Restored jobs come back sorted by numeric job ID.
func openIndex(path string, fsys engine.FS, compactEvery int, tel indexTelemetry, observe func(ok bool)) (*jobIndex, []restoredJob) {
	if fsys == nil {
		fsys = engine.OS()
	}
	if compactEvery <= 0 {
		compactEvery = indexCompactEvery
	}
	ix := &jobIndex{path: path, fsys: fsys, compactEvery: compactEvery, tel: tel, observe: observe}

	var restored []restoredJob
	content, err := fsys.ReadFile(path)
	switch {
	case err == nil:
		restored = ix.replay(content)
	case isNotExist(err):
		// First boot on this cache dir: nothing to replay.
	default:
		log.Errorf("serve: job index %s unreadable: %v; starting without recovered jobs", path, err)
	}

	w, err := fsys.OpenAppend(path, false)
	if err != nil {
		ix.degraded = true
		ix.tel.writeErrors.Inc()
		log.Errorf("serve: job index %s unwritable: %v; continuing in-memory only (restart recovery disabled)", path, err)
		return ix, restored
	}
	ix.w = w
	if len(content) == 0 {
		ix.writeHeaderLocked()
	}
	return ix, restored
}

func isNotExist(err error) bool {
	// faultfs wraps errors with %w, so errors.Is sees through it.
	return errors.Is(err, fs.ErrNotExist)
}

// replay folds the WAL's lines into per-job state, torn-tail tolerant.
func (ix *jobIndex) replay(content []byte) []restoredJob {
	byID := map[string]*restoredJob{}
	var order []string
	skip := 0
	torn := len(content) > 0 && content[len(content)-1] != '\n'
	lines := bytes.Split(content, []byte{'\n'})
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
		torn = false
	}
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var rec indexRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if torn && i == len(lines)-1 {
				break // the torn tail of a killed append: expected damage
			}
			skip++
			log.Errorf("serve: index %s: skipping corrupt record at line %d: %v", ix.path, i+1, err)
			continue
		}
		if rec.Schema != "" {
			if rec.Schema != IndexSchemaV1 {
				log.Errorf("serve: index %s: unknown schema %q; ignoring the rest", ix.path, rec.Schema)
				break
			}
			continue
		}
		if rec.ID == "" {
			skip++
			continue
		}
		r := byID[rec.ID]
		switch rec.Op {
		case opAdmitted, opSnapshot:
			if rec.Spec == nil {
				skip++
				continue
			}
			if r == nil {
				r = &restoredJob{id: rec.ID}
				byID[rec.ID] = r
				order = append(order, rec.ID)
			}
			r.fingerprint = rec.Fingerprint
			r.trace = rec.TraceID
			r.spec = *rec.Spec
			if rec.Op == opSnapshot {
				r.state = rec.State
				r.detail = rec.Detail
				r.createdTMS = rec.CreatedTMS
				r.startedTMS = rec.StartedTMS
				r.finishedTMS = rec.FinishedTMS
			} else {
				r.state = StateQueued
				r.createdTMS = rec.TMS
			}
		case opRequeued:
			if r == nil {
				skip++ // orphan: the admitted/snapshot record is gone
				continue
			}
			r.state = StateQueued
			r.detail = ""
			r.startedTMS, r.finishedTMS = 0, 0
		case opStarted:
			if r == nil {
				skip++
				continue
			}
			r.state = StateRunning
			r.startedTMS = rec.TMS
		case string(StateDone), string(StateFailed), string(StateCanceled):
			if r == nil {
				skip++
				continue
			}
			r.state = State(rec.Op)
			r.detail = rec.Detail
			r.finishedTMS = rec.TMS
		default:
			skip++
			log.Errorf("serve: index %s: skipping record with unknown op %q at line %d", ix.path, rec.Op, i+1)
		}
	}
	out := make([]restoredJob, 0, len(order))
	for _, id := range order {
		r := byID[id]
		if !r.state.Terminal() && r.state != StateQueued && r.state != StateRunning {
			skip++
			continue
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return jobIDNum(out[i].id) < jobIDNum(out[j].id) })
	ix.tel.replayed.Add(float64(len(out)))
	if skip > 0 {
		ix.tel.skipped.Add(float64(skip))
	}
	return out
}

// jobIDNum extracts the numeric part of a "j%04d" job ID (0 when the ID
// does not match — such jobs sort first but never collide with minted
// IDs, which always carry a number).
func jobIDNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// maxRecoveredID is the highest numeric job ID among restored jobs; the
// server continues minting above it so recovered and new jobs never
// collide in the table or the WAL.
func maxRecoveredID(restored []restoredJob) int {
	max := 0
	for _, r := range restored {
		if n := jobIDNum(r.id); n > max {
			max = n
		}
	}
	return max
}

// append writes one record to the WAL. Failures degrade the index to
// in-memory-only (warn once); they are never surfaced to the admission
// path — losing durability must not lose the submission.
func (ix *jobIndex) append(rec indexRecord) {
	if ix == nil {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.sealed {
		return
	}
	// Count the record whether or not it reaches disk: compaction
	// triggers on the same schedule either way, and a successful
	// compaction is exactly what heals a degraded index.
	ix.appends++
	if ix.degraded || ix.w == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		// Records are plain data; this is a programming error, but the
		// daemon must not die for it.
		log.Errorf("serve: index: marshal: %v", err)
		return
	}
	if _, err := ix.w.Write(append(b, '\n')); err != nil {
		ix.degraded = true
		ix.tel.writeErrors.Inc()
		if ix.observe != nil {
			ix.observe(false)
		}
		log.Errorf("serve: index %s: append failed: %v; continuing in-memory only "+
			"(restart recovery suspended until a compaction succeeds)", ix.path, err)
		return
	}
	ix.tel.records.Inc()
	if ix.observe != nil {
		ix.observe(true)
	}
}

// shouldCompact reports whether enough records accumulated since the
// last compaction. Nil-safe.
func (ix *jobIndex) shouldCompact() bool {
	if ix == nil {
		return false
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.appends >= ix.compactEvery
}

// compactWith rewrites the WAL as a header plus the snapshot records
// gather returns, atomically (temp file + rename), then reopens the
// appender. gather runs under the index lock, so any state transition
// whose record has not yet been appended is already visible to it —
// the snapshot can never miss a transition, only duplicate one (the
// blocked append lands in the new file, where replay treats it as a
// no-op update). A successful compaction clears degraded: the rewrite
// re-persisted everything appends lost.
func (ix *jobIndex) compactWith(gather func() []indexRecord) {
	if ix == nil {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.sealed {
		return
	}
	recs := gather()
	var buf bytes.Buffer
	hdr, _ := json.Marshal(indexRecord{Schema: IndexSchemaV1})
	buf.Write(hdr)
	buf.WriteByte('\n')
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			log.Errorf("serve: index compact: marshal %s: %v", rec.ID, err)
			continue
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	tmp := ix.path + ".compact"
	if err := ix.fsys.WriteFile(tmp, buf.Bytes()); err != nil {
		log.Errorf("serve: index compact: %v (keeping the append-only file)", err)
		ix.appends = 0 // don't retry every transition on a sick disk
		return
	}
	if err := ix.fsys.Rename(tmp, ix.path); err != nil {
		log.Errorf("serve: index compact: %v (keeping the append-only file)", err)
		_ = ix.fsys.Remove(tmp)
		ix.appends = 0
		return
	}
	if ix.w != nil {
		_ = ix.w.Close()
	}
	w, err := ix.fsys.OpenAppend(ix.path, false)
	if err != nil {
		// The compacted file is intact on disk; only live appends stop.
		ix.w = nil
		ix.degraded = true
		ix.tel.writeErrors.Inc()
		log.Errorf("serve: index %s: reopen after compaction: %v; continuing in-memory only", ix.path, err)
		return
	}
	ix.w = w
	ix.appends = 0
	if ix.degraded {
		log.Infof("serve: index %s: compaction succeeded; durability restored", ix.path)
	}
	ix.degraded = false
	ix.tel.compactions.Inc()
}

// writeHeaderLocked stamps a fresh WAL. Caller holds no lock during
// openIndex (single-threaded); named for the invariant, not a mutex.
func (ix *jobIndex) writeHeaderLocked() {
	hdr, _ := json.Marshal(indexRecord{Schema: IndexSchemaV1})
	if _, err := ix.w.Write(append(hdr, '\n')); err != nil {
		ix.degraded = true
		ix.tel.writeErrors.Inc()
		log.Errorf("serve: index %s: header write failed: %v; continuing in-memory only", ix.path, err)
	}
}

// Degraded reports whether the index has fallen back to in-memory-only
// operation. Nil-safe (a server without a cache dir has no index and is
// not degraded — it never promised durability).
func (ix *jobIndex) Degraded() bool {
	if ix == nil {
		return false
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.degraded
}

// seal emulates the process dying (tests only): every later append and
// compaction is dropped, leaving the on-disk WAL exactly as a kill -9
// would. Nil-safe.
func (ix *jobIndex) seal() {
	if ix == nil {
		return
	}
	ix.mu.Lock()
	ix.sealed = true
	ix.mu.Unlock()
}
