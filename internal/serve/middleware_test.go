package serve

// End-to-end request correlation: one trace ID, minted or ingested at
// the HTTP edge, must appear in the response headers, the job status,
// the access log, and every event on the job's SSE stream.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the access log writes
// from handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitTerminal polls GET /v1/jobs/{id} until the job is terminal and
// returns the final status.
func waitTerminal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		_, body := getBody(t, base+"/v1/jobs/"+id)
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status decode: %v: %s", err, body)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func TestTraceCorrelationEndToEnd(t *testing.T) {
	alog := &syncBuffer{}
	opts := testOptions(t)
	opts.AccessLog = alog
	opts.TraceSeed = 42 // deterministic minted IDs
	srv := newTestServer(t, opts)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	trace := resp.Header.Get(RequestIDHeader)
	if len(trace) != 32 {
		t.Fatalf("X-Request-Id %q: want a 32-hex trace ID", trace)
	}
	if tp := resp.Header.Get("traceparent"); !strings.HasPrefix(tp, "00-"+trace+"-") {
		t.Fatalf("traceparent %q does not carry trace ID %s", tp, trace)
	}

	// The submit response's job status carries the same trace ID.
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != trace {
		t.Fatalf("job status trace_id %q, want %q", st.TraceID, trace)
	}

	// ...and so does the status after completion.
	final := waitTerminal(t, ts.URL, st.ID)
	if final.TraceID != trace {
		t.Fatalf("final status trace_id %q, want %q", final.TraceID, trace)
	}
	if final.State != StateDone {
		t.Fatalf("job state %s (%s), want done", final.State, final.Error)
	}

	// Every event on the job's SSE stream — serve lifecycle AND the
	// engine's own events — is stamped with the trace ID.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sresp.Body.Close() }()
	n := 0
	for _, line := range strings.Split(readAllString(t, sresp), "\n") {
		if !strings.HasPrefix(line, "data:") {
			continue
		}
		var e events.Event
		if err := json.Unmarshal([]byte(strings.TrimSpace(strings.TrimPrefix(line, "data:"))), &e); err != nil {
			t.Fatalf("event decode: %v: %s", err, line)
		}
		if e.TraceID != trace {
			t.Fatalf("event %s seq %d carries trace %q, want %q", e.Type, e.Seq, e.TraceID, trace)
		}
		n++
	}
	if n < 3 { // at least accepted, started, finished
		t.Fatalf("SSE replay yielded only %d events", n)
	}

	// The access log: a schema header line, then the submit line keyed
	// by the same trace ID.
	lines := strings.Split(strings.TrimSpace(alog.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("access log has %d lines, want header + records:\n%s", len(lines), alog.String())
	}
	var hdr accessHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Schema != AccessSchemaV1 {
		t.Fatalf("access log header %q (err %v), want schema %s", lines[0], err, AccessSchemaV1)
	}
	found := false
	for _, line := range lines[1:] {
		var rec accessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access record decode: %v: %s", err, line)
		}
		if rec.TraceID == trace {
			found = true
			if rec.Route != "POST /v1/jobs" || rec.Status != http.StatusAccepted {
				t.Fatalf("submit access record %+v: want route 'POST /v1/jobs' status 202", rec)
			}
			if rec.DurMS < 0 || rec.Bytes <= 0 {
				t.Fatalf("submit access record %+v: want positive bytes, non-negative duration", rec)
			}
		}
	}
	if !found {
		t.Fatalf("no access-log record carries trace %s:\n%s", trace, alog.String())
	}
}

func readAllString(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// A client-supplied traceparent is ingested: the daemon continues that
// trace instead of minting its own, and the job inherits it.
func TestTraceparentIngested(t *testing.T) {
	srv := newTestServer(t, testOptions(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	hdr := map[string]string{"traceparent": "00-" + callerTrace + "-00f067aa0ba902b7-01"}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300}`, hdr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	if got := resp.Header.Get(RequestIDHeader); got != callerTrace {
		t.Fatalf("X-Request-Id %q, want the caller's trace %q", got, callerTrace)
	}
	// The returned traceparent continues the trace through a NEW span.
	tp := resp.Header.Get("traceparent")
	if !strings.HasPrefix(tp, "00-"+callerTrace+"-") || strings.Contains(tp, "00f067aa0ba902b7") {
		t.Fatalf("response traceparent %q: want same trace, fresh span", tp)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != callerTrace {
		t.Fatalf("job trace_id %q, want ingested %q", st.TraceID, callerTrace)
	}
	// A malformed traceparent is treated as absent, not an error.
	bad := map[string]string{"traceparent": "00-bogus"}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300,"seed":9}`, bad)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("malformed traceparent: %s: %s", resp.Status, body)
	}
	if got := resp.Header.Get(RequestIDHeader); len(got) != 32 || got == callerTrace {
		t.Fatalf("malformed traceparent: X-Request-Id %q, want a fresh minted ID", got)
	}
}

// Correlation headers ride every response: errors, auth failures, and
// the mux's own 404s.
func TestHeadersOnErrorResponses(t *testing.T) {
	opts := testOptions(t)
	opts.RequireToken = true
	srv := newTestServer(t, opts)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	check := func(resp *http.Response, wantCode int, what string) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Fatalf("%s: %s, want %d", what, resp.Status, wantCode)
		}
		if len(resp.Header.Get(RequestIDHeader)) != 32 {
			t.Fatalf("%s: missing/short X-Request-Id %q", what, resp.Header.Get(RequestIDHeader))
		}
		if resp.Header.Get("traceparent") == "" {
			t.Fatalf("%s: missing traceparent", what)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300}`, nil)
	check(resp, http.StatusUnauthorized, "anonymous submit")
	resp, _ = getBody(t, ts.URL+"/v1/jobs/j9999")
	check(resp, http.StatusNotFound, "missing job")
	resp, _ = getBody(t, ts.URL+"/no/such/route")
	check(resp, http.StatusNotFound, "mux 404")
}

func TestRouteLabel(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"POST", "/v1/jobs", "POST /v1/jobs"},
		{"GET", "/v1/jobs", "GET /v1/jobs"},
		{"GET", "/v1/jobs/j0001", "GET /v1/jobs/{id}"},
		{"DELETE", "/v1/jobs/j0001", "DELETE /v1/jobs/{id}"},
		{"GET", "/v1/jobs/j0001/tables", "GET /v1/jobs/{id}/tables"},
		{"GET", "/v1/jobs/j0001/scorecard", "GET /v1/jobs/{id}/scorecard"},
		{"GET", "/v1/jobs/j0001/events", "GET /v1/jobs/{id}/events"},
		{"GET", "/events", "GET /events"},
		{"GET", "/healthz", "GET /healthz"},
		{"GET", "/metrics", "GET /metrics"},
		{"GET", "/slo", "GET /slo"},
		// Unknown shapes collapse — path cardinality must stay bounded.
		{"GET", "/v1/jobs/j0001/nope", "GET other"},
		{"GET", "/v1/jobs/", "GET other"},
		{"GET", "/anything/else", "GET other"},
	}
	for _, c := range cases {
		r := httptest.NewRequest(c.method, c.path, nil)
		if got := routeLabel(r); got != c.want {
			t.Errorf("routeLabel(%s %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
}

// RED metrics land on /metrics under the bounded route labels, and /slo
// serves the burn-rate report fed by the same requests.
func TestREDMetricsAndSLORoute(t *testing.T) {
	srv := newTestServer(t, testOptions(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: %s", resp.Status)
		}
	}
	getBody(t, ts.URL+"/v1/jobs/j9999") // a 404, still counted

	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`hifi_serve_http_requests_total{route="GET /healthz",code="200"} 3`,
		`hifi_serve_http_requests_total{route="GET /v1/jobs/{id}",code="404"} 1`,
		`hifi_serve_http_request_ms_count{route="GET /healthz"} 3`,
		`hifi_slo_burn_rate{slo="availability",window="5m"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	resp, body := getBody(t, ts.URL+"/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/slo: %s", resp.Status)
	}
	var rep struct {
		Schema     string `json:"schema"`
		Objectives []struct {
			Name    string `json:"name"`
			Windows []struct {
				Window   string  `json:"window"`
				Good     int     `json:"good"`
				BurnRate float64 `json:"burn_rate"`
			} `json:"windows"`
		} `json:"objectives"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("/slo decode: %v: %s", err, body)
	}
	if rep.Schema != "hifi_slo_v1" {
		t.Fatalf("/slo schema %q", rep.Schema)
	}
	byName := map[string]bool{}
	for _, o := range rep.Objectives {
		byName[o.Name] = true
		if len(o.Windows) != 2 {
			t.Fatalf("objective %s has %d windows, want 2", o.Name, len(o.Windows))
		}
	}
	for _, want := range []string{"availability", "submit_latency", "job_completion"} {
		if !byName[want] {
			t.Fatalf("/slo missing objective %s: %v", want, byName)
		}
	}
	// All traffic so far was non-5xx: availability must not be burning.
	for _, o := range rep.Objectives {
		if o.Name != sloAvailability {
			continue
		}
		if w := o.Windows[0]; w.Good < 4 || w.BurnRate != 0 {
			t.Fatalf("availability 5m window %+v: want >=4 good, burn 0", w)
		}
	}
}

// The submit-latency SLO observes accepted submissions.
func TestSubmitLatencySLOObserved(t *testing.T) {
	srv := newTestServer(t, testOptions(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"run":["fig14"],"scaled":true,"accesses":300}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	name := telemetry.Label(telemetry.MetricSLOGood, "slo", sloSubmitLatency)
	if got, ok := srv.opts.Metrics.Snapshot().Lookup(name); !ok || got != 1 {
		t.Fatalf("%s = %v (ok=%v), want 1", name, got, ok)
	}
}
