package serve

// HTTP observability middleware: the single wrapper around the daemon's
// mux that (1) ingests or mints a W3C trace context per request and
// threads it through context.Context, (2) echoes traceparent and
// X-Request-Id on every response — including errors, 429s, and the
// mux's own 404s, (3) records per-route RED metrics (rate, errors,
// duration), (4) appends one hifi_access_v1 NDJSON line per request to
// the access log, and (5) feeds the availability and submit-latency
// SLOs. It is the only place a request's trace ID is decided; every
// layer below (handlers, jobs, engines, buses, spans) inherits it.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/telemetry/tracectx"
)

// AccessSchemaV1 stamps the access log's NDJSON header line.
const AccessSchemaV1 = "hifi_access_v1"

// RequestIDHeader carries the bare 32-hex trace ID on every response —
// the greppable handle; traceparent carries the full W3C context.
const RequestIDHeader = "X-Request-Id"

// accessRecord is one hifi_access_v1 line.
type accessRecord struct {
	TMS     int64  `json:"t_ms"`
	TraceID string `json:"trace_id"`
	Client  string `json:"client,omitempty"`
	Route   string `json:"route"`
	Method  string `json:"method"`
	Path    string `json:"path"`
	Status  int    `json:"status"`
	Bytes   int64  `json:"bytes"`
	DurMS   int64  `json:"dur_ms"`
}

// accessHeader is the first line of the access log, mirroring the
// events/timeseries NDJSON convention: a schema stamp before any data.
type accessHeader struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
}

// accessLog serializes NDJSON lines onto one writer and writes the
// schema header before the first record. A nil *accessLog is a no-op.
type accessLog struct {
	mu     sync.Mutex
	w      io.Writer
	headed bool
	err    error // first write failure; later lines are skipped
}

func newAccessLog(w io.Writer) *accessLog {
	if w == nil {
		return nil
	}
	return &accessLog{w: w}
}

func (l *accessLog) record(rec accessRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if !l.headed {
		l.headed = true
		if l.err = writeJSONLine(l.w, accessHeader{Schema: AccessSchemaV1, Tool: "hifi-serve"}); l.err != nil {
			log.Errorf("serve: access log: %v; disabling", l.err)
			return
		}
	}
	if l.err = writeJSONLine(l.w, rec); l.err != nil {
		log.Errorf("serve: access log: %v; disabling", l.err)
	}
}

func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// statusRecorder captures the status code and body size flowing through
// the middleware. Unwrap keeps http.NewResponseController working — the
// SSE handlers flush through it — and WriteHeader/Write record
// first-wins status like net/http itself.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// routeLabel maps a request onto the bounded route vocabulary used as
// the metrics "route" label and the access log's route field. It must
// stay bounded — arbitrary request paths must not mint new series — so
// anything off the route table collapses to "other". (The mux pattern
// via http.Request.Pattern would be the natural source, but that API
// postdates this module's language version.)
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/v1/jobs", "/events", "/healthz", "/metrics", "/slo":
		return r.Method + " " + p
	}
	if rest, ok := strings.CutPrefix(p, "/v1/jobs/"); ok && rest != "" {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch sub := rest[i:]; sub {
			case "/tables", "/scorecard", "/events":
				return r.Method + " /v1/jobs/{id}" + sub
			}
			return r.Method + " other"
		}
		return r.Method + " /v1/jobs/{id}"
	}
	return r.Method + " other"
}

// httpLatencyBuckets spans sub-millisecond status reads through
// multi-second sweep submissions (upper bounds in milliseconds).
func httpLatencyBuckets() []float64 {
	return []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
}

// httpTelemetry lazily interns the per-route RED instruments so the
// hot path is two map lookups under one mutex, not two fmt.Sprintf
// label renders per request.
type httpTelemetry struct {
	reg *telemetry.Registry

	mu       sync.Mutex
	requests map[string]*telemetry.Counter   // route+code
	errors   map[string]*telemetry.Counter   // route
	latency  map[string]*telemetry.Histogram // route
}

func newHTTPTelemetry(reg *telemetry.Registry) *httpTelemetry {
	return &httpTelemetry{
		reg:      reg,
		requests: map[string]*telemetry.Counter{},
		errors:   map[string]*telemetry.Counter{},
		latency:  map[string]*telemetry.Histogram{},
	}
}

func (t *httpTelemetry) observe(route string, status int, durMS float64) {
	if t == nil || t.reg == nil {
		return
	}
	code := fmt.Sprintf("%d", status)
	t.mu.Lock()
	req, ok := t.requests[route+" "+code]
	if !ok {
		name := telemetry.Label(telemetry.Label(telemetry.MetricServeHTTPRequests, "route", route), "code", code)
		req = t.reg.Counter(name, "HTTP requests served, by route and status code")
		t.requests[route+" "+code] = req
	}
	lat, ok := t.latency[route]
	if !ok {
		lat = t.reg.Histogram(telemetry.Label(telemetry.MetricServeHTTPLatency, "route", route),
			"HTTP request latency in milliseconds", httpLatencyBuckets())
		t.latency[route] = lat
	}
	var errC *telemetry.Counter
	if status >= 500 {
		if errC, ok = t.errors[route]; !ok {
			errC = t.reg.Counter(telemetry.Label(telemetry.MetricServeHTTPErrors, "route", route),
				"HTTP requests that failed server-side (5xx)")
			t.errors[route] = errC
		}
	}
	t.mu.Unlock()
	req.Add(1)
	lat.Observe(durMS)
	if errC != nil {
		errC.Add(1)
	}
}

// withObservability wraps next (the daemon mux) in the trace/access-log/
// RED/SLO layer. See the package comment at the top of this file.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Ingest the caller's traceparent and continue its trace through
		// a fresh span, or mint a whole new trace. A malformed header is
		// treated as absent, per the W3C processing rules.
		var tc tracectx.Context
		if parent, ok := tracectx.FromRequest(r); ok {
			tc = s.tgen.Child(parent)
		} else {
			tc = s.tgen.NewContext()
		}
		// Headers go out before the handler runs so every response —
		// errors, 429s, SSE streams, the mux's 404s — carries them.
		w.Header().Set(tracectx.Header, tc.Traceparent())
		w.Header().Set(RequestIDHeader, tc.TraceID.String())

		rec := &statusRecorder{ResponseWriter: w}
		r = r.WithContext(tracectx.Into(r.Context(), tc))
		next.ServeHTTP(rec, r)

		if rec.status == 0 {
			// Handler wrote nothing (e.g. 200 with an empty body).
			rec.status = http.StatusOK
		}
		dur := time.Since(start)
		route := routeLabel(r)
		s.httpTel.observe(route, rec.status, float64(dur.Nanoseconds())/1e6)

		// Availability SLO: any response the daemon answered without a
		// server-side failure is good; only 5xx burns budget.
		s.slo.Observe(sloAvailability, rec.status < 500)
		// Submit latency SLO: an accepted POST /v1/jobs returns only
		// after the job's accepted event is on its bus, so the handler
		// duration bounds submit-to-first-SSE-event.
		if route == "POST /v1/jobs" && rec.status == http.StatusAccepted {
			s.slo.ObserveLatency(sloSubmitLatency, dur.Milliseconds())
		}

		s.accessLog.record(accessRecord{
			TMS:     start.UnixMilli(),
			TraceID: tc.TraceID.String(),
			Client:  clientKey(r),
			Route:   route,
			Method:  r.Method,
			Path:    r.URL.Path,
			Status:  rec.status,
			Bytes:   rec.bytes,
			DurMS:   dur.Milliseconds(),
		})
	})
}
