// Package sts implements the sub-threshold shift technique (paper §4.1).
//
// A shift operation is performed in two stages:
//
//   - Stage 1: a pulse of full drive current density (2*J0) sized for the
//     ideal N-step travel time (~0.4 ns per step at the Table 1 point).
//   - Stage 2: a 1 ns pulse of sub-threshold current density (below J0).
//     Under sub-threshold drive, domain walls can move through flat regions
//     but cannot escape notch regions (physics.NotchTime is infinite), so
//     any wall left stranded mid-flat by stage 1 glides into the next notch
//     and stops there.
//
// The result is that stop-in-middle errors are (almost) eliminated,
// converted into out-of-step errors of the adjacent step — which p-ECC can
// then detect and correct. With a positive stage-2 current a wall stranded
// in the flat region between steps k and k+1 becomes a (k+1)-step outcome.
package sts

import (
	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/physics"
	"racetrack/hifi/internal/telemetry"
)

// Config describes the two-stage shift operation.
type Config struct {
	// ClockHz is the controller clock; the paper uses 2 GHz.
	ClockHz float64
	// Stage1PerStep is the full-drive time per step (0.4 ns nominal).
	Stage1PerStep float64
	// Stage2Width is the sub-threshold pulse width (1 ns; the paper notes
	// 0.8 ns suffices and 1 ns adds margin for process variation).
	Stage2Width float64
	// Negative selects a negative stage-2 current: stranded walls glide
	// back into the previous notch instead of forward into the next one
	// (paper §4.1). The default is positive.
	Negative bool
	// Conversions optionally counts stop-in-middle outcomes converted to
	// out-of-step by stage 2; nil (the default) is a no-op handle.
	Conversions *telemetry.Counter
}

// Instrument returns a copy of the configuration that counts stage-2
// conversions on reg.
func (c Config) Instrument(reg *telemetry.Registry) Config {
	c.Conversions = reg.Counter(telemetry.MetricSTSConversions,
		"stop-in-middle outcomes converted to out-of-step by STS stage 2")
	return c
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	p := physics.Default()
	return Config{
		ClockHz:       2e9,
		Stage1PerStep: p.StepTime(p.ShiftCurrentJ),
		Stage2Width:   1e-9,
	}
}

// Cycles returns the latency in controller cycles of an n-step shift with
// STS: ceil(stage1) + stage2 cycles. At the paper's point this is
// ceil(0.4*N / 0.5) + 2 = ceil(0.8*N) + 2: 3 cycles for a 1-step shift,
// 8 cycles for a 7-step shift.
func (c Config) Cycles(n int) int {
	if n <= 0 {
		return 0
	}
	period := 1 / c.ClockHz
	stage1 := float64(n) * c.Stage1PerStep
	s1 := int((stage1 + period - 1e-18) / period)
	if float64(s1)*period < stage1-1e-18 {
		s1++
	}
	s2 := int(c.Stage2Width / period)
	if float64(s2)*period < c.Stage2Width-1e-18 {
		s2++
	}
	return s1 + s2
}

// Seconds returns the wall-clock latency of an n-step shift.
func (c Config) Seconds(n int) float64 {
	return float64(c.Cycles(n)) / c.ClockHz
}

// Convert maps a raw (pre-STS) shift outcome to the post-STS outcome: a
// stop-in-middle between steps k and k+1 becomes a clean (k+1)-step outcome
// under positive stage-2 current, or k under negative current. Out-of-step
// outcomes pass through unchanged.
func (c Config) Convert(o errmodel.Outcome) errmodel.Outcome {
	if !o.StopInMiddle {
		return o
	}
	c.Conversions.Inc()
	off := o.StepOffset
	if !c.Negative {
		off++
	}
	return errmodel.Outcome{StepOffset: off}
}

// StageCurrents returns the drive current densities of the two stages for
// the Table 1 device: full drive (2*J0) and a sub-threshold density (0.8*J0).
func StageCurrents() (stage1, stage2 float64) {
	p := physics.Default()
	return p.ShiftCurrentJ, 0.8 * p.ThresholdJ0
}
