package sts

import (
	"math"
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/physics"
)

func TestCyclesMatchPaper(t *testing.T) {
	// Paper §4.1: latency is ceil(0.4N/0.5)+2 cycles at 2 GHz — 3 cycles
	// for a 1-step shift, 8 cycles for a 7-step shift.
	c := DefaultConfig()
	want := map[int]int{1: 3, 2: 4, 3: 5, 4: 6, 5: 6, 6: 7, 7: 8}
	for n, w := range want {
		if got := c.Cycles(n); got != w {
			t.Errorf("Cycles(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestCyclesFormula(t *testing.T) {
	c := DefaultConfig()
	for n := 1; n <= 64; n++ {
		want := int(math.Ceil(0.8*float64(n))) + 2
		if got := c.Cycles(n); got != want {
			t.Errorf("Cycles(%d) = %d, want ceil(0.8*%d)+2 = %d", n, got, n, want)
		}
	}
}

func TestCyclesZeroAndNegative(t *testing.T) {
	c := DefaultConfig()
	if c.Cycles(0) != 0 || c.Cycles(-5) != 0 {
		t.Error("non-positive distances should cost zero cycles")
	}
}

func TestSecondsConsistent(t *testing.T) {
	c := DefaultConfig()
	if got, want := c.Seconds(4), float64(c.Cycles(4))/2e9; got != want {
		t.Errorf("Seconds(4) = %g, want %g", got, want)
	}
}

func TestAmortization(t *testing.T) {
	// Paper's rule of thumb: one long shift beats the equivalent sequence
	// of short ones because stage-2 overhead is paid once.
	c := DefaultConfig()
	if c.Cycles(7) >= 7*c.Cycles(1) {
		t.Errorf("7-step shift (%d cy) should beat 7x 1-step (%d cy)",
			c.Cycles(7), 7*c.Cycles(1))
	}
}

func TestConvertPositive(t *testing.T) {
	c := DefaultConfig()
	// Stranded between intended position and the next step: becomes +1.
	got := c.Convert(errmodel.Outcome{StopInMiddle: true, StepOffset: 0})
	if got.StopInMiddle || got.StepOffset != 1 {
		t.Errorf("positive STS convert = %+v, want out-of-step +1", got)
	}
	// Stranded one step short: (-1,0) becomes 0 — a clean shift.
	got = c.Convert(errmodel.Outcome{StopInMiddle: true, StepOffset: -1})
	if got.StopInMiddle || got.StepOffset != 0 {
		t.Errorf("positive STS convert of (-1,0) = %+v, want 0", got)
	}
}

func TestConvertNegative(t *testing.T) {
	c := DefaultConfig()
	c.Negative = true
	got := c.Convert(errmodel.Outcome{StopInMiddle: true, StepOffset: 0})
	if got.StopInMiddle || got.StepOffset != 0 {
		t.Errorf("negative STS convert = %+v, want 0", got)
	}
}

func TestConvertPassThrough(t *testing.T) {
	c := DefaultConfig()
	for _, o := range []errmodel.Outcome{{}, {StepOffset: 1}, {StepOffset: -2}} {
		if got := c.Convert(o); got != o {
			t.Errorf("Convert(%+v) = %+v, want unchanged", o, got)
		}
	}
}

func TestStageCurrents(t *testing.T) {
	s1, s2 := StageCurrents()
	p := physics.Default()
	if s1 != p.ShiftCurrentJ {
		t.Errorf("stage1 = %g, want full drive %g", s1, p.ShiftCurrentJ)
	}
	if s2 >= p.ThresholdJ0 {
		t.Errorf("stage2 = %g must be sub-threshold (< %g)", s2, p.ThresholdJ0)
	}
	if !p.SubThreshold(s2) {
		t.Error("stage2 density not sub-threshold per the physics model")
	}
}

func TestStage2PulseSufficient(t *testing.T) {
	// The 1 ns stage-2 pulse must exceed the worst-case flat traversal
	// time at the sub-threshold drive (paper: 0.8 ns suffices, 1 ns with
	// margin).
	p := physics.Default()
	_, s2 := StageCurrents()
	tf := p.FlatTime(p.U(s2))
	cfg := DefaultConfig()
	if tf > cfg.Stage2Width {
		t.Errorf("flat traversal at sub-threshold (%g s) exceeds stage-2 width (%g s)", tf, cfg.Stage2Width)
	}
	if tf < 0.3e-9 {
		t.Errorf("flat traversal %g s implausibly fast at sub-threshold", tf)
	}
}
