package profile

// The live /perf status route: the hifi_perf_v1 document assembled on
// demand from whatever sources are wired in — the span collector's
// export for self-time attribution, the runtime's heap samples, and an
// optional resource provider (the experiment engine's per-job resource
// summary). Sources may be attached after construction because the
// engine is built after the status mux starts serving.

import (
	"encoding/json"
	"net/http"
	"sync"

	"racetrack/hifi/internal/telemetry"
)

// DefaultHeapTop bounds the hotspot rows the live route and the perf
// export carry.
const DefaultHeapTop = 20

// Handler serves the live perf document. The zero value serves an
// empty-but-valid document, matching the other status routes' contract.
type Handler struct {
	mu        sync.Mutex
	spans     func() telemetry.SpanExport
	resources func() any
}

// NewHandler builds a handler over a span-export source; spans may be
// nil (self-time tables stay empty).
func NewHandler(spans func() telemetry.SpanExport) *Handler {
	return &Handler{spans: spans}
}

// SetResources attaches (or replaces) the resource-summary provider.
func (h *Handler) SetResources(f func() any) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.resources = f
	h.mu.Unlock()
}

// Export assembles the current document.
func (h *Handler) Export() *Export {
	var spans func() telemetry.SpanExport
	var resources func() any
	if h != nil {
		h.mu.Lock()
		spans, resources = h.spans, h.resources
		h.mu.Unlock()
	}
	var se telemetry.SpanExport
	if spans != nil {
		se = spans()
	}
	e := Analyze(se)
	e.Heap = HeapHotspots(DefaultHeapTop)
	if resources != nil {
		e.Resources = resources()
	}
	return e
}

// ServeHTTP serves the document as indented JSON.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h.Export())
}
