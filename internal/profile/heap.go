package profile

// Heap hotspot summary straight from the runtime's sampled allocation
// records (runtime.MemProfile), symbolized with the runtime's own frame
// tables — no pprof-file parsing, no dependencies. The numbers are
// unsampled the same way the pprof tool unsamples them, so a hotspot's
// alloc_bytes approximates the true cumulative bytes allocated at that
// call site since process start.

import (
	"math"
	"runtime"
	"sort"
	"strings"
)

// Hotspot aggregates every allocation record attributed to one function.
type Hotspot struct {
	Func         string `json:"func"`
	AllocBytes   int64  `json:"alloc_bytes"`
	AllocObjects int64  `json:"alloc_objects"`
	InUseBytes   int64  `json:"in_use_bytes"`
	InUseObjects int64  `json:"in_use_objects"`
}

// HeapHotspots returns the top n allocation sites by cumulative
// allocated bytes. Attribution picks the innermost non-runtime frame of
// each record's stack, so rows name the package code that allocated, not
// mallocgc. Returns nil when the runtime has no samples yet.
func HeapHotspots(n int) []Hotspot {
	records := memProfile()
	if len(records) == 0 || n <= 0 {
		return nil
	}
	byFunc := map[string]*Hotspot{}
	for i := range records {
		r := &records[i]
		name := attribution(r.Stack())
		h := byFunc[name]
		if h == nil {
			h = &Hotspot{Func: name}
			byFunc[name] = h
		}
		ab, ao := unsample(r.AllocBytes, r.AllocObjects)
		fb, fo := unsample(r.FreeBytes, r.FreeObjects)
		h.AllocBytes += ab
		h.AllocObjects += ao
		h.InUseBytes += ab - fb
		h.InUseObjects += ao - fo
	}
	out := make([]Hotspot, 0, len(byFunc))
	for _, h := range byFunc {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AllocBytes != out[j].AllocBytes {
			return out[i].AllocBytes > out[j].AllocBytes
		}
		return out[i].Func < out[j].Func
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// memProfile fetches the full record set, growing the buffer the way the
// runtime documents (the record count can rise between the size probe
// and the fill).
func memProfile() []runtime.MemProfileRecord {
	n, _ := runtime.MemProfile(nil, true)
	for {
		records := make([]runtime.MemProfileRecord, n+50)
		got, ok := runtime.MemProfile(records, true)
		if ok {
			return records[:got]
		}
		n = got
	}
}

// attribution resolves a record's innermost frame that is not runtime or
// allocator plumbing.
func attribution(stack []uintptr) string {
	frames := runtime.CallersFrames(stack)
	fallback := ""
	for {
		f, more := frames.Next()
		name := f.Function
		if name == "" {
			if !more {
				break
			}
			continue
		}
		if fallback == "" {
			fallback = name
		}
		if !strings.HasPrefix(name, "runtime.") && !strings.HasPrefix(name, "runtime/") {
			return name
		}
		if !more {
			break
		}
	}
	if fallback == "" {
		return "unknown"
	}
	return fallback
}

// unsample scales one sampled (bytes, objects) pair to its statistical
// estimate, compensating for the runtime's Poisson sampling at
// MemProfileRate — the same correction the pprof tool applies.
func unsample(bytes, objects int64) (int64, int64) {
	rate := int64(runtime.MemProfileRate)
	if objects == 0 || rate <= 1 {
		return bytes, objects
	}
	avg := float64(bytes) / float64(objects)
	scale := 1 / (1 - math.Exp(-avg/float64(rate)))
	return int64(float64(bytes) * scale), int64(float64(objects) * scale)
}
