// Package profile is the performance-observability layer on top of the
// telemetry spans and metrics: automated pprof capture with deterministic
// file names (Capture), a span self-time analyzer that answers "where do
// the nanoseconds go" (Analyze, exported as the hifi_perf_v1 schema), a
// heap hotspot summary built from the runtime's own sampled allocation
// records (HeapHotspots), and the live /perf status route (Handler).
//
// Like the rest of the observability stack it is dependency-free and
// nil-safe: a nil *Capture is a no-op, and Analyze of an empty span
// export yields an empty-but-valid document.
package profile

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strings"

	"racetrack/hifi/internal/telemetry"
)

// Schema identifies the perf export layout; consumers reject others.
const Schema = "hifi_perf_v1"

// SpanStat aggregates every span sharing one name: how often it ran, its
// total (inclusive) duration, its self time (total minus the time spent
// in child spans), and the summed registry counter deltas recorded over
// those spans. Self time is the attribution currency: summing SelfNS
// over all rows reproduces the run's instrumented wall time exactly
// once, with no double counting across the hierarchy.
type SpanStat struct {
	Name    string                  `json:"name"`
	Count   int                     `json:"count"`
	TotalNS int64                   `json:"total_ns"`
	SelfNS  int64                   `json:"self_ns"`
	Metrics []telemetry.SeriesValue `json:"metrics,omitempty"`
}

// GroupStat folds SpanStats by group — the span-name prefix before the
// first ':' ("job", "experiment", "memsim"), or the whole name when it
// has none — approximating a per-package/per-phase self-time breakdown.
type GroupStat struct {
	Group  string  `json:"group"`
	Count  int     `json:"count"`
	SelfNS int64   `json:"self_ns"`
	Share  float64 `json:"share"` // fraction of total self time
}

// Export is one hifi_perf_v1 document: the self-time attribution tables,
// optionally a heap hotspot summary and the engine's per-job resource
// summary (any JSON-marshalable value, so profile does not depend on the
// engine package).
type Export struct {
	Schema    string      `json:"schema"`
	WallNS    int64       `json:"wall_ns"` // summed root-span durations
	SelfNS    int64       `json:"self_ns_total"`
	Spans     []SpanStat  `json:"spans"`
	Groups    []GroupStat `json:"groups"`
	Heap      []Hotspot   `json:"heap_hotspots,omitempty"`
	Resources any         `json:"resources,omitempty"`
}

// Analyze folds a hierarchical span export into per-name self-time and
// metric-delta aggregates. Finished and in-flight spans both count (an
// in-flight span's running duration is its duration-so-far). Rows sort
// by self time descending, ties by name, so "the top of the table" is
// always the answer to where the time went.
func Analyze(e telemetry.SpanExport) *Export {
	all := append(append([]telemetry.SpanRecord{}, e.Spans...), e.InFlight...)
	childNS := make(map[uint64]int64, len(all))
	childMetrics := make(map[uint64]map[string]float64)
	rootNS := int64(0)
	ids := make(map[uint64]bool, len(all))
	for _, r := range all {
		ids[r.ID] = true
	}
	for _, r := range all {
		if r.Parent != 0 && ids[r.Parent] {
			childNS[r.Parent] += r.DurNS
			if len(r.Metrics) > 0 {
				m := childMetrics[r.Parent]
				if m == nil {
					m = map[string]float64{}
					childMetrics[r.Parent] = m
				}
				for _, sv := range r.Metrics {
					m[sv.Name] += sv.Value
				}
			}
		} else {
			rootNS += r.DurNS
		}
	}

	stats := map[string]*SpanStat{}
	metricSums := map[string]map[string]float64{}
	var selfTotal int64
	for _, r := range all {
		st := stats[r.Name]
		if st == nil {
			st = &SpanStat{Name: r.Name}
			stats[r.Name] = st
			metricSums[r.Name] = map[string]float64{}
		}
		self := r.DurNS - childNS[r.ID]
		if self < 0 {
			self = 0
		}
		st.Count++
		st.TotalNS += r.DurNS
		st.SelfNS += self
		selfTotal += self
		// Metric deltas are attributed as self deltas too: what the span
		// recorded minus what its children already claimed.
		for _, sv := range r.Metrics {
			d := sv.Value - childMetrics[r.ID][sv.Name]
			if d != 0 {
				metricSums[r.Name][sv.Name] += d
			}
		}
	}

	out := &Export{Schema: Schema, WallNS: rootNS, SelfNS: selfTotal, Spans: []SpanStat{}, Groups: []GroupStat{}}
	for name, st := range stats {
		ms := metricSums[name]
		keys := make([]string, 0, len(ms))
		for k := range ms {
			if ms[k] != 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			st.Metrics = append(st.Metrics, telemetry.SeriesValue{Name: k, Value: ms[k]})
		}
		out.Spans = append(out.Spans, *st)
	}
	sort.Slice(out.Spans, func(i, j int) bool {
		if out.Spans[i].SelfNS != out.Spans[j].SelfNS {
			return out.Spans[i].SelfNS > out.Spans[j].SelfNS
		}
		return out.Spans[i].Name < out.Spans[j].Name
	})

	groups := map[string]*GroupStat{}
	for _, st := range out.Spans {
		g := st.Name
		if i := strings.IndexByte(g, ':'); i > 0 {
			g = g[:i]
		}
		gs := groups[g]
		if gs == nil {
			gs = &GroupStat{Group: g}
			groups[g] = gs
		}
		gs.Count += st.Count
		gs.SelfNS += st.SelfNS
	}
	for _, gs := range groups {
		if selfTotal > 0 {
			gs.Share = float64(gs.SelfNS) / float64(selfTotal)
		}
		out.Groups = append(out.Groups, *gs)
	}
	sort.Slice(out.Groups, func(i, j int) bool {
		if out.Groups[i].SelfNS != out.Groups[j].SelfNS {
			return out.Groups[i].SelfNS > out.Groups[j].SelfNS
		}
		return out.Groups[i].Group < out.Groups[j].Group
	})
	return out
}

// Top returns the first n self-time rows (all of them when n exceeds the
// table).
func (e *Export) Top(n int) []SpanStat {
	if e == nil || n <= 0 {
		return nil
	}
	if n > len(e.Spans) {
		n = len(e.Spans)
	}
	return e.Spans[:n]
}

// WriteJSON emits the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteFile writes the export to path.
func (e *Export) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a perf export, rejecting other schemas.
func ReadFile(path string) (*Export, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Export
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, err
	}
	if e.Schema != Schema {
		return nil, errSchema(e.Schema)
	}
	return &e, nil
}

type errSchema string

func (e errSchema) Error() string { return "profile: schema " + string(e) + ", want " + Schema }
