package profile

import (
	"os"
	"path/filepath"
	"testing"

	"racetrack/hifi/internal/telemetry"
)

// testExport is a small hand-built span tree:
//
//	tool (100ns, shift=10)
//	├── job:a (60ns, shift=8)
//	│   └── memsim:run (30ns)
//	└── job:a (20ns, shift=1)
func testExport() telemetry.SpanExport {
	return telemetry.SpanExport{Spans: []telemetry.SpanRecord{
		{ID: 1, Name: "tool", DurNS: 100,
			Metrics: []telemetry.SeriesValue{{Name: "hifi_shift_steps_total", Value: 10}}},
		{ID: 2, Parent: 1, Name: "job:a", DurNS: 60,
			Metrics: []telemetry.SeriesValue{{Name: "hifi_shift_steps_total", Value: 8}}},
		{ID: 3, Parent: 1, Name: "job:a", DurNS: 20,
			Metrics: []telemetry.SeriesValue{{Name: "hifi_shift_steps_total", Value: 1}}},
		{ID: 4, Parent: 2, Name: "memsim:run", DurNS: 30},
	}}
}

func TestAnalyzeSelfTime(t *testing.T) {
	e := Analyze(testExport())
	if e.Schema != Schema {
		t.Errorf("schema = %q", e.Schema)
	}
	if e.WallNS != 100 || e.SelfNS != 100 {
		t.Errorf("wall/self = %d/%d, want 100/100", e.WallNS, e.SelfNS)
	}
	want := []struct {
		name   string
		count  int
		selfNS int64
	}{
		{"job:a", 2, 50}, // 60-30 + 20
		{"memsim:run", 1, 30},
		{"tool", 1, 20}, // 100 - 80
	}
	if len(e.Spans) != len(want) {
		t.Fatalf("spans = %d rows, want %d: %+v", len(e.Spans), len(want), e.Spans)
	}
	for i, w := range want {
		got := e.Spans[i]
		if got.Name != w.name || got.Count != w.count || got.SelfNS != w.selfNS {
			t.Errorf("row %d = %s count=%d self=%d, want %s count=%d self=%d",
				i, got.Name, got.Count, got.SelfNS, w.name, w.count, w.selfNS)
		}
	}
	// Metric deltas attribute like self time: the parent's delta minus
	// what its children already claimed.
	if got := e.Spans[0].Metrics; len(got) != 1 || got[0].Value != 9 {
		t.Errorf("job:a metrics = %+v, want shift delta 9", got)
	}
	if got := e.Spans[2].Metrics; len(got) != 1 || got[0].Value != 1 {
		t.Errorf("tool metrics = %+v, want shift delta 1", got)
	}
}

func TestAnalyzeGroups(t *testing.T) {
	e := Analyze(testExport())
	if len(e.Groups) != 3 {
		t.Fatalf("groups = %+v", e.Groups)
	}
	if e.Groups[0].Group != "job" || e.Groups[0].SelfNS != 50 {
		t.Errorf("top group = %+v, want job/50", e.Groups[0])
	}
	var share float64
	for _, g := range e.Groups {
		share += g.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("group shares sum to %f, want 1", share)
	}
}

func TestAnalyzeEmptyAndOrphans(t *testing.T) {
	e := Analyze(telemetry.SpanExport{})
	if e.Schema != Schema || len(e.Spans) != 0 || len(e.Groups) != 0 {
		t.Errorf("empty analyze = %+v", e)
	}
	// A span whose parent was dropped (capacity) counts as a root.
	e = Analyze(telemetry.SpanExport{Spans: []telemetry.SpanRecord{
		{ID: 9, Parent: 5, Name: "orphan", DurNS: 40},
	}})
	if e.WallNS != 40 {
		t.Errorf("orphan wall = %d, want 40", e.WallNS)
	}
}

func TestTop(t *testing.T) {
	e := Analyze(testExport())
	if got := e.Top(2); len(got) != 2 || got[0].Name != "job:a" {
		t.Errorf("Top(2) = %+v", got)
	}
	if got := e.Top(99); len(got) != 3 {
		t.Errorf("Top(99) = %d rows", len(got))
	}
	var nilExport *Export
	if got := nilExport.Top(3); got != nil {
		t.Errorf("nil Top = %+v", got)
	}
}

func TestExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "perf.json")
	e := Analyze(testExport())
	if err := e.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.SelfNS != e.SelfNS || len(back.Spans) != len(e.Spans) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	// Wrong schema is rejected.
	if err := os.WriteFile(path, []byte(`{"schema":"hifi_perf_v99"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("wrong schema accepted")
	}
}

func TestHeapHotspots(t *testing.T) {
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	_ = sink
	hs := HeapHotspots(10)
	if len(hs) == 0 {
		t.Skip("runtime produced no heap samples (MemProfileRate disabled?)")
	}
	for i := 1; i < len(hs); i++ {
		if hs[i].AllocBytes > hs[i-1].AllocBytes {
			t.Errorf("hotspots not sorted: %d before %d", hs[i-1].AllocBytes, hs[i].AllocBytes)
		}
	}
	for _, h := range hs {
		if h.Func == "" {
			t.Error("hotspot with empty function name")
		}
	}
	if HeapHotspots(0) != nil {
		t.Error("HeapHotspots(0) != nil")
	}
}
