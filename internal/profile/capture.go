package profile

// Automated pprof capture. A Capture owns a set of requested profile
// kinds and writes them with deterministic names derived from one base
// path, so a run's profiles always land next to its manifest and can be
// referenced from it:
//
//	<base>.cpu.pprof            run-scoped CPU profile
//	<base>.heap.pprof           live-heap profile at Stop
//	<base>.allocs.pprof         cumulative allocation profile at Stop
//	<base>.mutex.pprof          contended-mutex profile at Stop
//	<base>.block.pprof          blocking profile at Stop
//
// Phase-scoped capture (Capture.Phase) rotates the CPU profile and
// snapshots the live heap at every phase boundary, producing
// <base>.<phase>.cpu.pprof and <base>.<phase>.heap.pprof instead — the
// span-bracketed view: one profile per experiment, not one soup per run.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
)

// Kind names one profile the capturer can produce.
type Kind string

// The supported kinds. CPU is streamed for the capture's lifetime; the
// others are point-in-time snapshots written at Stop (and, for Heap, at
// every phase boundary under phase scope).
const (
	CPU    Kind = "cpu"
	Heap   Kind = "heap"
	Allocs Kind = "allocs"
	Mutex  Kind = "mutex"
	Block  Kind = "block"
)

// AllKinds is every supported kind, the expansion of -profile all.
var AllKinds = []Kind{CPU, Heap, Allocs, Mutex, Block}

// Sampling rates installed while mutex/block profiling is requested.
// Mutex samples 1/5 of contention events; block samples every blocking
// event that lasted at least one microsecond. Both are restored (mutex)
// or disabled (block) at Stop.
const (
	MutexFraction = 5
	BlockRateNS   = 1000
)

// ParseKinds parses a comma-separated kind list ("cpu,heap"); "all"
// expands to every kind, "" to none.
func ParseKinds(s string) ([]Kind, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		return append([]Kind{}, AllKinds...), nil
	}
	seen := map[Kind]bool{}
	var out []Kind
	for _, part := range strings.Split(s, ",") {
		k := Kind(strings.TrimSpace(part))
		switch k {
		case CPU, Heap, Allocs, Mutex, Block:
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		default:
			return nil, fmt.Errorf("profile: unknown kind %q (want cpu, heap, allocs, mutex, block, or all)", part)
		}
	}
	return out, nil
}

// Capture writes the requested profiles around one run. A nil *Capture
// is a valid disabled handle: every method is a no-op.
type Capture struct {
	mu        sync.Mutex
	base      string
	kinds     map[Kind]bool
	perPhase  bool
	phase     string // current phase ("" = whole run)
	cpuFile   *os.File
	files     []string
	prevMutex int
	started   bool
	stopped   bool
}

// New builds a capture writing <base>.<kind>.pprof files. Returns nil
// when kinds is empty, so callers can thread the result unconditionally.
func New(base string, kinds []Kind, perPhase bool) *Capture {
	if len(kinds) == 0 {
		return nil
	}
	c := &Capture{base: base, kinds: map[Kind]bool{}, perPhase: perPhase}
	for _, k := range kinds {
		c.kinds[k] = true
	}
	return c
}

// Start begins capture: the CPU profile starts streaming and the
// mutex/block samplers are installed when requested.
func (c *Capture) Start() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return nil
	}
	c.started = true
	if c.kinds[Mutex] {
		c.prevMutex = runtime.SetMutexProfileFraction(MutexFraction)
	}
	if c.kinds[Block] {
		runtime.SetBlockProfileRate(BlockRateNS)
	}
	return c.startCPULocked()
}

func (c *Capture) path(kind Kind) string {
	if c.phase == "" {
		return fmt.Sprintf("%s.%s.pprof", c.base, kind)
	}
	return fmt.Sprintf("%s.%s.%s.pprof", c.base, sanitize(c.phase), kind)
}

// sanitize maps a phase name onto the filename-safe alphabet.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}

func (c *Capture) startCPULocked() error {
	if !c.kinds[CPU] {
		return nil
	}
	f, err := os.Create(c.path(CPU))
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("profile: %w", err)
	}
	c.cpuFile = f
	return nil
}

func (c *Capture) stopCPULocked() error {
	if c.cpuFile == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := c.cpuFile.Close()
	c.files = append(c.files, c.cpuFile.Name())
	c.cpuFile = nil
	return err
}

// writeLookupLocked snapshots one named runtime profile to its
// deterministic path.
func (c *Capture) writeLookupLocked(name string, kind Kind) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("profile: runtime profile %q unavailable", name)
	}
	path := c.path(kind)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	if err := p.WriteTo(f, 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	c.files = append(c.files, path)
	return nil
}

// Phase marks a phase boundary under phase-scoped capture: the current
// CPU profile (and a live-heap snapshot) is finalized under the previous
// phase's name and a fresh CPU profile opens under name. Under run scope
// Phase only relabels nothing — it is a no-op — so CLIs can call it
// unconditionally.
func (c *Capture) Phase(name string) error {
	if c == nil || !c.perPhase {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started || c.stopped {
		return nil
	}
	var firstErr error
	if c.phase != "" || c.cpuFile != nil {
		if err := c.closePhaseLocked(); err != nil {
			firstErr = err
		}
	}
	c.phase = name
	if err := c.startCPULocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// closePhaseLocked finalizes the in-progress phase's streaming and
// snapshot profiles.
func (c *Capture) closePhaseLocked() error {
	firstErr := c.stopCPULocked()
	if c.kinds[Heap] && c.phase != "" {
		if err := c.writeLookupLocked("heap", Heap); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stop finalizes every requested profile and returns the full list of
// files written, sorted. Safe to call twice; the second call returns the
// same list.
func (c *Capture) Stop() ([]string, error) {
	if c == nil {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started || c.stopped {
		return append([]string{}, c.files...), nil
	}
	c.stopped = true
	firstErr := c.closePhaseLocked()
	c.phase = "" // terminal snapshots are run-scoped names
	for _, k := range []Kind{Heap, Allocs, Mutex, Block} {
		if !c.kinds[k] {
			continue
		}
		if err := c.writeLookupLocked(string(k), k); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.kinds[Mutex] {
		runtime.SetMutexProfileFraction(c.prevMutex)
	}
	if c.kinds[Block] {
		runtime.SetBlockProfileRate(0)
	}
	sort.Strings(c.files)
	return append([]string{}, c.files...), firstErr
}
