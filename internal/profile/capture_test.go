package profile

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"racetrack/hifi/internal/telemetry"
)

func TestParseKinds(t *testing.T) {
	if ks, err := ParseKinds(""); err != nil || ks != nil {
		t.Errorf("ParseKinds(\"\") = %v, %v", ks, err)
	}
	if ks, err := ParseKinds("all"); err != nil || len(ks) != len(AllKinds) {
		t.Errorf("ParseKinds(all) = %v, %v", ks, err)
	}
	ks, err := ParseKinds("cpu, heap,cpu")
	if err != nil || len(ks) != 2 || ks[0] != CPU || ks[1] != Heap {
		t.Errorf("ParseKinds dedupe = %v, %v", ks, err)
	}
	if _, err := ParseKinds("cpu,banana"); err == nil {
		t.Error("unknown kind accepted")
	}
}

// burn gives the CPU profiler something to sample.
func burn() int {
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	return x
}

func TestCaptureRunScope(t *testing.T) {
	base := filepath.Join(t.TempDir(), "run")
	c := New(base, AllKinds, false)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	_ = burn()
	files, err := c.Stop()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		base + ".allocs.pprof",
		base + ".block.pprof",
		base + ".cpu.pprof",
		base + ".heap.pprof",
		base + ".mutex.pprof",
	}
	if len(files) != len(want) {
		t.Fatalf("files = %v, want %v", files, want)
	}
	for i, w := range want {
		if files[i] != w {
			t.Errorf("file %d = %s, want %s", i, files[i], w)
		}
		if st, err := os.Stat(w); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", w, err)
		}
	}
	// Stop twice returns the same list without error.
	again, err := c.Stop()
	if err != nil || len(again) != len(files) {
		t.Errorf("second Stop = %v, %v", again, err)
	}
}

func TestCapturePhaseScope(t *testing.T) {
	base := filepath.Join(t.TempDir(), "run")
	c := New(base, []Kind{CPU, Heap}, true)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Phase("fig10"); err != nil {
		t.Fatal(err)
	}
	_ = burn()
	if err := c.Phase("fig 14/x"); err != nil {
		t.Fatal(err)
	}
	_ = burn()
	files, err := c.Stop()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		base + ".cpu.pprof", // pre-phase preamble
		base + ".fig-14-x.cpu.pprof",
		base + ".fig-14-x.heap.pprof",
		base + ".fig10.cpu.pprof",
		base + ".fig10.heap.pprof",
		base + ".heap.pprof", // terminal run-scoped snapshot
	}
	if len(files) != len(want) {
		t.Fatalf("files = %v, want %v", files, want)
	}
	for i, w := range want {
		if files[i] != w {
			t.Errorf("file %d = %s, want %s", i, files[i], w)
		}
	}
}

func TestCaptureNilAndEmpty(t *testing.T) {
	var c *Capture
	if err := c.Start(); err != nil {
		t.Error(err)
	}
	if err := c.Phase("x"); err != nil {
		t.Error(err)
	}
	if files, err := c.Stop(); err != nil || files != nil {
		t.Errorf("nil Stop = %v, %v", files, err)
	}
	if New("base", nil, false) != nil {
		t.Error("New with no kinds should return nil")
	}
}

func TestHandler(t *testing.T) {
	h := NewHandler(func() telemetry.SpanExport { return testExport() })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/perf", nil))
	body := rec.Body.String()
	if !strings.Contains(body, Schema) || !strings.Contains(body, `"job:a"`) {
		t.Errorf("/perf body missing schema or span rows:\n%s", body)
	}
	if strings.Contains(body, `"resources"`) {
		t.Errorf("resources present before SetResources:\n%s", body)
	}
	h.SetResources(func() any { return map[string]int{"jobs": 7} })
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/perf", nil))
	if body := rec.Body.String(); !strings.Contains(body, `"jobs": 7`) {
		t.Errorf("/perf body missing resources:\n%s", body)
	}
}

func TestHandlerZeroValue(t *testing.T) {
	var h Handler
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/perf", nil))
	if !strings.Contains(rec.Body.String(), Schema) {
		t.Errorf("zero-value handler body = %s", rec.Body.String())
	}
}
