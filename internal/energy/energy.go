// Package energy holds the per-operation latency and energy constants of
// the evaluated memory hierarchy (paper Table 4) and the protection-
// mechanism overheads (paper Table 5), plus accounting helpers used by the
// system simulator for the energy figures (Fig. 17, Fig. 18).
//
// The constants stand in for the NVSim and RTL-synthesis numbers the paper
// obtained at 45 nm; every downstream comparison consumes them only as
// per-operation costs, so calibrating to the published values preserves the
// evaluation's shape.
package energy

// Tech identifies an LLC memory technology option.
type Tech int

const (
	SRAM Tech = iota
	STTRAM
	Racetrack
)

// String implements fmt.Stringer.
func (t Tech) String() string {
	switch t {
	case SRAM:
		return "sram"
	case STTRAM:
		return "stt-ram"
	case Racetrack:
		return "racetrack"
	default:
		return "unknown-tech"
	}
}

// CacheCosts holds one cache level's per-access costs: latency in cycles at
// 2 GHz, dynamic energy in nJ, and leakage power in watts for the whole
// structure.
type CacheCosts struct {
	ReadCycles  int
	WriteCycles int
	ReadNJ      float64
	WriteNJ     float64
	LeakageW    float64
	CapacityB   int64
}

// L1 returns the Table 4 L1 costs (per core, split I/D 32KB+32KB).
func L1() CacheCosts {
	return CacheCosts{ReadCycles: 1, WriteCycles: 1, ReadNJ: 0.074, WriteNJ: 0.074,
		LeakageW: 0.0234, CapacityB: 64 << 10}
}

// L2 returns the Table 4 L2 costs (1MB shared by 2 cores).
func L2() CacheCosts {
	return CacheCosts{ReadCycles: 7, WriteCycles: 7, ReadNJ: 0.407, WriteNJ: 0.386,
		LeakageW: 0.6815, CapacityB: 1 << 20}
}

// L3 returns the Table 4 L3 costs for the chosen technology: 4MB SRAM,
// 32MB STT-RAM, or 128MB racetrack at equal area.
func L3(t Tech) CacheCosts {
	switch t {
	case SRAM:
		return CacheCosts{ReadCycles: 24, WriteCycles: 22, ReadNJ: 0.802, WriteNJ: 0.761,
			LeakageW: 2.6735, CapacityB: 4 << 20}
	case STTRAM:
		return CacheCosts{ReadCycles: 27, WriteCycles: 41, ReadNJ: 1.056, WriteNJ: 2.093,
			LeakageW: 0.8622, CapacityB: 32 << 20}
	default:
		return CacheCosts{ReadCycles: 24, WriteCycles: 24, ReadNJ: 0.956, WriteNJ: 0.952,
			LeakageW: 0.9484, CapacityB: 128 << 20}
	}
}

// DRAM returns the Table 4 main-memory costs: 100-cycle access, 38.10 nJ.
func DRAM() CacheCosts {
	return CacheCosts{ReadCycles: 100, WriteCycles: 100, ReadNJ: 38.10, WriteNJ: 38.10}
}

// ShiftCosts models racetrack shift energy. The Table 4 "S" entry (4
// cycles, 1.331 nJ) is a 1-step shift of a full 512-stripe line group; an
// n-step shift costs the stage-1 drive energy proportionally while the
// stage-2 STS pulse and driver overhead are per-operation.
type ShiftCosts struct {
	PerOpNJ   float64 // stage-2 pulse + drivers, paid once per operation
	PerStepNJ float64 // stage-1 drive, per step
	// DetectNJ is the p-ECC phase-check energy per operation and
	// CorrectNJ the energy of a correction event (Table 5, scaled from
	// per-stripe pJ to the 512-stripe group).
	DetectNJ  float64
	CorrectNJ float64
	// OWriteNJ is the p-ECC-O shift-and-write energy per operation (the
	// overhead-region write port firing on every step).
	OWriteNJ float64
}

// DefaultShift returns shift energy constants calibrated so a 1-step shift
// costs the Table 4 1.331 nJ and p-ECC-O's per-step writes land near the
// paper's +46% LLC dynamic energy (Fig. 17).
func DefaultShift() ShiftCosts {
	return ShiftCosts{
		PerOpNJ:   0.40,
		PerStepNJ: 0.931,
		DetectNJ:  0.00373 * 512 / 512, // 3.73 pJ per stripe; group value folded below
		CorrectNJ: 0.00616,
		OWriteNJ:  0.20,
	}
}

// OpNJ returns the energy of one n-step shift operation with p-ECC
// detection, for a full line group.
func (s ShiftCosts) OpNJ(n int) float64 {
	if n <= 0 {
		return 0
	}
	return s.PerOpNJ + s.PerStepNJ*float64(n) + s.DetectNJ
}

// SeqNJ returns the energy of a shift sequence, adding the p-ECC-O write
// energy when owrite is set.
func (s ShiftCosts) SeqNJ(seq []int, owrite bool) float64 {
	total := 0.0
	for _, n := range seq {
		total += s.OpNJ(n)
		if owrite {
			total += s.OWriteNJ * float64(n)
		}
	}
	return total
}

// Table5Overheads holds the per-stripe detection/correction time and energy
// of the paper's Table 5.
type Table5Overheads struct {
	DetectNS, DetectPJ   float64
	CorrectNS, CorrectPJ float64
}

// Table5 returns the published overhead rows keyed by mechanism name.
func Table5() map[string]Table5Overheads {
	return map[string]Table5Overheads{
		"sts":              {0.82, 1.31, 0.82, 1.31},
		"p-ecc":            {0.34, 3.73, 1.34, 6.16},
		"p-ecc-o":          {0.34, 3.74, 1.34, 9.90},
		"p-ecc-s worst":    {0.38, 3.75, 1.35, 6.17},
		"p-ecc-s adaptive": {0.61, 3.86, 1.37, 6.19},
	}
}

// Account accumulates dynamic energy and leakage across the hierarchy.
type Account struct {
	L1NJ, L2NJ, L3NJ, ShiftNJ, DetectNJ, DRAMNJ float64
	LeakageJ                                    float64
}

// AddLeakage integrates leakage power over an interval.
func (a *Account) AddLeakage(watts, seconds float64) {
	a.LeakageJ += watts * seconds
}

// DynamicNJ returns total dynamic energy in nJ.
func (a *Account) DynamicNJ() float64 {
	return a.L1NJ + a.L2NJ + a.L3NJ + a.ShiftNJ + a.DetectNJ + a.DRAMNJ
}

// LLCDynamicNJ returns the LLC-only dynamic energy (Fig. 17's metric):
// L3 read/write plus shift plus detection.
func (a *Account) LLCDynamicNJ() float64 {
	return a.L3NJ + a.ShiftNJ + a.DetectNJ
}

// TotalJ returns total energy in joules including leakage (Fig. 18's
// metric).
func (a *Account) TotalJ() float64 {
	return a.DynamicNJ()*1e-9 + a.LeakageJ
}

// Merge adds another account into a.
func (a *Account) Merge(o Account) {
	a.L1NJ += o.L1NJ
	a.L2NJ += o.L2NJ
	a.L3NJ += o.L3NJ
	a.ShiftNJ += o.ShiftNJ
	a.DetectNJ += o.DetectNJ
	a.DRAMNJ += o.DRAMNJ
	a.LeakageJ += o.LeakageJ
}
