package energy

import (
	"math"
	"testing"
)

func TestTechString(t *testing.T) {
	if SRAM.String() != "sram" || STTRAM.String() != "stt-ram" || Racetrack.String() != "racetrack" {
		t.Error("tech names wrong")
	}
	if Tech(9).String() != "unknown-tech" {
		t.Error("unknown tech name")
	}
}

func TestTable4Constants(t *testing.T) {
	// Spot-check the published Table 4 values.
	l3 := L3(Racetrack)
	if l3.ReadCycles != 24 || l3.WriteCycles != 24 {
		t.Errorf("RM L3 latency %d/%d, want 24/24", l3.ReadCycles, l3.WriteCycles)
	}
	if l3.ReadNJ != 0.956 || l3.WriteNJ != 0.952 {
		t.Errorf("RM L3 energy %v/%v", l3.ReadNJ, l3.WriteNJ)
	}
	if l3.CapacityB != 128<<20 {
		t.Errorf("RM capacity %d", l3.CapacityB)
	}
	if L3(SRAM).CapacityB != 4<<20 || L3(STTRAM).CapacityB != 32<<20 {
		t.Error("SRAM/STT capacities wrong")
	}
	if L3(STTRAM).WriteCycles != 41 {
		t.Error("STT write latency wrong")
	}
	if L1().ReadCycles != 1 || L2().ReadCycles != 7 {
		t.Error("L1/L2 latencies wrong")
	}
	if DRAM().ReadCycles != 100 || DRAM().ReadNJ != 38.10 {
		t.Error("DRAM costs wrong")
	}
	// Leakage ordering from Table 4: SRAM >> RM > STT for the L3 options.
	if !(L3(SRAM).LeakageW > L3(Racetrack).LeakageW && L3(Racetrack).LeakageW > L3(STTRAM).LeakageW) {
		t.Error("L3 leakage ordering wrong")
	}
}

func TestShiftOpNJCalibration(t *testing.T) {
	s := DefaultShift()
	// 1-step shift must land on Table 4's 1.331 nJ within the detection
	// overhead.
	got := s.OpNJ(1)
	if math.Abs(got-1.331)/1.331 > 0.01 {
		t.Errorf("1-step shift = %v nJ, want ~1.331", got)
	}
	if s.OpNJ(0) != 0 || s.OpNJ(-2) != 0 {
		t.Error("non-positive distances should cost nothing")
	}
	// Energy grows linearly with distance.
	d := s.OpNJ(5) - s.OpNJ(4)
	if math.Abs(d-s.PerStepNJ) > 1e-12 {
		t.Errorf("per-step increment %v, want %v", d, s.PerStepNJ)
	}
}

func TestSeqNJAmortization(t *testing.T) {
	s := DefaultShift()
	// A single 4-step op is cheaper than four 1-step ops (per-op costs
	// paid once) — the energy analogue of the STS latency rule.
	oneBig := s.SeqNJ([]int{4}, false)
	fourSmall := s.SeqNJ([]int{1, 1, 1, 1}, false)
	if oneBig >= fourSmall {
		t.Errorf("4-step %v nJ should beat 4x1-step %v nJ", oneBig, fourSmall)
	}
}

func TestSeqNJOWritePenalty(t *testing.T) {
	s := DefaultShift()
	plain := s.SeqNJ([]int{1, 1, 1, 1}, false)
	owrite := s.SeqNJ([]int{1, 1, 1, 1}, true)
	if owrite <= plain {
		t.Error("p-ECC-O writes must add energy")
	}
	// The p-ECC-O penalty for a typical 4-step access (4x 1-step with
	// writes vs one 4-step op) should land in the vicinity of the paper's
	// +46% LLC dynamic energy overhead.
	base := s.SeqNJ([]int{4}, false)
	ratio := owrite / base
	if ratio < 1.2 || ratio > 2.0 {
		t.Errorf("p-ECC-O energy ratio = %v, want 1.2-2.0 (paper: ~1.46 overall)", ratio)
	}
}

func TestTable5Published(t *testing.T) {
	tbl := Table5()
	if len(tbl) != 5 {
		t.Fatalf("Table 5 rows = %d, want 5", len(tbl))
	}
	p := tbl["p-ecc"]
	if p.DetectNS != 0.34 || p.DetectPJ != 3.73 || p.CorrectNS != 1.34 || p.CorrectPJ != 6.16 {
		t.Errorf("p-ecc row = %+v", p)
	}
	// p-ECC-O pays more correction energy than p-ECC (9.90 vs 6.16 pJ).
	if tbl["p-ecc-o"].CorrectPJ <= tbl["p-ecc"].CorrectPJ {
		t.Error("p-ECC-O correction energy should exceed p-ECC")
	}
	// Adaptive detection is slower than worst-case (0.61 vs 0.38 ns).
	if tbl["p-ecc-s adaptive"].DetectNS <= tbl["p-ecc-s worst"].DetectNS {
		t.Error("adaptive detection should be slower")
	}
}

func TestAccountAccumulation(t *testing.T) {
	var a Account
	a.L1NJ = 1
	a.L2NJ = 2
	a.L3NJ = 3
	a.ShiftNJ = 4
	a.DetectNJ = 0.5
	a.DRAMNJ = 10
	if a.DynamicNJ() != 20.5 {
		t.Errorf("DynamicNJ = %v", a.DynamicNJ())
	}
	if a.LLCDynamicNJ() != 7.5 {
		t.Errorf("LLCDynamicNJ = %v", a.LLCDynamicNJ())
	}
	a.AddLeakage(2.0, 3.0)
	if a.LeakageJ != 6 {
		t.Errorf("LeakageJ = %v", a.LeakageJ)
	}
	want := 20.5e-9 + 6
	if math.Abs(a.TotalJ()-want) > 1e-15 {
		t.Errorf("TotalJ = %v, want %v", a.TotalJ(), want)
	}
}

func TestAccountMerge(t *testing.T) {
	a := Account{L1NJ: 1, LeakageJ: 2}
	b := Account{L1NJ: 3, DRAMNJ: 4, LeakageJ: 5}
	a.Merge(b)
	if a.L1NJ != 4 || a.DRAMNJ != 4 || a.LeakageJ != 7 {
		t.Errorf("merge result %+v", a)
	}
}
