package pecc

import (
	"fmt"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

// InitStats reports the outcome of a program-and-test initialization run.
type InitStats struct {
	Rounds      int    // verification round-trips performed
	Restarts    int    // times the process restarted after a detected fault
	ShiftOps    uint64 // total 1-step shift operations issued
	Cycles      uint64 // total latency in controller cycles
	WriteOps    uint64 // code bits written
	Initialized bool   // whether the code was verified in place
}

// InitConfig configures the §4.3 "program-and-test" p-ECC initialization.
type InitConfig struct {
	// Rounds is the number of full verify round-trips (Step-4). One round
	// already drives the residual error probability below ~1e-100 for the
	// default stripe (paper §4.3); more rounds shrink it further.
	Rounds int
	// MaxRestarts bounds how many times the process may restart after a
	// detected fault before giving up.
	MaxRestarts int
	// StepCycles is the latency of one 1-step shift (3 cycles with STS at
	// 2 GHz) and TestCycles of one port readout comparison.
	StepCycles, TestCycles uint64
}

// DefaultInitConfig matches the paper's description.
func DefaultInitConfig() InitConfig {
	return InitConfig{Rounds: 1, MaxRestarts: 8, StepCycles: 3, TestCycles: 1}
}

// Initialize programs the code pattern into the p-ECC region of st
// (described by lay) and verifies it with the iterative program-and-test
// procedure of §4.3:
//
//	Step-1: code bits are written in from the leftmost port, one bit per
//	        1-step shift (shift-and-write).
//	Step-2: the bits are shifted step by step to the right end, every port
//	        along the way checking for unexpected values.
//	Step-3: the bits are shifted back to the left end with the same checks.
//	Step-4: steps 2-3 repeat for cfg.Rounds rounds.
//
// Position errors during initialization are drawn from em (1-step rates);
// any detected mismatch restarts the whole process. The stripe's p-ECC
// region holds the verified pattern on success.
func Initialize(c Code, st *stripe.Stripe, lay stripe.Layout, em errmodel.Model, cfg InitConfig, r *sim.RNG) (InitStats, error) {
	if lay.PECCLen < c.Length() {
		return InitStats{}, fmt.Errorf("pecc: layout p-ECC region %d too short for code %d", lay.PECCLen, c.Length())
	}
	var stats InitStats

	for restart := 0; ; restart++ {
		if restart > cfg.MaxRestarts {
			return stats, fmt.Errorf("pecc: initialization exceeded %d restarts", cfg.MaxRestarts)
		}
		if restart > 0 {
			stats.Restarts++
		}
		if initializeOnce(c, st, lay, em, cfg, r, &stats) {
			stats.Initialized = true
			return stats, nil
		}
	}
}

// initializeOnce performs one full program-and-test pass; it reports success.
func initializeOnce(c Code, st *stripe.Stripe, lay stripe.Layout, em errmodel.Model, cfg InitConfig, r *sim.RNG, stats *InitStats) bool {
	pat := c.Pattern()
	// The model writes the verified pattern directly into the region and
	// then walks it right and left, injecting 1-step position errors; a
	// surviving walk proves the pattern landed correctly. A detected error
	// during the walk aborts the pass. Drift accumulates in trueOff;
	// checks compare the region content against the pattern at believed
	// positions, so any net drift is caught at the first check that sees
	// a mismatched bit.
	region := make([]stripe.Bit, lay.PECCLen)
	for i := range region {
		region[i] = stripe.Unknown
	}
	copy(region, pat)
	writeRegion(st, lay, region)
	stats.WriteOps += uint64(len(pat))
	stats.ShiftOps += uint64(len(pat)) // one shift per written bit
	stats.Cycles += uint64(len(pat)) * cfg.StepCycles

	span := lay.PECCLen - c.Length() // headroom for the verification walk
	for round := 0; round < cfg.Rounds; round++ {
		stats.Rounds++
		// Walk right then left across the headroom, checking each step.
		if !walk(c, st, lay, em, cfg, r, stats, span, true) {
			return false
		}
		if !walk(c, st, lay, em, cfg, r, stats, span, false) {
			return false
		}
	}
	return true
}

// walk shifts the code pattern span steps in one direction, one step per
// operation, verifying the full region after every step. It reports whether
// the walk completed without detecting a fault.
func walk(c Code, st *stripe.Stripe, lay stripe.Layout, em errmodel.Model, cfg InitConfig, r *sim.RNG, stats *InitStats, span int, right bool) bool {
	for step := 0; step < span; step++ {
		stats.ShiftOps++
		stats.Cycles += cfg.StepCycles + cfg.TestCycles
		o := em.Sample(1, r)
		dist := 1 + o.StepOffset
		if dist < 0 {
			dist = 0
		}
		lo := lay.PECCSlot(0)
		if right {
			shiftWindow(st, lay, lo, dist, true)
		} else {
			shiftWindow(st, lay, lo, dist, false)
		}
		if o.StopInMiddle {
			st.SetMisaligned(true)
		}
		// Verify: compare region content against the pattern at the
		// believed displacement.
		believed := step + 1
		if !right {
			believed = span - step - 1
		}
		if !verifyAt(c, st, lay, believed) {
			st.SetMisaligned(false)
			return false
		}
	}
	return true
}

// shiftWindow shifts only the p-ECC region content (the data region is not
// yet in service during initialization, so whole-stripe movement is
// equivalent; we move the region to keep the oracle simple).
func shiftWindow(st *stripe.Stripe, lay stripe.Layout, lo, dist int, right bool) {
	if dist == 0 {
		return
	}
	region := make([]stripe.Bit, lay.PECCLen)
	for i := range region {
		region[i] = st.Peek(lo + i)
	}
	if right {
		copy(region[dist:], region[:len(region)-dist])
		for i := 0; i < dist; i++ {
			region[i] = stripe.Unknown
		}
	} else {
		copy(region[:len(region)-dist], region[dist:])
		for i := len(region) - dist; i < len(region); i++ {
			region[i] = stripe.Unknown
		}
	}
	writeRegion(st, lay, region)
}

func writeRegion(st *stripe.Stripe, lay stripe.Layout, region []stripe.Bit) {
	lo := lay.PECCSlot(0)
	snap := st.Snapshot()
	copy(snap[lo:lo+len(region)], region)
	st.LoadSlots(snap)
}

// verifyAt checks that the code pattern sits at displacement off within the
// p-ECC region. A misaligned stripe always fails verification (ports read
// Unknown).
func verifyAt(c Code, st *stripe.Stripe, lay stripe.Layout, off int) bool {
	if st.Misaligned() {
		return false
	}
	lo := lay.PECCSlot(0)
	for i := 0; i < c.Length(); i++ {
		if st.Peek(lo+off+i) != c.Bit(i) {
			return false
		}
	}
	return true
}

// ExpectedInitCycles estimates the §4.3 initialization latency for a stripe
// with the given layout under the default configuration, without running
// it: writes + 2*rounds*span walk steps.
func ExpectedInitCycles(c Code, lay stripe.Layout, cfg InitConfig) uint64 {
	span := lay.PECCLen - c.Length()
	if span < 0 {
		span = 0
	}
	write := uint64(c.Length()) * cfg.StepCycles
	walk := uint64(2*cfg.Rounds*span) * (cfg.StepCycles + cfg.TestCycles)
	return write + walk
}
