// Package pecc implements position error correction codes (p-ECC), the
// paper's primary contribution (§4.2).
//
// A p-ECC is a cyclic bit pattern stored in dedicated domains of a racetrack
// stripe and read through extra read ports. Because the pattern shifts
// together with the data domains, the code bits visible under the fixed
// ports reveal the tape's true displacement modulo the pattern period; the
// difference between that and the controller's believed displacement is
// exactly the accumulated out-of-step position error.
//
// A code with correction strength m uses the square-wave pattern of period
// P = 2(m+1) (m=1 gives the paper's Fig. 6(e) cycle 11→10→00→01) read
// through a window of W = m+1 ports. Every one of the P cyclic phases
// produces a distinct window, so the decoder can:
//
//   - correct any out-of-step error with |e| <= m (unique phase distance), and
//   - detect |e| = m+1 (phase distance m+1 is shared by +(m+1) and -(m+1),
//     so the direction — and therefore the correction — is unknown).
//
// m = 0 degenerates to the paper's SED code '10101...': a single port
// detecting odd step errors without direction, the position analogue of a
// parity bit. m = 1 is the SECDED configuration used throughout the
// evaluation.
package pecc

import (
	"fmt"

	"racetrack/hifi/internal/stripe"
	"racetrack/hifi/internal/telemetry"
)

// Code is a p-ECC of a given correction strength for a given segment
// length. The zero value is invalid; use New.
type Code struct {
	m      int // correctable step magnitude
	segLen int // Lseg of the protected stripe
	tel    *DecodeTelemetry
}

// DecodeTelemetry counts decoder verdicts. Handles are nil-safe, so a
// partially filled struct is fine.
type DecodeTelemetry struct {
	// Checks counts Decode invocations (one per p-ECC verify).
	Checks *telemetry.Counter
	// Detected counts any expected/observed code mismatch.
	Detected *telemetry.Counter
	// Correctable counts mismatches within the correction strength.
	Correctable *telemetry.Counter
	// Indeterminate counts undecodable windows (Unknown bits).
	Indeterminate *telemetry.Counter
}

// NewDecodeTelemetry registers the decoder series on reg (nil reg
// yields an inert, still-usable struct).
func NewDecodeTelemetry(reg *telemetry.Registry) *DecodeTelemetry {
	return &DecodeTelemetry{
		Checks:        reg.Counter(telemetry.MetricPECCChecks, "p-ECC decode checks performed"),
		Detected:      reg.Counter(telemetry.MetricPECCDetected, "p-ECC checks detecting a position error"),
		Correctable:   reg.Counter(telemetry.MetricPECCCorrections, "p-ECC detections within correction strength"),
		Indeterminate: reg.Counter(telemetry.MetricPECCIndeterminate, "p-ECC windows that could not be decoded"),
	}
}

// WithTelemetry returns a copy of the code that reports every Decode
// into t. The code itself is unchanged; pass nil to detach.
func (c Code) WithTelemetry(t *DecodeTelemetry) Code {
	c.tel = t
	return c
}

// observe records one decode verdict.
func (t *DecodeTelemetry) observe(r Result) {
	if t == nil {
		return
	}
	t.Checks.Inc()
	if r.Detected {
		t.Detected.Inc()
	}
	if r.Correctable {
		t.Correctable.Inc()
	}
	if r.Indeterminate {
		t.Indeterminate.Inc()
	}
}

// New returns a p-ECC correcting up to m-step errors (and detecting
// (m+1)-step errors) for a stripe with segment length segLen.
// m must satisfy 0 <= m < segLen-1 (paper §4.2.3).
func New(m, segLen int) (Code, error) {
	if segLen < 2 {
		return Code{}, fmt.Errorf("pecc: segment length %d too short", segLen)
	}
	if m < 0 || m >= segLen-1 {
		return Code{}, fmt.Errorf("pecc: strength m=%d outside [0, %d)", m, segLen-1)
	}
	return Code{m: m, segLen: segLen}, nil
}

// MustNew is New but panics on error; for tests and package-level defaults.
func MustNew(m, segLen int) Code {
	c, err := New(m, segLen)
	if err != nil {
		panic(err)
	}
	return c
}

// SED returns the single-step-error-detection code (§4.2.1).
func SED(segLen int) Code { return MustNew(0, segLen) }

// SECDED returns the single-step-correct / double-step-detect code
// (§4.2.2), the paper's default protection.
func SECDED(segLen int) Code { return MustNew(1, segLen) }

// M returns the correctable error magnitude.
func (c Code) M() int { return c.m }

// SegLen returns the protected segment length.
func (c Code) SegLen() int { return c.segLen }

// Window returns the number of code bits read per check: m+1 read ports.
func (c Code) Window() int { return c.m + 1 }

// Period returns the cyclic period of the code pattern: 2(m+1).
func (c Code) Period() int { return 2 * (c.m + 1) }

// Length returns the number of code domains required so that the read
// window stays over valid code bits for every reachable displacement:
// legal offsets 0..Lseg-1 plus errors up to +-(m+1), plus the window
// itself: Lseg + 3m + 2. (The paper's Fig. 6 example: Lseg=4, m=1 → 9.)
func (c Code) Length() int { return c.segLen + 3*c.m + 2 }

// AreaLength returns the code length used by the paper's §4.2.3 overhead
// accounting, Lseg - 1 + 2m, which its area results (Table 5, Fig 13)
// follow. See EXPERIMENTS.md for the discrepancy note.
func (c Code) AreaLength() int { return c.segLen - 1 + 2*c.m }

// GuardDomains returns the extra guard domains required at the data ends to
// prevent data loss under correctable errors: 2m total (m per end).
func (c Code) GuardDomains() int { return 2 * c.m }

// Bit returns code bit i of the square-wave pattern: 1 for the first m+1
// phases of each period. Indices may exceed Length for cyclic reasoning.
func (c Code) Bit(i int) stripe.Bit {
	p := i % c.Period()
	if p < 0 {
		p += c.Period()
	}
	return stripe.FromBool(p < c.m+1)
}

// Pattern returns the full code pattern of Length() bits, in stripe order.
func (c Code) Pattern() []stripe.Bit {
	out := make([]stripe.Bit, c.Length())
	for i := range out {
		out[i] = c.Bit(i)
	}
	return out
}

// ExpectedWindow returns the window of code bits the ports should read when
// the tape's net displacement is offset steps (leftward positive, matching
// stripe.Layout's alignment convention). The window reads code bits
// offset+base .. offset+base+W-1 where the base port alignment is chosen by
// the layout; the decoder only ever uses phase differences, so base 0 is
// used here.
func (c Code) ExpectedWindow(offset int) []stripe.Bit {
	out := make([]stripe.Bit, c.Window())
	for i := range out {
		out[i] = c.Bit(offset + i)
	}
	return out
}

// phaseOf returns the cyclic phase (0..P-1) whose window matches read, or
// -1 if read contains an Unknown bit or matches no phase (impossible for
// well-formed square-wave windows).
func (c Code) phaseOf(read []stripe.Bit) int {
	if len(read) != c.Window() {
		panic(fmt.Sprintf("pecc: window size %d, want %d", len(read), c.Window()))
	}
	for _, b := range read {
		if b != stripe.Zero && b != stripe.One {
			return -1
		}
	}
	for p := 0; p < c.Period(); p++ {
		match := true
		for i := range read {
			if c.Bit(p+i) != read[i] {
				match = false
				break
			}
		}
		if match {
			return p
		}
	}
	return -1
}

// Result is the decoder's verdict for one check.
type Result struct {
	// Offset is the detected out-of-step error in steps (positive meaning
	// the tape moved further than believed, in the direction of the last
	// shift's positive sense). Valid only when Correctable.
	Offset int
	// Detected reports any mismatch between expected and observed code.
	Detected bool
	// Correctable reports the error magnitude is <= m, so Offset is exact.
	Correctable bool
	// Indeterminate reports the window could not be decoded at all
	// (Unknown bits from a stop-in-middle, or corrupted code domains).
	Indeterminate bool
}

// Decode compares the code window read from the ports against the window
// expected at the believed displacement and classifies the position error.
func (c Code) Decode(believedOffset int, read []stripe.Bit) Result {
	r := c.decode(believedOffset, read)
	c.tel.observe(r)
	return r
}

func (c Code) decode(believedOffset int, read []stripe.Bit) Result {
	actual := c.phaseOf(read)
	if actual < 0 {
		return Result{Detected: true, Indeterminate: true}
	}
	expected := believedOffset % c.Period()
	if expected < 0 {
		expected += c.Period()
	}
	delta := (actual - expected) % c.Period()
	if delta < 0 {
		delta += c.Period()
	}
	switch {
	case delta == 0:
		return Result{}
	case delta <= c.m:
		return Result{Offset: delta, Detected: true, Correctable: true}
	case delta >= c.Period()-c.m:
		return Result{Offset: delta - c.Period(), Detected: true, Correctable: true}
	default:
		// delta == m+1: +-(m+1) are indistinguishable — detect only.
		return Result{Detected: true}
	}
}
