package pecc

import (
	"testing"

	"racetrack/hifi/internal/stripe"
)

// Exhaustive sweeps over the full supported design space: every strength m
// and segment length combination must decode every reachable (believed,
// error) pair correctly. These are the properties the architecture's
// correctness rests on.

func TestSweepAllStrengthsAllSegLens(t *testing.T) {
	for segLen := 2; segLen <= 64; segLen *= 2 {
		for m := 0; m < segLen-1 && m <= 6; m++ {
			c, err := New(m, segLen)
			if err != nil {
				t.Fatalf("New(%d,%d): %v", m, segLen, err)
			}
			// Geometry invariants.
			if c.Window() != m+1 || c.Period() != 2*(m+1) {
				t.Fatalf("m=%d: window/period wrong", m)
			}
			if c.Length() < c.Window() {
				t.Fatalf("m=%d Lseg=%d: code shorter than window", m, segLen)
			}
			// Every believed offset in the access range, every error in
			// the correctable band.
			for believed := 0; believed < segLen; believed++ {
				for e := -(m + 1); e <= m+1; e++ {
					res := c.Decode(believed, c.ExpectedWindow(believed+e))
					switch {
					case e == 0:
						if res.Detected {
							t.Fatalf("m=%d Lseg=%d b=%d: false positive", m, segLen, believed)
						}
					case abs(e) <= m:
						if !res.Correctable || res.Offset != e {
							t.Fatalf("m=%d Lseg=%d b=%d e=%+d: got %+v", m, segLen, believed, e, res)
						}
					default: // |e| == m+1
						if !res.Detected || res.Correctable {
							t.Fatalf("m=%d Lseg=%d b=%d e=%+d: got %+v", m, segLen, believed, e, res)
						}
					}
				}
			}
		}
	}
}

func TestSweepCodeLengthMonotone(t *testing.T) {
	// Stronger codes and longer segments both need more code domains.
	prev := 0
	for m := 0; m <= 5; m++ {
		c := MustNew(m, 16)
		if c.Length() <= prev {
			t.Fatalf("m=%d: length %d not increasing", m, c.Length())
		}
		prev = c.Length()
	}
	prev = 0
	for segLen := 4; segLen <= 64; segLen *= 2 {
		c := MustNew(1, segLen)
		if c.Length() <= prev {
			t.Fatalf("Lseg=%d: length %d not increasing", segLen, c.Length())
		}
		prev = c.Length()
	}
	// p-ECC-O extra domains are segment-length independent.
	a := MustNewO(1, 4).ExtraDomains()
	b := MustNewO(1, 64).ExtraDomains()
	if a != b {
		t.Errorf("p-ECC-O extra domains depend on Lseg: %d vs %d", a, b)
	}
}

func TestSweepWindowsAlwaysBinary(t *testing.T) {
	// The generated pattern never contains Unknown.
	for m := 0; m <= 5; m++ {
		c := MustNew(m, 16)
		for _, b := range c.Pattern() {
			if b != stripe.Zero && b != stripe.One {
				t.Fatalf("m=%d: non-binary pattern bit", m)
			}
		}
	}
}

func TestSweepAliasBoundary(t *testing.T) {
	// Errors of magnitude exactly one period alias to silence for every
	// strength: the fundamental limit of cyclic position codes.
	for m := 0; m <= 4; m++ {
		c := MustNew(m, 32)
		p := c.Period()
		res := c.Decode(3, c.ExpectedWindow(3+p))
		if res.Detected {
			t.Errorf("m=%d: full-period error detected (should alias)", m)
		}
		res = c.Decode(3, c.ExpectedWindow(3-p))
		if res.Detected {
			t.Errorf("m=%d: negative full-period error detected", m)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
