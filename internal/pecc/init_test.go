package pecc

import (
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

func initLayout(c Code) stripe.Layout {
	return stripe.Layout{
		DataLen:    64,
		SegLen:     c.SegLen(),
		GuardLeft:  2,
		GuardRight: 2,
		PECCLen:    c.Length() + 6, // headroom for the verification walk
		PECCPorts:  c.Window(),
	}
}

func TestInitializeCleanDevice(t *testing.T) {
	c := SECDED(8)
	lay := initLayout(c)
	st := stripe.New(lay.TotalSlots())
	stats, err := Initialize(c, st, lay, errmodel.Model{}, DefaultInitConfig(), sim.NewRNG(1))
	if err != nil {
		t.Fatalf("Initialize: %v", err)
	}
	if !stats.Initialized {
		t.Fatal("not initialized")
	}
	if stats.Restarts != 0 {
		t.Errorf("clean device restarted %d times", stats.Restarts)
	}
	if stats.Cycles == 0 || stats.ShiftOps == 0 {
		t.Error("no work recorded")
	}
	// After the walk the pattern must sit at displacement 0.
	lo := lay.PECCSlot(0)
	for i := 0; i < c.Length(); i++ {
		if st.Peek(lo+i) != c.Bit(i) {
			t.Fatalf("code bit %d = %v after init, want %v", i, st.Peek(lo+i), c.Bit(i))
		}
	}
}

func TestInitializeRegionTooShort(t *testing.T) {
	c := SECDED(8)
	lay := initLayout(c)
	lay.PECCLen = c.Length() - 1
	lay.PECCPorts = 0
	st := stripe.New(lay.TotalSlots())
	if _, err := Initialize(c, st, lay, errmodel.Model{}, DefaultInitConfig(), sim.NewRNG(1)); err == nil {
		t.Fatal("accepted undersized p-ECC region")
	}
}

func TestInitializeRecoversFromErrors(t *testing.T) {
	// With heavily inflated 1-step error rates the process must restart
	// at least once across many trials and still converge.
	c := SECDED(8)
	lay := initLayout(c)
	em := errmodel.Model{RateScale: 2000} // 1-step rate ~0.09
	restarts := 0
	r := sim.NewRNG(2)
	for trial := 0; trial < 50; trial++ {
		st := stripe.New(lay.TotalSlots())
		stats, err := Initialize(c, st, lay, em, DefaultInitConfig(), r)
		if err != nil {
			continue // exhausting restarts is acceptable at this rate
		}
		restarts += stats.Restarts
		if !stats.Initialized {
			t.Fatal("returned nil error without initializing")
		}
	}
	if restarts == 0 {
		t.Error("inflated error rate never caused a restart in 50 trials")
	}
}

func TestInitializeGivesUpEventually(t *testing.T) {
	c := SECDED(8)
	lay := initLayout(c)
	// Guarantee failure: every shift errs.
	em := errmodel.Model{RateScale: 1e9}
	st := stripe.New(lay.TotalSlots())
	cfg := DefaultInitConfig()
	cfg.MaxRestarts = 3
	if _, err := Initialize(c, st, lay, em, cfg, sim.NewRNG(3)); err == nil {
		t.Fatal("Initialize should fail when every shift errs")
	}
}

func TestExpectedInitCycles(t *testing.T) {
	c := SECDED(8)
	lay := initLayout(c)
	cfg := DefaultInitConfig()
	want := ExpectedInitCycles(c, lay, cfg)
	st := stripe.New(lay.TotalSlots())
	stats, err := Initialize(c, st, lay, errmodel.Model{}, cfg, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != want {
		t.Errorf("clean-run cycles %d != ExpectedInitCycles %d", stats.Cycles, want)
	}
}

func TestInitLatencyPaperScale(t *testing.T) {
	// Paper §4.3: for a 64-domain, 8-port stripe the expected latency is
	// ~1200 cycles. Our protocol walks the p-ECC headroom rather than the
	// full stripe, so we check the same order of magnitude with a full
	// data-span walk configuration.
	c := SECDED(8)
	lay := initLayout(c)
	lay.PECCLen = c.Length() + 64 // walk the span of the data region
	cfg := DefaultInitConfig()
	cfg.Rounds = 4
	got := ExpectedInitCycles(c, lay, cfg)
	if got < 300 || got > 5000 {
		t.Errorf("init cycles = %d, want order of the paper's ~1200", got)
	}
}
