package pecc

// OCode is the p-ECC-O variant (§4.2.4): instead of a dedicated code region,
// the cyclic code is kept in the overhead regions at both ends of the
// stripe, maintained by a "shift-and-write" write port at each end.
//
// Functionally the decode logic is identical to Code (the same cyclic
// phase comparison), so OCode embeds it. The architectural differences that
// drive the paper's trade-off are captured by the methods below:
//
//   - shifts are limited to one step per operation (the overhead-region
//     code bit must be written as each step completes), which roughly
//     doubles total shift latency (Fig. 14) and raises dynamic energy
//     (Fig. 17);
//   - the extra-domain cost is 2(m+1) per end, independent of Lseg, which
//     beats the original p-ECC's Lseg-dependent code region for long
//     segments (Fig. 13);
//   - because every operation moves a single step, the per-operation
//     uncorrectable rate is the 1-step rate, giving p-ECC-O the highest
//     MTTF of all variants (Fig. 12).
type OCode struct {
	Code
}

// NewO returns a p-ECC-O of strength m for a stripe with segment length
// segLen.
func NewO(m, segLen int) (OCode, error) {
	c, err := New(m, segLen)
	return OCode{c}, err
}

// MustNewO is NewO but panics on error.
func MustNewO(m, segLen int) OCode {
	o, err := NewO(m, segLen)
	if err != nil {
		panic(err)
	}
	return o
}

// MaxShiftPerOp returns the longest distance a single shift operation may
// cover under p-ECC-O: always 1 (shift-and-write is bit-by-bit).
func (OCode) MaxShiftPerOp() int { return 1 }

// ExtraDomainsPerEnd returns the overhead-region domains dedicated to the
// code at each stripe end: 2(m+1).
func (o OCode) ExtraDomainsPerEnd() int { return 2 * (o.m + 1) }

// ExtraDomains returns the total extra domains: both ends plus the same 2m
// data guard domains as the original p-ECC.
func (o OCode) ExtraDomains() int { return 2*o.ExtraDomainsPerEnd() + o.GuardDomains() }

// PortsPerEnd returns the access ports added at each end: m+1 read ports
// for the code window plus the shift-and-write port.
func (o OCode) PortsPerEnd() int { return o.m + 2 }

// WritePorts returns the number of write-capable ports added (one per end).
func (OCode) WritePorts() int { return 2 }
