package pecc

import (
	"testing"
	"testing/quick"

	"racetrack/hifi/internal/stripe"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 8); err != nil {
		t.Fatalf("New(1,8): %v", err)
	}
	bad := []struct{ m, l int }{
		{-1, 8}, {7, 8}, {8, 8}, {0, 1}, {1, 0},
	}
	for _, c := range bad {
		if _, err := New(c.m, c.l); err == nil {
			t.Errorf("New(%d,%d) accepted", c.m, c.l)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(-1,8) did not panic")
		}
	}()
	MustNew(-1, 8)
}

func TestSEDProperties(t *testing.T) {
	c := SED(8)
	if c.M() != 0 || c.Window() != 1 || c.Period() != 2 {
		t.Fatalf("SED geometry wrong: m=%d w=%d p=%d", c.M(), c.Window(), c.Period())
	}
	// Pattern is 10101... (alternating), the paper's '10101'.
	for i := 0; i < 10; i++ {
		want := stripe.FromBool(i%2 == 0)
		if c.Bit(i) != want {
			t.Errorf("SED bit %d = %v, want %v", i, c.Bit(i), want)
		}
	}
}

func TestSECDEDGeometry(t *testing.T) {
	c := SECDED(4)
	if c.Window() != 2 || c.Period() != 4 {
		t.Fatalf("SECDED geometry wrong: w=%d p=%d", c.Window(), c.Period())
	}
	// Paper Fig 6: Lseg=4, m=1 needs 9 code domains.
	if c.Length() != 9 {
		t.Errorf("SECDED(4) length = %d, want 9", c.Length())
	}
	if c.GuardDomains() != 2 {
		t.Errorf("guard domains = %d, want 2", c.GuardDomains())
	}
	// §4.2.3 area accounting: Lseg-1+2m.
	if c.AreaLength() != 5 {
		t.Errorf("area length = %d, want 5", c.AreaLength())
	}
}

func TestSECDEDCyclicWindows(t *testing.T) {
	// Fig 6(e): the 2-bit window cycles 11 -> 10 -> 00 -> 01.
	c := SECDED(8)
	want := [][2]stripe.Bit{
		{stripe.One, stripe.One},
		{stripe.One, stripe.Zero},
		{stripe.Zero, stripe.Zero},
		{stripe.Zero, stripe.One},
	}
	for p := 0; p < 4; p++ {
		w := c.ExpectedWindow(p)
		if w[0] != want[p][0] || w[1] != want[p][1] {
			t.Errorf("phase %d window = %v%v, want %v%v", p, w[0], w[1], want[p][0], want[p][1])
		}
	}
}

func TestAllPhasesDistinct(t *testing.T) {
	// The fundamental property making correction possible: all P cyclic
	// windows are distinct, for every strength.
	for m := 0; m <= 5; m++ {
		c := MustNew(m, 16)
		seen := make(map[string]int)
		for p := 0; p < c.Period(); p++ {
			w := c.ExpectedWindow(p)
			key := ""
			for _, b := range w {
				key += b.String()
			}
			if prev, ok := seen[key]; ok {
				t.Errorf("m=%d: phases %d and %d share window %s", m, prev, p, key)
			}
			seen[key] = p
		}
	}
}

func TestDecodeNoError(t *testing.T) {
	c := SECDED(8)
	for off := 0; off < 16; off++ {
		res := c.Decode(off, c.ExpectedWindow(off))
		if res.Detected {
			t.Errorf("offset %d: false positive %+v", off, res)
		}
	}
}

func TestDecodeCorrectsWithinM(t *testing.T) {
	for m := 1; m <= 4; m++ {
		c := MustNew(m, 16)
		for believed := 0; believed < 12; believed++ {
			for e := -m; e <= m; e++ {
				if e == 0 {
					continue
				}
				res := c.Decode(believed, c.ExpectedWindow(believed+e))
				if !res.Detected || !res.Correctable {
					t.Fatalf("m=%d believed=%d e=%+d: not corrected: %+v", m, believed, e, res)
				}
				if res.Offset != e {
					t.Fatalf("m=%d believed=%d: offset %+d decoded as %+d", m, believed, e, res.Offset)
				}
			}
		}
	}
}

func TestDecodeDetectsMPlus1(t *testing.T) {
	for m := 0; m <= 3; m++ {
		c := MustNew(m, 16)
		for _, sign := range []int{1, -1} {
			e := sign * (m + 1)
			res := c.Decode(5, c.ExpectedWindow(5+e))
			if !res.Detected {
				t.Errorf("m=%d e=%+d: not detected", m, e)
			}
			if res.Correctable {
				t.Errorf("m=%d e=%+d: wrongly claimed correctable", m, e)
			}
			if res.Indeterminate {
				t.Errorf("m=%d e=%+d: wrongly indeterminate", m, e)
			}
		}
	}
}

func TestDecodeAliasesBeyondDetection(t *testing.T) {
	// Errors beyond m+1 alias back into the cyclic code: a P-step error is
	// silent (this is why those rates must be negligible — the paper's
	// |k|>=3 rates are "too small"). Document the aliasing explicitly.
	c := SECDED(8)
	res := c.Decode(4, c.ExpectedWindow(4+c.Period()))
	if res.Detected {
		t.Errorf("full-period error should alias to silence, got %+v", res)
	}
}

func TestDecodeIndeterminateOnUnknown(t *testing.T) {
	c := SECDED(8)
	res := c.Decode(0, []stripe.Bit{stripe.Unknown, stripe.One})
	if !res.Detected || !res.Indeterminate {
		t.Errorf("Unknown window should be indeterminate: %+v", res)
	}
}

func TestDecodeNegativeBelievedOffset(t *testing.T) {
	c := SECDED(8)
	res := c.Decode(-3, c.ExpectedWindow(-3))
	if res.Detected {
		t.Errorf("negative believed offset false positive: %+v", res)
	}
	res = c.Decode(-3, c.ExpectedWindow(-2))
	if !res.Correctable || res.Offset != 1 {
		t.Errorf("negative believed offset: %+v", res)
	}
}

func TestDecodeWindowSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short window did not panic")
		}
	}()
	SECDED(8).Decode(0, []stripe.Bit{stripe.One})
}

func TestPatternLength(t *testing.T) {
	c := SECDED(8)
	if got := len(c.Pattern()); got != c.Length() {
		t.Errorf("pattern length %d != Length %d", got, c.Length())
	}
}

func TestQuickDecodeRoundTrip(t *testing.T) {
	// Property: for any believed offset and any error within +-m, encode
	// then decode recovers the error exactly.
	f := func(mRaw, offRaw uint8, eRaw int8) bool {
		m := int(mRaw%4) + 1
		c := MustNew(m, 16)
		believed := int(offRaw % 15)
		e := int(eRaw) % (m + 1)
		res := c.Decode(believed, c.ExpectedWindow(believed+e))
		if e == 0 {
			return !res.Detected
		}
		return res.Correctable && res.Offset == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitNegativeIndex(t *testing.T) {
	c := SECDED(8)
	// Cyclic extension must be consistent both directions.
	for i := -8; i < 8; i++ {
		if c.Bit(i) != c.Bit(i+c.Period()) {
			t.Errorf("Bit not periodic at %d", i)
		}
	}
}

func TestOCodeProperties(t *testing.T) {
	o := MustNewO(1, 8)
	if o.MaxShiftPerOp() != 1 {
		t.Error("p-ECC-O must shift step by step")
	}
	if o.ExtraDomainsPerEnd() != 4 {
		t.Errorf("extra domains per end = %d, want 4 (paper §4.2.4 example)", o.ExtraDomainsPerEnd())
	}
	// Paper: 15.7% cell overhead on a 64-domain stripe ≈ 10 domains.
	if got := o.ExtraDomains(); got != 10 {
		t.Errorf("total extra domains = %d, want 10", got)
	}
	if o.PortsPerEnd() != 3 || o.WritePorts() != 2 {
		t.Errorf("ports per end = %d, write ports = %d", o.PortsPerEnd(), o.WritePorts())
	}
	// Decoding behaviour is inherited unchanged.
	res := o.Decode(2, o.ExpectedWindow(3))
	if !res.Correctable || res.Offset != 1 {
		t.Errorf("OCode decode: %+v", res)
	}
}

func TestNewOValidation(t *testing.T) {
	if _, err := NewO(9, 8); err == nil {
		t.Error("NewO accepted invalid strength")
	}
}
