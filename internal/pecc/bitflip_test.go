package pecc

import (
	"testing"

	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

// The paper treats transient bit errors and position errors as orthogonal
// (§1: the cassette analogy — head-sensing noise vs tape-speed flutter).
// These tests characterize what a transient bit flip in a p-ECC code
// domain does to the position decoder: the possible outcomes are a decode
// failure (Indeterminate -> DUE, safe) or an alias onto a neighbouring
// phase (a bounded miscorrection of at most m steps). A flip can never
// cause an unbounded silent drift, which is why p-ECC composes with
// conventional bit-ECC rather than replacing it.

func TestBitFlipInWindowOutcomes(t *testing.T) {
	for m := 1; m <= 3; m++ {
		c := MustNew(m, 8)
		w := c.Window()
		indeterminate, alias := 0, 0
		for believed := 0; believed < 8; believed++ {
			for bit := 0; bit < w; bit++ {
				win := c.ExpectedWindow(believed)
				// Flip one read bit (transient sensing error).
				if win[bit] == stripe.One {
					win[bit] = stripe.Zero
				} else {
					win[bit] = stripe.One
				}
				res := c.Decode(believed, win)
				switch {
				case res.Indeterminate:
					indeterminate++
				case res.Detected && res.Correctable:
					// Aliased onto another phase: bounded miscorrection.
					if res.Offset < -m || res.Offset > m {
						t.Fatalf("m=%d: alias offset %d out of band", m, res.Offset)
					}
					alias++
				case res.Detected:
					alias++ // detected-uncorrectable: safe
				default:
					t.Fatalf("m=%d believed=%d bit=%d: flip was silent", m, believed, bit)
				}
			}
		}
		// For m=1 every 2-bit pattern is a valid phase window, so flips
		// always alias; wider windows (m >= 2) have invalid patterns
		// that decode as Indeterminate (safe DUE).
		if m >= 2 && indeterminate == 0 {
			t.Errorf("m=%d: no flips decoded as Indeterminate", m)
		}
		if m == 1 && indeterminate != 0 {
			t.Errorf("m=1: unexpectedly indeterminate (all 2-bit windows are valid)")
		}
		t.Logf("m=%d: %d indeterminate (DUE), %d bounded aliases", m, indeterminate, alias)
	}
}

func TestBitFlipNeverSilent(t *testing.T) {
	// Exhaustive: a single flipped window bit is never read as a clean
	// zero-offset decode — the cyclic windows at distance-1 Hamming
	// distance never include the expected window itself.
	for m := 1; m <= 4; m++ {
		c := MustNew(m, 16)
		for phase := 0; phase < c.Period(); phase++ {
			for bit := 0; bit < c.Window(); bit++ {
				win := c.ExpectedWindow(phase)
				win[bit] ^= 1 // Zero<->One
				if res := c.Decode(phase, win); !res.Detected {
					t.Fatalf("m=%d phase=%d bit=%d: silent flip", m, phase, bit)
				}
			}
		}
	}
}

func TestBitFlipUnderInjection(t *testing.T) {
	// Randomized: flips across random phases/bits always produce a
	// detected outcome.
	r := sim.NewRNG(77)
	for trial := 0; trial < 20000; trial++ {
		m := 1 + r.Intn(3)
		c := MustNew(m, 8)
		phase := r.Intn(c.Period())
		win := c.ExpectedWindow(phase)
		win[r.Intn(len(win))] ^= 1
		if res := c.Decode(phase, win); !res.Detected {
			t.Fatalf("trial %d: silent flip (m=%d phase=%d)", trial, m, phase)
		}
	}
}
