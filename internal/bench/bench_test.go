package bench

import (
	"path/filepath"
	"testing"
)

func snap(results ...Result) *Snapshot {
	return &Snapshot{Schema: SchemaVersion, DateUTC: "2026-01-01T00:00:00Z", Results: results}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	s := snap(Result{
		Name: "memsim-replay", Iterations: 10, NsPerOp: 1.5e6,
		BytesPerOp: 2048, AllocsPerOp: 12,
		Rates: map[string]float64{"accesses_per_sec": 1.2e6},
	})
	s.GitSHA, s.GoVersion, s.Host = "abc", "go1.x", "h"
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0].NsPerOp != 1.5e6 {
		t.Fatalf("round-trip results = %+v", back.Results)
	}
	if back.Results[0].Rates["accesses_per_sec"] != 1.2e6 {
		t.Fatalf("rates lost: %+v", back.Results[0].Rates)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	s := snap()
	s.Schema = SchemaVersion + 1
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("want schema mismatch error")
	}
}

// TestCompareFlagsTwentyPercentSlowdown is the acceptance check for the
// regression gate: a synthetic 20% slowdown must trip the default 10%
// threshold, while a 5% wobble must not.
func TestCompareFlagsTwentyPercentSlowdown(t *testing.T) {
	old := snap(
		Result{Name: "rtm-shift-loop", NsPerOp: 100},
		Result{Name: "pecc-decode", NsPerOp: 50},
	)
	cur := snap(
		Result{Name: "rtm-shift-loop", NsPerOp: 120}, // +20%
		Result{Name: "pecc-decode", NsPerOp: 52.5},   // +5%
	)
	deltas := Compare(old, cur)
	regs := Regressions(deltas, DefaultThreshold, DefaultAllocThreshold)
	if len(regs) != 1 || regs[0].Name != "rtm-shift-loop" {
		t.Fatalf("regressions = %+v, want only rtm-shift-loop", regs)
	}
	if r := regs[0].Ratio; r < 1.19 || r > 1.21 {
		t.Fatalf("ratio = %v, want ~1.2", r)
	}
}

func TestCompareImprovementAndMissing(t *testing.T) {
	old := snap(
		Result{Name: "a", NsPerOp: 100},
		Result{Name: "gone", NsPerOp: 10},
	)
	cur := snap(
		Result{Name: "a", NsPerOp: 60}, // faster: never a regression
		Result{Name: "new-one", NsPerOp: 999},
	)
	regs := Regressions(Compare(old, cur), DefaultThreshold, DefaultAllocThreshold)
	if len(regs) != 1 || regs[0].Name != "gone" || !regs[0].MissingNew {
		t.Fatalf("regressions = %+v, want only the missing benchmark", regs)
	}
}
