package bench

// The bench trajectory: an ordered walk over the repository's committed
// BENCH_*.json snapshots. Where Compare answers "did this change regress
// the suite?", a Trajectory answers "how has the suite moved over the
// project's history?" — per-benchmark ns/op and allocs/op series from the
// oldest snapshot to the newest, a first-vs-last delta table, and a
// dependency-free SVG trend chart the HTML report embeds.

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one benchmark's measurement in one snapshot.
type Point struct {
	DateUTC     string  `json:"date_utc"`
	GitSHA      string  `json:"git_sha,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Missing marks a snapshot that did not include this benchmark (added
	// later or since removed); the chart breaks the line there.
	Missing bool `json:"missing,omitempty"`
}

// Series is one benchmark's history across every loaded snapshot, in
// snapshot order.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// SnapshotMeta identifies one loaded snapshot in trajectory order.
type SnapshotMeta struct {
	Path    string `json:"path"`
	DateUTC string `json:"date_utc"`
	GitSHA  string `json:"git_sha,omitempty"`
	Quick   bool   `json:"quick,omitempty"`
}

// Trajectory is the ordered snapshot sequence folded into per-benchmark
// series. Series are sorted by name; snapshots by DateUTC then path, so
// the same file set always yields the same trajectory.
type Trajectory struct {
	Snapshots []SnapshotMeta `json:"snapshots"`
	Series    []Series       `json:"series"`
}

// LoadTrajectory reads each path as a snapshot and builds the trajectory.
// At least two snapshots are required — a single point has no direction.
func LoadTrajectory(paths []string) (*Trajectory, error) {
	if len(paths) < 2 {
		return nil, fmt.Errorf("bench: trajectory needs >= 2 snapshots, have %d", len(paths))
	}
	type loaded struct {
		path string
		snap *Snapshot
	}
	snaps := make([]loaded, 0, len(paths))
	for _, p := range paths {
		s, err := ReadFile(p)
		if err != nil {
			return nil, err
		}
		snaps = append(snaps, loaded{p, s})
	}
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].snap.DateUTC != snaps[j].snap.DateUTC {
			return snaps[i].snap.DateUTC < snaps[j].snap.DateUTC
		}
		return snaps[i].path < snaps[j].path
	})

	t := &Trajectory{}
	names := map[string]bool{}
	for _, l := range snaps {
		t.Snapshots = append(t.Snapshots, SnapshotMeta{
			Path:    l.path,
			DateUTC: l.snap.DateUTC,
			GitSHA:  l.snap.GitSHA,
			Quick:   l.snap.Quick,
		})
		for _, r := range l.snap.Results {
			names[r.Name] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		s := Series{Name: name}
		for _, l := range snaps {
			pt := Point{DateUTC: l.snap.DateUTC, GitSHA: l.snap.GitSHA, Missing: true}
			for _, r := range l.snap.Results {
				if r.Name == name {
					pt.NsPerOp, pt.AllocsPerOp, pt.Missing = r.NsPerOp, r.AllocsPerOp, false
					break
				}
			}
			s.Points = append(s.Points, pt)
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// Deltas compares each benchmark's oldest measurement against its newest
// (skipping missing points at either end), reusing the Compare delta type
// so gates and rendering are shared with two-snapshot comparisons.
func (t *Trajectory) Deltas() []Delta {
	var deltas []Delta
	for _, s := range t.Series {
		first, last := -1, -1
		for i, p := range s.Points {
			if p.Missing {
				continue
			}
			if first < 0 {
				first = i
			}
			last = i
		}
		if first < 0 || first == last {
			continue // seen once or never: no direction
		}
		f, l := s.Points[first], s.Points[last]
		d := Delta{
			Name: s.Name,
			Old:  f.NsPerOp, New: l.NsPerOp,
			OldAllocs: f.AllocsPerOp, NewAllocs: l.AllocsPerOp,
		}
		if f.NsPerOp > 0 {
			d.Ratio = l.NsPerOp / f.NsPerOp
		}
		if f.AllocsPerOp > 0 {
			d.AllocRatio = float64(l.AllocsPerOp) / float64(f.AllocsPerOp)
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// SVG chart geometry. The chart plots each benchmark's ns/op normalised
// to its own first measurement (1.0 = no change), because the suite spans
// five orders of magnitude and an absolute axis would flatten everything
// but the slowest benchmark.
const (
	svgW        = 720
	svgH        = 300
	svgPadL     = 56
	svgPadR     = 160
	svgPadT     = 16
	svgPadB     = 36
	svgMinRatio = 0.25 // clamp the y axis to [0.25x, 4x] around baseline
	svgMaxRatio = 4.0
)

// svgPalette cycles per series; plain hex so the SVG needs no CSS.
var svgPalette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf"}

// SVG renders the normalised trend chart as a standalone SVG element.
// Output is a pure function of the trajectory, so the report stays
// byte-deterministic for a given snapshot set.
func (t *Trajectory) SVG() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" width="%d" height="%d" role="img" aria-label="benchmark ns/op trajectory">`,
		svgW, svgH, svgW, svgH)
	b.WriteString("\n")

	n := len(t.Snapshots)
	plotW := float64(svgW - svgPadL - svgPadR)
	plotH := float64(svgH - svgPadT - svgPadB)
	x := func(i int) float64 {
		if n <= 1 {
			return svgPadL + plotW/2
		}
		return svgPadL + plotW*float64(i)/float64(n-1)
	}
	// log2 scale: 1.0 in the middle band, clamped to the ratio window.
	y := func(ratio float64) float64 {
		if ratio < svgMinRatio {
			ratio = svgMinRatio
		}
		if ratio > svgMaxRatio {
			ratio = svgMaxRatio
		}
		span := math.Log2(svgMaxRatio) - math.Log2(svgMinRatio)
		frac := (math.Log2(svgMaxRatio) - math.Log2(ratio)) / span
		return svgPadT + plotH*frac
	}

	// Gridlines at 0.5x, 1x, 2x with the 1x baseline emphasised.
	for _, g := range []struct {
		ratio float64
		label string
	}{{0.5, "0.5x"}, {1, "1x"}, {2, "2x"}} {
		gy := y(g.ratio)
		stroke := "#ddd"
		if g.ratio == 1 {
			stroke = "#999"
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			svgPadL, gy, svgW-svgPadR, gy, stroke)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="#666" text-anchor="end">%s</text>`,
			svgPadL-6, gy+4, g.label)
		b.WriteString("\n")
	}
	// X labels: snapshot dates (date part only), first/last always, the
	// rest thinned to avoid overlap.
	step := 1
	if n > 6 {
		step = (n + 5) / 6
	}
	for i, sm := range t.Snapshots {
		if i%step != 0 && i != n-1 {
			continue
		}
		label := sm.DateUTC
		if len(label) > 10 {
			label = label[:10]
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="#666" text-anchor="middle">%s</text>`,
			x(i), svgH-svgPadB+24, label)
		b.WriteString("\n")
	}

	for si, s := range t.Series {
		color := svgPalette[si%len(svgPalette)]
		base := 0.0
		for _, p := range s.Points {
			if !p.Missing && p.NsPerOp > 0 {
				base = p.NsPerOp
				break
			}
		}
		if base == 0 {
			continue
		}
		var seg []string
		flush := func() {
			if len(seg) >= 2 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`,
					strings.Join(seg, " "), color)
				b.WriteString("\n")
			}
			seg = seg[:0]
		}
		lastRatio := 1.0
		for i, p := range s.Points {
			if p.Missing || p.NsPerOp <= 0 {
				flush()
				continue
			}
			ratio := p.NsPerOp / base
			lastRatio = ratio
			px, py := x(i), y(ratio)
			seg = append(seg, fmt.Sprintf("%.1f,%.1f", px, py))
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`, px, py, color)
			b.WriteString("\n")
		}
		flush()
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s">%s (%.2fx)</text>`,
			svgW-svgPadR+8, svgPadT+14+float64(si)*14, color, svgEscape(s.Name), lastRatio)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// svgEscape covers the characters meaningful inside SVG text nodes.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
