package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// writeSnap writes a snapshot with the given date and results, returning
// its path.
func writeSnap(t *testing.T, dir, name, date string, results ...Result) string {
	t.Helper()
	s := snap(results...)
	s.DateUTC = date
	s.GitSHA = "sha-" + date
	path := filepath.Join(dir, name)
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTrajectoryOrdersAndFolds(t *testing.T) {
	dir := t.TempDir()
	// Written out of chronological order on purpose; DateUTC must win.
	p2 := writeSnap(t, dir, "BENCH_b.json", "2026-02-01T00:00:00Z",
		Result{Name: "rtm-shift-loop", NsPerOp: 80, AllocsPerOp: 0},
		Result{Name: "memsim-replay", NsPerOp: 2e6, AllocsPerOp: 120},
	)
	p1 := writeSnap(t, dir, "BENCH_a.json", "2026-01-01T00:00:00Z",
		Result{Name: "rtm-shift-loop", NsPerOp: 100, AllocsPerOp: 0},
		Result{Name: "memsim-replay", NsPerOp: 1e6, AllocsPerOp: 100},
	)
	p3 := writeSnap(t, dir, "BENCH_c.json", "2026-03-01T00:00:00Z",
		Result{Name: "rtm-shift-loop", NsPerOp: 40, AllocsPerOp: 0},
		// memsim-replay dropped in the newest snapshot.
	)
	tr, err := LoadTrajectory([]string{p2, p3, p1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Snapshots) != 3 || tr.Snapshots[0].Path != p1 || tr.Snapshots[2].Path != p3 {
		t.Fatalf("snapshot order = %+v", tr.Snapshots)
	}
	if len(tr.Series) != 2 || tr.Series[0].Name != "memsim-replay" {
		t.Fatalf("series = %+v", tr.Series)
	}
	ms := tr.Series[0]
	if len(ms.Points) != 3 || ms.Points[0].NsPerOp != 1e6 || !ms.Points[2].Missing {
		t.Fatalf("memsim series = %+v", ms.Points)
	}
}

func TestTrajectoryDeltasFirstVsLast(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		writeSnap(t, dir, "BENCH_1.json", "2026-01-01T00:00:00Z",
			Result{Name: "a", NsPerOp: 100, AllocsPerOp: 10}),
		writeSnap(t, dir, "BENCH_2.json", "2026-02-01T00:00:00Z",
			Result{Name: "a", NsPerOp: 500, AllocsPerOp: 50}, // mid-spike ignored
			Result{Name: "once", NsPerOp: 7}),
		writeSnap(t, dir, "BENCH_3.json", "2026-03-01T00:00:00Z",
			Result{Name: "a", NsPerOp: 50, AllocsPerOp: 20}),
	}
	tr, err := LoadTrajectory(paths)
	if err != nil {
		t.Fatal(err)
	}
	deltas := tr.Deltas()
	if len(deltas) != 1 || deltas[0].Name != "a" {
		t.Fatalf("deltas = %+v, want only benchmark a (seen-once has no direction)", deltas)
	}
	d := deltas[0]
	if d.Old != 100 || d.New != 50 || d.Ratio != 0.5 {
		t.Errorf("ns delta = %+v", d)
	}
	if d.OldAllocs != 10 || d.NewAllocs != 20 || d.AllocRatio != 2 {
		t.Errorf("alloc delta = %+v", d)
	}
}

func TestLoadTrajectoryNeedsTwo(t *testing.T) {
	dir := t.TempDir()
	p := writeSnap(t, dir, "BENCH_1.json", "2026-01-01T00:00:00Z", Result{Name: "a", NsPerOp: 1})
	if _, err := LoadTrajectory([]string{p}); err == nil {
		t.Fatal("want error for a single snapshot")
	}
}

func TestTrajectorySVGDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		writeSnap(t, dir, "BENCH_1.json", "2026-01-01T00:00:00Z",
			Result{Name: "a", NsPerOp: 100}, Result{Name: "b<x>", NsPerOp: 10}),
		writeSnap(t, dir, "BENCH_2.json", "2026-02-01T00:00:00Z",
			Result{Name: "a", NsPerOp: 200}, Result{Name: "b<x>", NsPerOp: 5}),
	}
	tr, err := LoadTrajectory(paths)
	if err != nil {
		t.Fatal(err)
	}
	svg := tr.SVG()
	if svg != tr.SVG() {
		t.Fatal("SVG not deterministic")
	}
	for _, want := range []string{"<svg ", "</svg>", "polyline", "b&lt;x&gt;", "(2.00x)", "(0.50x)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "b<x>") {
		t.Error("SVG contains unescaped series name")
	}
}

func TestAllocGate(t *testing.T) {
	old := snap(
		Result{Name: "steady", NsPerOp: 100, AllocsPerOp: 100},
		Result{Name: "leaky", NsPerOp: 100, AllocsPerOp: 100},
		Result{Name: "fresh-alloc", NsPerOp: 100, AllocsPerOp: 0},
	)
	cur := snap(
		Result{Name: "steady", NsPerOp: 100, AllocsPerOp: 104},    // +4%: under gate
		Result{Name: "leaky", NsPerOp: 100, AllocsPerOp: 120},     // +20%: trips
		Result{Name: "fresh-alloc", NsPerOp: 100, AllocsPerOp: 1}, // 0 -> 1: trips
	)
	deltas := Compare(old, cur)
	regs := Regressions(deltas, DefaultThreshold, DefaultAllocThreshold)
	if len(regs) != 2 || regs[0].Name != "fresh-alloc" || regs[1].Name != "leaky" {
		t.Fatalf("regressions = %+v, want fresh-alloc and leaky", regs)
	}
	// Disabled alloc gate: nothing regresses (timings are flat).
	if regs := Regressions(deltas, DefaultThreshold, -1); len(regs) != 0 {
		t.Fatalf("with alloc gate off, regressions = %+v", regs)
	}
}
