// Package bench defines the benchmark snapshot format written by
// cmd/hifi-bench and the comparison logic that turns two snapshots into a
// regression verdict. The format is versioned JSON so snapshots can be
// archived next to reports and diffed across commits; the comparison is a
// plain relative ns/op gate so CI can fail a pull request that slows a
// pinned benchmark beyond the threshold.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion identifies the snapshot layout; bump on breaking change.
const SchemaVersion = 1

// DefaultThreshold is the relative ns/op slowdown treated as a regression
// (0.10 = 10% slower than the baseline).
const DefaultThreshold = 0.10

// DefaultAllocThreshold is the relative allocs/op growth treated as a
// regression. Allocation counts are deterministic where timings are noisy,
// so the gate can be tighter than the ns/op one.
const DefaultAllocThreshold = 0.05

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Rates holds domain throughputs derived from the deterministic
	// workload each benchmark replays: shifts_per_sec, accesses_per_sec.
	Rates map[string]float64 `json:"rates,omitempty"`
}

// Snapshot is one full run of the pinned suite plus its provenance.
type Snapshot struct {
	Schema    int      `json:"schema"`
	DateUTC   string   `json:"date_utc"`
	GitSHA    string   `json:"git_sha"`
	GoVersion string   `json:"go_version"`
	Host      string   `json:"host"`
	Quick     bool     `json:"quick,omitempty"`
	Results   []Result `json:"results"`
}

// Add appends one result.
func (s *Snapshot) Add(r Result) { s.Results = append(s.Results, r) }

// WriteFile writes the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a snapshot, rejecting unknown schema versions so a stale
// binary never silently mis-compares a newer file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema %d, want %d", path, s.Schema, SchemaVersion)
	}
	return &s, nil
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name string
	// Old and New are ns/op; Ratio is New/Old (1.0 = unchanged).
	Old, New, Ratio float64
	// OldAllocs and NewAllocs are allocs/op; AllocRatio is new/old
	// (0 when the baseline allocated nothing).
	OldAllocs, NewAllocs int64
	AllocRatio           float64
	// MissingNew marks a baseline benchmark absent from the new snapshot
	// (renamed or deleted — surfaced so a regression cannot hide behind a
	// rename).
	MissingNew bool
}

// Regressed reports whether the delta exceeds the slowdown threshold. A
// missing benchmark is treated as a regression: the gate must be updated
// deliberately, not dodged.
func (d Delta) Regressed(threshold float64) bool {
	if d.MissingNew {
		return true
	}
	return d.Old > 0 && d.Ratio > 1+threshold
}

// AllocRegressed reports whether allocs/op grew beyond the threshold. A
// missing benchmark is already caught by Regressed, so it is not repeated
// here; a baseline of zero allocations regresses on any new allocation.
func (d Delta) AllocRegressed(threshold float64) bool {
	if d.MissingNew {
		return false
	}
	if d.OldAllocs == 0 {
		return d.NewAllocs > 0
	}
	return d.AllocRatio > 1+threshold
}

// Compare matches benchmarks by name and returns one delta per baseline
// entry, sorted by name. Benchmarks only present in the new snapshot are
// ignored (additions are not regressions).
func Compare(old, cur *Snapshot) []Delta {
	newByName := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		newByName[r.Name] = r
	}
	deltas := make([]Delta, 0, len(old.Results))
	for _, o := range old.Results {
		d := Delta{Name: o.Name, Old: o.NsPerOp, OldAllocs: o.AllocsPerOp}
		if n, ok := newByName[o.Name]; ok {
			d.New = n.NsPerOp
			d.NewAllocs = n.AllocsPerOp
			if o.NsPerOp > 0 {
				d.Ratio = n.NsPerOp / o.NsPerOp
			}
			if o.AllocsPerOp > 0 {
				d.AllocRatio = float64(n.AllocsPerOp) / float64(o.AllocsPerOp)
			}
		} else {
			d.MissingNew = true
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// Regressions filters the deltas that breach either gate: the ns/op
// slowdown threshold or the allocs/op growth threshold. An allocThreshold
// < 0 disables the allocation gate (timing-only comparison).
func Regressions(deltas []Delta, threshold, allocThreshold float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed(threshold) || (allocThreshold >= 0 && d.AllocRegressed(allocThreshold)) {
			out = append(out, d)
		}
	}
	return out
}
