package sim

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming summary statistics (Welford's algorithm).
// The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 when empty.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 when empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 when empty.
func (s *Summary) Max() float64 { return s.max }

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// String formats the summary for logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Out-of-range samples are
// counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Bins   []uint64
	Under  uint64
	Over   uint64
	total  uint64
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("sim: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]uint64, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i == len(h.Bins) { // guard against floating-point edge
			i--
		}
		h.Bins[i]++
	}
}

// Total returns the number of samples added, including out-of-range ones.
func (h *Histogram) Total() uint64 { return h.total }

// Density returns the probability density of bin i (fraction of all samples
// divided by bin width).
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	return float64(h.Bins[i]) / float64(h.total) / width
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*width
}

// Quantile returns the q-th quantile (0 <= q <= 1) of sorted data xs.
// It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("sim: Quantile of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("sim: GeoMean with non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// NormalCDF returns the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalTail returns P(X > x) for a standard normal X, numerically stable for
// large x (uses erfc directly, valid down to ~1e-300).
func NormalTail(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// LogNormalTailApprox returns log10 of the standard normal upper-tail
// probability, usable far beyond floating-point underflow via the asymptotic
// expansion phi(x)/x * (1 - 1/x^2 + 3/x^4).
func LogNormalTailApprox(x float64) float64 {
	if x < 10 {
		t := NormalTail(x)
		if t > 0 {
			return math.Log10(t)
		}
	}
	// log10( phi(x)/x ) with phi the standard normal pdf.
	ln := -x*x/2 - math.Log(x) - 0.5*math.Log(2*math.Pi)
	corr := math.Log1p(-1/(x*x) + 3/(x*x*x*x))
	return (ln + corr) / math.Ln10
}
