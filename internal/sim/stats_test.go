package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws of 100", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	c := a.Split()
	// The split stream should not replay the parent stream.
	av := make([]uint64, 50)
	for i := range av {
		av[i] = a.Uint64()
	}
	matches := 0
	for i := 0; i < 50; i++ {
		v := c.Uint64()
		for _, x := range av {
			if v == x {
				matches++
			}
		}
	}
	if matches > 1 {
		t.Fatalf("split stream overlaps parent: %d matches", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64())
	}
	if math.Abs(s.Mean()) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", s.Mean())
	}
	if math.Abs(s.StdDev()-1) > 0.02 {
		t.Errorf("normal stddev = %v, want ~1", s.StdDev())
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 50000; i++ {
		x := r.TruncNormal(10, 2, 3)
		if x < 4 || x > 16 {
			t.Fatalf("TruncNormal out of +-3 sigma: %v", x)
		}
	}
}

func TestTruncNormalZeroStddev(t *testing.T) {
	r := NewRNG(5)
	if x := r.TruncNormal(3.5, 0, 3); x != 3.5 {
		t.Fatalf("TruncNormal with zero stddev = %v, want 3.5", x)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(9)
	p := 0.25
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(float64(r.Geometric(p)))
	}
	want := (1 - p) / p // mean of geometric counting failures
	if math.Abs(s.Mean()-want) > 0.1 {
		t.Errorf("geometric mean = %v, want ~%v", s.Mean(), want)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(13)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Zipf(10, 1.2)]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("Zipf not skewed: first=%d last=%d", counts[0], counts[9])
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("Zipf bin %d never drawn", i)
		}
	}
}

func TestZipfRange(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		k := r.Zipf(7, 0.8)
		if k < 0 || k >= 7 {
			t.Fatalf("Zipf out of range: %d", k)
		}
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Variance()-2.5) > 1e-12 {
		t.Errorf("Variance = %v, want 2.5", s.Variance())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	for i, b := range h.Bins {
		if b != 1 {
			t.Errorf("bin %d = %d, want 1", i, b)
		}
	}
	if h.Total() != 12 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramDensityIntegratesToCoverage(t *testing.T) {
	h := NewHistogram(0, 1, 20)
	r := NewRNG(23)
	for i := 0; i < 100000; i++ {
		h.Add(r.Float64())
	}
	width := 1.0 / 20
	integral := 0.0
	for i := range h.Bins {
		integral += h.Density(i) * width
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("density integral = %v, want 1", integral)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("q0.5 = %v", q)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 30 {
			return true
		}
		return math.Abs(NormalCDF(x)+NormalCDF(-x)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalTailValues(t *testing.T) {
	// Known value: P(X > 1.96) ~ 0.025
	if got := NormalTail(1.96); math.Abs(got-0.025) > 1e-3 {
		t.Errorf("NormalTail(1.96) = %v", got)
	}
}

func TestLogNormalTailApproxContinuity(t *testing.T) {
	// The asymptotic branch should agree with erfc where both are valid.
	for _, x := range []float64{10, 12, 15, 20} {
		exact := math.Log10(0.5 * math.Erfc(x/math.Sqrt2))
		approx := LogNormalTailApprox(x)
		if math.Abs(exact-approx) > 0.05 {
			t.Errorf("x=%v: exact %v vs approx %v", x, exact, approx)
		}
	}
	// Far tail must keep decreasing and stay finite.
	prev := LogNormalTailApprox(10)
	for x := 20.0; x <= 100; x += 10 {
		v := LogNormalTailApprox(x)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("tail approx not finite at %v", x)
		}
		if v >= prev {
			t.Fatalf("tail approx not decreasing at %v", x)
		}
		prev = v
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(31)
	p := make([]int, 16)
	r.Perm(p)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 16 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestQuickSummaryMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		ok := true
		any := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e15 {
				continue
			}
			s.Add(x)
			any = true
		}
		if any {
			ok = s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
