package sim

import (
	"math"
	"testing"
)

// Additional coverage for the generator's less-used paths.

func TestUint64nRange(t *testing.T) {
	r := NewRNG(41)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestBoolFrequencies(t *testing.T) {
	r := NewRNG(43)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1.1) {
		t.Error("Bool(>1) returned false")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(47)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Exponential(0.5))
	}
	if math.Abs(s.Mean()-2) > 0.05 {
		t.Errorf("Exponential(0.5) mean = %v, want 2", s.Mean())
	}
	if s.Min() < 0 {
		t.Error("Exponential produced negative value")
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			NewRNG(1).Geometric(p)
		}()
	}
}

func TestGeometricPOne(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestZipfSingleton(t *testing.T) {
	r := NewRNG(1)
	if r.Zipf(1, 1.2) != 0 {
		t.Fatal("Zipf(1) must be 0")
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf(0) did not panic")
		}
	}()
	NewRNG(1).Zipf(0, 1)
}

func TestZipfSEqualOne(t *testing.T) {
	// The s == 1 branch uses the logarithmic CDF.
	r := NewRNG(53)
	counts := make([]int, 8)
	for i := 0; i < 50000; i++ {
		counts[r.Zipf(8, 1)]++
	}
	if counts[0] <= counts[7] {
		t.Errorf("Zipf(s=1) not skewed: %v", counts)
	}
}

func TestNormalShiftScale(t *testing.T) {
	r := NewRNG(59)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Normal(5, 3))
	}
	if math.Abs(s.Mean()-5) > 0.05 || math.Abs(s.StdDev()-3) > 0.05 {
		t.Errorf("Normal(5,3): mean %v sd %v", s.Mean(), s.StdDev())
	}
}

func TestSummaryStringAndHistogramPanics(t *testing.T) {
	var s Summary
	s.Add(1)
	if s.String() == "" {
		t.Error("empty String")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with bad bounds did not panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(empty) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean with 0 did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanEmpty(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}
