// Package sim provides deterministic random number generation, probability
// distributions, and summary statistics shared by the simulator packages.
//
// All randomness in the repository flows through sim.RNG so that every
// experiment is reproducible from a single seed.
package sim

import "math"

// RNG is a deterministic pseudo-random generator based on xoshiro256**,
// seeded through splitmix64. The zero value is not valid; use NewRNG.
type RNG struct {
	s [4]uint64
	// cached second normal variate from the Box-Muller transform
	haveGauss bool
	gauss     float64
}

// NewRNG returns a generator seeded from seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into four state words.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from the current one. The derived
// stream is stable: it depends only on the parent's state at the call site.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniformly distributed integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using the
// Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// TruncNormal returns a normal variate truncated to [mean-k*stddev,
// mean+k*stddev] by resampling. It models bounded process variation.
func (r *RNG) TruncNormal(mean, stddev, k float64) float64 {
	if stddev == 0 {
		return mean
	}
	for {
		x := r.NormFloat64()
		if math.Abs(x) <= k {
			return mean + stddev*x
		}
	}
}

// Exponential returns an exponential variate with the given rate (lambda).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exponential with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success. p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("sim: Geometric with p outside (0,1]")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}

// Zipf returns a value in [0, n) following an approximately Zipfian
// distribution with exponent s > 0: value 0 is the most probable. It uses
// inverse-CDF sampling of the continuous density x^-s on [1, n+1], which is
// accurate enough for workload trace generation.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	if n == 1 {
		return 0
	}
	u := r.Float64()
	hi := float64(n + 1)
	var x float64
	if s == 1 {
		x = math.Exp(u * math.Log(hi))
	} else {
		x = math.Pow(u*(math.Pow(hi, 1-s)-1)+1, 1/(1-s))
	}
	k := int(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// Perm fills dst with a random permutation of [0, len(dst)).
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
