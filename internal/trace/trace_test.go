package trace

import (
	"testing"
)

func TestPARSECRoster(t *testing.T) {
	ws := PARSEC()
	if len(ws) != 12 {
		t.Fatalf("workload count = %d, want 12", len(ws))
	}
	sensitive := 0
	names := map[string]bool{}
	for _, w := range ws {
		if names[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
		if w.CapacitySensitive {
			sensitive++
			// Capacity-sensitive working sets must exceed the 4MB SRAM
			// LLC and fit in the 128MB racetrack LLC.
			if w.WorkingSetB <= 4<<20 || w.WorkingSetB > 128<<20 {
				t.Errorf("%s: working set %d out of capacity-sensitive band", w.Name, w.WorkingSetB)
			}
		} else if w.WorkingSetB > 32<<20 {
			t.Errorf("%s: insensitive workload with %d working set", w.Name, w.WorkingSetB)
		}
	}
	if sensitive != 6 {
		t.Errorf("capacity-sensitive count = %d, want 6", sensitive)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("canneal")
	if err != nil || w.Name != "canneal" {
		t.Fatalf("ByName(canneal): %v, %v", w, err)
	}
	if !w.CapacitySensitive {
		t.Error("canneal should be capacity sensitive")
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	w, _ := ByName("ferret")
	a := NewGenerator(w, 0, 42).Take(1000)
	b := NewGenerator(w, 0, 42).Take(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestGeneratorCoresDiffer(t *testing.T) {
	w, _ := ByName("ferret")
	a := NewGenerator(w, 0, 42).Take(100)
	b := NewGenerator(w, 1, 42).Take(100)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same > 50 {
		t.Errorf("cores produced %d/100 identical addresses", same)
	}
}

func TestAddressesLineAlignedAndBounded(t *testing.T) {
	for _, w := range PARSEC() {
		g := NewGenerator(w, 0, 7)
		for i := 0; i < 5000; i++ {
			a := g.Next()
			if a.Addr%LineBytes != 0 {
				t.Fatalf("%s: unaligned address %#x", w.Name, a.Addr)
			}
			if a.Addr >= uint64(w.WorkingSetB) {
				t.Fatalf("%s: address %#x beyond working set %#x", w.Name, a.Addr, w.WorkingSetB)
			}
			if a.Gap < 0 {
				t.Fatalf("%s: negative gap", w.Name)
			}
		}
	}
}

func TestWriteFractionRealized(t *testing.T) {
	w, _ := ByName("fluidanimate") // WriteFrac 0.40
	g := NewGenerator(w, 0, 11)
	writes := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.36 || frac > 0.44 {
		t.Errorf("write fraction = %v, want ~0.40", frac)
	}
}

func TestLocalityRealized(t *testing.T) {
	// A skewed workload must reuse a small set of lines heavily.
	w, _ := ByName("swaptions")
	g := NewGenerator(w, 0, 13)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Addr]++
	}
	// Top line should be accessed far more than the mean.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(n) / float64(len(counts))
	if float64(max) < 5*mean {
		t.Errorf("insufficient skew: max %d vs mean %.1f", max, mean)
	}
}

func TestStreamingRealized(t *testing.T) {
	// streamcluster (StreamFrac 0.85) must show strong spatial locality:
	// most consecutive accesses either dwell on the same line or step to
	// the next one.
	w, _ := ByName("streamcluster")
	g := NewGenerator(w, 0, 17)
	prev := g.Next().Addr
	local := 0
	const n = 20000
	for i := 0; i < n; i++ {
		a := g.Next()
		if a.Addr == prev || a.Addr == prev+LineBytes {
			local++
		}
		prev = a.Addr
	}
	if float64(local)/n < 0.6 {
		t.Errorf("spatially local fraction = %v, want > 0.6", float64(local)/n)
	}
	// Dwell means repeated touches of the same line must occur.
	g2 := NewGenerator(w, 0, 18)
	prev = g2.Next().Addr
	same := 0
	for i := 0; i < n; i++ {
		a := g2.Next()
		if a.Addr == prev {
			same++
		}
		prev = a.Addr
	}
	if same == 0 {
		t.Error("streaming never dwells on a line")
	}
}

func TestGapMeanRealized(t *testing.T) {
	w, _ := ByName("bodytrack") // GapMean 14, no phase bursts
	g := NewGenerator(w, 0, 19)
	total := 0
	const n = 50000
	for i := 0; i < n; i++ {
		total += g.Next().Gap
	}
	mean := float64(total) / n
	if mean < 10 || mean > 18 {
		t.Errorf("gap mean = %v, want ~14", mean)
	}
}

func TestPhaseBurstsRealized(t *testing.T) {
	// blackscholes has PhasePeriod 10000 with 300k-cycle mean bursts:
	// exactly one access per period carries a very large gap.
	w, _ := ByName("blackscholes")
	g := NewGenerator(w, 0, 21)
	bursts := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Gap > 50_000 {
			bursts++
		}
	}
	want := n / w.PhasePeriod
	if bursts < want-2 || bursts > want+2 {
		t.Errorf("bursts = %d, want ~%d", bursts, want)
	}
}

func TestPhaseFreeWorkloadHasNoBursts(t *testing.T) {
	w, _ := ByName("ferret")
	g := NewGenerator(w, 0, 23)
	for i := 0; i < 50000; i++ {
		if g.Next().Gap > 10_000 {
			t.Fatal("phase-free workload produced a burst gap")
		}
	}
}

func TestGeneratorPanicsOnTinyWorkingSet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny working set did not panic")
		}
	}()
	NewGenerator(Workload{Name: "x", WorkingSetB: 1}, 0, 1)
}

func TestScatterBijectiveEnough(t *testing.T) {
	// scatter must not collapse many lines onto few targets.
	n := int64(4096)
	seen := map[int64]int{}
	for i := int64(0); i < n; i++ {
		seen[scatter(i, n)]++
	}
	collisions := 0
	for _, c := range seen {
		if c > 1 {
			collisions += c - 1
		}
	}
	if float64(collisions)/float64(n) > 0.5 {
		t.Errorf("scatter collapsed %d/%d lines", collisions, n)
	}
}
